// Benchmarks regenerating the paper's tables and figures as testing.B
// benchmarks — one per experiment, so `go test -bench=.` reproduces the
// evaluation. Each prints its rows/series through b.Log* on the first
// iteration; the heavyweight sweeps use reduced sizes here (cmd/piql-bench
// runs the full-fidelity versions).
package piql

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"piql/internal/harness"
	"piql/internal/predict"
	"piql/internal/workload/scadr"
	"piql/internal/workload/tpcw"
)

// trainedModel is shared across prediction benchmarks (training costs
// tens of seconds).
var (
	trainOnce    sync.Once
	trainedModel *predict.Model
	trainErr     error
)

func benchModel(b *testing.B) *predict.Model {
	b.Helper()
	trainOnce.Do(func() {
		cfg := predict.DefaultTrainConfig()
		cfg.Intervals = 8
		cfg.RepsPerInterval = 5
		trainedModel, trainErr = predict.Train(cfg)
	})
	if trainErr != nil {
		b.Fatal(trainErr)
	}
	return trainedModel
}

// BenchmarkTable1PredictionAccuracy regenerates Table 1: per-query
// actual vs predicted 99th-percentile response time.
func BenchmarkTable1PredictionAccuracy(b *testing.B) {
	model := benchModel(b)
	for i := 0; i < b.N; i++ {
		cfg := harness.DefaultTable1Config()
		cfg.Intervals = 4
		cfg.PerQuery = 15
		rows, err := harness.RunTable1(model, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("%-8s %-33s actual=%5.0fms predicted=%5.0fms",
					r.Benchmark, r.Name, ms(r.Actual99), ms(r.Predicted))
			}
		}
	}
}

// BenchmarkFig1QueryClasses regenerates Figure 1: relevant data vs
// database size per scaling class.
func BenchmarkFig1QueryClasses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.RunFig1([]int{100, 1000, 10000}, 5)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("users=%6d classI=%d classII=%d classIII=%d classIV=%d",
					r.Users, r.ClassI, r.ClassII, r.ClassIII, r.ClassIV)
			}
		}
	}
}

// BenchmarkFig6Heatmap regenerates Figure 6: the predicted thoughtstream
// latency heatmap plus measured subset.
func BenchmarkFig6Heatmap(b *testing.B) {
	model := benchModel(b)
	for i := 0; i < b.N; i++ {
		cfg := harness.DefaultFig6Config()
		cfg.Executions = 40
		res, err := harness.RunFig6(model, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("predicted corner cells: (100,10)=%.0fms (500,50)=%.0fms; mean(pred-actual)=%.0fms",
				ms(res.Predicted[0][0]),
				ms(res.Predicted[len(res.Predicted)-1][len(res.Predicted[0])-1]),
				ms(res.MeanDiff))
		}
	}
}

// BenchmarkFig7OptimizerComparison regenerates Figure 7: bounded
// lookups vs the cost-based unbounded scan across target popularity.
func BenchmarkFig7OptimizerComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := harness.DefaultFig7Config()
		cfg.Subscribers = []int{0, 1000, 3000, 5000}
		cfg.Executions = 120
		points, err := harness.RunFig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("subscribers=%5d bounded=%6.1fms unbounded=%6.1fms",
					p.Subscribers, ms(p.BoundedP99), ms(p.UnboundedP99))
			}
		}
	}
}

// BenchmarkFig8And9TPCWScale regenerates Figures 8-9: TPC-W throughput
// and tail latency vs storage nodes.
func BenchmarkFig8And9TPCWScale(b *testing.B) {
	benchScale(b, harness.TPCWWorkload(smallTPCW()), "TPC-W")
}

// BenchmarkFig10And11SCADrScale regenerates Figures 10-11: SCADr
// throughput and tail latency vs storage nodes.
func BenchmarkFig10And11SCADrScale(b *testing.B) {
	benchScale(b, harness.SCADrWorkload(smallSCADr()), "SCADr")
}

func smallTPCW() tpcw.Config {
	cfg := tpcw.DefaultConfig()
	cfg.CustomersPerNode = 100
	cfg.Items = 2000
	return cfg
}

func smallSCADr() scadr.Config {
	cfg := scadr.DefaultConfig()
	cfg.UsersPerNode = 200
	return cfg
}

func benchScale(b *testing.B, w harness.Workload, name string) {
	for i := 0; i < b.N; i++ {
		cfg := harness.ScaleConfig{
			NodeCounts:       []int{8, 16, 24},
			ThreadsPerClient: 6,
			Warmup:           500 * time.Millisecond,
			Measure:          1500 * time.Millisecond,
			Seed:             1,
			Strategy:         ParallelExecutor,
		}
		res, err := harness.RunScale(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range res.Points {
				b.Logf("%s nodes=%3d WIPS=%7.0f p99=%6.1fms", name, p.Nodes, p.Throughput, ms(p.P99))
			}
			b.Logf("%s linear fit R²=%.5f", name, res.Fit.R2)
		}
	}
}

// BenchmarkConcurrentSessionsSCADr drives 1..16 goroutine sessions of
// the SCADr mix against one shared engine (immediate mode, wall clock)
// and reports aggregate QPS and p99 — the engine-concurrency benchmark,
// beyond the paper's figures.
func BenchmarkConcurrentSessionsSCADr(b *testing.B) {
	benchConcurrent(b, harness.SCADrWorkload(smallSCADr()), "SCADr")
}

// BenchmarkConcurrentSessionsTPCW is the TPC-W ordering-mix variant.
func BenchmarkConcurrentSessionsTPCW(b *testing.B) {
	benchConcurrent(b, harness.TPCWWorkload(smallTPCW()), "TPC-W")
}

func benchConcurrent(b *testing.B, w harness.Workload, name string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := harness.DefaultConcurrentConfig()
		cfg.InteractionsPerGoroutine = 150
		res, err := harness.RunConcurrent(w, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Points[len(res.Points)-1]
		b.ReportMetric(last.QPS, "qps")
		b.ReportMetric(ms(last.P99), "p99-ms")
		if i == 0 {
			for _, p := range res.Points {
				b.Logf("%s goroutines=%3d QPS=%7.0f p99=%7.3fms mean=%7.3fms",
					name, p.Goroutines, p.QPS, ms(p.P99), ms(p.Mean))
			}
			b.Logf("%s speedup at best point: %.2fx over 1 goroutine", name, res.Speedup())
		}
	}
}

// BenchmarkFig12ExecutionStrategies regenerates Figure 12: the three
// executors' 99th-percentile latencies.
func BenchmarkFig12ExecutionStrategies(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := harness.RunFig12(9)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, s := range []Strategy{LazyExecutor, SimpleExecutor, ParallelExecutor} {
				b.Logf("%s mix-p99=%.1fms fanout-p99=%.1fms fanout-reqs/exec=%.1f",
					s, ms(res.P99[s]), ms(res.FanOutP99[s]), res.FanOutOps[s])
			}
		}
	}
}

// BenchmarkCompileThoughtstream measures raw compiler throughput on the
// paper's headline query (no I/O).
func BenchmarkCompileThoughtstream(b *testing.B) {
	db := Open(Config{Nodes: 2})
	db.MustExec(`CREATE TABLE users (username VARCHAR(20), PRIMARY KEY (username))`)
	db.MustExec(`CREATE TABLE subscriptions (owner VARCHAR(20), target VARCHAR(20), approved BOOLEAN,
		PRIMARY KEY (owner, target), FOREIGN KEY (target) REFERENCES users, CARDINALITY LIMIT 100 (owner))`)
	db.MustExec(`CREATE TABLE thoughts (owner VARCHAR(20), timestamp INT, text VARCHAR(140), PRIMARY KEY (owner, timestamp))`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Distinct text defeats the plan cache so the compiler runs.
		sql := fmt.Sprintf(`SELECT thoughts.* FROM subscriptions s JOIN thoughts
			WHERE thoughts.owner = s.target AND s.owner = [1: u] AND s.approved = true
			ORDER BY thoughts.timestamp DESC LIMIT %d`, 2+i%50)
		if _, err := db.Prepare(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExecuteFindUser measures end-to-end execution of a Class I
// query in immediate mode (no simulated latency): pure engine overhead.
func BenchmarkExecuteFindUser(b *testing.B) {
	db := Open(Config{Nodes: 4})
	db.MustExec(`CREATE TABLE users (username VARCHAR(20), bio VARCHAR(140), PRIMARY KEY (username))`)
	for i := 0; i < 1000; i++ {
		db.MustExec(`INSERT INTO users VALUES (?, 'hi')`, Str(fmt.Sprintf("u%04d", i)))
	}
	q, err := db.Prepare(`SELECT * FROM users WHERE username = ?`)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.Execute(Str(fmt.Sprintf("u%04d", i%1000))); err != nil {
			b.Fatal(err)
		}
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
