// Quickstart: open a PIQL database, define a schema with a cardinality
// constraint, insert data, and run bounded queries — including a
// paginated traversal with a serializable client-side cursor.
package main

import (
	"fmt"
	"log"

	"piql"
)

func main() {
	db := piql.Open(piql.Config{Nodes: 4})

	// Schema: a cardinality constraint bounds how many tags any one
	// article may have, making tag queries scale-independent.
	db.MustExec(`CREATE TABLE articles (
		slug VARCHAR(40),
		title VARCHAR(120),
		views INT,
		PRIMARY KEY (slug))`)
	db.MustExec(`CREATE TABLE tags (
		slug VARCHAR(40),
		tag VARCHAR(20),
		PRIMARY KEY (slug, tag),
		FOREIGN KEY (slug) REFERENCES articles,
		CARDINALITY LIMIT 20 (slug))`)

	articles := []struct {
		slug, title string
		views       int64
	}{
		{"go-generics", "Understanding Go Generics", 1200},
		{"go-channels", "Channels In Depth", 3400},
		{"kv-stores", "Key/Value Stores for Web Apps", 800},
		{"scale-indep", "What Is Scale Independence?", 5600},
		{"btrees", "B-Trees from Scratch", 950},
	}
	for _, a := range articles {
		db.MustExec(`INSERT INTO articles VALUES (?, ?, ?)`,
			piql.Str(a.slug), piql.Str(a.title), piql.Int(a.views))
		db.MustExec(`INSERT INTO tags VALUES (?, 'engineering')`, piql.Str(a.slug))
	}
	db.MustExec(`INSERT INTO tags VALUES ('go-generics', 'go')`)
	db.MustExec(`INSERT INTO tags VALUES ('go-channels', 'go')`)

	// A Class I query: constant work regardless of database size.
	q, err := db.Prepare(`SELECT title, views FROM articles WHERE slug = ?`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("point lookup is bounded by %d key/value operations\n", q.OpBound())
	res, err := q.Execute(piql.Str("go-channels"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-> %s (%d views)\n\n", res.Rows[0][0].S, res.Rows[0][1].I)

	// A bounded join: tags of an article -> article details.
	joined, err := db.Query(`
		SELECT t.tag, a.title FROM tags t JOIN articles a
		WHERE a.slug = t.slug AND t.slug = ?`, piql.Str("go-generics"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tags of go-generics:")
	for _, row := range joined.Rows {
		fmt.Printf("  %-12s %s\n", row[0].S, row[1].S)
	}
	fmt.Println()

	// PAGINATE: traverse an unbounded result one bounded page at a time.
	// The cursor serializes to a small byte string that can ship to the
	// browser and resume on any application server.
	pageQ, err := db.Prepare(`SELECT slug, title FROM articles
		WHERE slug > '' ORDER BY slug PAGINATE 2`)
	if err != nil {
		log.Fatal(err)
	}
	cur, err := pageQ.Paginate()
	if err != nil {
		log.Fatal(err)
	}
	page := 1
	for !cur.Done() {
		res, err := cur.Next()
		if err != nil {
			log.Fatal(err)
		}
		if res == nil || len(res.Rows) == 0 {
			break
		}
		fmt.Printf("page %d (cursor is %d bytes serialized):\n", page, len(cur.Serialize()))
		for _, row := range res.Rows {
			fmt.Printf("  %-14s %s\n", row[0].S, row[1].S)
		}
		// Round-trip the cursor through bytes, as a web app would.
		cur, err = db.RestoreCursor(cur.Serialize())
		if err != nil {
			log.Fatal(err)
		}
		page++
	}
}
