// Bookstore: the TPC-W scenario on the public API — token-indexed title
// search, foreign-key joins to authors, and an order history page, all
// with compile-time operation bounds printed per query.
package main

import (
	"fmt"
	"log"

	"piql"
)

func main() {
	db := piql.Open(piql.Config{Nodes: 6})

	db.MustExec(`CREATE TABLE author (
		a_id INT, a_name VARCHAR(40), PRIMARY KEY (a_id))`)
	db.MustExec(`CREATE TABLE item (
		i_id INT,
		i_title VARCHAR(80),
		i_a_id INT,
		i_cost INT,
		PRIMARY KEY (i_id),
		FOREIGN KEY (i_a_id) REFERENCES author)`)
	db.MustExec(`CREATE TABLE orders (
		o_id INT,
		o_uname VARCHAR(20),
		o_date INT,
		o_total INT,
		PRIMARY KEY (o_id),
		CARDINALITY LIMIT 200 (o_uname))`)

	authors := []string{"Codd", "Gray", "Stonebraker", "Lamport"}
	for i, a := range authors {
		db.MustExec(`INSERT INTO author VALUES (?, ?)`, piql.Int(int64(i)), piql.Str(a))
	}
	books := []struct {
		title  string
		author int64
		cost   int64
	}{
		{"A Relational Model of Data", 0, 1200},
		{"Transaction Processing Concepts", 1, 4500},
		{"Readings in Database Systems", 2, 3300},
		{"Time Clocks and Ordering", 3, 900},
		{"The Transaction Concept", 1, 700},
		{"One Size Fits All? Database Architectures", 2, 1100},
	}
	for i, b := range books {
		db.MustExec(`INSERT INTO item VALUES (?, ?, ?, ?)`,
			piql.Int(int64(i)), piql.Str(b.title), piql.Int(b.author), piql.Int(b.cost))
	}
	for o := 0; o < 8; o++ {
		db.MustExec(`INSERT INTO orders VALUES (?, 'alice', ?, ?)`,
			piql.Int(int64(o)), piql.Int(int64(7000+o)), piql.Int(int64(100*o+50)))
	}

	// Title search: LIKE is rejected, CONTAINS uses an inverted
	// full-text index the compiler creates automatically (Section 5.3).
	if _, err := db.Prepare(`SELECT * FROM item WHERE i_title LIKE '%data%' LIMIT 10`); err != nil {
		fmt.Printf("LIKE rejected as expected:\n  %v\n\n", err)
	}
	search, err := db.Prepare(`
		SELECT i.i_title, i.i_cost, a.a_name
		FROM item i JOIN author a
		WHERE i.i_a_id = a.a_id AND i.i_title CONTAINS [1: word]
		ORDER BY i.i_title LIMIT 10`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("title search is bounded by %d key/value operations; plan:\n%s\n",
		search.OpBound(), search.Explain())
	res, err := search.Execute(piql.Str("transaction"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(`books matching "transaction":`)
	for _, row := range res.Rows {
		fmt.Printf("  %-42s $%-6d by %s\n", row[0].S, row[1].I/100, row[2].S)
	}
	fmt.Println()

	// Order history: newest first, bounded by the schema's cardinality
	// limit and the LIMIT clause.
	history, err := db.Prepare(`
		SELECT o_id, o_date, o_total FROM orders
		WHERE o_uname = ? ORDER BY o_date DESC LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	hres, err := history.Execute(piql.Str("alice"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice's most recent orders:")
	for _, row := range hres.Rows {
		fmt.Printf("  order %2d at t=%d total=%d\n", row[0].I, row[1].I, row[2].I)
	}
}
