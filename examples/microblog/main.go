// Microblog: the paper's SCADr scenario built on the public API — a
// Twitter-like service whose every page is served by scale-independent
// queries. Demonstrates the thoughtstream query of Figure 3, cardinality
// enforcement at the write path, and SLO prediction.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"piql"
)

const maxSubscriptions = 20

func main() {
	db := piql.Open(piql.Config{Nodes: 6})

	db.MustExec(`CREATE TABLE users (
		username VARCHAR(20),
		bio VARCHAR(140),
		PRIMARY KEY (username))`)
	db.MustExec(fmt.Sprintf(`CREATE TABLE subscriptions (
		owner VARCHAR(20),
		target VARCHAR(20),
		approved BOOLEAN,
		PRIMARY KEY (owner, target),
		FOREIGN KEY (target) REFERENCES users,
		CARDINALITY LIMIT %d (owner))`, maxSubscriptions))
	db.MustExec(`CREATE TABLE thoughts (
		owner VARCHAR(20),
		timestamp INT,
		text VARCHAR(140),
		PRIMARY KEY (owner, timestamp))`)

	// A little social graph.
	people := []string{"ann", "bob", "carol", "dave", "erin"}
	for _, p := range people {
		db.MustExec(`INSERT INTO users VALUES (?, ?)`, piql.Str(p), piql.Str("hi, i am "+p))
	}
	follow := func(who string, whom ...string) {
		for _, w := range whom {
			db.MustExec(`INSERT INTO subscriptions VALUES (?, ?, true)`, piql.Str(who), piql.Str(w))
		}
	}
	follow("ann", "bob", "carol", "erin")
	follow("bob", "ann")
	ts := int64(1000)
	post := func(who, text string) {
		ts++
		db.MustExec(`INSERT INTO thoughts VALUES (?, ?, ?)`, piql.Str(who), piql.Int(ts), piql.Str(text))
	}
	post("bob", "compiling a query should tell you what it costs")
	post("carol", "success disasters are real")
	post("erin", "data independence and scale independence!")
	post("bob", "bounded plans or it didn't happen")
	post("carol", "my thoughtstream is always fast")

	// The thoughtstream query (Figure 3 of the paper), with EXPLAIN.
	stream, err := db.Prepare(`
		SELECT thoughts.owner, thoughts.text
		FROM subscriptions s JOIN thoughts
		WHERE thoughts.owner = s.target
		  AND s.owner = [1: me]
		  AND s.approved = true
		ORDER BY thoughts.timestamp DESC
		LIMIT 10`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("thoughtstream physical plan:")
	fmt.Println(indent(stream.Explain()))

	res, err := stream.Execute(piql.Str("ann"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ann's thoughtstream (most recent first):")
	for _, row := range res.Rows {
		fmt.Printf("  @%-6s %s\n", row[0].S, row[1].S)
	}
	fmt.Println()

	// The cardinality constraint is enforced when the database writes:
	// the 21st subscription is rejected and rolled back.
	for i := 0; i < maxSubscriptions+5; i++ {
		err := db.Exec(`INSERT INTO subscriptions VALUES (?, ?, true)`,
			piql.Str("dave"), piql.Str(fmt.Sprintf("bot%02d", i)))
		if err != nil {
			fmt.Printf("subscription %d rejected: %v\n", i+1, err)
			break
		}
	}

	// SLO prediction: will the thoughtstream meet a 500 ms objective?
	fmt.Println("\ntraining the SLO model (a few seconds)...")
	model, err := piql.TrainSLOModel()
	if err != nil {
		log.Fatal(err)
	}
	pred, err := model.Predict(stream)
	if err != nil {
		log.Fatal(err)
	}
	slo := 500 * time.Millisecond
	fmt.Printf("predicted worst-interval 99th percentile: %v\n", pred.Max99.Round(time.Millisecond))
	fmt.Printf("meets %v SLO in >=90%% of intervals: %v\n", slo, pred.MeetsSLO(slo, 0.9))
}

func indent(s string) string {
	return "  " + strings.ReplaceAll(strings.TrimRight(s, "\n"), "\n", "\n  ")
}
