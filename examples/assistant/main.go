// Assistant: the Performance Insight Assistant workflow of Section 6.4.
// A developer writes an unbounded query, the compiler rejects it with
// concrete suggestions, and each fix is applied until the query both
// compiles and is predicted to meet its SLO.
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"piql"
)

func main() {
	db := piql.Open(piql.Config{Nodes: 4})
	db.MustExec(`CREATE TABLE events (
		room VARCHAR(20),
		starts INT,
		title VARCHAR(80),
		PRIMARY KEY (room, starts))`)

	// Attempt 1: list a room's events — unbounded (a room can have any
	// number of events), so the compiler rejects it and explains why.
	fmt.Println("attempt 1: SELECT * FROM events WHERE room = ?")
	_, err := db.Prepare(`SELECT * FROM events WHERE room = ?`)
	var ube *piql.UnboundedQueryError
	if !errors.As(err, &ube) {
		log.Fatalf("expected an unbounded-query rejection, got %v", err)
	}
	fmt.Printf("rejected: %s\n", ube.Reason)
	for _, s := range ube.Suggestions {
		fmt.Println("  assistant:", s)
	}
	fmt.Println()

	// Attempt 2: follow the pagination suggestion. Now every interaction
	// does bounded work no matter how many events exist.
	fmt.Println("attempt 2: ... ORDER BY starts DESC PAGINATE 10")
	paged, err := db.Prepare(`SELECT * FROM events WHERE room = ?
		ORDER BY starts DESC PAGINATE 10`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accepted: bounded by %d key/value operations per page\n\n", paged.OpBound())

	// Attempt 3: the schema-constraint route. With a cardinality limit
	// on room the full (bounded) list compiles too.
	db.MustExec(`CREATE TABLE bookings (
		room VARCHAR(20),
		day INT,
		who VARCHAR(20),
		PRIMARY KEY (room, day),
		CARDINALITY LIMIT 30 (room))`)
	fmt.Println("attempt 3: bookings with CARDINALITY LIMIT 30 (room)")
	all, err := db.Prepare(`SELECT day, who FROM bookings WHERE room = ?`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accepted: bounded by %d operations (the schema's cardinality limit)\n", all.OpBound())
	fmt.Println(all.ExplainLogical())

	// Finally: is the bounded query fast enough for the SLO? (This is
	// how Figure 6's heatmap helps developers size their limits.)
	fmt.Println("training the SLO model (a few seconds)...")
	model, err := piql.TrainSLOModel()
	if err != nil {
		log.Fatal(err)
	}
	pred, err := model.Predict(all)
	if err != nil {
		log.Fatal(err)
	}
	slo := 500 * time.Millisecond
	fmt.Printf("predicted worst-interval p99 = %v; meets %v SLO: %v\n",
		pred.Max99.Round(time.Millisecond), slo, pred.MeetsSLO(slo, 0.9))
}
