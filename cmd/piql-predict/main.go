// Command piql-predict trains the SLO compliance model and prints the
// Figure 6 heatmap for the SCADr thoughtstream query, plus per-cell SLO
// verdicts — the Performance Insight Assistant's cardinality-sizing
// tool (Section 6.4):
//
//	piql-predict -slo 500ms -quantile 0.9
//
// With -fig7 it instead compares the static analyzer's predicted p99
// against measured p99 for the Figure 7 subscriber-intersection query:
// the PIQL plan's measured latency stays flat at every popularity
// level, while the cost-based plan analyzes as unbounded — no
// prediction exists, and its measured latency grows with the data. The
// final verdict reports whether the static prediction covered the
// worst measured p99; a miss means the trained model's intervals
// under-sampled the simulator's service-time volatility, the case for
// online recalibration (see ROADMAP).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"piql/internal/analyze"
	"piql/internal/harness"
	"piql/internal/predict"
	"piql/internal/stats"
)

func main() {
	slo := flag.Duration("slo", 500*time.Millisecond, "target 99th-percentile response time")
	quantile := flag.Float64("quantile", 0.9, "required fraction of compliant intervals")
	quick := flag.Bool("quick", false, "faster, coarser training")
	fig7 := flag.Bool("fig7", false, "compare predicted vs measured p99 for the Figure 7 plans")
	flag.Parse()

	cfg := predict.DefaultTrainConfig()
	if *quick {
		cfg.Intervals = 8
		cfg.RepsPerInterval = 5
	}
	fmt.Fprintf(os.Stderr, "training operator models (%d intervals)...\n", cfg.Intervals)
	model, err := predict.Train(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "piql-predict:", err)
		os.Exit(1)
	}

	if *fig7 {
		if err := runFig7Comparison(model, *quick); err != nil {
			fmt.Fprintln(os.Stderr, "piql-predict:", err)
			os.Exit(1)
		}
		return
	}

	subsGrid := []int{100, 150, 200, 250, 300, 350, 400, 450, 500}
	pageGrid := []int{10, 15, 20, 25, 30, 35, 40, 45, 50}
	const subBytes, thoughtBytes = 44, 186

	fmt.Printf("thoughtstream predicted p99 (ms); * = meets %v SLO in >=%.0f%% of intervals\n",
		*slo, *quantile*100)
	fmt.Printf("%10s", "subs\\page")
	for _, p := range pageGrid {
		fmt.Printf("%7d", p)
	}
	fmt.Println()
	for _, subs := range subsGrid {
		fmt.Printf("%10d", subs)
		for _, page := range pageGrid {
			pred, err := model.PredictOps([]predict.Op{
				{Kind: predict.KindScan, Alpha: subs, Beta: subBytes},
				{Kind: predict.KindSortedJoin, Alpha: subs, AlphaJ: page, Beta: thoughtBytes},
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "piql-predict:", err)
				os.Exit(1)
			}
			mark := " "
			if pred.MeetsSLO(*slo, *quantile) {
				mark = "*"
			}
			fmt.Printf("%6.0f%s", float64(pred.Max99)/float64(time.Millisecond), mark)
		}
		fmt.Println()
	}
	fmt.Println("\npick any starred (subscriptions, page) pair to satisfy the SLO;")
	fmt.Println("the paper recommends treating it as a starting point and loosening later.")
}

// runFig7Comparison analyzes both Figure 7 plans statically, predicts
// the bounded plan's p99 from its bound, then measures both plans on a
// live simulated cluster across the popularity sweep.
func runFig7Comparison(model *predict.Model, quick bool) error {
	bounded, unbounded, err := harness.Fig7Plans(50)
	if err != nil {
		return err
	}
	bb, ub := analyze.Plan(bounded), analyze.Plan(unbounded)
	if !bb.Bounded {
		return fmt.Errorf("fig7: PIQL plan analyzed unbounded: %s", bb.Reason)
	}
	if ub.Bounded {
		return fmt.Errorf("fig7: cost-based plan analyzed bounded")
	}
	pred, err := bb.Predict(model)
	if err != nil {
		return err
	}

	fmt.Println("\nPIQL plan — static analysis:")
	fmt.Print(bb.String())
	fmt.Printf("predicted p99: mean %.1f ms, worst interval %.1f ms (one static prediction, independent of database size)\n",
		ms(pred.Mean99), ms(pred.Max99))
	fmt.Println("\ncost-based plan — static analysis:")
	fmt.Print(ub.String())
	fmt.Println("no prediction exists: the operator chain has no closed-form bound.")

	hcfg := harness.DefaultFig7Config()
	if quick {
		hcfg.Subscribers = []int{0, 1000, 2000, 3000, 4000, 5000}
		hcfg.Executions = 100
	}
	fmt.Fprintln(os.Stderr, "\nmeasuring both plans on a live cluster...")
	points, err := harness.RunFig7(hcfg)
	if err != nil {
		return err
	}

	fmt.Printf("\n%12s %18s %18s %18s\n", "subscribers", "PIQL measured", "PIQL predicted", "cost measured")
	var measured []time.Duration
	for _, p := range points {
		fmt.Printf("%12d %16.1fms %16.1fms %16.1fms\n",
			p.Subscribers, ms(p.BoundedP99), ms(pred.Max99), ms(p.UnboundedP99))
		measured = append(measured, p.BoundedP99)
	}
	worst := stats.Percentile(measured, 100)
	verdict := "conservative (measured under prediction at every size)"
	switch {
	case worst > pred.Max99*5/4:
		verdict = fmt.Sprintf("VIOLATED by %.1f ms", ms(worst-pred.Max99))
	case worst > pred.Max99:
		verdict = "within the model's grid round-up tolerance"
	}
	fmt.Printf("\nprediction vs worst measured PIQL p99: %.1f ms predicted, %.1f ms measured — %s\n",
		ms(pred.Max99), ms(worst), verdict)
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
