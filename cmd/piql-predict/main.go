// Command piql-predict trains the SLO compliance model and prints the
// Figure 6 heatmap for the SCADr thoughtstream query, plus per-cell SLO
// verdicts — the Performance Insight Assistant's cardinality-sizing
// tool (Section 6.4):
//
//	piql-predict -slo 500ms -quantile 0.9
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"piql/internal/predict"
)

func main() {
	slo := flag.Duration("slo", 500*time.Millisecond, "target 99th-percentile response time")
	quantile := flag.Float64("quantile", 0.9, "required fraction of compliant intervals")
	quick := flag.Bool("quick", false, "faster, coarser training")
	flag.Parse()

	cfg := predict.DefaultTrainConfig()
	if *quick {
		cfg.Intervals = 8
		cfg.RepsPerInterval = 5
	}
	fmt.Fprintf(os.Stderr, "training operator models (%d intervals)...\n", cfg.Intervals)
	model, err := predict.Train(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "piql-predict:", err)
		os.Exit(1)
	}

	subsGrid := []int{100, 150, 200, 250, 300, 350, 400, 450, 500}
	pageGrid := []int{10, 15, 20, 25, 30, 35, 40, 45, 50}
	const subBytes, thoughtBytes = 44, 186

	fmt.Printf("thoughtstream predicted p99 (ms); * = meets %v SLO in >=%.0f%% of intervals\n",
		*slo, *quantile*100)
	fmt.Printf("%10s", "subs\\page")
	for _, p := range pageGrid {
		fmt.Printf("%7d", p)
	}
	fmt.Println()
	for _, subs := range subsGrid {
		fmt.Printf("%10d", subs)
		for _, page := range pageGrid {
			pred, err := model.PredictOps([]predict.Op{
				{Kind: predict.KindScan, Alpha: subs, Beta: subBytes},
				{Kind: predict.KindSortedJoin, Alpha: subs, AlphaJ: page, Beta: thoughtBytes},
			})
			if err != nil {
				fmt.Fprintln(os.Stderr, "piql-predict:", err)
				os.Exit(1)
			}
			mark := " "
			if pred.MeetsSLO(*slo, *quantile) {
				mark = "*"
			}
			fmt.Printf("%6.0f%s", float64(pred.Max99)/float64(time.Millisecond), mark)
		}
		fmt.Println()
	}
	fmt.Println("\npick any starred (subscriptions, page) pair to satisfy the SLO;")
	fmt.Println("the paper recommends treating it as a starting point and loosening later.")
}
