// Command piqlsh is a minimal interactive PIQL shell over a fresh
// simulated cluster:
//
//	piql> CREATE TABLE users (name VARCHAR(20), bio VARCHAR(140), PRIMARY KEY (name));
//	piql> INSERT INTO users VALUES ('ann', 'hello');
//	piql> SELECT * FROM users WHERE name = 'ann';
//	piql> EXPLAIN SELECT * FROM users WHERE name = 'ann';
//	piql> EXPLAIN LOGICAL SELECT ...;
//
// Statements end with a semicolon and may span lines. Unbounded queries
// print the Performance Insight Assistant's suggestions.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"piql"
)

func main() {
	nodes := flag.Int("nodes", 4, "simulated storage nodes")
	slo := flag.Duration("slo", 0, "admission SLO on predicted p99 (0 = off; needs -train)")
	maxOps := flag.Int("maxops", 0, "admission budget on the static operation bound (0 = off)")
	enforce := flag.Bool("enforce", false, "refuse queries that violate -slo/-maxops at Prepare")
	train := flag.Bool("train", false, "train the SLO model at startup (tens of seconds); EXPLAIN then prints predicted p99")
	flag.Parse()

	db := piql.Open(piql.Config{Nodes: *nodes, SLO: *slo, MaxOps: *maxOps, Enforce: *enforce})
	var model *piql.SLOModel
	if *train {
		fmt.Println("training SLO model (tens of seconds)...")
		m, err := piql.TrainSLOModel()
		if err != nil {
			fmt.Fprintln(os.Stderr, "piqlsh: train:", err)
			os.Exit(1)
		}
		model = m
		db.UseSLOModel(model)
	}
	fmt.Printf("PIQL shell — %d simulated storage nodes. End statements with ';'. Ctrl-D exits.\n", *nodes)
	if *enforce {
		fmt.Printf("admission control ON (slo=%v, maxops=%d)\n", *slo, *maxOps)
	}

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("piql> ")
		} else {
			fmt.Print("  ... ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt()
			continue
		}
		stmt := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(buf.String()), ";"))
		buf.Reset()
		if stmt != "" {
			runStatement(db, model, stmt)
		}
		prompt()
	}
	fmt.Println()
}

func runStatement(db *piql.DB, model *piql.SLOModel, stmt string) {
	upper := strings.ToUpper(stmt)
	switch {
	case strings.HasPrefix(upper, "EXPLAIN LOGICAL "):
		q, err := db.Prepare(stmt[len("EXPLAIN LOGICAL "):])
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Print(q.ExplainLogical())
	case strings.HasPrefix(upper, "EXPLAIN "):
		q, err := db.Prepare(stmt[len("EXPLAIN "):])
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Print(q.Explain())
		fmt.Println("-- static bound derivation:")
		fmt.Print(q.Bound().String())
		if model != nil {
			pred, err := model.Predict(q)
			if err != nil {
				fmt.Println("-- predicted p99: ", err)
				return
			}
			fmt.Printf("-- predicted p99: mean %v, worst interval %v\n", pred.Mean99, pred.Max99)
		}
	case strings.HasPrefix(upper, "SELECT"):
		res, err := db.Query(stmt)
		if err != nil {
			fmt.Println(err)
			return
		}
		printResult(res)
	default:
		if err := db.Exec(stmt); err != nil {
			fmt.Println(err)
			return
		}
		fmt.Println("ok")
	}
}

func printResult(res *piql.Result) {
	for i, name := range res.Names {
		if i > 0 {
			fmt.Print(" | ")
		}
		fmt.Print(name)
	}
	fmt.Println()
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				fmt.Print(" | ")
			}
			fmt.Print(v)
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}
