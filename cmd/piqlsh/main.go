// Command piqlsh is a minimal interactive PIQL shell over a fresh
// simulated cluster:
//
//	piql> CREATE TABLE users (name VARCHAR(20), bio VARCHAR(140), PRIMARY KEY (name));
//	piql> INSERT INTO users VALUES ('ann', 'hello');
//	piql> SELECT * FROM users WHERE name = 'ann';
//	piql> EXPLAIN SELECT * FROM users WHERE name = 'ann';
//	piql> EXPLAIN LOGICAL SELECT ...;
//
// Statements end with a semicolon and may span lines. Unbounded queries
// print the Performance Insight Assistant's suggestions.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"piql"
)

func main() {
	nodes := flag.Int("nodes", 4, "simulated storage nodes")
	flag.Parse()

	db := piql.Open(piql.Config{Nodes: *nodes})
	fmt.Printf("PIQL shell — %d simulated storage nodes. End statements with ';'. Ctrl-D exits.\n", *nodes)

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1024*1024), 1024*1024)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("piql> ")
		} else {
			fmt.Print("  ... ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			prompt()
			continue
		}
		stmt := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(buf.String()), ";"))
		buf.Reset()
		if stmt != "" {
			runStatement(db, stmt)
		}
		prompt()
	}
	fmt.Println()
}

func runStatement(db *piql.DB, stmt string) {
	upper := strings.ToUpper(stmt)
	switch {
	case strings.HasPrefix(upper, "EXPLAIN LOGICAL "):
		q, err := db.Prepare(stmt[len("EXPLAIN LOGICAL "):])
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Print(q.ExplainLogical())
	case strings.HasPrefix(upper, "EXPLAIN "):
		q, err := db.Prepare(stmt[len("EXPLAIN "):])
		if err != nil {
			fmt.Println(err)
			return
		}
		fmt.Print(q.Explain())
	case strings.HasPrefix(upper, "SELECT"):
		res, err := db.Query(stmt)
		if err != nil {
			fmt.Println(err)
			return
		}
		printResult(res)
	default:
		if err := db.Exec(stmt); err != nil {
			fmt.Println(err)
			return
		}
		fmt.Println("ok")
	}
}

func printResult(res *piql.Result) {
	for i, name := range res.Names {
		if i > 0 {
			fmt.Print(" | ")
		}
		fmt.Print(name)
	}
	fmt.Println()
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				fmt.Print(" | ")
			}
			fmt.Print(v)
		}
		fmt.Println()
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}
