// Command piql-vet runs the project's concurrency-invariant analyzers
// (internal/lint) as a `go vet` tool:
//
//	go build -o bin/piql-vet ./cmd/piql-vet
//	go vet -vettool=bin/piql-vet ./...
//
// It speaks the go command's vettool protocol (the same one
// golang.org/x/tools/go/analysis/unitchecker implements, re-created
// here on the standard library because this build cannot fetch
// modules): `-V=full` prints a version line ending in a buildID derived
// from the executable's contents so `go vet` can cache results, and
// each analysis unit arrives as a JSON *.cfg file naming the package's
// Go files. The analyzers are purely syntactic, so units that exist
// only to export type facts (VetxOnly) are acknowledged with an empty
// facts file and skipped.
//
// Violations print as file:line:col diagnostics and exit with status 2,
// which `go vet` reports as a failure; a site that is allowed to break
// a rule carries a //lint:allow directive (see internal/lint).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"piql/internal/lint"
)

// config is the subset of the go command's vet configuration the
// syntactic analyzers need.
type config struct {
	ID         string
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

func main() {
	var cfgPath string
	jsonOut := false
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			return
		case arg == "-flags" || arg == "--flags":
			// go vet asks for the tool's flag list (JSON) so it can
			// validate pass-through flags before invoking it per unit.
			fmt.Println(`[{"Name":"json","Bool":true,"Usage":"emit JSON output"}]`)
			return
		case arg == "-json" || arg == "--json":
			jsonOut = true
		case strings.HasSuffix(arg, ".cfg"):
			cfgPath = arg
		case strings.HasPrefix(arg, "-"):
			// Other vet flags (e.g. analyzer toggles for the standard
			// tool) do not apply to this checker; ignore them.
		default:
			fatalf("unexpected argument %q (want a .cfg file; run via go vet -vettool)", arg)
		}
	}
	if cfgPath == "" {
		fatalf("no .cfg argument; this tool is meant to be run via go vet -vettool")
	}

	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("%v", err)
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing %s: %v", cfgPath, err)
	}
	// The analyzers keep no cross-package facts, but go vet expects the
	// facts file to exist before it will cache the unit.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fatalf("writing facts: %v", err)
		}
	}
	if cfg.VetxOnly {
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fatalf("%v", err)
		}
		files = append(files, f)
	}
	diags := lint.Run(fset, files, cfg.ImportPath, lint.Analyzers)
	if len(diags) == 0 {
		return
	}
	if jsonOut {
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		byAnalyzer := map[string][]jsonDiag{}
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
				Posn:    d.Pos.String(),
				Message: d.Message,
			})
		}
		out, _ := json.MarshalIndent(map[string]any{cfg.ImportPath: byAnalyzer}, "", "\t")
		os.Stdout.Write(append(out, '\n'))
		return
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	os.Exit(2)
}

// printVersion emits the version line `go vet` hashes for its build
// cache; the buildID must change whenever the tool's behavior could,
// so it is the hash of the executable itself.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fatalf("%v", err)
	}
	f, err := os.Open(exe)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(os.Args[0]), h.Sum(nil))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "piql-vet: "+format+"\n", args...)
	os.Exit(1)
}
