// Command piql-vet runs the project's concurrency-invariant analyzers
// (internal/lint) as a `go vet` tool:
//
//	go build -o bin/piql-vet ./cmd/piql-vet
//	go vet -vettool=bin/piql-vet ./...
//
// or directly, with no go vet handshake:
//
//	piql-vet -standalone ./...             # parse+typecheck from source
//	piql-vet -standalone -json ./...       # machine-readable diagnostics
//	piql-vet -standalone -lockgraph        # print the inferred lock hierarchy
//	piql-vet -standalone -cache DIR ./...  # incremental: replay per-package
//	                                       # results keyed by content+facts
//	piql-vet -standalone -changed BASE ./... # only packages differing from
//	                                       # the merge-base with BASE, plus
//	                                       # their module-local dependents
//	piql-vet -standalone -timing ./...     # append run timing (elapsed,
//	                                       # analyzed vs replayed) to output
//	piql-vet -standalone -dataflow FUNC    # dump FUNC's def-use chains
//	                                       # (dataflow core debug printer)
//	piql-vet -escapebudget [-update]       # hot-path heap-escape gate
//	                                       # (runs go build -gcflags=-m)
//
// It speaks the go command's vettool protocol (the same one
// golang.org/x/tools/go/analysis/unitchecker implements, re-created
// here on the standard library because this build cannot fetch
// modules): `-V=full` prints a version line ending in a buildID derived
// from the executable's contents so `go vet` can cache results, and
// each analysis unit arrives as a JSON *.cfg file naming the package's
// Go files, its dependencies' compiler export data (for typechecking),
// and their vetx facts files. Module-local units are typechecked and
// analyzed interprocedurally; their function summaries (may-block,
// lock-acquisition sets, transient-error returns — see internal/lint)
// are written to the unit's VetxOutput so dependent packages' analyses
// can see across the package boundary. Units outside the module are
// acknowledged with an empty facts file and skipped.
//
// Violations print as file:line:col diagnostics and exit with status 2,
// which `go vet` reports as a failure; a site that is allowed to break
// a rule carries a //lint:allow directive (see internal/lint).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"piql/internal/lint"
)

// config mirrors the go command's vet configuration (the fields of
// unitchecker.Config this tool consumes).
type config struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole tool; main only binds it to the process. Exit
// codes: 0 clean, 1 operational error, 2 findings.
func run(args []string, stdout, stderr io.Writer) int {
	var (
		cfgPath    string
		jsonOut    bool
		standalone bool
		lockgraph  bool
		escBudget  bool
		escUpdate  bool
		timing     bool
		cacheDir   string
		chdir      string
		dataflowFn string
		changed    string
		patterns   []string
	)
	for i := 0; i < len(args); i++ {
		arg := args[i]
		switch {
		case arg == "-V=full" || arg == "--V=full":
			return printVersion(stdout, stderr)
		case arg == "-flags" || arg == "--flags":
			// go vet asks for the tool's flag list (JSON) so it can
			// validate pass-through flags before invoking it per unit.
			fmt.Fprintln(stdout, `[{"Name":"json","Bool":true,"Usage":"emit JSON output"}]`)
			return 0
		case arg == "-json" || arg == "--json":
			jsonOut = true
		case arg == "-standalone" || arg == "--standalone":
			standalone = true
		case arg == "-lockgraph" || arg == "--lockgraph":
			standalone = true
			lockgraph = true
		case arg == "-escapebudget" || arg == "--escapebudget":
			escBudget = true
		case arg == "-update" || arg == "--update":
			escUpdate = true
		case arg == "-timing" || arg == "--timing":
			timing = true
		case arg == "-cache" || arg == "--cache":
			if i+1 >= len(args) {
				fmt.Fprintln(stderr, "piql-vet: -cache needs a directory")
				return 1
			}
			i++
			cacheDir = args[i]
		case strings.HasPrefix(arg, "-cache="):
			cacheDir = strings.TrimPrefix(arg, "-cache=")
		case arg == "-dataflow" || arg == "--dataflow":
			if i+1 >= len(args) {
				fmt.Fprintln(stderr, "piql-vet: -dataflow needs a function name")
				return 1
			}
			i++
			standalone = true
			dataflowFn = args[i]
		case strings.HasPrefix(arg, "-dataflow="):
			standalone = true
			dataflowFn = strings.TrimPrefix(arg, "-dataflow=")
		case arg == "-changed" || arg == "--changed":
			if i+1 >= len(args) {
				fmt.Fprintln(stderr, "piql-vet: -changed needs a git base ref")
				return 1
			}
			i++
			changed = args[i]
		case strings.HasPrefix(arg, "-changed="):
			changed = strings.TrimPrefix(arg, "-changed=")
		case arg == "-C" || arg == "--C":
			if i+1 >= len(args) {
				fmt.Fprintln(stderr, "piql-vet: -C needs a directory")
				return 1
			}
			i++
			chdir = args[i]
		case strings.HasPrefix(arg, "-C="):
			chdir = strings.TrimPrefix(arg, "-C=")
		case strings.HasSuffix(arg, ".cfg"):
			cfgPath = arg
		case strings.HasPrefix(arg, "-"):
			// Other vet flags (e.g. analyzer toggles for the standard
			// tool) do not apply to this checker; ignore them.
		default:
			patterns = append(patterns, arg)
		}
	}
	if escBudget {
		return runEscapeBudget(chdir, escUpdate, jsonOut, stdout, stderr)
	}
	if standalone {
		return runStandalone(chdir, patterns, standaloneOpts{
			jsonOut:     jsonOut,
			lockgraph:   lockgraph,
			timing:      timing,
			cacheDir:    cacheDir,
			dataflowFn:  dataflowFn,
			changedBase: changed,
		}, stdout, stderr)
	}
	if cfgPath == "" {
		fmt.Fprintln(stderr, "piql-vet: no .cfg argument; run via go vet -vettool, or use -standalone ./...")
		return 1
	}
	return runUnit(cfgPath, jsonOut, stdout, stderr)
}

// moduleUnit reports whether a vet unit belongs to this module. Test
// variants arrive as `piql/x [piql/x.test]` and external test packages
// as `piql/x_test`; both count (their non-test files are analyzed, the
// rest are skipped by the framework).
func moduleUnit(importPath string) bool {
	base, _, _ := strings.Cut(importPath, " ")
	return base == "piql" || strings.HasPrefix(base, "piql/")
}

// runUnit handles one go vet analysis unit.
func runUnit(cfgPath string, jsonOut bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "piql-vet: %v\n", err)
		return 1
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "piql-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Units outside the module carry no piql invariants and no facts
	// worth computing; acknowledge and move on. go vet still requires
	// the facts file to exist before it will cache the unit.
	if !moduleUnit(cfg.ImportPath) {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintf(stderr, "piql-vet: writing facts: %v\n", err)
				return 1
			}
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(stderr, "piql-vet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	unit := &lint.Unit{
		Fset:       fset,
		Files:      files,
		ImportPath: cfg.ImportPath,
		Facts:      readDepFacts(cfg.PackageVetx, stderr),
	}
	if len(files) > 0 {
		pkg, info, err := typecheckUnit(fset, files, &cfg)
		if err != nil {
			// go vet hands us units that already compiled, so this is
			// a tool limitation, not a user error: degrade to the
			// syntactic analyzers rather than failing the build.
			fmt.Fprintf(stderr, "piql-vet: %s: typecheck failed (%v); running syntactic analyzers only\n",
				cfg.ImportPath, err)
		} else {
			unit.Pkg, unit.Info = pkg, info
		}
	}
	diags, facts := lint.RunUnit(unit, lint.Analyzers)
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, lint.EncodeFacts(facts), 0o666); err != nil {
			fmt.Fprintf(stderr, "piql-vet: writing facts: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Facts-only unit (a dependency of the requested pattern):
		// dependents report their own diagnostics; this unit's were
		// either already reported or not asked for.
		return 0
	}
	return emit(map[string][]lint.Diagnostic{cfg.ImportPath: diags}, jsonOut, nil, stdout, stderr)
}

// typecheckUnit typechecks one vet unit against its dependencies'
// compiler export data, exactly as the compiler resolved them.
func typecheckUnit(fset *token.FileSet, files []*ast.File, cfg *config) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	importPath, _, _ := strings.Cut(cfg.ImportPath, " ")
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// readDepFacts loads every dependency's vetx facts file. Missing or
// foreign files (std acknowledgements) contribute nothing; corrupt
// files are reported as a diagnostic on stderr and skipped — the unit
// is analyzed without those facts rather than crashing the vet run.
func readDepFacts(vetx map[string]string, stderr io.Writer) *lint.FactStore {
	store := lint.NewFactStore()
	for path, file := range vetx {
		data, err := os.ReadFile(file)
		if err != nil {
			continue
		}
		facts, err := lint.DecodeFacts(data)
		if err != nil {
			fmt.Fprintf(stderr, "piql-vet: ignoring facts for %s (%s): %v\n", path, file, err)
			continue
		}
		store.Add(path, facts)
	}
	return store
}

// runEscapeBudget is the escapebudget analyzer's driver: it needs the
// compiler's escape decisions, which no vet unit carries, so it builds
// the whole module with -gcflags=-m, attributes the heap escapes to
// the budgeted functions, and runs just that analyzer over the
// packages the budget file names. With update=true it rewrites the
// budget file to the measured counts instead of reporting.
func runEscapeBudget(chdir string, update, jsonOut bool, stdout, stderr io.Writer) int {
	start := chdir
	if start == "" {
		start = "."
	}
	loader, err := lint.NewLoader(start)
	if err != nil {
		fmt.Fprintf(stderr, "piql-vet: %v\n", err)
		return 1
	}
	root := loader.ModuleRoot
	budgetPath := filepath.Join(root, "escape.budget")
	data, err := os.ReadFile(budgetPath)
	if err != nil {
		fmt.Fprintf(stderr, "piql-vet: escape budget: %v\n", err)
		return 1
	}
	counts, order, err := lint.ParseEscapeBudget(data)
	if err != nil {
		fmt.Fprintf(stderr, "piql-vet: %s: %v\n", budgetPath, err)
		return 1
	}
	if len(counts) == 0 {
		fmt.Fprintf(stderr, "piql-vet: %s lists no functions; nothing gated\n", budgetPath)
		return 0
	}

	// The compiler replays -m diagnostics from the build cache, so a
	// warm re-run is cheap.
	cmd := exec.Command("go", "build", "-gcflags=-m", "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(stderr, "piql-vet: go build -gcflags=-m: %v\n%s", err, out)
		return 1
	}
	raws := lint.ParseEscapeDiagnostics(out)
	for i := range raws {
		if !filepath.IsAbs(raws[i].File) {
			raws[i].File = filepath.Join(root, raws[i].File)
		}
	}

	byPkg := map[string]map[string]int{}
	for fn, n := range counts {
		ip, _, ok := lint.EscapeBudgetImportPath(fn)
		if !ok {
			fmt.Fprintf(stderr, "piql-vet: %s: entry %q has no import path\n", budgetPath, fn)
			return 1
		}
		if byPkg[ip] == nil {
			byPkg[ip] = map[string]int{}
		}
		byPkg[ip][fn] = n
	}

	all := map[string][]lint.Diagnostic{}
	measured := map[string]int{}
	for _, ip := range sortedKeys(byPkg) {
		dir := root
		if ip != loader.ModulePath {
			if !strings.HasPrefix(ip, loader.ModulePath+"/") {
				fmt.Fprintf(stderr, "piql-vet: %s: %s is outside module %s\n", budgetPath, ip, loader.ModulePath)
				return 1
			}
			dir = filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(ip, loader.ModulePath+"/")))
		}
		fset := token.NewFileSet()
		var files []*ast.File
		entries, err := os.ReadDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "piql-vet: budgeted package %s: %v\n", ip, err)
			return 1
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				fmt.Fprintf(stderr, "piql-vet: %v\n", err)
				return 1
			}
			files = append(files, f)
		}
		declared := lint.DeclaredFuncKeys(files)
		sites := lint.AttributeEscapes(fset, files, ip, raws)
		for fn := range byPkg[ip] {
			_, key, _ := lint.EscapeBudgetImportPath(fn)
			if !declared[key] {
				fmt.Fprintf(stderr, "piql-vet: %s: %s is not declared in %s; remove or fix the stale entry\n",
					budgetPath, fn, ip)
				return 1
			}
			measured[fn] = len(sites[fn])
		}
		unit := &lint.Unit{
			Fset:       fset,
			Files:      files,
			ImportPath: ip,
			Escapes:    &lint.EscapeInfo{Budget: byPkg[ip], Sites: sites},
		}
		diags, _ := lint.RunUnit(unit, []*lint.Analyzer{lint.EscapeBudget})
		if len(diags) > 0 {
			all[ip] = diags
		}
	}

	if update {
		for fn := range counts {
			counts[fn] = measured[fn]
		}
		if err := os.WriteFile(budgetPath, lint.FormatEscapeBudget(counts, order), 0o666); err != nil {
			fmt.Fprintf(stderr, "piql-vet: %v\n", err)
			return 1
		}
		fmt.Fprintf(stderr, "piql-vet: escape budget rewritten (%d entries)\n", len(order))
		return 0
	}
	// Under budget is not a failure, but say so: a budget that drifted
	// high lets regressions hide under it.
	for _, fn := range order {
		if measured[fn] < counts[fn] {
			fmt.Fprintf(stderr, "piql-vet: note: %s has %d heap escapes, under its budget of %d; tighten with make lint ESCAPE_BUDGET=update\n",
				fn, measured[fn], counts[fn])
		}
	}
	return emit(all, jsonOut, nil, stdout, stderr)
}

func sortedKeys(m map[string]map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// standaloneOpts bundles the standalone driver's modes: plain, cached
// (-cache), filtered to changed packages (-changed BASE), timed
// (-timing), and the def-use debug printer (-dataflow FUNC).
type standaloneOpts struct {
	jsonOut     bool
	lockgraph   bool
	timing      bool
	cacheDir    string
	dataflowFn  string
	changedBase string
}

// runTiming is the -timing measurement: wall-clock for the whole run
// and how much of it was replayed from cache rather than analyzed.
type runTiming struct {
	ElapsedMS int64 `json:"elapsed_ms"`
	Packages  int   `json:"packages"`
	Analyzed  int   `json:"analyzed"`
	Replayed  int   `json:"replayed"`
}

// runStandalone loads the whole module from source — no export data,
// no go vet — and runs every analyzer over every package in dependency
// order, threading facts in memory. With a cache directory it becomes
// incremental: per-package results are replayed when neither the
// package's files, its dependencies' facts, nor the tool changed. With
// -changed BASE, every package still contributes facts (cache-warm
// ones replay), but only packages differing from the merge-base with
// BASE — or depending on one that does — report diagnostics.
func runStandalone(chdir string, patterns []string, opts standaloneOpts, stdout, stderr io.Writer) int {
	for _, p := range patterns {
		if p != "./..." && p != "all" {
			fmt.Fprintf(stderr, "piql-vet: -standalone analyzes the whole module; unsupported pattern %q (use ./...)\n", p)
			return 1
		}
	}
	start := chdir
	if start == "" {
		start = "."
	}
	if opts.dataflowFn != "" {
		return runDataflowDump(start, opts.dataflowFn, stdout, stderr)
	}
	var affected map[string]bool
	if opts.changedBase != "" {
		var err error
		affected, err = changedPackages(start, opts.changedBase, stderr)
		if err != nil {
			fmt.Fprintf(stderr, "piql-vet: %v\n", err)
			return 1
		}
		if len(affected) == 0 {
			fmt.Fprintf(stderr, "piql-vet: no module packages changed relative to %s\n", opts.changedBase)
			return emit(map[string][]lint.Diagnostic{}, opts.jsonOut, nil, stdout, stderr)
		}
	}
	if opts.cacheDir != "" {
		return runCached(start, opts, affected, stdout, stderr)
	}
	startTime := time.Now()
	loader, err := lint.NewLoader(start)
	if err != nil {
		fmt.Fprintf(stderr, "piql-vet: %v\n", err)
		return 1
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(stderr, "piql-vet: %v\n", err)
		return 1
	}
	store := lint.NewFactStore()
	all := map[string][]lint.Diagnostic{}
	var edges []lint.LockEdge
	for _, lp := range pkgs {
		lp.Unit.Facts = store
		diags, facts := lint.RunUnit(lp.Unit, lint.Analyzers)
		if len(diags) > 0 {
			all[lp.Unit.ImportPath] = diags
		}
		if facts != nil {
			store.Add(lp.Unit.ImportPath, facts)
			edges = append(edges, facts.LockEdges...)
		}
	}
	if opts.lockgraph {
		fmt.Fprintln(stdout, "lock hierarchy (acquired-while-held, roots first):")
		for _, line := range lint.LockHierarchy(lint.NewFactStore().AllLockEdges(edges)) {
			fmt.Fprintln(stdout, "  "+line)
		}
	}
	filterAffected(all, affected)
	var timing *runTiming
	if opts.timing {
		timing = &runTiming{
			ElapsedMS: time.Since(startTime).Milliseconds(),
			Packages:  len(pkgs),
			Analyzed:  len(pkgs),
		}
	}
	return emit(all, opts.jsonOut, timing, stdout, stderr)
}

// runDataflowDump is the -dataflow debug printer: it typechecks the
// module and prints the def-use chains of every function matching the
// given name (bare, method-key, or package-qualified).
func runDataflowDump(start, name string, stdout, stderr io.Writer) int {
	loader, err := lint.NewLoader(start)
	if err != nil {
		fmt.Fprintf(stderr, "piql-vet: %v\n", err)
		return 1
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(stderr, "piql-vet: %v\n", err)
		return 1
	}
	found := false
	for _, lp := range pkgs {
		if dump, ok := lint.DumpDefUse(lp.Unit, name); ok {
			found = true
			io.WriteString(stdout, dump)
		}
	}
	if !found {
		fmt.Fprintf(stderr, "piql-vet: -dataflow: no function matches %q (try a bare name, \"(*Type).Method\", or \"pkg.Func\")\n", name)
		return 1
	}
	return 0
}

// changedPackages maps `git diff --name-only` against the merge-base
// with base (plus untracked files) to the module packages whose
// directories contain a changed file, expanded to their module-local
// dependents — an edit to a package invalidates every package whose
// analysis could see it through facts.
func changedPackages(start, base string, stderr io.Writer) (map[string]bool, error) {
	scan, err := lint.ScanModule(start)
	if err != nil {
		return nil, err
	}
	topOut, err := exec.Command("git", "-C", start, "rev-parse", "--show-toplevel").Output()
	if err != nil {
		return nil, fmt.Errorf("-changed needs a git checkout: %v", err)
	}
	top := strings.TrimSpace(string(topOut))
	ref := base
	if out, err := exec.Command("git", "-C", start, "merge-base", "HEAD", base).Output(); err == nil {
		if mb := strings.TrimSpace(string(out)); mb != "" {
			ref = mb
		}
	}
	diff, err := exec.Command("git", "-C", start, "diff", "--name-only", ref, "--").Output()
	if err != nil {
		return nil, fmt.Errorf("git diff --name-only %s: %v", ref, err)
	}
	untracked, _ := exec.Command("git", "-C", start, "ls-files", "--others", "--exclude-standard").Output()
	dirs := map[string]bool{}
	for _, name := range strings.Split(string(diff)+"\n"+string(untracked), "\n") {
		if name = strings.TrimSpace(name); name != "" {
			dirs[filepath.Dir(filepath.Join(top, filepath.FromSlash(name)))] = true
		}
	}
	changed := map[string]bool{}
	for _, sp := range scan {
		if dirs[filepath.Clean(sp.Dir)] {
			changed[sp.ImportPath] = true
		}
	}
	// Dependents closure over the module-local import edges.
	for grew := true; grew; {
		grew = false
		for _, sp := range scan {
			if changed[sp.ImportPath] {
				continue
			}
			for _, dep := range sp.LocalImports {
				if changed[dep] {
					changed[sp.ImportPath] = true
					grew = true
					break
				}
			}
		}
	}
	return changed, nil
}

// filterAffected drops diagnostics for packages outside the -changed
// set; a nil set keeps everything.
func filterAffected(all map[string][]lint.Diagnostic, affected map[string]bool) {
	if affected == nil {
		return
	}
	for pkg := range all {
		if !affected[pkg] {
			delete(all, pkg)
		}
	}
}

// cacheEntry is one package's cached lint result. Its key (the file
// name) is a hash of the tool, the package's file contents, and its
// module-local dependencies' encoded facts — so an edit anywhere
// invalidates exactly the edited package and its transitive
// dependents, and a tool rebuild invalidates everything.
type cacheEntry struct {
	Diags []lint.Diagnostic `json:"diags,omitempty"`
	Facts json.RawMessage   `json:"facts,omitempty"`
}

// runCached is the incremental standalone mode behind `make lint`: a
// parse-only scan orders the packages, each package's cache key is
// computed from content + dependency facts, and only missed packages
// are typechecked and analyzed. A warm clean tree replays entirely
// from cache.
func runCached(start string, opts standaloneOpts, affected map[string]bool, stdout, stderr io.Writer) int {
	startTime := time.Now()
	replayed := 0
	scan, err := lint.ScanModule(start)
	if err != nil {
		fmt.Fprintf(stderr, "piql-vet: %v\n", err)
		return 1
	}
	if err := os.MkdirAll(opts.cacheDir, 0o777); err != nil {
		fmt.Fprintf(stderr, "piql-vet: %v\n", err)
		return 1
	}
	salt := toolSalt()
	store := lint.NewFactStore()
	factBytes := map[string][]byte{}
	all := map[string][]lint.Diagnostic{}
	var edges []lint.LockEdge
	var loader *lint.Loader
	for _, sp := range scan {
		h := sha256.New()
		io.WriteString(h, "piql-vet lint cache v1\n")
		io.WriteString(h, salt+"\n")
		io.WriteString(h, sp.ImportPath+"\n")
		for _, file := range sp.Files {
			data, err := os.ReadFile(file)
			if err != nil {
				fmt.Fprintf(stderr, "piql-vet: %v\n", err)
				return 1
			}
			fmt.Fprintf(h, "file %s %d\n", filepath.Base(file), len(data))
			h.Write(data)
		}
		for _, dep := range sp.LocalImports {
			fmt.Fprintf(h, "dep %s %d\n", dep, len(factBytes[dep]))
			h.Write(factBytes[dep])
		}
		entryPath := filepath.Join(opts.cacheDir, fmt.Sprintf("%02x", h.Sum(nil))+".json")

		if data, err := os.ReadFile(entryPath); err == nil {
			var ce cacheEntry
			if json.Unmarshal(data, &ce) == nil {
				if facts, ferr := lint.DecodeFacts(ce.Facts); ferr == nil {
					if facts != nil {
						store.Add(sp.ImportPath, facts)
						edges = append(edges, facts.LockEdges...)
					}
					factBytes[sp.ImportPath] = ce.Facts
					if len(ce.Diags) > 0 {
						all[sp.ImportPath] = ce.Diags
					}
					replayed++
					continue
				}
			}
			// A corrupt entry under a valid key is recomputed, never
			// trusted.
			fmt.Fprintf(stderr, "piql-vet: discarding corrupt cache entry for %s\n", sp.ImportPath)
		}

		if loader == nil {
			loader, err = lint.NewLoader(start)
			if err != nil {
				fmt.Fprintf(stderr, "piql-vet: %v\n", err)
				return 1
			}
		}
		lp, err := loader.LoadDir(sp.Dir, sp.ImportPath)
		if err != nil {
			fmt.Fprintf(stderr, "piql-vet: %v\n", err)
			return 1
		}
		lp.Unit.Facts = store
		diags, facts := lint.RunUnit(lp.Unit, lint.Analyzers)
		if len(diags) > 0 {
			all[sp.ImportPath] = diags
		}
		enc := lint.EncodeFacts(facts)
		if facts != nil {
			store.Add(sp.ImportPath, facts)
			edges = append(edges, facts.LockEdges...)
		}
		factBytes[sp.ImportPath] = enc
		if out, err := json.Marshal(cacheEntry{Diags: diags, Facts: enc}); err == nil {
			if werr := os.WriteFile(entryPath, out, 0o666); werr != nil {
				fmt.Fprintf(stderr, "piql-vet: writing cache entry: %v\n", werr)
			}
		}
	}
	if opts.lockgraph {
		fmt.Fprintln(stdout, "lock hierarchy (acquired-while-held, roots first):")
		for _, line := range lint.LockHierarchy(lint.NewFactStore().AllLockEdges(edges)) {
			fmt.Fprintln(stdout, "  "+line)
		}
	}
	filterAffected(all, affected)
	var timing *runTiming
	if opts.timing {
		timing = &runTiming{
			ElapsedMS: time.Since(startTime).Milliseconds(),
			Packages:  len(scan),
			Analyzed:  len(scan) - replayed,
			Replayed:  replayed,
		}
	}
	return emit(all, opts.jsonOut, timing, stdout, stderr)
}

// toolSalt keys the lint cache to this build of the tool, the same way
// the -V=full buildID keys go vet's cache.
func toolSalt() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown-tool"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return "unknown-tool"
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%02x", sum)
}

// emit prints diagnostics in the chosen format; exit status 2 when any
// exist. JSON mode always writes the payload — an empty object on a
// clean run — so redirecting it produces a findings artifact either
// way. A non-nil timing adds a "timing" entry to the JSON payload (or
// a stderr note in text mode): comparing elapsed_ms across a cold run
// (analyzed == packages) and a warm one (replayed == packages) is the
// lint-timing record make lint keeps in bin/lint-findings.json.
func emit(byPkg map[string][]lint.Diagnostic, jsonOut bool, timing *runTiming, stdout, stderr io.Writer) int {
	n := 0
	for _, ds := range byPkg {
		n += len(ds)
	}
	if jsonOut {
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		payload := map[string]any{}
		for pkg, ds := range byPkg {
			byAnalyzer := map[string][]jsonDiag{}
			for _, d := range ds {
				byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
					Posn:    d.Pos.String(),
					Message: d.Message,
				})
			}
			payload[pkg] = byAnalyzer
		}
		if timing != nil {
			payload["timing"] = timing
		}
		out, _ := json.MarshalIndent(payload, "", "\t")
		stdout.Write(append(out, '\n'))
		if n == 0 {
			return 0
		}
		return 2
	}
	if n == 0 {
		if timing != nil {
			fmt.Fprintf(stderr, "piql-vet: timing: %dms, %d packages (%d analyzed, %d replayed)\n",
				timing.ElapsedMS, timing.Packages, timing.Analyzed, timing.Replayed)
		}
		return 0
	}
	for _, ds := range byPkg {
		for _, d := range ds {
			fmt.Fprintf(stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
		}
	}
	if timing != nil {
		fmt.Fprintf(stderr, "piql-vet: timing: %dms, %d packages (%d analyzed, %d replayed)\n",
			timing.ElapsedMS, timing.Packages, timing.Analyzed, timing.Replayed)
	}
	return 2
}

// printVersion emits the version line `go vet` hashes for its build
// cache; the buildID must change whenever the tool's behavior could,
// so it is the hash of the executable itself.
func printVersion(stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "piql-vet: %v\n", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(stderr, "piql-vet: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(stderr, "piql-vet: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(os.Args[0]), h.Sum(nil))
	return 0
}
