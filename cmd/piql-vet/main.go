// Command piql-vet runs the project's concurrency-invariant analyzers
// (internal/lint) as a `go vet` tool:
//
//	go build -o bin/piql-vet ./cmd/piql-vet
//	go vet -vettool=bin/piql-vet ./...
//
// or directly, with no go vet handshake:
//
//	piql-vet -standalone ./...          # parse+typecheck from source
//	piql-vet -standalone -json ./...    # machine-readable diagnostics
//	piql-vet -standalone -lockgraph     # print the inferred lock hierarchy
//
// It speaks the go command's vettool protocol (the same one
// golang.org/x/tools/go/analysis/unitchecker implements, re-created
// here on the standard library because this build cannot fetch
// modules): `-V=full` prints a version line ending in a buildID derived
// from the executable's contents so `go vet` can cache results, and
// each analysis unit arrives as a JSON *.cfg file naming the package's
// Go files, its dependencies' compiler export data (for typechecking),
// and their vetx facts files. Module-local units are typechecked and
// analyzed interprocedurally; their function summaries (may-block,
// lock-acquisition sets, transient-error returns — see internal/lint)
// are written to the unit's VetxOutput so dependent packages' analyses
// can see across the package boundary. Units outside the module are
// acknowledged with an empty facts file and skipped.
//
// Violations print as file:line:col diagnostics and exit with status 2,
// which `go vet` reports as a failure; a site that is allowed to break
// a rule carries a //lint:allow directive (see internal/lint).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"piql/internal/lint"
)

// config mirrors the go command's vet configuration (the fields of
// unitchecker.Config this tool consumes).
type config struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole tool; main only binds it to the process. Exit
// codes: 0 clean, 1 operational error, 2 findings.
func run(args []string, stdout, stderr io.Writer) int {
	var (
		cfgPath    string
		jsonOut    bool
		standalone bool
		lockgraph  bool
		chdir      string
		patterns   []string
	)
	for i := 0; i < len(args); i++ {
		arg := args[i]
		switch {
		case arg == "-V=full" || arg == "--V=full":
			return printVersion(stdout, stderr)
		case arg == "-flags" || arg == "--flags":
			// go vet asks for the tool's flag list (JSON) so it can
			// validate pass-through flags before invoking it per unit.
			fmt.Fprintln(stdout, `[{"Name":"json","Bool":true,"Usage":"emit JSON output"}]`)
			return 0
		case arg == "-json" || arg == "--json":
			jsonOut = true
		case arg == "-standalone" || arg == "--standalone":
			standalone = true
		case arg == "-lockgraph" || arg == "--lockgraph":
			standalone = true
			lockgraph = true
		case arg == "-C" || arg == "--C":
			if i+1 >= len(args) {
				fmt.Fprintln(stderr, "piql-vet: -C needs a directory")
				return 1
			}
			i++
			chdir = args[i]
		case strings.HasPrefix(arg, "-C="):
			chdir = strings.TrimPrefix(arg, "-C=")
		case strings.HasSuffix(arg, ".cfg"):
			cfgPath = arg
		case strings.HasPrefix(arg, "-"):
			// Other vet flags (e.g. analyzer toggles for the standard
			// tool) do not apply to this checker; ignore them.
		default:
			patterns = append(patterns, arg)
		}
	}
	if standalone {
		return runStandalone(chdir, patterns, jsonOut, lockgraph, stdout, stderr)
	}
	if cfgPath == "" {
		fmt.Fprintln(stderr, "piql-vet: no .cfg argument; run via go vet -vettool, or use -standalone ./...")
		return 1
	}
	return runUnit(cfgPath, jsonOut, stdout, stderr)
}

// moduleUnit reports whether a vet unit belongs to this module. Test
// variants arrive as `piql/x [piql/x.test]` and external test packages
// as `piql/x_test`; both count (their non-test files are analyzed, the
// rest are skipped by the framework).
func moduleUnit(importPath string) bool {
	base, _, _ := strings.Cut(importPath, " ")
	return base == "piql" || strings.HasPrefix(base, "piql/")
}

// runUnit handles one go vet analysis unit.
func runUnit(cfgPath string, jsonOut bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(stderr, "piql-vet: %v\n", err)
		return 1
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "piql-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Units outside the module carry no piql invariants and no facts
	// worth computing; acknowledge and move on. go vet still requires
	// the facts file to exist before it will cache the unit.
	if !moduleUnit(cfg.ImportPath) {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintf(stderr, "piql-vet: writing facts: %v\n", err)
				return 1
			}
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(stderr, "piql-vet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	unit := &lint.Unit{
		Fset:       fset,
		Files:      files,
		ImportPath: cfg.ImportPath,
		Facts:      readDepFacts(cfg.PackageVetx),
	}
	if len(files) > 0 {
		pkg, info, err := typecheckUnit(fset, files, &cfg)
		if err != nil {
			// go vet hands us units that already compiled, so this is
			// a tool limitation, not a user error: degrade to the
			// syntactic analyzers rather than failing the build.
			fmt.Fprintf(stderr, "piql-vet: %s: typecheck failed (%v); running syntactic analyzers only\n",
				cfg.ImportPath, err)
		} else {
			unit.Pkg, unit.Info = pkg, info
		}
	}
	diags, facts := lint.RunUnit(unit, lint.Analyzers)
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, lint.EncodeFacts(facts), 0o666); err != nil {
			fmt.Fprintf(stderr, "piql-vet: writing facts: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Facts-only unit (a dependency of the requested pattern):
		// dependents report their own diagnostics; this unit's were
		// either already reported or not asked for.
		return 0
	}
	return emit(map[string][]lint.Diagnostic{cfg.ImportPath: diags}, jsonOut, stdout, stderr)
}

// typecheckUnit typechecks one vet unit against its dependencies'
// compiler export data, exactly as the compiler resolved them.
func typecheckUnit(fset *token.FileSet, files []*ast.File, cfg *config) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	importPath, _, _ := strings.Cut(cfg.ImportPath, " ")
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// readDepFacts loads every dependency's vetx facts file. Missing or
// foreign files (std acknowledgements) contribute nothing.
func readDepFacts(vetx map[string]string) *lint.FactStore {
	store := lint.NewFactStore()
	for path, file := range vetx {
		data, err := os.ReadFile(file)
		if err != nil {
			continue
		}
		store.Add(path, lint.DecodeFacts(data))
	}
	return store
}

// runStandalone loads the whole module from source — no export data,
// no go vet — and runs every analyzer over every package in dependency
// order, threading facts in memory.
func runStandalone(chdir string, patterns []string, jsonOut, lockgraph bool, stdout, stderr io.Writer) int {
	for _, p := range patterns {
		if p != "./..." && p != "all" {
			fmt.Fprintf(stderr, "piql-vet: -standalone analyzes the whole module; unsupported pattern %q (use ./...)\n", p)
			return 1
		}
	}
	start := chdir
	if start == "" {
		start = "."
	}
	loader, err := lint.NewLoader(start)
	if err != nil {
		fmt.Fprintf(stderr, "piql-vet: %v\n", err)
		return 1
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(stderr, "piql-vet: %v\n", err)
		return 1
	}
	store := lint.NewFactStore()
	all := map[string][]lint.Diagnostic{}
	var edges []lint.LockEdge
	for _, lp := range pkgs {
		lp.Unit.Facts = store
		diags, facts := lint.RunUnit(lp.Unit, lint.Analyzers)
		if len(diags) > 0 {
			all[lp.Unit.ImportPath] = diags
		}
		if facts != nil {
			store.Add(lp.Unit.ImportPath, facts)
			edges = append(edges, facts.LockEdges...)
		}
	}
	if lockgraph {
		fmt.Fprintln(stdout, "lock hierarchy (acquired-while-held, roots first):")
		for _, line := range lint.LockHierarchy(lint.NewFactStore().AllLockEdges(edges)) {
			fmt.Fprintln(stdout, "  "+line)
		}
	}
	return emit(all, jsonOut, stdout, stderr)
}

// emit prints diagnostics in the chosen format; exit status 2 when any
// exist.
func emit(byPkg map[string][]lint.Diagnostic, jsonOut bool, stdout, stderr io.Writer) int {
	n := 0
	for _, ds := range byPkg {
		n += len(ds)
	}
	if n == 0 {
		return 0
	}
	if jsonOut {
		type jsonDiag struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		payload := map[string]map[string][]jsonDiag{}
		for pkg, ds := range byPkg {
			byAnalyzer := map[string][]jsonDiag{}
			for _, d := range ds {
				byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiag{
					Posn:    d.Pos.String(),
					Message: d.Message,
				})
			}
			payload[pkg] = byAnalyzer
		}
		out, _ := json.MarshalIndent(payload, "", "\t")
		stdout.Write(append(out, '\n'))
		return 2
	}
	for _, ds := range byPkg {
		for _, d := range ds {
			fmt.Fprintf(stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
		}
	}
	return 2
}

// printVersion emits the version line `go vet` hashes for its build
// cache; the buildID must change whenever the tool's behavior could,
// so it is the hash of the executable itself.
func printVersion(stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "piql-vet: %v\n", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(stderr, "piql-vet: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(stderr, "piql-vet: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "%s version devel comments-go-here buildID=%02x\n",
		filepath.Base(os.Args[0]), h.Sum(nil))
	return 0
}
