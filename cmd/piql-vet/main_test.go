package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"piql/internal/lint"
)

// TestVersionLine drives the -V=full handshake: go vet hashes the
// reported buildID for its action cache, so the line must parse and
// must end in a hex digest.
func TestVersionLine(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full exited %d: %s", code, stderr.String())
	}
	line := strings.TrimSpace(stdout.String())
	i := strings.LastIndex(line, "buildID=")
	if i < 0 {
		t.Fatalf("version line missing buildID: %q", line)
	}
	digest := line[i+len("buildID="):]
	if len(digest) != 64 || strings.Trim(digest, "0123456789abcdef") != "" {
		t.Fatalf("buildID is not a sha256 hex digest: %q", digest)
	}
}

// TestFlagsHandshake drives -flags: go vet validates pass-through
// flags against this JSON before invoking the tool per unit.
func TestFlagsHandshake(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags exited %d: %s", code, stderr.String())
	}
	var flags []struct {
		Name string
		Bool bool
	}
	if err := json.Unmarshal(stdout.Bytes(), &flags); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(flags) == 0 || flags[0].Name != "json" {
		t.Fatalf("unexpected flag list: %+v", flags)
	}
}

// listedPackage is the slice of `go list -json` output the synthetic
// cfg needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
}

// listExport runs `go list -export -deps -json` for pkg and returns
// every listed package keyed by import path. This is exactly the
// information the go command hands a vettool in each .cfg: compiler
// export data for the dependency graph.
func listExport(t *testing.T, repoRoot, pkg string) map[string]*listedPackage {
	t.Helper()
	cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles", pkg)
	cmd.Dir = repoRoot
	out, err := cmd.Output()
	if err != nil {
		stderr := ""
		if ee, ok := err.(*exec.ExitError); ok {
			stderr = string(ee.Stderr)
		}
		t.Fatalf("go list -export %s: %v\n%s", pkg, err, stderr)
	}
	pkgs := map[string]*listedPackage{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			t.Fatalf("decoding go list output: %v", err)
		}
		pkgs[p.ImportPath] = &p
	}
	return pkgs
}

func writeCfg(t *testing.T, dir, name string, cfg *config) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestVettoolProtocolFactsRoundTrip drives the tool through two
// synthetic .cfg units exactly as `go vet` would: first
// piql/internal/kvstore as a facts-only (VetxOnly) unit whose
// summaries land in a vetx file, then piql/internal/engine — with one
// seeded violation file added — whose errtaxonomy diagnostic must cite
// the fact imported from kvstore's vetx. This is the cross-package
// acceptance path: the engine unit never sees kvstore source, only its
// export data and facts file.
func TestVettoolProtocolFactsRoundTrip(t *testing.T) {
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()

	// Unit 1: kvstore, facts only.
	kvPkgs := listExport(t, repoRoot, "piql/internal/kvstore")
	kv := kvPkgs["piql/internal/kvstore"]
	if kv == nil {
		t.Fatal("go list did not return piql/internal/kvstore")
	}
	packageFile := map[string]string{}
	for path, p := range kvPkgs {
		if p.Export != "" {
			packageFile[path] = p.Export
		}
	}
	var kvFiles []string
	for _, f := range kv.GoFiles {
		kvFiles = append(kvFiles, filepath.Join(kv.Dir, f))
	}
	kvVetx := filepath.Join(tmp, "kvstore.vetx")
	kvCfg := writeCfg(t, tmp, "kvstore.cfg", &config{
		ID:          "piql/internal/kvstore",
		Compiler:    "gc",
		Dir:         kv.Dir,
		ImportPath:  "piql/internal/kvstore",
		GoFiles:     kvFiles,
		PackageFile: packageFile,
		VetxOnly:    true,
		VetxOutput:  kvVetx,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{kvCfg}, &stdout, &stderr); code != 0 {
		t.Fatalf("kvstore unit exited %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(kvVetx)
	if err != nil {
		t.Fatalf("facts file not written: %v", err)
	}
	facts := lint.DecodeFacts(data)
	if facts == nil {
		t.Fatalf("kvstore vetx did not decode: %q", data[:min(len(data), 80)])
	}
	tas, ok := facts.Funcs["(*Client).TestAndSet"]
	if !ok {
		t.Fatal("kvstore facts missing (*Client).TestAndSet")
	}
	if !tas.Transient {
		t.Fatalf("TestAndSet fact should be transient: %+v", tas)
	}
	if len(tas.Acquires) == 0 {
		t.Fatalf("TestAndSet fact should acquire node locks: %+v", tas)
	}
	if len(facts.LockEdges) == 0 {
		t.Fatal("kvstore facts exported no lock edges")
	}

	// Unit 2: engine + one seeded violation, consuming kvstore's vetx.
	enPkgs := listExport(t, repoRoot, "piql/internal/engine")
	en := enPkgs["piql/internal/engine"]
	if en == nil {
		t.Fatal("go list did not return piql/internal/engine")
	}
	enPackageFile := map[string]string{}
	for path, p := range enPkgs {
		if p.Export != "" {
			enPackageFile[path] = p.Export
		}
	}
	seeded := filepath.Join(tmp, "zz_seeded.go")
	seed := `package engine

import "piql/internal/kvstore"

// seededBadClassify compares a wrapped transient error with ==; the
// errtaxonomy consumer rule must flag it using the fact imported from
// kvstore's vetx file.
func seededBadClassify(cl *kvstore.Client, key []byte) bool {
	_, err := cl.TestAndSet(key, nil, nil)
	return err == kvstore.ErrTransient
}
`
	if err := os.WriteFile(seeded, []byte(seed), 0o666); err != nil {
		t.Fatal(err)
	}
	var enFiles []string
	for _, f := range en.GoFiles {
		enFiles = append(enFiles, filepath.Join(en.Dir, f))
	}
	enFiles = append(enFiles, seeded)
	enVetx := filepath.Join(tmp, "engine.vetx")
	enCfg := writeCfg(t, tmp, "engine.cfg", &config{
		ID:          "piql/internal/engine",
		Compiler:    "gc",
		Dir:         en.Dir,
		ImportPath:  "piql/internal/engine",
		GoFiles:     enFiles,
		PackageFile: enPackageFile,
		PackageVetx: map[string]string{"piql/internal/kvstore": kvVetx},
		VetxOutput:  enVetx,
	})
	stdout.Reset()
	stderr.Reset()
	code := run([]string{enCfg}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("engine unit with seeded violation exited %d (want 2)\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "zz_seeded.go") {
		t.Fatalf("diagnostic not at the seeded site:\n%s", out)
	}
	if !strings.Contains(out, "errtaxonomy") {
		t.Fatalf("diagnostic not from errtaxonomy:\n%s", out)
	}
	if !strings.Contains(out, "per fact from piql/internal/kvstore") {
		t.Fatalf("diagnostic does not cite the kvstore vetx fact:\n%s", out)
	}
	if _, err := os.ReadFile(enVetx); err != nil {
		t.Fatalf("engine facts not written: %v", err)
	}

	// Same unit without the kvstore facts: the trace has nothing to
	// cite, so the seeded comparison must pass silently — proving the
	// diagnostic above really came from the imported facts file. (The
	// run as a whole is not clean: engine.go's justified
	// `//lint:allow holdblock` correctly turns stale once the
	// cross-package blocking fact it suppresses is missing.)
	enCfgNoFacts := writeCfg(t, tmp, "engine-nofacts.cfg", &config{
		ID:          "piql/internal/engine#nofacts",
		Compiler:    "gc",
		Dir:         en.Dir,
		ImportPath:  "piql/internal/engine",
		GoFiles:     enFiles,
		PackageFile: enPackageFile,
		VetxOutput:  filepath.Join(tmp, "engine-nofacts.vetx"),
	})
	stdout.Reset()
	stderr.Reset()
	run([]string{enCfgNoFacts}, &stdout, &stderr)
	if out := stderr.String(); strings.Contains(out, "zz_seeded.go") || strings.Contains(out, "per fact from") {
		t.Fatalf("seeded site diagnosed even without the kvstore facts file:\n%s", out)
	}
}

// TestStandaloneCleanTree runs the from-source mode over the whole
// module: the tree must be clean (every finding fixed or justified),
// and the lock hierarchy must contain the documented roots.
func TestStandaloneCleanTree(t *testing.T) {
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-standalone", "-lockgraph", "-C", repoRoot, "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("standalone run exited %d:\n%s%s", code, stdout.String(), stderr.String())
	}
	graph := stdout.String()
	for _, want := range []string{
		"kvstore.Cluster.rebalanceMu",
		"kvstore.Cluster.faultMu",
		"kvstore.move.mu",
		"kvstore.node.mu",
		"engine.Engine.writeGate",
	} {
		if !strings.Contains(graph, want) {
			t.Errorf("lock hierarchy missing %s:\n%s", want, graph)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
