package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"piql/internal/lint"
)

// TestVersionLine drives the -V=full handshake: go vet hashes the
// reported buildID for its action cache, so the line must parse and
// must end in a hex digest.
func TestVersionLine(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-V=full"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-V=full exited %d: %s", code, stderr.String())
	}
	line := strings.TrimSpace(stdout.String())
	i := strings.LastIndex(line, "buildID=")
	if i < 0 {
		t.Fatalf("version line missing buildID: %q", line)
	}
	digest := line[i+len("buildID="):]
	if len(digest) != 64 || strings.Trim(digest, "0123456789abcdef") != "" {
		t.Fatalf("buildID is not a sha256 hex digest: %q", digest)
	}
}

// TestFlagsHandshake drives -flags: go vet validates pass-through
// flags against this JSON before invoking the tool per unit.
func TestFlagsHandshake(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-flags"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-flags exited %d: %s", code, stderr.String())
	}
	var flags []struct {
		Name string
		Bool bool
	}
	if err := json.Unmarshal(stdout.Bytes(), &flags); err != nil {
		t.Fatalf("-flags output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(flags) == 0 || flags[0].Name != "json" {
		t.Fatalf("unexpected flag list: %+v", flags)
	}
}

// listedPackage is the slice of `go list -json` output the synthetic
// cfg needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
}

// listExport runs `go list -export -deps -json` for pkg and returns
// every listed package keyed by import path. This is exactly the
// information the go command hands a vettool in each .cfg: compiler
// export data for the dependency graph.
func listExport(t *testing.T, repoRoot, pkg string) map[string]*listedPackage {
	t.Helper()
	cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Dir,Export,GoFiles", pkg)
	cmd.Dir = repoRoot
	out, err := cmd.Output()
	if err != nil {
		stderr := ""
		if ee, ok := err.(*exec.ExitError); ok {
			stderr = string(ee.Stderr)
		}
		t.Fatalf("go list -export %s: %v\n%s", pkg, err, stderr)
	}
	pkgs := map[string]*listedPackage{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			t.Fatalf("decoding go list output: %v", err)
		}
		pkgs[p.ImportPath] = &p
	}
	return pkgs
}

func writeCfg(t *testing.T, dir, name string, cfg *config) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestVettoolProtocolFactsRoundTrip drives the tool through two
// synthetic .cfg units exactly as `go vet` would: first
// piql/internal/kvstore as a facts-only (VetxOnly) unit whose
// summaries land in a vetx file, then piql/internal/engine — with one
// seeded violation file added — whose errtaxonomy diagnostic must cite
// the fact imported from kvstore's vetx. This is the cross-package
// acceptance path: the engine unit never sees kvstore source, only its
// export data and facts file.
func TestVettoolProtocolFactsRoundTrip(t *testing.T) {
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()

	// Unit 1: kvstore, facts only.
	kvPkgs := listExport(t, repoRoot, "piql/internal/kvstore")
	kv := kvPkgs["piql/internal/kvstore"]
	if kv == nil {
		t.Fatal("go list did not return piql/internal/kvstore")
	}
	packageFile := map[string]string{}
	for path, p := range kvPkgs {
		if p.Export != "" {
			packageFile[path] = p.Export
		}
	}
	var kvFiles []string
	for _, f := range kv.GoFiles {
		kvFiles = append(kvFiles, filepath.Join(kv.Dir, f))
	}
	kvVetx := filepath.Join(tmp, "kvstore.vetx")
	kvCfg := writeCfg(t, tmp, "kvstore.cfg", &config{
		ID:          "piql/internal/kvstore",
		Compiler:    "gc",
		Dir:         kv.Dir,
		ImportPath:  "piql/internal/kvstore",
		GoFiles:     kvFiles,
		PackageFile: packageFile,
		VetxOnly:    true,
		VetxOutput:  kvVetx,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{kvCfg}, &stdout, &stderr); code != 0 {
		t.Fatalf("kvstore unit exited %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(kvVetx)
	if err != nil {
		t.Fatalf("facts file not written: %v", err)
	}
	facts, err := lint.DecodeFacts(data)
	if err != nil || facts == nil {
		t.Fatalf("kvstore vetx did not decode (err=%v): %q", err, data[:min(len(data), 80)])
	}
	tas, ok := facts.Funcs["(*Client).TestAndSet"]
	if !ok {
		t.Fatal("kvstore facts missing (*Client).TestAndSet")
	}
	if !tas.Transient {
		t.Fatalf("TestAndSet fact should be transient: %+v", tas)
	}
	if len(tas.Acquires) == 0 {
		t.Fatalf("TestAndSet fact should acquire node locks: %+v", tas)
	}
	if len(facts.LockEdges) == 0 {
		t.Fatal("kvstore facts exported no lock edges")
	}

	// Unit 2: engine + one seeded violation, consuming kvstore's vetx.
	enPkgs := listExport(t, repoRoot, "piql/internal/engine")
	en := enPkgs["piql/internal/engine"]
	if en == nil {
		t.Fatal("go list did not return piql/internal/engine")
	}
	enPackageFile := map[string]string{}
	for path, p := range enPkgs {
		if p.Export != "" {
			enPackageFile[path] = p.Export
		}
	}
	seeded := filepath.Join(tmp, "zz_seeded.go")
	seed := `package engine

import "piql/internal/kvstore"

// seededBadClassify compares a wrapped transient error with ==; the
// errtaxonomy consumer rule must flag it using the fact imported from
// kvstore's vetx file.
func seededBadClassify(cl *kvstore.Client, key []byte) bool {
	_, err := cl.TestAndSet(key, nil, nil)
	return err == kvstore.ErrTransient
}
`
	if err := os.WriteFile(seeded, []byte(seed), 0o666); err != nil {
		t.Fatal(err)
	}
	var enFiles []string
	for _, f := range en.GoFiles {
		enFiles = append(enFiles, filepath.Join(en.Dir, f))
	}
	enFiles = append(enFiles, seeded)
	enVetx := filepath.Join(tmp, "engine.vetx")
	enCfg := writeCfg(t, tmp, "engine.cfg", &config{
		ID:          "piql/internal/engine",
		Compiler:    "gc",
		Dir:         en.Dir,
		ImportPath:  "piql/internal/engine",
		GoFiles:     enFiles,
		PackageFile: enPackageFile,
		PackageVetx: map[string]string{"piql/internal/kvstore": kvVetx},
		VetxOutput:  enVetx,
	})
	stdout.Reset()
	stderr.Reset()
	code := run([]string{enCfg}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("engine unit with seeded violation exited %d (want 2)\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "zz_seeded.go") {
		t.Fatalf("diagnostic not at the seeded site:\n%s", out)
	}
	if !strings.Contains(out, "errtaxonomy") {
		t.Fatalf("diagnostic not from errtaxonomy:\n%s", out)
	}
	if !strings.Contains(out, "per fact from piql/internal/kvstore") {
		t.Fatalf("diagnostic does not cite the kvstore vetx fact:\n%s", out)
	}
	if _, err := os.ReadFile(enVetx); err != nil {
		t.Fatalf("engine facts not written: %v", err)
	}

	// Same unit without the kvstore facts: the trace has nothing to
	// cite, so the seeded comparison must pass silently — proving the
	// diagnostic above really came from the imported facts file. (The
	// run as a whole is not clean: engine.go's justified
	// `//lint:allow holdblock` correctly turns stale once the
	// cross-package blocking fact it suppresses is missing.)
	enCfgNoFacts := writeCfg(t, tmp, "engine-nofacts.cfg", &config{
		ID:          "piql/internal/engine#nofacts",
		Compiler:    "gc",
		Dir:         en.Dir,
		ImportPath:  "piql/internal/engine",
		GoFiles:     enFiles,
		PackageFile: enPackageFile,
		VetxOutput:  filepath.Join(tmp, "engine-nofacts.vetx"),
	})
	stdout.Reset()
	stderr.Reset()
	run([]string{enCfgNoFacts}, &stdout, &stderr)
	if out := stderr.String(); strings.Contains(out, "zz_seeded.go") || strings.Contains(out, "per fact from") {
		t.Fatalf("seeded site diagnosed even without the kvstore facts file:\n%s", out)
	}
}

// writeTree writes a file tree under root from path→contents.
func writeTree(t *testing.T, root string, files map[string]string) {
	t.Helper()
	for path, content := range files {
		full := filepath.Join(root, filepath.FromSlash(path))
		if err := os.MkdirAll(filepath.Dir(full), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o666); err != nil {
			t.Fatal(err)
		}
	}
}

// TestReleasePathCrossPackageFacts is the releasepath acceptance test
// for the facts protocol: an acquire-helper in one package (justified
// with //lint:allow, which still exports the hold as a NetAcquires
// fact) and a caller in another package that leaks the hold on an
// early return. The leak is witnessed only through the vetx facts file
// — the caller's unit never sees the helper's source — and vanishes
// when the facts are withheld, proving the wiring carries it.
func TestReleasePathCrossPackageFacts(t *testing.T) {
	tmp := t.TempDir()
	// The scratch module is also named piql so its packages count as
	// module-local to the analyzers.
	writeTree(t, tmp, map[string]string{
		"go.mod": "module piql\n\ngo 1.24\n",
		"lockutil/lockutil.go": `package lockutil

import "sync"

type Guard struct{ Mu sync.Mutex }

// BeginHold locks the guard and returns holding it: an intentional
// acquire-helper whose callers must call EndHold.
//
//lint:allow releasepath — acquire-helper contract: every BeginHold caller must EndHold
func BeginHold(g *Guard) {
	g.Mu.Lock()
}

// EndHold releases a hold taken by BeginHold.
func EndHold(g *Guard) {
	g.Mu.Unlock()
}
`,
		"user/user.go": `package user

import "piql/lockutil"

// LeakyHold forgets EndHold on the error path.
func LeakyHold(g *lockutil.Guard, bad bool) {
	lockutil.BeginHold(g)
	if bad {
		return
	}
	lockutil.EndHold(g)
}
`,
	})

	// Unit 1: lockutil, facts only. The allow suppresses the
	// acquire-helper report but the NetAcquires fact must still export.
	luPkgs := listExport(t, tmp, "piql/lockutil")
	lu := luPkgs["piql/lockutil"]
	if lu == nil {
		t.Fatal("go list did not return piql/lockutil")
	}
	luPackageFile := map[string]string{}
	for path, p := range luPkgs {
		if p.Export != "" {
			luPackageFile[path] = p.Export
		}
	}
	var luFiles []string
	for _, f := range lu.GoFiles {
		luFiles = append(luFiles, filepath.Join(lu.Dir, f))
	}
	luVetx := filepath.Join(tmp, "lockutil.vetx")
	luCfg := writeCfg(t, tmp, "lockutil.cfg", &config{
		ID:          "piql/lockutil",
		Compiler:    "gc",
		Dir:         lu.Dir,
		ImportPath:  "piql/lockutil",
		GoFiles:     luFiles,
		PackageFile: luPackageFile,
		VetxOnly:    true,
		VetxOutput:  luVetx,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{luCfg}, &stdout, &stderr); code != 0 {
		t.Fatalf("lockutil unit exited %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(luVetx)
	if err != nil {
		t.Fatal(err)
	}
	facts, err := lint.DecodeFacts(data)
	if err != nil || facts == nil {
		t.Fatalf("lockutil vetx did not decode (err=%v)", err)
	}
	bh, ok := facts.Funcs["BeginHold"]
	if !ok || len(bh.NetAcquires) != 1 || bh.NetAcquires[0] != "lockutil.Guard.Mu" {
		t.Fatalf("BeginHold must export NetAcquires [lockutil.Guard.Mu]: %+v", bh)
	}
	eh, ok := facts.Funcs["EndHold"]
	if !ok || len(eh.NetReleases) != 1 || eh.NetReleases[0] != "lockutil.Guard.Mu" {
		t.Fatalf("EndHold must export NetReleases [lockutil.Guard.Mu]: %+v", eh)
	}

	// Unit 2: user, consuming lockutil's facts — the early return must
	// be reported as a leak of the imported hold.
	usPkgs := listExport(t, tmp, "piql/user")
	us := usPkgs["piql/user"]
	if us == nil {
		t.Fatal("go list did not return piql/user")
	}
	usPackageFile := map[string]string{}
	for path, p := range usPkgs {
		if p.Export != "" {
			usPackageFile[path] = p.Export
		}
	}
	var usFiles []string
	for _, f := range us.GoFiles {
		usFiles = append(usFiles, filepath.Join(us.Dir, f))
	}
	usCfg := writeCfg(t, tmp, "user.cfg", &config{
		ID:          "piql/user",
		Compiler:    "gc",
		Dir:         us.Dir,
		ImportPath:  "piql/user",
		GoFiles:     usFiles,
		PackageFile: usPackageFile,
		PackageVetx: map[string]string{"piql/lockutil": luVetx},
		VetxOutput:  filepath.Join(tmp, "user.vetx"),
	})
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{usCfg}, &stdout, &stderr); code != 2 {
		t.Fatalf("user unit exited %d (want 2)\nstderr: %s", code, stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "lockutil.Guard.Mu") || !strings.Contains(out, "releasepath") ||
		!strings.Contains(out, "still held at this return") {
		t.Fatalf("diagnostic does not witness the imported hold:\n%s", out)
	}

	// Without the facts the caller's unit has no idea BeginHold holds
	// anything: silence here proves the report above came from the vetx.
	usCfgNoFacts := writeCfg(t, tmp, "user-nofacts.cfg", &config{
		ID:          "piql/user#nofacts",
		Compiler:    "gc",
		Dir:         us.Dir,
		ImportPath:  "piql/user",
		GoFiles:     usFiles,
		PackageFile: usPackageFile,
		VetxOutput:  filepath.Join(tmp, "user-nofacts.vetx"),
	})
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{usCfgNoFacts}, &stdout, &stderr); code != 0 {
		t.Fatalf("user unit without facts exited %d:\n%s", code, stderr.String())
	}
}

// TestEscapeBudgetGate seeds a one-line heap-escape regression on a
// row-decode path in a scratch module and proves the gate trips: lint
// exits 2 citing the function and its budget. The clean module passes,
// and -update rewrites the budget to the measured counts.
func TestEscapeBudgetGate(t *testing.T) {
	tmp := t.TempDir()
	clean := `package codec

// DecodeRow parses a length-prefixed row without allocating.
func DecodeRow(b []byte) (int, []byte) {
	n := int(b[0])
	return n, b[1 : 1+n]
}
`
	writeTree(t, tmp, map[string]string{
		"go.mod":         "module piql\n\ngo 1.24\n",
		"codec/codec.go": clean,
		"escape.budget":  "piql/codec.DecodeRow 0\n",
	})

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-escapebudget", "-C", tmp}, &stdout, &stderr); code != 0 {
		t.Fatalf("clean module exited %d:\n%s", code, stderr.String())
	}

	// The regression: one line that hands a pointer to the heap.
	leaky := `package codec

var sink *int

// DecodeRow parses a length-prefixed row; the regression leaks a
// counter to the heap.
func DecodeRow(b []byte) (int, []byte) {
	n := int(b[0])
	leak := new(int)
	sink = leak
	return n, b[1 : 1+n]
}
`
	writeTree(t, tmp, map[string]string{"codec/codec.go": leaky})
	stdout.Reset()
	stderr.Reset()
	code := run([]string{"-escapebudget", "-C", tmp}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("seeded escape regression exited %d (want 2)\nstderr: %s", code, stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "piql/codec.DecodeRow") || !strings.Contains(out, "over its budget of 0") {
		t.Fatalf("gate does not cite function and budget:\n%s", out)
	}

	// -update ratchets the budget to the measured count, after which
	// the same tree passes.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-escapebudget", "-update", "-C", tmp}, &stdout, &stderr); code != 0 {
		t.Fatalf("-update exited %d:\n%s", code, stderr.String())
	}
	budget, err := os.ReadFile(filepath.Join(tmp, "escape.budget"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(budget), "piql/codec.DecodeRow 1") {
		t.Fatalf("-update did not record the measured count:\n%s", budget)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-escapebudget", "-C", tmp}, &stdout, &stderr); code != 0 {
		t.Fatalf("updated budget still fails (%d):\n%s", code, stderr.String())
	}

	// A stale entry for a function that no longer exists is an error,
	// not a silent pass.
	writeTree(t, tmp, map[string]string{"escape.budget": "piql/codec.Gone 0\n"})
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-escapebudget", "-C", tmp}, &stdout, &stderr); code != 1 {
		t.Fatalf("stale budget entry exited %d (want 1):\n%s", code, stderr.String())
	}
}

// TestStandaloneCacheReplay drives the incremental mode: a cold run
// computes and caches per-package results, a warm run replays them
// byte-for-byte (diagnostics included) without typechecking, and an
// edit invalidates exactly the edited package.
func TestStandaloneCacheReplay(t *testing.T) {
	tmp := t.TempDir()
	leaky := `package g

import "sync"

type G struct{ mu sync.Mutex }

func Leak(g *G, bad bool) {
	g.mu.Lock()
	if bad {
		return
	}
	g.mu.Unlock()
}
`
	writeTree(t, tmp, map[string]string{
		"go.mod": "module piql\n\ngo 1.24\n",
		"g/g.go": leaky,
	})
	cache := filepath.Join(tmp, "lintcache")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-standalone", "-cache", cache, "-C", tmp, "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("cold run exited %d (want 2: the fixture leaks)\n%s", code, stderr.String())
	}
	cold := stderr.String()
	if !strings.Contains(cold, "releasepath") {
		t.Fatalf("cold run missing the releasepath finding:\n%s", cold)
	}
	entries, err := os.ReadDir(cache)
	if err != nil || len(entries) == 0 {
		t.Fatalf("cold run wrote no cache entries: %v", err)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-standalone", "-cache", cache, "-C", tmp, "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("warm run exited %d (want 2)\n%s", code, stderr.String())
	}
	if warm := stderr.String(); warm != cold {
		t.Fatalf("warm run did not replay the cold diagnostics\ncold: %s\nwarm: %s", cold, warm)
	}

	// Fix the leak: the package's key changes, the stale entry is
	// bypassed, and the tree goes clean.
	writeTree(t, tmp, map[string]string{"g/g.go": strings.Replace(leaky, "if bad {\n\t\treturn\n\t}\n", "", 1)})
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-standalone", "-cache", cache, "-C", tmp, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("fixed tree exited %d:\n%s", code, stderr.String())
	}

	// A corrupt cache entry is recomputed, not trusted.
	entries, _ = os.ReadDir(cache)
	for _, e := range entries {
		if err := os.WriteFile(filepath.Join(cache, e.Name()), []byte("{torn"), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-standalone", "-cache", cache, "-C", tmp, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("corrupt cache entries broke the run (%d):\n%s", code, stderr.String())
	}

	// JSON mode always emits a findings payload, clean tree included —
	// that is what make ci archives as the artifact.
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-standalone", "-cache", cache, "-json", "-C", tmp, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("json run exited %d:\n%s", code, stderr.String())
	}
	var payload map[string]any
	if err := json.Unmarshal(stdout.Bytes(), &payload); err != nil {
		t.Fatalf("clean -json run did not emit a JSON payload: %v\n%s", err, stdout.String())
	}
}

// TestAtomicMixCrossPackageFacts is the atomicmix acceptance test for
// the facts protocol: a kvstore-like package whose only atomic
// discipline is a function-style atomic.AddUint64 on a plain uint64
// field, and an engine-like package that reads the same field plainly.
// The mixed access is visible only through the AtomicFields fact in
// the first package's vetx — the reader's unit never sees the atomic
// site's source — and the diagnostic vanishes when the facts are
// withheld.
func TestAtomicMixCrossPackageFacts(t *testing.T) {
	tmp := t.TempDir()
	writeTree(t, tmp, map[string]string{
		"go.mod": "module piql\n\ngo 1.24\n",
		"kv/kv.go": `package kv

import "sync/atomic"

// Stats counts per-node operations; Hits is written by concurrent
// request goroutines, so every access must be atomic.
type Stats struct{ Hits uint64 }

// Bump is the sanctioned write path.
func Bump(s *Stats) {
	atomic.AddUint64(&s.Hits, 1)
}
`,
		"eng/eng.go": `package eng

import "piql/kv"

// Report reads the counter plainly — a torn read against Bump's
// atomic writes, witnessed only through kv's AtomicFields fact.
func Report(s *kv.Stats) uint64 {
	return s.Hits
}
`,
	})

	// Unit 1: kv, facts only — the atomic.AddUint64 site must export
	// Stats.Hits as an atomic field.
	kvPkgs := listExport(t, tmp, "piql/kv")
	kv := kvPkgs["piql/kv"]
	if kv == nil {
		t.Fatal("go list did not return piql/kv")
	}
	kvPackageFile := map[string]string{}
	for path, p := range kvPkgs {
		if p.Export != "" {
			kvPackageFile[path] = p.Export
		}
	}
	var kvFiles []string
	for _, f := range kv.GoFiles {
		kvFiles = append(kvFiles, filepath.Join(kv.Dir, f))
	}
	kvVetx := filepath.Join(tmp, "kv.vetx")
	kvCfg := writeCfg(t, tmp, "kv.cfg", &config{
		ID:          "piql/kv",
		Compiler:    "gc",
		Dir:         kv.Dir,
		ImportPath:  "piql/kv",
		GoFiles:     kvFiles,
		PackageFile: kvPackageFile,
		VetxOnly:    true,
		VetxOutput:  kvVetx,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{kvCfg}, &stdout, &stderr); code != 0 {
		t.Fatalf("kv unit exited %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(kvVetx)
	if err != nil {
		t.Fatal(err)
	}
	facts, err := lint.DecodeFacts(data)
	if err != nil || facts == nil {
		t.Fatalf("kv vetx did not decode (err=%v)", err)
	}
	if len(facts.AtomicFields) != 1 || facts.AtomicFields[0] != "kv.Stats.Hits" {
		t.Fatalf("kv must export AtomicFields [kv.Stats.Hits]: %+v", facts.AtomicFields)
	}

	// Unit 2: eng, consuming kv's facts — the plain read must be
	// reported with the cross-package citation.
	engPkgs := listExport(t, tmp, "piql/eng")
	eng := engPkgs["piql/eng"]
	if eng == nil {
		t.Fatal("go list did not return piql/eng")
	}
	engPackageFile := map[string]string{}
	for path, p := range engPkgs {
		if p.Export != "" {
			engPackageFile[path] = p.Export
		}
	}
	var engFiles []string
	for _, f := range eng.GoFiles {
		engFiles = append(engFiles, filepath.Join(eng.Dir, f))
	}
	engCfg := writeCfg(t, tmp, "eng.cfg", &config{
		ID:          "piql/eng",
		Compiler:    "gc",
		Dir:         eng.Dir,
		ImportPath:  "piql/eng",
		GoFiles:     engFiles,
		PackageFile: engPackageFile,
		PackageVetx: map[string]string{"piql/kv": kvVetx},
		VetxOutput:  filepath.Join(tmp, "eng.vetx"),
	})
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{engCfg}, &stdout, &stderr); code != 2 {
		t.Fatalf("eng unit exited %d (want 2)\nstderr: %s", code, stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, "plain read of field kv.Stats.Hits") ||
		!strings.Contains(out, "per fact from piql/kv") ||
		!strings.Contains(out, "atomicmix") {
		t.Fatalf("diagnostic does not witness the imported atomic field:\n%s", out)
	}

	// Without the facts the reader's unit sees an ordinary uint64
	// field: silence proves the report came from the vetx.
	engCfgNoFacts := writeCfg(t, tmp, "eng-nofacts.cfg", &config{
		ID:          "piql/eng#nofacts",
		Compiler:    "gc",
		Dir:         eng.Dir,
		ImportPath:  "piql/eng",
		GoFiles:     engFiles,
		PackageFile: engPackageFile,
		VetxOutput:  filepath.Join(tmp, "eng-nofacts.vetx"),
	})
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{engCfgNoFacts}, &stdout, &stderr); code != 0 {
		t.Fatalf("eng unit without facts exited %d:\n%s", code, stderr.String())
	}
}

// TestStandaloneCacheDirectiveEdit pins the cache-invalidation contract
// for suppression directives: an edit whose only change is adding or
// removing a //lint:allow comment still changes the package's content
// hash, so the warm run recomputes instead of replaying the stale
// verdict. (A cache keyed on anything that skipped comments would
// replay the pre-directive diagnostics forever.)
func TestStandaloneCacheDirectiveEdit(t *testing.T) {
	tmp := t.TempDir()
	leaky := `package g

import "sync"

type G struct{ mu sync.Mutex }

// Leak returns holding the guard on the bad path.
func Leak(g *G, bad bool) {
	g.mu.Lock()
	if bad {
		return
	}
	g.mu.Unlock()
}
`
	writeTree(t, tmp, map[string]string{
		"go.mod": "module piql\n\ngo 1.24\n",
		"g/g.go": leaky,
	})
	cache := filepath.Join(tmp, "lintcache")

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-standalone", "-cache", cache, "-C", tmp, "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("cold run exited %d (want 2: the fixture leaks)\n%s", code, stderr.String())
	}
	cold := stderr.String()
	if !strings.Contains(cold, "releasepath") {
		t.Fatalf("cold run missing the releasepath finding:\n%s", cold)
	}

	// The only edit: a justified //lint:allow in Leak's doc comment.
	allowed := strings.Replace(leaky,
		"// Leak returns holding the guard on the bad path.\n",
		"// Leak returns holding the guard on the bad path.\n//\n//lint:allow releasepath — intentional hold, released by the caller\n", 1)
	writeTree(t, tmp, map[string]string{"g/g.go": allowed})
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-standalone", "-cache", cache, "-C", tmp, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("directive-only edit replayed the stale verdict (%d):\n%s", code, stderr.String())
	}

	// Reverting the directive restores the original content hash: the
	// warm run replays the first entry byte-for-byte, diagnostics
	// included.
	writeTree(t, tmp, map[string]string{"g/g.go": leaky})
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-standalone", "-cache", cache, "-C", tmp, "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("reverted tree exited %d (want 2)\n%s", code, stderr.String())
	}
	if warm := stderr.String(); warm != cold {
		t.Fatalf("reverted tree did not replay the cold diagnostics\ncold: %s\nwarm: %s", cold, warm)
	}
}

// TestStandaloneChangedFilter drives -changed in a scratch git
// checkout: two packages each carrying a violation, with only one
// edited since the base commit — the edited package reports, the
// untouched one stays silent, and a fully committed tree reports
// nothing at all.
func TestStandaloneChangedFilter(t *testing.T) {
	if _, err := exec.LookPath("git"); err != nil {
		t.Skip("git not available")
	}
	tmp := t.TempDir()
	leak := func(pkg string) string {
		return `package ` + pkg + `

import "sync"

type G struct{ mu sync.Mutex }

func Leak(g *G, bad bool) {
	g.mu.Lock()
	if bad {
		return
	}
	g.mu.Unlock()
}
`
	}
	writeTree(t, tmp, map[string]string{
		"go.mod": "module piql\n\ngo 1.24\n",
		"a/a.go": leak("a"),
		"b/b.go": leak("b"),
	})
	git := func(args ...string) {
		t.Helper()
		cmd := exec.Command("git", append([]string{"-C", tmp,
			"-c", "user.name=piql", "-c", "user.email=piql@test"}, args...)...)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("git %v: %v\n%s", args, err, out)
		}
	}
	git("init", "-q")
	git("add", ".")
	git("commit", "-q", "-m", "base")

	// Nothing differs from HEAD: both violations are filtered out.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-standalone", "-changed", "HEAD", "-C", tmp, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("committed tree exited %d:\n%s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "no module packages changed") {
		t.Fatalf("committed tree should report an empty changed set:\n%s", stderr.String())
	}

	// Edit only a: its violation reports, b's identical one does not.
	writeTree(t, tmp, map[string]string{"a/a.go": leak("a") + "\n// touched\n"})
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-standalone", "-changed", "HEAD", "-C", tmp, "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("edited tree exited %d (want 2)\n%s", code, stderr.String())
	}
	out := stderr.String()
	if !strings.Contains(out, filepath.Join("a", "a.go")) {
		t.Fatalf("edited package's finding missing:\n%s", out)
	}
	if strings.Contains(out, filepath.Join("b", "b.go")) {
		t.Fatalf("untouched package's finding not filtered:\n%s", out)
	}
}

// TestDataflowDump smoke-tests the -dataflow debug printer: a known
// function dumps its def-use chains, an unknown name is an error with
// a usage hint.
func TestDataflowDump(t *testing.T) {
	tmp := t.TempDir()
	writeTree(t, tmp, map[string]string{
		"go.mod": "module piql\n\ngo 1.24\n",
		"g/g.go": `package g

func Twice(n int) int {
	m := n + n
	return m
}
`,
	})
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-standalone", "-dataflow", "Twice", "-C", tmp, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("-dataflow Twice exited %d:\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "Twice") || !strings.Contains(out, "m") {
		t.Fatalf("dump does not show the function's def-use chains:\n%s", out)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-standalone", "-dataflow", "NoSuchFunc", "-C", tmp, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("unknown -dataflow name exited %d (want 1)", code)
	}
	if !strings.Contains(stderr.String(), "no function matches") {
		t.Fatalf("unknown name should print a hint:\n%s", stderr.String())
	}
}

// TestStandaloneCleanTree runs the from-source mode over the whole
// module: the tree must be clean (every finding fixed or justified),
// and the lock hierarchy must contain the documented roots.
func TestStandaloneCleanTree(t *testing.T) {
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-standalone", "-lockgraph", "-C", repoRoot, "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("standalone run exited %d:\n%s%s", code, stdout.String(), stderr.String())
	}
	graph := stdout.String()
	for _, want := range []string{
		"kvstore.Cluster.rebalanceMu",
		"kvstore.Cluster.faultMu",
		"kvstore.move.mu",
		"kvstore.node.mu",
		"engine.Engine.writeGate",
	} {
		if !strings.Contains(graph, want) {
			t.Errorf("lock hierarchy missing %s:\n%s", want, graph)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
