// Command piql-bench regenerates every table and figure from the
// paper's evaluation (Section 8) on the simulated cluster:
//
//	piql-bench -experiment all
//	piql-bench -experiment table1
//	piql-bench -experiment fig1|fig6|fig7|fig8-9|fig10-11|fig12
//
// Beyond the paper, -experiment concurrent runs the SCADr and TPC-W
// workloads from real concurrent goroutines against one shared engine
// (immediate mode, wall-clock time) and reports aggregate QPS and p99
// per session count — the engine-concurrency proof, not a paper figure.
// It is excluded from "all" since its numbers depend on host cores.
//
// -experiment faults runs the failure-injection chaos storms (node
// crash/restart mid-rebalance and partition with lease reclaim) and
// reports the recovery evidence: catch-ups queued and replayed, ops
// retried, and the post-heal integrity audits. Also excluded from
// "all" — the fault windows are wall-clock paced.
//
// Absolute numbers come from the latency model of the simulated
// key/value store, not EC2 hardware; the shapes (linear scaling, flat
// tails, conservative predictions, bounded-vs-unbounded crossover,
// executor ordering) are the reproduction targets. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"piql/internal/harness"
	"piql/internal/predict"
	"piql/internal/workload/scadr"
	"piql/internal/workload/tpcw"
)

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: all, table1, fig1, fig6, fig7, fig8-9, fig10-11, fig12, admission, concurrent, faults")
	quick := flag.Bool("quick", false, "smaller sweeps for a fast smoke run")
	flag.Parse()

	run := func(name string) bool {
		return *experiment == "all" || strings.EqualFold(*experiment, name)
	}
	out := os.Stdout
	start := time.Now()

	var model *predict.Model
	needModel := run("table1") || run("fig6")
	if needModel {
		fmt.Fprintln(out, "training SLO prediction model (Section 6)...")
		cfg := predict.DefaultTrainConfig()
		if *quick {
			cfg.Intervals = 8
			cfg.RepsPerInterval = 5
		}
		m, err := predict.Train(cfg)
		if err != nil {
			fatal(err)
		}
		model = m
		fmt.Fprintf(out, "model trained in %v\n\n", time.Since(start).Round(time.Second))
	}

	if run("table1") {
		cfg := harness.DefaultTable1Config()
		if *quick {
			cfg.Intervals = 5
			cfg.PerQuery = 20
		}
		rows, err := harness.RunTable1(model, cfg)
		if err != nil {
			fatal(err)
		}
		harness.PrintTable1(out, rows)
	}

	if run("fig1") {
		sizes := []int{100, 1000, 10000, 50000}
		if *quick {
			sizes = []int{100, 1000, 5000}
		}
		rows, err := harness.RunFig1(sizes, 5)
		if err != nil {
			fatal(err)
		}
		harness.PrintFig1(out, rows)
	}

	if run("fig6") {
		cfg := harness.DefaultFig6Config()
		if *quick {
			cfg.Executions = 60
		}
		res, err := harness.RunFig6(model, cfg)
		if err != nil {
			fatal(err)
		}
		res.Print(out)
	}

	if run("fig7") {
		cfg := harness.DefaultFig7Config()
		if *quick {
			cfg.Subscribers = []int{0, 1000, 3000, 5000}
			cfg.Executions = 120
		}
		points, err := harness.RunFig7(cfg)
		if err != nil {
			fatal(err)
		}
		harness.PrintFig7(out, points)
	}

	if run("fig8-9") {
		cfg := harness.DefaultScaleConfig()
		if *quick {
			cfg.NodeCounts = []int{10, 20, 40}
			cfg.Measure = 2 * time.Second
		}
		res, err := harness.RunScale(harness.TPCWWorkload(tpcw.DefaultConfig()), cfg)
		if err != nil {
			fatal(err)
		}
		res.Print(out, "Fig 8", "Fig 9")
	}

	if run("fig10-11") {
		cfg := harness.DefaultScaleConfig()
		if *quick {
			cfg.NodeCounts = []int{10, 20, 40}
			cfg.Measure = 2 * time.Second
		}
		res, err := harness.RunScale(harness.SCADrWorkload(scadr.DefaultConfig()), cfg)
		if err != nil {
			fatal(err)
		}
		res.Print(out, "Fig 10", "Fig 11")
	}

	if run("admission") {
		cfg := harness.DefaultAdmissionConfig()
		if *quick {
			cfg.Subscribers = 2000
			cfg.GoodExecutions = 120
			cfg.BadWorkers = 24
			cfg.BadExecutions = 15
		}
		res, err := harness.RunAdmission(cfg)
		if err != nil {
			fatal(err)
		}
		harness.PrintAdmission(out, cfg, res)
	}

	if run("fig12") {
		res, err := harness.RunFig12(9)
		if err != nil {
			fatal(err)
		}
		res.Print(out)
	}

	// Not part of "all": wall-clock numbers depend on the host's cores.
	if strings.EqualFold(*experiment, "concurrent") {
		cfg := harness.DefaultConcurrentConfig()
		if *quick {
			cfg.Goroutines = []int{1, 2, 4}
			cfg.InteractionsPerGoroutine = 100
		}
		scadrCfg := scadr.DefaultConfig()
		scadrCfg.UsersPerNode = 250
		res, err := harness.RunConcurrent(harness.SCADrWorkload(scadrCfg), cfg)
		if err != nil {
			fatal(err)
		}
		res.Print(out)

		tpcwCfg := tpcw.DefaultConfig()
		tpcwCfg.CustomersPerNode = 250
		tpcwCfg.Items = 5000
		res, err = harness.RunConcurrent(harness.TPCWWorkload(tpcwCfg), cfg)
		if err != nil {
			fatal(err)
		}
		res.Print(out)
	}

	// Not part of "all": the fault windows are wall-clock paced.
	if strings.EqualFold(*experiment, "faults") {
		for _, sc := range []struct {
			name string
			f    harness.FaultSchedule
		}{
			{"node crash mid-rebalance, restart after two more", harness.FaultSchedule{KillRestart: true, LeaseMs: 60_000}},
			{"partition with lease expiry + reclaim, then heal", harness.FaultSchedule{Partition: true, LeaseMs: 40}},
		} {
			fmt.Fprintf(out, "fault injection: %s\n", sc.name)
			cfg := harness.DefaultChaosConfig()
			f := sc.f
			cfg.Faults = &f
			res, err := harness.RunChaos(cfg)
			if err != nil {
				fatal(err)
			}
			res.Print(out)
		}
	}

	fmt.Fprintf(out, "total: %v\n", time.Since(start).Round(time.Second))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "piql-bench:", err)
	os.Exit(1)
}
