# The ci target is the gate: a missing go.mod (or any build/vet/race
# regression) fails it before anything else runs.
GO ?= go

.PHONY: all ci vet lint lint-changed build test race chaos chaos-faults bench bench-all bench-smoke experiments

all: ci

# ci publishes bin/lint-findings.json (the piql-vet -json payload from
# the lint step) as its static-analysis artifact; on a clean run the
# payload is an empty findings object, so the file always exists for
# collection.
ci: lint build race chaos-faults bench-smoke
	@echo "lint findings artifact: bin/lint-findings.json"

vet:
	$(GO) vet ./...

# lint is the static gate: formatting, the standard vet analyzers, and
# the project's own fourteen analyzers (internal/lint) —
# routing-snapshot claims, envelope integrity, virtual clock
# discipline, lease-table swaps, lock-order cycles,
# blocking-under-mutex, transient-error taxonomy conformance,
# goroutine-lifecycle termination (goroleak), release-on-all-exits for
# mutexes and beginOp/endOp claims (releasepath), the hot-path
# heap-escape budget (escapebudget), and the three dataflow analyzers
# built on the def-use core: atomic/plain access mixing (atomicmix),
# snapshot lifetime escapes (snapshotescape), and cancel-func leak
# paths (cancelpath). Per-function facts (locks held, may-block, error
# types, net acquire/release, park risk, atomic fields, acquire-helper
# results) propagate across packages, so diagnostics here are
# interprocedural. Suppressions are //lint:allow directives at the
# annotated site; stale directives are themselves findings. See the
# "Static analysis" section of README.md.
#
# The tree-wide run uses -cache: per-package facts and diagnostics are
# keyed by a content hash (files + dependency facts + tool binary)
# under bin/lintcache, so a warm `make lint` replays in seconds and
# any source or tool change invalidates exactly the affected packages.
# Findings are also written as bin/lint-findings.json (the -json
# payload, including a "timing" entry recording elapsed time and the
# analyzed/replayed split — compare a cold run against a warm one),
# which `make ci` publishes as its lint artifact.
#
# The escape gate compares `go build -gcflags=-m` attribution against
# the checked-in escape.budget. After deliberately changing a hot
# path's allocation profile, re-measure with:
#   make lint ESCAPE_BUDGET=update
# which rewrites escape.budget in place (review the diff like any
# other file). Any other value leaves the budget enforced as-is.
#
# Without make in the loop:
#   go run ./cmd/piql-vet -standalone ./...             # from-source, whole module
#   go run ./cmd/piql-vet -standalone -json ./...       # findings as JSON on stdout
#   go run ./cmd/piql-vet -standalone -lockgraph ./...  # print the lock hierarchy
#   go run ./cmd/piql-vet -escapebudget ./...           # escape gate only
#   go vet -vettool=bin/piql-vet ./...                  # via the go vet driver
VETTOOL = bin/piql-vet
ESCAPE_BUDGET ?=

lint:
	@out=$$(gofmt -l cmd internal *.go); if [ -n "$$out" ]; then \
		echo "gofmt -l flagged:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...
	$(GO) build -o $(VETTOOL) ./cmd/piql-vet
	$(VETTOOL) -standalone -cache bin/lintcache -timing -json ./... > bin/lint-findings.json || \
		{ cat bin/lint-findings.json; exit 1; }
	@if [ "$(ESCAPE_BUDGET)" = "update" ]; then \
		echo "$(VETTOOL) -escapebudget -update ./..."; \
		$(VETTOOL) -escapebudget -update ./... && echo "escape.budget rewritten"; \
	else \
		echo "$(VETTOOL) -escapebudget ./..."; \
		$(VETTOOL) -escapebudget ./...; \
	fi

# lint-changed runs the analyzers over only the packages whose files
# differ from the merge-base with LINT_BASE (default HEAD: the working
# tree's uncommitted edits), plus their module-local dependents — the
# fast inner-loop check before a full `make lint`. Every package still
# runs so cross-package facts stay coherent; the cache makes the
# unchanged ones replays, and only the affected set is reported.
LINT_BASE ?= HEAD

lint-changed:
	$(GO) build -o $(VETTOOL) ./cmd/piql-vet
	$(VETTOOL) -standalone -cache bin/lintcache -changed $(LINT_BASE) ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector, including the
# concurrent-session tests (TestConcurrentSessions,
# TestPublicAPIConcurrentUse), the simulated scatter-gather range
# reads (TestGetRangeScatter*, TestScatterConcurrentClients), and the
# online-maintenance chaos tests (TestChaosOnlineOperations,
# TestRebalanceUnderTraffic, TestCreateIndexUnderConcurrentWrites,
# TestInsertRollbackRacingDelete) that gate index backfill and
# rebalance under live writes.
race:
	$(GO) test -race ./...

# chaos runs just the online-maintenance gate, raced — the quick check
# after touching the index lifecycle, write path, or routing table. It
# includes the conditional-writer fleet (TestChaosOnlineOperations and
# TestTestAndSetLinearizableAcrossRebalance model-check every TestAndSet
# outcome across repeated chunked rebalances), the chunked-copy
# regressions, and the replica-convergence gates (RunChaos's
# byte-for-byte per-key audit across all replicas after every storm,
# plus TestReplicasConvergeUnderRacingWrites racing unordered Put/Delete
# across rebalances and TestAsyncReplicationRacingWritersConverge for
# the lagged-replica write-order inversion).
chaos:
	$(GO) test -race -run 'TestChaosOnlineOperations|TestRebalanceUnderTraffic|TestRebalanceRangeReadsUnderTraffic|TestCreateIndexUnderConcurrentWrites|TestInsertRollbackRacingDelete|TestTestAndSetLinearizableAcrossRebalance|TestRebalanceChunkedCopy|TestRebalanceDeleteInEarlierChunkNoResurrect|TestCreateIndexRacingDeletesNoDangling|TestSimulatedCreateIndexDrainsWriters|TestReplicasConvergeUnderRacingWrites|TestAsyncReplicationRacingWritersConverge|TestAsyncCatchUpRespectsOwnership|TestBackfillStampLosesToRacingDelete' ./internal/...

# chaos-faults is the failure-injection gate, raced and explicit in ci:
# the chaos storms with a node crashed or partitioned mid-rebalance
# (plus the falsification subtests proving read failover and catch-up
# replay are each load-bearing), lease-expiry fencing recovery, quorum
# staleness bounds, and the catch-up/crash interleavings.
chaos-faults:
	$(GO) test -race -run 'TestChaosSurvivesKillRestartMidRebalance|TestChaosSurvivesPartitionedReplica|TestLeaseExpiryUnwedgesTestAndSet|TestQuorumReadBoundsStaleness|TestAsyncCatchUpKillRestartInterleaving|TestReadRepairLaggedThenKilledReplica|TestErrorChainsRoundTrip|TestRetryableClassification|TestDegradedReadSurfacesRetryable' ./internal/...

# The hot-path benchmarks tracked across PRs: raw engine overhead,
# the three execution strategies, and concurrent-session throughput.
BENCH_HOT = BenchmarkExecuteFindUser|BenchmarkFig12ExecutionStrategies|BenchmarkConcurrentSessions

# bench runs the hot benchmarks once with allocation stats and records
# the raw run — newline-delimited test2json events, including every
# ns/op / B/op / allocs/op line — as the perf-trajectory artifact
# BENCH_5.json (compare against BENCH_4.json for the version envelope's
# overhead on Get/Put p99 and FindUser allocs/op).
bench:
	$(GO) test -run xxx -bench '$(BENCH_HOT)' -benchtime 1x -benchmem -v -json . > BENCH_5.json
	@grep -oE '(Benchmark[A-Za-z]+)?[^"]*allocs/op' BENCH_5.json | sed 's/\\t/  /g' || true

# bench-smoke is the short-mode gate inside ci: the cheapest hot
# benchmark, enough to catch an executor hot path that stopped compiling
# or regressed to pathological allocation.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkExecuteFindUser' -benchtime 100x -benchmem .

# bench-all runs every paper figure benchmark plus the concurrent-session
# throughput benchmarks once.
bench-all:
	$(GO) test -run xxx -bench . -benchtime 1x -v .

# experiments regenerates the paper's tables and figures in full.
experiments:
	$(GO) run ./cmd/piql-bench -experiment all
