# The ci target is the gate: a missing go.mod (or any build/vet/race
# regression) fails it before anything else runs.
GO ?= go

.PHONY: all ci vet build test race bench experiments

all: ci

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the full suite under the race detector, including the
# concurrent-session tests (TestConcurrentSessions,
# TestPublicAPIConcurrentUse).
race:
	$(GO) test -race ./...

# bench runs every paper figure benchmark plus the concurrent-session
# throughput benchmarks once.
bench:
	$(GO) test -run xxx -bench . -benchtime 1x -v .

# experiments regenerates the paper's tables and figures in full.
experiments:
	$(GO) run ./cmd/piql-bench -experiment all
