module piql

go 1.24
