package piql

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func exampleDB(t *testing.T) *DB {
	t.Helper()
	db := Open(Config{Nodes: 4})
	db.MustExec(`CREATE TABLE users (
		username VARCHAR(20), bio VARCHAR(140), PRIMARY KEY (username))`)
	db.MustExec(`CREATE TABLE follows (
		owner VARCHAR(20), target VARCHAR(20),
		PRIMARY KEY (owner, target),
		FOREIGN KEY (target) REFERENCES users,
		CARDINALITY LIMIT 50 (owner))`)
	for i := 0; i < 30; i++ {
		db.MustExec(`INSERT INTO users VALUES (?, ?)`,
			Str(fmt.Sprintf("u%02d", i)), Str("hello"))
	}
	for i := 1; i < 10; i++ {
		db.MustExec(`INSERT INTO follows VALUES ('u00', ?)`, Str(fmt.Sprintf("u%02d", i)))
	}
	return db
}

func TestPublicAPIBasics(t *testing.T) {
	db := exampleDB(t)
	q, err := db.Prepare(`SELECT username, bio FROM users WHERE username = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if q.OpBound() != 1 {
		t.Errorf("OpBound = %d", q.OpBound())
	}
	res, err := q.Execute(Str("u05"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "u05" || res.Names[1] != "bio" {
		t.Fatalf("res = %+v", res)
	}
	if !strings.Contains(q.Explain(), "PKLookup") {
		t.Errorf("Explain:\n%s", q.Explain())
	}
}

func TestPublicAPIJoin(t *testing.T) {
	db := exampleDB(t)
	res, err := db.Query(`
		SELECT u.username FROM follows f JOIN users u
		WHERE u.username = f.target AND f.owner = ?`, Str("u00"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestPublicAPIUnboundedRejection(t *testing.T) {
	db := exampleDB(t)
	_, err := db.Prepare(`SELECT * FROM users WHERE bio = 'hello'`)
	var ube *UnboundedQueryError
	if !errors.As(err, &ube) {
		t.Fatalf("err = %v", err)
	}
	if len(ube.Suggestions) == 0 || ube.Error() == "" {
		t.Fatalf("assistant feedback missing: %+v", ube)
	}
}

func TestPublicAPIPagination(t *testing.T) {
	db := exampleDB(t)
	q, err := db.Prepare(`SELECT username FROM users ORDER BY username PAGINATE 7`)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := q.Paginate()
	if err != nil {
		t.Fatal(err)
	}
	var seen []string
	for !cur.Done() {
		// Round-trip through serialization every page.
		cur, err = db.RestoreCursor(cur.Serialize())
		if err != nil {
			t.Fatal(err)
		}
		res, err := cur.Next()
		if err != nil {
			t.Fatal(err)
		}
		if res == nil {
			break
		}
		for _, row := range res.Rows {
			seen = append(seen, row[0].S)
		}
	}
	if len(seen) != 30 {
		t.Fatalf("traversed %d users", len(seen))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i-1] >= seen[i] {
			t.Fatalf("order broken at %d: %s >= %s", i, seen[i-1], seen[i])
		}
	}
}

func TestPublicAPIStrategies(t *testing.T) {
	db := exampleDB(t)
	for _, s := range []Strategy{LazyExecutor, SimpleExecutor, ParallelExecutor} {
		db.SetStrategy(s)
		res, err := db.Query(`SELECT target FROM follows WHERE owner = ?`, Str("u00"))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(res.Rows) != 9 {
			t.Fatalf("%v: rows = %d", s, len(res.Rows))
		}
	}
}

func TestPublicAPIWritePath(t *testing.T) {
	db := exampleDB(t)
	if err := db.Exec(`UPDATE users SET bio = 'updated' WHERE username = 'u01'`); err != nil {
		t.Fatal(err)
	}
	res, _ := db.Query(`SELECT bio FROM users WHERE username = 'u01'`)
	if res.Rows[0][0].S != "updated" {
		t.Fatalf("bio = %v", res.Rows[0][0])
	}
	if err := db.Exec(`DELETE FROM users WHERE username = 'u01'`); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Query(`SELECT bio FROM users WHERE username = 'u01'`)
	if len(res.Rows) != 0 {
		t.Fatal("row survived delete")
	}
	// Cardinality enforcement surfaces as an error on the 51st follow.
	for i := 0; i < 60; i++ {
		err := db.Exec(`INSERT INTO follows VALUES ('u02', ?)`, Str(fmt.Sprintf("t%02d", i)))
		if err != nil {
			if i == 50 && strings.Contains(err.Error(), "cardinality") {
				return
			}
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	t.Fatal("cardinality limit never enforced")
}

// TestPublicAPIConcurrentUse exercises the documented guarantee that one
// DB serves many goroutines: concurrent Query, shared-Query Execute, and
// point writes with per-goroutine keys, all against one handle. Run with
// -race this is the public API's concurrency proof.
func TestPublicAPIConcurrentUse(t *testing.T) {
	db := exampleDB(t)
	shared, err := db.Prepare(`SELECT target FROM follows WHERE owner = 'u00' LIMIT 50`)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 12
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				res, err := shared.Execute()
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != 9 {
					errs <- fmt.Errorf("shared query returned %d rows, want 9", len(res.Rows))
					return
				}
				user := fmt.Sprintf("g%02d-%02d", g, i)
				if err := db.Exec(`INSERT INTO users VALUES (?, 'spawned')`, Str(user)); err != nil {
					errs <- err
					return
				}
				res, err = db.Query(`SELECT bio FROM users WHERE username = ?`, Str(user))
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != 1 || res.Rows[0][0].S != "spawned" {
					errs <- fmt.Errorf("read-own-write for %s failed: %v", user, res.Rows)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestPublicAPIAdmissionControl(t *testing.T) {
	db := Open(Config{Nodes: 4, MaxOps: 60, Enforce: true})
	db.MustExec(`CREATE TABLE users (
		username VARCHAR(20), bio VARCHAR(140), PRIMARY KEY (username))`)
	db.MustExec(`CREATE TABLE follows (
		owner VARCHAR(20), target VARCHAR(20),
		PRIMARY KEY (owner, target),
		FOREIGN KEY (target) REFERENCES users,
		CARDINALITY LIMIT 50 (owner))`)

	// 1 point get: admitted, and the bound rides on the Query.
	q, err := db.Prepare(`SELECT * FROM users WHERE username = ?`)
	if err != nil {
		t.Fatal(err)
	}
	b := q.Bound()
	if b == nil || !b.Bounded || b.Ops != 1 {
		t.Fatalf("Bound() = %+v", b)
	}

	// Scan + 50 dereferences + residual budget: the follows fan-out is
	// 1 range read + 50 gets = 51 ops — admitted under 60, refused
	// under 10.
	fanout := `SELECT u.username FROM follows f JOIN users u
		WHERE u.username = f.target AND f.owner = ?`
	if _, err := db.Prepare(fanout); err != nil {
		t.Fatalf("fan-out query refused under MaxOps=60: %v", err)
	}

	strict := Open(Config{Nodes: 4, MaxOps: 10, Enforce: true})
	strict.MustExec(`CREATE TABLE follows (
		owner VARCHAR(20), target VARCHAR(20),
		PRIMARY KEY (owner, target),
		CARDINALITY LIMIT 50 (owner))`)
	_, err = strict.Prepare(`SELECT * FROM follows WHERE owner = ? LIMIT 50`)
	if err != nil {
		t.Fatalf("single range read should pass MaxOps=10: %v", err)
	}
	_, err = strict.Prepare(`SELECT * FROM follows WHERE owner IN (
		'a','b','c','d','e','f','g','h','i','j','k') AND target = 'x'`)
	var over *ErrOverSLO
	if !errors.As(err, &over) {
		t.Fatalf("err = %v, want *ErrOverSLO", err)
	}
	if over.MaxOps != 10 {
		t.Fatalf("refusal = %+v", over)
	}
}
