// Package piql is a Go implementation of PIQL — the Performance-
// Insightful Query Language of Armbrust et al. (PVLDB 5(3), 2011):
// a scale-independent SQL subset compiled to statically bounded plans
// over a range-partitioned key/value store.
//
// A PIQL database guarantees that every query it accepts performs a
// bounded number of key/value store operations regardless of database
// size ("success tolerance"): queries that meet their service level
// objective on a small database keep meeting it as the site grows.
//
// Basic use:
//
//	db := piql.Open(piql.Config{Nodes: 4})
//	db.MustExec(`CREATE TABLE users (name VARCHAR(20), bio VARCHAR(140), PRIMARY KEY (name))`)
//	db.MustExec(`INSERT INTO users VALUES ('ann', 'hello')`, )
//	q, err := db.Prepare(`SELECT * FROM users WHERE name = ?`)
//	res, err := q.Execute(piql.Str("ann"))
//
// Queries the compiler cannot bound are rejected at Prepare time with a
// *piql.UnboundedQueryError carrying Performance Insight Assistant
// suggestions (add a CARDINALITY LIMIT, a PAGINATE clause, ...).
//
// # Concurrency
//
// A DB is safe for concurrent use by multiple goroutines: Exec, Query,
// Prepare, and Query.Execute may all be called from any number of
// goroutines on the same DB, as the paper's application-tier deployment
// model requires (many stateless app servers hammering one store). Internally the DB keeps a pool of engine sessions — one is
// checked out per call, so calls never contend on each other's
// key/value client. The engine underneath shares only
//
//   - a copy-on-write catalog (DDL publishes immutable snapshots;
//     queries never block on CREATE TABLE / CREATE INDEX backfills),
//   - an RWMutex-guarded compiled-plan cache (cache hits take a read
//     lock only), and
//   - a single-flight index-backfill table (concurrent Prepares of
//     plans needing the same new index build it exactly once).
//
// Prepared Query and Cursor values may likewise be shared across
// goroutines; a Cursor's page position itself is not synchronized, so
// drive one cursor from one goroutine at a time (or Serialize it and
// resume elsewhere). SetStrategy applies to subsequent calls and should
// be set up front, not raced with in-flight queries.
//
// CREATE INDEX is safe under a concurrent write-heavy workload on the
// same table: the index is maintained by every write from the moment it
// is registered in the catalog (state "building"), the backfill drains
// in-flight writers before scanning, and queries are served from the
// index only once it flips to "ready". The store likewise rebalances
// under live traffic (see kvstore.Cluster.Rebalance).
package piql

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"piql/internal/analyze"
	"piql/internal/core"
	"piql/internal/engine"
	"piql/internal/exec"
	"piql/internal/kvstore"
	"piql/internal/predict"
	"piql/internal/value"
)

// Value is a dynamically typed PIQL value (query parameter or result
// cell).
type Value = value.Value

// Row is an ordered tuple of values.
type Row = value.Row

// Constructors for parameters and literals.
var (
	// Str builds a string value.
	Str = value.Str
	// Int builds a 64-bit integer value.
	Int = value.Int
	// Float builds a 64-bit float value.
	Float = value.Float
	// Bool builds a boolean value.
	Bool = value.Bool
	// Null builds the NULL value.
	Null = value.Null
)

// Strategy selects how the execution engine issues key/value requests
// (Section 8.5 of the paper).
type Strategy = exec.Strategy

// Execution strategies.
const (
	// LazyExecutor requests one tuple at a time.
	LazyExecutor = exec.Lazy
	// SimpleExecutor batches requests using the compiler's limit hints.
	SimpleExecutor = exec.Simple
	// ParallelExecutor batches and issues requests concurrently (default).
	ParallelExecutor = exec.Parallel
)

// Config describes the simulated key/value store backing the database
// and the admission-control policy applied at Prepare time.
type Config struct {
	// Nodes is the number of storage servers (default 4).
	Nodes int
	// ReplicationFactor is the copies kept per item (default 2).
	ReplicationFactor int
	// Seed drives all simulation randomness (default 1).
	Seed int64
	// ReadQuorum is how many replicas each point read consults (default
	// 1). With ReplicationFactor 2, a quorum of 2 bounds read staleness
	// to zero while any single replica is partitioned: the newest of the
	// returned versions wins and stale copies are read-repaired in the
	// background.
	ReadQuorum int

	// SLO is the response-time objective queries are admitted against:
	// with Enforce set and a model installed (UseSLOModel), Prepare
	// refuses queries whose predicted 99th-percentile latency exceeds
	// it (0 = no latency check).
	SLO time.Duration
	// MaxOps refuses queries whose static operation bound exceeds this
	// budget (0 = no budget). Unlike SLO it needs no trained model.
	MaxOps int
	// Enforce turns admission control on: unbounded plans are refused
	// with *ErrUnbounded, over-budget or over-SLO plans with
	// *ErrOverSLO. Off, the same analysis still runs and is available
	// through Query.Bound, but nothing is refused.
	Enforce bool
}

// DB is a PIQL database handle: a stateless query-processing library
// (parser, compiler, executor) over a distributed key/value store. It
// is safe for concurrent use by multiple goroutines (see the package
// comment).
type DB struct {
	eng   *engine.Engine
	pool  sync.Pool    // idle *engine.Session values
	strat atomic.Int32 // exec.Strategy applied to checked-out sessions
}

// Open creates an in-process PIQL database over a fresh simulated
// cluster.
func Open(cfg Config) *DB {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 4
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	cluster := kvstore.New(kvstore.Config{
		Nodes:             cfg.Nodes,
		ReplicationFactor: cfg.ReplicationFactor,
		Seed:              cfg.Seed,
	}, nil)
	eng := engine.New(cluster)
	eng.SetReadQuorum(cfg.ReadQuorum)
	eng.SetAdmission(&analyze.Policy{
		Enforce: cfg.Enforce,
		SLO:     cfg.SLO,
		MaxOps:  cfg.MaxOps,
	})
	db := &DB{eng: eng}
	db.strat.Store(int32(exec.Parallel))
	return db
}

// UseSLOModel installs a trained latency model for admission control:
// with Config.SLO and Config.Enforce set, subsequent Prepares refuse
// queries whose predicted 99th-percentile latency exceeds the SLO in
// more than 10% of intervals.
func (db *DB) UseSLOModel(m *SLOModel) {
	p := *db.eng.Admission() // Open always installs a policy
	p.Model = m.model
	db.eng.SetAdmission(&p)
}

// acquire checks a session out of the pool (creating one if none is
// idle) for the duration of a single call; sessions are single-goroutine
// objects, so every concurrent call gets its own.
func (db *DB) acquire() *engine.Session {
	s, ok := db.pool.Get().(*engine.Session)
	if !ok {
		s = db.eng.Session(nil)
	}
	s.SetStrategy(Strategy(db.strat.Load()))
	return s
}

func (db *DB) release(s *engine.Session) { db.pool.Put(s) }

// SetStrategy selects the execution strategy for subsequent queries.
func (db *DB) SetStrategy(s Strategy) { db.strat.Store(int32(s)) }

// Exec runs a DDL or DML statement (CREATE TABLE/INDEX, INSERT, UPDATE,
// DELETE).
func (db *DB) Exec(sql string, params ...Value) error {
	s := db.acquire()
	defer db.release(s)
	return s.Exec(sql, params...)
}

// MustExec is Exec, panicking on error — for schema setup in examples
// and tests.
func (db *DB) MustExec(sql string, params ...Value) {
	if err := db.Exec(sql, params...); err != nil {
		panic(err)
	}
}

// Result is one query result (a single page for paginated queries).
type Result struct {
	// Rows holds the projected output rows.
	Rows []Row
	// Names holds the output column names.
	Names []string
}

// Query prepares and executes in one step.
func (db *DB) Query(sql string, params ...Value) (*Result, error) {
	q, err := db.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return q.Execute(params...)
}

// UnboundedQueryError reports a query rejected as not scale-independent,
// with the Performance Insight Assistant's feedback (Section 6.4).
type UnboundedQueryError struct {
	// Segment is the plan section that could not be bounded.
	Segment string
	// Reason explains why.
	Reason string
	// Suggestions are concrete fixes (cardinality limits, pagination).
	Suggestions []string
}

func (e *UnboundedQueryError) Error() string {
	msg := fmt.Sprintf("piql: query is not scale-independent: %s (%s)", e.Reason, e.Segment)
	for _, s := range e.Suggestions {
		msg += "\n  suggestion: " + s
	}
	return msg
}

// Bound is the static boundedness analysis attached to every prepared
// query: the symbolic worst-case operation bound per remote operator
// (see internal/analyze).
type Bound = analyze.Bound

// ErrUnbounded reports a query refused by admission control because no
// static operation bound exists (only possible through the cost-based
// baseline path; the PIQL compiler rejects such queries earlier with
// *UnboundedQueryError).
type ErrUnbounded = analyze.ErrUnbounded

// ErrOverSLO reports a bounded query refused by admission control: its
// static bound exceeds Config.MaxOps, or its predicted 99th-percentile
// latency exceeds Config.SLO.
type ErrOverSLO = analyze.ErrOverSLO

// Query is a compiled, reusable, statically bounded query.
type Query struct {
	db  *DB
	pre *engine.Prepared
}

// Prepare compiles a SELECT. Unbounded queries fail with
// *UnboundedQueryError; the compiler automatically creates and
// backfills any secondary indexes the plan needs.
func (db *DB) Prepare(sql string) (*Query, error) {
	s := db.acquire()
	pre, err := s.Prepare(sql)
	db.release(s)
	if err != nil {
		var nsi *core.NotScaleIndependentError
		if errors.As(err, &nsi) {
			return nil, &UnboundedQueryError{
				Segment:     nsi.Segment,
				Reason:      nsi.Reason,
				Suggestions: nsi.Suggestions,
			}
		}
		return nil, err
	}
	return &Query{db: db, pre: pre}, nil
}

// Execute runs the query with the given parameters. It is safe to call
// concurrently from multiple goroutines on the same Query.
func (q *Query) Execute(params ...Value) (*Result, error) {
	s := q.db.acquire()
	res, err := q.pre.Execute(s, params...)
	q.db.release(s)
	if err != nil {
		return nil, err
	}
	return &Result{Rows: res.Rows, Names: res.Names}, nil
}

// OpBound returns the static upper bound on key/value store operations
// one execution may perform — the scale-independence guarantee.
func (q *Query) OpBound() int { return q.pre.Plan().OpBound() }

// Bound returns the full static analysis: the per-operator operation
// bounds with their symbolic derivations.
func (q *Query) Bound() *Bound { return q.pre.Bound() }

// Explain renders the physical plan with per-operator bounds.
func (q *Query) Explain() string { return q.pre.Plan().Explain() }

// ExplainLogical renders the Phase I logical plan (data-stop normal
// form), as in the paper's Figure 3(c).
func (q *Query) ExplainLogical() string { return q.pre.Plan().ExplainLogical() }

// Cursor iterates a PAGINATE query one scale-independent page at a time.
type Cursor struct {
	db  *DB
	cur *engine.Cursor
}

// Paginate opens a cursor (the query must have a PAGINATE clause).
func (q *Query) Paginate(params ...Value) (*Cursor, error) {
	cur, err := q.pre.Paginate(params...)
	if err != nil {
		return nil, err
	}
	return &Cursor{db: q.db, cur: cur}, nil
}

// Next returns the next page, or nil when exhausted. A Cursor tracks
// its page position without synchronization: share it across goroutines
// only hand-off style (or via Serialize/RestoreCursor).
func (c *Cursor) Next() (*Result, error) {
	s := c.db.acquire()
	res, err := c.cur.Next(s)
	c.db.release(s)
	if err != nil || res == nil {
		return nil, err
	}
	return &Result{Rows: res.Rows, Names: res.Names}, nil
}

// Done reports whether the cursor is exhausted.
func (c *Cursor) Done() bool { return c.cur.Done() }

// Serialize captures the cursor state (query, parameters, scan
// positions) so it can be shipped to the user with the page and resumed
// on any application server.
func (c *Cursor) Serialize() []byte { return c.cur.Serialize() }

// RestoreCursor reconstructs a serialized cursor.
func (db *DB) RestoreCursor(data []byte) (*Cursor, error) {
	s := db.acquire()
	cur, err := db.eng.RestoreCursor(s, data)
	db.release(s)
	if err != nil {
		return nil, err
	}
	return &Cursor{db: db, cur: cur}, nil
}

// SLOModel predicts SLO compliance for compiled queries (Section 6). A
// model is trained once per cluster class by sampling operator latency
// distributions, independent of any application schema.
type SLOModel struct {
	model *predict.Model
}

// TrainSLOModel samples the remote operators on a simulated cluster and
// returns the prediction model. Training takes a few tens of seconds
// (the FastTrainConfig grid).
func TrainSLOModel() (*SLOModel, error) {
	m, err := predict.Train(predict.FastTrainConfig())
	if err != nil {
		return nil, err
	}
	return &SLOModel{model: m}, nil
}

// SLOPrediction summarizes the predicted distribution of per-interval
// 99th-percentile latencies for a query.
type SLOPrediction struct {
	// Max99 is the most conservative estimate: the worst per-interval
	// 99th-percentile latency seen across training intervals.
	Max99 time.Duration
	// Mean99 is the mean per-interval 99th percentile.
	Mean99 time.Duration
	pred   *predict.Prediction
}

// MeetsSLO reports whether the query's 99th-percentile latency is
// predicted to stay under slo in at least fraction q of intervals
// (e.g. MeetsSLO(500*time.Millisecond, 0.9)).
func (p *SLOPrediction) MeetsSLO(slo time.Duration, q float64) bool {
	return p.pred.MeetsSLO(slo, q)
}

// Predict evaluates a compiled query against the model.
func (m *SLOModel) Predict(q *Query) (*SLOPrediction, error) {
	pred, err := m.model.PredictPlan(q.pre.Plan())
	if err != nil {
		return nil, err
	}
	return &SLOPrediction{Max99: pred.Max99, Mean99: pred.Mean99, pred: pred}, nil
}
