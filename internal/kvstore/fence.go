package kvstore

import (
	"bytes"
	"fmt"
	"sort"
)

// Epoch fencing makes per-key conditional operations linearizable across
// routing changes. Every node holds a lease table: the key ranges it
// currently serves as the *authoritative primary* for conditional
// operations, each stamped with the minimum routing epoch a client may
// claim when asking the node to decide a test-and-set there. Rebalance
// installs the tables at the flip, while holding every move window, so:
//
//   - a node that lost a range rejects any later decision on it (no
//     covering lease), and a client still claiming the pre-flip table is
//     told its claim is stale — it retries under the fresh table;
//   - a node that gained a range only accepts claims at the flip epoch
//     or later, which route to it by construction;
//   - a range still covered by its primary's previous lease keeps that
//     lease's epoch, so steady-state conditional traffic is never
//     spuriously fenced by a rebalance that moved other ranges.
//
// Exactly one node can therefore ever accept a swap for a key, even
// while the key's ownership is mid-flight.
//
// Leases expire in real time when their holder fails: a primary's
// authority is implicitly renewed while it is reachable and lapses
// Config.LeaseDuration after it crashes or partitions away. Rebalance
// reassigns (reclaims) an unreachable node's ranges only after that
// expiry (placeOwners), and a rejoining node's leases are re-derived
// from the current routing table (regrantLeases), so conditional-op
// authority is never held by two nodes at once — during the pre-expiry
// window the range's conditional ops stall (bounded by the client's
// fence retry budget) rather than failing over unsafely.

// ErrFenced reports a conditional operation rejected by per-node epoch
// fencing: under the routing epoch the operation claimed, the target
// node is not (or is no longer) the authoritative primary for the key.
// It is a routing-staleness signal, not a conflict — Client.TestAndSet
// retries under a fresh routing table and never returns it to callers,
// so a false TestAndSet result always means the test itself failed.
type ErrFenced struct {
	Node    int   // node that rejected the decision
	Claimed int64 // routing epoch the operation claimed
	Need    int64 // minimum epoch the node's lease requires
	Owner   bool  // whether the node holds any lease covering the key
}

func (e *ErrFenced) Error() string {
	if !e.Owner {
		return fmt.Sprintf("kvstore: node %d fenced conditional op (epoch %d): not the authoritative primary", e.Node, e.Claimed)
	}
	return fmt.Sprintf("kvstore: node %d fenced conditional op: claimed epoch %d < lease epoch %d", e.Node, e.Claimed, e.Need)
}

// Unwrap chains to ErrTransient: a fence reject is a retry signal, not
// a semantic failure.
func (e *ErrFenced) Unwrap() error { return ErrTransient }

// lease is one key range a node serves as authoritative primary for
// conditional operations. A conditional op must claim a routing epoch
// >= epoch for its decision to be accepted.
type lease struct {
	lo, hi []byte // [lo, hi); nil = unbounded on that side
	epoch  int64
}

// leaseTable is a node's immutable set of primary ranges, sorted by lo
// and disjoint. Nodes swap whole tables through an atomic pointer, so
// the conditional path's fencing check is an atomic load plus a binary
// search — never a lock shared with Rebalance.
type leaseTable struct {
	leases []lease
}

var emptyLeases = &leaseTable{}

// find returns the lease covering key, or nil.
func (lt *leaseTable) find(key []byte) *lease {
	// First lease whose upper bound lies beyond key; disjointness makes
	// it the only candidate.
	i := sort.Search(len(lt.leases), func(i int) bool {
		hi := lt.leases[i].hi
		return hi == nil || bytes.Compare(key, hi) < 0
	})
	if i == len(lt.leases) {
		return nil
	}
	l := &lt.leases[i]
	if l.lo != nil && bytes.Compare(key, l.lo) < 0 {
		return nil
	}
	return l
}

// containsRange reports whether the lease covers all of [lo, hi).
func (l *lease) containsRange(lo, hi []byte) bool {
	if l.lo != nil && (lo == nil || bytes.Compare(lo, l.lo) < 0) {
		return false
	}
	if l.hi != nil && (hi == nil || bytes.Compare(hi, l.hi) > 0) {
		return false
	}
	return true
}

// installLeases computes every node's primary ranges under rt and
// replaces the nodes' lease tables. Called by Rebalance at the flip,
// while every move window is held, so no conditional decision can be in
// flight on a moving range: decisions made before the install have
// finished propagating to the new owners, decisions after it are fenced.
//
// A partition whose primary already held a lease covering its whole
// range keeps that lease's epoch: the same node serialized every
// conditional op on those keys under the old table too (the old table
// routed them to it, or it would not have been leased), so accepting an
// older claim stays linearizable — the node's own mutex is the
// serialization point. Rebalance resamples split points every run, so
// requiring byte-identical bounds would bump almost every epoch and
// spuriously fence in-flight conditional ops on ranges that never
// changed hands; containment is the condition that actually matters.
func (c *Cluster) installLeases(rt *routing) {
	perNode := make([][]lease, len(c.nodes))
	for p := 0; p < rt.parts(); p++ {
		lo, hi := rt.bounds(p)
		primary := rt.owners[p][0]
		epoch := rt.epoch
		if prev := c.nodes[primary].leases.Load().find(lo); prev != nil && prev.containsRange(lo, hi) {
			epoch = prev.epoch
		}
		perNode[primary] = append(perNode[primary], lease{lo: lo, hi: hi, epoch: epoch})
	}
	for id, nd := range c.nodes {
		if len(perNode[id]) == 0 {
			nd.leases.Store(emptyLeases)
			continue
		}
		// Partitions are visited in ascending key order, so each node's
		// leases arrive already sorted by lo.
		nd.leases.Store(&leaseTable{leases: perNode[id]})
	}
}
