package kvstore

import (
	"hash/fnv"
	"math"
	"math/rand"
	"time"
)

// LatencyConfig shapes the simulated per-operation latency of the cluster.
// Defaults (see DefaultLatency) are calibrated to resemble the EC2 numbers
// the paper reports: single-get round trips of a few milliseconds with a
// heavy right tail, plus interval-scale "cloud volatility".
type LatencyConfig struct {
	// ServiceMedian is the median node-side service time of a single get.
	ServiceMedian time.Duration
	// ServiceSigma is the σ of the lognormal service-time distribution.
	ServiceSigma float64
	// PerItem is the additional service time per tuple returned by a
	// range scan beyond the first.
	PerItem time.Duration
	// PerByte is the additional transfer time per payload byte.
	PerByte time.Duration
	// RTTMedian is the median client<->node network round-trip time.
	RTTMedian time.Duration
	// RTTSigma is the σ of the lognormal RTT distribution.
	RTTSigma float64
	// VolatilityInterval is the length of a "cloud weather" interval;
	// each node draws a fresh service-time multiplier every interval.
	VolatilityInterval time.Duration
	// VolatilitySigma is the σ of the per-interval multiplier lognormal.
	VolatilitySigma float64
	// NoisyNeighborProb is the chance a node spends an interval
	// co-located with a heavy tenant, inflating service times.
	NoisyNeighborProb float64
	// NoisyNeighborFactor scales service time during such intervals.
	NoisyNeighborFactor float64
}

// DefaultLatency returns the latency model used by all experiments.
func DefaultLatency() LatencyConfig {
	return LatencyConfig{
		ServiceMedian:       900 * time.Microsecond,
		ServiceSigma:        0.45,
		PerItem:             18 * time.Microsecond,
		PerByte:             2 * time.Nanosecond,
		RTTMedian:           450 * time.Microsecond,
		RTTSigma:            0.35,
		VolatilityInterval:  30 * time.Second,
		VolatilitySigma:     0.10,
		NoisyNeighborProb:   0.04,
		NoisyNeighborFactor: 2.2,
	}
}

// lognormal samples exp(N(ln(median), sigma)).
func lognormal(rng *rand.Rand, median time.Duration, sigma float64) time.Duration {
	f := math.Exp(math.Log(float64(median)) + sigma*rng.NormFloat64())
	return time.Duration(f)
}

// serviceTime samples the node-side processing time for a request
// touching the given number of items and payload bytes.
func (c LatencyConfig) serviceTime(rng *rand.Rand, items, bytes int) time.Duration {
	d := lognormal(rng, c.ServiceMedian, c.ServiceSigma)
	if items > 1 {
		d += time.Duration(items-1) * c.PerItem
	}
	d += time.Duration(bytes) * c.PerByte
	return d
}

// rtt samples a network round-trip time.
func (c LatencyConfig) rtt(rng *rand.Rand) time.Duration {
	return lognormal(rng, c.RTTMedian, c.RTTSigma)
}

// volatility returns the deterministic service-time multiplier for a node
// at virtual time t. The multiplier is piecewise-constant per interval so
// per-interval 99th-percentile latencies vary the way public-cloud tails
// do (Section 6.3 of the paper).
func (c LatencyConfig) volatility(seed int64, nodeID int, t time.Duration) float64 {
	if c.VolatilityInterval <= 0 {
		return 1
	}
	interval := int64(t / c.VolatilityInterval)
	h := fnv.New64a()
	var buf [24]byte
	put64 := func(off int, v uint64) {
		for i := 0; i < 8; i++ {
			buf[off+i] = byte(v >> (8 * i))
		}
	}
	put64(0, uint64(seed))
	put64(8, uint64(nodeID))
	put64(16, uint64(interval))
	h.Write(buf[:])
	rng := rand.New(rand.NewSource(int64(h.Sum64())))
	m := math.Exp(rng.NormFloat64() * c.VolatilitySigma)
	if rng.Float64() < c.NoisyNeighborProb {
		m *= c.NoisyNeighborFactor
	}
	return m
}
