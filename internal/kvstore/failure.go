package kvstore

import (
	"errors"
	"fmt"
	"time"
)

// Failure injection and recovery.
//
// The cluster models two real failure modes: a node crash (Kill /
// Restart) and a network partition (Partition / Heal). An unreachable
// node serves nothing — clients fail reads over to live replicas, and
// writes targeting it are queued as versioned catch-ups replayed when
// it rejoins (the HLC envelopes make replay order-free, so an
// acknowledged write is durable across the outage). Reclaiming an
// unreachable node's ranges is gated on lease expiry: a primary's
// conditional-op authority is implicitly renewed while it is
// reachable and lapses Config.LeaseDuration after it stops being so,
// which is when Rebalance may reassign its ranges (see placeOwners).

// ErrTransient is the sentinel every transient, retry-worthy kvstore
// error unwraps to. errors.Is(err, ErrTransient) is the one test a
// caller needs to separate "back off and try again" (node down, quorum
// short, fenced, retry budget exhausted) from a semantic failure.
var ErrTransient = errors.New("kvstore: transient cluster condition")

// ErrNodeDown reports an operation that could not reach a required
// node: it is killed or partitioned away, and no live replica could
// absorb the work (or failover is disabled).
type ErrNodeDown struct {
	Node        int  // the unreachable node
	Partitioned bool // partitioned rather than crashed
}

func (e *ErrNodeDown) Error() string {
	how := "crashed"
	if e.Partitioned {
		how = "partitioned"
	}
	return fmt.Sprintf("kvstore: node %d unreachable (%s)", e.Node, how)
}

func (e *ErrNodeDown) Unwrap() error { return ErrTransient }

// ErrFenceExhausted reports a bounded retry loop that ran out of
// budget: every attempt was fenced or found the authoritative primary
// unreachable. No decision was made — the caller may safely retry the
// whole operation later (a lease expiry plus Rebalance reclaim, or a
// node restart, unwedges it). Last preserves the final attempt's cause.
type ErrFenceExhausted struct {
	Op       string // "testandset" or "write"
	Attempts int
	Last     error // cause of the final attempt (*ErrFenced or *ErrNodeDown)
}

func (e *ErrFenceExhausted) Error() string {
	return fmt.Sprintf("kvstore: %s retry budget exhausted after %d attempts: %v", e.Op, e.Attempts, e.Last)
}

func (e *ErrFenceExhausted) Unwrap() error {
	if e.Last == nil {
		return ErrTransient
	}
	return e.Last
}

// Node down-state bits (node.down).
const (
	nodeKilled      int32 = 1 << iota // crashed; comes back via Restart
	nodePartitioned                   // unreachable; comes back via Heal
)

// catchUp is one write queued for an unreachable node: the full version
// envelope, so replay is a plain applyIfNewer and commutes with
// everything that happened during the outage.
type catchUp struct {
	key, env []byte
}

// Kill crashes node id: every operation routed to it fails over or
// queues until Restart. Its stored data survives (the storage model is
// durable), but any lease authority lapses Config.LeaseDuration later,
// allowing Rebalance to reclaim its ranges.
func (c *Cluster) Kill(id int) { c.markDown(id, nodeKilled) }

// Restart brings a killed node back: queued catch-ups are replayed
// (revalidating ownership — ranges reclaimed during the outage are
// dropped, and stale non-owned data is purged), then the node rejoins
// the serving set and its primary leases are re-granted from the
// current routing table.
func (c *Cluster) Restart(id int) { c.rejoin(id, nodeKilled) }

// Partition cuts the cluster: groups[0] is the side that keeps client
// connectivity; every node not in groups[0] becomes unreachable until
// Heal. (With one group, it names the connected majority.)
func (c *Cluster) Partition(groups ...[]int) {
	if len(groups) == 0 {
		return
	}
	connected := make(map[int]bool, len(groups[0]))
	for _, id := range groups[0] {
		connected[id] = true
	}
	for id := range c.nodes {
		if !connected[id] {
			c.markDown(id, nodePartitioned)
		}
	}
}

// Heal reconnects every partitioned node, replaying its queued
// catch-ups and re-granting its leases (see Restart).
func (c *Cluster) Heal() {
	for id, nd := range c.nodes {
		if nd.down.Load()&nodePartitioned != 0 {
			c.rejoin(id, nodePartitioned)
		}
	}
}

// NodeDown reports whether node id is currently killed or partitioned.
func (c *Cluster) NodeDown(id int) bool { return !c.reachable(id) }

// reachable reports whether node id can serve requests. Hot-path check:
// one atomic load, never a lock.
func (c *Cluster) reachable(id int) bool { return c.nodes[id].down.Load() == 0 }

// markDown makes node id unreachable. The wall-clock downSince starts
// the lease-expiry countdown on the first bit set.
func (c *Cluster) markDown(id int, bit int32) {
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	nd := c.nodes[id]
	if nd.down.Load() == 0 {
		nd.downSince = time.Now()
	}
	nd.down.Store(nd.down.Load() | bit)
}

// reclaimableLocked reports whether node id's ranges may be reassigned
// by Rebalance: it has been unreachable for at least the lease
// duration, so the conditional-op authority it held has lapsed (no
// in-flight decision can exist on it) and its ranges can safely move
// to live nodes. A node that is down but unexpired keeps its ranges —
// they stall rather than fail over, which is the lease-safety window.
// Caller holds faultMu.
func (c *Cluster) reclaimableLocked(id int) bool {
	nd := c.nodes[id]
	return nd.down.Load() != 0 && time.Since(nd.downSince) >= c.cfg.LeaseDuration
}

// downErr builds the typed error for the first unreachable node among
// ids (falling back to ids[0] if a racing rejoin cleared them all).
func (c *Cluster) downErr(ids []int) error {
	for _, id := range ids {
		if st := c.nodes[id].down.Load(); st != 0 {
			return &ErrNodeDown{Node: id, Partitioned: st&nodePartitioned != 0}
		}
	}
	return &ErrNodeDown{Node: ids[0]}
}

// applyOrQueue lands one envelope on node id, or queues it as a
// versioned catch-up when the node is unreachable. Every remote write
// path goes through it, so an acknowledged write is never lost to an
// outage: it either applied, or it replays at rejoin.
func (c *Cluster) applyOrQueue(id int, key, env []byte) {
	if c.reachable(id) {
		c.nodes[id].applyIfNewer(key, env)
		return
	}
	c.queueCatchUp(id, key, env)
}

// queueCatchUp queues (key, env) for replay when node id rejoins. It
// re-checks reachability under faultMu: rejoin drains the queue and
// clears the down marker under the same lock, so a racing write either
// lands in a queue rejoin will drain, or observes the node reachable
// and applies directly — never neither.
func (c *Cluster) queueCatchUp(id int, key, env []byte) {
	c.faultMu.Lock()
	if c.nodes[id].down.Load() == 0 {
		c.faultMu.Unlock()
		c.nodes[id].applyIfNewer(key, env)
		return
	}
	c.pending[id] = append(c.pending[id], catchUp{key: key, env: env})
	c.faultMu.Unlock()
	c.cuQueued.Add(1)
}

// rejoin clears one down bit on node id and, when that makes the node
// reachable again, replays its queued catch-ups, purges data it no
// longer owns, and re-grants its primary leases from the current
// routing table. It runs under rebalanceMu so the lease re-grant and
// self-cleanup cannot interleave with a concurrent Rebalance.
//
// The drain loop holds faultMu for the take-and-clear: a concurrent
// writer either queued before a take (and is replayed) or sees the
// node reachable after the final clear (and applies directly), so no
// acknowledged write can slip between replay and rejoin.
//
//lint:allow routingclaim
func (c *Cluster) rejoin(id int, clearBit int32) {
	c.rebalanceMu.Lock()
	defer c.rebalanceMu.Unlock()
	nd := c.nodes[id]
	c.faultMu.Lock()
	rest := nd.down.Load() &^ clearBit
	if rest != 0 {
		// Still unreachable for another reason (e.g. killed and
		// partitioned): drop this bit only; the final clear replays.
		nd.down.Store(rest)
		c.faultMu.Unlock()
		return
	}
	c.faultMu.Unlock()
	for {
		c.faultMu.Lock()
		queued := c.pending[id]
		if len(queued) == 0 || !c.autoReplay() {
			nd.down.Store(0)
			nd.downSince = time.Time{}
			c.faultMu.Unlock()
			break
		}
		c.pending[id] = nil
		c.faultMu.Unlock()
		c.replayOn(id, queued)
	}
	// Self-clean: purge anything the node holds but no longer owns —
	// the rebalance cleanups that ran while it was unreachable could
	// not reach it, and stale non-owned envelopes must never survive to
	// a future rebalance that re-places the range here.
	rt := c.routing.Load()
	for _, kv := range nd.scanRaw(nil, nil, 0) {
		if !rt.isOwner(rt.partitionOf(kv.Key), id) {
			nd.purge(kv.Key)
		}
	}
	c.regrantLeases(id, rt)
}

// replayOn applies queued catch-ups to node id, revalidating ownership
// under a claimed routing table at replay time: the cluster may have
// reclaimed the node's ranges while it was down, and replaying a write
// for a range it no longer owns would resurrect data cleanup can no
// longer purge. Versioned envelopes make replay order-free.
func (c *Cluster) replayOn(id int, queued []catchUp) {
	rt := c.beginOp()
	for _, cu := range queued {
		if rt.isOwner(rt.partitionOf(cu.key), id) {
			c.nodes[id].applyIfNewer(cu.key, cu.env)
			c.cuReplayed.Add(1)
		} else {
			c.cuDropped.Add(1)
		}
	}
	c.endOp(rt)
}

// regrantLeases restores node id's primary leases from the current
// routing table after a rejoin. Safe: while the node was unreachable no
// conditional op could reach it, and a range reclaimed during the
// outage is simply no longer in rt.owners, so the node gets no lease
// there and fences any straggler. Caller holds rebalanceMu (the lease
// writer's lock).
func (c *Cluster) regrantLeases(id int, rt *routing) {
	var leases []lease
	for p := 0; p < rt.parts(); p++ {
		if rt.owners[p][0] != id {
			continue
		}
		lo, hi := rt.bounds(p)
		leases = append(leases, lease{lo: lo, hi: hi, epoch: rt.epoch})
	}
	if len(leases) == 0 {
		c.nodes[id].leases.Store(emptyLeases)
		return
	}
	c.nodes[id].leases.Store(&leaseTable{leases: leases})
}

// ReplayCatchUps synchronously replays every queued catch-up whose
// target node is reachable again. Only needed when automatic replay on
// rejoin is disabled (SetCatchUpReplay(false)) — staleness and
// falsification tests use that to hold recovered replicas stale on
// purpose.
func (c *Cluster) ReplayCatchUps() {
	for id := range c.nodes {
		for {
			c.faultMu.Lock()
			if c.nodes[id].down.Load() != 0 || len(c.pending[id]) == 0 {
				c.faultMu.Unlock()
				break
			}
			queued := c.pending[id]
			c.pending[id] = nil
			c.faultMu.Unlock()
			c.replayOn(id, queued)
		}
	}
}

// SetFailover toggles read failover (default on). Disabling it makes a
// read whose uniformly-chosen replica is unreachable fail instead of
// rerouting — the chaos falsification knob that demonstrates the fault
// tests actually depend on failover.
func (c *Cluster) SetFailover(on bool) { c.noFailover.Store(!on) }

// SetCatchUpReplay toggles automatic catch-up replay on rejoin
// (default on). With it off, a restarted/healed node serves its stale
// state until an explicit ReplayCatchUps — the staleness-bound and
// falsification tests' knob.
func (c *Cluster) SetCatchUpReplay(on bool) { c.noAutoReplay.Store(!on) }

func (c *Cluster) failover() bool   { return !c.noFailover.Load() }
func (c *Cluster) autoReplay() bool { return !c.noAutoReplay.Load() }

// CatchUpsQueued returns how many writes have been queued for
// unreachable nodes since the cluster was created.
func (c *Cluster) CatchUpsQueued() int64 { return c.cuQueued.Load() }

// CatchUpsReplayed returns how many queued catch-ups have been
// replayed onto rejoined nodes.
func (c *Cluster) CatchUpsReplayed() int64 { return c.cuReplayed.Load() }

// CatchUpsDropped returns how many catch-ups were dropped at replay or
// fire time because the target no longer owned the range.
func (c *Cluster) CatchUpsDropped() int64 { return c.cuDropped.Load() }
