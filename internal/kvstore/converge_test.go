package kvstore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"piql/internal/sim"
)

// TestHLCMonotonic: timestamps are strictly increasing, including under
// concurrent draws, and loosely track the wall clock.
func TestHLCMonotonic(t *testing.T) {
	var h HLC
	last := h.Next()
	for i := 0; i < 10_000; i++ {
		next := h.Next()
		if next <= last {
			t.Fatalf("HLC went backwards: %d after %d", next, last)
		}
		last = next
	}
	if wall := wallHLC(time.Now()); last < wall-int64(time.Minute/time.Millisecond)<<hlcLogicalBits {
		t.Fatalf("HLC fell far behind the wall clock: %d vs %d", last, wall)
	}

	const workers, draws = 8, 5_000
	seen := make([]map[int64]struct{}, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := make(map[int64]struct{}, draws)
			for i := 0; i < draws; i++ {
				mine[h.Next()] = struct{}{}
			}
			seen[w] = mine
		}(w)
	}
	wg.Wait()
	all := make(map[int64]struct{}, workers*draws)
	for _, mine := range seen {
		for ts := range mine {
			if _, dup := all[ts]; dup {
				t.Fatalf("duplicate concurrent timestamp %d", ts)
			}
			all[ts] = struct{}{}
		}
	}
}

// TestEnvelopeRoundtrip pins the version envelope codec.
func TestEnvelopeRoundtrip(t *testing.T) {
	ver := Version{TS: 0x1234_5678_9ABC, Client: 42}
	env := makeEnvelope(ver, false, []byte("payload"))
	if got := envVersion(env); got != ver {
		t.Fatalf("version roundtrip: %+v", got)
	}
	if envIsTombstone(env) {
		t.Fatal("live envelope read as tombstone")
	}
	if !bytes.Equal(envValue(env), []byte("payload")) {
		t.Fatalf("value roundtrip: %q", envValue(env))
	}
	tomb := makeEnvelope(ver, true, nil)
	if !envIsTombstone(tomb) || len(envValue(tomb)) != 0 {
		t.Fatal("tombstone envelope malformed")
	}
	newer := Version{TS: ver.TS, Client: 43}
	if !newer.After(ver) || ver.After(newer) || ver.After(ver) {
		t.Fatal("version ordering broken on client tiebreak")
	}
}

// TestApplyIfNewerConverges: applying the same envelopes in any order
// leaves a node in the same state — the per-key convergence kernel.
func TestApplyIfNewerConverges(t *testing.T) {
	k := []byte("k")
	envs := [][]byte{
		makeEnvelope(Version{TS: 10, Client: 1}, false, []byte("a")),
		makeEnvelope(Version{TS: 20, Client: 2}, true, nil),
		makeEnvelope(Version{TS: 15, Client: 3}, false, []byte("b")),
	}
	orders := [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}, {2, 0, 1}}
	for _, order := range orders {
		nd := newNode(9, 1, nil, 1, time.Hour)
		for _, i := range order {
			nd.applyIfNewer(k, envs[i])
		}
		if _, ok := nd.get(k); ok {
			t.Fatalf("order %v: tombstone TS=20 did not win", order)
		}
		if _, ver, _ := nd.getVersioned(k); ver != (Version{TS: 20, Client: 2}) {
			t.Fatalf("order %v: final version %+v", order, ver)
		}
	}
}

// TestAsyncReplicationRacingWritersConverge is the regression for the
// store's documented divergence: under AsyncReplication, replica
// catch-ups apply lagged writes, so a second client's write that
// reaches the replicas *before* an earlier write's catch-up fires is
// applied to the primary and the replicas in opposite orders. The
// unversioned store kept the last arrival per replica — permanent
// divergence, flip-flopping reads. Versioned writes converge on the
// newest stamp regardless of arrival order.
func TestAsyncReplicationRacingWritersConverge(t *testing.T) {
	env := sim.NewEnv()
	lag := 500 * time.Millisecond
	c := New(Config{
		Nodes: 2, ReplicationFactor: 2, Seed: 7,
		AsyncReplication: true, ReplicaLag: lag,
	}, env)
	kPut, kDel := []byte("race-putput"), []byte("race-putdel")

	env.Spawn(func(p *sim.Proc) {
		slow := c.NewClient(p)
		// Client A: lagged writes — the replica sees them at +lag.
		slow.Put(kPut, []byte("older-put"))
		slow.Put(kDel, []byte("doomed"))
		// Client B: an immediate-mode client (no simulated latency, e.g.
		// a maintenance task) writes the same keys *now*: its writes hit
		// every replica before A's catch-up fires, so the replicas apply
		// B-then-A — the opposite of the primary's A-then-B.
		fast := c.NewClient(nil)
		fast.Put(kPut, []byte("newer-put"))
		fast.Delete(kDel)
		p.Sleep(4 * lag) // drain the catch-ups
	})
	env.Run(0)
	env.Stop()

	for id := 0; id < 2; id++ {
		if v, ok := c.nodes[id].get(kPut); !ok || !bytes.Equal(v, []byte("newer-put")) {
			t.Fatalf("node %d holds %q (present=%v) for %q, want newer-put on every replica", id, v, ok, kPut)
		}
		if v, ok := c.nodes[id].get(kDel); ok {
			t.Fatalf("node %d resurrected deleted key %q as %q", id, kDel, v)
		}
	}
	if err := c.AuditConvergence(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncCatchUpRespectsOwnership: a replica catch-up firing after a
// rebalance moved its key's range must not resurrect the key on the
// former owner (cleanup purged it; the copy already carried the write
// from the old primary to the new owners). The catch-up revalidates
// ownership under a claimed routing table at fire time. Without the
// check, a later rebalance could even promote the resurrected value
// back to owned state after the delete's tombstone was GC'd —
// permanent divergence through a side door.
func TestAsyncCatchUpRespectsOwnership(t *testing.T) {
	env := sim.NewEnv()
	lag := 500 * time.Millisecond
	c := New(Config{
		Nodes: 3, ReplicationFactor: 2, Seed: 17,
		AsyncReplication: true, ReplicaLag: lag,
	}, env)
	const n = 200
	env.Spawn(func(p *sim.Proc) {
		cl := c.NewClient(p)
		for i := 0; i < n; i++ {
			cl.Put(key(i), val(i)) // catch-ups to node 1 pending at +lag
		}
		// Rebalance inside the lag window: epoch 0 owned everything on
		// nodes {0,1}; the new layout hands some ranges to {1,2}/{2,0},
		// so node 1 loses part of the keyspace while its catch-ups are
		// still queued.
		c.Rebalance()
		p.Sleep(4 * lag) // let every catch-up fire
	})
	env.Run(0)
	env.Stop()

	rt := c.routing.Load()
	moved := false
	for id, nd := range c.nodes {
		for _, kv := range nd.scanRaw(nil, nil, 0) {
			if envIsTombstone(kv.Value) {
				continue
			}
			if !rt.isOwner(rt.partitionOf(kv.Key), id) {
				t.Fatalf("node %d holds %q but no longer owns its range — a lagged catch-up resurrected it", id, kv.Key)
			}
		}
	}
	for i := 0; i < n; i++ {
		if p := rt.partitionOf(key(i)); !rt.isOwner(p, 1) {
			moved = true
		}
		if v, ok := c.NewClient(nil).Get(key(i)); !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("key %d lost: %q (present=%v)", i, v, ok)
		}
	}
	if !moved {
		t.Fatal("rebalance moved nothing off node 1 — the test exercised no catch-up/ownership race")
	}
	if err := c.AuditConvergence(); err != nil {
		t.Fatal(err)
	}
}

// TestAsyncCatchUpKillRestartInterleaving extends the ownership race
// with a crash: node 1's catch-ups are pending when a rebalance moves
// part of its keyspace away AND the node is killed before they fire.
// At fire time each catch-up must revalidate ownership (lost ranges
// drop) and liveness (kept ranges queue for the dead node rather than
// applying to it); at restart the queued ones replay under the same
// ownership check. No key may be lost, nothing may be resurrected on a
// non-owner, and the replicas must converge.
func TestAsyncCatchUpKillRestartInterleaving(t *testing.T) {
	env := sim.NewEnv()
	lag := 500 * time.Millisecond
	c := New(Config{
		Nodes: 3, ReplicationFactor: 2, Seed: 17,
		AsyncReplication: true, ReplicaLag: lag,
	}, env)
	const n = 200
	env.Spawn(func(p *sim.Proc) {
		cl := c.NewClient(p)
		for i := 0; i < n; i++ {
			cl.Put(key(i), val(i)) // catch-ups to node 1 pending at +lag
		}
		c.Rebalance()    // node 1 loses part of the keyspace...
		c.Kill(1)        // ...and crashes before the catch-ups fire
		p.Sleep(2 * lag) // fire mid-outage: drop (lost ranges) or queue (kept)
		c.Restart(1)     // replay revalidates ownership again
		p.Sleep(2 * lag)
	})
	env.Run(0)
	env.Stop()

	if c.CatchUpsQueued() == 0 {
		t.Fatal("no catch-up queued while node 1 was down — the kill missed the lag window")
	}
	if c.CatchUpsReplayed() == 0 {
		t.Fatal("no queued catch-up replayed at restart")
	}
	rt := c.routing.Load()
	for id, nd := range c.nodes {
		for _, kv := range nd.scanRaw(nil, nil, 0) {
			if envIsTombstone(kv.Value) {
				continue
			}
			if !rt.isOwner(rt.partitionOf(kv.Key), id) {
				t.Fatalf("node %d holds %q but no longer owns its range — a catch-up resurrected it across the crash", id, kv.Key)
			}
		}
	}
	cl := c.NewClient(nil)
	for i := 0; i < n; i++ {
		if v, ok := cl.Get(key(i)); !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("key %d lost across the crash: %q (present=%v)", i, v, ok)
		}
	}
	if err := c.AuditConvergence(); err != nil {
		t.Fatal(err)
	}
}

// TestReadRepairConvergesStaleReplica: a read that fans out to all
// replicas returns the newest value and repairs the stale replica
// immediately, without waiting for the replication lag to drain.
func TestReadRepairConvergesStaleReplica(t *testing.T) {
	env := sim.NewEnv()
	lag := 500 * time.Millisecond
	c := New(Config{
		Nodes: 2, ReplicationFactor: 2, Seed: 13,
		AsyncReplication: true, ReplicaLag: lag,
	}, env)
	k := []byte("repair-key")

	env.Spawn(func(p *sim.Proc) {
		cl := c.NewClient(p)
		cl.Put(k, []byte("v1"))
		p.Sleep(2 * lag) // v1 fully replicated
		cl.Put(k, []byte("v2"))
		// Mid-lag: the replica still holds v1.
		if v, _ := c.nodes[1].get(k); !bytes.Equal(v, []byte("v1")) {
			panic(fmt.Sprintf("replica should still hold v1, has %q", v))
		}
		if v, ok := cl.ReadRepair(k); !ok || !bytes.Equal(v, []byte("v2")) {
			panic(fmt.Sprintf("ReadRepair returned %q (ok=%v), want v2", v, ok))
		}
		// The repair converged the replica before the catch-up fires.
		if v, _ := c.nodes[1].get(k); !bytes.Equal(v, []byte("v2")) {
			panic(fmt.Sprintf("replica not repaired: holds %q", v))
		}
		p.Sleep(2 * lag) // the late catch-up of v2's write must be a no-op
	})
	env.Run(0)
	env.Stop()
	if err := c.AuditConvergence(); err != nil {
		t.Fatal(err)
	}
}

// TestReplicasConvergeUnderRacingWrites is the acceptance gate for the
// versioned store: N clients race unordered Put/Delete on shared keys
// while the cluster repeatedly rebalances in small chunks, and at the
// end every replica of every key must hold the identical versioned
// value. The unversioned store diverged here trivially — two clients'
// per-replica write orders could interleave oppositely (last writer
// wins per replica, no cross-replica order), and the ROADMAP documented
// the flip-flopping reads as a known anomaly. Run under -race.
func TestReplicasConvergeUnderRacingWrites(t *testing.T) {
	c := New(Config{Nodes: 6, ReplicationFactor: 3, Seed: 31, MoveChunkKeys: 8}, nil)
	const (
		writers = 8
		keys    = 40
		ops     = 400
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := c.NewClient(nil)
			for i := 0; i < ops; i++ {
				k := key(i % keys)
				switch (g + i) % 4 {
				case 0:
					cl.Delete(k)
				default:
					cl.Put(k, []byte(fmt.Sprintf("w%02d-%05d", g, i)))
				}
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 6; i++ {
			c.Rebalance()
		}
	}()
	wg.Wait()
	<-done
	c.Rebalance() // settle the final layout with no writers racing it

	if err := c.AuditConvergence(); err != nil {
		t.Fatal(err)
	}
	// Tombstone GC must not disturb convergence: sweep everything (the
	// cluster is quiesced) and re-audit.
	if swept := c.GCTombstones(0); swept == 0 {
		t.Fatal("racing deletes left no tombstones to GC — the sweep path was not exercised")
	}
	if err := c.AuditConvergence(); err != nil {
		t.Fatalf("post-GC: %v", err)
	}
}

// TestGetRangeScatterImmediateMode: in immediate mode the scatter path
// fans out on real goroutines instead of falling back to the
// sequential walk; results and operation accounting must match the
// sequential reference exactly.
func TestGetRangeScatterImmediateMode(t *testing.T) {
	c, cl := newImmediate(5, 2)
	for i := 0; i < 500; i++ {
		cl.Put(key(i), val(i))
	}
	c.Rebalance()
	if parts := len(c.Splits()) + 1; parts < 3 {
		t.Fatalf("rebalance produced only %d partitions", parts)
	}
	reqs := []RangeRequest{
		{Start: key(0), End: key(500)},
		{Start: key(123), End: key(456), Limit: 50},
		{Start: key(123), End: key(456), Limit: 50, Reverse: true},
		{Start: nil, End: nil, Limit: 33},
		{Start: key(77), End: key(78), Limit: 5},
		{Start: nil, End: nil, Reverse: true, Limit: 499},
	}
	scatter := c.NewClient(nil)
	seq := c.NewClient(nil)
	for i, req := range reqs {
		before := scatter.Ops()
		got := scatter.GetRangeScatter(req)
		opsUsed := scatter.Ops() - before
		want := seq.GetRange(req)
		if len(got) != len(want) {
			t.Fatalf("req %d: scatter %d kvs, sequential %d", i, len(got), len(want))
		}
		for j := range want {
			if !bytes.Equal(got[j].Key, want[j].Key) || !bytes.Equal(got[j].Value, want[j].Value) {
				t.Fatalf("req %d: kv %d differs: %q vs %q", i, j, got[j].Key, want[j].Key)
			}
		}
		if opsUsed <= 0 {
			t.Fatalf("req %d: scatter accounted %d ops", i, opsUsed)
		}
	}
}

// TestGetRangeScatterImmediateConcurrentClients: the goroutine fan-out
// under -race, many clients at once.
func TestGetRangeScatterImmediateConcurrentClients(t *testing.T) {
	c, loader := newImmediate(6, 2)
	for i := 0; i < 600; i++ {
		loader.Put(key(i), val(i))
	}
	c.Rebalance()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := c.NewClient(nil)
			for i := 0; i < 50; i++ {
				kvs := cl.GetRangeScatter(RangeRequest{Start: key(g * 10), End: key(g*10 + 300), Limit: 40})
				if len(kvs) != 40 {
					panic(fmt.Sprintf("client %d: got %d kvs, want 40", g, len(kvs)))
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestReplicaNodesIntoMatches: the allocation-free routing variant must
// agree with the allocating one and actually not allocate.
func TestReplicaNodesIntoMatches(t *testing.T) {
	c, _ := newImmediate(5, 3)
	buf := make([]int, 0, 3)
	for p := 0; p < 5; p++ {
		want := c.replicaNodes(p)
		got := c.replicaNodesInto(buf[:0], p)
		if len(got) != len(want) {
			t.Fatalf("p=%d: len %d vs %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d: %v vs %v", p, got, want)
			}
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = c.replicaNodesInto(buf[:0], 3)
	})
	if allocs != 0 {
		t.Fatalf("replicaNodesInto allocates %.1f per run", allocs)
	}
}

// TestTombstoneGCBounded: a node that accumulates tombstones past the
// sweep threshold collects the expired ones inline, without any
// explicit GC call. (Tombstones younger than the grace age are never
// swept, so the test lets the wall clock tick past them first.)
func TestTombstoneGCBounded(t *testing.T) {
	c := New(Config{Nodes: 1, ReplicationFactor: 1, Seed: 3, TombstoneGCAge: time.Nanosecond}, nil)
	cl := c.NewClient(nil)
	n := tombstoneSweepThreshold + 1
	for i := 0; i < n; i++ {
		cl.Put(key(i), val(i))
		cl.Delete(key(i))
	}
	// All n tombstones may share the current wall millisecond and so be
	// too young for the first threshold crossings to collect; age them
	// past the grace period, then trip the threshold once more.
	time.Sleep(5 * time.Millisecond)
	cl.Put(key(n), val(n))
	cl.Delete(key(n))
	c.nodes[0].mu.Lock()
	tombs := c.nodes[0].tombs
	c.nodes[0].mu.Unlock()
	if tombs > n/2 {
		t.Fatalf("inline sweep never fired: %d tombstones (threshold %d)", tombs, tombstoneSweepThreshold)
	}
	if live := c.TotalItems(); live != 0 {
		t.Fatalf("store reports %d live items after deleting everything", live)
	}
}
