package kvstore

import (
	"bytes"
	"testing"
)

// TestParseEnvelopeRoundTrip pins the codec on well-formed input: what
// makeEnvelope writes, parseEnvelope reads back exactly, agreeing with
// the unchecked accessors.
func TestParseEnvelopeRoundTrip(t *testing.T) {
	cases := []struct {
		ver  Version
		tomb bool
		val  []byte
	}{
		{Version{}, false, nil},
		{Version{TS: 1, Client: 2}, false, []byte("value")},
		{Version{TS: -1, Client: -9}, true, nil},
		{Version{TS: 1 << 60, Client: 7}, true, []byte("tombstones keep payloads empty by convention, not format")},
	}
	for _, tc := range cases {
		env := makeEnvelope(tc.ver, tc.tomb, tc.val)
		ver, tomb, val, err := parseEnvelope(env)
		if err != nil {
			t.Fatalf("parseEnvelope(%x): %v", env, err)
		}
		if ver != tc.ver || tomb != tc.tomb || !bytes.Equal(val, tc.val) {
			t.Fatalf("round trip (%v, %v, %q) -> (%v, %v, %q)", tc.ver, tc.tomb, tc.val, ver, tomb, val)
		}
	}
}

// TestParseEnvelopeRejects pins the two malformed classes.
func TestParseEnvelopeRejects(t *testing.T) {
	if _, _, _, err := parseEnvelope(make([]byte, envHeader-1)); err != errEnvelopeShort {
		t.Errorf("short envelope: err = %v", err)
	}
	bad := makeEnvelope(Version{TS: 1}, false, nil)
	bad[16] = 0x80
	if _, _, _, err := parseEnvelope(bad); err != errEnvelopeFlags {
		t.Errorf("unknown flags: err = %v", err)
	}
}

// TestApplyIfNewerRejectsMalformed is the regression for the crash the
// guard in applyIfNewer prevents: a truncated envelope used to panic
// in envVersion (index out of range) while the node mutex was held.
func TestApplyIfNewerRejectsMalformed(t *testing.T) {
	c := New(Config{Nodes: 1, ReplicationFactor: 1, Seed: 1}, nil)
	n := c.nodes[0]
	if n.applyIfNewer([]byte("k"), []byte("short")) {
		t.Error("malformed envelope applied")
	}
	if got, ok := n.tree.Get([]byte("k")); ok {
		t.Errorf("malformed envelope stored: %x", got)
	}
	env := makeEnvelope(Version{TS: 5, Client: 1}, false, []byte("v"))
	if !n.applyIfNewer([]byte("k"), env) {
		t.Error("well-formed envelope rejected")
	}
}

// FuzzEnvelope drives the codec with arbitrary bytes: parseEnvelope
// must never panic, must reject exactly the malformed inputs, and every
// accepted envelope must round-trip byte-for-byte through makeEnvelope
// and agree with the unchecked accessors. The checked-in seed corpus
// (testdata/fuzz/FuzzEnvelope) runs under plain `go test`, so make ci
// exercises these cases without -fuzz.
func FuzzEnvelope(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("0123456789abcdef")) // one byte short of a header
	f.Add(makeEnvelope(Version{TS: 1, Client: 2}, false, []byte("v")))
	f.Add(makeEnvelope(Version{TS: -1, Client: 9}, true, nil))
	f.Fuzz(func(t *testing.T, env []byte) {
		ver, tomb, val, err := parseEnvelope(env)
		if err != nil {
			if len(env) >= envHeader && env[16]&^envTombstone == 0 {
				t.Fatalf("rejected well-formed envelope %x: %v", env, err)
			}
			return
		}
		if got := makeEnvelope(ver, tomb, val); !bytes.Equal(got, env) {
			t.Fatalf("round trip: %x -> %x", env, got)
		}
		if ver != envVersion(env) || tomb != envIsTombstone(env) || !bytes.Equal(val, envValue(env)) {
			t.Fatal("parseEnvelope disagrees with the unchecked accessors")
		}
	})
}
