// Package kvstore simulates the distributed key/value store PIQL runs on
// (SCADS in the paper): a range-partitioned, replicated, ordered store
// with get/put/test-and-set, range and count-range reads, and predictable
// per-operation latency independent of total database size.
//
// The cluster can run in two modes:
//
//   - immediate mode (no sim.Env): operations execute instantly — used by
//     unit tests, examples, and bulk loading;
//   - simulated mode (with a sim.Env): every operation pays a sampled
//     network round trip and queues for the target node's service
//     capacity in virtual time — used by the experiment harness.
package kvstore

import (
	"bytes"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"piql/internal/btree"
	"piql/internal/sim"
)

// Config describes a simulated cluster.
type Config struct {
	// Nodes is the number of storage servers.
	Nodes int
	// ReplicationFactor is how many nodes hold each item (paper: 2).
	ReplicationFactor int
	// NodeServers is each node's concurrent request capacity.
	NodeServers int
	// Seed drives all randomness (latency sampling, replica choice).
	Seed int64
	// Latency shapes the simulated latency; zero value = DefaultLatency.
	Latency LatencyConfig
	// AsyncReplication delays replica writes by ReplicaLag (eventual
	// consistency). Only observable in simulated mode.
	AsyncReplication bool
	// ReplicaLag is the replication delay under AsyncReplication.
	ReplicaLag time.Duration
}

// Cluster is a simulated SCADS-style key/value store. It is safe for
// concurrent use by any number of Clients: node record stores are
// mutex-guarded and the op counters are atomic. The exceptions are
// Rebalance and SetNodeSlowdown, which repartition/reconfigure and must
// not run concurrently with traffic (they model the SCADS Director,
// which quiesces moves).
type Cluster struct {
	cfg    Config
	env    *sim.Env // nil in immediate mode
	nodes  []*node
	splits [][]byte // len nodes-1; partition i owns [splits[i-1], splits[i])

	ops       atomic.Int64 // total storage operations served
	clientSeq atomic.Int64
}

// New creates a cluster. env may be nil for immediate (zero-latency) mode.
func New(cfg Config, env *sim.Env) *Cluster {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 1
	}
	if cfg.ReplicationFactor > cfg.Nodes {
		cfg.ReplicationFactor = cfg.Nodes
	}
	if cfg.NodeServers <= 0 {
		cfg.NodeServers = 12
	}
	if cfg.Latency == (LatencyConfig{}) {
		cfg.Latency = DefaultLatency()
	}
	c := &Cluster{cfg: cfg, env: env}
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, newNode(i, cfg.Seed, env, cfg.NodeServers))
	}
	return c
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// NumNodes returns the number of storage nodes.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// TotalOps returns the cumulative count of storage operations served,
// summed over all clients. The harness uses it for throughput accounting.
func (c *Cluster) TotalOps() int64 { return c.ops.Load() }

// TotalItems returns the number of stored items summed over nodes
// (replicas counted separately).
func (c *Cluster) TotalItems() int {
	total := 0
	for _, n := range c.nodes {
		total += n.size()
	}
	return total
}

// SetNodeSlowdown injects a service-time multiplier on one node
// (failure/degradation injection for tests).
func (c *Cluster) SetNodeSlowdown(nodeID int, factor float64) {
	n := c.nodes[nodeID]
	n.mu.Lock()
	n.slowdown = factor
	n.mu.Unlock()
}

// partitionOf returns the index of the partition owning key.
func (c *Cluster) partitionOf(key []byte) int {
	// splits[i] is the lower bound of partition i+1.
	return sort.Search(len(c.splits), func(i int) bool {
		return bytes.Compare(key, c.splits[i]) < 0
	})
}

// replicaNodes returns the node IDs holding partition p, primary first.
func (c *Cluster) replicaNodes(p int) []int {
	ids := make([]int, c.cfg.ReplicationFactor)
	for r := 0; r < c.cfg.ReplicationFactor; r++ {
		ids[r] = (p + r) % len(c.nodes)
	}
	return ids
}

// Rebalance recomputes partition split points so that data is spread
// evenly over nodes, then redistributes all stored items. It models the
// SCADS Director's repartitioning and is called by the harness after bulk
// loading. It must not run concurrently with other operations.
func (c *Cluster) Rebalance() {
	// Sample keys from all nodes (deduplicating replicas via merge).
	var keys [][]byte
	seen := make(map[string]struct{})
	for _, n := range c.nodes {
		for _, kv := range n.scan(nil, nil, 0, false) {
			k := string(kv.Key)
			if _, dup := seen[k]; !dup {
				seen[k] = struct{}{}
				keys = append(keys, kv.Key)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })

	n := len(c.nodes)
	splits := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		idx := i * len(keys) / n
		if idx >= len(keys) {
			idx = len(keys) - 1
		}
		if len(keys) > 0 {
			splits = append(splits, keys[idx])
		}
	}
	// Collect all items before clearing, then reinsert under new routing.
	type kvPair struct{ k, v []byte }
	items := make([]kvPair, 0, len(keys))
	seenItems := make(map[string]struct{})
	for _, nd := range c.nodes {
		for _, kv := range nd.scan(nil, nil, 0, false) {
			if _, dup := seenItems[string(kv.Key)]; dup {
				continue
			}
			seenItems[string(kv.Key)] = struct{}{}
			items = append(items, kvPair{kv.Key, kv.Value})
		}
	}
	for _, nd := range c.nodes {
		nd.mu.Lock()
		nd.tree = btree.New()
		nd.mu.Unlock()
	}
	c.splits = splits
	for _, it := range items {
		p := c.partitionOf(it.k)
		for _, id := range c.replicaNodes(p) {
			c.nodes[id].put(it.k, it.v)
		}
	}
}

// Splits returns a copy of the current partition split points.
func (c *Cluster) Splits() [][]byte {
	out := make([][]byte, len(c.splits))
	copy(out, c.splits)
	return out
}

func (c *Cluster) String() string {
	return fmt.Sprintf("kvstore.Cluster{nodes: %d, rf: %d, items: %d}",
		len(c.nodes), c.cfg.ReplicationFactor, c.TotalItems())
}
