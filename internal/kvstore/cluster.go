// Package kvstore simulates the distributed key/value store PIQL runs on
// (SCADS in the paper): a range-partitioned, replicated, ordered store
// with get/put/test-and-set, range and count-range reads, and predictable
// per-operation latency independent of total database size.
//
// The cluster can run in two modes:
//
//   - immediate mode (no sim.Env): operations execute instantly — used by
//     unit tests, examples, and bulk loading;
//   - simulated mode (with a sim.Env): every operation pays a sampled
//     network round trip and queues for the target node's service
//     capacity in virtual time — used by the experiment harness.
package kvstore

import (
	"bytes"
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"piql/internal/sim"
)

// Config describes a simulated cluster.
type Config struct {
	// Nodes is the number of storage servers.
	Nodes int
	// ReplicationFactor is how many nodes hold each item (paper: 2).
	ReplicationFactor int
	// NodeServers is each node's concurrent request capacity.
	NodeServers int
	// Seed drives all randomness (latency sampling, replica choice).
	Seed int64
	// Latency shapes the simulated latency; zero value = DefaultLatency.
	Latency LatencyConfig
	// AsyncReplication delays replica writes by ReplicaLag (eventual
	// consistency). Only observable in simulated mode.
	AsyncReplication bool
	// ReplicaLag is the replication delay under AsyncReplication.
	ReplicaLag time.Duration
	// MoveChunkKeys bounds how many keys Rebalance copies per scan
	// chunk, keeping the copy's memory footprint independent of
	// partition size. 0 means DefaultMoveChunkKeys.
	MoveChunkKeys int
	// TombstoneGCAge is the grace period before a delete's tombstone may
	// be swept. It must exceed replica lag plus in-flight operation
	// latency: sweeping a tombstone forgets the delete's version, so a
	// write older than the delete that is still undelivered could
	// resurrect the key. 0 means DefaultTombstoneGCAge.
	TombstoneGCAge time.Duration
	// LeaseDuration is how long an unreachable node's ranges stay
	// assigned to it (measured on the wall clock from the moment it
	// went down) before Rebalance may reclaim them. It is the primary
	// lease's expiry: while a primary is reachable its authority is
	// implicitly renewed; once it crashes or partitions away, its
	// conditional-op authority lapses after this long. 0 means
	// DefaultLeaseDuration.
	LeaseDuration time.Duration
	// FenceRetryBudget bounds how many times a conditional operation is
	// retried after an epoch-fencing reject or an unreachable primary
	// before TestAndSet gives up with *ErrFenceExhausted. 0 means
	// DefaultFenceRetryBudget.
	FenceRetryBudget int
}

// DefaultMoveChunkKeys is the per-chunk key budget of a rebalance copy
// when Config.MoveChunkKeys is zero.
const DefaultMoveChunkKeys = 256

// DefaultTombstoneGCAge is the tombstone grace period when
// Config.TombstoneGCAge is zero.
const DefaultTombstoneGCAge = 5 * time.Second

// DefaultLeaseDuration is the unreachable-primary lease expiry when
// Config.LeaseDuration is zero.
const DefaultLeaseDuration = time.Second

// DefaultFenceRetryBudget is the conditional-op retry bound when
// Config.FenceRetryBudget is zero.
const DefaultFenceRetryBudget = 64

// Cluster is a simulated SCADS-style key/value store. It is safe for
// concurrent use by any number of Clients: node record stores are
// mutex-guarded, the op counters are atomic, and the partition map is an
// epoch-stamped routing table behind an atomic pointer. Rebalance models
// the SCADS Director's live repartitioning and runs concurrently with
// traffic: ranges are copied while writers double-write to old and new
// owners, then the routing epoch flips (see Rebalance). SetNodeSlowdown
// may also run at any time.
type Cluster struct {
	cfg   Config
	env   *sim.Env // nil in immediate mode
	nodes []*node

	// routing is the current epoch-stamped partition map. Operations
	// claim a snapshot for their duration (beginOp/endOp) so Rebalance
	// can tell when a retired table has drained before it deletes moved
	// ranges from their former owners.
	routing atomic.Pointer[routing]

	// rebalanceMu serializes concurrent Rebalance calls (moves of one
	// rebalance must finish before the next recomputes the layout).
	rebalanceMu sync.Mutex

	ops       atomic.Int64 // total storage operations served
	fenced    atomic.Int64 // conditional decisions rejected by epoch fencing
	clientSeq atomic.Int64

	// faultMu guards the failure-injection state: each node's downSince
	// timestamp and the queued catch-up writes for unreachable nodes
	// (see failure.go). The hot-path reachability check is the node's
	// atomic down word and never takes it. Lock order: rebalanceMu
	// before faultMu.
	faultMu sync.Mutex
	pending [][]catchUp // per-node writes queued while unreachable

	noFailover   atomic.Bool // test knob: disable read failover
	noAutoReplay atomic.Bool // test knob: skip catch-up replay on rejoin
	cuQueued     atomic.Int64
	cuReplayed   atomic.Int64
	cuDropped    atomic.Int64

	// chunkHook, when set (tests only), runs after each non-final chunk
	// of a move lands, with the cursor the next chunk will start from.
	chunkHook func(mv *move, nextCursor []byte)
}

// routing is one immutable epoch of the partition map: partition i owns
// [splits[i-1], splits[i]). While a rebalance is copying data, moves
// carries the in-flight range transfers so writers can double-write.
type routing struct {
	epoch  int64
	splits [][]byte // len parts-1
	owners [][]int  // per-partition replica sets, primary first (len parts)
	moves  []*move  // disjoint ranges being copied to new owners

	// active counts operations currently executing against this table.
	// Rebalance drains it (after publishing a successor) before deleting
	// moved ranges from their old owners, so no in-flight operation ever
	// reads or writes a wiped range.
	active atomic.Int64
}

// move is one in-flight range transfer [lo, hi) to the nodes in dst.
// Writers that observe it double-write (via applyIfNewer, so arrival
// order against the copy is irrelevant — versions decide). The copy
// itself needs no per-key coordination: it replays the source's
// envelopes, tombstones included, and a concurrent writer's fresher
// envelope outranks them wherever they land. mu serializes only the
// conditional path: a TestAndSet on the range decides and propagates
// entirely under mu, and the epoch flip takes mu on every move, so the
// lease handover can never interleave with a half-propagated swap.
type move struct {
	lo, hi []byte // nil = unbounded on that side
	dst    []int

	mu sync.Mutex
}

// covers reports whether key falls inside the move's range.
func (m *move) covers(key []byte) bool {
	if m.lo != nil && bytes.Compare(key, m.lo) < 0 {
		return false
	}
	if m.hi != nil && bytes.Compare(key, m.hi) >= 0 {
		return false
	}
	return true
}

// partitionOf returns the index of the partition owning key.
func (rt *routing) partitionOf(key []byte) int {
	// splits[i] is the lower bound of partition i+1.
	return sort.Search(len(rt.splits), func(i int) bool {
		return bytes.Compare(key, rt.splits[i]) < 0
	})
}

// parts returns the number of partitions.
func (rt *routing) parts() int { return len(rt.splits) + 1 }

// isOwner reports whether node id holds partition p under this table.
func (rt *routing) isOwner(p, id int) bool {
	return slices.Contains(rt.owners[p], id)
}

// bounds returns partition p's key range (nil = unbounded side).
func (rt *routing) bounds(p int) (lo, hi []byte) {
	if p > 0 {
		lo = rt.splits[p-1]
	}
	if p < len(rt.splits) {
		hi = rt.splits[p]
	}
	return lo, hi
}

// rangeParts returns the inclusive window [lo, hi] of partitions whose
// key range intersects [start, end). nil start/end leave that side
// unbounded. An empty range still yields a one-partition window so range
// operations always visit (and account) at least one node.
func (rt *routing) rangeParts(start, end []byte) (lo, hi int) {
	lo, hi = 0, len(rt.splits)
	if start != nil {
		lo = rt.partitionOf(start)
	}
	if end != nil {
		// hi = largest partition whose lower bound splits[hi-1] < end.
		hi = sort.Search(len(rt.splits), func(i int) bool {
			return bytes.Compare(rt.splits[i], end) >= 0
		})
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// New creates a cluster. env may be nil for immediate (zero-latency) mode.
func New(cfg Config, env *sim.Env) *Cluster {
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.ReplicationFactor <= 0 {
		cfg.ReplicationFactor = 1
	}
	if cfg.ReplicationFactor > cfg.Nodes {
		cfg.ReplicationFactor = cfg.Nodes
	}
	if cfg.NodeServers <= 0 {
		cfg.NodeServers = 12
	}
	if cfg.Latency == (LatencyConfig{}) {
		cfg.Latency = DefaultLatency()
	}
	if cfg.MoveChunkKeys <= 0 {
		cfg.MoveChunkKeys = DefaultMoveChunkKeys
	}
	if cfg.TombstoneGCAge <= 0 {
		cfg.TombstoneGCAge = DefaultTombstoneGCAge
	}
	if cfg.LeaseDuration <= 0 {
		cfg.LeaseDuration = DefaultLeaseDuration
	}
	if cfg.FenceRetryBudget <= 0 {
		cfg.FenceRetryBudget = DefaultFenceRetryBudget
	}
	c := &Cluster{cfg: cfg, env: env}
	for i := 0; i < cfg.Nodes; i++ {
		c.nodes = append(c.nodes, newNode(i, cfg.Seed, env, cfg.NodeServers, cfg.TombstoneGCAge))
	}
	c.pending = make([][]catchUp, cfg.Nodes)
	// epoch 0: one partition, all keys on node 0's replicas.
	rt := &routing{owners: [][]int{c.placeOwners(0)}}
	c.installLeases(rt)
	c.routing.Store(rt)
	return c
}

// beginOp claims the current routing table for one operation. The claim
// is revalidated after the increment so a concurrent Rebalance that
// published a successor in between cannot observe a drained table while
// this operation still intends to use it.
func (c *Cluster) beginOp() *routing {
	for {
		rt := c.routing.Load()
		rt.active.Add(1)
		if c.routing.Load() == rt {
			return rt
		}
		rt.active.Add(-1)
	}
}

// endOp releases an operation's claim on its routing table.
func (c *Cluster) endOp(rt *routing) { rt.active.Add(-1) }

// drain waits until no operation still holds the retired table. Only
// called by Rebalance, after a successor table is published, so the wait
// is bounded by in-flight operation latency.
func (c *Cluster) drain(rt *routing) {
	for rt.active.Load() > 0 {
		runtime.Gosched()
	}
}

// Config returns the cluster's configuration.
func (c *Cluster) Config() Config { return c.cfg }

// NumNodes returns the number of storage nodes.
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// TotalOps returns the cumulative count of storage operations served,
// summed over all clients. The harness uses it for throughput accounting.
func (c *Cluster) TotalOps() int64 { return c.ops.Load() }

// FenceRejects returns how many conditional decisions nodes have
// rejected through epoch fencing since the cluster was created. Each
// reject corresponds to one client-side retry under a fresher routing
// table — it is the observable footprint of the linearizable handover,
// not an error count.
func (c *Cluster) FenceRejects() int64 { return c.fenced.Load() }

// TotalItems returns the number of stored items summed over nodes
// (replicas counted separately).
func (c *Cluster) TotalItems() int {
	total := 0
	for _, n := range c.nodes {
		total += n.size()
	}
	return total
}

// SetNodeSlowdown injects a service-time multiplier on one node
// (failure/degradation injection for tests).
func (c *Cluster) SetNodeSlowdown(nodeID int, factor float64) {
	n := c.nodes[nodeID]
	n.mu.Lock()
	n.slowdown = factor
	n.mu.Unlock()
}

// replicaNodes returns the node IDs the placement rule prefers for
// partition p, primary first (replica r of partition p is node (p+r)
// mod n). It is the liveness-blind preference order; actual ownership
// is the routing table's owners, computed by placeOwners at each
// rebalance.
func (c *Cluster) replicaNodes(p int) []int {
	return c.replicaNodesInto(make([]int, 0, c.cfg.ReplicationFactor), p)
}

// replicaNodesInto is replicaNodes appending into a caller-owned buffer.
func (c *Cluster) replicaNodesInto(buf []int, p int) []int {
	for r := 0; r < c.cfg.ReplicationFactor; r++ {
		buf = append(buf, (p+r)%len(c.nodes))
	}
	return buf
}

// placeOwners computes partition p's replica set, primary first: the
// arithmetic placement preference, skipping nodes whose lease has
// expired while unreachable (reclaim — see reclaimableLocked). A node
// that is down but unexpired keeps its ranges: operations on them
// stall or queue rather than failing over prematurely, which is the
// lease-safety window that keeps conditional ops on exactly one
// primary. If every node is reclaimable the arithmetic set stands (a
// fully-dead cluster has no better answer).
func (c *Cluster) placeOwners(p int) []int {
	c.faultMu.Lock()
	defer c.faultMu.Unlock()
	n := len(c.nodes)
	owners := make([]int, 0, c.cfg.ReplicationFactor)
	for r := 0; r < n && len(owners) < c.cfg.ReplicationFactor; r++ {
		id := (p + r) % n
		if c.reclaimableLocked(id) {
			continue
		}
		owners = append(owners, id)
	}
	if len(owners) == 0 {
		return c.replicaNodes(p)
	}
	return owners
}

// maxClock returns the newest timestamp any node's clock has issued or
// observed.
func (c *Cluster) maxClock() int64 {
	var m int64
	for _, nd := range c.nodes {
		if v := nd.hlc.last.Load(); v > m {
			m = v
		}
	}
	return m
}

// barrierStamp issues a timestamp strictly newer than every stamp any
// node has issued so far and makes every node observe it, so every
// stamp drawn after it returns is strictly newer still. It is the
// control-plane stamp for snapshot barriers (Client.StampVersion, used
// by the index backfill): a real deployment would run a timestamp-
// exchange round; the simulation reads every clock directly. A write
// in flight while the barrier runs may still carry an older stamp —
// barrier callers drain in-flight writers before acting on the stamp,
// which is exactly what the backfill protocol does.
func (c *Cluster) barrierStamp() int64 {
	var m int64
	for _, nd := range c.nodes {
		if t := nd.hlc.Next(); t > m {
			m = t
		}
	}
	for _, nd := range c.nodes {
		nd.hlc.Observe(m)
	}
	return m
}

// Rebalance recomputes partition split points so that data is spread
// evenly over nodes, then moves ranges to their new owners. It models
// the SCADS Director's live repartitioning and is safe to run under
// concurrent read/write traffic:
//
//  1. it publishes an intermediate routing table (epoch+1) carrying the
//     planned moves — from that moment every write to a moving range
//     double-writes to the old and new owners — and drains operations
//     still holding the pre-move table, so every write the copy could
//     miss has landed on the old owners before any copy scan starts;
//  2. it copies each moving range from the old primaries into the new
//     owners in bounded chunks (see copyMove), replaying the source's
//     version envelopes — tombstones included — with put-if-newer, so a
//     concurrent writer's fresher value (or delete) always wins no
//     matter how the copy interleaves with it;
//  3. it flips the epoch (epoch+2) while holding every move window:
//     new primary leases are installed first (epoch fencing — a
//     conditional op still claiming the old table is rejected by the
//     old primary and retries under the new one), then the new table is
//     published, routing reads and writes to the new owners, which hold
//     the complete range;
//  4. it drains operations still using the retired move table, then
//     deletes moved ranges from nodes that no longer own them.
//
// Reads never fail mid-move: until the flip they are served by the old
// owners, which remain complete; after the flip by the new owners, which
// the copy plus double-writes have made complete. Concurrent Rebalance
// calls serialize among themselves.
// Rebalance is the writer of the routing pointer — it serializes
// against other rebalances via rebalanceMu and quiesces claimed
// snapshots itself, so it never claims one.
//
//lint:allow routingclaim
func (c *Cluster) Rebalance() {
	c.rebalanceMu.Lock()
	defer c.rebalanceMu.Unlock()
	old := c.routing.Load()

	// Sample the key distribution from each partition's primary replica
	// (or the first live owner when the primary is down). Scans are
	// clipped to the partition's own range so replica-held data of
	// neighboring partitions is not double-counted, and under async
	// replication only the primary — the authoritative copy — is read
	// (a lagging replica must never resurrect a stale value).
	var keys [][]byte
	for p := 0; p < old.parts(); p++ {
		lo, hi := old.bounds(p)
		src := c.liveOwner(old, p)
		if src < 0 {
			continue // whole replica set unreachable; sample what we can
		}
		for _, kv := range c.nodes[src].scan(lo, hi, 0, false) {
			keys = append(keys, kv.Key)
		}
	}
	// keys is globally sorted: per-partition scans are ordered and the
	// partitions are disjoint, ascending ranges.

	n := len(c.nodes)
	splits := make([][]byte, 0, n-1)
	for i := 1; i < n; i++ {
		idx := i * len(keys) / n
		if idx >= len(keys) {
			idx = len(keys) - 1
		}
		if len(keys) > 0 {
			splits = append(splits, keys[idx])
		}
	}
	next := &routing{epoch: old.epoch + 2, splits: splits}
	next.owners = make([][]int, next.parts())
	for p := 0; p < next.parts(); p++ {
		next.owners[p] = c.placeOwners(p)
	}

	// Plan one move per new partition whose ownership actually changes,
	// and publish the intermediate table: same splits and owners as
	// before, but writers now double-write into the new layout. A new
	// partition contained in a single old partition with the identical
	// owner set needs no move — its owners already hold the complete
	// range — so stable ranges pay neither copy nor double-writes. (A
	// reclaim after a node death changes the owner set, so the range
	// moves even when the split points did not.)
	moves := make([]*move, 0, next.parts())
	for p := 0; p < next.parts(); p++ {
		lo, hi := next.bounds(p)
		oplo, ophi := old.rangeParts(lo, hi)
		if oplo == ophi && slices.Equal(next.owners[p], old.owners[oplo]) {
			continue
		}
		moves = append(moves, &move{lo: lo, hi: hi, dst: next.owners[p]})
	}
	mid := &routing{epoch: old.epoch + 1, splits: old.splits, owners: old.owners, moves: moves}
	c.routing.Store(mid)

	// Drain the pre-move table before any copy scan starts. An operation
	// that claimed it cannot see the moves, so its writes reach only the
	// old owners — in particular, a conditional write accepted on an old
	// primary just before the publish would be invisible to a copy scan
	// that had already passed its key, and so invisible to the new
	// primary at the flip (a lost accepted swap). Waiting here makes the
	// copy's source snapshot complete with respect to every pre-publish
	// operation; everything after double-writes through the move.
	c.drain(old)

	for _, mv := range moves {
		c.copyMove(old, mv)
	}

	// Flip while holding every move window: no conditional decision can
	// be mid-propagation, so installing the new primary leases first and
	// then publishing the table hands authority over atomically — the
	// old primary fences any straggler claiming a retired epoch.
	// move.mu instances nest only here, in the moves-slice order, and
	// Rebalance (the one function that ever holds two) is serialized by
	// rebalanceMu: a single global instance order, so no opposing
	// acquisition can exist.
	for _, mv := range moves {
		//lint:allow lockorder — instance nesting under rebalanceMu, moves-slice order
		mv.mu.Lock()
	}
	c.installLeases(next)
	c.routing.Store(next)
	for _, mv := range moves {
		mv.mu.Unlock()
	}

	// Retire the move table: once no operation holds it, no read can
	// touch a former owner, and the moved ranges can be deleted.
	c.drain(mid)
	c.cleanup(next)
	//lint:allow releasepath — mv.mu is released by the second symmetric loop over the same moves slice; the branch-sensitive walker cannot pair a lock with an unlock in a different loop.
}

// copyMove copies one move's range from the old layout's primaries into
// the destinations, one bounded chunk at a time. The scan is raw — it
// reads version envelopes, tombstones included — and each item lands
// with applyIfNewer, so the copy commutes with every concurrent write:
// a writer's fresher put or delete outranks the copied envelope whether
// it arrives before or after it, and a copied tombstone carries the
// deletion to destinations the writer's own double-apply missed. The
// chunk bound (Config.MoveChunkKeys) only limits the scan's memory;
// no per-chunk coordination with writers remains (the pre-versioning
// protocol needed a published chunk window plus delete-tombstone
// bookkeeping here).
func (c *Cluster) copyMove(old *routing, mv *move) {
	chunk := c.cfg.MoveChunkKeys
	plo, phi := old.rangeParts(mv.lo, mv.hi)
	for p := plo; p <= phi; p++ {
		// Copy from the primary, or the first live owner when it is
		// down (put-if-newer tolerates a lagged source: anything it is
		// missing arrives later by catch-up replay or double-write).
		src := c.liveOwner(old, p)
		if src < 0 {
			continue // whole replica set unreachable; nothing to copy from
		}
		cursor := boundedStart(old, p, mv.lo)
		end := boundedEnd(old, p, mv.hi)
		for {
			kvs := c.nodes[src].scanRaw(cursor, end, chunk)
			for _, kv := range kvs {
				for _, id := range mv.dst {
					c.applyOrQueue(id, kv.Key, kv.Value)
				}
			}
			if len(kvs) < chunk {
				break
			}
			cursor = append(append([]byte{}, kvs[len(kvs)-1].Key...), 0x00)
			if c.chunkHook != nil {
				c.chunkHook(mv, cursor)
			}
		}
	}
}

// liveOwner returns partition p's first reachable owner under rt
// (preferring the primary), or -1 when the whole replica set is
// unreachable.
func (c *Cluster) liveOwner(rt *routing, p int) int {
	for _, id := range rt.owners[p] {
		if c.reachable(id) {
			return id
		}
	}
	return -1
}

// cleanup purges every key a node holds but does not own under rt.
// Concurrent writes are safe: a write routed by rt only lands on owners,
// which cleanup never touches for that key's range. Purging (rather
// than tombstoning) is correct precisely because the node is not an
// owner — no read routes to it, and a later rebalance copies from
// owners, never from it.
func (c *Cluster) cleanup(rt *routing) {
	for id, nd := range c.nodes {
		if !c.reachable(id) {
			// An unreachable node can't be purged remotely; rejoin runs
			// the same sweep for it before it serves again.
			continue
		}
		for _, kv := range nd.scanRaw(nil, nil, 0) {
			if !rt.isOwner(rt.partitionOf(kv.Key), id) {
				nd.purge(kv.Key)
			}
		}
	}
}

// GCTombstones force-sweeps delete tombstones older than the given age
// from every node, returning how many were collected. age <= 0 sweeps
// every tombstone, which is only safe on a quiesced cluster (no write
// in flight, replication lag drained): a sweep forgets the deletes'
// versions, so an undelivered older write could otherwise resurrect a
// key. Nodes also sweep expired tombstones inline once they accumulate
// past a threshold, so unbounded tombstone growth never depends on this
// call.
func (c *Cluster) GCTombstones(age time.Duration) int {
	cutoff := wallHLC(time.Now().Add(-age))
	if age <= 0 {
		cutoff = c.maxClock() + 1
	}
	total := 0
	for _, nd := range c.nodes {
		total += nd.gcTombstones(cutoff)
	}
	return total
}

// AuditConvergence verifies the store's convergence invariant: for every
// partition, all replicas hold byte-identical live state — same keys,
// same value bytes, same versions (a tombstone and a swept/absent key
// are equivalent, both meaning "deleted"). It is meaningful on a
// quiesced cluster (writers joined, replication lag drained); the chaos
// harness runs it after every storm. Returns nil when converged.
// It audits a quiesced cluster — no rebalance can run concurrently, so
// there is no snapshot lifecycle to join.
//
//lint:allow routingclaim
func (c *Cluster) AuditConvergence() error {
	rt := c.routing.Load()
	for p := 0; p < rt.parts(); p++ {
		lo, hi := rt.bounds(p)
		ids := rt.owners[p]
		ref := make(map[string][]byte)
		for _, kv := range c.nodes[ids[0]].scanRaw(lo, hi, 0) {
			if !envIsTombstone(kv.Value) {
				ref[string(kv.Key)] = kv.Value
			}
		}
		for _, id := range ids[1:] {
			live := 0
			for _, kv := range c.nodes[id].scanRaw(lo, hi, 0) {
				if envIsTombstone(kv.Value) {
					continue
				}
				live++
				want, ok := ref[string(kv.Key)]
				if !ok {
					return fmt.Errorf("kvstore: divergence on %q: live %q@%+v on node %d, deleted/absent on primary %d",
						kv.Key, envValue(kv.Value), envVersion(kv.Value), id, ids[0])
				}
				if !bytes.Equal(want, kv.Value) {
					return fmt.Errorf("kvstore: divergence on %q: node %d holds %q@%+v, primary %d holds %q@%+v",
						kv.Key, id, envValue(kv.Value), envVersion(kv.Value), ids[0], envValue(want), envVersion(want))
				}
			}
			if live != len(ref) {
				for k := range ref {
					if _, _, ok := c.nodes[id].getVersioned([]byte(k)); !ok {
						return fmt.Errorf("kvstore: divergence on %q: live on primary %d, deleted/absent on node %d",
							k, ids[0], id)
					}
				}
			}
		}
	}
	return nil
}

// Epoch returns the current routing epoch. It advances by two per
// rebalance (one for the move-in-progress table, one for the flip).
// A single immutable-field read for test observability; the value is
// stale the moment it returns either way.
//
//lint:allow routingclaim
func (c *Cluster) Epoch() int64 { return c.routing.Load().epoch }

// Splits returns a copy of the current partition split points.
// A single immutable-field read for test observability; split slices
// are never mutated after publication.
//
//lint:allow routingclaim
func (c *Cluster) Splits() [][]byte {
	splits := c.routing.Load().splits
	out := make([][]byte, len(splits))
	copy(out, splits)
	return out
}

func (c *Cluster) String() string {
	return fmt.Sprintf("kvstore.Cluster{nodes: %d, rf: %d, items: %d}",
		len(c.nodes), c.cfg.ReplicationFactor, c.TotalItems())
}
