package kvstore

import (
	"encoding/binary"
	"errors"
	"sync/atomic"
	"time"
)

// Hybrid logical clock + version envelope.
//
// Every record a node stores carries a version: a hybrid timestamp drawn
// from the cluster-wide HLC plus the writing client's id as a tiebreaker.
// Replicas apply a write only when its version is newer than what they
// hold (node.applyIfNewer), and deletes store versioned tombstones
// instead of erasing, so all replicas of a key — synchronous, async-
// lagged, and rebalance copies alike — converge to the same winner
// regardless of the order writes arrive in. This is what turns the
// store's Put/Delete from "last writer wins per replica" (which could
// diverge replicas permanently; see ROADMAP, PR 4 follow-ons) into
// convergent last-writer-wins.

// hlcLogicalBits is how many low bits of a hybrid timestamp hold the
// logical counter; the rest hold wall-clock milliseconds. 16 bits allow
// 65k distinct stamps per millisecond before the clock runs ahead of
// wall time (it stays monotonic either way).
const hlcLogicalBits = 16

// HLC is a hybrid logical clock: timestamps are the maximum of the wall
// clock (in ms, shifted left by hlcLogicalBits) and last-issued+1, so
// they are strictly increasing across the cluster and still loosely
// track real time — which is what lets tombstone GC use a wall-clock
// grace period. Safe for concurrent use.
type HLC struct {
	last atomic.Int64
}

// Next issues a new hybrid timestamp, strictly greater than every
// timestamp previously issued by this clock.
func (h *HLC) Next() int64 {
	for {
		last := h.last.Load()
		next := wallHLC(time.Now())
		if next <= last {
			next = last + 1
		}
		if h.last.CompareAndSwap(last, next) {
			return next
		}
	}
}

// Observe advances the clock to at least ts — the receive rule of a
// hybrid logical clock. Every node observes the timestamp of every
// envelope it applies (applyIfNewer), so after a node has seen a write
// it can never issue a stamp that loses to it: a replica promoted to
// primary after a crash stamps new writes strictly newer than
// everything it stores.
func (h *HLC) Observe(ts int64) {
	for {
		last := h.last.Load()
		if ts <= last || h.last.CompareAndSwap(last, ts) {
			return
		}
	}
}

// wallHLC converts a wall-clock instant to the hybrid-timestamp scale.
func wallHLC(t time.Time) int64 { return t.UnixMilli() << hlcLogicalBits }

// Version orders all writes to one key: hybrid timestamp first, writing
// client as the tiebreaker. The zero Version is older than any stamped
// write.
type Version struct {
	TS     int64 // hybrid timestamp from the cluster HLC
	Client int64 // writing client's id (tiebreaker)
}

// After reports whether v is strictly newer than o.
func (v Version) After(o Version) bool {
	if v.TS != o.TS {
		return v.TS > o.TS
	}
	return v.Client > o.Client
}

// envHeader is the size of the version envelope prefix every stored
// value carries: 8 bytes timestamp, 8 bytes client id, 1 flag byte.
const envHeader = 17

const envTombstone = 1 // flag bit: this envelope is a delete marker

// appendEnvelope appends the envelope for (ver, tomb, val) to dst.
func appendEnvelope(dst []byte, ver Version, tomb bool, val []byte) []byte {
	var hdr [envHeader]byte
	binary.BigEndian.PutUint64(hdr[0:8], uint64(ver.TS))
	binary.BigEndian.PutUint64(hdr[8:16], uint64(ver.Client))
	if tomb {
		hdr[16] = envTombstone
	}
	return append(append(dst, hdr[:]...), val...)
}

// makeEnvelope builds one envelope in a fresh slice.
func makeEnvelope(ver Version, tomb bool, val []byte) []byte {
	return appendEnvelope(make([]byte, 0, envHeader+len(val)), ver, tomb, val)
}

// envVersion extracts an envelope's version.
func envVersion(env []byte) Version {
	return Version{
		TS:     int64(binary.BigEndian.Uint64(env[0:8])),
		Client: int64(binary.BigEndian.Uint64(env[8:16])),
	}
}

// envIsTombstone reports whether the envelope is a delete marker.
func envIsTombstone(env []byte) bool { return env[16]&envTombstone != 0 }

// envValue returns the envelope's payload (empty for tombstones). The
// returned slice aliases env.
func envValue(env []byte) []byte { return env[envHeader:] }

var (
	errEnvelopeShort = errors.New("kvstore: envelope shorter than its 17-byte header")
	errEnvelopeFlags = errors.New("kvstore: envelope header has unknown flag bits")
)

// parseEnvelope validates env and splits it into version, tombstone
// flag, and payload (the payload aliases env). Unlike the envVersion/
// envIsTombstone/envValue accessors — which assume a well-formed
// envelope and index straight into it — it never panics: truncated
// input and unknown flag bits come back as errors. applyIfNewer runs
// every incoming envelope through it, so a corrupt envelope is a
// deterministic reject instead of a crash mid-write.
func parseEnvelope(env []byte) (ver Version, tomb bool, val []byte, err error) {
	if len(env) < envHeader {
		return Version{}, false, nil, errEnvelopeShort
	}
	if env[16]&^envTombstone != 0 {
		return Version{}, false, nil, errEnvelopeFlags
	}
	return envVersion(env), envIsTombstone(env), envValue(env), nil
}
