package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"piql/internal/sim"
)

// TestErrorChainsRoundTrip pins the error taxonomy the engine's retry
// classification depends on: every transient kvstore error — node
// down, fenced, retry budget exhausted — must satisfy
// errors.Is(err, ErrTransient) through arbitrary %w wrapping, and
// errors.As must recover the typed cause with its fields intact
// (ErrFenceExhausted preserves its final attempt's error in Last).
// Semantic errors must never classify as transient.
func TestErrorChainsRoundTrip(t *testing.T) {
	down := &ErrNodeDown{Node: 4, Partitioned: true}
	fenced := &ErrFenced{Node: 2, Claimed: 3, Need: 5, Owner: true}
	exhausted := &ErrFenceExhausted{Op: "testandset", Attempts: 64, Last: down}

	for _, err := range []error{down, fenced, exhausted} {
		wrapped := fmt.Errorf("exec: degraded read: %w", err)
		if !errors.Is(wrapped, ErrTransient) {
			t.Errorf("%T does not unwrap to ErrTransient through a wrap: %v", err, wrapped)
		}
	}

	// ErrFenceExhausted chains through Last: the root cause survives.
	var nd *ErrNodeDown
	if !errors.As(fmt.Errorf("op: %w", exhausted), &nd) {
		t.Fatal("wrapped ErrFenceExhausted does not expose its *ErrNodeDown cause")
	}
	if nd.Node != 4 || !nd.Partitioned {
		t.Errorf("cause fields lost through the chain: %+v", nd)
	}
	var ex *ErrFenceExhausted
	if !errors.As(fmt.Errorf("op: %w", exhausted), &ex) || ex.Op != "testandset" || ex.Attempts != 64 {
		t.Errorf("wrapped ErrFenceExhausted not recoverable with fields: %+v", ex)
	}

	// Budget exhaustion with no recorded cause is still transient.
	if !errors.Is(&ErrFenceExhausted{Op: "write"}, ErrTransient) {
		t.Error("ErrFenceExhausted with nil Last must still classify as transient")
	}
	if errors.Is(errors.New("kvstore: malformed envelope"), ErrTransient) {
		t.Error("a semantic error must not classify as transient")
	}
}

// TestQuorumReadBoundsStaleness is the staleness-bound acceptance test
// for quorum reads: with RF=2 and one replica recovered stale (its
// catch-ups held back), an R=1 read demonstrably CAN return the
// pre-outage value, while an R=2 read never does — the newest envelope
// among the quorum wins, and the read repairs the stale replica as a
// side effect. While the replica is still partitioned, an R=2 read
// refuses with a typed transient error instead of silently degrading.
func TestQuorumReadBoundsStaleness(t *testing.T) {
	c := New(Config{Nodes: 2, ReplicationFactor: 2, Seed: 3}, nil)
	c.SetCatchUpReplay(false) // hold the recovered replica stale
	cl := c.NewClient(nil)
	k := []byte("quorum-key")

	cl.Put(k, []byte("v1"))
	c.Partition([]int{0}) // node 1 unreachable
	cl.Put(k, []byte("v2"))
	if c.CatchUpsQueued() == 0 {
		t.Fatal("the acked write was not queued for the partitioned replica")
	}

	// Quorum short: R=2 with one replica away makes no decision.
	if _, _, err := cl.GetQuorum(k, 2); err == nil {
		t.Fatal("R=2 read with one replica partitioned returned no error")
	} else if !errors.Is(err, ErrTransient) {
		t.Fatalf("quorum-short error is not transient: %v", err)
	}

	c.Heal() // replay disabled: node 1 rejoins serving v1

	// R=1 carries no staleness bound: a uniform pick lands on the stale
	// replica within a few draws.
	sawStale, sawFresh := false, false
	for i := 0; i < 400 && !(sawStale && sawFresh); i++ {
		v, ok := cl.Get(k)
		if !ok {
			t.Fatal("key read as absent")
		}
		switch string(v) {
		case "v1":
			sawStale = true
		case "v2":
			sawFresh = true
		default:
			t.Fatalf("impossible value %q", v)
		}
	}
	if !sawStale {
		t.Fatal("R=1 reads never observed the stale replica — the scenario exercises nothing")
	}
	if !sawFresh {
		t.Fatal("R=1 reads never observed the fresh replica")
	}

	// R=2 is never stale: both replicas are read, v2's newer version wins.
	for i := 0; i < 50; i++ {
		v, ok, err := cl.GetQuorum(k, 2)
		if err != nil || !ok || !bytes.Equal(v, []byte("v2")) {
			t.Fatalf("R=2 read %d returned %q (ok=%v, err=%v), want v2 always", i, v, ok, err)
		}
	}

	// The quorum read read-repaired the stale replica in passing...
	if v, _ := c.nodes[1].get(k); !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("stale replica not read-repaired: holds %q", v)
	}
	// ...so even R=1 reads are fresh from here on.
	for i := 0; i < 50; i++ {
		if v, ok := cl.Get(k); !ok || !bytes.Equal(v, []byte("v2")) {
			t.Fatalf("post-repair R=1 read returned %q (ok=%v), want v2", v, ok)
		}
	}
	if err := c.AuditConvergence(); err != nil {
		t.Fatal(err)
	}
}

// TestLeaseExpiryUnwedgesTestAndSet: killing a key's authoritative
// primary wedges conditional ops on it — inside the lease window no
// other node may decide, so TestAndSet burns its retry budget and
// returns *ErrFenceExhausted (no decision, value untouched). Once the
// lease lapses, Rebalance reclaims the range onto live nodes and the
// same operation succeeds. The dead node's eventual restart must not
// disturb the converged state.
func TestLeaseExpiryUnwedgesTestAndSet(t *testing.T) {
	c := New(Config{Nodes: 4, ReplicationFactor: 2, Seed: 5,
		LeaseDuration: 60 * time.Millisecond}, nil)
	cl := c.NewClient(nil)
	k := []byte("lease-key")
	if ok, err := cl.TestAndSet(k, nil, []byte("v0")); err != nil || !ok {
		t.Fatalf("seed swap: ok=%v err=%v", ok, err)
	}

	rt := c.routing.Load()
	primary := rt.owners[rt.partitionOf(k)][0]
	c.Kill(primary)

	// Wedged: the budget drains against the unreachable primary.
	ok, err := cl.TestAndSet(k, []byte("v0"), []byte("v1"))
	if err == nil {
		t.Fatalf("TestAndSet decided (ok=%v) against a dead primary inside its lease window", ok)
	}
	var ex *ErrFenceExhausted
	if !errors.As(err, &ex) {
		t.Fatalf("wedged TestAndSet returned %v, want *ErrFenceExhausted", err)
	}
	var nd *ErrNodeDown
	if !errors.As(ex.Last, &nd) || nd.Node != primary {
		t.Fatalf("exhaustion cause is %v, want *ErrNodeDown for node %d", ex.Last, primary)
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("wedge error is not transient: %v", err)
	}

	// Lease expiry, then reclaim: the range moves to live nodes.
	time.Sleep(c.cfg.LeaseDuration + c.cfg.LeaseDuration/2)
	c.Rebalance()
	rt = c.routing.Load()
	if np := rt.owners[rt.partitionOf(k)][0]; np == primary {
		t.Fatalf("rebalance left the dead node %d as the key's primary", np)
	}
	if ok, err := cl.TestAndSet(k, []byte("v0"), []byte("v1")); err != nil || !ok {
		t.Fatalf("TestAndSet still wedged after expiry + reclaim: ok=%v err=%v", ok, err)
	}
	if v, ok := cl.Get(k); !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("key holds %q (ok=%v) after the post-reclaim swap, want v1", v, ok)
	}

	c.Restart(primary)
	if err := c.AuditConvergence(); err != nil {
		t.Fatal(err)
	}
	if v, ok := cl.Get(k); !ok || !bytes.Equal(v, []byte("v1")) {
		t.Fatalf("restart disturbed the key: %q (ok=%v)", v, ok)
	}
}

// TestReadRepairLaggedThenKilledReplica: ReadRepair against a replica
// set where the lagged replica has crashed must serve the newest value
// from the live primary without error, skip the unreachable replica,
// and leave convergence to catch-up replay at restart — the catch-up
// that fires mid-outage queues instead of applying to the dead node.
func TestReadRepairLaggedThenKilledReplica(t *testing.T) {
	env := sim.NewEnv()
	lag := 500 * time.Millisecond
	c := New(Config{Nodes: 2, ReplicationFactor: 2, Seed: 13,
		AsyncReplication: true, ReplicaLag: lag}, env)
	k := []byte("repair-dead-key")

	env.Spawn(func(p *sim.Proc) {
		cl := c.NewClient(p)
		cl.Put(k, []byte("v1"))
		p.Sleep(2 * lag) // v1 fully replicated
		cl.Put(k, []byte("v2"))
		c.Kill(1) // the lagged replica dies before v2's catch-up fires
		if v, ok := cl.ReadRepair(k); !ok || !bytes.Equal(v, []byte("v2")) {
			panic(fmt.Sprintf("ReadRepair with a dead replica returned %q (ok=%v), want v2 from the live primary", v, ok))
		}
		if err := cl.TakeErr(); err != nil {
			panic(fmt.Sprintf("ReadRepair noted %v despite a reachable replica serving the read", err))
		}
		p.Sleep(2 * lag) // v2's catch-up fires mid-outage: must queue
		c.Restart(1)     // replay converges the replica
	})
	env.Run(0)
	env.Stop()

	if c.CatchUpsQueued() == 0 {
		t.Fatal("the mid-outage catch-up was not queued — it applied to a killed node")
	}
	if v, _ := c.nodes[1].get(k); !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("replica not converged after restart: holds %q", v)
	}
	if err := c.AuditConvergence(); err != nil {
		t.Fatal(err)
	}
}
