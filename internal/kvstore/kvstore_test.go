package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"piql/internal/sim"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("val-%06d", i)) }

func newImmediate(nodes, rf int) (*Cluster, *Client) {
	c := New(Config{Nodes: nodes, ReplicationFactor: rf, Seed: 42}, nil)
	return c, c.NewClient(nil)
}

func TestGetPutDelete(t *testing.T) {
	_, cl := newImmediate(4, 2)
	if _, ok := cl.Get(key(1)); ok {
		t.Fatal("Get on empty cluster")
	}
	cl.Put(key(1), val(1))
	v, ok := cl.Get(key(1))
	if !ok || !bytes.Equal(v, val(1)) {
		t.Fatalf("Get = %q, %v", v, ok)
	}
	cl.Delete(key(1))
	if _, ok := cl.Get(key(1)); ok {
		t.Fatal("Get after Delete")
	}
}

func TestReplicationSurvivesAllReplicaReads(t *testing.T) {
	c, cl := newImmediate(5, 2)
	for i := 0; i < 100; i++ {
		cl.Put(key(i), val(i))
	}
	// Every read replica must return the value: try many clients (each
	// picks replicas with a different RNG stream).
	for trial := 0; trial < 20; trial++ {
		cl2 := c.NewClient(nil)
		for i := 0; i < 100; i++ {
			v, ok := cl2.Get(key(i))
			if !ok || !bytes.Equal(v, val(i)) {
				t.Fatalf("trial %d: key %d missing on some replica", trial, i)
			}
		}
	}
	// With RF=2 each item is stored twice.
	if got := c.TotalItems(); got != 200 {
		t.Fatalf("TotalItems = %d, want 200", got)
	}
}

func TestRebalanceSpreadsData(t *testing.T) {
	c, cl := newImmediate(8, 1)
	const n = 4000
	for i := 0; i < n; i++ {
		cl.Put(key(i), val(i))
	}
	// Before rebalance everything is on partition 0's replicas.
	c.Rebalance()
	for i, nd := range c.nodes {
		size := nd.size()
		if size < n/8-n/16 || size > n/8+n/16 {
			t.Errorf("node %d holds %d items, want ~%d", i, size, n/8)
		}
	}
	// All data still readable after rebalance.
	for i := 0; i < n; i++ {
		if _, ok := cl.Get(key(i)); !ok {
			t.Fatalf("key %d lost in rebalance", i)
		}
	}
}

func TestGetRangeAcrossPartitions(t *testing.T) {
	c, cl := newImmediate(6, 2)
	const n = 1200
	for i := 0; i < n; i++ {
		cl.Put(key(i), val(i))
	}
	c.Rebalance()

	kvs := cl.GetRange(RangeRequest{Start: key(100), End: key(1100)})
	if len(kvs) != 1000 {
		t.Fatalf("range returned %d items, want 1000", len(kvs))
	}
	for i, kv := range kvs {
		if !bytes.Equal(kv.Key, key(100+i)) {
			t.Fatalf("item %d = %q, want %q", i, kv.Key, key(100+i))
		}
	}

	// Limited scan stops early.
	kvs = cl.GetRange(RangeRequest{Start: key(100), End: key(1100), Limit: 7})
	if len(kvs) != 7 || !bytes.Equal(kvs[6].Key, key(106)) {
		t.Fatalf("limited scan = %d items, last %q", len(kvs), kvs[len(kvs)-1].Key)
	}

	// Reverse scan returns descending order from the end.
	kvs = cl.GetRange(RangeRequest{Start: key(100), End: key(1100), Limit: 5, Reverse: true})
	if len(kvs) != 5 {
		t.Fatalf("reverse scan = %d items", len(kvs))
	}
	for i, kv := range kvs {
		if !bytes.Equal(kv.Key, key(1099-i)) {
			t.Fatalf("reverse item %d = %q", i, kv.Key)
		}
	}

	// Unbounded scans.
	if got := len(cl.GetRange(RangeRequest{})); got != n {
		t.Fatalf("full scan = %d", got)
	}
	if got := len(cl.GetRange(RangeRequest{Reverse: true})); got != n {
		t.Fatalf("full reverse scan = %d", got)
	}
}

func TestCountRange(t *testing.T) {
	c, cl := newImmediate(4, 2)
	for i := 0; i < 500; i++ {
		cl.Put(key(i), val(i))
	}
	c.Rebalance()
	if got := cl.CountRange(key(10), key(60)); got != 50 {
		t.Fatalf("CountRange = %d, want 50", got)
	}
	if got := cl.CountRange(nil, nil); got != 500 {
		t.Fatalf("CountRange all = %d, want 500", got)
	}
	if got := cl.CountRange(key(600), nil); got != 0 {
		t.Fatalf("CountRange empty = %d, want 0", got)
	}
}

func TestMultiGet(t *testing.T) {
	c, cl := newImmediate(5, 2)
	for i := 0; i < 300; i++ {
		cl.Put(key(i), val(i))
	}
	c.Rebalance()
	keys := [][]byte{key(5), key(250), []byte("missing"), key(99)}
	got := cl.MultiGet(keys)
	if !bytes.Equal(got[0], val(5)) || !bytes.Equal(got[1], val(250)) || got[2] != nil || !bytes.Equal(got[3], val(99)) {
		t.Fatalf("MultiGet = %q", got)
	}
	if out := cl.MultiGet(nil); len(out) != 0 {
		t.Fatalf("empty MultiGet = %v", out)
	}
}

func TestTestAndSet(t *testing.T) {
	_, cl := newImmediate(3, 2)
	k := []byte("tas")
	tas := func(expect, update []byte) bool {
		t.Helper()
		ok, err := cl.TestAndSet(k, expect, update)
		if err != nil {
			t.Fatalf("TestAndSet(%q, %q): %v", expect, update, err)
		}
		return ok
	}
	// Insert-if-absent.
	if !tas(nil, []byte("v1")) {
		t.Fatal("insert-if-absent failed on empty key")
	}
	if tas(nil, []byte("v2")) {
		t.Fatal("insert-if-absent succeeded on existing key")
	}
	// Conditional update.
	if tas([]byte("wrong"), []byte("v2")) {
		t.Fatal("swap with wrong expectation succeeded")
	}
	if !tas([]byte("v1"), []byte("v2")) {
		t.Fatal("swap with right expectation failed")
	}
	v, _ := cl.Get(k)
	if !bytes.Equal(v, []byte("v2")) {
		t.Fatalf("value = %q", v)
	}
	// Conditional delete.
	if !tas([]byte("v2"), nil) {
		t.Fatal("conditional delete failed")
	}
	if _, ok := cl.Get(k); ok {
		t.Fatal("key survived conditional delete")
	}
}

func TestOpCounting(t *testing.T) {
	_, cl := newImmediate(4, 2)
	cl.Put(key(1), val(1)) // 2 replicas = 2 ops
	if cl.Ops() != 2 {
		t.Fatalf("ops after put = %d, want 2", cl.Ops())
	}
	cl.Get(key(1)) // 1 op
	if cl.Ops() != 3 {
		t.Fatalf("ops after get = %d, want 3", cl.Ops())
	}
	if prev := cl.ResetOps(); prev != 3 || cl.Ops() != 0 {
		t.Fatalf("ResetOps = %d, ops now %d", prev, cl.Ops())
	}
}

func TestRangeMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := New(Config{Nodes: 1 + r.Intn(6), ReplicationFactor: 1 + r.Intn(2), Seed: seed}, nil)
		cl := c.NewClient(nil)
		ref := map[string]string{}
		n := 50 + r.Intn(400)
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("k%04d", r.Intn(800))
			v := fmt.Sprintf("v%d", i)
			cl.Put([]byte(k), []byte(v))
			ref[k] = v
		}
		c.Rebalance()
		// A few random puts after rebalance to exercise mid-life routing.
		for i := 0; i < 20; i++ {
			k := fmt.Sprintf("k%04d", r.Intn(800))
			v := fmt.Sprintf("post%d", i)
			cl.Put([]byte(k), []byte(v))
			ref[k] = v
		}
		keys := make([]string, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Strings(keys)

		lo := []byte(fmt.Sprintf("k%04d", r.Intn(800)))
		hi := []byte(fmt.Sprintf("k%04d", r.Intn(800)))
		if bytes.Compare(lo, hi) > 0 {
			lo, hi = hi, lo
		}
		var want []string
		for _, k := range keys {
			if k >= string(lo) && k < string(hi) {
				want = append(want, k)
			}
		}
		limit := r.Intn(20)
		reverse := r.Intn(2) == 0
		got := cl.GetRange(RangeRequest{Start: lo, End: hi, Limit: limit, Reverse: reverse})
		expected := want
		if reverse {
			expected = make([]string, len(want))
			for i := range want {
				expected[i] = want[len(want)-1-i]
			}
		}
		if limit > 0 && len(expected) > limit {
			expected = expected[:limit]
		}
		if len(got) != len(expected) {
			return false
		}
		for i := range got {
			if string(got[i].Key) != expected[i] || string(got[i].Value) != ref[expected[i]] {
				return false
			}
		}
		return cl.CountRange(lo, hi) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// --- simulated-mode tests ---

func TestSimulatedOpsTakeVirtualTime(t *testing.T) {
	env := sim.NewEnv()
	c := New(Config{Nodes: 4, ReplicationFactor: 2, Seed: 7}, env)
	var getLatency, putLatency time.Duration
	env.Spawn(func(p *sim.Proc) {
		cl := c.NewClient(p)
		t0 := p.Now()
		cl.Put(key(1), val(1))
		putLatency = p.Now() - t0
		t0 = p.Now()
		cl.Get(key(1))
		getLatency = p.Now() - t0
	})
	env.Run(0)
	if getLatency <= 0 || putLatency <= 0 {
		t.Fatalf("latencies: get=%v put=%v", getLatency, putLatency)
	}
	if getLatency > 100*time.Millisecond {
		t.Fatalf("get latency unreasonably high: %v", getLatency)
	}
}

func TestSimulatedMultiGetParallelFasterThanSerial(t *testing.T) {
	build := func() (*Cluster, *sim.Env) {
		env := sim.NewEnv()
		c := New(Config{Nodes: 8, ReplicationFactor: 1, Seed: 11}, env)
		cl := c.NewClient(nil)
		for i := 0; i < 800; i++ {
			cl.Put(key(i), val(i))
		}
		c.Rebalance()
		return c, env
	}
	keys := make([][]byte, 40)
	for i := range keys {
		keys[i] = key(i * 20)
	}

	c1, env1 := build()
	var serial time.Duration
	env1.Spawn(func(p *sim.Proc) {
		cl := c1.NewClient(p)
		t0 := p.Now()
		for _, k := range keys {
			cl.Get(k)
		}
		serial = p.Now() - t0
	})
	env1.Run(0)

	c2, env2 := build()
	var batched time.Duration
	env2.Spawn(func(p *sim.Proc) {
		cl := c2.NewClient(p)
		t0 := p.Now()
		cl.MultiGet(keys)
		batched = p.Now() - t0
	})
	env2.Run(0)

	if batched*3 > serial {
		t.Fatalf("MultiGet (%v) not substantially faster than serial gets (%v)", batched, serial)
	}
}

func TestSlowNodeInjection(t *testing.T) {
	measure := func(slow bool) time.Duration {
		env := sim.NewEnv()
		c := New(Config{Nodes: 1, ReplicationFactor: 1, Seed: 3}, env)
		if slow {
			c.SetNodeSlowdown(0, 50)
		}
		var total time.Duration
		env.Spawn(func(p *sim.Proc) {
			cl := c.NewClient(p)
			t0 := p.Now()
			for i := 0; i < 50; i++ {
				cl.Get(key(i))
			}
			total = p.Now() - t0
		})
		env.Run(0)
		return total
	}
	fast, slow := measure(false), measure(true)
	if slow < 10*fast {
		t.Fatalf("slowdown not observed: fast=%v slow=%v", fast, slow)
	}
}

func TestAsyncReplicationIsEventuallyConsistent(t *testing.T) {
	env := sim.NewEnv()
	c := New(Config{
		Nodes: 2, ReplicationFactor: 2, Seed: 5,
		AsyncReplication: true, ReplicaLag: 500 * time.Millisecond,
	}, env)
	k := []byte("ec-key")

	staleSeen, freshSeen := false, false
	env.Spawn(func(p *sim.Proc) {
		cl := c.NewClient(p)
		cl.Put(k, []byte("v"))
		// Immediately afterwards the secondary replica is still empty.
		if _, ok := c.nodes[1].get(k); !ok {
			staleSeen = true
		}
		p.Sleep(time.Second)
		if v, ok := c.nodes[1].get(k); ok && bytes.Equal(v, []byte("v")) {
			freshSeen = true
		}
	})
	env.Run(0)
	if !staleSeen {
		t.Error("secondary replica was synchronously updated despite AsyncReplication")
	}
	if !freshSeen {
		t.Error("secondary replica never converged")
	}
}

func TestNodeSaturationInflatesLatency(t *testing.T) {
	// One node with tiny capacity: 64 clients hammering it must see far
	// higher latency than a single client.
	run := func(clients int) time.Duration {
		env := sim.NewEnv()
		c := New(Config{Nodes: 1, ReplicationFactor: 1, NodeServers: 2, Seed: 9}, env)
		var worst time.Duration
		for i := 0; i < clients; i++ {
			env.Spawn(func(p *sim.Proc) {
				cl := c.NewClient(p)
				t0 := p.Now()
				cl.Get(key(1))
				if d := p.Now() - t0; d > worst {
					worst = d
				}
			})
		}
		env.Run(0)
		return worst
	}
	solo, crowded := run(1), run(64)
	if crowded < 5*solo {
		t.Fatalf("no queueing effect: solo=%v crowded=%v", solo, crowded)
	}
}

func TestVolatilityVariesByInterval(t *testing.T) {
	cfg := DefaultLatency()
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		v := cfg.volatility(1, 0, time.Duration(i)*cfg.VolatilityInterval)
		seen[fmt.Sprintf("%.3f", v)] = true
		// Deterministic: same inputs, same multiplier.
		if v2 := cfg.volatility(1, 0, time.Duration(i)*cfg.VolatilityInterval); v2 != v {
			t.Fatal("volatility not deterministic")
		}
	}
	if len(seen) < 50 {
		t.Fatalf("volatility nearly constant: %d distinct values", len(seen))
	}
}

func TestClusterString(t *testing.T) {
	c, cl := newImmediate(3, 1)
	cl.Put(key(1), val(1))
	if s := c.String(); s == "" {
		t.Fatal("empty String()")
	}
	if c.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
	if c.TotalOps() == 0 {
		t.Fatal("TotalOps not counted")
	}
}
