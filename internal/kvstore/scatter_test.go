package kvstore

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"piql/internal/sim"
)

// loadAndSplit fills a cluster through an immediate-mode client (free
// even on simulated clusters) and rebalances so the data spans all
// partitions.
func loadAndSplit(c *Cluster, n int) {
	loader := c.NewClient(nil)
	for i := 0; i < n; i++ {
		loader.Put(key(i), val(i))
	}
	c.Rebalance()
}

// TestGetRangeScatterMatchesSequential: scatter-gather must return
// exactly what the sequential partition walk returns, forward and
// reverse, bounded and unbounded, across partition boundaries.
func TestGetRangeScatterMatchesSequential(t *testing.T) {
	env := sim.NewEnv()
	c := New(Config{Nodes: 5, ReplicationFactor: 2, Seed: 11}, env)
	loadAndSplit(c, 500)

	reqs := []RangeRequest{
		{Start: key(0), End: key(500)},
		{Start: key(0), End: key(500), Limit: 7},
		{Start: key(123), End: key(456), Limit: 50},
		{Start: key(123), End: key(456), Limit: 50, Reverse: true},
		{Start: nil, End: nil, Limit: 33},
		{Start: key(490), End: key(10)}, // empty range
		{Start: key(77), End: key(78), Limit: 5},
		{Start: nil, End: nil, Reverse: true, Limit: 499},
	}
	var got [][]KV
	env.Spawn(func(p *sim.Proc) {
		cl := c.NewClient(p)
		for _, req := range reqs {
			got = append(got, cl.GetRangeScatter(req))
		}
	})
	env.Run(0)
	env.Stop()

	seq := c.NewClient(nil)
	for i, req := range reqs {
		want := seq.GetRange(req)
		if len(got[i]) != len(want) {
			t.Fatalf("req %d: scatter returned %d kvs, sequential %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if !bytes.Equal(got[i][j].Key, want[j].Key) || !bytes.Equal(got[i][j].Value, want[j].Value) {
				t.Fatalf("req %d: kv %d differs: %q vs %q", i, j, got[i][j].Key, want[j].Key)
			}
		}
	}
}

// TestGetRangeScatterConcurrency: a bounded range spanning P partitions
// must cost P storage operations but roughly ONE round trip of virtual
// time — the per-partition scans are issued concurrently, so elapsed
// time is the max of the scans, not the sum (the sequential walk pays
// the sum).
func TestGetRangeScatterConcurrency(t *testing.T) {
	env := sim.NewEnv()
	c := New(Config{Nodes: 8, ReplicationFactor: 1, Seed: 3}, env)
	loadAndSplit(c, 800)
	if parts := len(c.Splits()) + 1; parts != 8 {
		t.Fatalf("expected 8 partitions after rebalance, got %d", parts)
	}

	// The full range intersects all 8 partitions; Limit exceeds the total
	// so the sequential walk cannot early-stop — both variants visit all 8.
	req := RangeRequest{Start: key(0), End: key(800), Limit: 1000}
	var seqT, scatT time.Duration
	var seqOps, scatOps int64
	env.Spawn(func(p *sim.Proc) {
		cl := c.NewClient(p)
		t0 := p.Now()
		cl.GetRange(req)
		seqT, seqOps = p.Now()-t0, cl.ResetOps()
		t0 = p.Now()
		cl.GetRangeScatter(req)
		scatT, scatOps = p.Now()-t0, cl.ResetOps()
	})
	env.Run(0)
	env.Stop()

	if seqOps != 8 || scatOps != 8 {
		t.Fatalf("ops: sequential %d, scatter %d, want 8 each", seqOps, scatOps)
	}
	// 8 sequential round trips vs the max of 8 concurrent ones: scatter
	// must be far faster, not marginally (conservative 2x to stay robust
	// against latency-sampling noise; the typical ratio is ~6-8x).
	if scatT*2 >= seqT {
		t.Fatalf("scatter %v not ~concurrent vs sequential %v", scatT, seqT)
	}
}

// TestCountRangeParallel: the partition counts are gathered concurrently
// in simulated mode, with the same total as the immediate-mode count.
func TestCountRangeParallel(t *testing.T) {
	env := sim.NewEnv()
	c := New(Config{Nodes: 6, ReplicationFactor: 2, Seed: 9}, env)
	loadAndSplit(c, 600)

	wantTotal := c.NewClient(nil).CountRange(key(100), key(500))
	if wantTotal != 400 {
		t.Fatalf("immediate CountRange = %d, want 400", wantTotal)
	}

	var gotTotal int
	var ops int64
	env.Spawn(func(p *sim.Proc) {
		cl := c.NewClient(p)
		gotTotal = cl.CountRange(key(100), key(500))
		ops = cl.Ops()
	})
	env.Run(0)
	env.Stop()

	if gotTotal != wantTotal {
		t.Fatalf("simulated CountRange = %d, want %d", gotTotal, wantTotal)
	}
	parts := int64(len(c.Splits()) + 1)
	if ops < 2 || ops > parts {
		t.Fatalf("CountRange ops = %d, want in [2, %d]", ops, parts)
	}
}

// TestMultiGetDeduplicates: repeated keys are fetched once and fanned
// out to every requesting position, in both batched modes.
func TestMultiGetDeduplicates(t *testing.T) {
	c, cl := newImmediate(4, 2)
	for i := 0; i < 20; i++ {
		cl.Put(key(i), val(i))
	}
	keys := [][]byte{key(3), key(7), key(3), key(3), key(19), key(7), key(3)}
	for _, mode := range []string{"MultiGet", "MultiGetSeq"} {
		var out [][]byte
		if mode == "MultiGet" {
			out = cl.MultiGet(keys)
		} else {
			out = cl.MultiGetSeq(keys)
		}
		if len(out) != len(keys) {
			t.Fatalf("%s returned %d values for %d keys", mode, len(out), len(keys))
		}
		for i, k := range keys {
			var want []byte
			switch string(k) {
			case string(key(3)):
				want = val(3)
			case string(key(7)):
				want = val(7)
			case string(key(19)):
				want = val(19)
			}
			if !bytes.Equal(out[i], want) {
				t.Fatalf("%s: position %d = %q, want %q", mode, i, out[i], want)
			}
		}
	}
	_ = c
}

// TestMultiGetDedupSavesWork: on a single node, a batch of N copies of
// one key visits the node with ONE item, observable through simulated
// service time — a batch of duplicates must not cost more than the
// same batch deduplicated by hand.
func TestMultiGetDedupSavesWork(t *testing.T) {
	env := sim.NewEnv()
	c := New(Config{Nodes: 1, ReplicationFactor: 1, Seed: 21}, env)
	loader := c.NewClient(nil)
	loader.Put(key(1), bytes.Repeat([]byte("x"), 4096))
	loader.Put(key(2), bytes.Repeat([]byte("y"), 4096))

	dup := make([][]byte, 64)
	for i := range dup {
		dup[i] = key(1 + i%2)
	}
	var ops int64
	var out [][]byte
	env.Spawn(func(p *sim.Proc) {
		cl := c.NewClient(p)
		out = cl.MultiGet(dup)
		ops = cl.Ops()
	})
	env.Run(0)
	env.Stop()
	if ops != 1 {
		t.Fatalf("single-node MultiGet ops = %d, want 1", ops)
	}
	for i := range dup {
		if len(out[i]) != 4096 {
			t.Fatalf("position %d: got %d bytes, want 4096", i, len(out[i]))
		}
	}
}

// TestMultiGetMissingAndEmpty covers the dedup path's edge cases: keys
// that do not exist stay nil at every position, and empty/single-key
// batches use their fast paths.
func TestMultiGetMissingAndEmpty(t *testing.T) {
	_, cl := newImmediate(3, 1)
	cl.Put(key(5), val(5))
	if out := cl.MultiGet(nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d values", len(out))
	}
	out := cl.MultiGet([][]byte{key(5)})
	if !bytes.Equal(out[0], val(5)) {
		t.Fatalf("single-key fast path = %q", out[0])
	}
	out = cl.MultiGet([][]byte{key(9), key(5), key(9)})
	if out[0] != nil || out[2] != nil || !bytes.Equal(out[1], val(5)) {
		t.Fatalf("missing-key batch = %q %q %q", out[0], out[1], out[2])
	}
}

// TestScatterConcurrentClients drives many goroutines (one client each,
// immediate mode) through the range, count, and multi-get paths at once
// — the -race gate for the shared cluster structures behind the new
// scatter/dedup code.
func TestScatterConcurrentClients(t *testing.T) {
	c, loader := newImmediate(6, 2)
	for i := 0; i < 300; i++ {
		loader.Put(key(i), val(i))
	}
	c.Rebalance()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := c.NewClient(nil)
			for i := 0; i < 50; i++ {
				lo := (g*37 + i*13) % 250
				kvs := cl.GetRangeScatter(RangeRequest{Start: key(lo), End: key(lo + 40), Limit: 10})
				if len(kvs) != 10 {
					t.Errorf("goroutine %d: got %d kvs, want 10", g, len(kvs))
					return
				}
				if n := cl.CountRange(key(lo), key(lo+40)); n != 40 {
					t.Errorf("goroutine %d: count = %d, want 40", g, n)
					return
				}
				batch := [][]byte{key(lo), key(lo + 1), key(lo), key(lo + 2)}
				out := cl.MultiGet(batch)
				for j, k := range batch {
					if out[j] == nil {
						t.Errorf("goroutine %d: key %q missing", g, k)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
