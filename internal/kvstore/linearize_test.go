package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// casTransition is one accepted TestAndSet recorded by a racing writer:
// the swap moved key from expect ("" = absent) to update. Update values
// are unique across the run, so the accepted transitions of a
// linearizable register form exactly one chain from the initial state —
// any double-accept shows up as two transitions sharing an expect
// value, and any lost accepted swap breaks the chain or the final read.
type casTransition struct {
	key, expect, update string
}

// checkCASLinear replays the accepted transitions of one key as a
// serial model: starting from absent, each accepted swap must consume
// the exact state the previous one produced, every acceptance must be
// part of the chain, and the store's final value must be the chain's
// tail.
func checkCASLinear(t *testing.T, key string, accepted []casTransition, finalVal string, finalOK bool) {
	t.Helper()
	chain := make(map[string]casTransition, len(accepted))
	for _, tr := range accepted {
		if prev, dup := chain[tr.expect]; dup {
			t.Fatalf("key %s: double accept — swaps to %q and %q both accepted from state %q",
				key, prev.update, tr.update, tr.expect)
		}
		chain[tr.expect] = tr
	}
	cur := "" // keys start absent
	steps := 0
	for {
		tr, ok := chain[cur]
		if !ok {
			break
		}
		cur = tr.update
		steps++
	}
	if steps != len(chain) {
		t.Fatalf("key %s: %d accepted swaps but the serial chain explains only %d — an accept observed a state no serial order produces",
			key, len(chain), steps)
	}
	if cur == "" {
		if finalOK {
			t.Fatalf("key %s: chain ends absent but store holds %q", key, finalVal)
		}
		return
	}
	if !finalOK || finalVal != cur {
		t.Fatalf("key %s: lost accepted swap — chain ends at %q but store holds %q (present=%v)",
			key, cur, finalVal, finalOK)
	}
}

// TestTestAndSetLinearizableAcrossRebalance is the tentpole proof:
// writers race TestAndSet on a handful of shared keys — each swap
// expecting the value it just read, installing a globally unique one —
// while the cluster runs repeated chunked rebalances and churn writes
// keep the split points moving. The serial model checker then confirms
// every outcome: exactly one accepted swap per state (no double-accepts
// across the epoch flip, the anomaly PR 3 documented) and a final value
// equal to the chain's tail (no accepted swap lost to a copy or a
// retired owner).
func TestTestAndSetLinearizableAcrossRebalance(t *testing.T) {
	c := New(Config{Nodes: 8, ReplicationFactor: 2, Seed: 11, MoveChunkKeys: 64}, nil)
	loader := c.NewClient(nil)
	for i := 0; i < 3000; i++ {
		loader.Put(key(i), val(i))
	}
	c.Rebalance() // initial spread

	const writers = 8
	const casKeys = 5
	casKey := func(i int) []byte { return []byte(fmt.Sprintf("cas-shared-%02d", i)) }

	var mu sync.Mutex
	var accepted []casTransition
	var stop, totalOps atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := c.NewClient(nil)
			rnd := rand.New(rand.NewSource(int64(g)*104729 + 1))
			for i := 0; stop.Load() == 0; i++ {
				totalOps.Add(1)
				k := casKey(rnd.Intn(casKeys))
				cur, _ := cl.Get(k) // nil = absent, the initial state
				up := []byte(fmt.Sprintf("w%02d-%07d", g, i))
				swapped, err := cl.TestAndSet(k, cur, up)
				if err != nil {
					t.Errorf("writer %d: TestAndSet: %v", g, err)
					return
				}
				if swapped {
					mu.Lock()
					accepted = append(accepted, casTransition{string(k), string(cur), string(up)})
					mu.Unlock()
				}
				// Churn the bulk keyspace so every rebalance recomputes
				// genuinely different splits and the shared keys keep
				// changing owners.
				ck := key(rnd.Intn(3000))
				if rnd.Intn(3) == 0 {
					cl.Delete(ck)
				} else {
					cl.Put(ck, val(i))
				}
			}
		}(g)
	}

	waitOps := func(target int64) {
		for totalOps.Load() < target {
			time.Sleep(100 * time.Microsecond)
		}
	}
	waitOps(500)
	const rebalances = 7 // the issue demands >= 6 under racing conditional writers
	for i := 0; i < rebalances; i++ {
		c.Rebalance()
		waitOps(totalOps.Load() + 400)
	}
	stop.Store(1)
	wg.Wait()

	if got := c.Epoch(); got != int64(2*(rebalances+1)) {
		t.Fatalf("epoch = %d after %d rebalances, want %d", got, rebalances+1, 2*(rebalances+1))
	}
	byKey := make(map[string][]casTransition)
	for _, tr := range accepted {
		byKey[tr.key] = append(byKey[tr.key], tr)
	}
	audit := c.NewClient(nil)
	for i := 0; i < casKeys; i++ {
		k := casKey(i)
		v, ok := audit.Get(k)
		checkCASLinear(t, string(k), byKey[string(k)], string(v), ok)
	}
	t.Logf("%d accepted swaps over %d ops, %d fence rejects, epoch %d",
		len(accepted), totalOps.Load(), c.FenceRejects(), c.Epoch())
}

// TestTestAndSetEpochFencing pins the node-level fence: after a
// rebalance reshapes ownership, a conditional op claiming a stale epoch
// is rejected with ErrFenced by a primary that *gained* its range, any
// node without a covering lease rejects outright — the decision is
// never made — and a primary whose lease already covered the whole
// range keeps its old epoch, so stale claims there (same serialization
// point either way) are not spuriously fenced. The public TestAndSet
// absorbs fences by retrying under the fresh table.
func TestTestAndSetEpochFencing(t *testing.T) {
	c, cl := newImmediate(4, 2)
	for i := 0; i < 200; i++ {
		cl.Put(key(i), val(i))
	}
	c.Rebalance() // epoch 0 -> 2: partitions split; nodes 1..3 gain leases

	rt := c.routing.Load()
	// A key in a partition whose primary is not node 0: that primary
	// held no lease before the flip, so its lease epoch is rt.epoch.
	ki := -1
	for i := 0; i < 200; i++ {
		if rt.partitionOf(key(i)) != 0 {
			ki = i
			break
		}
	}
	if ki < 0 {
		t.Fatal("rebalance produced a single partition; cannot probe a gained lease")
	}
	k := key(ki)
	ids := c.replicaNodes(rt.partitionOf(k))
	primary := c.nodes[ids[0]]

	// Stale claim at a primary that gained the range: fenced, not
	// decided.
	_, ok, err := primary.testAndSet(k, 0, nil, []byte("x"), 1)
	var fenced *ErrFenced
	if ok || !errors.As(err, &fenced) {
		t.Fatalf("stale-epoch testAndSet = (%v, %v), want fenced", ok, err)
	}
	if !fenced.Owner || fenced.Need != rt.epoch {
		t.Fatalf("fence = %+v, want owner with lease epoch %d", fenced, rt.epoch)
	}
	// Node 0 was primary of everything at epoch 0 and kept partition 0,
	// a sub-range of its old lease: the epoch is preserved, so an
	// in-flight conditional op still claiming the pre-flip table is not
	// spuriously fenced — node 0 serializes those keys either way.
	k0 := key(0)
	if p0 := rt.partitionOf(k0); c.replicaNodes(p0)[0] == 0 {
		if got := c.nodes[0].leases.Load().find(k0); got == nil || got.epoch != 0 {
			t.Fatalf("node 0 lease for retained sub-range = %+v, want preserved epoch 0", got)
		}
		_, ok, err := c.nodes[0].testAndSet(k0, 0, val(0), val(0), 1)
		if !ok || err != nil {
			t.Fatalf("old-epoch claim on retained range = (%v, %v), want decided", ok, err)
		}
	}
	// A non-primary replica holds no lease for the key at all.
	_, ok, err = c.nodes[ids[1]].testAndSet(k, rt.epoch, nil, []byte("x"), 1)
	if ok || err == nil || !errors.As(err, &fenced) || fenced.Owner {
		t.Fatalf("replica testAndSet = (%v, %v), want ownerless fence", ok, err)
	}
	if c.FenceRejects() != 0 {
		t.Fatalf("node-level probes must not count client retries, got %d", c.FenceRejects())
	}

	// A current claim decides; the value was untouched by the fenced
	// attempts above.
	if got, _ := cl.Get(k); !bytes.Equal(got, val(ki)) {
		t.Fatalf("fenced attempts mutated the store: %q", got)
	}
	if swapped, err := cl.TestAndSet(k, val(ki), []byte("swapped")); err != nil || !swapped {
		t.Fatalf("current-epoch TestAndSet = (%v, %v), want accepted", swapped, err)
	}
	if got, _ := cl.Get(k); !bytes.Equal(got, []byte("swapped")) {
		t.Fatalf("accepted swap not visible: %q", got)
	}
}

// TestRebalanceChunkedCopy proves the copy really proceeds in bounded
// windows (the hook sees chunk boundaries) and that chunking loses
// nothing under a concurrent writer fleet.
func TestRebalanceChunkedCopy(t *testing.T) {
	c := New(Config{Nodes: 6, ReplicationFactor: 2, Seed: 3, MoveChunkKeys: 16}, nil)
	cl := c.NewClient(nil)
	for i := 0; i < 1500; i++ {
		cl.Put(key(i), val(i))
	}
	var chunks atomic.Int64
	c.chunkHook = func(mv *move, next []byte) { chunks.Add(1) }
	c.Rebalance()
	if chunks.Load() == 0 {
		t.Fatal("no chunk boundaries observed with MoveChunkKeys=16 over 1500 keys")
	}

	// Writer fleet across further chunked rebalances.
	var stop atomic.Int64
	errs := make(chan error, 4)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w := c.NewClient(nil)
			model := make(map[string][]byte)
			mykey := func(i int) []byte { return []byte(fmt.Sprintf("cw%02d-%05d", g, i)) }
			for i := 0; stop.Load() == 0; i++ {
				k := mykey(i % 150)
				v := []byte(fmt.Sprintf("v-%06d", i))
				if i%5 == 4 {
					w.Delete(k)
					delete(model, string(k))
				} else {
					w.Put(k, v)
					model[string(k)] = v
				}
			}
			for ks, want := range model {
				if got, ok := w.Get([]byte(ks)); !ok || !bytes.Equal(got, want) {
					select {
					case errs <- fmt.Errorf("writer %d: key %q = %q (present=%v), want %q", g, ks, got, ok, want):
					default:
					}
					return
				}
			}
		}(g)
	}
	for i := 0; i < 4; i++ {
		c.Rebalance()
	}
	stop.Store(1)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		if got, ok := cl.Get(key(i)); !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d = %q (present=%v) after chunked rebalances", i, got, ok)
		}
	}
}

// TestRebalanceDeleteInEarlierChunkNoResurrect deletes keys from chunks
// whose copy has already landed, while later chunks of the same move are
// still copying. A retired chunk records no tombstone — the delete must
// stay deleted because it removes the key from the destinations
// directly and nothing rescans a finished chunk. Every replica of every
// node is checked, not just the routed read path.
func TestRebalanceDeleteInEarlierChunkNoResurrect(t *testing.T) {
	c := New(Config{Nodes: 4, ReplicationFactor: 2, Seed: 9, MoveChunkKeys: 8}, nil)
	cl := c.NewClient(nil)
	const n = 400
	for i := 0; i < n; i++ {
		cl.Put(key(i), val(i))
	}
	gone := make(map[int]bool)
	// The hook runs on the rebalance goroutine between chunks: delete one
	// still-live key from the part of the move the copy has finished.
	hooker := c.NewClient(nil)
	c.chunkHook = func(mv *move, next []byte) {
		for i := 0; i < n; i++ {
			if gone[i] {
				continue
			}
			k := key(i)
			if mv.covers(k) && bytes.Compare(k, next) < 0 {
				hooker.Delete(k)
				gone[i] = true
				return
			}
		}
	}
	c.Rebalance()
	if len(gone) == 0 {
		t.Fatal("hook never found a copied key to delete — chunking did not engage")
	}
	for i := 0; i < n; i++ {
		got, ok := cl.Get(key(i))
		if gone[i] {
			if ok {
				t.Fatalf("deleted key %d resurrected by a later chunk: %q", i, got)
			}
			for id, nd := range c.nodes {
				if v, held := nd.get(key(i)); held {
					t.Fatalf("deleted key %d survives on node %d as %q", i, id, v)
				}
			}
			continue
		}
		if !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("key %d = %q (present=%v) after chunked rebalance", i, got, ok)
		}
	}
}
