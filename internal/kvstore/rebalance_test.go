package kvstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"piql/internal/sim"
)

// TestRebalanceUnderTraffic is the online-rebalance proof: writer
// goroutines put/overwrite/delete/test-and-set their own disjoint key
// sets — each checking read-your-writes after every operation — while
// the main goroutine runs rebalances back to back. Run under -race.
// Zero failed reads, zero lost keys, zero resurrected deletes.
func TestRebalanceUnderTraffic(t *testing.T) {
	c := New(Config{Nodes: 8, ReplicationFactor: 2, Seed: 99}, nil)
	loader := c.NewClient(nil)
	for i := 0; i < 2000; i++ {
		loader.Put(key(i), val(i))
	}
	c.Rebalance() // initial spread, same as the harness

	const writers = 8
	var stop, totalOps atomic.Int64
	errs := make(chan error, writers)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := c.NewClient(nil)
			rnd := rand.New(rand.NewSource(int64(g) * 7919))
			model := make(map[string][]byte) // this goroutine's expected state
			fail := func(format string, args ...any) {
				select {
				case errs <- fmt.Errorf("writer %d: "+format, append([]any{g}, args...)...):
				default:
				}
			}
			mykey := func(i int) []byte { return []byte(fmt.Sprintf("w%02d-key-%05d", g, i)) }
			for i := 0; stop.Load() == 0; i++ {
				totalOps.Add(1)
				k := mykey(rnd.Intn(200))
				switch rnd.Intn(4) {
				case 0, 1: // put (fresh or overwrite)
					v := []byte(fmt.Sprintf("w%02d-val-%06d", g, i))
					cl.Put(k, v)
					model[string(k)] = v
				case 2: // delete
					cl.Delete(k)
					delete(model, string(k))
				case 3: // insert-if-absent
					v := []byte(fmt.Sprintf("w%02d-tas-%06d", g, i))
					_, exists := model[string(k)]
					ok, err := cl.TestAndSet(k, nil, v)
					if err != nil {
						fail("TestAndSet(%q): %v", k, err)
						return
					}
					if ok != !exists {
						fail("TestAndSet(%q) = %v, model says exists=%v", k, ok, exists)
						return
					}
					if !exists {
						model[string(k)] = v
					}
				}
				// Read-your-writes after every op: the routing table may be
				// mid-move or freshly flipped, but reads must never fail.
				chk := mykey(rnd.Intn(200))
				got, ok := cl.Get(chk)
				want, exists := model[string(chk)]
				if ok != exists {
					fail("Get(%q) present=%v, model says %v (op %d)", chk, ok, exists, i)
					return
				}
				if exists && !bytes.Equal(got, want) {
					fail("Get(%q) = %q, want %q (op %d)", chk, got, want, i)
					return
				}
			}
			// Final per-writer audit through a fresh client: every model key
			// readable with the right value, every deleted key still gone,
			// and a range scan over the writer's prefix sees exactly the
			// model (no lost keys, no resurrections).
			audit := c.NewClient(nil)
			for i := 0; i < 200; i++ {
				k := mykey(i)
				got, ok := audit.Get(k)
				want, exists := model[string(k)]
				if ok != exists {
					fail("audit Get(%q) present=%v, model says %v", k, ok, exists)
					return
				}
				if exists && !bytes.Equal(got, want) {
					fail("audit Get(%q) = %q, want %q", k, got, want)
					return
				}
			}
		}(g)
	}

	// Pace a fixed number of rebalances against observed write progress,
	// so every rebalance genuinely overlaps traffic.
	const rebalances = 6
	waitOps := func(target int64) {
		for totalOps.Load() < target {
			time.Sleep(100 * time.Microsecond)
		}
	}
	waitOps(500)
	for i := 0; i < rebalances; i++ {
		c.Rebalance()
		waitOps(totalOps.Load() + 300)
	}
	stop.Store(1)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Post-drain the store is clean: replicas hold only owned ranges, so
	// a final rebalance is a no-op for item counts.
	items := c.TotalItems()
	c.Rebalance()
	if got := c.TotalItems(); got != items {
		t.Fatalf("item count changed across quiescent rebalance: %d -> %d", items, got)
	}
}

// TestRebalanceRangeReadsUnderTraffic runs bounded range scans over a
// writer's private prefix while rebalances run: the scan must always
// return exactly the writer's current rows, in order — partitions being
// mid-move must never hide or duplicate items.
func TestRebalanceRangeReadsUnderTraffic(t *testing.T) {
	c := New(Config{Nodes: 6, ReplicationFactor: 2, Seed: 4}, nil)
	cl := c.NewClient(nil)
	for i := 0; i < 1200; i++ {
		cl.Put(key(i), val(i))
	}
	c.Rebalance()

	stop := make(chan struct{})
	var scanErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		scanner := c.NewClient(nil)
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			start, end := 100+(n%900), 100+(n%900)+100
			kvs := scanner.GetRange(RangeRequest{Start: key(start), End: key(end)})
			if len(kvs) != 100 {
				scanErr = fmt.Errorf("scan [%d,%d) returned %d items, want 100", start, end, len(kvs))
				return
			}
			for i, kv := range kvs {
				if !bytes.Equal(kv.Key, key(start+i)) {
					scanErr = fmt.Errorf("scan item %d = %q, want %q", i, kv.Key, key(start+i))
					return
				}
			}
			if got := scanner.CountRange(key(start), key(end)); got != 100 {
				scanErr = fmt.Errorf("count [%d,%d) = %d, want 100", start, end, got)
				return
			}
		}
	}()
	for i := 0; i < 10; i++ {
		c.Rebalance()
	}
	close(stop)
	wg.Wait()
	if scanErr != nil {
		t.Fatal(scanErr)
	}
}

// TestRebalanceAsyncReplicationPrefersPrimary regression-tests the
// stale-replica resurrection: under AsyncReplication a lagging replica
// still holds an old value when Rebalance collects items. The old
// collector kept the first-seen node's value — which could be the
// lagging replica's — and wrote it over the primary's fresh value
// permanently (the replica catch-up only repaired the replica,
// leaving the copies diverged forever). The fix collects from each
// partition's primary, the authoritative copy.
func TestRebalanceAsyncReplicationPrefersPrimary(t *testing.T) {
	env := sim.NewEnv()
	lag := 500 * time.Millisecond
	c := New(Config{
		Nodes: 2, ReplicationFactor: 2, Seed: 21,
		AsyncReplication: true, ReplicaLag: lag,
	}, env)

	// Immediate-mode load + rebalance: two partitions. Partition 1's
	// primary is node 1 and its (potentially lagging) replica is node 0 —
	// the node order the old collector scanned first.
	loader := c.NewClient(nil)
	for i := 0; i < 100; i++ {
		loader.Put(key(i), val(i))
	}
	c.Rebalance()
	k := key(99)
	if p := c.routing.Load().partitionOf(k); p != 1 {
		t.Fatalf("key %q in partition %d, want 1", k, p)
	}

	fresh := []byte("fresh-value")
	env.Spawn(func(p *sim.Proc) {
		cl := c.NewClient(p)
		// The primary (node 1) gets the new value now; node 0 catches up
		// only after ReplicaLag.
		cl.Put(k, fresh)
		// Rebalance inside the lag window: node 0 still holds val(99).
		c.Rebalance()
		// The primary's value must have won the collection. (Node 0, a
		// lagging replica, may legitimately stay stale until the catch-up
		// fires — that is ordinary async-replication lag.)
		primary := c.replicaNodes(c.routing.Load().partitionOf(k))[0]
		if v, ok := c.nodes[primary].get(k); !ok || !bytes.Equal(v, fresh) {
			panic(fmt.Sprintf("primary node %d has %q after rebalance, want %q", primary, v, fresh))
		}
		p.Sleep(2 * lag)
	})
	env.Run(0)
	env.Stop()

	// After the catch-up window every copy has converged on the fresh
	// value; with the old collector the primary kept the stale one
	// forever.
	for id := 0; id < 2; id++ {
		v, ok := c.nodes[id].get(k)
		if !ok || !bytes.Equal(v, fresh) {
			t.Fatalf("node %d has %q (present=%v) after convergence, want %q", id, v, ok, fresh)
		}
	}
}

// TestRebalanceEpochAdvances pins the epoch protocol: two publishes per
// rebalance (move table, then flip), and the quiescence requirement is
// gone — Rebalance while clients exist is just another operation.
func TestRebalanceEpochAdvances(t *testing.T) {
	c, cl := newImmediate(4, 2)
	for i := 0; i < 100; i++ {
		cl.Put(key(i), val(i))
	}
	if c.Epoch() != 0 {
		t.Fatalf("fresh cluster epoch = %d", c.Epoch())
	}
	c.Rebalance()
	if c.Epoch() != 2 {
		t.Fatalf("epoch after one rebalance = %d, want 2", c.Epoch())
	}
	c.Rebalance()
	if c.Epoch() != 4 {
		t.Fatalf("epoch after two rebalances = %d, want 4", c.Epoch())
	}
	for i := 0; i < 100; i++ {
		if v, ok := cl.Get(key(i)); !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("key %d lost across rebalances", i)
		}
	}
}
