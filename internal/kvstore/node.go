package kvstore

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"piql/internal/btree"
	"piql/internal/sim"
)

// node is one simulated storage server: an ordered in-memory record store
// plus a bounded-capacity request queue and a service-time sampler.
//
// Every value in the tree is a version envelope (see hlc.go): mutations
// go through applyIfNewer, which keeps whichever envelope carries the
// newest version, and deletes are versioned tombstones rather than
// removals — the pair of rules that makes replicas converge no matter
// what order writes arrive in. Reads strip the envelope and treat
// tombstones as absence.
type node struct {
	id int

	mu        sync.Mutex
	tree      *btree.Tree
	rng       *rand.Rand // service-time sampling; guarded by mu
	tombs     int        // live tombstone count; guarded by mu
	lastSweep time.Time  // last inline tombstone sweep; guarded by mu

	// hlc is this node's own hybrid logical clock. It observes the
	// timestamp of every envelope the node applies (observe-on-apply),
	// so a node that has seen a write can never issue a stamp that
	// loses to it — the property that keeps per-key ordering intact
	// when a replica is promoted to primary after a crash. Per-node
	// clocks replaced the original shared cluster clock when nodes
	// learned to fail: a crashed node's clock must not be consultable
	// by live traffic.
	hlc   *HLC
	gcAge time.Duration // tombstones older than this are sweepable

	// down marks the node unreachable (killed/partitioned bits, see
	// failure.go). Clients check it before every contact; writes
	// targeting a down node queue as catch-ups instead. downSince is
	// the wall-clock start of the outage — the lease-expiry countdown —
	// and is guarded by the cluster's faultMu.
	down      atomic.Int32
	downSince time.Time

	// autoGC enables the inline threshold sweep. Only immediate-mode
	// clusters set it: the sweep's age cutoff is wall-clock while a
	// simulated environment delivers replica catch-ups in virtual time,
	// so a long-running sim could sweep a tombstone before an older
	// write's catch-up event fires and let it resurrect the key.
	// Simulated clusters keep every tombstone until an explicit
	// quiesced Cluster.GCTombstones.
	autoGC bool

	// leases are the key ranges this node serves as authoritative primary
	// for conditional operations, installed by Rebalance at each flip
	// (see fence.go). Swapped whole through the atomic pointer, so the
	// fencing check never takes a lock Rebalance also needs.
	leases atomic.Pointer[leaseTable]

	queue    *sim.Resource // request-processing capacity (nil in immediate mode)
	slowdown float64       // failure injection: service-time multiplier
}

// tombstoneSweepThreshold is how many tombstones a node accumulates
// before an apply triggers an inline sweep of the expired ones, bounding
// tombstone memory without a background task.
const tombstoneSweepThreshold = 4096

func newNode(id int, seed int64, env *sim.Env, servers int, gcAge time.Duration) *node {
	n := &node{
		id:       id,
		tree:     btree.New(),
		rng:      rand.New(rand.NewSource(seed ^ int64(id)*0x7F4A7C159E3779B9)),
		hlc:      &HLC{},
		gcAge:    gcAge,
		autoGC:   env == nil,
		slowdown: 1,
	}
	n.leases.Store(emptyLeases)
	if env != nil {
		n.queue = env.NewResource(servers)
	}
	return n
}

// KV is a key/value pair returned by range reads.
type KV struct {
	Key   []byte
	Value []byte
}

// --- storage primitives (no latency; callers add simulation cost) ---

// get returns the live value under key. A tombstone reads as absence.
func (n *node) get(key []byte) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	env, ok := n.tree.Get(key)
	if !ok || envIsTombstone(env) {
		return nil, false
	}
	return envValue(env), true
}

// getVersioned is get plus the stored version. A tombstone reads as
// absent but still reports its version (the zero Version means the key
// was never written).
func (n *node) getVersioned(key []byte) ([]byte, Version, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	env, ok := n.tree.Get(key)
	if !ok {
		return nil, Version{}, false
	}
	if envIsTombstone(env) {
		return nil, envVersion(env), false
	}
	return envValue(env), envVersion(env), true
}

// getRaw returns the stored envelope, tombstones included.
func (n *node) getRaw(key []byte) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tree.Get(key)
}

// applyIfNewer stores the envelope unless the node already holds a newer
// version for key, reporting whether it applied. This is the only write
// primitive: because the comparison is on versions, applying the same
// set of envelopes in any order on every replica yields the same final
// state — the convergence invariant.
func (n *node) applyIfNewer(key, env []byte) bool {
	// A malformed envelope is rejected rather than parsed by force: the
	// accessors below index into the header, so without this guard a
	// truncated envelope would crash the node mid-write. Every replica
	// makes the same decision, so convergence is unaffected.
	if _, _, _, err := parseEnvelope(env); err != nil {
		return false
	}
	// Observe-on-apply: after this envelope lands, every stamp this
	// node issues is strictly newer than it.
	n.hlc.Observe(envVersion(env).TS)
	n.mu.Lock()
	defer n.mu.Unlock()
	cur, ok := n.tree.Get(key)
	if ok && !envVersion(env).After(envVersion(cur)) {
		return false
	}
	n.storeLocked(key, env, cur, ok)
	return true
}

// storeLocked writes env over the current envelope (cur/ok from a prior
// Get), maintaining the tombstone count and triggering the inline sweep
// when tombstones pile up. The sweep is rate-limited to one per gcAge
// per node: a delete burst inside one grace window has nothing
// collectible yet, and re-scanning the whole tree under mu on every
// further delete would turn the burst quadratic. Caller holds mu.
func (n *node) storeLocked(key, env, cur []byte, ok bool) {
	n.tree.Put(key, env)
	wasTomb := ok && envIsTombstone(cur)
	isTomb := envIsTombstone(env)
	if isTomb && !wasTomb {
		n.tombs++
		if n.autoGC && n.tombs > tombstoneSweepThreshold && time.Since(n.lastSweep) >= n.gcAge {
			n.lastSweep = time.Now()
			n.sweepTombstonesLocked(wallHLC(n.lastSweep.Add(-n.gcAge)))
		}
	} else if !isTomb && wasTomb {
		n.tombs--
	}
}

// purge hard-removes key, envelope and all. Only for data the node does
// not own (rebalance cleanup): purging an owned key would forget its
// version and let an older lagged write resurrect it.
func (n *node) purge(key []byte) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	env, ok := n.tree.Get(key)
	if !ok {
		return false
	}
	if envIsTombstone(env) {
		n.tombs--
	}
	return n.tree.Delete(key)
}

// sweepTombstonesLocked removes tombstones stamped before cutoff,
// returning how many it collected. Caller holds mu.
//
// Dropping a tombstone forgets the delete's version, so the cutoff must
// be old enough that no yet-undelivered write could predate it — the
// grace period (gcAge) has to exceed replica lag plus in-flight
// operation latency. That bounded-staleness window is the standard
// tombstone-GC tradeoff; within it, convergence is unconditional.
func (n *node) sweepTombstonesLocked(cutoff int64) int {
	var dead [][]byte
	n.tree.Ascend(nil, nil, func(it btree.Item) bool {
		if envIsTombstone(it.Value) && envVersion(it.Value).TS < cutoff {
			dead = append(dead, it.Key)
		}
		return true
	})
	for _, k := range dead {
		n.tree.Delete(k)
	}
	n.tombs -= len(dead)
	return len(dead)
}

// gcTombstones sweeps tombstones stamped before cutoff.
func (n *node) gcTombstones(cutoff int64) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sweepTombstonesLocked(cutoff)
}

// testAndSet atomically replaces the value under key with update when the
// current live value matches expect (nil expect means "key must be
// absent"). A nil update deletes the key on success. On acceptance it
// returns the envelope it stored — stamped from the node's own clock
// *after* reading the current value, so the accepted swap's version is
// newer
// than every write it observed and its propagation (applyIfNewer on
// replicas and move destinations) can never be clobbered by an older
// plain Put that happens to arrive later.
//
// The decision is epoch-fenced: it runs only when this node holds the
// authoritative-primary lease for key's range and the caller's claimed
// routing epoch is not stale for it. Otherwise the swap is not decided
// at all and a *ErrFenced is returned — the client retries under a
// fresh routing table. This is what keeps two racing swaps on the same
// key from both being accepted across a rebalance flip: the old primary
// is fenced before the new one's lease becomes reachable.
func (n *node) testAndSet(key []byte, claimedEpoch int64, expect, update []byte, client int64) ([]byte, bool, error) {
	if st := n.down.Load(); st != 0 {
		// A dead node decides nothing. Clients check reachability before
		// contact; this guard makes the refusal typed and node-side too.
		return nil, false, &ErrNodeDown{Node: n.id, Partitioned: st&nodePartitioned != 0}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.leases.Load().find(key)
	if l == nil {
		return nil, false, &ErrFenced{Node: n.id, Claimed: claimedEpoch}
	}
	if claimedEpoch < l.epoch {
		return nil, false, &ErrFenced{Node: n.id, Claimed: claimedEpoch, Need: l.epoch, Owner: true}
	}
	curEnv, ok := n.tree.Get(key)
	live := ok && !envIsTombstone(curEnv)
	if expect == nil {
		if live {
			return nil, false, nil
		}
	} else {
		if !live || !bytes.Equal(envValue(curEnv), expect) {
			return nil, false, nil
		}
	}
	ver := Version{TS: n.hlc.Next(), Client: client}
	env := makeEnvelope(ver, update == nil, update)
	n.storeLocked(key, env, curEnv, ok)
	return env, true, nil
}

// scan returns up to limit live items in [start, end), ascending or
// descending, envelopes stripped and tombstones skipped. limit <= 0
// means unlimited.
func (n *node) scan(start, end []byte, limit int, reverse bool) []KV {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []KV
	visit := func(it btree.Item) bool {
		if envIsTombstone(it.Value) {
			return true
		}
		out = append(out, KV{Key: it.Key, Value: envValue(it.Value)})
		return limit <= 0 || len(out) < limit
	}
	if reverse {
		n.tree.Descend(start, end, visit)
	} else {
		n.tree.Ascend(start, end, visit)
	}
	return out
}

// scanRaw returns up to limit stored envelopes in [start, end),
// tombstones included — the rebalance copy's view, which must carry
// versions (and deletions) to the destination nodes.
func (n *node) scanRaw(start, end []byte, limit int) []KV {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []KV
	n.tree.Ascend(start, end, func(it btree.Item) bool {
		out = append(out, KV{Key: it.Key, Value: it.Value})
		return limit <= 0 || len(out) < limit
	})
	return out
}

// count returns the number of live items in [start, end).
func (n *node) count(start, end []byte) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	n.tree.Ascend(start, end, func(it btree.Item) bool {
		if !envIsTombstone(it.Value) {
			total++
		}
		return true
	})
	return total
}

// size returns the number of live items the node stores.
func (n *node) size() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tree.Len() - n.tombs
}

// sampleService draws a service time for a request (items tuples, payload
// bytes) under the node's current volatility and slowdown.
func (n *node) sampleService(cfg LatencyConfig, seed int64, now time.Duration, items, bytes int) time.Duration {
	n.mu.Lock()
	d := cfg.serviceTime(n.rng, items, bytes)
	slow := n.slowdown
	n.mu.Unlock()
	v := cfg.volatility(seed, n.id, now)
	return time.Duration(float64(d) * v * slow)
}
