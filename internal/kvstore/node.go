package kvstore

import (
	"bytes"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"piql/internal/btree"
	"piql/internal/sim"
)

// node is one simulated storage server: an ordered in-memory record store
// plus a bounded-capacity request queue and a service-time sampler.
type node struct {
	id int

	mu   sync.Mutex
	tree *btree.Tree
	rng  *rand.Rand // service-time sampling; guarded by mu

	// leases are the key ranges this node serves as authoritative primary
	// for conditional operations, installed by Rebalance at each flip
	// (see fence.go). Swapped whole through the atomic pointer, so the
	// fencing check never takes a lock Rebalance also needs.
	leases atomic.Pointer[leaseTable]

	queue    *sim.Resource // request-processing capacity (nil in immediate mode)
	slowdown float64       // failure injection: service-time multiplier
}

func newNode(id int, seed int64, env *sim.Env, servers int) *node {
	n := &node{
		id:       id,
		tree:     btree.New(),
		rng:      rand.New(rand.NewSource(seed ^ int64(id)*0x7F4A7C159E3779B9)),
		slowdown: 1,
	}
	n.leases.Store(emptyLeases)
	if env != nil {
		n.queue = env.NewResource(servers)
	}
	return n
}

// KV is a key/value pair returned by range reads.
type KV struct {
	Key   []byte
	Value []byte
}

// --- storage primitives (no latency; callers add simulation cost) ---

func (n *node) get(key []byte) ([]byte, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tree.Get(key)
}

func (n *node) put(key, val []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.tree.Put(key, val)
}

// putIfAbsent stores val only when key is not present, reporting whether
// it wrote. The rebalance copy uses it so a double-written (fresher)
// value is never clobbered by the copy's older snapshot.
func (n *node) putIfAbsent(key, val []byte) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.tree.Get(key); ok {
		return false
	}
	n.tree.Put(key, val)
	return true
}

func (n *node) delete(key []byte) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tree.Delete(key)
}

// testAndSet atomically replaces the value under key with update when the
// current value matches expect (nil expect means "key must be absent").
// A nil update deletes the key on success.
//
// The decision is epoch-fenced: it runs only when this node holds the
// authoritative-primary lease for key's range and the caller's claimed
// routing epoch is not stale for it. Otherwise the swap is not decided
// at all and a *ErrFenced is returned — the client retries under a
// fresh routing table. This is what keeps two racing swaps on the same
// key from both being accepted across a rebalance flip: the old primary
// is fenced before the new one's lease becomes reachable.
func (n *node) testAndSet(key []byte, claimedEpoch int64, expect, update []byte) (bool, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	l := n.leases.Load().find(key)
	if l == nil {
		return false, &ErrFenced{Node: n.id, Claimed: claimedEpoch}
	}
	if claimedEpoch < l.epoch {
		return false, &ErrFenced{Node: n.id, Claimed: claimedEpoch, Need: l.epoch, Owner: true}
	}
	cur, ok := n.tree.Get(key)
	if expect == nil {
		if ok {
			return false, nil
		}
	} else {
		if !ok || !bytes.Equal(cur, expect) {
			return false, nil
		}
	}
	if update == nil {
		n.tree.Delete(key)
	} else {
		n.tree.Put(key, update)
	}
	return true, nil
}

// scan returns up to limit items in [start, end), ascending or descending.
// limit <= 0 means unlimited.
func (n *node) scan(start, end []byte, limit int, reverse bool) []KV {
	n.mu.Lock()
	defer n.mu.Unlock()
	var out []KV
	visit := func(it btree.Item) bool {
		out = append(out, KV{Key: it.Key, Value: it.Value})
		return limit <= 0 || len(out) < limit
	}
	if reverse {
		n.tree.Descend(start, end, visit)
	} else {
		n.tree.Ascend(start, end, visit)
	}
	return out
}

func (n *node) count(start, end []byte) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tree.Count(start, end)
}

func (n *node) size() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tree.Len()
}

// sampleService draws a service time for a request (items tuples, payload
// bytes) under the node's current volatility and slowdown.
func (n *node) sampleService(cfg LatencyConfig, seed int64, now time.Duration, items, bytes int) time.Duration {
	n.mu.Lock()
	d := cfg.serviceTime(n.rng, items, bytes)
	slow := n.slowdown
	n.mu.Unlock()
	v := cfg.volatility(seed, n.id, now)
	return time.Duration(float64(d) * v * slow)
}
