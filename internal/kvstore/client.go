package kvstore

import (
	"bytes"
	"math/rand"
	"sort"
	"time"

	"piql/internal/sim"
)

// Client is a per-process handle to the cluster. In simulated mode each
// operation advances the owning process's virtual clock by a network
// round trip plus queueing and service time at the target node; in
// immediate mode operations are instantaneous.
//
// A Client is not safe for concurrent use — its op counter and RNG are
// unsynchronized by design, keeping the per-operation hot path free of
// atomics. Spawn one Client per goroutine/session (the Parallel method
// creates children automatically); the Cluster behind them is safe for
// any number of concurrent Clients.
type Client struct {
	c    *Cluster
	proc *sim.Proc  // nil in immediate mode
	rng  *rand.Rand // replica choice + RTT sampling

	ops    int64 // operations issued through this client (and its children)
	parent *Client
}

// NewClient creates a client. proc may be nil for immediate mode.
func (c *Cluster) NewClient(proc *sim.Proc) *Client {
	seq := c.clientSeq.Add(1)
	return &Client{
		c:    c,
		proc: proc,
		rng:  rand.New(rand.NewSource(c.cfg.Seed ^ seq*0x5DEECE66D)),
	}
}

// Ops returns the number of storage operations issued through this client
// since creation (including operations issued by Parallel children).
func (cl *Client) Ops() int64 { return cl.ops }

// ResetOps zeroes the operation counter and returns the previous value.
func (cl *Client) ResetOps() int64 {
	v := cl.ops
	cl.ops = 0
	return v
}

// Simulated reports whether the client runs on a virtual-time process.
// Simulated clients are cooperative — one process runs at a time — so
// code holding the scheduler token must never block on channels or
// locks another simulated process needs to make progress.
func (cl *Client) Simulated() bool { return cl.proc != nil }

// Now returns the process's virtual time, or 0 in immediate mode.
func (cl *Client) Now() time.Duration {
	if cl.proc == nil {
		return 0
	}
	return cl.proc.Now()
}

// countOp attributes one storage operation to this client chain.
func (cl *Client) countOp() {
	cl.c.ops.Add(1)
	for p := cl; p != nil; p = p.parent {
		p.ops++
	}
}

// visit pays the simulated cost of one request to node id: half an RTT
// out, queueing + service at the node, half an RTT (plus payload
// transfer) back. In immediate mode it is free.
func (cl *Client) visit(id int, items, payloadBytes int) {
	cl.countOp()
	if cl.proc == nil {
		return
	}
	cfg := cl.c.cfg.Latency
	rtt := cfg.rtt(cl.rng)
	cl.proc.Sleep(rtt / 2)
	n := cl.c.nodes[id]
	service := n.sampleService(cfg, cl.c.cfg.Seed, cl.proc.Now(), items, payloadBytes)
	n.queue.Use(cl.proc, service)
	cl.proc.Sleep(rtt - rtt/2)
}

// readReplica picks a replica node for partition p. Reads are spread
// uniformly across replicas.
func (cl *Client) readReplica(p int) int {
	ids := cl.c.replicaNodes(p)
	return ids[cl.rng.Intn(len(ids))]
}

// Get returns the value under key, or (nil, false).
func (cl *Client) Get(key []byte) ([]byte, bool) {
	p := cl.c.partitionOf(key)
	id := cl.readReplica(p)
	v, ok := cl.c.nodes[id].get(key)
	cl.visit(id, 1, len(v))
	return v, ok
}

// MultiGet fetches several keys in one batched request per node, with
// the per-node requests issued in parallel — the Parallel executor's
// fast path. Missing keys yield nil entries.
func (cl *Client) MultiGet(keys [][]byte) [][]byte {
	return cl.multiGet(keys, true)
}

// MultiGetSeq is MultiGet with the per-node batches issued one after
// another — the Simple executor's behavior: batching without
// intra-operator parallelism.
func (cl *Client) MultiGetSeq(keys [][]byte) [][]byte {
	return cl.multiGet(keys, false)
}

func (cl *Client) multiGet(keys [][]byte, parallel bool) [][]byte {
	out := make([][]byte, len(keys))
	if len(keys) == 0 {
		return out
	}
	// Group key indexes by target node.
	byNode := make(map[int][]int)
	for i, k := range keys {
		p := cl.c.partitionOf(k)
		id := cl.readReplica(p)
		byNode[id] = append(byNode[id], i)
	}
	fetch := func(sub *Client, id int, idxs []int) {
		bytesTotal := 0
		for _, i := range idxs {
			v, ok := cl.c.nodes[id].get(keys[i])
			if ok {
				out[i] = v
				bytesTotal += len(v)
			}
		}
		sub.visit(id, len(idxs), bytesTotal)
	}
	// Deterministic node order for both modes.
	ids := make([]int, 0, len(byNode))
	for id := range byNode {
		ids = append(ids, id)
	}
	sortInts(ids)
	if len(byNode) == 1 || cl.proc == nil || !parallel {
		for _, id := range ids {
			fetch(cl, id, byNode[id])
		}
		return out
	}
	var fns []func(*Client)
	for _, id := range ids {
		id := id
		fns = append(fns, func(sub *Client) { fetch(sub, id, byNode[id]) })
	}
	cl.Parallel(fns...)
	return out
}

// Put stores value under key on every replica (parallel in simulated
// mode, or primary-then-async under AsyncReplication).
func (cl *Client) Put(key, value []byte) {
	cl.write(key, func(n *node) { n.put(key, value) })
}

// Delete removes key from every replica.
func (cl *Client) Delete(key []byte) {
	cl.write(key, func(n *node) { n.delete(key) })
}

func (cl *Client) write(key []byte, apply func(*node)) {
	p := cl.c.partitionOf(key)
	ids := cl.c.replicaNodes(p)
	if cl.c.cfg.AsyncReplication && cl.proc != nil && len(ids) > 1 {
		// Synchronous primary write; replicas catch up after ReplicaLag.
		primary := ids[0]
		apply(cl.c.nodes[primary])
		cl.visit(primary, 1, len(key))
		lag := cl.c.cfg.ReplicaLag
		rest := ids[1:]
		cl.proc.Env().Spawn(func(p *sim.Proc) {
			p.Sleep(lag)
			for _, id := range rest {
				apply(cl.c.nodes[id])
			}
		})
		return
	}
	if cl.proc == nil || len(ids) == 1 {
		for _, id := range ids {
			apply(cl.c.nodes[id])
			cl.visit(id, 1, len(key))
		}
		return
	}
	var fns []func(*Client)
	for _, id := range ids {
		id := id
		fns = append(fns, func(sub *Client) {
			apply(cl.c.nodes[id])
			sub.visit(id, 1, len(key))
		})
	}
	cl.Parallel(fns...)
}

// TestAndSet atomically updates key on the primary when the current value
// matches expect (nil = must be absent), then propagates to replicas. A
// nil update deletes the key. It reports whether the swap happened.
func (cl *Client) TestAndSet(key, expect, update []byte) bool {
	p := cl.c.partitionOf(key)
	ids := cl.c.replicaNodes(p)
	primary := ids[0]
	ok := cl.c.nodes[primary].testAndSet(key, expect, update)
	cl.visit(primary, 1, len(key)+len(update))
	if !ok {
		return false
	}
	for _, id := range ids[1:] {
		if update == nil {
			cl.c.nodes[id].delete(key)
		} else {
			cl.c.nodes[id].put(key, update)
		}
		cl.visit(id, 1, len(update))
	}
	return true
}

// RangeRequest describes a range read over [Start, End). A nil Start or
// End leaves that side unbounded. Limit 0 means unlimited. Reverse
// returns items in descending key order (from End side).
type RangeRequest struct {
	Start, End []byte
	Limit      int
	Reverse    bool
}

// GetRange reads a contiguous key range in order, walking partitions as
// needed. Each partition visited costs one storage operation.
func (cl *Client) GetRange(req RangeRequest) []KV {
	nParts := len(cl.c.splits) + 1
	var out []KV
	remaining := req.Limit

	visitPartition := func(p int) bool { // returns false when done
		id := cl.readReplica(p)
		lim := 0
		if req.Limit > 0 {
			lim = remaining
		}
		kvs := cl.c.nodes[id].scan(boundedStart(cl.c, p, req.Start), boundedEnd(cl.c, p, req.End), lim, req.Reverse)
		bytesTotal := 0
		for _, kv := range kvs {
			bytesTotal += len(kv.Value)
		}
		cl.visit(id, max(1, len(kvs)), bytesTotal)
		out = append(out, kvs...)
		if req.Limit > 0 {
			remaining -= len(kvs)
			if remaining <= 0 {
				return false
			}
		}
		return true
	}

	if !req.Reverse {
		start := 0
		if req.Start != nil {
			start = cl.c.partitionOf(req.Start)
		}
		for p := start; p < nParts; p++ {
			if req.End != nil && p > 0 && len(cl.c.splits) >= p && bytes.Compare(cl.c.splits[p-1], req.End) >= 0 {
				break
			}
			if !visitPartition(p) {
				break
			}
		}
	} else {
		start := nParts - 1
		if req.End != nil {
			// The partition owning End also holds the keys just below
			// it, except when End sits exactly on a split boundary — then
			// the extra partition scan is harmless (empty result).
			start = cl.c.partitionOf(req.End)
		}
		for p := start; p >= 0; p-- {
			if req.Start != nil && p < nParts-1 && bytes.Compare(cl.c.splits[p], req.Start) <= 0 {
				break // partition entirely below Start
			}
			if !visitPartition(p) {
				break
			}
		}
	}
	return out
}

// CountRange returns the number of keys in [start, end), walking all
// partitions intersecting the range. This backs cardinality-constraint
// enforcement (Section 7.2).
func (cl *Client) CountRange(start, end []byte) int {
	nParts := len(cl.c.splits) + 1
	p0 := 0
	if start != nil {
		p0 = cl.c.partitionOf(start)
	}
	total := 0
	for p := p0; p < nParts; p++ {
		if end != nil && p > 0 && len(cl.c.splits) >= p && bytes.Compare(cl.c.splits[p-1], end) >= 0 {
			break
		}
		id := cl.readReplica(p)
		n := cl.c.nodes[id].count(boundedStart(cl.c, p, start), boundedEnd(cl.c, p, end))
		cl.visit(id, max(1, n), 0)
		total += n
	}
	return total
}

// boundedStart clips start to partition p's lower bound. Since replicas
// hold whole partitions this is equivalent to the raw bound, but clipping
// keeps per-partition scans from double-counting items replicated onto
// successor nodes.
func boundedStart(c *Cluster, p int, start []byte) []byte {
	if p == 0 {
		return start
	}
	lower := c.splits[p-1]
	if start == nil || bytes.Compare(lower, start) > 0 {
		return lower
	}
	return start
}

func boundedEnd(c *Cluster, p int, end []byte) []byte {
	if p >= len(c.splits) {
		return end
	}
	upper := c.splits[p]
	if end == nil || bytes.Compare(upper, end) < 0 {
		return upper
	}
	return end
}

// Parallel runs fns concurrently (virtual-time children sharing this
// client's op counter) and returns when all complete. In immediate mode
// the functions run sequentially.
func (cl *Client) Parallel(fns ...func(sub *Client)) {
	if cl.proc == nil {
		for _, fn := range fns {
			fn(cl.child(nil))
		}
		return
	}
	wrapped := make([]func(*sim.Proc), len(fns))
	for i, fn := range fns {
		fn := fn
		wrapped[i] = func(p *sim.Proc) { fn(cl.child(p)) }
	}
	cl.proc.Parallel(wrapped...)
}

// child derives a client for a parallel branch, with its own RNG stream
// but op counts rolled up into the parent.
func (cl *Client) child(proc *sim.Proc) *Client {
	return &Client{
		c:      cl.c,
		proc:   proc,
		rng:    rand.New(rand.NewSource(cl.rng.Int63())),
		parent: cl,
	}
}

func sortInts(a []int) { sort.Ints(a) }
