package kvstore

import (
	"bytes"
	"math/rand"
	"runtime"
	"slices"
	"sort"
	"sync"
	"time"

	"piql/internal/sim"
)

// Client is a per-process handle to the cluster. In simulated mode each
// operation advances the owning process's virtual clock by a network
// round trip plus queueing and service time at the target node; in
// immediate mode operations are instantaneous.
//
// A Client is not safe for concurrent use — its op counter and RNG are
// unsynchronized by design, keeping the per-operation hot path free of
// atomics. Spawn one Client per goroutine/session (the Parallel method
// creates children automatically); the Cluster behind them is safe for
// any number of concurrent Clients, including while it rebalances.
//
// Every operation claims one routing-table snapshot for its duration.
// Reads route through the snapshot (old owners keep serving a range
// until its move completes, so reads never fail mid-rebalance). Writes
// additionally double-write to the destinations of any in-flight move
// covering their key, and re-apply themselves if the routing table
// changed while they ran — the pair of rules that guarantees a rebalance
// loses no concurrent write.
type Client struct {
	c    *Cluster
	proc *sim.Proc  // nil in immediate mode
	rng  *rand.Rand // replica choice + RTT sampling
	id   int64      // cluster-unique; the version tiebreaker on writes

	ops          int64 // operations issued through this client (and its children)
	fenceRetries int64 // conditional ops retried after an epoch-fencing reject
	parent       *Client

	// Scratch reused across operations to keep the per-request hot path
	// allocation-lean. Safe because a Client is single-goroutine and the
	// scratch is only read (never written) while Parallel children run.
	byNode map[int][]int // multiGet: unique-key indexes grouped by node
	ids    []int         // multiGet: deterministic node order
	order  []int         // multiGet: key indexes sorted for deduplication
	dups   []int         // multiGet: flattened (dup, first) index pairs
	repl   []int         // replica routing (replicaNodesInto), reused every op
	subs   []*Client     // fanOut goroutine children, reused across calls
}

// NewClient creates a client. proc may be nil for immediate mode.
func (c *Cluster) NewClient(proc *sim.Proc) *Client {
	seq := c.clientSeq.Add(1)
	return &Client{
		c:    c,
		proc: proc,
		rng:  rand.New(rand.NewSource(c.cfg.Seed ^ seq*0x5DEECE66D)),
		id:   seq,
	}
}

// Ops returns the number of storage operations issued through this client
// since creation (including operations issued by Parallel children).
func (cl *Client) Ops() int64 { return cl.ops }

// ResetOps zeroes the operation counter and returns the previous value.
func (cl *Client) ResetOps() int64 {
	v := cl.ops
	cl.ops = 0
	return v
}

// Simulated reports whether the client runs on a virtual-time process.
// Simulated clients are cooperative — one process runs at a time — so
// code holding the scheduler token must never block on channels or
// locks another simulated process needs to make progress.
func (cl *Client) Simulated() bool { return cl.proc != nil }

// Yield parks the simulated process until the next pending event,
// letting every other runnable process advance before it resumes — the
// cooperative scheduler's runtime.Gosched. It is how simulated code
// waits for a condition another process must establish (e.g. the index
// backfill's writer drain) without blocking on a channel or lock while
// holding the scheduler token. No-op in immediate mode.
func (cl *Client) Yield() {
	if cl.proc != nil {
		cl.proc.Yield()
	}
}

// Now returns the process's virtual time, or 0 in immediate mode.
func (cl *Client) Now() time.Duration {
	if cl.proc == nil {
		return 0
	}
	return cl.proc.Now()
}

// countOp attributes one storage operation to this client chain.
func (cl *Client) countOp() {
	cl.c.ops.Add(1)
	for p := cl; p != nil; p = p.parent {
		p.ops++
	}
}

// visit pays the simulated cost of one request to node id: half an RTT
// out, queueing + service at the node, half an RTT (plus payload
// transfer) back. In immediate mode it is free.
func (cl *Client) visit(id int, items, payloadBytes int) {
	cl.countOp()
	if cl.proc == nil {
		return
	}
	cfg := cl.c.cfg.Latency
	rtt := cfg.rtt(cl.rng)
	cl.proc.Sleep(rtt / 2)
	n := cl.c.nodes[id]
	service := n.sampleService(cfg, cl.c.cfg.Seed, cl.proc.Now(), items, payloadBytes)
	n.queue.Use(cl.proc, service)
	cl.proc.Sleep(rtt - rtt/2)
}

// readReplica picks a replica node for partition p. Reads are spread
// uniformly across replicas. Computed arithmetically (replica r of
// partition p is node (p+r) mod n) so the read path never allocates the
// replica list.
func (cl *Client) readReplica(p int) int {
	return (p + cl.rng.Intn(cl.c.cfg.ReplicationFactor)) % len(cl.c.nodes)
}

// Get returns the value under key, or (nil, false). The read goes to
// one replica chosen uniformly; a deleted key (versioned tombstone)
// reads as absent.
func (cl *Client) Get(key []byte) ([]byte, bool) {
	rt := cl.c.beginOp()
	p := rt.partitionOf(key)
	id := cl.readReplica(p)
	v, ok := cl.c.nodes[id].get(key)
	cl.visit(id, 1, len(v))
	cl.c.endOp(rt)
	return v, ok
}

// GetVersionedPrimary is Get plus the stored version, routed to the
// key's authoritative primary instead of a uniformly-chosen replica. A
// deleted key reports its tombstone's version with ok=false; a
// never-written key reports the zero Version. The primary receives
// every write synchronously — replica catch-ups lag only the
// non-primary copies — so this read observes the newest version even
// under AsyncReplication; invariant checks (the index builder's ghost
// assertion) use it to avoid mistaking a lagged replica for a
// violation.
func (cl *Client) GetVersionedPrimary(key []byte) ([]byte, Version, bool) {
	rt := cl.c.beginOp()
	p := rt.partitionOf(key)
	id := cl.c.primaryNode(p)
	v, ver, ok := cl.c.nodes[id].getVersioned(key)
	cl.visit(id, 1, len(v))
	cl.c.endOp(rt)
	return v, ver, ok
}

// ReadRepair reads every replica of key, converges any replica observed
// stale onto the newest version (applying the winning envelope with
// put-if-newer), and returns the winner's value. It is the on-demand
// repair path for read-heavy keys under async replication: a caller
// that just observed a stale or flip-flopping read can force the
// replicas together without waiting for the replication lag to drain.
func (cl *Client) ReadRepair(key []byte) ([]byte, bool) {
	rt := cl.c.beginOp()
	defer cl.c.endOp(rt)
	p := rt.partitionOf(key)
	cl.repl = cl.c.replicaNodesInto(cl.repl[:0], p)
	var best []byte
	for _, id := range cl.repl {
		env, ok := cl.c.nodes[id].getRaw(key)
		cl.visit(id, 1, len(env))
		if ok && (best == nil || envVersion(env).After(envVersion(best))) {
			best = env
		}
	}
	if best == nil {
		return nil, false
	}
	for _, id := range cl.repl {
		if cl.c.nodes[id].applyIfNewer(key, best) {
			cl.visit(id, 1, len(best))
		}
	}
	if envIsTombstone(best) {
		return nil, false
	}
	return envValue(best), true
}

// MultiGet fetches several keys in one batched request per node, with
// the per-node requests issued in parallel — the Parallel executor's
// fast path. Repeated keys are deduplicated (fetched once, fanned out to
// every requesting position). Missing keys yield nil entries.
func (cl *Client) MultiGet(keys [][]byte) [][]byte {
	return cl.multiGet(keys, true)
}

// MultiGetSeq is MultiGet with the per-node batches issued one after
// another — the Simple executor's behavior: batching without
// intra-operator parallelism.
func (cl *Client) MultiGetSeq(keys [][]byte) [][]byte {
	return cl.multiGet(keys, false)
}

func (cl *Client) multiGet(keys [][]byte, parallel bool) [][]byte {
	out := make([][]byte, len(keys))
	if len(keys) == 0 {
		return out
	}
	rt := cl.c.beginOp()
	defer cl.c.endOp(rt)
	if len(keys) == 1 {
		// Point-lookup fast path: no grouping or dedup scratch.
		id := cl.readReplica(rt.partitionOf(keys[0]))
		v, ok := cl.c.nodes[id].get(keys[0])
		payload := 0
		if ok {
			out[0] = v
			payload = len(v)
		}
		cl.visit(id, 1, payload)
		return out
	}
	// Deduplicate repeated keys — FK joins re-fetch the same parent
	// record constantly — by sorting the key indexes and aliasing runs of
	// equal keys to their first occurrence. Sort-based so dedup needs no
	// per-key string allocation; all scratch is reused across calls.
	cl.order = cl.order[:0]
	for i := range keys {
		cl.order = append(cl.order, i)
	}
	slices.SortFunc(cl.order, func(a, b int) int { return bytes.Compare(keys[a], keys[b]) })
	cl.dups = cl.dups[:0]
	if cl.byNode == nil {
		cl.byNode = make(map[int][]int)
	}
	for id, idxs := range cl.byNode {
		cl.byNode[id] = idxs[:0]
	}
	for j := 0; j < len(cl.order); {
		rep := cl.order[j]
		for j++; j < len(cl.order) && bytes.Equal(keys[cl.order[j]], keys[rep]); j++ {
			cl.dups = append(cl.dups, cl.order[j], rep)
		}
		id := cl.readReplica(rt.partitionOf(keys[rep]))
		cl.byNode[id] = append(cl.byNode[id], rep)
	}
	fetch := func(sub *Client, id int, idxs []int) {
		bytesTotal := 0
		for _, i := range idxs {
			v, ok := cl.c.nodes[id].get(keys[i])
			if ok {
				out[i] = v
				bytesTotal += len(v)
			}
		}
		sub.visit(id, len(idxs), bytesTotal)
	}
	// Deterministic node order for both modes.
	cl.ids = cl.ids[:0]
	for id, idxs := range cl.byNode {
		if len(idxs) > 0 {
			cl.ids = append(cl.ids, id)
		}
	}
	sortInts(cl.ids)
	if len(cl.ids) == 1 || cl.proc == nil || !parallel {
		for _, id := range cl.ids {
			fetch(cl, id, cl.byNode[id])
		}
	} else {
		fns := make([]func(*Client), len(cl.ids))
		for i, id := range cl.ids {
			id := id
			fns[i] = func(sub *Client) { fetch(sub, id, cl.byNode[id]) }
		}
		cl.Parallel(fns...)
	}
	for j := 0; j < len(cl.dups); j += 2 {
		out[cl.dups[j]] = out[cl.dups[j+1]]
	}
	return out
}

// Put stores value under key on every replica (parallel in simulated
// mode, or primary-then-async under AsyncReplication). The write is
// stamped from the cluster HLC, so racing Puts/Deletes from any number
// of clients converge every replica to the same winner.
func (cl *Client) Put(key, value []byte) {
	cl.writeStamped(key, value, false, cl.StampVersion())
}

// Delete removes key from every replica by writing a versioned
// tombstone (swept after the tombstone-GC grace period), so a delete
// racing an older Put wins on every replica regardless of arrival
// order.
func (cl *Client) Delete(key []byte) {
	cl.writeStamped(key, nil, true, cl.StampVersion())
}

// StampVersion draws a fresh write version: a cluster-HLC timestamp
// with this client as the tiebreaker. Every stamp is newer than all
// previously drawn stamps.
func (cl *Client) StampVersion() Version {
	return Version{TS: cl.c.hlc.Next(), Client: cl.id}
}

// PutStamped stores value under key at a caller-chosen version instead
// of a fresh stamp. It loses to every write stamped after ver was
// drawn, which is the point: a bulk writer replaying data "as of" a
// snapshot (the index backfill) stamps everything at the snapshot
// version, and any live write that raced it — including a delete —
// outranks the replay on every replica.
func (cl *Client) PutStamped(key, value []byte, ver Version) {
	cl.writeStamped(key, value, false, ver)
}

// writeStamped routes one versioned put/delete. The envelope is built
// once and applied with put-if-newer on every target — current
// replicas, lagged replicas, and the destinations of any in-flight move
// covering the key — and the operation retries if the routing table
// changed while it ran, so a concurrent rebalance can never strand it
// on a node that is no longer the key's owner. Re-application is
// naturally idempotent: the same envelope applied twice is a no-op.
func (cl *Client) writeStamped(key, val []byte, del bool, ver Version) {
	env := makeEnvelope(ver, del, val)
	for {
		rt := cl.c.beginOp()
		cl.writeUnder(rt, key, env)
		settled := cl.c.routing.Load() == rt
		cl.c.endOp(rt)
		if settled {
			return
		}
	}
}

// writeUnder applies one envelope under a specific routing table.
func (cl *Client) writeUnder(rt *routing, key, env []byte) {
	p := rt.partitionOf(key)
	cl.repl = cl.c.replicaNodesInto(cl.repl[:0], p)
	ids := cl.repl
	mv := coveringMove(rt, key)
	if cl.c.cfg.AsyncReplication && cl.proc != nil && len(ids) > 1 {
		// Synchronous primary write; replicas catch up after ReplicaLag.
		// The lagged applies reuse the stamped envelope, so however the
		// catch-ups of racing writers interleave, every replica keeps the
		// newest version — the divergence the unversioned store allowed.
		primary := ids[0]
		cl.c.nodes[primary].applyIfNewer(key, env)
		cl.visit(primary, 1, len(key))
		lag := cl.c.cfg.ReplicaLag
		rest := append([]int(nil), ids[1:]...) // outlives this op's scratch
		cl.proc.Env().Spawn(func(p *sim.Proc) {
			p.Sleep(lag)
			// Revalidate ownership under a claimed routing table at fire
			// time: the cluster may have rebalanced during the lag, and a
			// catch-up landing on a node that lost the range would
			// resurrect the key there after cleanup purged it (the copy
			// already carried this write from the old primary to the new
			// owners). The claim also serializes the catch-up against
			// cleanup — Rebalance drains claim holders before purging.
			crt := cl.c.beginOp()
			cp := crt.partitionOf(key)
			for _, id := range rest {
				if cl.c.isReplica(cp, id) {
					cl.c.nodes[id].applyIfNewer(key, env)
				}
			}
			cl.c.endOp(crt)
		})
		// Move destinations are written synchronously even under async
		// replication: the flip must find them complete.
		cl.doubleApply(mv, key, env, ids[:1])
		return
	}
	if cl.proc == nil || len(ids) == 1 {
		for _, id := range ids {
			cl.c.nodes[id].applyIfNewer(key, env)
			cl.visit(id, 1, len(key))
		}
	} else {
		var fns []func(*Client)
		for _, id := range ids {
			id := id
			fns = append(fns, func(sub *Client) {
				cl.c.nodes[id].applyIfNewer(key, env)
				sub.visit(id, 1, len(key))
			})
		}
		cl.Parallel(fns...)
	}
	cl.doubleApply(mv, key, env, ids)
}

// coveringMove returns the in-flight move whose range contains key, or
// nil. Moves are disjoint, so at most one matches.
func coveringMove(rt *routing, key []byte) *move {
	for _, mv := range rt.moves {
		if mv.covers(key) {
			return mv
		}
	}
	return nil
}

// visitDsts pays one visit per move destination not already written as
// a current replica.
func (cl *Client) visitDsts(mv *move, ids []int, key []byte) {
	for _, id := range mv.dst {
		if !slices.Contains(ids, id) {
			cl.visit(id, 1, len(key))
		}
	}
}

// doubleApply lands the envelope on the move's destination nodes
// (skipping any already written as current replicas). Put-if-newer on
// both sides makes the double-write commute with the range copy: the
// writer's fresher envelope — value or tombstone — wins regardless of
// interleaving, which is what retired the pre-versioning chunk-window
// tombstone protocol.
func (cl *Client) doubleApply(mv *move, key, env []byte, written []int) {
	if mv == nil {
		return
	}
	for _, id := range mv.dst {
		if slices.Contains(written, id) {
			continue
		}
		cl.c.nodes[id].applyIfNewer(key, env)
		cl.visit(id, 1, len(env))
	}
}

// TestAndSet atomically updates key on its authoritative primary when
// the current value matches expect (nil = must be absent), then
// propagates to replicas. A nil update deletes the key. It reports
// whether the swap happened.
//
// TestAndSet is linearizable across rebalances. The decision runs under
// per-node epoch fencing: the primary rejects it (ErrFenced) when the
// claimed routing epoch is stale for the key's range — ownership moved —
// and the client retries under a fresh table, so exactly one node can
// ever accept a swap for a key, even while the routing flips. An
// accepted swap is stamped from the cluster HLC at decision time, so
// its propagation (put-if-newer on replicas and move destinations)
// outranks every write the decision observed — an older plain Put can
// never clobber it. On a range mid-move, the decision and its
// propagation happen inside the move window (mv.mu), serializing them
// against the flip's lease handover; the visits are paid after the
// window is released (sleeping inside it would stall a simulated
// environment and every writer on the range).
//
// If the swap is accepted but the routing changed while the operation
// ran, the accepted write is re-applied under the new table (the test
// itself is not re-run — it already decided, and fencing guarantees no
// other node decided meanwhile). A genuine rejection under an unchanged
// table is final.
func (cl *Client) TestAndSet(key, expect, update []byte) bool {
	for {
		rt := cl.c.beginOp()
		p := rt.partitionOf(key)
		cl.repl = cl.c.replicaNodesInto(cl.repl[:0], p)
		ids := cl.repl
		primary := ids[0]
		mv := coveringMove(rt, key)
		var env []byte // the accepted swap's stamped envelope
		var ok bool
		var err error
		if mv == nil {
			env, ok, err = cl.c.nodes[primary].testAndSet(key, rt.epoch, expect, update, cl.id)
			cl.visit(primary, 1, len(key)+len(update))
			if ok {
				// Propagate the primary's stamped envelope: its version
				// was drawn after the decision read the current value, so
				// put-if-newer can never let an older plain Put — whenever
				// it arrives — clobber the accepted swap on any replica.
				for _, id := range ids[1:] {
					cl.c.nodes[id].applyIfNewer(key, env)
					cl.visit(id, 1, len(update))
				}
			}
		} else {
			mv.mu.Lock()
			env, ok, err = cl.c.nodes[primary].testAndSet(key, rt.epoch, expect, update, cl.id)
			if ok {
				// Accepted swap in a moving range: land the envelope on
				// every old owner and move destination inside the move
				// window, so the epoch flip never observes a
				// half-propagated decision. (The range copy itself needs
				// no coordination — its older envelopes lose to this one.)
				for _, id := range ids[1:] {
					cl.c.nodes[id].applyIfNewer(key, env)
				}
				for _, id := range mv.dst {
					if !slices.Contains(ids, id) {
						cl.c.nodes[id].applyIfNewer(key, env)
					}
				}
			}
			mv.mu.Unlock()
			cl.visit(primary, 1, len(key)+len(update))
			if ok {
				for _, id := range ids[1:] {
					cl.visit(id, 1, len(update))
				}
				cl.visitDsts(mv, ids, key)
			}
		}
		if err != nil {
			// Fenced: the claimed table is stale for this range. Account
			// the reject and retry under a fresh table — the publish that
			// moved ownership lands at most a few instructions after the
			// fence install.
			cl.c.fenced.Add(1)
			cl.fenceRetries++
			cl.c.endOp(rt)
			runtime.Gosched()
			continue
		}
		cl.c.endOp(rt)
		// No re-application when the routing changed mid-operation (the
		// pre-fencing protocol re-ran the accepted value as a plain write
		// under the new table): an accepted swap has already reached every
		// new owner — through the move window's double-write when the
		// range was moving, or through the copy, which only starts after
		// the pre-move table drains, when it was not. Re-applying here
		// would in fact break linearizability: a swap accepted by the new
		// primary in the meantime would be clobbered by this operation's
		// older value. The decision — either way — is final.
		return ok
	}
}

// FenceRetries returns how many times this client's conditional
// operations were fenced and retried under a fresher routing table.
func (cl *Client) FenceRetries() int64 { return cl.fenceRetries }

// RangeRequest describes a range read over [Start, End). A nil Start or
// End leaves that side unbounded. Limit 0 means unlimited. Reverse
// returns items in descending key order (from End side).
type RangeRequest struct {
	Start, End []byte
	Limit      int
	Reverse    bool
}

// GetRange reads a contiguous key range in order, walking partitions as
// needed. Each partition visited costs one storage operation.
func (cl *Client) GetRange(req RangeRequest) []KV {
	rt := cl.c.beginOp()
	out := cl.getRangeOn(rt, req, cl.readReplica)
	cl.c.endOp(rt)
	return out
}

// GetRangePrimary is GetRange served by each partition's authoritative
// primary instead of a uniformly-chosen replica. The primary holds
// every write synchronously even under AsyncReplication, so bulk
// readers that must not act on lagged state — the index backfill,
// whose stale read of an already-deleted row would mint a dangling
// entry no tombstone outranks — scan through it (the same reasoning
// that makes Rebalance collect from primaries).
func (cl *Client) GetRangePrimary(req RangeRequest) []KV {
	rt := cl.c.beginOp()
	out := cl.getRangeOn(rt, req, cl.c.primaryNode)
	cl.c.endOp(rt)
	return out
}

func (cl *Client) getRange(rt *routing, req RangeRequest) []KV {
	return cl.getRangeOn(rt, req, cl.readReplica)
}

// getRangeOn walks the partitions intersecting req sequentially, with
// pick choosing the serving node per partition.
func (cl *Client) getRangeOn(rt *routing, req RangeRequest, pick func(p int) int) []KV {
	nParts := rt.parts()
	var out []KV
	remaining := req.Limit

	visitPartition := func(p int) bool { // returns false when done
		id := pick(p)
		lim := 0
		if req.Limit > 0 {
			lim = remaining
		}
		kvs := cl.c.nodes[id].scan(boundedStart(rt, p, req.Start), boundedEnd(rt, p, req.End), lim, req.Reverse)
		bytesTotal := 0
		for _, kv := range kvs {
			bytesTotal += len(kv.Value)
		}
		cl.visit(id, max(1, len(kvs)), bytesTotal)
		out = append(out, kvs...)
		if req.Limit > 0 {
			remaining -= len(kvs)
			if remaining <= 0 {
				return false
			}
		}
		return true
	}

	if !req.Reverse {
		start := 0
		if req.Start != nil {
			start = rt.partitionOf(req.Start)
		}
		for p := start; p < nParts; p++ {
			if req.End != nil && p > 0 && len(rt.splits) >= p && bytes.Compare(rt.splits[p-1], req.End) >= 0 {
				break
			}
			if !visitPartition(p) {
				break
			}
		}
	} else {
		start := nParts - 1
		if req.End != nil {
			// The partition owning End also holds the keys just below
			// it, except when End sits exactly on a split boundary — then
			// the extra partition scan is harmless (empty result).
			start = rt.partitionOf(req.End)
		}
		for p := start; p >= 0; p-- {
			if req.Start != nil && p < nParts-1 && bytes.Compare(rt.splits[p], req.Start) <= 0 {
				break // partition entirely below Start
			}
			if !visitPartition(p) {
				break
			}
		}
	}
	return out
}

// GetRangeScatter is GetRange for the ParallelExecutor: when the range
// spans several partitions in simulated mode, the per-partition scans
// are issued concurrently — each speculatively fetching up to Limit
// items — then concatenated in key order (partitions are disjoint,
// ordered byte ranges) and truncated to Limit. Speculation is sound for
// PIQL because every compiled plan is statically bounded: Limit is
// always a small constant. Wall-clock cost becomes the max of the
// per-partition round trips instead of their sum, at one storage
// operation per intersecting partition. With a single partition it
// falls back to the sequential early-stopping walk. In immediate mode
// the fan-out runs on real goroutines (one per partition, detached
// child clients whose op counts merge back after the join), so
// non-simulated backends get the same intra-operator parallelism the
// virtual-time path models — previously immediate mode silently fell
// back to the sequential walk.
func (cl *Client) GetRangeScatter(req RangeRequest) []KV {
	rt := cl.c.beginOp()
	defer cl.c.endOp(rt)
	lo, hi := rt.rangeParts(req.Start, req.End)
	if lo == hi {
		return cl.getRange(rt, req)
	}
	parts := make([][]KV, hi-lo+1)
	ids := make([]int, hi-lo+1)
	for p := lo; p <= hi; p++ {
		ids[p-lo] = cl.readReplica(p) // parent RNG: deterministic draw order
	}
	fns := make([]func(*Client), hi-lo+1)
	for p := lo; p <= hi; p++ {
		p := p
		fns[p-lo] = func(sub *Client) {
			kvs := cl.c.nodes[ids[p-lo]].scan(boundedStart(rt, p, req.Start), boundedEnd(rt, p, req.End), req.Limit, req.Reverse)
			payload := 0
			for _, kv := range kvs {
				payload += len(kv.Value)
			}
			sub.visit(ids[p-lo], max(1, len(kvs)), payload)
			parts[p-lo] = kvs
		}
	}
	cl.fanOut(fns...)
	var out []KV
	if req.Reverse {
		for i := len(parts) - 1; i >= 0; i-- {
			out = append(out, parts[i]...)
		}
	} else {
		for _, kvs := range parts {
			out = append(out, kvs...)
		}
	}
	if req.Limit > 0 && len(out) > req.Limit {
		out = out[:req.Limit]
	}
	return out
}

// CountRange returns the number of keys in [start, end), walking all
// partitions intersecting the range. This backs cardinality-constraint
// enforcement (Section 7.2). In simulated mode the per-partition counts
// are gathered concurrently (counts are additive, so merge order is
// irrelevant), making the write path's constraint check cost one round
// trip instead of one per partition.
func (cl *Client) CountRange(start, end []byte) int {
	rt := cl.c.beginOp()
	defer cl.c.endOp(rt)
	lo, hi := rt.rangeParts(start, end)
	countPartition := func(sub *Client, p, id int) int {
		n := cl.c.nodes[id].count(boundedStart(rt, p, start), boundedEnd(rt, p, end))
		sub.visit(id, max(1, n), 0)
		return n
	}
	total := 0
	if cl.proc == nil || lo == hi {
		for p := lo; p <= hi; p++ {
			total += countPartition(cl, p, cl.readReplica(p))
		}
		return total
	}
	counts := make([]int, hi-lo+1)
	fns := make([]func(*Client), hi-lo+1)
	for p := lo; p <= hi; p++ {
		p := p
		id := cl.readReplica(p)
		fns[p-lo] = func(sub *Client) { counts[p-lo] = countPartition(sub, p, id) }
	}
	cl.Parallel(fns...)
	for _, n := range counts {
		total += n
	}
	return total
}

// boundedStart clips start to partition p's lower bound. Since replicas
// hold whole partitions this is equivalent to the raw bound, but clipping
// keeps per-partition scans from double-counting items replicated onto
// successor nodes.
func boundedStart(rt *routing, p int, start []byte) []byte {
	if p == 0 {
		return start
	}
	lower := rt.splits[p-1]
	if start == nil || bytes.Compare(lower, start) > 0 {
		return lower
	}
	return start
}

func boundedEnd(rt *routing, p int, end []byte) []byte {
	if p >= len(rt.splits) {
		return end
	}
	upper := rt.splits[p]
	if end == nil || bytes.Compare(upper, end) < 0 {
		return upper
	}
	return end
}

// fanOut runs fns concurrently even in immediate mode: simulated
// clients defer to Parallel (virtual-time children), immediate clients
// spawn one real goroutine per fn over detached child clients and merge
// their operation counts into this client's chain after the join (the
// detachment keeps the per-op counter walk in countOp race-free while
// the goroutines run). The children are scratch, pooled on the parent
// and reused across calls like the other per-op buffers. Callers must
// pre-draw any RNG decisions — the fns must not touch cl.rng.
func (cl *Client) fanOut(fns ...func(sub *Client)) {
	if cl.proc != nil {
		cl.Parallel(fns...)
		return
	}
	for len(cl.subs) < len(fns) {
		cl.subs = append(cl.subs, &Client{c: cl.c, rng: rand.New(rand.NewSource(cl.rng.Int63())), id: cl.id})
	}
	var wg sync.WaitGroup
	for i, fn := range fns {
		sub := cl.subs[i]
		sub.ops = 0
		wg.Add(1)
		go func(sub *Client, fn func(*Client)) {
			defer wg.Done()
			fn(sub)
		}(sub, fn)
	}
	wg.Wait()
	for _, sub := range cl.subs[:len(fns)] {
		for p := cl; p != nil; p = p.parent {
			p.ops += sub.ops
		}
	}
}

// Parallel runs fns concurrently (virtual-time children sharing this
// client's op counter) and returns when all complete. In immediate mode
// the functions run sequentially.
func (cl *Client) Parallel(fns ...func(sub *Client)) {
	if cl.proc == nil {
		for _, fn := range fns {
			fn(cl.child(nil))
		}
		return
	}
	wrapped := make([]func(*sim.Proc), len(fns))
	for i, fn := range fns {
		fn := fn
		wrapped[i] = func(p *sim.Proc) { fn(cl.child(p)) }
	}
	cl.proc.Parallel(wrapped...)
}

// child derives a client for a parallel branch, with its own RNG stream
// but op counts rolled up into the parent.
func (cl *Client) child(proc *sim.Proc) *Client {
	return &Client{
		c:      cl.c,
		proc:   proc,
		rng:    rand.New(rand.NewSource(cl.rng.Int63())),
		id:     cl.id,
		parent: cl,
	}
}

func sortInts(a []int) { sort.Ints(a) }
