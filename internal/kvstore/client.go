package kvstore

import (
	"bytes"
	"math/rand"
	"slices"
	"sort"
	"time"

	"piql/internal/sim"
)

// Client is a per-process handle to the cluster. In simulated mode each
// operation advances the owning process's virtual clock by a network
// round trip plus queueing and service time at the target node; in
// immediate mode operations are instantaneous.
//
// A Client is not safe for concurrent use — its op counter and RNG are
// unsynchronized by design, keeping the per-operation hot path free of
// atomics. Spawn one Client per goroutine/session (the Parallel method
// creates children automatically); the Cluster behind them is safe for
// any number of concurrent Clients.
type Client struct {
	c    *Cluster
	proc *sim.Proc  // nil in immediate mode
	rng  *rand.Rand // replica choice + RTT sampling

	ops    int64 // operations issued through this client (and its children)
	parent *Client

	// Scratch reused across operations to keep the per-request hot path
	// allocation-lean. Safe because a Client is single-goroutine and the
	// scratch is only read (never written) while Parallel children run.
	byNode map[int][]int // multiGet: unique-key indexes grouped by node
	ids    []int         // multiGet: deterministic node order
	order  []int         // multiGet: key indexes sorted for deduplication
	dups   []int         // multiGet: flattened (dup, first) index pairs
}

// NewClient creates a client. proc may be nil for immediate mode.
func (c *Cluster) NewClient(proc *sim.Proc) *Client {
	seq := c.clientSeq.Add(1)
	return &Client{
		c:    c,
		proc: proc,
		rng:  rand.New(rand.NewSource(c.cfg.Seed ^ seq*0x5DEECE66D)),
	}
}

// Ops returns the number of storage operations issued through this client
// since creation (including operations issued by Parallel children).
func (cl *Client) Ops() int64 { return cl.ops }

// ResetOps zeroes the operation counter and returns the previous value.
func (cl *Client) ResetOps() int64 {
	v := cl.ops
	cl.ops = 0
	return v
}

// Simulated reports whether the client runs on a virtual-time process.
// Simulated clients are cooperative — one process runs at a time — so
// code holding the scheduler token must never block on channels or
// locks another simulated process needs to make progress.
func (cl *Client) Simulated() bool { return cl.proc != nil }

// Now returns the process's virtual time, or 0 in immediate mode.
func (cl *Client) Now() time.Duration {
	if cl.proc == nil {
		return 0
	}
	return cl.proc.Now()
}

// countOp attributes one storage operation to this client chain.
func (cl *Client) countOp() {
	cl.c.ops.Add(1)
	for p := cl; p != nil; p = p.parent {
		p.ops++
	}
}

// visit pays the simulated cost of one request to node id: half an RTT
// out, queueing + service at the node, half an RTT (plus payload
// transfer) back. In immediate mode it is free.
func (cl *Client) visit(id int, items, payloadBytes int) {
	cl.countOp()
	if cl.proc == nil {
		return
	}
	cfg := cl.c.cfg.Latency
	rtt := cfg.rtt(cl.rng)
	cl.proc.Sleep(rtt / 2)
	n := cl.c.nodes[id]
	service := n.sampleService(cfg, cl.c.cfg.Seed, cl.proc.Now(), items, payloadBytes)
	n.queue.Use(cl.proc, service)
	cl.proc.Sleep(rtt - rtt/2)
}

// readReplica picks a replica node for partition p. Reads are spread
// uniformly across replicas. Computed arithmetically (replica r of
// partition p is node (p+r) mod n) so the read path never allocates the
// replica list.
func (cl *Client) readReplica(p int) int {
	return (p + cl.rng.Intn(cl.c.cfg.ReplicationFactor)) % len(cl.c.nodes)
}

// Get returns the value under key, or (nil, false).
func (cl *Client) Get(key []byte) ([]byte, bool) {
	p := cl.c.partitionOf(key)
	id := cl.readReplica(p)
	v, ok := cl.c.nodes[id].get(key)
	cl.visit(id, 1, len(v))
	return v, ok
}

// MultiGet fetches several keys in one batched request per node, with
// the per-node requests issued in parallel — the Parallel executor's
// fast path. Repeated keys are deduplicated (fetched once, fanned out to
// every requesting position). Missing keys yield nil entries.
func (cl *Client) MultiGet(keys [][]byte) [][]byte {
	return cl.multiGet(keys, true)
}

// MultiGetSeq is MultiGet with the per-node batches issued one after
// another — the Simple executor's behavior: batching without
// intra-operator parallelism.
func (cl *Client) MultiGetSeq(keys [][]byte) [][]byte {
	return cl.multiGet(keys, false)
}

func (cl *Client) multiGet(keys [][]byte, parallel bool) [][]byte {
	out := make([][]byte, len(keys))
	if len(keys) == 0 {
		return out
	}
	if len(keys) == 1 {
		// Point-lookup fast path: no grouping or dedup scratch.
		id := cl.readReplica(cl.c.partitionOf(keys[0]))
		v, ok := cl.c.nodes[id].get(keys[0])
		payload := 0
		if ok {
			out[0] = v
			payload = len(v)
		}
		cl.visit(id, 1, payload)
		return out
	}
	// Deduplicate repeated keys — FK joins re-fetch the same parent
	// record constantly — by sorting the key indexes and aliasing runs of
	// equal keys to their first occurrence. Sort-based so dedup needs no
	// per-key string allocation; all scratch is reused across calls.
	cl.order = cl.order[:0]
	for i := range keys {
		cl.order = append(cl.order, i)
	}
	slices.SortFunc(cl.order, func(a, b int) int { return bytes.Compare(keys[a], keys[b]) })
	cl.dups = cl.dups[:0]
	if cl.byNode == nil {
		cl.byNode = make(map[int][]int)
	}
	for id, idxs := range cl.byNode {
		cl.byNode[id] = idxs[:0]
	}
	for j := 0; j < len(cl.order); {
		rep := cl.order[j]
		for j++; j < len(cl.order) && bytes.Equal(keys[cl.order[j]], keys[rep]); j++ {
			cl.dups = append(cl.dups, cl.order[j], rep)
		}
		id := cl.readReplica(cl.c.partitionOf(keys[rep]))
		cl.byNode[id] = append(cl.byNode[id], rep)
	}
	fetch := func(sub *Client, id int, idxs []int) {
		bytesTotal := 0
		for _, i := range idxs {
			v, ok := cl.c.nodes[id].get(keys[i])
			if ok {
				out[i] = v
				bytesTotal += len(v)
			}
		}
		sub.visit(id, len(idxs), bytesTotal)
	}
	// Deterministic node order for both modes.
	cl.ids = cl.ids[:0]
	for id, idxs := range cl.byNode {
		if len(idxs) > 0 {
			cl.ids = append(cl.ids, id)
		}
	}
	sortInts(cl.ids)
	if len(cl.ids) == 1 || cl.proc == nil || !parallel {
		for _, id := range cl.ids {
			fetch(cl, id, cl.byNode[id])
		}
	} else {
		fns := make([]func(*Client), len(cl.ids))
		for i, id := range cl.ids {
			id := id
			fns[i] = func(sub *Client) { fetch(sub, id, cl.byNode[id]) }
		}
		cl.Parallel(fns...)
	}
	for j := 0; j < len(cl.dups); j += 2 {
		out[cl.dups[j]] = out[cl.dups[j+1]]
	}
	return out
}

// Put stores value under key on every replica (parallel in simulated
// mode, or primary-then-async under AsyncReplication).
func (cl *Client) Put(key, value []byte) {
	cl.write(key, func(n *node) { n.put(key, value) })
}

// Delete removes key from every replica.
func (cl *Client) Delete(key []byte) {
	cl.write(key, func(n *node) { n.delete(key) })
}

func (cl *Client) write(key []byte, apply func(*node)) {
	p := cl.c.partitionOf(key)
	ids := cl.c.replicaNodes(p)
	if cl.c.cfg.AsyncReplication && cl.proc != nil && len(ids) > 1 {
		// Synchronous primary write; replicas catch up after ReplicaLag.
		primary := ids[0]
		apply(cl.c.nodes[primary])
		cl.visit(primary, 1, len(key))
		lag := cl.c.cfg.ReplicaLag
		rest := ids[1:]
		cl.proc.Env().Spawn(func(p *sim.Proc) {
			p.Sleep(lag)
			for _, id := range rest {
				apply(cl.c.nodes[id])
			}
		})
		return
	}
	if cl.proc == nil || len(ids) == 1 {
		for _, id := range ids {
			apply(cl.c.nodes[id])
			cl.visit(id, 1, len(key))
		}
		return
	}
	var fns []func(*Client)
	for _, id := range ids {
		id := id
		fns = append(fns, func(sub *Client) {
			apply(cl.c.nodes[id])
			sub.visit(id, 1, len(key))
		})
	}
	cl.Parallel(fns...)
}

// TestAndSet atomically updates key on the primary when the current value
// matches expect (nil = must be absent), then propagates to replicas. A
// nil update deletes the key. It reports whether the swap happened.
func (cl *Client) TestAndSet(key, expect, update []byte) bool {
	p := cl.c.partitionOf(key)
	ids := cl.c.replicaNodes(p)
	primary := ids[0]
	ok := cl.c.nodes[primary].testAndSet(key, expect, update)
	cl.visit(primary, 1, len(key)+len(update))
	if !ok {
		return false
	}
	for _, id := range ids[1:] {
		if update == nil {
			cl.c.nodes[id].delete(key)
		} else {
			cl.c.nodes[id].put(key, update)
		}
		cl.visit(id, 1, len(update))
	}
	return true
}

// RangeRequest describes a range read over [Start, End). A nil Start or
// End leaves that side unbounded. Limit 0 means unlimited. Reverse
// returns items in descending key order (from End side).
type RangeRequest struct {
	Start, End []byte
	Limit      int
	Reverse    bool
}

// GetRange reads a contiguous key range in order, walking partitions as
// needed. Each partition visited costs one storage operation.
func (cl *Client) GetRange(req RangeRequest) []KV {
	nParts := len(cl.c.splits) + 1
	var out []KV
	remaining := req.Limit

	visitPartition := func(p int) bool { // returns false when done
		id := cl.readReplica(p)
		lim := 0
		if req.Limit > 0 {
			lim = remaining
		}
		kvs := cl.c.nodes[id].scan(boundedStart(cl.c, p, req.Start), boundedEnd(cl.c, p, req.End), lim, req.Reverse)
		bytesTotal := 0
		for _, kv := range kvs {
			bytesTotal += len(kv.Value)
		}
		cl.visit(id, max(1, len(kvs)), bytesTotal)
		out = append(out, kvs...)
		if req.Limit > 0 {
			remaining -= len(kvs)
			if remaining <= 0 {
				return false
			}
		}
		return true
	}

	if !req.Reverse {
		start := 0
		if req.Start != nil {
			start = cl.c.partitionOf(req.Start)
		}
		for p := start; p < nParts; p++ {
			if req.End != nil && p > 0 && len(cl.c.splits) >= p && bytes.Compare(cl.c.splits[p-1], req.End) >= 0 {
				break
			}
			if !visitPartition(p) {
				break
			}
		}
	} else {
		start := nParts - 1
		if req.End != nil {
			// The partition owning End also holds the keys just below
			// it, except when End sits exactly on a split boundary — then
			// the extra partition scan is harmless (empty result).
			start = cl.c.partitionOf(req.End)
		}
		for p := start; p >= 0; p-- {
			if req.Start != nil && p < nParts-1 && bytes.Compare(cl.c.splits[p], req.Start) <= 0 {
				break // partition entirely below Start
			}
			if !visitPartition(p) {
				break
			}
		}
	}
	return out
}

// GetRangeScatter is GetRange for the ParallelExecutor: when the range
// spans several partitions in simulated mode, the per-partition scans
// are issued concurrently — each speculatively fetching up to Limit
// items — then concatenated in key order (partitions are disjoint,
// ordered byte ranges) and truncated to Limit. Speculation is sound for
// PIQL because every compiled plan is statically bounded: Limit is
// always a small constant. Wall-clock cost becomes the max of the
// per-partition round trips instead of their sum, at one storage
// operation per intersecting partition. With a single partition, or in
// immediate mode where there is no latency to hide, it falls back to the
// sequential early-stopping walk.
func (cl *Client) GetRangeScatter(req RangeRequest) []KV {
	lo, hi := cl.c.rangeParts(req.Start, req.End)
	if cl.proc == nil || lo == hi {
		return cl.GetRange(req)
	}
	parts := make([][]KV, hi-lo+1)
	ids := make([]int, hi-lo+1)
	for p := lo; p <= hi; p++ {
		ids[p-lo] = cl.readReplica(p) // parent RNG: deterministic draw order
	}
	fns := make([]func(*Client), hi-lo+1)
	for p := lo; p <= hi; p++ {
		p := p
		fns[p-lo] = func(sub *Client) {
			kvs := cl.c.nodes[ids[p-lo]].scan(boundedStart(cl.c, p, req.Start), boundedEnd(cl.c, p, req.End), req.Limit, req.Reverse)
			payload := 0
			for _, kv := range kvs {
				payload += len(kv.Value)
			}
			sub.visit(ids[p-lo], max(1, len(kvs)), payload)
			parts[p-lo] = kvs
		}
	}
	cl.Parallel(fns...)
	var out []KV
	if req.Reverse {
		for i := len(parts) - 1; i >= 0; i-- {
			out = append(out, parts[i]...)
		}
	} else {
		for _, kvs := range parts {
			out = append(out, kvs...)
		}
	}
	if req.Limit > 0 && len(out) > req.Limit {
		out = out[:req.Limit]
	}
	return out
}

// CountRange returns the number of keys in [start, end), walking all
// partitions intersecting the range. This backs cardinality-constraint
// enforcement (Section 7.2). In simulated mode the per-partition counts
// are gathered concurrently (counts are additive, so merge order is
// irrelevant), making the write path's constraint check cost one round
// trip instead of one per partition.
func (cl *Client) CountRange(start, end []byte) int {
	lo, hi := cl.c.rangeParts(start, end)
	countPartition := func(sub *Client, p, id int) int {
		n := cl.c.nodes[id].count(boundedStart(cl.c, p, start), boundedEnd(cl.c, p, end))
		sub.visit(id, max(1, n), 0)
		return n
	}
	total := 0
	if cl.proc == nil || lo == hi {
		for p := lo; p <= hi; p++ {
			total += countPartition(cl, p, cl.readReplica(p))
		}
		return total
	}
	counts := make([]int, hi-lo+1)
	fns := make([]func(*Client), hi-lo+1)
	for p := lo; p <= hi; p++ {
		p := p
		id := cl.readReplica(p)
		fns[p-lo] = func(sub *Client) { counts[p-lo] = countPartition(sub, p, id) }
	}
	cl.Parallel(fns...)
	for _, n := range counts {
		total += n
	}
	return total
}

// rangeParts returns the inclusive window [lo, hi] of partitions whose
// key range intersects [start, end). nil start/end leave that side
// unbounded. An empty range still yields a one-partition window so range
// operations always visit (and account) at least one node.
func (c *Cluster) rangeParts(start, end []byte) (lo, hi int) {
	lo, hi = 0, len(c.splits)
	if start != nil {
		lo = c.partitionOf(start)
	}
	if end != nil {
		// hi = largest partition whose lower bound splits[hi-1] < end.
		hi = sort.Search(len(c.splits), func(i int) bool {
			return bytes.Compare(c.splits[i], end) >= 0
		})
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// boundedStart clips start to partition p's lower bound. Since replicas
// hold whole partitions this is equivalent to the raw bound, but clipping
// keeps per-partition scans from double-counting items replicated onto
// successor nodes.
func boundedStart(c *Cluster, p int, start []byte) []byte {
	if p == 0 {
		return start
	}
	lower := c.splits[p-1]
	if start == nil || bytes.Compare(lower, start) > 0 {
		return lower
	}
	return start
}

func boundedEnd(c *Cluster, p int, end []byte) []byte {
	if p >= len(c.splits) {
		return end
	}
	upper := c.splits[p]
	if end == nil || bytes.Compare(upper, end) < 0 {
		return upper
	}
	return end
}

// Parallel runs fns concurrently (virtual-time children sharing this
// client's op counter) and returns when all complete. In immediate mode
// the functions run sequentially.
func (cl *Client) Parallel(fns ...func(sub *Client)) {
	if cl.proc == nil {
		for _, fn := range fns {
			fn(cl.child(nil))
		}
		return
	}
	wrapped := make([]func(*sim.Proc), len(fns))
	for i, fn := range fns {
		fn := fn
		wrapped[i] = func(p *sim.Proc) { fn(cl.child(p)) }
	}
	cl.proc.Parallel(wrapped...)
}

// child derives a client for a parallel branch, with its own RNG stream
// but op counts rolled up into the parent.
func (cl *Client) child(proc *sim.Proc) *Client {
	return &Client{
		c:      cl.c,
		proc:   proc,
		rng:    rand.New(rand.NewSource(cl.rng.Int63())),
		parent: cl,
	}
}

func sortInts(a []int) { sort.Ints(a) }
