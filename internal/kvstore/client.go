package kvstore

import (
	"bytes"
	"errors"
	"math/rand"
	"runtime"
	"slices"
	"sort"
	"sync"
	"time"

	"piql/internal/sim"
)

// Client is a per-process handle to the cluster. In simulated mode each
// operation advances the owning process's virtual clock by a network
// round trip plus queueing and service time at the target node; in
// immediate mode operations are instantaneous.
//
// A Client is not safe for concurrent use — its op counter and RNG are
// unsynchronized by design, keeping the per-operation hot path free of
// atomics. Spawn one Client per goroutine/session (the Parallel method
// creates children automatically); the Cluster behind them is safe for
// any number of concurrent Clients, including while it rebalances.
//
// Every operation claims one routing-table snapshot for its duration.
// Reads route through the snapshot (old owners keep serving a range
// until its move completes, so reads never fail mid-rebalance). Writes
// additionally double-write to the destinations of any in-flight move
// covering their key, and re-apply themselves if the routing table
// changed while they ran — the pair of rules that guarantees a rebalance
// loses no concurrent write.
type Client struct {
	c    *Cluster
	proc *sim.Proc  // nil in immediate mode
	rng  *rand.Rand // replica choice + RTT sampling
	id   int64      // cluster-unique; the version tiebreaker on writes

	ops          int64 // operations issued through this client (and its children)
	fenceRetries int64 // conditional ops retried after an epoch-fencing reject
	parent       *Client

	// readQuorum > 1 makes plain Get (and MultiGet) read through
	// GetQuorum with that R — staleness-bounded reads, threaded from
	// piql.Config.ReadQuorum.
	readQuorum int

	// lastErr is the first degraded-operation error recorded since the
	// last TakeErr — the sticky-error channel that lets the unchanged
	// Get/Put/... signatures surface *ErrNodeDown and friends to the
	// engine at operation boundaries. Recorded on the chain's root
	// client (see noteErr); single-goroutine like the rest of Client.
	lastErr error

	// Scratch reused across operations to keep the per-request hot path
	// allocation-lean. Safe because a Client is single-goroutine and the
	// scratch is only read (never written) while Parallel children run.
	byNode map[int][]int // multiGet: unique-key indexes grouped by node
	ids    []int         // multiGet: deterministic node order
	order  []int         // multiGet: key indexes sorted for deduplication
	dups   []int         // multiGet: flattened (dup, first) index pairs
	subs   []*Client     // fanOut goroutine children, reused across calls
}

// NewClient creates a client. proc may be nil for immediate mode.
func (c *Cluster) NewClient(proc *sim.Proc) *Client {
	seq := c.clientSeq.Add(1)
	return &Client{
		c:    c,
		proc: proc,
		rng:  rand.New(rand.NewSource(c.cfg.Seed ^ seq*0x5DEECE66D)),
		id:   seq,
	}
}

// SetReadQuorum makes this client's Get and MultiGet read R replicas
// per key through GetQuorum (newest version wins, stale replicas are
// read-repaired). r <= 1 restores plain single-replica reads.
func (cl *Client) SetReadQuorum(r int) { cl.readQuorum = r }

// noteErr records a degraded-operation error on this chain's root
// client. The first error wins (it is usually the root cause); TakeErr
// clears it. Recording on the root lets Parallel children surface
// through their parent; fanOut goroutine children are detached and
// merged after the join instead.
func (cl *Client) noteErr(err error) {
	r := cl
	for r.parent != nil {
		r = r.parent
	}
	if r.lastErr == nil {
		r.lastErr = err
	}
}

// TakeErr returns and clears the first degraded-operation error
// recorded since the last call. Read and write methods keep their
// plain signatures — a failed read returns absence, a write to a dead
// replica queues a catch-up — and anything that actually degraded the
// result (no reachable replica, quorum short, retry budget exhausted)
// lands here as a typed, errors.Is/As-able error. Callers that care
// (the engine's executor) drain it at operation boundaries.
func (cl *Client) TakeErr() error {
	e := cl.lastErr
	cl.lastErr = nil
	return e
}

// Ops returns the number of storage operations issued through this client
// since creation (including operations issued by Parallel children).
func (cl *Client) Ops() int64 { return cl.ops }

// ResetOps zeroes the operation counter and returns the previous value.
func (cl *Client) ResetOps() int64 {
	v := cl.ops
	cl.ops = 0
	return v
}

// Simulated reports whether the client runs on a virtual-time process.
// Simulated clients are cooperative — one process runs at a time — so
// code holding the scheduler token must never block on channels or
// locks another simulated process needs to make progress.
func (cl *Client) Simulated() bool { return cl.proc != nil }

// Yield parks the simulated process until the next pending event,
// letting every other runnable process advance before it resumes — the
// cooperative scheduler's runtime.Gosched. It is how simulated code
// waits for a condition another process must establish (e.g. the index
// backfill's writer drain) without blocking on a channel or lock while
// holding the scheduler token. No-op in immediate mode.
func (cl *Client) Yield() {
	if cl.proc != nil {
		cl.proc.Yield()
	}
}

// Now returns the process's virtual time, or 0 in immediate mode.
func (cl *Client) Now() time.Duration {
	if cl.proc == nil {
		return 0
	}
	return cl.proc.Now()
}

// countOp attributes one storage operation to this client chain.
func (cl *Client) countOp() {
	cl.c.ops.Add(1)
	for p := cl; p != nil; p = p.parent {
		p.ops++
	}
}

// visit pays the simulated cost of one request to node id: half an RTT
// out, queueing + service at the node, half an RTT (plus payload
// transfer) back. In immediate mode it is free.
func (cl *Client) visit(id int, items, payloadBytes int) {
	cl.countOp()
	if cl.proc == nil {
		return
	}
	cfg := cl.c.cfg.Latency
	rtt := cfg.rtt(cl.rng)
	cl.proc.Sleep(rtt / 2)
	n := cl.c.nodes[id]
	service := n.sampleService(cfg, cl.c.cfg.Seed, cl.proc.Now(), items, payloadBytes)
	n.queue.Use(cl.proc, service)
	cl.proc.Sleep(rtt - rtt/2)
}

// readRetryAttempts bounds how many backoff rounds a read spends
// waiting for any replica of its partition to become reachable before
// giving up with a typed error.
const readRetryAttempts = 3

// pickReplica picks the serving replica for partition p: a uniform
// choice over the partition's owners, failing over to the next live
// owner when the chosen one is unreachable. When every owner is
// unreachable it retries with backoff a bounded number of times (a
// restart may be in flight) before giving up with -1. With failover
// disabled (Cluster.SetFailover(false), the chaos falsification knob)
// the uniform choice is final: an unreachable pick is an immediate -1.
func (cl *Client) pickReplica(rt *routing, p int) int {
	owners := rt.owners[p]
	for attempt := 0; ; attempt++ {
		r := cl.rng.Intn(len(owners))
		if id := owners[r]; cl.c.reachable(id) {
			return id
		}
		if !cl.c.failover() {
			return -1
		}
		for i := 1; i < len(owners); i++ {
			if id := owners[(r+i)%len(owners)]; cl.c.reachable(id) {
				return id
			}
		}
		if attempt >= readRetryAttempts {
			return -1
		}
		cl.backoff(attempt)
	}
}

// backoff yields between retries: a virtual-time sleep in simulated
// mode (cooperative processes must never spin), a scheduler yield in
// immediate mode (wall-clock sleeps are forbidden in sim-linked
// packages, and a restart is typically a few scheduler quanta away —
// callers that need to outwait a real outage retry at their own level).
func (cl *Client) backoff(attempt int) {
	if cl.proc != nil {
		cl.proc.Sleep(time.Duration(attempt+1) * time.Millisecond)
		return
	}
	runtime.Gosched()
}

// Get returns the value under key, or (nil, false). The read goes to
// one replica chosen uniformly, failing over to a live replica when the
// chosen one is down; a deleted key (versioned tombstone) reads as
// absent. When no replica is reachable the read degrades to absence and
// records a *ErrNodeDown for TakeErr. With a read quorum configured
// (SetReadQuorum) the read goes through GetQuorum instead.
func (cl *Client) Get(key []byte) ([]byte, bool) {
	if cl.readQuorum > 1 {
		v, ok, err := cl.GetQuorum(key, cl.readQuorum)
		if err != nil {
			cl.noteErr(err)
		}
		return v, ok
	}
	rt := cl.c.beginOp()
	defer cl.c.endOp(rt)
	p := rt.partitionOf(key)
	id := cl.pickReplica(rt, p)
	if id < 0 {
		cl.noteErr(cl.c.downErr(rt.owners[p]))
		return nil, false
	}
	v, ok := cl.c.nodes[id].get(key)
	cl.visit(id, 1, len(v))
	return v, ok
}

// GetQuorum reads key from r distinct replicas, returns the value with
// the newest version among them, and read-repairs any replica observed
// stale (in the background in simulated mode). In this store an
// acknowledged write reaches every reachable owner synchronously, so at
// most the currently-unreachable (or recently recovered, not yet
// caught-up) replicas can be stale: while at most r-1 replicas are in
// that state, a quorum read never returns a value older than the last
// acknowledged write — the R/N staleness bound (R=1 is a plain
// uniform read and carries no bound). Returns *ErrNodeDown when fewer
// than r owners are reachable; the read made no decision and may be
// retried.
func (cl *Client) GetQuorum(key []byte, r int) ([]byte, bool, error) {
	rt := cl.c.beginOp()
	defer cl.c.endOp(rt)
	p := rt.partitionOf(key)
	owners := rt.owners[p]
	if r < 1 {
		r = 1
	}
	if r > len(owners) {
		r = len(owners)
	}
	// Gather r reachable owners starting from a uniform offset, so
	// quorum reads spread load across replicas like plain reads do.
	picked := make([]int, 0, r)
	off := cl.rng.Intn(len(owners))
	for i := 0; i < len(owners) && len(picked) < r; i++ {
		if id := owners[(off+i)%len(owners)]; cl.c.reachable(id) {
			picked = append(picked, id)
		}
	}
	if len(picked) < r {
		return nil, false, cl.c.downErr(owners)
	}
	var best []byte
	stale := false
	missing := 0
	for _, id := range picked {
		env, ok := cl.c.nodes[id].getRaw(key)
		cl.visit(id, 1, len(env))
		if !ok {
			missing++
			continue
		}
		if best == nil {
			best = env
			continue
		}
		if envVersion(env).After(envVersion(best)) {
			best = env
			stale = true
		} else if envVersion(best).After(envVersion(env)) {
			stale = true
		}
	}
	if best != nil && (stale || missing > 0 || len(picked) < len(owners)) {
		cl.repairReplicas(owners, key, best)
	}
	if best == nil || envIsTombstone(best) {
		return nil, false, nil
	}
	return envValue(best), true, nil
}

// repairReplicas converges every reachable owner onto the winning
// envelope — inline in immediate mode, as a background process in
// simulated mode (the quorum read's latency should not include the
// repair round).
func (cl *Client) repairReplicas(owners []int, key, env []byte) {
	if cl.proc != nil {
		c := cl.c
		cl.proc.Env().Spawn(func(*sim.Proc) {
			for _, id := range owners {
				if c.reachable(id) {
					c.nodes[id].applyIfNewer(key, env)
				}
			}
		})
		return
	}
	for _, id := range owners {
		if cl.c.reachable(id) {
			cl.c.nodes[id].applyIfNewer(key, env)
		}
	}
}

// GetVersionedPrimary is Get plus the stored version, routed to the
// key's authoritative primary instead of a uniformly-chosen replica. A
// deleted key reports its tombstone's version with ok=false; a
// never-written key reports the zero Version. The primary receives
// every write synchronously — replica catch-ups lag only the
// non-primary copies — so this read observes the newest version even
// under AsyncReplication; invariant checks (the index builder's ghost
// assertion) use it to avoid mistaking a lagged replica for a
// violation.
func (cl *Client) GetVersionedPrimary(key []byte) ([]byte, Version, bool) {
	rt := cl.c.beginOp()
	defer cl.c.endOp(rt)
	p := rt.partitionOf(key)
	id := rt.owners[p][0]
	if !cl.c.reachable(id) {
		cl.noteErr(cl.c.downErr(rt.owners[p]))
		return nil, Version{}, false
	}
	v, ver, ok := cl.c.nodes[id].getVersioned(key)
	cl.visit(id, 1, len(v))
	return v, ver, ok
}

// ReadRepair reads every reachable replica of key, converges any
// replica observed stale onto the newest version (applying the winning
// envelope with put-if-newer), and returns the winner's value. It is
// the on-demand repair path for read-heavy keys under async
// replication: a caller that just observed a stale or flip-flopping
// read can force the replicas together without waiting for the
// replication lag to drain. Unreachable replicas are skipped — the
// read still succeeds from the live ones, and the skipped replicas are
// brought back together by catch-up replay when they rejoin (or by a
// later ReadRepair once they have). Only when no replica at all is
// reachable does the read fail, recording a *ErrNodeDown for TakeErr.
func (cl *Client) ReadRepair(key []byte) ([]byte, bool) {
	rt := cl.c.beginOp()
	defer cl.c.endOp(rt)
	p := rt.partitionOf(key)
	owners := rt.owners[p]
	var best []byte
	read := 0
	for _, id := range owners {
		if !cl.c.reachable(id) {
			continue
		}
		env, ok := cl.c.nodes[id].getRaw(key)
		cl.visit(id, 1, len(env))
		read++
		if ok && (best == nil || envVersion(env).After(envVersion(best))) {
			best = env
		}
	}
	if read == 0 {
		cl.noteErr(cl.c.downErr(owners))
		return nil, false
	}
	if best == nil {
		return nil, false
	}
	for _, id := range owners {
		if !cl.c.reachable(id) {
			continue
		}
		if cl.c.nodes[id].applyIfNewer(key, best) {
			cl.visit(id, 1, len(best))
		}
	}
	if envIsTombstone(best) {
		return nil, false
	}
	return envValue(best), true
}

// MultiGet fetches several keys in one batched request per node, with
// the per-node requests issued in parallel — the Parallel executor's
// fast path. Repeated keys are deduplicated (fetched once, fanned out to
// every requesting position). Missing keys yield nil entries.
func (cl *Client) MultiGet(keys [][]byte) [][]byte {
	return cl.multiGet(keys, true)
}

// MultiGetSeq is MultiGet with the per-node batches issued one after
// another — the Simple executor's behavior: batching without
// intra-operator parallelism.
func (cl *Client) MultiGetSeq(keys [][]byte) [][]byte {
	return cl.multiGet(keys, false)
}

func (cl *Client) multiGet(keys [][]byte, parallel bool) [][]byte {
	out := make([][]byte, len(keys))
	if len(keys) == 0 {
		return out
	}
	if cl.readQuorum > 1 {
		// Quorum mode trades the per-node batching for the staleness
		// bound: each key is a quorum read (R visits).
		for i, k := range keys {
			v, ok, err := cl.GetQuorum(k, cl.readQuorum)
			if err != nil {
				cl.noteErr(err)
				continue
			}
			if ok {
				out[i] = v
			}
		}
		return out
	}
	rt := cl.c.beginOp()
	defer cl.c.endOp(rt)
	if len(keys) == 1 {
		// Point-lookup fast path: no grouping or dedup scratch.
		p := rt.partitionOf(keys[0])
		id := cl.pickReplica(rt, p)
		if id < 0 {
			cl.noteErr(cl.c.downErr(rt.owners[p]))
			return out
		}
		v, ok := cl.c.nodes[id].get(keys[0])
		payload := 0
		if ok {
			out[0] = v
			payload = len(v)
		}
		cl.visit(id, 1, payload)
		return out
	}
	// Deduplicate repeated keys — FK joins re-fetch the same parent
	// record constantly — by sorting the key indexes and aliasing runs of
	// equal keys to their first occurrence. Sort-based so dedup needs no
	// per-key string allocation; all scratch is reused across calls.
	cl.order = cl.order[:0]
	for i := range keys {
		cl.order = append(cl.order, i)
	}
	slices.SortFunc(cl.order, func(a, b int) int { return bytes.Compare(keys[a], keys[b]) })
	cl.dups = cl.dups[:0]
	if cl.byNode == nil {
		cl.byNode = make(map[int][]int)
	}
	for id, idxs := range cl.byNode {
		cl.byNode[id] = idxs[:0]
	}
	for j := 0; j < len(cl.order); {
		rep := cl.order[j]
		for j++; j < len(cl.order) && bytes.Equal(keys[cl.order[j]], keys[rep]); j++ {
			cl.dups = append(cl.dups, cl.order[j], rep)
		}
		p := rt.partitionOf(keys[rep])
		id := cl.pickReplica(rt, p)
		if id < 0 {
			cl.noteErr(cl.c.downErr(rt.owners[p]))
			continue // out entry stays nil for this key (and its dups)
		}
		cl.byNode[id] = append(cl.byNode[id], rep)
	}
	fetch := func(sub *Client, id int, idxs []int) {
		bytesTotal := 0
		for _, i := range idxs {
			v, ok := cl.c.nodes[id].get(keys[i])
			if ok {
				out[i] = v
				bytesTotal += len(v)
			}
		}
		sub.visit(id, len(idxs), bytesTotal)
	}
	// Deterministic node order for both modes.
	cl.ids = cl.ids[:0]
	for id, idxs := range cl.byNode {
		if len(idxs) > 0 {
			cl.ids = append(cl.ids, id)
		}
	}
	sortInts(cl.ids)
	if len(cl.ids) == 1 || cl.proc == nil || !parallel {
		for _, id := range cl.ids {
			fetch(cl, id, cl.byNode[id])
		}
	} else {
		fns := make([]func(*Client), len(cl.ids))
		for i, id := range cl.ids {
			id := id
			fns[i] = func(sub *Client) { fetch(sub, id, cl.byNode[id]) }
		}
		cl.Parallel(fns...)
	}
	for j := 0; j < len(cl.dups); j += 2 {
		out[cl.dups[j]] = out[cl.dups[j+1]]
	}
	return out
}

// Put stores value under key on every replica (parallel in simulated
// mode, or primary-then-async under AsyncReplication). The write is
// stamped from the key's primary clock, so racing Puts/Deletes from
// any number of clients converge every replica to the same winner.
// Writes never fail: a replica that is down gets the envelope queued
// as a versioned catch-up and replays it on rejoin, so an acknowledged
// write survives the outage.
func (cl *Client) Put(key, value []byte) {
	cl.writeStamped(key, value, false, nil)
}

// Delete removes key from every replica by writing a versioned
// tombstone (swept after the tombstone-GC grace period), so a delete
// racing an older Put wins on every replica regardless of arrival
// order.
func (cl *Client) Delete(key []byte) {
	cl.writeStamped(key, nil, true, nil)
}

// StampVersion draws a snapshot-barrier version: a timestamp strictly
// newer than every stamp any node has issued, which every node then
// observes — so every write that *starts* after this returns is
// stamped strictly newer. The index backfill uses it as its snapshot
// stamp (draw, drain in-flight writers, scan, replay at the stamp);
// per-write stamping goes through the key's primary clock instead
// (see writeStamped) and does not pay the all-nodes round.
func (cl *Client) StampVersion() Version {
	return Version{TS: cl.c.barrierStamp(), Client: cl.id}
}

// PutStamped stores value under key at a caller-chosen version instead
// of a fresh stamp. It loses to every write stamped after ver was
// drawn, which is the point: a bulk writer replaying data "as of" a
// snapshot (the index backfill) stamps everything at the snapshot
// version, and any live write that raced it — including a delete —
// outranks the replay on every replica.
func (cl *Client) PutStamped(key, value []byte, ver Version) {
	cl.writeStamped(key, value, false, &ver)
}

// writeRetryBudget bounds the routing-revalidation loop in
// writeStamped: the write re-applies itself only while rebalances keep
// flipping the table mid-operation, so the budget is only ever
// approached under a pathological rebalance storm — at which point the
// write (already applied under some table) stops retrying and records
// a *ErrFenceExhausted for TakeErr instead of spinning forever.
const writeRetryBudget = 64

// writeStamped routes one versioned put/delete. Unpinned writes (pin ==
// nil) are stamped from the key's primary clock — the node that orders
// the key's writes; observe-on-apply keeps the order intact across
// fail-overs — falling back to a cluster barrier stamp when the whole
// replica set is unreachable. The envelope is built once and applied
// with put-if-newer on every target — current replicas, lagged
// replicas, and the destinations of any in-flight move covering the
// key — and the operation retries (bounded by writeRetryBudget) if the
// routing table changed while it ran, so a concurrent rebalance can
// never strand it on a node that is no longer the key's owner.
// Re-application is naturally idempotent: the same envelope applied
// twice is a no-op.
func (cl *Client) writeStamped(key, val []byte, del bool, pin *Version) {
	var env []byte
	for attempt := 0; ; attempt++ {
		rt := cl.c.beginOp()
		if env == nil {
			ver := Version{Client: cl.id}
			if pin != nil {
				ver = *pin
			} else {
				ver.TS = cl.stampOn(rt, key)
			}
			env = makeEnvelope(ver, del, val)
		}
		cl.writeUnder(rt, key, env)
		settled := cl.c.routing.Load() == rt
		cl.c.endOp(rt)
		if settled {
			return
		}
		if attempt >= writeRetryBudget {
			cl.noteErr(&ErrFenceExhausted{Op: "write", Attempts: attempt + 1, Last: ErrTransient})
			return
		}
	}
}

// stampOn draws a write timestamp from the key's primary clock (first
// reachable owner) under rt, or from a cluster-wide barrier when the
// whole replica set is unreachable.
func (cl *Client) stampOn(rt *routing, key []byte) int64 {
	for _, id := range rt.owners[rt.partitionOf(key)] {
		if cl.c.reachable(id) {
			return cl.c.nodes[id].hlc.Next()
		}
	}
	return cl.c.barrierStamp()
}

// writeUnder applies one envelope under a specific routing table. Down
// targets get the envelope queued for catch-up replay instead of
// applied (applyOrQueue); the visit is paid either way — the attempt
// is part of the operation's cost.
func (cl *Client) writeUnder(rt *routing, key, env []byte) {
	p := rt.partitionOf(key)
	ids := rt.owners[p]
	mv := coveringMove(rt, key)
	if cl.c.cfg.AsyncReplication && cl.proc != nil && len(ids) > 1 {
		// Synchronous primary write; replicas catch up after ReplicaLag.
		// The lagged applies reuse the stamped envelope, so however the
		// catch-ups of racing writers interleave, every replica keeps the
		// newest version — the divergence the unversioned store allowed.
		primary := ids[0]
		cl.c.applyOrQueue(primary, key, env)
		cl.visit(primary, 1, len(key))
		lag := cl.c.cfg.ReplicaLag
		rest := append([]int(nil), ids[1:]...) // outlives this op's scratch
		cl.proc.Env().Spawn(func(p *sim.Proc) {
			p.Sleep(lag)
			// Revalidate ownership *and* liveness under a claimed routing
			// table at fire time: the cluster may have rebalanced during
			// the lag — a catch-up landing on a node that lost the range
			// would resurrect the key there after cleanup purged it — and
			// the target may have been killed meanwhile, in which case
			// the envelope must queue for its rejoin replay rather than
			// being applied to a crashed node (applyOrQueue decides). The
			// claim also serializes the catch-up against cleanup —
			// Rebalance drains claim holders before purging.
			crt := cl.c.beginOp()
			cp := crt.partitionOf(key)
			for _, id := range rest {
				if crt.isOwner(cp, id) {
					cl.c.applyOrQueue(id, key, env)
				} else {
					cl.c.cuDropped.Add(1)
				}
			}
			cl.c.endOp(crt)
		})
		// Move destinations are written synchronously even under async
		// replication: the flip must find them complete.
		cl.doubleApply(mv, key, env, ids[:1])
		return
	}
	if cl.proc == nil || len(ids) == 1 {
		for _, id := range ids {
			cl.c.applyOrQueue(id, key, env)
			cl.visit(id, 1, len(key))
		}
	} else {
		var fns []func(*Client)
		for _, id := range ids {
			id := id
			fns = append(fns, func(sub *Client) {
				cl.c.applyOrQueue(id, key, env)
				sub.visit(id, 1, len(key))
			})
		}
		cl.Parallel(fns...)
	}
	cl.doubleApply(mv, key, env, ids)
}

// coveringMove returns the in-flight move whose range contains key, or
// nil. Moves are disjoint, so at most one matches.
func coveringMove(rt *routing, key []byte) *move {
	for _, mv := range rt.moves {
		if mv.covers(key) {
			return mv
		}
	}
	return nil
}

// visitDsts pays one visit per move destination not already written as
// a current replica.
func (cl *Client) visitDsts(mv *move, ids []int, key []byte) {
	for _, id := range mv.dst {
		if !slices.Contains(ids, id) {
			cl.visit(id, 1, len(key))
		}
	}
}

// doubleApply lands the envelope on the move's destination nodes
// (skipping any already written as current replicas). Put-if-newer on
// both sides makes the double-write commute with the range copy: the
// writer's fresher envelope — value or tombstone — wins regardless of
// interleaving, which is what retired the pre-versioning chunk-window
// tombstone protocol.
func (cl *Client) doubleApply(mv *move, key, env []byte, written []int) {
	if mv == nil {
		return
	}
	for _, id := range mv.dst {
		if slices.Contains(written, id) {
			continue
		}
		cl.c.applyOrQueue(id, key, env)
		cl.visit(id, 1, len(env))
	}
}

// TestAndSet atomically updates key on its authoritative primary when
// the current value matches expect (nil = must be absent), then
// propagates to replicas. A nil update deletes the key. It reports
// whether the swap happened.
//
// TestAndSet is linearizable across rebalances. The decision runs under
// per-node epoch fencing: the primary rejects it (ErrFenced) when the
// claimed routing epoch is stale for the key's range — ownership moved —
// and the client retries under a fresh table, so exactly one node can
// ever accept a swap for a key, even while the routing flips. An
// accepted swap is stamped from the cluster HLC at decision time, so
// its propagation (put-if-newer on replicas and move destinations)
// outranks every write the decision observed — an older plain Put can
// never clobber it. On a range mid-move, the decision and its
// propagation happen inside the move window (mv.mu), serializing them
// against the flip's lease handover; the visits are paid after the
// window is released (sleeping inside it would stall a simulated
// environment and every writer on the range).
//
// If the swap is accepted but the routing changed while the operation
// ran, the accepted write is re-applied under the new table (the test
// itself is not re-run — it already decided, and fencing guarantees no
// other node decided meanwhile). A genuine rejection under an unchanged
// table is final.
//
// The retry loop is bounded by Config.FenceRetryBudget: when the
// primary is unreachable (crashed mid-lease) or keeps fencing, the
// operation backs off and retries until the budget runs out, then
// returns *ErrFenceExhausted. No decision was made in that case — the
// caller may retry the whole operation once the lease expires and
// Rebalance reclaims the range (or the primary restarts). A (false,
// nil) return is always a genuine test failure, never an availability
// artifact — the exactness the index maintainer's duplicate detection
// depends on.
func (cl *Client) TestAndSet(key, expect, update []byte) (bool, error) {
	budget := cl.c.cfg.FenceRetryBudget
	var last error
	for attempt := 0; attempt < budget; attempt++ {
		rt := cl.c.beginOp()
		p := rt.partitionOf(key)
		ids := rt.owners[p]
		primary := ids[0]
		if !cl.c.reachable(primary) {
			// Dead primary whose lease has not yet expired (Rebalance
			// would have reclaimed the range otherwise): no other node
			// may decide, so back off and retry — a restart or the
			// post-expiry reclaim unwedges the key.
			last = cl.c.downErr(ids[:1])
			cl.c.endOp(rt)
			cl.backoff(attempt)
			continue
		}
		mv := coveringMove(rt, key)
		var env []byte // the accepted swap's stamped envelope
		var ok bool
		var err error
		if mv == nil {
			env, ok, err = cl.c.nodes[primary].testAndSet(key, rt.epoch, expect, update, cl.id)
			cl.visit(primary, 1, len(key)+len(update))
			if ok {
				// Propagate the primary's stamped envelope: its version
				// was drawn after the decision read the current value, so
				// put-if-newer can never let an older plain Put — whenever
				// it arrives — clobber the accepted swap on any replica.
				// A down replica gets it queued for rejoin replay.
				for _, id := range ids[1:] {
					cl.c.applyOrQueue(id, key, env)
					cl.visit(id, 1, len(update))
				}
			}
		} else {
			mv.mu.Lock()
			env, ok, err = cl.c.nodes[primary].testAndSet(key, rt.epoch, expect, update, cl.id)
			if ok {
				// Accepted swap in a moving range: land the envelope on
				// every old owner and move destination inside the move
				// window, so the epoch flip never observes a
				// half-propagated decision. (The range copy itself needs
				// no coordination — its older envelopes lose to this one.)
				for _, id := range ids[1:] {
					cl.c.applyOrQueue(id, key, env)
				}
				for _, id := range mv.dst {
					if !slices.Contains(ids, id) {
						cl.c.applyOrQueue(id, key, env)
					}
				}
			}
			mv.mu.Unlock()
			cl.visit(primary, 1, len(key)+len(update))
			if ok {
				for _, id := range ids[1:] {
					cl.visit(id, 1, len(update))
				}
				cl.visitDsts(mv, ids, key)
			}
		}
		if err != nil {
			// Fenced (stale claim) or the primary died mid-contact.
			// Account the reject and retry under a fresh table — the
			// publish that moved ownership lands at most a few
			// instructions after the fence install.
			var fencedErr *ErrFenced
			if errors.As(err, &fencedErr) {
				cl.c.fenced.Add(1)
				cl.fenceRetries++
			}
			last = err
			cl.c.endOp(rt)
			cl.backoff(attempt)
			continue
		}
		cl.c.endOp(rt)
		// No re-application when the routing changed mid-operation (the
		// pre-fencing protocol re-ran the accepted value as a plain write
		// under the new table): an accepted swap has already reached every
		// new owner — through the move window's double-write when the
		// range was moving, or through the copy, which only starts after
		// the pre-move table drains, when it was not. Re-applying here
		// would in fact break linearizability: a swap accepted by the new
		// primary in the meantime would be clobbered by this operation's
		// older value. The decision — either way — is final.
		return ok, nil
	}
	return false, &ErrFenceExhausted{Op: "testandset", Attempts: budget, Last: last}
}

// FenceRetries returns how many times this client's conditional
// operations were fenced and retried under a fresher routing table.
func (cl *Client) FenceRetries() int64 { return cl.fenceRetries }

// RangeRequest describes a range read over [Start, End). A nil Start or
// End leaves that side unbounded. Limit 0 means unlimited. Reverse
// returns items in descending key order (from End side).
type RangeRequest struct {
	Start, End []byte
	Limit      int
	Reverse    bool
}

// GetRange reads a contiguous key range in order, walking partitions as
// needed. Each partition visited costs one storage operation. A
// partition whose replicas are all unreachable is skipped (degraded
// result) and a *ErrNodeDown is recorded for TakeErr.
func (cl *Client) GetRange(req RangeRequest) []KV {
	rt := cl.c.beginOp()
	out := cl.getRangeOn(rt, req, func(p int) int { return cl.pickReplica(rt, p) })
	cl.c.endOp(rt)
	return out
}

// GetRangePrimary is GetRange served by each partition's authoritative
// primary instead of a uniformly-chosen replica. The primary holds
// every write synchronously even under AsyncReplication, so bulk
// readers that must not act on lagged state — the index backfill,
// whose stale read of an already-deleted row would mint a dangling
// entry no tombstone outranks — scan through it (the same reasoning
// that makes Rebalance collect from primaries).
func (cl *Client) GetRangePrimary(req RangeRequest) []KV {
	rt := cl.c.beginOp()
	out := cl.getRangeOn(rt, req, func(p int) int {
		if id := rt.owners[p][0]; cl.c.reachable(id) {
			return id
		}
		return -1
	})
	cl.c.endOp(rt)
	return out
}

func (cl *Client) getRange(rt *routing, req RangeRequest) []KV {
	return cl.getRangeOn(rt, req, func(p int) int { return cl.pickReplica(rt, p) })
}

// getRangeOn walks the partitions intersecting req sequentially, with
// pick choosing the serving node per partition (-1 = no node can serve
// the partition; it is skipped and the degradation recorded).
func (cl *Client) getRangeOn(rt *routing, req RangeRequest, pick func(p int) int) []KV {
	nParts := rt.parts()
	var out []KV
	remaining := req.Limit

	visitPartition := func(p int) bool { // returns false when done
		id := pick(p)
		if id < 0 {
			cl.noteErr(cl.c.downErr(rt.owners[p]))
			return true
		}
		lim := 0
		if req.Limit > 0 {
			lim = remaining
		}
		kvs := cl.c.nodes[id].scan(boundedStart(rt, p, req.Start), boundedEnd(rt, p, req.End), lim, req.Reverse)
		bytesTotal := 0
		for _, kv := range kvs {
			bytesTotal += len(kv.Value)
		}
		cl.visit(id, max(1, len(kvs)), bytesTotal)
		out = append(out, kvs...)
		if req.Limit > 0 {
			remaining -= len(kvs)
			if remaining <= 0 {
				return false
			}
		}
		return true
	}

	if !req.Reverse {
		start := 0
		if req.Start != nil {
			start = rt.partitionOf(req.Start)
		}
		for p := start; p < nParts; p++ {
			if req.End != nil && p > 0 && len(rt.splits) >= p && bytes.Compare(rt.splits[p-1], req.End) >= 0 {
				break
			}
			if !visitPartition(p) {
				break
			}
		}
	} else {
		start := nParts - 1
		if req.End != nil {
			// The partition owning End also holds the keys just below
			// it, except when End sits exactly on a split boundary — then
			// the extra partition scan is harmless (empty result).
			start = rt.partitionOf(req.End)
		}
		for p := start; p >= 0; p-- {
			if req.Start != nil && p < nParts-1 && bytes.Compare(rt.splits[p], req.Start) <= 0 {
				break // partition entirely below Start
			}
			if !visitPartition(p) {
				break
			}
		}
	}
	return out
}

// GetRangeScatter is GetRange for the ParallelExecutor: when the range
// spans several partitions in simulated mode, the per-partition scans
// are issued concurrently — each speculatively fetching up to Limit
// items — then concatenated in key order (partitions are disjoint,
// ordered byte ranges) and truncated to Limit. Speculation is sound for
// PIQL because every compiled plan is statically bounded: Limit is
// always a small constant. Wall-clock cost becomes the max of the
// per-partition round trips instead of their sum, at one storage
// operation per intersecting partition. With a single partition it
// falls back to the sequential early-stopping walk. In immediate mode
// the fan-out runs on real goroutines (one per partition, detached
// child clients whose op counts merge back after the join), so
// non-simulated backends get the same intra-operator parallelism the
// virtual-time path models — previously immediate mode silently fell
// back to the sequential walk.
func (cl *Client) GetRangeScatter(req RangeRequest) []KV {
	rt := cl.c.beginOp()
	defer cl.c.endOp(rt)
	lo, hi := rt.rangeParts(req.Start, req.End)
	if lo == hi {
		return cl.getRange(rt, req)
	}
	parts := make([][]KV, hi-lo+1)
	ids := make([]int, hi-lo+1)
	for p := lo; p <= hi; p++ {
		ids[p-lo] = cl.pickReplica(rt, p) // parent RNG: deterministic draw order
		if ids[p-lo] < 0 {
			cl.noteErr(cl.c.downErr(rt.owners[p]))
		}
	}
	fns := make([]func(*Client), hi-lo+1)
	for p := lo; p <= hi; p++ {
		p := p
		if ids[p-lo] < 0 {
			fns[p-lo] = func(*Client) {} // unreachable partition: degraded result
			continue
		}
		fns[p-lo] = func(sub *Client) {
			kvs := cl.c.nodes[ids[p-lo]].scan(boundedStart(rt, p, req.Start), boundedEnd(rt, p, req.End), req.Limit, req.Reverse)
			payload := 0
			for _, kv := range kvs {
				payload += len(kv.Value)
			}
			sub.visit(ids[p-lo], max(1, len(kvs)), payload)
			parts[p-lo] = kvs
		}
	}
	cl.fanOut(fns...)
	var out []KV
	if req.Reverse {
		for i := len(parts) - 1; i >= 0; i-- {
			out = append(out, parts[i]...)
		}
	} else {
		for _, kvs := range parts {
			out = append(out, kvs...)
		}
	}
	if req.Limit > 0 && len(out) > req.Limit {
		out = out[:req.Limit]
	}
	return out
}

// CountRange returns the number of keys in [start, end), walking all
// partitions intersecting the range. This backs cardinality-constraint
// enforcement (Section 7.2). In simulated mode the per-partition counts
// are gathered concurrently (counts are additive, so merge order is
// irrelevant), making the write path's constraint check cost one round
// trip instead of one per partition.
func (cl *Client) CountRange(start, end []byte) int {
	rt := cl.c.beginOp()
	defer cl.c.endOp(rt)
	lo, hi := rt.rangeParts(start, end)
	countPartition := func(sub *Client, p, id int) int {
		n := cl.c.nodes[id].count(boundedStart(rt, p, start), boundedEnd(rt, p, end))
		sub.visit(id, max(1, n), 0)
		return n
	}
	total := 0
	if cl.proc == nil || lo == hi {
		for p := lo; p <= hi; p++ {
			id := cl.pickReplica(rt, p)
			if id < 0 {
				cl.noteErr(cl.c.downErr(rt.owners[p]))
				continue
			}
			total += countPartition(cl, p, id)
		}
		return total
	}
	counts := make([]int, hi-lo+1)
	fns := make([]func(*Client), hi-lo+1)
	for p := lo; p <= hi; p++ {
		p := p
		id := cl.pickReplica(rt, p)
		if id < 0 {
			cl.noteErr(cl.c.downErr(rt.owners[p]))
			fns[p-lo] = func(*Client) {}
			continue
		}
		fns[p-lo] = func(sub *Client) { counts[p-lo] = countPartition(sub, p, id) }
	}
	cl.Parallel(fns...)
	for _, n := range counts {
		total += n
	}
	return total
}

// boundedStart clips start to partition p's lower bound. Since replicas
// hold whole partitions this is equivalent to the raw bound, but clipping
// keeps per-partition scans from double-counting items replicated onto
// successor nodes.
func boundedStart(rt *routing, p int, start []byte) []byte {
	if p == 0 {
		return start
	}
	lower := rt.splits[p-1]
	if start == nil || bytes.Compare(lower, start) > 0 {
		return lower
	}
	return start
}

func boundedEnd(rt *routing, p int, end []byte) []byte {
	if p >= len(rt.splits) {
		return end
	}
	upper := rt.splits[p]
	if end == nil || bytes.Compare(upper, end) < 0 {
		return upper
	}
	return end
}

// fanOut runs fns concurrently even in immediate mode: simulated
// clients defer to Parallel (virtual-time children), immediate clients
// spawn one real goroutine per fn over detached child clients and merge
// their operation counts into this client's chain after the join (the
// detachment keeps the per-op counter walk in countOp race-free while
// the goroutines run). The children are scratch, pooled on the parent
// and reused across calls like the other per-op buffers. Callers must
// pre-draw any RNG decisions — the fns must not touch cl.rng.
func (cl *Client) fanOut(fns ...func(sub *Client)) {
	if cl.proc != nil {
		cl.Parallel(fns...)
		return
	}
	for len(cl.subs) < len(fns) {
		cl.subs = append(cl.subs, &Client{c: cl.c, rng: rand.New(rand.NewSource(cl.rng.Int63())), id: cl.id})
	}
	var wg sync.WaitGroup
	for i, fn := range fns {
		sub := cl.subs[i]
		sub.ops = 0
		sub.lastErr = nil
		wg.Add(1)
		//lint:allow goroleak — fan-out children are wg-joined before fanOut returns; fn is the caller's sub-operation and shares its lifetime.
		go func(sub *Client, fn func(*Client)) {
			defer wg.Done()
			fn(sub)
		}(sub, fn)
	}
	wg.Wait()
	for _, sub := range cl.subs[:len(fns)] {
		for p := cl; p != nil; p = p.parent {
			p.ops += sub.ops
		}
		if sub.lastErr != nil {
			cl.noteErr(sub.lastErr)
			sub.lastErr = nil
		}
	}
}

// Parallel runs fns concurrently (virtual-time children sharing this
// client's op counter) and returns when all complete. In immediate mode
// the functions run sequentially.
func (cl *Client) Parallel(fns ...func(sub *Client)) {
	if cl.proc == nil {
		for _, fn := range fns {
			fn(cl.child(nil))
		}
		return
	}
	wrapped := make([]func(*sim.Proc), len(fns))
	for i, fn := range fns {
		fn := fn
		wrapped[i] = func(p *sim.Proc) { fn(cl.child(p)) }
	}
	cl.proc.Parallel(wrapped...)
}

// child derives a client for a parallel branch, with its own RNG stream
// but op counts rolled up into the parent.
func (cl *Client) child(proc *sim.Proc) *Client {
	return &Client{
		c:          cl.c,
		proc:       proc,
		rng:        rand.New(rand.NewSource(cl.rng.Int63())),
		id:         cl.id,
		parent:     cl,
		readQuorum: cl.readQuorum,
	}
}

func sortInts(a []int) { sort.Ints(a) }
