package lint_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"piql/internal/lint"
)

const escapeFixtureSrc = `package fix

type T struct{ n int }

func Alloc() *T {
	t := &T{}
	return t
}

func (t *T) Grow(xs []int) []int {
	out := make([]int, 0, len(xs)+1)
	return append(out, xs...)
}

func stays(n int) int {
	v := n + 1
	return v
}
`

func parseEscapeFixture(t *testing.T) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", escapeFixtureSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestParseEscapeDiagnostics(t *testing.T) {
	out := []byte(strings.Join([]string{
		"# piql/internal/codec",
		"fix.go:6:7: &T{} escapes to heap",
		"fix.go:11:13: make([]int, 0, len(xs) + 1) escapes to heap",
		"fix.go:12:9: moved to heap: out",
		"fix.go:17:2: v does not escape",
		"fix.go:5:6: can inline Alloc",
		"fix.go:10:7: leaking param: xs",
		"garbage line with no colons",
		"",
	}, "\n"))
	raws := lint.ParseEscapeDiagnostics(out)
	if len(raws) != 3 {
		t.Fatalf("kept %d diagnostics, want 3 (heap escapes only): %+v", len(raws), raws)
	}
	if raws[0].File != "fix.go" || raws[0].Line != 6 || raws[0].Col != 7 || !strings.Contains(raws[0].What, "escapes to heap") {
		t.Fatalf("first diagnostic mangled: %+v", raws[0])
	}
	if !strings.Contains(raws[2].What, "moved to heap") {
		t.Fatalf("moved-to-heap not kept: %+v", raws[2])
	}
}

func TestAttributeEscapes(t *testing.T) {
	fset, files := parseEscapeFixture(t)
	raws := []lint.EscapeRaw{
		{File: "fix.go", Line: 6, Col: 7, What: "&T{} escapes to heap"},
		{File: "fix.go", Line: 11, Col: 13, What: "make escapes to heap"},
		{File: "fix.go", Line: 12, Col: 9, What: "moved to heap: out"},
		{File: "other.go", Line: 6, Col: 1, What: "foreign file escapes to heap"},
		{File: "fix.go", Line: 3, Col: 1, What: "outside any function escapes to heap"},
	}
	sites := lint.AttributeEscapes(fset, files, "piql/fix", raws)
	if got := len(sites["piql/fix.Alloc"]); got != 1 {
		t.Fatalf("Alloc attributed %d sites, want 1: %+v", got, sites)
	}
	if got := len(sites["piql/fix.(*T).Grow"]); got != 2 {
		t.Fatalf("(*T).Grow attributed %d sites, want 2: %+v", got, sites)
	}
	if len(sites) != 2 {
		t.Fatalf("foreign-file or out-of-function sites leaked in: %+v", sites)
	}
	grow := sites["piql/fix.(*T).Grow"]
	if grow[0].Pos.Line > grow[1].Pos.Line {
		t.Fatalf("sites not sorted by position: %+v", grow)
	}
}

func TestDeclaredFuncKeys(t *testing.T) {
	_, files := parseEscapeFixture(t)
	keys := lint.DeclaredFuncKeys(files)
	for _, want := range []string{"Alloc", "(*T).Grow", "stays"} {
		if !keys[want] {
			t.Fatalf("missing declared key %q in %v", want, keys)
		}
	}
}

func TestParseEscapeBudget(t *testing.T) {
	counts, order, err := lint.ParseEscapeBudget([]byte(
		"# comment\n\npiql/internal/codec.DecodeKey 3\npiql/internal/kvstore.(*Client).MultiGet 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if counts["piql/internal/codec.DecodeKey"] != 3 || counts["piql/internal/kvstore.(*Client).MultiGet"] != 0 {
		t.Fatalf("parsed counts wrong: %v", counts)
	}
	if len(order) != 2 || order[0] != "piql/internal/codec.DecodeKey" {
		t.Fatalf("entry order lost: %v", order)
	}
	// Round trip through the formatter.
	counts2, order2, err := lint.ParseEscapeBudget(lint.FormatEscapeBudget(counts, order))
	if err != nil || len(counts2) != len(counts) || order2[1] != order[1] {
		t.Fatalf("format round trip broke: %v %v %v", counts2, order2, err)
	}
	for _, bad := range []string{
		"piql/internal/codec.DecodeKey\n",            // missing count
		"piql/internal/codec.DecodeKey three\n",      // non-numeric
		"piql/internal/codec.DecodeKey -1\n",         // negative
		"piql/x.F 1\npiql/x.F 2\n",                   // duplicate
		"piql/internal/codec.DecodeKey 1 trailing\n", // extra field
	} {
		if _, _, err := lint.ParseEscapeBudget([]byte(bad)); err == nil {
			t.Fatalf("malformed budget %q parsed without error", bad)
		}
	}
}

func TestEscapeBudgetImportPath(t *testing.T) {
	for _, tc := range []struct{ entry, ip, key string }{
		{"piql/internal/codec.DecodeKey", "piql/internal/codec", "DecodeKey"},
		{"piql/internal/kvstore.(*Client).MultiGet", "piql/internal/kvstore", "(*Client).MultiGet"},
		{"piql.Top", "piql", "Top"},
	} {
		ip, key, ok := lint.EscapeBudgetImportPath(tc.entry)
		if !ok || ip != tc.ip || key != tc.key {
			t.Fatalf("split %q = %q, %q, %v; want %q, %q", tc.entry, ip, key, ok, tc.ip, tc.key)
		}
	}
	if _, _, ok := lint.EscapeBudgetImportPath("nodotanywhere"); ok {
		t.Fatal("entry without function key must not split")
	}
}

// TestEscapeBudgetAnalyzer drives the analyzer directly: over budget
// reports at the first excess site, at or under budget stays silent,
// and a unit with no escape info (a plain vet unit) is skipped rather
// than run — so its //lint:allow directives are not audited as stale.
func TestEscapeBudgetAnalyzer(t *testing.T) {
	a := byName(t, "escapebudget")
	fset, files := parseEscapeFixture(t)
	raws := []lint.EscapeRaw{
		{File: "fix.go", Line: 6, Col: 7, What: "&T{} escapes to heap"},
		{File: "fix.go", Line: 11, Col: 13, What: "make escapes to heap"},
		{File: "fix.go", Line: 12, Col: 9, What: "moved to heap: out"},
	}
	sites := lint.AttributeEscapes(fset, files, "piql/fix", raws)
	unit := &lint.Unit{
		Fset:       fset,
		Files:      files,
		ImportPath: "piql/fix",
		Escapes: &lint.EscapeInfo{
			Budget: map[string]int{
				"piql/fix.Alloc":     1, // at budget: silent
				"piql/fix.(*T).Grow": 1, // one over: report
			},
			Sites: sites,
		},
	}
	diags, _ := lint.RunUnit(unit, []*lint.Analyzer{a})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if !strings.Contains(d.Message, "piql/fix.(*T).Grow") ||
		!strings.Contains(d.Message, "has 2 heap escapes, over its budget of 1") {
		t.Fatalf("diagnostic does not cite function and budget: %s", d.Message)
	}
	if d.Pos.Line != 12 {
		t.Fatalf("report at line %d, want the first over-budget site (12)", d.Pos.Line)
	}

	// No escape info → skipped entirely, no diagnostics.
	plain := &lint.Unit{Fset: fset, Files: files, ImportPath: "piql/fix"}
	if diags, _ := lint.RunUnit(plain, []*lint.Analyzer{a}); len(diags) != 0 {
		t.Fatalf("skipped unit still produced diagnostics: %v", diags)
	}
}
