// Package linttest runs lint analyzers over testdata packages and
// checks their diagnostics against expectations written in the source,
// in the style of go/analysis/analysistest:
//
//	c.routing.Load() // want `raw routing.Load`
//
// A `// want` comment expects exactly one diagnostic on its line whose
// message matches the backquoted or quoted regexp; any diagnostic on a
// line without one, or an expectation that nothing matches, fails the
// test.
package linttest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"piql/internal/lint"
)

var wantRe = regexp.MustCompile("^// want (`[^`]*`|\"[^\"]*\")$")

// expectation is one `// want` comment.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run parses every .go file under dir as one package and applies the
// analyzer, comparing diagnostics to `// want` comments.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var expects []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: parse %s: %v", path, err)
		}
		files = append(files, f)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				lit := m[1]
				var pat string
				if lit[0] == '`' {
					pat = lit[1 : len(lit)-1]
				} else if unq, err := strconv.Unquote(lit); err == nil {
					pat = unq
				} else {
					t.Fatalf("linttest: %s: bad want literal %s", fset.Position(c.Pos()), lit)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("linttest: %s: bad want pattern: %v", fset.Position(c.Pos()), err)
				}
				p := fset.Position(c.Pos())
				expects = append(expects, &expectation{file: p.Filename, line: p.Line, pattern: re})
			}
		}
	}

	diags := lint.Run(fset, files, "testdata/"+a.Name, []*lint.Analyzer{a})
	for _, d := range diags {
		found := false
		for _, ex := range expects {
			if ex.file == d.Pos.Filename && ex.line == d.Pos.Line && ex.pattern.MatchString(d.Message) {
				ex.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, ex := range expects {
		if !ex.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", ex.file, ex.line, ex.pattern)
		}
	}
}
