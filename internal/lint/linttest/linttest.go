// Package linttest runs lint analyzers over testdata packages and
// checks their diagnostics against expectations written in the source,
// in the style of go/analysis/analysistest:
//
//	c.routing.Load() // want `raw routing.Load`
//
// A `// want` comment expects exactly one diagnostic on its line whose
// message matches the backquoted or quoted regexp; any diagnostic on a
// line without one, or an expectation that nothing matches, fails the
// test. The marker may trail other comment text, so a //lint:allow
// directive can carry a want for the stale-directive diagnostic
// reported at its own position.
//
// Fixture packages are fully typechecked (via the lint package's
// source loader, so they may import piql/... packages), which is what
// lets the interprocedural analyzers — lockorder, holdblock,
// errtaxonomy — run against them exactly as they run in the vettool.
package linttest

import (
	"regexp"
	"strconv"
	"sync"
	"testing"

	"piql/internal/lint"
)

var wantRe = regexp.MustCompile("// want (`[^`]*`|\"[^\"]*\")\\s*$")

// expectation is one `// want` comment.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// loader is shared across tests in the process so the standard library
// is typechecked from source once, not once per fixture.
var (
	loaderOnce sync.Once
	loader     *lint.Loader
	loaderErr  error
)

// Run applies one analyzer to the fixture package in dir.
func Run(t *testing.T, dir string, a *lint.Analyzer) {
	t.Helper()
	RunAnalyzers(t, dir, []*lint.Analyzer{a})
}

// RunAnalyzers typechecks the fixture package in dir, runs the
// analyzers over it, and compares diagnostics (including stale
// //lint:allow reports) to `// want` comments.
func RunAnalyzers(t *testing.T, dir string, analyzers []*lint.Analyzer) {
	t.Helper()
	for _, a := range analyzers {
		if a == nil {
			t.Fatal("linttest: nil analyzer (was its registration deleted?)")
		}
	}
	loaderOnce.Do(func() {
		loader, loaderErr = lint.NewLoader(dir)
	})
	if loaderErr != nil {
		t.Fatalf("linttest: %v", loaderErr)
	}
	lp, err := loader.LoadDir(dir, "piql/internal/lint/"+dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}

	var expects []*expectation
	fset := loader.Fset()
	for _, f := range lp.Unit.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				lit := m[1]
				var pat string
				if lit[0] == '`' {
					pat = lit[1 : len(lit)-1]
				} else if unq, err := strconv.Unquote(lit); err == nil {
					pat = unq
				} else {
					t.Fatalf("linttest: %s: bad want literal %s", fset.Position(c.Pos()), lit)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("linttest: %s: bad want pattern: %v", fset.Position(c.Pos()), err)
				}
				p := fset.Position(c.Pos())
				expects = append(expects, &expectation{file: p.Filename, line: p.Line, pattern: re})
			}
		}
	}

	unit := *lp.Unit
	unit.Facts = lint.NewFactStore()
	diags, _ := lint.RunUnit(&unit, analyzers)
	for _, d := range diags {
		found := false
		for _, ex := range expects {
			if !ex.matched && ex.file == d.Pos.Filename && ex.line == d.Pos.Line && ex.pattern.MatchString(d.Message) {
				ex.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, ex := range expects {
		if !ex.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", ex.file, ex.line, ex.pattern)
		}
	}
}
