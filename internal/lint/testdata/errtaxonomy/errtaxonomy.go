// Test fixture for the errtaxonomy analyzer: this package declares the
// ErrTransient sentinel, so the producer rules apply — every error
// type must unwrap to it (or be allowlisted fatal), untyped
// constructions are rejected — and the consumer rules catch ==,
// string matching, and type assertions on errors whose sources the
// interprocedural summaries mark transient.
package errtaxfix

import (
	"errors"
	"fmt"
	"strings"
)

// ErrTransient is the retryability sentinel, mirroring kvstore's.
var ErrTransient = errors.New("errtaxfix: transient")

var errCorrupt = errors.New("errtaxfix: corrupt") // want `package-level error errCorrupt is opaque`

// ErrNodeDown unwraps to the sentinel: conformant.
type ErrNodeDown struct{ Node int }

func (e *ErrNodeDown) Error() string { return fmt.Sprintf("node %d down", e.Node) }
func (e *ErrNodeDown) Unwrap() error { return ErrTransient }

// ErrStuck implements error with no Unwrap chain: invisible to
// errors.Is(err, ErrTransient), so the taxonomy rejects the type.
type ErrStuck struct{} // want `error type ErrStuck does not unwrap`

func (e *ErrStuck) Error() string { return "stuck" }

// flakyOp's summary: may return *errtaxfix.ErrNodeDown, transient.
func flakyOp(n int) error {
	if n > 0 {
		return &ErrNodeDown{Node: n}
	}
	return nil
}

func makeUntyped() error {
	return errors.New("op failed") // want `untyped error`
}

// fatalAudit is on the fatal allowlist (ErrTaxonomyFatalAllow):
// deliberately non-retryable, so the bare fmt.Errorf is accepted.
func fatalAudit() error {
	return fmt.Errorf("audit mismatch: %d replicas disagree", 7)
}

// wrapped preserves the chain with %w: conformant.
func wrapped(n int) error {
	if err := flakyOp(n); err != nil {
		return fmt.Errorf("wrapped: %w", err)
	}
	return nil
}

func badCompare(n int) bool {
	err := flakyOp(n)
	return err == ErrTransient // want `compared with ==`
}

func badStringMatch(n int) bool {
	err := flakyOp(n)
	if err == nil {
		return false
	}
	return strings.Contains(err.Error(), "down") // want `matching on err.Error`
}

func badAssert(err error) bool {
	_, ok := err.(*ErrStuck) // want `use errors.As`
	return ok
}

// goodClassify is the sanctioned pattern.
func goodClassify(n int) bool {
	err := flakyOp(n)
	return errors.Is(err, ErrTransient)
}

// nilChecksFine: comparisons against nil are not identity bugs.
func nilChecksFine(n int) bool {
	return flakyOp(n) != nil
}
