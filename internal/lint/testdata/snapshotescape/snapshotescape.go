// Test fixture for the snapshotescape analyzer: a value derived from
// beginOp's claimed routing snapshot must not outlive the matching
// endOp. Heap stores, goroutine captures, and returns past the release
// are flagged; leaf copies (epochs, key bounds) and claim-scoped use
// stay silent. A helper that returns the snapshot without releasing is
// the sanctioned acquire shape and taints its callers instead.
package snapescfix

type node struct{ addr string }

type table struct {
	epoch  int64
	owners []string
	nodes  map[string]*node
}

type cluster struct {
	cur *table
}

// beginOp/endOp shims: claimPairs in interproc.go matches by name on
// module-local functions, so the fixture carries the claim contract.
func beginOp(c *cluster) *table  { return c.cur }
func endOp(c *cluster, t *table) { _ = t }
func use(t *table)               { _ = t }

var sink *table

// badStoreGlobal: the snapshot outlives the claim through a package
// variable — after endOp the table may be retired under it.
func badStoreGlobal(c *cluster) {
	rt := beginOp(c)
	sink = rt // want `derived from the routing snapshot claimed by beginOp \(claimed at snapshotescape\.go:\d+\) is stored to package variable sink, escaping the beginOp/endOp scope`
	endOp(c, rt)
}

// holder models caller-visible state reachable through a receiver.
type holder struct{ last *table }

// badStoreField: same escape through a receiver field.
func (h *holder) badStoreField(c *cluster) {
	rt := beginOp(c)
	h.last = rt // want `is stored to caller-visible state through h, escaping the beginOp/endOp scope`
	endOp(c, rt)
}

// badStoreParam: and through an out-parameter.
func badStoreParam(c *cluster, out **table) {
	rt := beginOp(c)
	*out = rt // want `is stored to caller-visible state through out, escaping the beginOp/endOp scope`
	endOp(c, rt)
}

// badGoroutineCapture: the spawned goroutine may run after endOp
// releases the claim.
func badGoroutineCapture(c *cluster) {
	rt := beginOp(c)
	go func() { // want `is captured by a spawned goroutine, which may run after endOp releases the claim`
		use(rt)
	}()
	endOp(c, rt)
}

// badReturnPastRelease: the function releases the claim itself, then
// hands the caller a pointer into a table nobody pins.
func badReturnPastRelease(c *cluster) *table {
	rt := beginOp(c)
	endOp(c, rt)
	return rt // want `is returned past the matching endOp; the routing table may be retired before the caller reads it`
}

// snapshot is the sanctioned acquire-helper shape: it returns the
// claimed snapshot without releasing, so the claim transfers to the
// caller and the function's SnapshotTainted summary seeds callers.
func snapshot(c *cluster) *table {
	return beginOp(c)
}

// badStoreViaHelper: a snapshot obtained through the helper escapes the
// same way — provenance seeds at the helper call via its summary.
func badStoreViaHelper(c *cluster) {
	rt := snapshot(c)
	sink = rt // want `derived from the routing snapshot claimed via snapshot .* is stored to package variable sink`
	use(rt)
}

// okScopedUse: derived values used inside the claim scope are the
// point of the claim.
func okScopedUse(c *cluster, key string) *node {
	rt := beginOp(c)
	n := rt.nodes[key]
	use(rt)
	endOp(c, rt)
	_ = n
	return nil
}

// okLeafCopy: an epoch is bytes; copying it out does not pin the
// table.
func okLeafCopy(c *cluster) int64 {
	rt := beginOp(c)
	e := rt.epoch
	endOp(c, rt)
	return e
}

// okOwnerNames: slices of basic element type are leaf data too.
func okOwnerNames(c *cluster) []string {
	rt := beginOp(c)
	names := append([]string(nil), rt.owners...)
	endOp(c, rt)
	return names
}
