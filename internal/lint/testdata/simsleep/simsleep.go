// Test fixture for the simsleep analyzer: this package imports the
// simulator, so wall-clock sleeps are forbidden.
package simsleep

import (
	"time"

	"piql/internal/sim"
)

func worker(p *sim.Proc) {
	p.Sleep(5 * time.Millisecond) // virtual time: fine
	time.Sleep(time.Millisecond)  // want `time.Sleep in simulation code`
}

func helper() {
	time.Sleep(10 * time.Millisecond) // want `time.Sleep in simulation code`
}

func shadowed() {
	type fake struct{}
	time := struct{ f fake }{}
	_ = time
}
