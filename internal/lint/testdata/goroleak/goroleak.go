// Test fixture for the goroleak analyzer: every go statement needs a
// provable termination path. Parked-forever shapes — unbuffered sends
// nobody drains, receives on channels no path closes, selects with no
// escape, unbounded loops — are flagged at the spawn; bounded loops,
// buffered sends, done-channel receives, and WaitGroup discipline stay
// silent.
package goroleakfix

import "sync"

// leakUnbufferedSend: the spawned body sends on a channel every make
// site leaves unbuffered, and no receiver is in sight.
func leakUnbufferedSend() {
	ch := make(chan int)
	go func() { // want `send on .*ch.* with no provable capacity`
		ch <- 1
	}()
}

// okBufferedSend: constant positive capacity means the send completes
// even if the result is never read.
func okBufferedSend() chan int {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
	return ch
}

// leakRecvNeverClosed: receiving from a channel this package never
// closes, with no done-like name to vouch for it.
func leakRecvNeverClosed(feed chan int) {
	go func() { // want `range over .*feed.*, which no analyzed path closes`
		for v := range feed {
			_ = v
		}
	}()
}

// okRecvClosed: some path in the package closes the channel, so the
// range terminates.
func okRecvClosed() {
	feedClosed := make(chan int)
	go func() {
		for v := range feedClosed {
			_ = v
		}
	}()
	close(feedClosed)
}

// okRecvDoneName: a done-named channel is a shutdown signal by
// convention even when the close lives in another package.
func okRecvDoneName(done chan struct{}) {
	go func() {
		<-done
	}()
}

// leakSelectNoEscape: neither case terminates — both receive from
// channels nothing closes — and there is no default.
func leakSelectNoEscape(a, b chan int) {
	go func() { // want `select with no default and no done/close case`
		select {
		case <-a:
		case <-b:
		}
	}()
}

// okSelectDone: the done case gives the loop an exit.
func okSelectDone(a chan int, done chan struct{}) {
	go func() {
		for {
			select {
			case <-a:
			case <-done:
				return
			}
		}
	}()
}

// leakInfiniteLoop: `for {}` with no break, return, or panic.
func leakInfiniteLoop() {
	go func() { // want `infinite for-loop with no break or return`
		for {
			busyStep()
		}
	}()
}

// okBoundedLoop: a plain counted loop terminates.
func okBoundedLoop() {
	go func() {
		for i := 0; i < 10; i++ {
			busyStep()
		}
	}()
}

// okWaitGroup: Wait always escapes — the analyzers treat WaitGroup
// discipline (every Add matched by a Done) as the spawner's contract.
func okWaitGroup(wg *sync.WaitGroup) {
	go func() {
		wg.Wait()
	}()
}

// leakNamedBlocker: spawning a named function whose summary carries a
// park risk reports at the spawn, with the callee chain as witness.
func leakNamedBlocker(feed chan int) {
	go drainForever(feed) // want `goroutine has no provable termination path: .*drainForever`
}

func drainForever(feed chan int) {
	for v := range feed {
		_ = v
	}
}

// okNamedTerminating: a named callee with no park risk is trusted.
func okNamedTerminating() {
	go busyStep()
}

// leakDynamicSpawn: a function value's termination is not analyzable.
func leakDynamicSpawn(fn func()) {
	go fn() // want `spawns a function value`
}

// allowDynamicSpawn: a justified dynamic spawn is suppressed.
func allowDynamicSpawn(fn func()) {
	//lint:allow goroleak — fixture: caller joins via its own discipline
	go fn()
}

func busyStep() {}
