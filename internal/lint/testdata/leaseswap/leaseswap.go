// Test fixture for the leaseswap analyzer: published lease tables are
// immutable; replacements go through leases.Store.
package leaseswap

import "sync/atomic"

type lease struct{ epoch int64 }

type leaseTable struct {
	leases []lease
}

type node struct {
	leases atomic.Pointer[leaseTable]
}

func swapWhole(n *node, fresh []lease) {
	n.leases.Store(&leaseTable{leases: fresh}) // the sanctioned path
}

func mutateDirect(n *node) {
	n.leases.Load().leases[0] = lease{epoch: 9} // want `assignment through leases.Load`
}

func mutateField(n *node, fresh []lease) {
	n.leases.Load().leases = fresh // want `assignment through leases.Load`
}

func appendDirect(n *node, l lease) {
	_ = append(n.leases.Load().leases, l) // want `append to a loaded lease table`
}

func mutateViaLocal(n *node) {
	lt := n.leases.Load()
	lt.leases[0] = lease{epoch: 9} // want `assignment through leases.Load`
}

func readOnly(n *node, key int) *lease {
	lt := n.leases.Load()
	if len(lt.leases) == 0 {
		return nil
	}
	return &lt.leases[0]
}

func freshCopy(n *node) {
	lt := n.leases.Load()
	next := make([]lease, len(lt.leases))
	copy(next, lt.leases)
	next[0] = lease{epoch: 9}
	n.leases.Store(&leaseTable{leases: next})
}
