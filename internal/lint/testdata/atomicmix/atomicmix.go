// Test fixture for the atomicmix analyzer: a field accessed atomically
// anywhere must never be read or written plainly. Rule 1 covers
// sync/atomic-typed fields (copying or overwriting the cell), rule 2
// covers plain-typed fields touched by function-style atomics, rule 3
// covers plain writes through a value obtained from an atomic Load —
// directly or via a helper whose AtomicResults summary marks its
// return as loaded.
package atomicmixfix

import "sync/atomic"

type payload struct {
	owners []string
	limit  int
}

type box struct {
	val atomic.Pointer[payload]
	n   atomic.Int64
}

// okMethods: the typed-atomic API — Load/Store receivers and
// address-taking — is the sanctioned surface.
func okMethods(b *box, p *payload) *payload {
	b.val.Store(p)
	b.n.Add(1)
	ptr := &b.val
	return ptr.Load()
}

// badCopyCell: copying the atomic value forks the cell — the copy's
// Store is invisible to readers of the original.
func badCopyCell(b *box) int64 {
	n := b.n // want `plain read of atomic field atomicmixfix\.box\.n copies the atomic cell; every access must go through its Load/Store/CAS methods`
	return n.Load()
}

// badOverwriteCell: assigning over the cell races with every method
// call on it.
func badOverwriteCell(b *box) {
	b.n = atomic.Int64{} // want `plain write of atomic field atomicmixfix\.box\.n overwrites the atomic cell`
}

// counter is rule 2: hits is plain-typed, but bump touches it with
// function-style atomics, so it is an atomic field everywhere.
type counter struct {
	hits uint64
}

func bump(c *counter) {
	atomic.AddUint64(&c.hits, 1) // sanctioned: the atomic site itself
}

func badPlainRead(c *counter) uint64 {
	return c.hits // want `plain read of field atomicmixfix\.counter\.hits, which is accessed with sync/atomic operations; mixed plain/atomic access tears`
}

func badPlainInc(c *counter) {
	c.hits++ // want `plain write of field atomicmixfix\.counter\.hits, which is accessed with sync/atomic operations`
}

// badWriteThroughLoad is rule 3: the Load result is a published
// snapshot other goroutines read concurrently; mutating it in place
// breaks copy-on-write.
func badWriteThroughLoad(b *box) {
	p := b.val.Load()
	p.limit = 7 // want `plain write through a value loaded from atomic field atomicmixfix\.box\.val \(Load at atomicmix\.go:\d+\): atomically-published state is copy-on-write`
}

// loadVal is an acquire-helper: its AtomicResults summary marks the
// return as loaded, so callers' writes are caught too.
func loadVal(b *box) *payload {
	return b.val.Load()
}

func badWriteViaHelper(b *box) {
	p := loadVal(b)
	p.owners = append(p.owners, "n1") // want `plain write through a value loaded from atomic field atomicmixfix\.box\.val via loadVal`
}

// okCopyOnWrite: the sanctioned mutation — copy, modify, Store.
func okCopyOnWrite(b *box) {
	old := b.val.Load()
	next := &payload{owners: append([]string(nil), old.owners...), limit: old.limit + 1}
	b.val.Store(next)
}

// okValueCopyMutation: dereferencing the Load into a struct value
// copies it; the field write lands in the copy and republishing takes
// a Store — copy-on-write spelled with a value.
func okValueCopyMutation(b *box) {
	p := *b.val.Load()
	p.limit = 9
	b.val.Store(&p)
}

// badSliceElemThroughCopy: the struct copy still shares its slice's
// backing array with the published value — an element write tears.
func badSliceElemThroughCopy(b *box) {
	p := *b.val.Load()
	p.owners[0] = "mutated" // want `plain write through a value loaded from atomic field atomicmixfix\.box\.val`
}

// okLeafCopy: copying leaf data out of a loaded snapshot copies bytes;
// it does not alias the published value.
func okLeafCopy(b *box) int {
	p := b.val.Load()
	limit := p.limit
	limit++
	return limit
}
