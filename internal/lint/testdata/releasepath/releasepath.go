// Test fixture for the releasepath analyzer: every acquire must
// release on all exits. Early returns that skip the unlock, holds
// never released at all, and unbalanced beginOp/endOp-style claims are
// flagged at the leaking exit; the defer idiom and balanced paths stay
// silent.
package releasepathfix

import "sync"

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	v  int
}

// leakEarlyReturn: the classic bug — the error path returns with the
// mutex held while the happy path unlocks.
func leakEarlyReturn(g *guarded, bad bool) int {
	g.mu.Lock()
	if bad {
		return 0 // want `mutex .*guarded\.mu is still held at this return but released on another path`
	}
	v := g.v
	g.mu.Unlock()
	return v
}

// okBalanced: both paths unlock before returning.
func okBalanced(g *guarded, bad bool) int {
	g.mu.Lock()
	if bad {
		g.mu.Unlock()
		return 0
	}
	v := g.v
	g.mu.Unlock()
	return v
}

// okDeferred: defer releases on every exit, early returns included.
func okDeferred(g *guarded, bad bool) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if bad {
		return 0
	}
	return g.v
}

// leakBeforeDefer: the defer is registered after an early return has
// already leaked the hold — statement order matters.
func leakBeforeDefer(g *guarded, bad bool) int {
	g.mu.Lock()
	if bad {
		return 0 // want `mutex .*guarded\.mu is still held at this return but released on another path`
	}
	defer g.mu.Unlock()
	return g.v
}

// leakNeverReleased: no path unlocks; either a total leak or an
// acquire-helper that must declare itself with //lint:allow.
func leakNeverReleased(g *guarded) {
	g.mu.Lock()
} // want `mutex .*guarded\.mu is never released on any path through .*leakNeverReleased`

// leakRLock: the shared side leaks the same way.
func leakRLock(g *guarded, bad bool) int {
	g.rw.RLock()
	if bad {
		return 0 // want `mutex .*guarded\.rw is still held at this return but released on another path`
	}
	v := g.v
	g.rw.RUnlock()
	return v
}

// routing-claim pair: beginOp hands out a routing-table claim that
// endOp must return (see claimPairs in interproc.go).
type table struct{ gen int }

func beginOp(t *table) int  { return t.gen }
func endOp(t *table, g int) { _ = g }

// leakClaimEarlyReturn: the claim from beginOp is not returned on the
// error path — the old routing table would be pinned forever.
func leakClaimEarlyReturn(t *table, bad bool) int {
	g := beginOp(t)
	if bad {
		return 0 // want `claim .*beginOp/endOp is still held at this return but released on another path`
	}
	endOp(t, g)
	return g
}

// okClaimDeferred: deferring the endOp balances every exit.
func okClaimDeferred(t *table, bad bool) int {
	g := beginOp(t)
	defer endOp(t, g)
	if bad {
		return 0
	}
	return g
}

// allowAcquireHelper: an intentional lock-and-return helper carries a
// directive naming the contract; the hold is still exported as a
// NetAcquires fact so cross-package callers are checked.
//
//lint:allow releasepath — fixture: acquire-helper contract, callers must release
func allowAcquireHelper(g *guarded) {
	g.mu.Lock()
}
