// Test fixture for stale-suppression detection: a //lint:allow whose
// analyzer ran but suppressed nothing is itself reported, at the
// directive's own position; a directive that suppresses a real
// diagnostic stays silent.
package staleallow

import "sync/atomic"

type routing struct{ epoch int64 }

type cluster struct {
	routing atomic.Pointer[routing]
}

func (c *cluster) beginOp() *routing {
	return c.routing.Load()
}

// live: the directive suppresses a real routingclaim diagnostic, so it
// is not stale.
func (c *cluster) live() *routing {
	//lint:allow routingclaim — audit path, cluster quiesced by caller
	return c.routing.Load()
}

// stale: nothing on the next line violates routingclaim anymore; the
// leftover directive is reported.
func (c *cluster) stale() int64 {
	//lint:allow routingclaim — justified long ago, code since refactored // want `suppresses no diagnostic`
	return 42
}
