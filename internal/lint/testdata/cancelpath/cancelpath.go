// Test fixture for the cancelpath analyzer: every cancel func from
// context.WithCancel/WithTimeout/WithDeadline must be invoked or
// deferred on every exit path. Discarding the cancel func is reported
// at the assignment; handing it to another owner (returned, passed,
// captured by a closure) transfers the obligation and ends tracking.
package cancelpathfix

import (
	"context"
	"time"
)

func work(ctx context.Context) { _ = ctx }

// leakEarlyReturn: the error path returns without canceling — the
// child context and its timer stay registered until the parent dies.
func leakEarlyReturn(parent context.Context, bad bool) int {
	ctx, cancel := context.WithCancel(parent)
	work(ctx)
	if bad {
		return 0 // want `cancel func cancel from context\.WithCancel \(created at line \d+\) is not called on this exit path`
	}
	cancel()
	return 1
}

// leakFallThrough: one branch cancels, the fall-through exit does not.
func leakFallThrough(parent context.Context, bad bool) {
	ctx, cancel := context.WithCancel(parent)
	work(ctx)
	if !bad {
		cancel()
	}
} // want `cancel func cancel from context\.WithCancel \(created at line \d+\) is not called on this exit path`

// leakTimeout: the timer variant leaks its timer too.
func leakTimeout(parent context.Context, d time.Duration, bad bool) int {
	ctx, cancel := context.WithTimeout(parent, d)
	work(ctx)
	if bad {
		return 0 // want `cancel func cancel from context\.WithTimeout \(created at line \d+\) is not called on this exit path`
	}
	cancel()
	return 1
}

// discard: nothing can ever cancel this context.
func discard(parent context.Context, d time.Duration) context.Context {
	ctx, _ := context.WithTimeout(parent, d) // want `cancel func from context\.WithTimeout is discarded; nothing can ever cancel this context`
	return ctx
}

// okDeferred: the defer idiom covers every exit, early returns
// included.
func okDeferred(parent context.Context, bad bool) int {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	work(ctx)
	if bad {
		return 0
	}
	return 1
}

// okAllPaths: both exits cancel explicitly.
func okAllPaths(parent context.Context, bad bool) {
	ctx, cancel := context.WithCancel(parent)
	work(ctx)
	if bad {
		cancel()
		return
	}
	cancel()
}

// okHandoffReturn: returning the cancel func transfers the obligation
// to the caller.
func okHandoffReturn(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(parent)
	return ctx, cancel
}

func register(stop context.CancelFunc) { _ = stop }

// okHandoffArg: passing the cancel func to another owner transfers the
// obligation.
func okHandoffArg(parent context.Context) context.Context {
	ctx, cancel := context.WithCancel(parent)
	register(cancel)
	return ctx
}

// okClosureOwns: a closure capture transfers ownership — the closure's
// schedule is not this function's exit paths.
func okClosureOwns(parent context.Context) func() {
	ctx, cancel := context.WithCancel(parent)
	work(ctx)
	return func() { cancel() }
}

// okLoopPerIteration: creation and cancel balanced inside each
// iteration leaves nothing outstanding at the function exit.
func okLoopPerIteration(parent context.Context, n int) {
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithCancel(parent)
		work(ctx)
		cancel()
	}
}

// cancelInsideLiteral: obligations created inside a literal body are
// the literal's own and are checked against its exits.
func cancelInsideLiteral(parent context.Context, bad bool) func() {
	return func() {
		ctx, cancel := context.WithCancel(parent)
		work(ctx)
		if bad {
			return // want `cancel func cancel from context\.WithCancel \(created at line \d+\) is not called on this exit path`
		}
		cancel()
	}
}
