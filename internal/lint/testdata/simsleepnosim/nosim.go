// Test fixture for the simsleep analyzer's scope: this package does
// not import the simulator, so wall-clock sleeps are allowed.
package simsleepnosim

import "time"

func retryBackoff() {
	time.Sleep(50 * time.Millisecond)
}
