// Test fixture for the holdblock analyzer: blocking operations —
// directly or through a callee that may block — while a mutex is held
// exclusively. Shared (RLock) holds and plain spawns stay silent.
package holdblockfix

import (
	"sync"
	"time"
)

type box struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	wg sync.WaitGroup
}

func sendUnderMutex(b *box) {
	b.mu.Lock()
	b.ch <- 1 // want `channel send while holding`
	b.mu.Unlock()
}

func recvUnderMutex(b *box) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch // want `channel receive while holding`
}

func sleepUnderMutex(b *box) {
	b.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while holding`
	b.mu.Unlock()
}

func waitUnderMutex(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.wg.Wait() // want `sync.WaitGroup.Wait while holding`
}

// blockingHelper blocks with nothing held: fine on its own, but its
// summary says "may block", so calling it under a mutex is not.
func blockingHelper(b *box) {
	b.ch <- 2
}

func callBlockerUnderMutex(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	blockingHelper(b) // want `may block .* while holding`
}

// sendAfterUnlock releases before blocking: the critical section is
// over, no diagnostic.
func sendAfterUnlock(b *box) {
	b.mu.Lock()
	b.mu.Unlock()
	b.ch <- 3
}

// sendUnderRLock: shared holds are excluded by design (the engine
// holds its write gate shared across whole executions).
func sendUnderRLock(b *box) {
	b.rw.RLock()
	defer b.rw.RUnlock()
	b.ch <- 4
}

// spawnUnderMutex: the goroutine blocks, the spawner does not.
func spawnUnderMutex(b *box) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.ch <- 5
	}()
}

// branchRelease unlocks on the early-return path before blocking and
// keeps the lock on the other: only the held path is flagged.
func branchRelease(b *box, early bool) {
	b.mu.Lock()
	if early {
		b.mu.Unlock()
		b.ch <- 6
		return
	}
	b.ch <- 7 // want `channel send while holding`
	b.mu.Unlock()
}
