// Test fixture for the routingclaim analyzer: loading the routing
// pointer raw vs. claiming it through beginOp.
package routingclaim

import "sync/atomic"

type routing struct{ epoch int64 }

type cluster struct {
	routing atomic.Pointer[routing]
}

// beginOp is the sanctioned claim path: raw loads are its job.
func (c *cluster) beginOp() *routing {
	rt := c.routing.Load()
	for {
		if c.routing.Load() == rt { // settled comparison inside beginOp
			return rt
		}
		rt = c.routing.Load()
	}
}

func (c *cluster) dataPath() int64 {
	rt := c.routing.Load() // want `raw routing.Load`
	return rt.epoch
}

func (c *cluster) settledCheck(rt *routing) bool {
	// Comparison against an already claimed snapshot never follows the
	// pointer, so it is allowed.
	return c.routing.Load() == rt
}

func (c *cluster) chained() int64 {
	return c.routing.Load().epoch // want `raw routing.Load`
}

// controlPlane reads routing under the cluster mutex; the directive in
// this doc comment suppresses the whole function.
//
//lint:allow routingclaim — control-plane read under c.mu
func (c *cluster) controlPlane() *routing {
	return c.routing.Load()
}

func (c *cluster) lineDirective() *routing {
	//lint:allow routingclaim — audit path, cluster quiesced by caller
	return c.routing.Load()
}
