// Test fixture for the lockorder analyzer: a seeded two-lock cycle
// (direct and through calls), instance nesting of one lock class, and
// consistently ordered nesting that must stay silent.
package lockorderfix

import "sync"

type server struct {
	a sync.Mutex
	b sync.Mutex
	c sync.Mutex
}

// abPath and baPath take a and b in opposite orders: the classic
// deadlock. Both edges of the cycle are reported.
func abPath(s *server) {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock() // want `lock-order cycle`
	defer s.b.Unlock()
}

func baPath(s *server) {
	s.b.Lock()
	defer s.b.Unlock()
	s.a.Lock() // want `lock-order cycle`
	defer s.a.Unlock()
}

// safeOrder nests c strictly under a everywhere: a hierarchy, not a
// cycle — no diagnostic.
func safeOrder(s *server) {
	s.a.Lock()
	s.c.Lock()
	s.c.Unlock()
	s.a.Unlock()
}

func safeOrderAgain(s *server) {
	s.a.Lock()
	defer s.a.Unlock()
	s.c.Lock()
	defer s.c.Unlock()
}

type pair struct {
	x sync.Mutex
	y sync.Mutex
}

// The same cycle through calls: the edge comes from the callee's
// transitive acquire set, reported at the call site.
func viaCallForward(p *pair) {
	p.x.Lock()
	defer p.x.Unlock()
	lockY(p) // want `lock-order cycle`
}

func viaCallBackward(p *pair) {
	p.y.Lock()
	defer p.y.Unlock()
	lockX(p) // want `lock-order cycle`
}

func lockY(p *pair) {
	p.y.Lock()
	p.y.Unlock()
}

func lockX(p *pair) {
	p.x.Lock()
	p.x.Unlock()
}

type window struct {
	mu sync.Mutex
}

// Two instances of one lock class nested: safe only under a global
// instance order the analyzer cannot see, so it must be flagged (and
// justified with a directive where intended).
func nestInstances(w1, w2 *window) {
	w1.mu.Lock()
	w2.mu.Lock() // want `another instance`
	w2.mu.Unlock()
	w1.mu.Unlock()
}
