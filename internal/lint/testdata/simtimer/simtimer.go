// Test fixture for the simtimer analyzer: this package imports the
// simulator, so wall-clock timer constructors are forbidden.
package simtimer

import (
	"time"

	"piql/internal/sim"
)

func waiter(p *sim.Proc) {
	p.Sleep(5 * time.Millisecond)  // virtual time: fine
	<-time.After(time.Millisecond) // want `time.After in simulation code`
}

func ticker() {
	t := time.NewTicker(time.Second) // want `time.NewTicker in simulation code`
	defer t.Stop()
	tm := time.NewTimer(time.Second) // want `time.NewTimer in simulation code`
	_ = tm
	_ = time.Tick(time.Second) // want `time.Tick in simulation code`
}

func reading() {
	_ = time.Now()             // reading the clock is fine
	_ = time.Since(time.Now()) // so is measuring with it
}

//lint:allow simtimer — harness pacing documented at the site
func suppressed() {
	<-time.After(time.Millisecond)
}
