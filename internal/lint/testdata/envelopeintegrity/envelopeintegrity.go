// Test fixture for the envelopeintegrity analyzer: applyIfNewer must
// receive full version envelopes.
package envelopeintegrity

const envHeader = 17

type node struct{}

func (n *node) applyIfNewer(key, env []byte) bool { return len(env) >= envHeader }

func envValue(env []byte) []byte { return env[envHeader:] }

func ok(n *node, key, env []byte) {
	n.applyIfNewer(key, env) // full envelope: fine
}

func strippedDirect(n *node, key, env []byte) {
	n.applyIfNewer(key, envValue(env)) // want `stripped envelope`
}

func strippedSlice(n *node, key, env []byte) {
	n.applyIfNewer(key, env[envHeader:]) // want `stripped envelope`
}

func strippedViaLocal(n *node, key, env []byte) {
	val := envValue(env)
	n.applyIfNewer(key, val) // want `stripped envelope`
}

func reassignedLocal(n *node, key, env []byte) {
	val := envValue(env)
	val = env // restored to a full envelope before the call
	n.applyIfNewer(key, val)
}
