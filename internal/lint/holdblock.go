package lint

import (
	"strconv"
	"strings"
)

// HoldBlock flags code that can block while holding a mutex
// exclusively — the exact shape of the PR 4–7 hangs that chaos storms
// only caught by luck. Blocking here means: a channel send or receive,
// a select with no default, sync.Cond.Wait, sync.WaitGroup.Wait,
// time.Sleep, or a call to any function whose summary says it may do
// one of those — which, through the vetx facts, includes cross-node
// client calls ((*kvstore.Client).Get parks the simulated process in
// sim.Resource.Use) and every sim primitive built on park/wake.
//
// Under the cooperative simulator the stakes are total: a process that
// parks while holding a mutex freezes virtual time for the whole
// cluster if any other process needs that mutex to advance. Shared
// (RLock) holds are deliberately not reported — the engine holds
// writeGate.RLock across entire query executions by design, and
// writers take the other side with a cooperative TryLock spin.
var HoldBlock = &Analyzer{
	Name: "holdblock",
	Doc:  "never block (channel op, Wait, Sleep, or a may-block call) while holding a mutex",
	Run:  runHoldBlock,
}

func runHoldBlock(pass *Pass) {
	if pass.ip == nil {
		return
	}
	for _, fi := range pass.ip.funcs {
		for _, obs := range fi.blocksDirect {
			hl := &held{locks: obs.held}
			if excl := hl.exclusiveIDs(); len(excl) > 0 {
				pass.Reportf(obs.pos,
					"%s while holding %s; blocking under a mutex can wedge every goroutine that needs it (move the blocking op outside the critical section)",
					obs.desc, joinHeld(excl))
			}
		}
		for _, c := range fi.calls {
			hl := &held{locks: c.held}
			excl := hl.exclusiveIDs()
			if len(excl) == 0 {
				continue
			}
			fact, ok := pass.ip.calleeFact(c.fn)
			if !ok || !fact.Blocks {
				continue
			}
			via := ""
			if fact.BlockPath != "" {
				via = " (via " + fact.BlockPath + ")"
			}
			pass.Reportf(c.pos,
				"call to %s may block%s while holding %s; release the mutex before the call",
				calleeDisplay(c.fn), via, joinHeld(excl))
		}
	}
}

// joinHeld renders a held-lock list for a message, capping the tail.
func joinHeld(ids []string) string {
	if len(ids) <= 2 {
		return strings.Join(ids, " and ")
	}
	return strings.Join(ids[:2], ", ") + " (+" + strconv.Itoa(len(ids)-2) + " more)"
}
