package lint

import (
	"go/ast"
)

// LeaseSwap enforces the lease-table swap protocol (kvstore/fence.go):
// a node's lease table is immutable once published — the conditional
// write path reads it with a bare atomic load and a binary search, no
// lock shared with Rebalance. Mutating a table reached via
// leases.Load() (assigning through it, or appending to its slice,
// which may write the shared backing array) would race those readers;
// replacements must build a fresh leaseTable and leases.Store() it.
var LeaseSwap = &Analyzer{
	Name: "leaseswap",
	Doc:  "lease tables are swapped whole via leases.Store, never mutated in place",
	Run:  runLeaseSwap,
}

func runLeaseSwap(pass *Pass) {
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if refsLoadedLeases(lhs, enclosingFunc(stack)) {
						pass.Reportf(lhs.Pos(),
							"assignment through leases.Load(): build a new leaseTable and swap it with leases.Store")
					}
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" && len(n.Args) > 0 &&
					refsLoadedLeases(n.Args[0], enclosingFunc(stack)) {
					pass.Reportf(n.Pos(),
						"append to a loaded lease table may write its shared backing array: copy into a new leaseTable and leases.Store it")
				}
			}
		})
	}
}

// refsLoadedLeases reports whether e reaches through a leases.Load()
// result — directly, or via a local ident assigned from one.
func refsLoadedLeases(e ast.Expr, fn *ast.FuncDecl) bool {
	if containsSelectorCall(e, "leases", "Load") {
		return true
	}
	// Follow one level of local indirection: lt := nd.leases.Load();
	// lt.leases[0] = x.
	root := e
	for {
		switch r := root.(type) {
		case *ast.SelectorExpr:
			root = r.X
		case *ast.IndexExpr:
			root = r.X
		case *ast.SliceExpr:
			root = r.X
		default:
			if id, ok := root.(*ast.Ident); ok && root != e {
				if def := resolveIdent(fn, id.Name, e.Pos()); def != nil {
					return containsSelectorCall(def, "leases", "Load")
				}
			}
			return false
		}
	}
}
