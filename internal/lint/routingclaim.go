package lint

import (
	"go/ast"
	"go/token"
)

// RoutingClaim enforces the routing-snapshot claim protocol
// (kvstore/cluster.go): data-path code must obtain routing tables via
// beginOp/endOp, which registers the operation on the snapshot's
// wait-group so Rebalance can quiesce in-flight operations before
// flipping ownership. A raw load of the atomic routing pointer skips
// the claim — the operation becomes invisible to the rebalancer and
// can read partitions mid-move.
//
// Allowed without a directive:
//   - the body of beginOp itself (it implements the protocol);
//   - loads used directly in an ==/!= comparison against an already
//     claimed snapshot (the "did routing settle" check), which never
//     dereference the table.
//
// Control-plane readers that run under the cluster mutex annotate
// themselves with //lint:allow routingclaim.
var RoutingClaim = &Analyzer{
	Name: "routingclaim",
	Doc:  "routing snapshots must be claimed via beginOp/endOp, not loaded raw",
	Run:  runRoutingClaim,
}

func runRoutingClaim(pass *Pass) {
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := isSelectorCall(n, "routing", "Load")
			if !ok {
				return
			}
			if fd := enclosingFunc(stack); fd != nil && fd.Name.Name == "beginOp" {
				return
			}
			if len(stack) > 0 {
				if be, ok := stack[len(stack)-1].(*ast.BinaryExpr); ok &&
					(be.Op == token.EQL || be.Op == token.NEQ) {
					return
				}
			}
			pass.Reportf(call.Pos(),
				"raw routing.Load(): claim the snapshot via beginOp/endOp so Rebalance can quiesce it")
		})
	}
}
