package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Parse-only module scan, for the incremental standalone driver: the
// lint cache needs every package's file list and module-local import
// edges (to key cache entries by content + dependency facts and to
// process packages in dependency order) without paying for a
// typecheck of packages whose cached results will be replayed.

// ScannedPackage is one package found by ScanModule.
type ScannedPackage struct {
	Dir        string
	ImportPath string
	// Files are the absolute paths of the package's non-test .go
	// files, sorted.
	Files []string
	// LocalImports are the module-local packages it imports, sorted.
	LocalImports []string
}

// ScanModule enumerates the module's packages by parsing import
// clauses only, returning them topologically sorted: every package
// after all module-local packages it imports.
func ScanModule(start string) ([]*ScannedPackage, error) {
	l, err := NewLoader(start)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(l.ModuleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(p)
		if p != l.ModuleRoot && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata") {
			return filepath.SkipDir
		}
		entries, rdErr := os.ReadDir(p)
		if rdErr != nil {
			return rdErr
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, p)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	fset := token.NewFileSet()
	byPath := map[string]*ScannedPackage{}
	var order []string
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		sp := &ScannedPackage{Dir: dir, ImportPath: path}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		imports := map[string]bool{}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			full := filepath.Join(dir, name)
			f, err := parser.ParseFile(fset, full, nil, parser.ImportsOnly)
			if err != nil {
				return nil, err
			}
			sp.Files = append(sp.Files, full)
			for _, imp := range f.Imports {
				if p, err := strconv.Unquote(imp.Path.Value); err == nil &&
					(p == l.ModulePath || strings.HasPrefix(p, l.ModulePath+"/")) {
					imports[p] = true
				}
			}
		}
		sort.Strings(sp.Files)
		for p := range imports {
			sp.LocalImports = append(sp.LocalImports, p)
		}
		sort.Strings(sp.LocalImports)
		byPath[path] = sp
		order = append(order, path)
	}

	// Topological order (DFS, stable over the sorted path list).
	var out []*ScannedPackage
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		sp, ok := byPath[path]
		if !ok {
			return nil // import of a module path with no buildable package
		}
		switch state[path] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		for _, dep := range sp.LocalImports {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = 2
		out = append(out, sp)
		return nil
	}
	for _, path := range order {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return out, nil
}
