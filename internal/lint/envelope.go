package lint

import (
	"go/ast"
)

// EnvelopeIntegrity enforces that replica writes keep their version
// envelopes intact (kvstore/hlc.go): applyIfNewer decides writes by
// comparing the 17-byte version header, so passing it a payload that
// has been stripped with envValue (or sliced past envHeader) would
// reinterpret payload bytes as a version — silently corrupting
// last-writer-wins convergence. The value argument must always be a
// full envelope.
var EnvelopeIntegrity = &Analyzer{
	Name: "envelopeintegrity",
	Doc:  "applyIfNewer must receive full version envelopes, never envValue output",
	Run:  runEnvelopeIntegrity,
}

func runEnvelopeIntegrity(pass *Pass) {
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "applyIfNewer" {
				return
			}
			arg := call.Args[1]
			if id, ok := arg.(*ast.Ident); ok {
				if def := resolveIdent(enclosingFunc(stack), id.Name, call.Pos()); def != nil {
					arg = def
				}
			}
			if isStrippedEnvelope(arg) {
				pass.Reportf(call.Args[1].Pos(),
					"stripped envelope passed to applyIfNewer: pass the full version envelope (17-byte header intact)")
			}
		})
	}
}

// isStrippedEnvelope recognizes the two ways of dropping the header:
// calling envValue, or slicing from envHeader.
func isStrippedEnvelope(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "envValue" {
			return true
		}
	case *ast.SliceExpr:
		if lo, ok := e.Low.(*ast.Ident); ok && lo.Name == "envHeader" {
			return true
		}
	}
	return false
}
