package lint

// GoroLeak flags `go` statements whose spawned body has no provable
// termination path — the goroutine-lifecycle analyzer. A goroutine
// that parks forever leaks its stack, pins whatever it captured, and
// under the cooperative simulator wedges virtual time; the scatter-
// gather fan-outs, read-repair probes, async catch-ups, and chaos
// fleets this tree spawns are exactly the shapes where a forgotten
// drain turns into an unbounded leak.
//
// Termination is established per body by the interprocedural walk
// (see interproc.go): every blocking operation needs an escape —
// a send on a channel every make() site buffers, a receive or range
// on a channel some statement in the package closes (or one named
// like a shutdown signal: done/stop/quit/…), a select with a default
// or with a case receiving from such a channel, a WaitGroup join, a
// time.Sleep — and every `for {` loop needs a break, return, or
// never-returning call. Calls chain through the may-block facts, so a
// spawned named function is judged by its own summary, including one
// imported from another package's vetx file. Two shapes stay
// unknowable and are reported as such: spawning a function value, and
// a body that calls through a function value (the walk cannot see the
// callee, so it cannot see it terminate).
//
// The witness in the diagnostic is the park path: the call chain from
// the go statement to the primitive with no escape, with file:line of
// the primitive. Deliberately-detached workers are suppressed at the
// go statement with //lint:allow goroleak and a justification for why
// the lifetime is bounded by other means.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc:  "every go statement must spawn a body with a provable termination path",
	Run:  runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	if pass.ip == nil {
		return
	}
	for _, fi := range pass.ip.funcs {
		for _, sp := range fi.spawns {
			switch {
			case sp.dynamic:
				pass.Reportf(sp.pos,
					"go statement spawns a function value, whose termination is not analyzable; spawn a named function or a literal so the lifecycle can be checked")
			case sp.target != nil:
				if sp.target.parkRisk != "" {
					pass.Reportf(sp.pos,
						"goroutine has no provable termination path: %s; a goroutine parked forever leaks (add a done/close escape, buffer the channel, or bound the loop)",
						sp.target.parkRisk)
				}
			case sp.fn != nil:
				fact, ok := pass.ip.calleeFact(sp.fn)
				if ok && fact.ParkRisk != "" {
					pass.Reportf(sp.pos,
						"goroutine has no provable termination path: %s → %s; a goroutine parked forever leaks (add a done/close escape, buffer the channel, or bound the loop)",
						calleeDisplay(sp.fn), fact.ParkRisk)
				}
				// A named callee with no summary (std or unanalyzed) is
				// trusted: the analysis only vouches for module code.
			}
		}
	}
}
