package lint

import (
	"go/ast"
)

// SimTimer extends the virtual-clock discipline of SimSleep to the
// timer constructors: code in a package that imports the discrete-event
// simulator must not create wall-clock timers. time.After, time.Tick,
// time.NewTimer, and time.NewTicker all schedule a real-clock firing —
// a channel that becomes ready while virtual time stands still — so a
// simulated process selecting on one observes an event the simulation
// never scheduled (and the inverse: in a fast-forwarded run the timer
// never fires when virtual time says it should). Fault-injection code
// is the usual temptation: lease expiries and fault windows must be
// expressed in the clock the code under test actually runs on.
var SimTimer = &Analyzer{
	Name: "simtimer",
	Doc:  "packages using the simulator must not create wall-clock timers",
	Run:  runSimTimer,
}

// simTimerForbidden is the set of time-package constructors that arm a
// real-clock timer. time.Sleep is SimSleep's; time.Now is permitted —
// reading the clock does not schedule anything (lease expiry bookkeeping
// reads it deliberately).
var simTimerForbidden = map[string]bool{
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

func runSimTimer(pass *Pass) {
	if !importsSim(pass.Files) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !simTimerForbidden[sel.Sel.Name] {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" && id.Obj == nil {
				pass.Reportf(call.Pos(),
					"time.%s in simulation code: wall-clock timers fire outside virtual time", sel.Sel.Name)
			}
			return true
		})
	}
}
