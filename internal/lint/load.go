package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Loader parses and typechecks this module's packages from source,
// with no go/packages and no network: module-local imports resolve
// recursively through the loader itself, standard-library imports
// through the source importer (which reads $GOROOT/src — the
// toolchain ships it). It exists for the two drivers that run outside
// the `go vet` handshake and therefore have no compiler export data:
// `piql-vet -standalone` and the linttest fixtures.
type Loader struct {
	fset *token.FileSet
	// ModuleRoot is the directory containing go.mod; ModulePath the
	// declared module path ("piql").
	ModuleRoot string
	ModulePath string

	std     types.Importer
	pkgs    map[string]*LoadedPackage
	loading map[string]bool
	// order records completion order: every package appears after all
	// of its module-local dependencies, which is exactly the order
	// facts must be computed in.
	order []string
}

// LoadedPackage is one typechecked package ready for RunUnit.
type LoadedPackage struct {
	Unit *Unit
	Dir  string
}

// NewLoader finds the enclosing module of start (a file or directory)
// and returns a loader rooted there.
func NewLoader(start string) (*Loader, error) {
	abs, err := filepath.Abs(start)
	if err != nil {
		return nil, err
	}
	dir := abs
	if fi, err := os.Stat(abs); err == nil && !fi.IsDir() {
		dir = filepath.Dir(abs)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return nil, fmt.Errorf("lint: no go.mod found above %s", start)
		}
		dir = parent
	}
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := regexp.MustCompile(`(?m)^module\s+(\S+)`).FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("lint: %s/go.mod has no module directive", dir)
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		ModuleRoot: dir,
		ModulePath: string(m[1]),
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*LoadedPackage{},
		loading:    map[string]bool{},
	}, nil
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Import implements types.Importer over both halves of the world.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		lp, err := l.loadImportPath(path)
		if err != nil {
			return nil, err
		}
		return lp.Unit.Pkg, nil
	}
	return l.std.Import(path)
}

// loadImportPath loads a module-local package by import path.
func (l *Loader) loadImportPath(path string) (*LoadedPackage, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp, nil
	}
	dir := l.ModuleRoot
	if path != l.ModulePath {
		dir = filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModulePath+"/")))
	}
	return l.LoadDir(dir, path)
}

// LoadDir parses and typechecks the non-test .go files of one
// directory under the given import path (which may be synthetic, as
// for test fixtures). Results are memoized by import path.
func (l *Loader) LoadDir(dir, path string) (*LoadedPackage, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	lp := &LoadedPackage{
		Unit: &Unit{
			Fset:       l.fset,
			Files:      files,
			ImportPath: path,
			Pkg:        pkg,
			Info:       info,
		},
		Dir: dir,
	}
	l.pkgs[path] = lp
	l.order = append(l.order, path)
	return lp, nil
}

// LoadAll loads every package in the module (the `./...` of standalone
// mode) and returns them in dependency order: each package after all
// module-local packages it imports.
func (l *Loader) LoadAll() ([]*LoadedPackage, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(p)
		if p != l.ModuleRoot && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata") {
			return filepath.SkipDir
		}
		entries, rdErr := os.ReadDir(p)
		if rdErr != nil {
			return rdErr
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				dirs = append(dirs, p)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModulePath
		if rel != "." {
			path = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		if _, err := l.loadImportPath(path); err != nil {
			return nil, err
		}
	}
	out := make([]*LoadedPackage, 0, len(l.order))
	for _, path := range l.order {
		out = append(out, l.pkgs[path])
	}
	return out, nil
}
