package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// Escape-budget support: turning the compiler's escape analysis into
// lint input. `go build -gcflags=-m` prints one line per escape
// decision; the driver (cmd/piql-vet -escapebudget) runs the build,
// parses the lines with ParseEscapeDiagnostics, attributes each heap
// escape to its enclosing function with AttributeEscapes, and hands
// the per-package result to the escapebudget analyzer through
// Unit.Escapes. The checked-in budget file (escape.budget at the
// module root) is both the allowlist — only functions listed there
// are gated — and the ratchet: each line is
//
//	<import/path>.<FuncKey> <allowed-heap-escapes>
//
// e.g. `piql/internal/codec.DecodeKey 0`. A function exceeding its
// number fails lint at the first over-budget escape site;
// `make lint ESCAPE_BUDGET=update` rewrites the counts after a
// deliberate change.

// EscapeRaw is one compiler escape diagnostic: a heap escape at
// File:Line:Col with the compiler's own message ("x escapes to heap",
// "moved to heap: buf").
type EscapeRaw struct {
	File      string
	Line, Col int
	What      string
}

// EscapeSite is one attributed heap escape inside a budgeted function.
type EscapeSite struct {
	Pos  token.Position
	What string
}

// EscapeInfo is the escapebudget analyzer's input for one package:
// the budget entries whose functions live here, and the attributed
// escape sites per qualified function name.
type EscapeInfo struct {
	Budget map[string]int
	Sites  map[string][]EscapeSite
}

// ParseEscapeDiagnostics extracts the heap-escape lines from a
// `go build -gcflags=-m` stderr dump. Only decisions that cost an
// allocation are kept: "escapes to heap" and "moved to heap".
// "does not escape", "leaking param", and inlining chatter are not
// allocations and are dropped.
func ParseEscapeDiagnostics(output []byte) []EscapeRaw {
	var out []EscapeRaw
	for _, line := range bytes.Split(output, []byte("\n")) {
		s := string(bytes.TrimSpace(line))
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		if !strings.Contains(s, "escapes to heap") && !strings.Contains(s, "moved to heap") {
			continue
		}
		if strings.Contains(s, "does not escape") {
			continue
		}
		// file.go:line:col: message
		parts := strings.SplitN(s, ":", 4)
		if len(parts) != 4 {
			continue
		}
		ln, err1 := strconv.Atoi(parts[1])
		col, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			continue
		}
		out = append(out, EscapeRaw{
			File: parts[0],
			Line: ln,
			Col:  col,
			What: strings.TrimSpace(parts[3]),
		})
	}
	return out
}

// AttributeEscapes maps raw escape sites onto the functions of one
// parsed package: every raw site whose file and line fall inside a
// declared function body is recorded under that function's qualified
// name ("<importPath>.<FuncKey>"). Sites in files not part of files
// are ignored (they belong to other packages).
func AttributeEscapes(fset *token.FileSet, files []*ast.File, importPath string, raws []EscapeRaw) map[string][]EscapeSite {
	type span struct {
		file       string
		start, end int
		name       string
	}
	var spans []span
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			start := fset.Position(fd.Pos())
			end := fset.Position(fd.End())
			spans = append(spans, span{
				file:  start.Filename,
				start: start.Line,
				end:   end.Line,
				name:  importPath + "." + declKey(fd),
			})
		}
	}
	out := map[string][]EscapeSite{}
	for _, r := range raws {
		for _, sp := range spans {
			if r.File == sp.file && r.Line >= sp.start && r.Line <= sp.end {
				out[sp.name] = append(out[sp.name], EscapeSite{
					Pos:  token.Position{Filename: r.File, Line: r.Line, Column: r.Col},
					What: r.What,
				})
				break
			}
		}
	}
	for _, sites := range out {
		sort.Slice(sites, func(i, j int) bool {
			if sites[i].Pos.Line != sites[j].Pos.Line {
				return sites[i].Pos.Line < sites[j].Pos.Line
			}
			return sites[i].Pos.Column < sites[j].Pos.Column
		})
	}
	return out
}

// declKey renders a FuncDecl the way funcKey renders its object —
// "Func", "(Type).Method", "(*Type).Method" — from syntax alone (the
// escape driver does not typecheck).
func declKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	ptr := false
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
		ptr = true
	}
	// Generic receivers ("T[K]") reduce to the base name.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	name := ""
	if id, ok := t.(*ast.Ident); ok {
		name = id.Name
	}
	if name == "" {
		return fd.Name.Name
	}
	if ptr {
		return "(*" + name + ")." + fd.Name.Name
	}
	return "(" + name + ")." + fd.Name.Name
}

// DeclaredFuncKeys returns the FuncKeys ("Func", "(Type).M",
// "(*Type).M") declared with bodies in files; the escapebudget driver
// uses it to reject stale budget entries for functions that no longer
// exist.
func DeclaredFuncKeys(files []*ast.File) map[string]bool {
	out := map[string]bool{}
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				out[declKey(fd)] = true
			}
		}
	}
	return out
}

// ParseEscapeBudget reads the checked-in budget file: one
// "<qualified-func> <count>" per line, '#' comments and blank lines
// ignored. Returns the counts and the original entry order (update
// mode preserves it).
func ParseEscapeBudget(data []byte) (map[string]int, []string, error) {
	counts := map[string]int{}
	var order []string
	for i, line := range bytes.Split(data, []byte("\n")) {
		s := string(bytes.TrimSpace(line))
		if s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		fields := strings.Fields(s)
		if len(fields) != 2 {
			return nil, nil, fmt.Errorf("escape budget line %d: want \"<func> <count>\", got %q", i+1, s)
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n < 0 {
			return nil, nil, fmt.Errorf("escape budget line %d: bad count %q", i+1, fields[1])
		}
		if _, dup := counts[fields[0]]; dup {
			return nil, nil, fmt.Errorf("escape budget line %d: duplicate entry %s", i+1, fields[0])
		}
		counts[fields[0]] = n
		order = append(order, fields[0])
	}
	return counts, order, nil
}

// FormatEscapeBudget renders a budget file with the given entry order.
func FormatEscapeBudget(counts map[string]int, order []string) []byte {
	var b bytes.Buffer
	b.WriteString("# Heap-escape budget for the hot-path functions piql-vet gates\n")
	b.WriteString("# (escapebudget analyzer). Each line: <import/path>.<Func> <count>,\n")
	b.WriteString("# the number of `escapes to heap`/`moved to heap` decisions\n")
	b.WriteString("# `go build -gcflags=-m` reports inside that function. Regenerate\n")
	b.WriteString("# after a deliberate change with: make lint ESCAPE_BUDGET=update\n")
	for _, fn := range order {
		fmt.Fprintf(&b, "%s %d\n", fn, counts[fn])
	}
	return b.Bytes()
}

// EscapeBudgetImportPath splits a qualified budget entry into its
// package import path and function key: the key starts after the
// first '.' following the last '/'.
func EscapeBudgetImportPath(entry string) (importPath, key string, ok bool) {
	slash := strings.LastIndexByte(entry, '/')
	dot := strings.IndexByte(entry[slash+1:], '.')
	if dot < 0 {
		return "", "", false
	}
	dot += slash + 1
	return entry[:dot], entry[dot+1:], true
}
