package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix: a field that is accessed atomically anywhere in the
// module must never be read or written plainly.
//
// Three rules, in increasing order of reach:
//
//  1. A field of a sync/atomic type (atomic.Pointer[T], atomic.Int64,
//     atomic.Value, …) may only be evaluated as the receiver of one of
//     its atomic methods or have its address taken. Copying the value
//     (`r := c.routing`), assigning over it, or passing it by value
//     silently forks the atomic cell — two goroutines end up
//     publishing through different cells.
//
//  2. A plain-typed field that some site touches with a sync/atomic
//     function call (atomic.AddUint64(&s.n, 1)) is an atomic field
//     everywhere: a plain `s.n++` or `x := s.n` races with the atomic
//     sites and can tear. The declaring package exports the field in
//     the AtomicFields fact, so a plain access in a *different*
//     package is flagged too — type information cannot carry this
//     property, only the fact can.
//
//  3. A value obtained from an atomic Load is a published snapshot:
//     writing through it (directly, via locals, or via a helper's
//     returned Load — the AtomicResults fact) mutates state other
//     readers believe immutable. Copy-on-write is the contract: build
//     a new value and Store it. Provenance is tracked by the dataflow
//     core (dataflow.go) and stops at leaf data (ints, byte slices)
//     and at sub-objects guarded by their own mutex, whose lock — not
//     the atomic publication — governs their mutation.
//
// The targets in this tree: Cluster.routing, the node lease tables,
// and Engine's admission-policy and catalog pointers.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "atomically-accessed fields must never be read or written plainly, and Load()ed values are immutable",
	Run:  runAtomicMix,
}

// isAtomicType reports whether t is declared in sync/atomic
// (atomic.Int64, atomic.Pointer[T], …).
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// fieldIDOfSelection renders the canonical ID of a selected struct
// field — "<pkg>.<Struct>.<field>" — matching the lock-ID convention,
// so kvstore.Cluster.routing is one name everywhere. Returns the field
// object too.
func fieldIDOfSelection(info *types.Info, sel *ast.SelectorExpr) (string, *types.Var, bool) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", nil, false
	}
	v, _ := s.Obj().(*types.Var)
	if v == nil || v.Pkg() == nil {
		return "", nil, false
	}
	t := s.Recv()
	for {
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
			continue
		}
		break
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", nil, false
	}
	return v.Pkg().Name() + "." + named.Obj().Name() + "." + v.Name(), v, true
}

// isAtomicFunc reports whether fn is a package-level function of
// sync/atomic (atomic.AddUint64, atomic.LoadInt64, …) — the
// function-style API over plain-typed words.
func isAtomicFunc(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// atomicPrepass collects the package's atomic fields, the sanctioned
// &x.f sites inside sync/atomic calls, each function's AtomicResults
// summary, and the plain-write-through-Load findings. Runs during
// buildInterproc so Facts() can export the results.
func (ip *Interproc) atomicPrepass(files []*ast.File) {
	ip.atomicFields = map[string]bool{}
	ip.atomicSanctioned = map[ast.Node]bool{}
	pkgName := ip.pkg.Name()
	// Rule-1 fields: sync/atomic-typed struct fields declared here.
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj, _ := ip.info.Defs[ts.Name].(*types.TypeName)
				if obj == nil {
					continue
				}
				st, ok := obj.Type().Underlying().(*types.Struct)
				if !ok {
					continue
				}
				for i := 0; i < st.NumFields(); i++ {
					fld := st.Field(i)
					if isAtomicType(fld.Type()) {
						ip.atomicFields[pkgName+"."+ts.Name.Name+"."+fld.Name()] = true
					}
				}
			}
		}
	}
	// Rule-2 fields: &x.f arguments of sync/atomic function calls. The
	// argument sites themselves are sanctioned.
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFunc(calleeOf(ip.info, call)) {
				return true
			}
			for _, a := range call.Args {
				u, ok := ast.Unparen(a).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if id, _, ok := fieldIDOfSelection(ip.info, sel); ok {
					ip.atomicFields[id] = true
					ip.atomicSanctioned[sel] = true
				}
			}
			return true
		})
	}
	// Rule 3: per-function Load provenance. Two rounds: the first fills
	// every function's AtomicResults summary (so a same-package helper
	// seen before its caller still seeds the caller's taint in round
	// two), the second collects the plain-write findings with the
	// complete summaries. Helper-of-helper chains deeper than one
	// in-package level are not chased — cross-package chains are, via
	// the facts.
	for _, fi := range ip.funcs {
		if fi.pseudo || fi.decl == nil || fi.decl.Body == nil {
			continue
		}
		fi.atomicResults = map[string]bool{}
		ft := taintFunc(ip.info, fi.decl.Body, &atomicProv{ip: ip})
		funcReturns(fi.decl.Body, func(r *ast.ReturnStmt) {
			for _, res := range r.Results {
				if tag, ok := ft.exprTag(res); ok {
					fi.atomicResults[tag.id] = true
				}
			}
		})
	}
	for _, fi := range ip.funcs {
		if fi.pseudo || fi.decl == nil || fi.decl.Body == nil {
			continue
		}
		ft := taintFunc(ip.info, fi.decl.Body, &atomicProv{ip: ip})
		ip.atomicWriteFindings(fi, ft)
	}
}

// atomicProv is the provenance policy for atomic Loads: seeds at
// .Load() calls on atomic fields and at calls to helpers whose
// AtomicResults fact says they return a loaded value.
type atomicProv struct {
	ip *Interproc
}

func (p *atomicProv) seed(e ast.Expr) (provTag, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return provTag{}, false
	}
	fn := calleeOf(p.ip.info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || fn.Name() != "Load" {
		return provTag{}, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return provTag{}, false // atomic.LoadT(&x) reads a word, not a snapshot
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return provTag{}, false
	}
	fieldSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return provTag{}, false
	}
	id, _, ok := fieldIDOfSelection(p.ip.info, fieldSel)
	if !ok {
		return provTag{}, false
	}
	return provTag{id: id, what: "loaded from atomic field " + id, pos: call.Pos()}, true
}

func (p *atomicProv) derive(tag provTag, t types.Type) (provTag, bool) {
	if leafValueType(t) || ownLockGuarded(t) {
		return tag, false
	}
	return tag, true
}

func (p *atomicProv) call(call *ast.CallExpr, fn *types.Func, recvTag, argTag *provTag) (provTag, bool) {
	if fn != nil && fn.Pkg() != nil && p.ip.moduleLocal(fn.Pkg().Path()) {
		// A helper that returns a loaded value: same-package via the
		// prepass summary, cross-package via the AtomicResults fact.
		if fi, ok := p.ip.byObj[fn]; ok && fi.atomicResults != nil {
			for id := range fi.atomicResults {
				return provTag{id: id, what: "loaded from atomic field " + id + " via " + fn.Name(), pos: call.Pos()}, true
			}
		}
		if fn.Pkg().Path() != pkgPathOf(p.ip.pkg) {
			if fact, ok := p.ip.unit.Facts.Func(fn.Pkg().Path(), funcKey(fn)); ok && len(fact.AtomicResults) > 0 {
				return provTag{
					id:   fact.AtomicResults[0],
					what: "loaded from atomic field " + fact.AtomicResults[0] + " via " + funcKey(fn) + " (per fact from " + fn.Pkg().Path() + ")",
					pos:  call.Pos(),
				}, true
			}
		}
	}
	// A method on a loaded value returns derived state (the engine
	// filters through derive per result type).
	if recvTag != nil {
		return *recvTag, true
	}
	return provTag{}, false
}

// atomicWriteFindings records rule-3 violations for one function:
// assignments and inc/dec through a projection of a loaded value.
func (ip *Interproc) atomicWriteFindings(fi *funcInfo, ft *funcTaint) {
	report := func(pos token.Pos, tag provTag) {
		ip.atomicFindings = append(ip.atomicFindings, provFinding{
			pos: pos,
			msg: "plain write through a value " + tag.what +
				" (Load at " + ip.shortPos(tag.pos) + "): atomically-published state is copy-on-write — build a new value and Store it",
		})
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				root, projected := projectionRoot(lhs)
				if !projected || !sharedMemoryWrite(ip.info, lhs) {
					continue
				}
				if tag, ok := ft.exprTag(root); ok {
					report(s.Pos(), tag)
				}
			}
		case *ast.IncDecStmt:
			root, projected := projectionRoot(s.X)
			if !projected || !sharedMemoryWrite(ip.info, s.X) {
				return true
			}
			if tag, ok := ft.exprTag(root); ok {
				report(s.Pos(), tag)
			}
		}
		return true
	})
}

// projectionRoot strips selectors, indexes, slices, derefs, and parens
// off an lvalue, returning the base expression and whether at least
// one projection was stripped (a bare ident is a rebinding, not a
// write into the object).
func projectionRoot(e ast.Expr) (ast.Expr, bool) {
	projected := false
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e, projected = x.X, true
		case *ast.IndexExpr:
			e, projected = x.X, true
		case *ast.SliceExpr:
			e, projected = x.X, true
		case *ast.StarExpr:
			e, projected = x.X, true
		default:
			return e, projected
		}
	}
}

// ownLockGuarded reports whether t (or the struct it points to)
// carries its own sync.Mutex/RWMutex field: mutation of such a
// sub-object is governed by its lock, so atomic/snapshot provenance
// stops there (field-granularity, no alias analysis).
func ownLockGuarded(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if named, ok := st.Field(i).Type().(*types.Named); ok {
			if obj := named.Obj(); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
				switch obj.Name() {
				case "Mutex", "RWMutex":
					return true
				}
			}
		}
	}
	return false
}

func runAtomicMix(p *Pass) {
	if p.ip == nil {
		return
	}
	ip := p.ip
	// Merged atomic-field set: this package's plus every dependency's
	// (fact), with the exporting path kept for the cross-package
	// citation.
	factFields := p.unit.Facts.AtomicFields()
	for _, f := range p.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return
			}
			id, fld, ok := fieldIDOfSelection(p.unit.Info, sel)
			if !ok {
				return
			}
			local := ip.atomicFields[id]
			factPath, fromFact := factFields[id]
			if !local && !fromFact {
				return
			}
			if isAtomicType(fld.Type()) {
				checkTypedAtomicUse(p, sel, id, stack)
				return
			}
			if ip.atomicSanctioned[sel] {
				return
			}
			cite := ""
			if !local && fromFact {
				cite = " (per fact from " + factPath + ")"
			}
			p.Reportf(sel.Pos(),
				"plain %s of field %s, which is accessed with sync/atomic operations%s; mixed plain/atomic access tears",
				accessKind(sel, stack), id, cite)
		})
	}
	for _, fdg := range ip.atomicFindings {
		p.Reportf(fdg.pos, "%s", fdg.msg)
	}
}

// accessKind classifies a flagged selector as a read or a write for
// the diagnostic.
func accessKind(sel *ast.SelectorExpr, stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if containsNode(lhs, sel) {
					return "write"
				}
			}
			return "read"
		case *ast.IncDecStmt:
			return "write"
		case ast.Stmt:
			return "read"
		}
	}
	return "read"
}

// containsNode reports whether target appears in the tree rooted at e.
func containsNode(e ast.Expr, target ast.Node) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// checkTypedAtomicUse enforces rule 1: a sync/atomic-typed field may
// only appear as the receiver of an atomic method call or under &.
func checkTypedAtomicUse(p *Pass, sel *ast.SelectorExpr, id string, stack []ast.Node) {
	if len(stack) > 0 {
		switch parent := stack[len(stack)-1].(type) {
		case *ast.SelectorExpr:
			// c.routing.Load — the method access itself.
			if parent.X == sel {
				return
			}
		case *ast.UnaryExpr:
			// &c.routing — an alias for method calls; a plain write
			// through the pointer would still need a Store.
			if parent.Op == token.AND {
				return
			}
		}
	}
	kind := accessKind(sel, stack)
	verb := "copies"
	if kind == "write" {
		verb = "overwrites"
	}
	p.Reportf(sel.Pos(),
		"plain %s of atomic field %s %s the atomic cell; every access must go through its Load/Store/CAS methods",
		kind, id, verb)
}
