package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrTaxonomy enforces the transient-error taxonomy the retry layer
// depends on (ROADMAP PR 7): every error a kvstore client/op path can
// produce either unwraps to kvstore.ErrTransient (so engine.Retryable
// retries it) or sits on the explicit fatal allowlist below (so the
// omission is a reviewed decision, not an accident) — and callers
// classify errors with errors.Is/errors.As/engine.Retryable, never by
// comparing wrapped errors with == or by matching on err.Error() text.
//
// Producer rules run only in packages that declare the ErrTransient
// sentinel (internal/kvstore today):
//
//   - a named error type must unwrap (transitively) to ErrTransient,
//     or be allowlisted;
//   - errors.New / fmt.Errorf without %w constructs an error invisible
//     to the taxonomy: allowed only for allowlisted functions and
//     package-level sentinels.
//
// Consumer rules run everywhere and are fact-powered: an operand of a
// ==/!= error comparison (or an Error()-text match) that traces to a
// call whose summary — local, or imported from a dependency's vetx
// facts — says it may return a transient error is a bug: such errors
// arrive wrapped, so identity comparison silently misclassifies them
// as fatal.
var ErrTaxonomy = &Analyzer{
	Name: "errtaxonomy",
	Doc:  "client/op errors must unwrap to ErrTransient or be allowlisted fatal; classify with errors.Is, not == or string matching",
	Run:  runErrTaxonomy,
}

// ErrTaxonomyFatalAllow is the reviewed list of deliberately fatal
// error producers in sentinel-declaring packages, keyed by
// "<pkg>.<func>" for in-function constructions and "<pkg>.<var>" for
// package-level sentinels. Everything here is an invariant violation
// or corruption report where a retry would mask a bug; the README's
// "Static analysis" section documents each entry.
var ErrTaxonomyFatalAllow = map[string]bool{
	// Convergence-audit failures mean replicas diverged: retrying the
	// audit cannot help and must not hide it.
	"kvstore.AuditConvergence": true,
	// Envelope decode failures mean a corrupt version envelope: data
	// loss, not a transient condition.
	"kvstore.errEnvelopeShort": true,
	"kvstore.errEnvelopeFlags": true,
	// Fixture entries (internal/lint/testdata).
	"errtaxfix.fatalAudit": true,
}

func runErrTaxonomy(pass *Pass) {
	if pass.ip == nil {
		return
	}
	if pass.ip.hasTransientSentinel {
		runErrTaxonomyProducer(pass)
	}
	runErrTaxonomyConsumer(pass)
}

// ---------------------------------------------------------------------
// Producer rules.

func runErrTaxonomyProducer(pass *Pass) {
	ip := pass.ip
	pkgName := ip.pkg.Name()
	// Rule 1: every named error type unwraps to ErrTransient or is
	// allowlisted.
	scope := ip.pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		implements := isErrorType(named) || isErrorType(types.NewPointer(named))
		if !implements {
			continue
		}
		if ip.transientTypes["*"+pkgName+"."+name] || ip.transientTypes[pkgName+"."+name] {
			continue
		}
		if ErrTaxonomyFatalAllow[pkgName+"."+name] {
			continue
		}
		pass.Reportf(tn.Pos(),
			"error type %s does not unwrap to ErrTransient; add an Unwrap chaining to the sentinel, or allowlist it as deliberately fatal",
			name)
	}
	// Rules 2–3: untyped constructions.
	for _, f := range pass.Files {
		// Package-level `var errX = errors.New(...)` sentinels.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, v := range vs.Values {
					if i >= len(vs.Names) || !isUntypedErrConstruct(ip, v) {
						continue
					}
					name := vs.Names[i].Name
					if name == "ErrTransient" || ErrTaxonomyFatalAllow[pkgName+"."+name] {
						continue
					}
					pass.Reportf(v.Pos(),
						"package-level error %s is opaque to the taxonomy (no Unwrap chain); make it a typed error or allowlist %s.%s as fatal",
						name, pkgName, name)
				}
			}
		}
		// In-function constructions.
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isUntypedErrConstruct(ip, call) {
				return
			}
			fd := enclosingFunc(stack)
			if fd == nil {
				return // already handled as a package-level sentinel
			}
			if ErrTaxonomyFatalAllow[pkgName+"."+fd.Name.Name] {
				return
			}
			pass.Reportf(call.Pos(),
				"untyped error constructed on an op path: return a typed error unwrapping to ErrTransient, wrap a cause with %%w, or allowlist %s.%s as fatal",
				pkgName, fd.Name.Name)
		})
	}
}

// isUntypedErrConstruct reports whether e is errors.New(...) or a
// fmt.Errorf(...) whose format has no %w — the two constructions that
// produce an error with no Unwrap chain.
func isUntypedErrConstruct(ip *Interproc, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeOf(ip.info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch {
	case fn.Pkg().Path() == "errors" && fn.Name() == "New":
		return true
	case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
		return !fmtWrapsError(call)
	}
	return false
}

// ---------------------------------------------------------------------
// Consumer rules.

func runErrTaxonomyConsumer(pass *Pass) {
	for _, f := range pass.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				checkErrCompare(pass, x, stack)
			case *ast.CallExpr:
				checkErrStringMatch(pass, x, stack)
			case *ast.TypeAssertExpr:
				checkErrAssert(pass, x, stack)
			}
		})
	}
}

// checkErrCompare flags `err == other` / `err != other` where either
// side traces to a call that may return a transient (wrapped) error.
func checkErrCompare(pass *Pass, be *ast.BinaryExpr, stack []ast.Node) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	ip := pass.ip
	tx, ty := ip.typeOf(be.X), ip.typeOf(be.Y)
	if !isErrorOperand(tx) || !isErrorOperand(ty) {
		return
	}
	if isNilIdent(be.X) || isNilIdent(be.Y) {
		return
	}
	fd := enclosingFunc(stack)
	for _, operand := range []ast.Expr{be.X, be.Y} {
		if src := traceTransient(ip, operand, fd, 0); src != "" {
			pass.Reportf(be.Pos(),
				"error compared with %s, but %s — wrapped transient errors never compare equal; classify with errors.Is(err, ErrTransient) or engine.Retryable",
				be.Op, src)
			return
		}
	}
}

// checkErrStringMatch flags err.Error() used in a comparison or a
// strings.Contains-style match.
func checkErrStringMatch(pass *Pass, call *ast.CallExpr, stack []ast.Node) {
	ip := pass.ip
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return
	}
	if !isErrorOperand(ip.typeOf(sel.X)) {
		return
	}
	// Interesting only when the text is being *matched*, not logged:
	// parent is a string comparison or a strings.* predicate call.
	if len(stack) == 0 {
		return
	}
	matched := false
	for i := len(stack) - 1; i >= 0 && i >= len(stack)-2; i-- {
		switch p := stack[i].(type) {
		case *ast.BinaryExpr:
			if p.Op == token.EQL || p.Op == token.NEQ {
				matched = true
			}
		case *ast.CallExpr:
			if fn := calleeOf(ip.info, p); fn != nil && fn.Pkg() != nil &&
				fn.Pkg().Path() == "strings" && stringsMatchers[fn.Name()] {
				matched = true
			}
		}
	}
	if !matched {
		return
	}
	msg := "matching on err.Error() text; error identity lives in the wrap chain — classify with errors.Is/errors.As or engine.Retryable"
	if src := traceTransient(ip, sel.X, enclosingFunc(stack), 0); src != "" {
		msg += " (" + src + ")"
	}
	pass.Reportf(call.Pos(), "%s", msg)
}

var stringsMatchers = map[string]bool{
	"Contains":  true,
	"HasPrefix": true,
	"HasSuffix": true,
	"EqualFold": true,
	"Index":     true,
}

// checkErrAssert flags `x.(T)` type assertions on errors (type
// switches are untouched: their assert has a nil Type).
func checkErrAssert(pass *Pass, ta *ast.TypeAssertExpr, stack []ast.Node) {
	if ta.Type == nil {
		return
	}
	ip := pass.ip
	if !isErrorOperand(ip.typeOf(ta.X)) {
		return
	}
	asserted := ip.typeOf(ta.Type)
	if asserted == nil || !isErrorType(asserted) {
		return
	}
	if _, isIface := asserted.Underlying().(*types.Interface); isIface {
		return // asserting to another interface is not taxonomy-relevant
	}
	pass.Reportf(ta.Pos(),
		"type assertion on an error; a wrapped %s never matches — use errors.As",
		types.TypeString(asserted, types.RelativeTo(ip.pkg)))
}

// isErrorOperand reports whether t is the error interface itself (the
// static type a comparison operand would have).
func isErrorOperand(t types.Type) bool {
	if t == nil {
		return false
	}
	iface, ok := t.Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Identical(iface, errorIface) || iface.NumMethods() == 1 && iface.Method(0).Name() == "Error"
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// traceTransient reports, as a human-readable provenance string, a
// call whose summary says it may return a transient error and whose
// result flows into e; "" if none is found. The trace follows direct
// calls and local-variable assignments within the enclosing function.
func traceTransient(ip *Interproc, e ast.Expr, fd *ast.FuncDecl, depth int) string {
	if depth > 3 {
		return ""
	}
	switch v := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return calleeTransientFact(ip, v)
	case *ast.Ident:
		if fd == nil || fd.Body == nil {
			return ""
		}
		obj := ip.info.ObjectOf(v)
		if obj == nil || obj.Pkg() == nil || obj.Parent() == obj.Pkg().Scope() {
			return "" // package-level sentinel, not a traced result
		}
		found := ""
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if found != "" {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok2 := lhs.(*ast.Ident)
				if !ok2 || id.Name != v.Name {
					continue
				}
				var rhs ast.Expr
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				} else if len(as.Rhs) == 1 {
					rhs = as.Rhs[0]
				}
				if rhs != nil {
					if src := traceTransient(ip, rhs, fd, depth+1); src != "" {
						found = src
					}
				}
			}
			return true
		})
		return found
	}
	return ""
}

// calleeTransientFact renders the provenance of a transient-returning
// callee, naming the vetx facts file when the summary crossed a
// package boundary.
func calleeTransientFact(ip *Interproc, call *ast.CallExpr) string {
	fn := calleeOf(ip.info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	fact, ok := ip.calleeFact(fn)
	if !ok || !fact.Transient {
		return ""
	}
	kinds := "a transient error"
	if len(fact.ErrTypes) > 0 {
		kinds = strings.Join(fact.ErrTypes, ", ")
	}
	if fn.Pkg() == ip.pkg {
		return calleeDisplay(fn) + " may return " + kinds + " (this package's summary)"
	}
	return calleeDisplay(fn) + " may return " + kinds +
		" (per fact from " + fn.Pkg().Path() + ")"
}
