package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The dataflow core.
//
// This file owns the three pieces of machinery the flow-sensitive
// analyzers share, extracted from the interprocedural walk so that one
// implementation of Go control flow serves every client:
//
//  1. A branch-sensitive statement walker (flowWalker) over a lowered
//     view of a function body. "Lowered" here means control flow is
//     normalized to a handful of join shapes — if/else clone+union,
//     two-pass loop bodies with a back-edge union, switch/select
//     clause merges with default-totality, and a single exit
//     enumeration (every return plus the implicit fall-through at the
//     closing brace) — rather than a full basic-block CFG. Clients
//     implement flowClient and thread an abstract flowState through
//     the walk; the held-lock walk in interproc.go and the cancelpath
//     analyzer are both clients, so exit paths are enumerated in
//     exactly one place.
//
//  2. Per-function def-use chains (buildDefUse), keyed by the local
//     *types.Var: where each local is defined (with its defining
//     expression) and where it is read. piql-vet's -dataflow flag
//     dumps these for a named function.
//
//  3. A value-provenance engine (taintFunc): a client seeds tags on
//     expressions that mint tracked values (a routing snapshot from
//     beginOp, the result of an atomic Load) and the engine propagates
//     them through locals, field selections, container elements,
//     range loops, and closures to a fixpoint. Propagation is
//     flow-insensitive within a function (a local tainted on any path
//     is tainted everywhere) and field-granular: the client's derive
//     hook decides whether a tag survives a projection, which is where
//     leaf types ([]byte key bounds, counters) drop out. There is no
//     alias analysis: taint follows names and values, not the heap.

// ---------------------------------------------------------------------
// Branch-sensitive walker.

// flowState is the abstract per-path state a client threads through
// the walk: the held-lock multiset for interproc, the outstanding
// cancel obligations for cancelpath.
type flowState interface {
	// cloneFlow returns an independent copy for a branch.
	cloneFlow() flowState
	// unionFlow merges a sibling branch's exit state into a fresh
	// state: an obligation survives the merge if either branch carries
	// it.
	unionFlow(other flowState) flowState
	// copyFlow overwrites this state in place with other's contents
	// (the walker joins branches back into the caller's state).
	copyFlow(other flowState)
}

// flowClient receives the walk's observations. The walker owns all
// control flow; the client owns statement/expression semantics.
type flowClient interface {
	// leafStmt handles a non-control-flow statement (expression, send,
	// assign, decl, inc/dec, defer, go). The walker is passed back in
	// for clients that recurse (immediately-invoked literals).
	leafStmt(w *flowWalker, s ast.Stmt, st flowState)
	// flowExpr evaluates one expression for effects (conditions, tags,
	// range operands, return results). Never called with nil.
	flowExpr(e ast.Expr, st flowState)
	// flowComm handles a select case's communication statement (the
	// select itself is the blocking point, so the comm must not be
	// recorded as a standalone operation).
	flowComm(w *flowWalker, s ast.Stmt, st flowState)
	// forObs / rangeObs / selectObs observe a loop or select head
	// before its body is walked.
	forObs(s *ast.ForStmt, st flowState)
	rangeObs(s *ast.RangeStmt, st flowState)
	selectObs(s *ast.SelectStmt, st flowState)
	// returnObs observes a return statement (results already routed
	// through flowExpr); exitPath follows immediately after.
	returnObs(s *ast.ReturnStmt, st flowState)
	// exitPath is the shared exit-path enumeration: called once per
	// return statement and once for the implicit fall-through at the
	// body's closing brace, with the state at that exit.
	exitPath(pos token.Pos, st flowState)
}

// flowWalker drives one client through one function body.
type flowWalker struct {
	client flowClient
}

// walkBody walks a function (or pseudo-function) body, recording the
// implicit fall-through exit at the closing brace when control can
// reach it.
func (w *flowWalker) walkBody(body *ast.BlockStmt, st flowState) {
	if !w.stmt(body, st) {
		w.client.exitPath(body.Rbrace, st)
	}
}

func (w *flowWalker) expr(e ast.Expr, st flowState) {
	if e != nil {
		w.client.flowExpr(e, st)
	}
}

// stmt walks one statement, mutating st, and reports whether control
// cannot fall through (return / branch).
func (w *flowWalker) stmt(st ast.Stmt, fs flowState) bool {
	switch s := st.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		for _, inner := range s.List {
			if w.stmt(inner, fs) {
				return true
			}
		}
		return false
	case *ast.IfStmt:
		w.stmt(s.Init, fs)
		w.expr(s.Cond, fs)
		thenSt := fs.cloneFlow()
		thenTerm := w.stmt(s.Body, thenSt)
		elseSt := fs.cloneFlow()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.stmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return true
		case thenTerm:
			fs.copyFlow(elseSt)
		case elseTerm:
			fs.copyFlow(thenSt)
		default:
			fs.copyFlow(thenSt.unionFlow(elseSt))
		}
	case *ast.ForStmt:
		w.stmt(s.Init, fs)
		w.expr(s.Cond, fs)
		w.client.forObs(s, fs)
		// Two passes over the body: the second starts from the union of
		// entry and first-iteration exit, so an obligation still open
		// across the back edge is seen by iteration-two statements.
		body := fs.cloneFlow()
		w.stmt(s.Body, body)
		w.stmt(s.Post, body)
		again := fs.unionFlow(body)
		w.stmt(s.Body, again)
		w.stmt(s.Post, again)
		fs.copyFlow(fs.unionFlow(again))
	case *ast.RangeStmt:
		w.expr(s.X, fs)
		w.client.rangeObs(s, fs)
		body := fs.cloneFlow()
		w.stmt(s.Body, body)
		again := fs.unionFlow(body)
		w.stmt(s.Body, again)
		fs.copyFlow(fs.unionFlow(again))
	case *ast.SwitchStmt:
		w.stmt(s.Init, fs)
		w.expr(s.Tag, fs)
		w.cases(s.Body, fs)
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init, fs)
		w.stmt(s.Assign, fs)
		w.cases(s.Body, fs)
	case *ast.SelectStmt:
		w.client.selectObs(s, fs)
		w.cases(s.Body, fs)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, fs)
		}
		w.client.returnObs(s, fs)
		w.client.exitPath(s.Pos(), fs)
		return true
	case *ast.BranchStmt:
		// break/continue/goto: stops fall-through here; the loop's
		// union pass accounts for the continuation.
		return true
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, fs)
	default:
		w.client.leafStmt(w, st, fs)
	}
	return false
}

// cases merges switch/select clause bodies: each clause starts from
// the pre-state; the post-state is the union of every clause exit that
// falls through, plus the pre-state unless a default clause makes the
// dispatch total.
func (w *flowWalker) cases(body *ast.BlockStmt, fs flowState) {
	var out flowState
	hasDefault := false
	merge := func(x flowState) {
		if out == nil {
			out = x
		} else {
			out = out.unionFlow(x)
		}
	}
	for _, c := range body.List {
		clauseSt := fs.cloneFlow()
		term := false
		switch cc := c.(type) {
		case *ast.CaseClause:
			if cc.List == nil {
				hasDefault = true
			}
			for _, e := range cc.List {
				w.expr(e, clauseSt)
			}
			for _, st := range cc.Body {
				if term = w.stmt(st, clauseSt); term {
					break
				}
			}
		case *ast.CommClause:
			if cc.Comm == nil {
				hasDefault = true
			}
			if cc.Comm != nil {
				w.client.flowComm(w, cc.Comm, clauseSt)
			}
			for _, st := range cc.Body {
				if term = w.stmt(st, clauseSt); term {
					break
				}
			}
		}
		if !term {
			merge(clauseSt)
		}
	}
	if !hasDefault {
		merge(fs.cloneFlow())
	}
	if out != nil {
		fs.copyFlow(out)
	}
}

// ---------------------------------------------------------------------
// Loop/termination utilities shared by walker clients.

// loopExits reports whether a `for {` body has any way out: a return,
// a break that targets this loop, a goto or labeled break, or a call
// that never comes back (panic, runtime.Goexit, os.Exit, *.Fatal*).
func loopExits(body *ast.BlockStmt) bool {
	for _, st := range body.List {
		if stmtExitsLoop(st, true) {
			return true
		}
	}
	return false
}

// stmtExitsLoop scans one statement of a loop body. breakWorks is
// false inside constructs that capture a plain break (nested loops,
// switch/select) — a break there does not exit the outer loop.
func stmtExitsLoop(st ast.Stmt, breakWorks bool) bool {
	exits := func(list []ast.Stmt, bw bool) bool {
		for _, s := range list {
			if stmtExitsLoop(s, bw) {
				return true
			}
		}
		return false
	}
	switch s := st.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			return breakWorks || s.Label != nil
		case token.GOTO:
			return true
		}
		return false
	case *ast.BlockStmt:
		return exits(s.List, breakWorks)
	case *ast.IfStmt:
		if stmtExitsLoop(s.Body, breakWorks) {
			return true
		}
		return s.Else != nil && stmtExitsLoop(s.Else, breakWorks)
	case *ast.LabeledStmt:
		return stmtExitsLoop(s.Stmt, breakWorks)
	case *ast.ForStmt:
		return stmtExitsLoop(s.Body, false)
	case *ast.RangeStmt:
		return stmtExitsLoop(s.Body, false)
	case *ast.SwitchStmt:
		return exits(s.Body.List, breakWorks)
	case *ast.TypeSwitchStmt:
		return exits(s.Body.List, breakWorks)
	case *ast.SelectStmt:
		return exits(s.Body.List, breakWorks)
	case *ast.CaseClause:
		// A break directly inside a case breaks the switch/select, not
		// the loop.
		return exits(s.Body, false)
	case *ast.CommClause:
		return exits(s.Body, false)
	case *ast.ExprStmt:
		return callNeverReturns(s.X)
	}
	return false
}

// callNeverReturns recognizes calls that terminate the goroutine (or
// process) instead of returning: panic, runtime.Goexit, os.Exit, and
// the *.Fatal/Fatalf family.
func callNeverReturns(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Goexit", "Exit", "Fatal", "Fatalf", "Fatalln":
			return true
		}
	}
	return false
}

// commRecvChan returns the channel expression a select comm statement
// receives from, or nil when the comm is a send.
func commRecvChan(st ast.Stmt) ast.Expr {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			return u.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if u, ok := ast.Unparen(s.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return u.X
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Def-use chains.

// defSite is one definition of a local: where, and the defining
// expression when there is one (nil for parameters and zero-value
// declarations). forRange marks definitions minted by a range clause.
type defSite struct {
	pos      token.Pos
	rhs      ast.Expr
	forRange bool
}

// defUse holds one function's def-use chains, keyed by the local
// variable object.
type defUse struct {
	decl *ast.FuncDecl
	objs []*types.Var // stable (declaration-position) order
	defs map[*types.Var][]defSite
	uses map[*types.Var][]token.Pos
}

// localVarOf resolves an identifier to the local variable it denotes
// inside decl (parameters and receivers included), or nil.
func localVarOf(info *types.Info, decl *ast.FuncDecl, id *ast.Ident) *types.Var {
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	if v.Pos() < decl.Pos() || v.Pos() > decl.End() {
		return nil
	}
	return v
}

// buildDefUse computes def-use chains for one function declaration.
func buildDefUse(info *types.Info, decl *ast.FuncDecl) *defUse {
	du := &defUse{
		decl: decl,
		defs: map[*types.Var][]defSite{},
		uses: map[*types.Var][]token.Pos{},
	}
	seen := map[*types.Var]bool{}
	note := func(v *types.Var) {
		if !seen[v] {
			seen[v] = true
			du.objs = append(du.objs, v)
		}
	}
	addDef := func(v *types.Var, d defSite) {
		note(v)
		du.defs[v] = append(du.defs[v], d)
	}
	// Parameters, receiver, and named results are definitions with no
	// defining expression.
	fields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v := localVarOf(info, decl, name); v != nil {
					addDef(v, defSite{pos: name.Pos()})
				}
			}
		}
	}
	fields(decl.Recv)
	fields(decl.Type.Params)
	fields(decl.Type.Results)
	if decl.Body == nil {
		return du
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				v := localVarOf(info, decl, id)
				if v == nil {
					continue
				}
				var rhs ast.Expr
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				} else if len(s.Rhs) == 1 {
					rhs = s.Rhs[0] // tuple: all LHS share the call/comma-ok source
				}
				addDef(v, defSite{pos: id.Pos(), rhs: rhs})
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if name.Name == "_" {
					continue
				}
				v := localVarOf(info, decl, name)
				if v == nil {
					continue
				}
				var rhs ast.Expr
				if i < len(s.Values) {
					rhs = s.Values[i]
				}
				addDef(v, defSite{pos: name.Pos(), rhs: rhs})
			}
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if v := localVarOf(info, decl, id); v != nil {
						addDef(v, defSite{pos: id.Pos(), rhs: s.X, forRange: true})
					}
				}
			}
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok {
				if v := localVarOf(info, decl, id); v != nil {
					addDef(v, defSite{pos: id.Pos(), rhs: s.X})
				}
			}
		case *ast.Ident:
			if _, isUse := info.Uses[s]; isUse {
				if v := localVarOf(info, decl, s); v != nil {
					note(v)
					du.uses[v] = append(du.uses[v], s.Pos())
				}
			}
		}
		return true
	})
	sort.SliceStable(du.objs, func(i, j int) bool { return du.objs[i].Pos() < du.objs[j].Pos() })
	return du
}

// dump renders the chains for the -dataflow debug printer.
func (du *defUse) dump(fset *token.FileSet, out *strings.Builder) {
	short := func(pos token.Pos) string {
		p := fset.Position(pos)
		name := p.Filename
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		return fmt.Sprintf("%s:%d", name, p.Line)
	}
	render := func(e ast.Expr) string {
		var buf bytes.Buffer
		if err := printer.Fprint(&buf, fset, e); err != nil {
			return "?"
		}
		s := buf.String()
		s = strings.Join(strings.Fields(s), " ")
		if len(s) > 60 {
			s = s[:57] + "..."
		}
		return s
	}
	for _, v := range du.objs {
		fmt.Fprintf(out, "  %s %s\n", v.Name(), v.Type())
		for _, d := range du.defs[v] {
			switch {
			case d.forRange:
				fmt.Fprintf(out, "    def %s  <- range %s\n", short(d.pos), render(d.rhs))
			case d.rhs != nil:
				fmt.Fprintf(out, "    def %s  <- %s\n", short(d.pos), render(d.rhs))
			default:
				fmt.Fprintf(out, "    def %s  (param)\n", short(d.pos))
			}
		}
		if us := du.uses[v]; len(us) > 0 {
			parts := make([]string, len(us))
			for i, p := range us {
				parts[i] = short(p)
			}
			fmt.Fprintf(out, "    use %s\n", strings.Join(parts, ", "))
		}
	}
}

// sharedMemoryWrite reports whether an lvalue path can reach memory
// shared with other holders of the root: an explicit or implicit
// pointer dereference, or an element of a map or slice. A chain of
// direct field selections on struct values mutates only the local
// copy — `p := *x.Load(); p.f = v; x.Store(&p)` is the copy-on-write
// idiom working as intended, not a write through the published value.
func sharedMemoryWrite(info *types.Info, lhs ast.Expr) bool {
	typeOf := func(e ast.Expr) types.Type {
		if tv, ok := info.Types[e]; ok {
			return tv.Type
		}
		return nil
	}
	for {
		switch x := lhs.(type) {
		case *ast.ParenExpr:
			lhs = x.X
		case *ast.StarExpr:
			return true
		case *ast.SelectorExpr:
			// Selecting through a pointer dereferences it implicitly.
			if t := typeOf(x.X); t != nil {
				if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
					return true
				}
			}
			lhs = x.X
		case *ast.IndexExpr:
			if t := typeOf(x.X); t != nil {
				switch t.Underlying().(type) {
				case *types.Map, *types.Slice, *types.Pointer:
					return true
				}
			}
			lhs = x.X // array value: the element write stays in the value
		case *ast.SliceExpr:
			return true
		default:
			return false // bare root reached through value projections only
		}
	}
}

// funcReturns calls fn for each return statement belonging to body
// itself, not descending into nested function literals (a closure's
// return is not the enclosing function's exit).
func funcReturns(body *ast.BlockStmt, fn func(*ast.ReturnStmt)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		if r, ok := n.(*ast.ReturnStmt); ok {
			fn(r)
		}
		return true
	})
}

// DumpDefUse renders the def-use chains of the named function for the
// piql-vet -dataflow debug printer. name matches the bare function
// name ("beginOp"), the method key ("(*Cluster).beginOp"), or either
// prefixed with the package name ("kvstore.beginOp"). Returns false
// when the unit has no type information or no declaration matches.
func DumpDefUse(unit *Unit, name string) (string, bool) {
	if unit.Info == nil {
		return "", false
	}
	pkgName := ""
	if unit.Pkg != nil {
		pkgName = unit.Pkg.Name()
	}
	var out strings.Builder
	found := false
	for _, f := range unit.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name == nil {
				continue
			}
			fn, _ := unit.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			key := funcKey(fn)
			if name != key && name != fd.Name.Name &&
				(pkgName == "" || (name != pkgName+"."+key && name != pkgName+"."+fd.Name.Name)) {
				continue
			}
			found = true
			p := unit.Fset.Position(fd.Pos())
			fmt.Fprintf(&out, "func %s.%s (%s:%d)\n", pkgName, key, p.Filename, p.Line)
			buildDefUse(unit.Info, fd).dump(unit.Fset, &out)
		}
	}
	return out.String(), found
}

// ---------------------------------------------------------------------
// Value provenance.

// provTag is one provenance tag: which tracked source the value
// derives from (id is the canonical resource — a claim pair, an atomic
// field), a human witness fragment, and where the derivation started.
type provTag struct {
	id   string
	what string
	pos  token.Pos
}

// provClient parameterizes the taint engine.
type provClient interface {
	// seed returns a tag when e itself mints a tracked value (a
	// beginOp call, an atomic Load).
	seed(e ast.Expr) (provTag, bool)
	// derive decides whether a tag survives a projection or derivation
	// yielding type t (field select, index, deref, element, binary
	// op). Returning false cuts propagation — the field-granularity
	// policy lives here.
	derive(tag provTag, t types.Type) (provTag, bool)
	// call decides the tag of a call's result. recvTag/argTag are the
	// tags on the receiver expression and the first tainted argument
	// (nil when untainted); fn is the resolved callee or nil.
	call(call *ast.CallExpr, fn *types.Func, recvTag, argTag *provTag) (provTag, bool)
}

// funcTaint is the provenance result for one function body: the set
// of tainted locals and an expression resolver.
type funcTaint struct {
	info *types.Info
	c    provClient
	body *ast.BlockStmt
	objs map[types.Object]provTag
}

// taintFunc propagates the client's seeds through body to a fixpoint.
// Flow-insensitive: a local tainted on any path is treated as tainted
// at every use.
func taintFunc(info *types.Info, body *ast.BlockStmt, c provClient) *funcTaint {
	ft := &funcTaint{info: info, c: c, body: body, objs: map[types.Object]provTag{}}
	for pass := 0; pass < 32; pass++ {
		if !ft.propagateOnce() {
			break
		}
	}
	return ft
}

// mark taints the object an identifier binds (definition or use).
func (ft *funcTaint) mark(id *ast.Ident, tag provTag) bool {
	if id == nil || id.Name == "_" {
		return false
	}
	obj := ft.info.Defs[id]
	if obj == nil {
		obj = ft.info.Uses[id]
	}
	if obj == nil {
		return false
	}
	if _, done := ft.objs[obj]; done {
		return false
	}
	ft.objs[obj] = tag
	return true
}

func (ft *funcTaint) typeOf(e ast.Expr) types.Type {
	if tv, ok := ft.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// propagateOnce runs one taint pass over every binding form and
// reports whether anything new was tainted.
func (ft *funcTaint) propagateOnce() bool {
	changed := false
	ast.Inspect(ft.body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue // stores to fields/elements are the analyzers' business
				}
				var rhs ast.Expr
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				} else if len(s.Rhs) == 1 {
					rhs = s.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				if tag, ok := ft.exprTag(rhs); ok {
					if t := ft.typeOf(lhs); t != nil {
						if dt, keep := ft.c.derive(tag, t); keep {
							changed = ft.mark(id, dt) || changed
						}
					} else {
						changed = ft.mark(id, tag) || changed
					}
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if i < len(s.Values) {
					if tag, ok := ft.exprTag(s.Values[i]); ok {
						changed = ft.mark(name, tag) || changed
					}
				} else if len(s.Values) == 1 {
					if tag, ok := ft.exprTag(s.Values[0]); ok {
						changed = ft.mark(name, tag) || changed
					}
				}
			}
		case *ast.RangeStmt:
			if tag, ok := ft.exprTag(s.X); ok {
				for _, e := range []ast.Expr{s.Key, s.Value} {
					id, isID := e.(*ast.Ident)
					if !isID {
						continue
					}
					if t := ft.typeOf(e); t != nil {
						if dt, keep := ft.c.derive(tag, t); keep {
							changed = ft.mark(id, dt) || changed
						}
					}
				}
			}
		}
		return true
	})
	return changed
}

// exprTag resolves the provenance tag of one expression.
func (ft *funcTaint) exprTag(e ast.Expr) (provTag, bool) {
	if e == nil {
		return provTag{}, false
	}
	if tag, ok := ft.c.seed(e); ok {
		return tag, true
	}
	switch x := e.(type) {
	case *ast.Ident:
		if obj := ft.info.Uses[x]; obj != nil {
			tag, ok := ft.objs[obj]
			return tag, ok
		}
	case *ast.ParenExpr:
		return ft.exprTag(x.X)
	case *ast.SelectorExpr:
		if tag, ok := ft.exprTag(x.X); ok {
			return ft.deriveAs(tag, e)
		}
	case *ast.IndexExpr:
		// Taint flows through the container, not the subscript: an
		// element of a tainted slice is tainted; indexing an untainted
		// map by a tainted key is not.
		if tag, ok := ft.exprTag(x.X); ok {
			return ft.deriveAs(tag, e)
		}
	case *ast.SliceExpr:
		if tag, ok := ft.exprTag(x.X); ok {
			return ft.deriveAs(tag, e)
		}
	case *ast.StarExpr:
		if tag, ok := ft.exprTag(x.X); ok {
			return ft.deriveAs(tag, e)
		}
	case *ast.UnaryExpr:
		if tag, ok := ft.exprTag(x.X); ok {
			return ft.deriveAs(tag, e)
		}
	case *ast.BinaryExpr:
		if tag, ok := ft.exprTag(x.X); ok {
			return ft.deriveAs(tag, e)
		}
		if tag, ok := ft.exprTag(x.Y); ok {
			return ft.deriveAs(tag, e)
		}
	case *ast.TypeAssertExpr:
		if tag, ok := ft.exprTag(x.X); ok {
			return ft.deriveAs(tag, e)
		}
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, isKV := el.(*ast.KeyValueExpr); isKV {
				el = kv.Value
			}
			if tag, ok := ft.exprTag(el); ok {
				return ft.deriveAs(tag, e)
			}
		}
	case *ast.CallExpr:
		var recvTag, argTag *provTag
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			if tag, tOK := ft.exprTag(sel.X); tOK {
				recvTag = &tag
			}
		}
		for _, a := range x.Args {
			if tag, tOK := ft.exprTag(a); tOK {
				argTag = &tag
				break
			}
		}
		// The client is consulted even when nothing flowing in is
		// tainted: a call can mint taint by itself when the callee's
		// summary or fact says its result is tracked (an acquire
		// helper, a Load-returning helper).
		fn := calleeOf(ft.info, x)
		if recvTag == nil && argTag == nil && fn == nil {
			return provTag{}, false
		}
		return ft.c.call(x, fn, recvTag, argTag)
	case *ast.FuncLit:
		// A closure over a tainted local carries the taint: storing,
		// returning, or spawning it smuggles the value out.
		var found provTag
		ok := false
		ast.Inspect(x.Body, func(n ast.Node) bool {
			if ok {
				return false
			}
			id, isID := n.(*ast.Ident)
			if !isID {
				return true
			}
			obj := ft.info.Uses[id]
			if obj == nil {
				return true
			}
			if tag, tainted := ft.objs[obj]; tainted {
				// Only free variables count: a var declared inside the
				// literal is the literal's own business.
				if obj.Pos() < x.Pos() || obj.Pos() > x.End() {
					found, ok = tag, true
				}
			}
			return true
		})
		if ok {
			return provTag{id: found.id, what: found.what + ", captured by closure", pos: found.pos}, true
		}
	}
	return provTag{}, false
}

// deriveAs routes a projection through the client's derive policy
// using the projected expression's type.
func (ft *funcTaint) deriveAs(tag provTag, e ast.Expr) (provTag, bool) {
	t := ft.typeOf(e)
	if t == nil {
		return tag, true
	}
	return ft.c.derive(tag, t)
}

// leafValueType reports whether t is plain leaf data whose copies do
// not pin the tracked resource: basic types, strings, []byte/[]rune
// and other basic-element slices/arrays, and time-like values. The
// default derive policy for both snapshot and atomic provenance cuts
// at these — escaping a key bound or an epoch counter copies bytes,
// it does not retain the snapshot.
func leafValueType(t types.Type) bool {
	return leafValueDepth(t, 3)
}

func leafValueDepth(t types.Type, depth int) bool {
	if depth == 0 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return true
	case *types.Slice:
		return leafValueDepth(u.Elem(), depth-1)
	case *types.Array:
		return leafValueDepth(u.Elem(), depth-1)
	}
	return false
}
