package lint

import (
	"sort"
	"strings"
)

// LockOrder proves deadlock-freedom of the mutex layer the way the
// planner proves op bounds: statically, before anything runs. The
// interprocedural walk (interproc.go) records every acquired-while-held
// pair — directly, and through calls via each callee's transitive
// acquire set, stitched across packages by the vetx facts — and this
// analyzer rejects any cycle in that graph. Locks are nodes by *class*
// (kvstore.Cluster.rebalanceMu, kvstore.move.mu, ...), so a cycle
// means two code paths can take the same two lock classes in opposite
// orders: a real interleaving away from a deadlock. A self-edge means
// two instances of one class nest; that is only safe under a global
// instance order, which the code must establish and a //lint:allow
// must cite.
//
// The acyclic graph that survives is the lock hierarchy, printable
// with `piql-vet -standalone -lockgraph ./...` and documented in the
// README.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "the acquired-while-held graph over all mutexes must stay acyclic",
	Run:  runLockOrder,
}

func runLockOrder(pass *Pass) {
	if pass.ip == nil {
		return
	}
	local := pass.ip.allEdges()
	// The global graph: this package's edges plus every dependency's.
	type edgeKey struct{ from, to string }
	succ := map[string]map[string]string{} // from -> to -> witness pos
	addEdge := func(from, to, pos string) {
		if succ[from] == nil {
			succ[from] = map[string]string{}
		}
		if _, ok := succ[from][to]; !ok {
			succ[from][to] = pos
		}
	}
	for _, e := range local {
		addEdge(e.from, e.to, pass.Fset.Position(e.pos).String())
	}
	for _, e := range pass.unit.Facts.AllLockEdges(nil) {
		addEdge(e.From, e.To, e.Pos)
	}

	// Self-edges: instance nesting within one lock class.
	reportedSelf := map[string]bool{}
	for _, e := range local {
		if e.from == e.to && !reportedSelf[e.from] {
			reportedSelf[e.from] = true
			pass.Reportf(e.pos,
				"lock %s acquired while another instance of %s is already held; instance nesting deadlocks unless every path takes instances in one global order",
				e.to, e.from)
		}
	}

	// Cross-class cycles: report each local edge that sits on a cycle,
	// with the shortest return path as witness.
	reported := map[edgeKey]bool{}
	for _, e := range local {
		k := edgeKey{e.from, e.to}
		if e.from == e.to || reported[k] {
			continue
		}
		if path := shortestPath(succ, e.to, e.from); path != nil {
			reported[k] = true
			pass.Reportf(e.pos,
				"acquiring %s while holding %s creates a lock-order cycle: %s → %s; some other path acquires them in the opposite order",
				e.to, e.from, e.from, strings.Join(path, " → "))
		}
	}
}

// shortestPath returns the node sequence from src to dst (inclusive of
// both) following succ edges, or nil if unreachable. BFS, so the
// witness is minimal.
func shortestPath(succ map[string]map[string]string, src, dst string) []string {
	if src == dst {
		return []string{src}
	}
	prev := map[string]string{src: ""}
	queue := []string{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		// Deterministic order for stable diagnostics.
		var nexts []string
		for m := range succ[n] {
			nexts = append(nexts, m)
		}
		sort.Strings(nexts)
		for _, m := range nexts {
			if _, seen := prev[m]; seen {
				continue
			}
			prev[m] = n
			if m == dst {
				var path []string
				for at := dst; at != ""; at = prev[at] {
					path = append([]string{at}, path...)
				}
				return path
			}
			queue = append(queue, m)
		}
	}
	return nil
}

// LockHierarchy renders the global acquired-while-held graph as an
// indented forest in topological order: roots are locks never acquired
// while another is held. Cycle participants (if any survive to here)
// are listed flat at the end so the output stays total.
func LockHierarchy(edges []LockEdge) []string {
	succ := map[string][]string{}
	indeg := map[string]int{}
	nodes := map[string]bool{}
	for _, e := range edges {
		if e.From == e.To {
			continue
		}
		succ[e.From] = append(succ[e.From], e.To)
		indeg[e.To]++
		nodes[e.From] = true
		nodes[e.To] = true
	}
	var roots []string
	for n := range nodes {
		if indeg[n] == 0 {
			roots = append(roots, n)
		}
	}
	sort.Strings(roots)
	var out []string
	printed := map[string]bool{}
	var walk func(n string, depth int, onPath map[string]bool)
	walk = func(n string, depth int, onPath map[string]bool) {
		out = append(out, strings.Repeat("  ", depth)+n)
		printed[n] = true
		if onPath[n] {
			return
		}
		onPath[n] = true
		kids := append([]string(nil), succ[n]...)
		sort.Strings(kids)
		seen := map[string]bool{}
		for _, k := range kids {
			if !seen[k] {
				seen[k] = true
				walk(k, depth+1, onPath)
			}
		}
		delete(onPath, n)
	}
	for _, r := range roots {
		walk(r, 0, map[string]bool{})
	}
	var rest []string
	for n := range nodes {
		if !printed[n] {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	for _, n := range rest {
		out = append(out, n+" (cycle participant)")
	}
	return out
}
