package lint

import (
	"go/ast"
)

// SimSleep enforces the simulation's virtual-clock discipline: code in
// a package that imports the discrete-event simulator must never call
// time.Sleep. The simulated cluster advances a virtual clock —
// (*sim.Proc).Sleep yields to the scheduler; time.Sleep blocks the
// OS thread, stalls every simulated process sharing it, and measures
// nothing (virtual time does not pass while it sleeps).
var SimSleep = &Analyzer{
	Name: "simsleep",
	Doc:  "packages using the simulator must sleep in virtual time, not time.Sleep",
	Run:  runSimSleep,
}

func runSimSleep(pass *Pass) {
	if !importsSim(pass.Files) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Sleep" {
				return true
			}
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" && id.Obj == nil {
				pass.Reportf(call.Pos(),
					"time.Sleep in simulation code: use (*sim.Proc).Sleep so virtual time advances")
			}
			return true
		})
	}
}
