package lint_test

import (
	"testing"

	"piql/internal/lint"
)

// FuzzPackageFacts hammers the vetx decoder with arbitrary bytes. The
// contract under test is the one drivers rely on: DecodeFacts never
// panics, never returns facts alongside an error, and anything it
// accepts survives an encode/decode round trip. The checked-in corpus
// under testdata/fuzz/FuzzPackageFacts — truncated JSON, wrong
// versions, shape-confused payloads — replays on every plain `go
// test`, so the regressions stay pinned even where the fuzz engine
// never runs.
func FuzzPackageFacts(f *testing.F) {
	valid := lint.EncodeFacts(&lint.PackageFacts{
		Funcs: map[string]lint.FuncFact{
			"(*Client).TestAndSet": {
				Blocks:      true,
				BlockPath:   "kvstore.park",
				Acquires:    []string{"kvstore.node.mu"},
				Transient:   true,
				ErrTypes:    []string{"*kvstore.ErrNodeDown"},
				ParkRisk:    "send on kvstore.acks with no provable capacity (client.go:1)",
				NetAcquires: []string{"kvstore.Cluster.rebalanceMu"},
				NetReleases: []string{"kvstore.Cluster.faultMu"},
			},
		},
		LockEdges: []lint.LockEdge{{From: "a", To: "b", Pos: "x.go:1"}},
	})
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("not json"))
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{"version":1,"funcs":{"F":{"blocks":true}}}`))
	f.Add([]byte(`{"version":2,"funcs":{"":{"blocks":true}}}`))
	f.Add([]byte(`{"version":2,"funcs":{"F":{"acquires":[""]}}}`))
	f.Add([]byte(`{"version":2,"lockEdges":[{"from":"","to":"b"}]}`))
	f.Add([]byte(`{"version":2,"funcs":{"F":{"acquires":"notalist"}}}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		pf, err := lint.DecodeFacts(data)
		if err != nil && pf != nil {
			t.Fatalf("DecodeFacts returned facts alongside error %v", err)
		}
		if pf == nil {
			return
		}
		re, rerr := lint.DecodeFacts(lint.EncodeFacts(pf))
		if rerr != nil || re == nil {
			t.Fatalf("accepted facts did not survive a round trip: %v", rerr)
		}
		if len(re.Funcs) != len(pf.Funcs) || len(re.LockEdges) != len(pf.LockEdges) {
			t.Fatalf("round trip changed shape: %d/%d funcs, %d/%d edges",
				len(re.Funcs), len(pf.Funcs), len(re.LockEdges), len(pf.LockEdges))
		}
	})
}
