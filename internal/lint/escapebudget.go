package lint

import "sort"

// EscapeBudget fails lint when a hot-path function gains a heap
// escape over its checked-in budget (escape.budget at the module
// root) — the build-diagnostic analyzer that turns the benchmark
// suite's alloc pins (the 15-allocs/op row path) into a static gate.
// The input is the compiler's own escape analysis: the driver runs
// `go build -gcflags=-m`, attributes each "escapes to heap" /
// "moved to heap" decision to its enclosing function (see escape.go),
// and populates Unit.Escapes for the packages with budgeted
// functions. Row decode, MultiGet, the scatter merge, and the
// envelope codec are the gated set; the budget file is the allowlist.
//
// Unlike the other analyzers this one needs a build, so it only runs
// under `piql-vet -escapebudget` (which make lint invokes); in plain
// vet units Unit.Escapes is nil and Skip keeps the analyzer out of
// the run entirely, so //lint:allow escapebudget directives do not
// read as stale there.
var EscapeBudget = &Analyzer{
	Name: "escapebudget",
	Doc:  "hot-path functions must not exceed their checked-in heap-escape budget",
	Run:  runEscapeBudget,
	Skip: func(u *Unit) bool { return u.Escapes == nil },
}

func runEscapeBudget(pass *Pass) {
	info := pass.unit.Escapes
	if info == nil {
		return
	}
	for _, fn := range sortedBudgetKeys(info.Budget) {
		budget := info.Budget[fn]
		sites := info.Sites[fn]
		if len(sites) <= budget {
			continue
		}
		// Report at the first escape past the budget: with a stable
		// sort by position, a newly added escape late in the function
		// points at itself.
		over := sites[budget]
		pass.ReportAt(over.Pos,
			"%s has %d heap escapes, over its budget of %d (%s); keep the value on the stack, or raise the budget deliberately with `make lint ESCAPE_BUDGET=update`",
			fn, len(sites), budget, over.What)
	}
}

func sortedBudgetKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
