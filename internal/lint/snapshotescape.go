package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SnapshotEscape: a value derived from beginOp's claimed routing
// snapshot must not outlive the matching endOp.
//
// beginOp pins a routing table's refcount so Rebalance's drain waits
// for in-flight operations; endOp unpins it. The claim therefore
// bounds the snapshot's lifetime: after endOp the table may be retired
// and its contents describe a routing epoch that no longer exists.
// Three escape shapes break the bound:
//
//   - storing a snapshot-derived value to a heap location (a struct
//     field, a package variable, anything reachable through a
//     parameter);
//   - capturing one in a goroutine spawned from the claim scope (the
//     goroutine may run after endOp);
//   - returning one from a function that itself releases the claim
//     (the caller receives a pointer into a table it holds no claim
//     on).
//
// A function that returns snapshot-derived state *without* releasing
// the claim is the intended acquire-helper shape (beginOp itself is
// one); it exports a SnapshotTainted fact so its callers' walks seed
// provenance at the call site. Provenance is tracked by the dataflow
// core through locals, fields, container elements, range clauses, and
// closures; it stops at leaf data (epochs, key bounds — copies of
// bytes do not pin the table) and at sub-objects guarded by their own
// mutex. No alias analysis: a value smuggled through a heap cell the
// analysis cannot name is not tracked.
var SnapshotEscape = &Analyzer{
	Name: "snapshotescape",
	Doc:  "values derived from a claimed routing snapshot must not be stored, captured by goroutines, or returned past endOp",
	Run:  runSnapshotEscape,
}

func runSnapshotEscape(p *Pass) {
	if p.ip == nil {
		return
	}
	for _, f := range p.ip.snapshotFindings {
		p.Reportf(f.pos, "%s", f.msg)
	}
}

// snapProv is the provenance policy for claimed snapshots: seeds at
// claim-acquiring calls (beginOp) and at calls to helpers whose
// SnapshotTainted fact (or same-package summary) marks their results
// as snapshot-derived.
type snapProv struct {
	ip *Interproc
}

func (p *snapProv) seed(e ast.Expr) (provTag, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return provTag{}, false
	}
	fn := calleeOf(p.ip.info, call)
	if fn == nil {
		return provTag{}, false
	}
	if id, _, ok := p.ip.claimAcquire(fn); ok {
		return provTag{id: id, what: "derived from the routing snapshot claimed by " + fn.Name(), pos: call.Pos()}, true
	}
	return provTag{}, false
}

func (p *snapProv) derive(tag provTag, t types.Type) (provTag, bool) {
	if leafValueType(t) || ownLockGuarded(t) {
		return tag, false
	}
	return tag, true
}

func (p *snapProv) call(call *ast.CallExpr, fn *types.Func, recvTag, argTag *provTag) (provTag, bool) {
	if fn != nil && fn.Pkg() != nil && p.ip.moduleLocal(fn.Pkg().Path()) {
		if fi, ok := p.ip.byObj[fn]; ok && fi.snapshotTaintID != "" {
			return provTag{
				id:   fi.snapshotTaintID,
				what: "derived from the routing snapshot claimed via " + fn.Name(),
				pos:  call.Pos(),
			}, true
		}
		if fn.Pkg().Path() != pkgPathOf(p.ip.pkg) {
			if fact, ok := p.ip.unit.Facts.Func(fn.Pkg().Path(), funcKey(fn)); ok && fact.SnapshotTainted {
				return provTag{
					what: "derived from a routing snapshot claimed via " + funcKey(fn) + " (per fact from " + fn.Pkg().Path() + ")",
					pos:  call.Pos(),
				}, true
			}
		}
	}
	// A method on a snapshot-derived value yields derived state; the
	// engine filters each result through derive. Builtins that pass
	// values through (append) keep the argument's tag.
	if recvTag != nil {
		return *recvTag, true
	}
	if argTag != nil && fn == nil {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			return *argTag, true
		}
	}
	return provTag{}, false
}

// snapshotPrepass runs snapshot provenance over every named function:
// records the escape findings (stores, goroutine captures, returns
// past endOp) and each function's SnapshotTainted summary. Two
// rounds, like atomicPrepass, so same-package helper summaries seed
// their callers regardless of declaration order.
func (ip *Interproc) snapshotPrepass() {
	for round := 0; round < 2; round++ {
		final := round == 1
		for _, fi := range ip.funcs {
			if fi.pseudo || fi.decl == nil || fi.decl.Body == nil {
				continue
			}
			ft := taintFunc(ip.info, fi.decl.Body, &snapProv{ip: ip})
			ip.snapshotSummary(fi, ft)
			if final {
				ip.snapshotEscapes(fi, ft)
			}
		}
	}
}

// snapshotSummary computes fi's SnapshotTainted fact: it returns a
// snapshot-derived value and does not release the claim on any path —
// the acquire-helper shape whose callers inherit the scoping
// obligation.
func (ip *Interproc) snapshotSummary(fi *funcInfo, ft *funcTaint) {
	fi.snapshotTaintID = ""
	funcReturns(fi.decl.Body, func(r *ast.ReturnStmt) {
		for _, res := range r.Results {
			tag, ok := ft.exprTag(res)
			if !ok || tag.id == "" {
				continue
			}
			if !fi.releasedIDs[tag.id] {
				fi.snapshotTaintID = tag.id
			}
		}
	})
}

// snapshotEscapes records the three escape shapes for one function.
func (ip *Interproc) snapshotEscapes(fi *funcInfo, ft *funcTaint) {
	add := func(pos token.Pos, msg string) {
		ip.snapshotFindings = append(ip.snapshotFindings, provFinding{pos: pos, msg: msg})
	}
	// Returns past the matching endOp: the function releases the claim
	// (directly or deferred), so the returned value outlives it.
	funcReturns(fi.decl.Body, func(r *ast.ReturnStmt) {
		for _, res := range r.Results {
			tag, ok := ft.exprTag(res)
			if !ok || tag.id == "" || !fi.releasedIDs[tag.id] {
				continue
			}
			add(r.Pos(), "value "+tag.what+" (claimed at "+ip.shortPos(tag.pos)+
				") is returned past the matching endOp; the routing table may be retired before the caller reads it")
		}
	})
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			// Stores to heap locations: a projected lvalue whose root is
			// a parameter, receiver, or package-level variable.
			for i, lhs := range s.Lhs {
				var rhs ast.Expr
				if len(s.Rhs) == len(s.Lhs) {
					rhs = s.Rhs[i]
				} else if len(s.Rhs) == 1 {
					rhs = s.Rhs[0]
				}
				if rhs == nil {
					continue
				}
				tag, ok := ft.exprTag(rhs)
				if !ok {
					continue
				}
				if loc, heap := ip.heapLHS(fi, ft, lhs); heap {
					add(s.Pos(), "value "+tag.what+" (claimed at "+ip.shortPos(tag.pos)+
						") is stored to "+loc+", escaping the beginOp/endOp scope that pins the table")
				}
			}
		case *ast.GoStmt:
			// Goroutine captures: a tainted argument, or a literal whose
			// free variables include a tainted local.
			var tag provTag
			captured := false
			for _, a := range s.Call.Args {
				if t, ok := ft.exprTag(a); ok {
					tag, captured = t, true
					break
				}
			}
			if !captured {
				if t, ok := ft.exprTag(s.Call.Fun); ok {
					tag, captured = t, true
				}
			}
			if captured {
				add(s.Pos(), "value "+tag.what+" (claimed at "+ip.shortPos(tag.pos)+
					") is captured by a spawned goroutine, which may run after endOp releases the claim")
			}
		}
		return true
	})
}

// heapLHS classifies an assignment target: true when it names a
// heap-reachable location — a package-level variable, or a projection
// (field/element/deref) rooted at a parameter, receiver, or package
// variable. Writes into purely local structures are not escapes the
// analysis can prove (no alias analysis), and writes into the
// snapshot itself are atomicmix's business.
func (ip *Interproc) heapLHS(fi *funcInfo, ft *funcTaint, lhs ast.Expr) (string, bool) {
	root, projected := projectionRoot(lhs)
	id, ok := ast.Unparen(root).(*ast.Ident)
	if !ok {
		// A projection rooted at a call/composite — conservative: not
		// a provable escape target.
		return "", false
	}
	obj := ip.info.Uses[id]
	if obj == nil {
		obj = ip.info.Defs[id]
	}
	v, isVar := obj.(*types.Var)
	if !isVar {
		return "", false
	}
	pkgLevel := v.Parent() == ip.pkg.Scope()
	if !projected {
		if pkgLevel {
			return "package variable " + v.Name(), true
		}
		return "", false // rebinding a local
	}
	// A projected write whose root is itself snapshot-derived mutates
	// the snapshot, not an outliving location: that is atomicmix's
	// finding. (The check must come after the rebinding case — storing
	// to a package variable taints the variable in the flow-insensitive
	// engine, which must not suppress the escape report.)
	if _, rootTainted := ft.objs[obj]; rootTainted {
		return "", false
	}
	if pkgLevel {
		return "package variable " + v.Name(), true
	}
	// Parameters and receivers are declared before the body starts. A
	// value-typed one written through value projections only is a local
	// copy, not caller-visible memory.
	if fi.decl.Body != nil && v.Pos() < fi.decl.Body.Pos() && v.Pos() >= fi.decl.Pos() &&
		sharedMemoryWrite(ip.info, lhs) {
		return "caller-visible state through " + v.Name(), true
	}
	return "", false
}
