package lint_test

import (
	"path/filepath"
	"testing"

	"piql/internal/lint"
	"piql/internal/lint/linttest"
)

// byName fetches an analyzer through the registry, so deleting a
// registration from lint.Analyzers fails that analyzer's fixture suite
// here rather than silently shrinking the vettool.
func byName(t *testing.T, name string) *lint.Analyzer {
	t.Helper()
	a := lint.ByName(name)
	if a == nil {
		t.Fatalf("analyzer %q is not registered in lint.Analyzers", name)
	}
	return a
}

func TestRoutingClaim(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "routingclaim"), byName(t, "routingclaim"))
}

func TestEnvelopeIntegrity(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "envelopeintegrity"), byName(t, "envelopeintegrity"))
}

func TestSimSleep(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "simsleep"), byName(t, "simsleep"))
}

func TestSimSleepIgnoresNonSimPackages(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "simsleepnosim"), byName(t, "simsleep"))
}

func TestSimTimer(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "simtimer"), byName(t, "simtimer"))
}

func TestSimTimerIgnoresNonSimPackages(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "simsleepnosim"), byName(t, "simtimer"))
}

func TestLeaseSwap(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "leaseswap"), byName(t, "leaseswap"))
}

func TestLockOrder(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "lockorder"), byName(t, "lockorder"))
}

func TestHoldBlock(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "holdblock"), byName(t, "holdblock"))
}

func TestErrTaxonomy(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "errtaxonomy"), byName(t, "errtaxonomy"))
}

func TestGoroLeak(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "goroleak"), byName(t, "goroleak"))
}

func TestReleasePath(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "releasepath"), byName(t, "releasepath"))
}

func TestAtomicMix(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "atomicmix"), byName(t, "atomicmix"))
}

func TestSnapshotEscape(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "snapshotescape"), byName(t, "snapshotescape"))
}

func TestCancelPath(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "cancelpath"), byName(t, "cancelpath"))
}

// TestStaleAllow drives the framework-level stale-directive report: a
// //lint:allow for an analyzer that ran but suppressed nothing is
// itself diagnosed, at the directive's position.
func TestStaleAllow(t *testing.T) {
	linttest.RunAnalyzers(t, filepath.Join("testdata", "staleallow"),
		[]*lint.Analyzer{byName(t, "routingclaim")})
}

func TestFactsRoundTrip(t *testing.T) {
	in := &lint.PackageFacts{
		Funcs: map[string]lint.FuncFact{
			"(*Client).TestAndSet": {
				Blocks:    true,
				BlockPath: "visit → sim",
				Acquires:  []string{"kvstore.node.mu"},
				Transient: true,
				ErrTypes:  []string{"*kvstore.ErrNodeDown"},
			},
			"beginOp": {
				AtomicResults:   []string{"kvstore.Cluster.routing"},
				SnapshotTainted: true,
			},
		},
		LockEdges:    []lint.LockEdge{{From: "a", To: "b", Pos: "x.go:1:1"}},
		AtomicFields: []string{"kvstore.Cluster.routing", "kvstore.node.leases"},
	}
	out, err := lint.DecodeFacts(lint.EncodeFacts(in))
	if err != nil {
		t.Fatalf("round-trip decode: %v", err)
	}
	if out == nil {
		t.Fatal("round-trip decoded to nil")
	}
	got, ok := out.Funcs["(*Client).TestAndSet"]
	if !ok || !got.Transient || !got.Blocks || len(got.Acquires) != 1 || len(got.ErrTypes) != 1 {
		t.Fatalf("round-trip mangled the fact: %+v", got)
	}
	if len(out.LockEdges) != 1 || out.LockEdges[0] != (lint.LockEdge{From: "a", To: "b", Pos: "x.go:1:1"}) {
		t.Fatalf("round-trip mangled edges: %+v", out.LockEdges)
	}
	if bo, ok := out.Funcs["beginOp"]; !ok || !bo.SnapshotTainted ||
		len(bo.AtomicResults) != 1 || bo.AtomicResults[0] != "kvstore.Cluster.routing" {
		t.Fatalf("round-trip mangled dataflow facts: %+v", bo)
	}
	if len(out.AtomicFields) != 2 {
		t.Fatalf("round-trip mangled AtomicFields: %+v", out.AtomicFields)
	}
	// Empty payloads decode to nil without error (the std-unit
	// acknowledgement files must not be mistaken for facts); corrupt
	// payloads are an error, never a panic and never silent.
	if pf, err := lint.DecodeFacts(nil); pf != nil || err != nil {
		t.Fatalf("empty payload: got %v, %v; want nil, nil", pf, err)
	}
	if pf, err := lint.DecodeFacts([]byte("not json")); pf != nil || err == nil {
		t.Fatal("corrupt payload must error")
	}
}
