package lint_test

import (
	"path/filepath"
	"testing"

	"piql/internal/lint"
	"piql/internal/lint/linttest"
)

func TestRoutingClaim(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "routingclaim"), lint.RoutingClaim)
}

func TestEnvelopeIntegrity(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "envelopeintegrity"), lint.EnvelopeIntegrity)
}

func TestSimSleep(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "simsleep"), lint.SimSleep)
}

func TestSimSleepIgnoresNonSimPackages(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "simsleepnosim"), lint.SimSleep)
}

func TestSimTimer(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "simtimer"), lint.SimTimer)
}

func TestSimTimerIgnoresNonSimPackages(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "simsleepnosim"), lint.SimTimer)
}

func TestLeaseSwap(t *testing.T) {
	linttest.Run(t, filepath.Join("testdata", "leaseswap"), lint.LeaseSwap)
}
