package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Interprocedural analysis.
//
// This file builds, for one typechecked package, the summaries the
// lockorder/holdblock/errtaxonomy analyzers consume:
//
//   - a branch-sensitive walk of every function body tracking the
//     multiset of sync.Mutex/RWMutex locks held at each statement,
//     recording lock acquisitions (and the acquired-while-held edges
//     they imply), direct blocking operations (channel ops, Cond.Wait,
//     WaitGroup.Wait, time.Sleep), and every call to a module-local
//     function together with the locks held at the call site;
//   - a fixpoint over the package's call graph propagating "may
//     block", "may acquire lock L", and "may return a transient
//     error" through local calls, seeded across package boundaries by
//     the dependency facts in the Unit's FactStore.
//
// Locks are named canonically so the same lock is one graph node no
// matter which instance or alias acquired it: a struct field becomes
// "<pkg>.<StructType>.<field>" (kvstore.Cluster.faultMu — one node for
// every Cluster instance), a package-level var "<pkg>.<var>", and a
// local variable "<pkg>.<func>.<var>". Instance-insensitivity is what
// makes the analysis a *lock class* order: two instances of move.mu
// are the same node, so acquiring one while holding another shows up
// as a self-edge for lockorder to interrogate.
//
// Known approximations, chosen to keep the walk simple and the
// findings reviewable:
//
//   - TryLock/TryRLock are ignored: modeling both outcomes of the
//     branch they feed is not worth it for the cooperative spin loops
//     they guard here (drainWriters), and assuming success would
//     fabricate held locks on the failure path.
//   - defer'd Unlock/RUnlock keeps the lock held to the end of the
//     body (that is its meaning); any other deferred call is analyzed
//     as if it ran with no locks held.
//   - go statements and non-invoked func literals are analyzed as
//     separate pseudo-functions starting with an empty held set; their
//     blocking does not propagate to the spawning function (spawning
//     does not block).
//   - a helper that returns while still holding a lock it acquired is
//     modeled only across package boundaries: its unbalanced
//     acquisitions export as NetAcquires/NetReleases facts, which a
//     dependent package's walk applies at the call site. Same-package
//     helper pairs are not threaded back through the walk (the walk
//     runs before the fixpoint); in-package discipline is covered by
//     the direct sync-op and claim-pair tracking instead.
type Interproc struct {
	unit *Unit
	pkg  *types.Package
	info *types.Info

	// funcs holds every analyzed function: named declarations first,
	// then func-literal pseudo-functions in encounter order.
	funcs []*funcInfo
	// byObj maps a named function's object to its info.
	byObj map[*types.Func]*funcInfo

	// transientTypes names the package-local error types whose Unwrap
	// chains to ErrTransient, e.g. "*kvstore.ErrNodeDown".
	transientTypes map[string]bool
	// hasTransientSentinel reports a package-level `var ErrTransient`.
	hasTransientSentinel bool

	// closedChans holds the canonical IDs (see chanID) of every channel
	// some statement in the package closes: a receive or range on one
	// of these can terminate, so it is not a park risk.
	closedChans map[string]bool
	// chanCaps records how each package-made channel was made; a send
	// is only provably non-parking when every make site is buffered
	// with a constant positive capacity.
	chanCaps map[string]*chanCap

	// atomicFields holds the canonical IDs of this package's
	// atomically-accessed fields (sync/atomic-typed, or plain-typed but
	// touched via sync/atomic calls); atomicSanctioned marks the
	// &x.field selector nodes that appear inside those sanctioned
	// sync/atomic calls. Both feed the atomicmix analyzer and the
	// AtomicFields fact (see atomicmix.go for the prepass).
	atomicFields     map[string]bool
	atomicSanctioned map[ast.Node]bool
	// atomicFindings / snapshotFindings are the provenance violations
	// the prepasses collected; the atomicmix and snapshotescape
	// analyzers report them (directive suppression happens at report
	// time, in the framework).
	atomicFindings   []provFinding
	snapshotFindings []provFinding
}

// provFinding is one provenance violation found during a prepass,
// emitted later by the owning analyzer.
type provFinding struct {
	pos token.Pos
	msg string
}

// chanCap accumulates the make() sites of one channel ID.
type chanCap struct {
	buffered   bool // some make(chan T, n) with constant n > 0
	unbuffered bool // some make(chan T) or constant zero capacity
	unknown    bool // some make with a non-constant capacity
}

// hold kinds: a real sync.Mutex/RWMutex, or a paired-call claim
// (beginOp/endOp routing claims) that releasepath balances but that
// must stay invisible to lockorder's edges and holdblock's held sets.
const (
	kindMutex int8 = iota
	kindClaim
)

// heldLock is one held lock: its canonical ID, whether the hold is
// exclusive (Lock) or shared (RLock), its kind, and whether a deferred
// release is registered for it (so exits do not count it leaked).
type heldLock struct {
	id        string
	exclusive bool
	kind      int8
	deferred  bool
}

// held is the multiset of locks held at a program point, in
// acquisition order.
type held struct {
	locks []heldLock
}

func (h *held) clone() *held {
	return &held{locks: append([]heldLock(nil), h.locks...)}
}

func (h *held) acquire(l heldLock) { h.locks = append(h.locks, l) }

// release removes the most recent matching hold and reports whether
// one was found; releasing a lock that is not held is a no-op (e.g.
// the Unlock after a TryLock loop the walker deliberately did not
// model).
func (h *held) release(id string, exclusive bool) bool {
	for i := len(h.locks) - 1; i >= 0; i-- {
		if h.locks[i].id == id && h.locks[i].exclusive == exclusive {
			h.locks = append(h.locks[:i], h.locks[i+1:]...)
			return true
		}
	}
	return false
}

// markDeferred flags the most recent matching hold as covered by a
// deferred release and reports whether one was found.
func (h *held) markDeferred(id string, exclusive bool) bool {
	for i := len(h.locks) - 1; i >= 0; i-- {
		if h.locks[i].id == id && h.locks[i].exclusive == exclusive && !h.locks[i].deferred {
			h.locks[i].deferred = true
			return true
		}
	}
	return false
}

// ids returns the distinct held mutex IDs in acquisition order.
// Claim-kind holds are excluded: they are releasepath's business and
// must not grow lock-order edges.
func (h *held) ids() []string {
	var out []string
	seen := map[string]bool{}
	for _, l := range h.locks {
		if l.kind == kindMutex && !seen[l.id] {
			seen[l.id] = true
			out = append(out, l.id)
		}
	}
	return out
}

// exclusiveIDs returns the distinct exclusively-held mutex IDs.
func (h *held) exclusiveIDs() []string {
	var out []string
	seen := map[string]bool{}
	for _, l := range h.locks {
		if l.kind == kindMutex && l.exclusive && !seen[l.id] {
			seen[l.id] = true
			out = append(out, l.id)
		}
	}
	return out
}

// unionHeld merges the exits of two branches: a lock is (may-)held
// after the merge if either branch held it.
func unionHeld(a, b *held) *held {
	out := a.clone()
	have := map[heldLock]int{}
	for _, l := range out.locks {
		have[l]++
	}
	counts := map[heldLock]int{}
	for _, l := range b.locks {
		counts[l]++
		if counts[l] > have[l] {
			out.locks = append(out.locks, l)
			have[l]++
		}
	}
	return out
}

// blockObs is one direct blocking operation and the locks held there.
// park, when non-empty, is the goroleak witness: why this operation
// has no provable escape (an unbuffered send, a receive no path
// closes, a select with no done case). Escapable blocks — WaitGroup
// joins, buffered sends, receives on closed channels, time.Sleep —
// carry park == "".
type blockObs struct {
	desc string
	pos  token.Pos
	held []heldLock
	park string
}

// spawnObs is one `go` statement: the spawned body (a pseudo-function
// for literals, a named object otherwise, or dynamic for spawns of
// function values).
type spawnObs struct {
	pos     token.Pos
	target  *funcInfo   // literal body
	fn      *types.Func // named callee
	dynamic bool
}

// exitObs is one function exit (a return statement or the implicit
// fall-through at the closing brace) and the locks held there.
type exitObs struct {
	pos  token.Pos
	held []heldLock
}

// callObs is one call to a module-local function and the locks held at
// the call site.
type callObs struct {
	fn   *types.Func
	pos  token.Pos
	held []heldLock
}

// localEdge is one acquired-while-held observation with a real
// position (facts carry the rendered form).
type localEdge struct {
	from, to string
	pos      token.Pos
}

// funcInfo is one function's summary: direct observations from the
// walk, then fixpoint results.
type funcInfo struct {
	key     string // facts key: "Func" or "(*Type).Method"
	display string // for messages: "kvstore.(*Client).Get" or "func literal in ..."
	decl    *ast.FuncDecl
	pseudo  bool // func literal / go body: not exported in facts

	blocksDirect []blockObs
	calls        []callObs
	edges        []localEdge
	acquires     map[string]bool

	// release-path observations (for releasepath and the
	// NetAcquires/NetReleases facts)
	exits       []exitObs
	releasedIDs map[string]bool   // ids released (or defer-released) on some path
	netReleases map[string]bool   // ids released with no matching local hold
	claimNames  map[string]string // claim id → human name ("routing claim kvstore.beginOp/endOp")

	// goroutine-lifecycle observations (for goroleak)
	spawns []spawnObs
	// parkCands are the in-order park-risk witnesses found directly in
	// the body: non-escapable blocking ops, loops with no exit, calls
	// through function values.
	parkCands []string

	// error-return structure (for the transient fixpoint)
	retTypes    map[string]bool // typed errors returned directly, "*pkg.T"
	retSentinel bool            // returns ErrTransient itself
	retWrap     bool            // returns fmt.Errorf("...%w...", transient-candidate)
	retCallees  []*types.Func   // error results forwarded from these callees

	// fixpoint results
	mayBlock     bool
	blockPath    string
	allAcquires  map[string]bool
	transient    bool
	allErrTypes  map[string]bool
	transientVia string // witness: callee chain or "returns *pkg.T"
	// parkRisk is the goroleak witness: the first reason a run of this
	// function may never terminate ("" = terminates as far as the
	// analysis can tell). Propagated through local calls and imported
	// facts like blockPath.
	parkRisk string

	// dataflow-prepass results (atomicmix / snapshotescape facts):
	// atomic-field IDs whose loaded value this function may return, and
	// the claim ID whose snapshot it returns without releasing (the
	// acquire-helper shape; "" = none).
	atomicResults   map[string]bool
	snapshotTaintID string
}

// buildInterproc runs the walk and fixpoint over the unit's non-test
// files. The unit must be typechecked (Pkg and Info non-nil).
func buildInterproc(u *Unit, files []*ast.File) *Interproc {
	ip := &Interproc{
		unit:  u,
		pkg:   u.Pkg,
		info:  u.Info,
		byObj: map[*types.Func]*funcInfo{},
	}
	ip.findTransientTypes(files)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := ip.info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fi := &funcInfo{
				key:         funcKey(obj),
				display:     ip.pkg.Name() + "." + funcKey(obj),
				decl:        fd,
				acquires:    map[string]bool{},
				retTypes:    map[string]bool{},
				releasedIDs: map[string]bool{},
				netReleases: map[string]bool{},
				claimNames:  map[string]string{},
			}
			ip.funcs = append(ip.funcs, fi)
			ip.byObj[obj] = fi
		}
	}
	// Channel close/capacity prepass before any body walk: escapability
	// of a receive depends on close() sites anywhere in the package.
	ip.chanPrepass(files)
	// Walk after registration so local calls resolve during the walk.
	for _, fi := range append([]*funcInfo(nil), ip.funcs...) {
		h := &held{}
		if !ip.walkStmt(fi, fi.decl.Body, h) {
			ip.recordExit(fi, fi.decl.Body.Rbrace, h)
		}
	}
	ip.fixpoint()
	// Dataflow prepasses after the walk: snapshot provenance needs the
	// walk's releasedIDs, and both need the fixpoint-free per-function
	// view only.
	ip.atomicPrepass(files)
	ip.snapshotPrepass()
	return ip
}

// recordExit notes the held set at one function exit. Loop bodies are
// walked twice, so a repeat at the same position unions into the
// existing record (the second pass may carry back-edge holds).
func (ip *Interproc) recordExit(fi *funcInfo, pos token.Pos, h *held) {
	for i, e := range fi.exits {
		if e.pos == pos {
			fi.exits[i].held = unionHeld(&held{locks: e.held}, h).locks
			return
		}
	}
	fi.exits = append(fi.exits, exitObs{pos: pos, held: append([]heldLock(nil), h.locks...)})
}

// funcKey renders a function the way a call site reads: "Func",
// "(Type).Method", "(*Type).Method". It is the facts-file key, so it
// must be stable across the exporting and importing packages.
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	ptr := false
	if p, okp := t.(*types.Pointer); okp {
		t = p.Elem()
		ptr = true
	}
	named, okn := t.(*types.Named)
	if !okn {
		return fn.Name()
	}
	if ptr {
		return "(*" + named.Obj().Name() + ")." + fn.Name()
	}
	return "(" + named.Obj().Name() + ")." + fn.Name()
}

// findTransientTypes records package-local error types whose Unwrap
// method mentions ErrTransient (directly or via a wrapped field) and
// whether the package declares the sentinel itself.
func (ip *Interproc) findTransientTypes(files []*ast.File) {
	ip.transientTypes = map[string]bool{}
	for _, f := range files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if name.Name == "ErrTransient" {
							ip.hasTransientSentinel = true
						}
					}
				}
			case *ast.FuncDecl:
				if d.Name.Name != "Unwrap" || d.Recv == nil || d.Body == nil {
					continue
				}
				mentions := false
				ast.Inspect(d.Body, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok && id.Name == "ErrTransient" {
						mentions = true
					}
					// Unwrap returning a wrapped field (chain continues
					// through an inner error) also counts: the chain
					// reaches whatever was wrapped, which the producer
					// rule forces to be transient in turn.
					if ret, ok := n.(*ast.ReturnStmt); ok && len(ret.Results) == 1 {
						if sel, ok2 := ret.Results[0].(*ast.SelectorExpr); ok2 {
							if t := ip.typeOf(sel); t != nil && isErrorType(t) {
								mentions = true
							}
						}
					}
					return !mentions
				})
				if mentions {
					if obj, _ := ip.info.Defs[d.Name].(*types.Func); obj != nil {
						if key := recvTypeName(obj); key != "" {
							ip.transientTypes["*"+ip.pkg.Name()+"."+key] = true
						}
					}
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// Channel prepass (for goroleak escapability).

// chanPrepass records, before any body walk, every channel the package
// closes and how every package-made channel is buffered, keyed by the
// same canonical naming scheme as locks. A receive can escape if some
// statement in the package closes the channel; a send can escape only
// if every make() site gives it constant positive capacity.
func (ip *Interproc) chanPrepass(files []*ast.File) {
	ip.closedChans = map[string]bool{}
	ip.chanCaps = map[string]*chanCap{}
	for _, f := range files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) {
			switch v := n.(type) {
			case *ast.CallExpr:
				id, ok := ast.Unparen(v.Fun).(*ast.Ident)
				if !ok || id.Name != "close" || len(v.Args) != 1 {
					return
				}
				if _, isBuiltin := ip.info.Uses[id].(*types.Builtin); !isBuiltin {
					return
				}
				ip.closedChans[ip.chanIDIn(stack, v.Args[0])] = true
			case *ast.AssignStmt:
				if len(v.Lhs) != len(v.Rhs) {
					return
				}
				for i := range v.Rhs {
					ip.recordChanMake(stack, v.Lhs[i], v.Rhs[i])
				}
			case *ast.ValueSpec:
				if len(v.Names) != len(v.Values) {
					return
				}
				for i := range v.Values {
					ip.recordChanMake(stack, v.Names[i], v.Values[i])
				}
			case *ast.KeyValueExpr:
				// Struct-literal field init: indexBuild{done: make(chan …)}.
				key, ok := v.Key.(*ast.Ident)
				if !ok {
					return
				}
				lit := enclosingComposite(stack)
				if lit == nil {
					return
				}
				if owner := ip.compositeTypeName(lit); owner != "" {
					ip.recordChanMakeID(owner+"."+key.Name, v.Value)
				}
			}
		})
	}
}

// enclosingComposite returns the innermost composite literal on the
// stack (the direct parent of a KeyValueExpr being visited).
func enclosingComposite(stack []ast.Node) *ast.CompositeLit {
	for i := len(stack) - 1; i >= 0; i-- {
		if cl, ok := stack[i].(*ast.CompositeLit); ok {
			return cl
		}
	}
	return nil
}

// recordChanMake notes rhs when it is a make(chan …) assigned to lhs.
func (ip *Interproc) recordChanMake(stack []ast.Node, lhs, rhs ast.Expr) {
	if _, buffered, known, isChan := ip.makeChanCap(rhs); isChan {
		id := ip.chanIDIn(stack, lhs)
		cc := ip.chanCaps[id]
		if cc == nil {
			cc = &chanCap{}
			ip.chanCaps[id] = cc
		}
		switch {
		case !known:
			cc.unknown = true
		case buffered:
			cc.buffered = true
		default:
			cc.unbuffered = true
		}
	}
}

// recordChanMakeID is recordChanMake with a precomputed canonical ID.
func (ip *Interproc) recordChanMakeID(id string, rhs ast.Expr) {
	if _, buffered, known, isChan := ip.makeChanCap(rhs); isChan {
		cc := ip.chanCaps[id]
		if cc == nil {
			cc = &chanCap{}
			ip.chanCaps[id] = cc
		}
		switch {
		case !known:
			cc.unknown = true
		case buffered:
			cc.buffered = true
		default:
			cc.unbuffered = true
		}
	}
}

// makeChanCap classifies a make(chan …) expression: its capacity
// argument, whether it is constant-positive (buffered), whether the
// capacity is statically known, and whether this is a channel make at
// all.
func (ip *Interproc) makeChanCap(e ast.Expr) (capArg ast.Expr, buffered, known, isChan bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false, false, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return nil, false, false, false
	}
	if _, isBuiltin := ip.info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil, false, false, false
	}
	t := ip.typeOf(call)
	if t == nil {
		return nil, false, false, false
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return nil, false, false, false
	}
	if len(call.Args) < 2 {
		return nil, false, true, true // make(chan T): unbuffered
	}
	capArg = call.Args[1]
	if tv, ok := ip.info.Types[capArg]; ok && tv.Value != nil {
		n, exact := constant.Int64Val(tv.Value)
		return capArg, exact && n > 0, true, true
	}
	return capArg, false, false, true
}

// chanIDIn canonicalizes a channel expression seen during the prepass.
func (ip *Interproc) chanIDIn(stack []ast.Node, x ast.Expr) string {
	return ip.chanKey(x)
}

// chanID canonicalizes a channel expression inside a walked function.
func (ip *Interproc) chanID(fi *funcInfo, x ast.Expr) string {
	return ip.chanKey(x)
}

// chanKey names a channel so every reference to the same variable gets
// the same key. Locals are keyed by declaration position, not by
// enclosing function the way locks are: the common leak shape is a
// goroutine literal sending on a channel its *enclosing* function
// made, and the closure and the maker must agree on the channel's
// identity for the make-site capacity to reach the send site.
func (ip *Interproc) chanKey(x ast.Expr) string {
	x = ast.Unparen(x)
	if id, ok := x.(*ast.Ident); ok {
		if obj := ip.info.ObjectOf(id); obj != nil {
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Name() + "." + obj.Name()
			}
			if obj.Pos().IsValid() {
				return ip.pkg.Name() + "." + id.Name + "@" + ip.shortPos(obj.Pos())
			}
		}
	}
	return ip.lockIDKeyed("func", x)
}

// doneNameRe matches channel names that by convention signal shutdown;
// receiving from one is treated as having a termination path even when
// the close() lives in another package.
var doneNameRe = regexp.MustCompile(`(?i)^(done|stop|quit|cancel|close|closing|closed|kill|exit|term|finish|wake)`)

// doneLike reports whether a channel expression is a shutdown signal:
// a done-named channel or a context's Done() stream.
func (ip *Interproc) doneLike(x ast.Expr) bool {
	switch v := ast.Unparen(x).(type) {
	case *ast.Ident:
		return doneNameRe.MatchString(v.Name)
	case *ast.SelectorExpr:
		return doneNameRe.MatchString(v.Sel.Name)
	case *ast.CallExpr:
		if sel, ok := ast.Unparen(v.Fun).(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Done"
		}
	}
	return false
}

// recvEscapes reports whether a receive from x has a termination path:
// some statement in this package closes the channel, or the channel is
// a shutdown signal by name.
func (ip *Interproc) recvEscapes(fi *funcInfo, x ast.Expr) bool {
	return ip.closedChans[ip.chanID(fi, x)] || ip.doneLike(x)
}

// sendEscapes reports whether a send on x is provably non-parking:
// every make() site of the channel is buffered with constant positive
// capacity. (A buffered send can still park when the buffer is full;
// the analyzers treat bounded-capacity sends as the spawner's
// responsibility and flag only never-drained shapes.)
func (ip *Interproc) sendEscapes(fi *funcInfo, x ast.Expr) bool {
	cc := ip.chanCaps[ip.chanID(fi, x)]
	return cc != nil && cc.buffered && !cc.unbuffered && !cc.unknown
}

// recvTypeName returns the bare receiver type name of a method object.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, okp := t.(*types.Pointer); okp {
		t = p.Elem()
	}
	if n, okn := t.(*types.Named); okn {
		return n.Obj().Name()
	}
	return ""
}

func (ip *Interproc) typeOf(e ast.Expr) types.Type {
	if tv, ok := ip.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorIface) || types.Identical(t, errorIface)
}

// calleeOf resolves a call to its named function object, or nil for
// builtins, conversions, and calls through function values.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// ---------------------------------------------------------------------
// The walk.
//
// Control flow lives in the shared branch-sensitive walker
// (dataflow.go); this section is the held-lock client: *held is the
// flowState, ipFlow supplies the statement/expression semantics.

func (h *held) cloneFlow() flowState            { return h.clone() }
func (h *held) unionFlow(o flowState) flowState { return unionHeld(h, o.(*held)) }
func (h *held) copyFlow(o flowState)            { *h = *o.(*held) }

// ipFlow adapts one function's held-lock walk onto the shared walker.
type ipFlow struct {
	ip *Interproc
	fi *funcInfo
}

// walkStmt drives the shared walker with this package's held-lock
// client, preserving the pre-refactor entry point (walkCall reuses it
// for immediately-invoked literals).
func (ip *Interproc) walkStmt(fi *funcInfo, st ast.Stmt, h *held) bool {
	w := &flowWalker{client: &ipFlow{ip: ip, fi: fi}}
	return w.stmt(st, h)
}

func (c *ipFlow) flowExpr(e ast.Expr, fs flowState) {
	c.ip.walkExpr(c.fi, e, fs.(*held))
}

func (c *ipFlow) leafStmt(w *flowWalker, st ast.Stmt, fs flowState) {
	ip, fi, h := c.ip, c.fi, fs.(*held)
	switch s := st.(type) {
	case *ast.ExprStmt:
		ip.walkExpr(fi, s.X, h)
	case *ast.SendStmt:
		ip.walkExpr(fi, s.Chan, h)
		ip.walkExpr(fi, s.Value, h)
		park := ""
		if !ip.sendEscapes(fi, s.Chan) {
			park = "send on " + ip.chanID(fi, s.Chan) + " with no provable capacity"
		}
		ip.block(fi, "channel send", s.Arrow, h, park)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			ip.walkExpr(fi, e, h)
		}
		for _, e := range s.Lhs {
			ip.walkExpr(fi, e, h)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok2 := spec.(*ast.ValueSpec); ok2 {
					for _, e := range vs.Values {
						ip.walkExpr(fi, e, h)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		ip.walkExpr(fi, s.X, h)
	case *ast.DeferStmt:
		ip.walkDefer(fi, s, h)
	case *ast.GoStmt:
		for _, a := range s.Call.Args {
			ip.walkExpr(fi, a, h)
		}
		// Spawning blocks nothing here, but goroleak needs the spawned
		// body: a literal gets its own pseudo-function, a named callee
		// resolves through facts, anything else is a dynamic spawn.
		// The two-pass loop walk revisits go statements; record each
		// site once.
		for _, sp := range fi.spawns {
			if sp.pos == s.Pos() {
				return
			}
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			target := ip.pseudoFunc(fi, lit, "goroutine")
			fi.spawns = append(fi.spawns, spawnObs{pos: s.Pos(), target: target})
		} else if fn := calleeOf(ip.info, s.Call); fn != nil {
			fi.spawns = append(fi.spawns, spawnObs{pos: s.Pos(), fn: fn})
		} else {
			fi.spawns = append(fi.spawns, spawnObs{pos: s.Pos(), dynamic: true})
		}
	}
}

func (c *ipFlow) forObs(s *ast.ForStmt, fs flowState) {
	if s.Cond == nil && !loopExits(s.Body) {
		c.fi.parkCands = append(c.fi.parkCands,
			"infinite for-loop with no break or return ("+c.ip.shortPos(s.For)+")")
	}
}

func (c *ipFlow) rangeObs(s *ast.RangeStmt, fs flowState) {
	ip, fi, h := c.ip, c.fi, fs.(*held)
	if t := ip.typeOf(s.X); t != nil {
		if _, isChan := t.Underlying().(*types.Chan); isChan {
			park := ""
			if !ip.recvEscapes(fi, s.X) {
				park = "range over " + ip.chanID(fi, s.X) + ", which no analyzed path closes"
			}
			ip.block(fi, "range over channel", s.For, h, park)
		}
	}
}

func (c *ipFlow) selectObs(s *ast.SelectStmt, fs flowState) {
	ip, fi, h := c.ip, c.fi, fs.(*held)
	hasDefault := false
	hasEscape := false
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			hasDefault = true
			continue
		}
		// A case receiving from a closed/done channel is the select's
		// termination path.
		if x := commRecvChan(cc.Comm); x != nil && ip.recvEscapes(fi, x) {
			hasEscape = true
		}
	}
	if !hasDefault {
		park := ""
		if !hasEscape {
			park = "select with no default and no done/close case"
		}
		ip.block(fi, "select with no default", s.Select, h, park)
	}
}

func (c *ipFlow) returnObs(s *ast.ReturnStmt, fs flowState) {
	c.ip.recordReturn(c.fi, s)
}

func (c *ipFlow) exitPath(pos token.Pos, fs flowState) {
	c.ip.recordExit(c.fi, pos, fs.(*held))
}

// flowComm walks a select case's communication statement without
// recording it as a standalone blocking operation: the select itself
// is the block (already recorded, with a default clause making it
// non-blocking), so routing the comm through the walker's leaf path
// would fabricate a "channel send/receive" observation inside
// select{…: default:} shapes. Operand subexpressions still get walked
// (they can contain calls).
func (c *ipFlow) flowComm(w *flowWalker, st ast.Stmt, fs flowState) {
	ip, fi, h := c.ip, c.fi, fs.(*held)
	switch s := st.(type) {
	case nil:
	case *ast.SendStmt:
		ip.walkExpr(fi, s.Chan, h)
		ip.walkExpr(fi, s.Value, h)
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			ip.walkExpr(fi, u.X, h)
			return
		}
		w.stmt(s, fs)
	case *ast.AssignStmt:
		for _, e := range s.Lhs {
			ip.walkExpr(fi, e, h)
		}
		for _, e := range s.Rhs {
			if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				ip.walkExpr(fi, u.X, h)
			} else {
				ip.walkExpr(fi, e, h)
			}
		}
	default:
		w.stmt(st, fs)
	}
}

// walkDefer handles defer: a deferred Unlock/RUnlock means the lock
// stays held to the end of the body (so: do nothing); any other
// deferred work runs at return with an unknown held set, analyzed as a
// pseudo-function with none.
func (ip *Interproc) walkDefer(fi *funcInfo, s *ast.DeferStmt, h *held) {
	for _, a := range s.Call.Args {
		ip.walkExpr(fi, a, h)
	}
	if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
		ip.pseudoFunc(fi, lit, "deferred func")
		return
	}
	fn := calleeOf(ip.info, s.Call)
	if fn == nil {
		return
	}
	if isSyncMethod(fn) {
		switch fn.Name() {
		case "Unlock", "RUnlock":
			// Lock held through the body, released at every return: mark
			// the hold deferred so releasepath treats the exits as
			// balanced.
			if sel, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok {
				id := ip.lockID(fi, sel.X)
				if h.markDeferred(id, fn.Name() == "Unlock") {
					fi.releasedIDs[id] = true
				}
			}
		}
		return
	}
	// defer cl.c.endOp(rt): the claim releases on every exit.
	if id, ok := ip.claimRelease(fn); ok {
		if h.markDeferred(id, true) {
			fi.releasedIDs[id] = true
		}
		return
	}
	// A deferred cross-package releasing helper (NetReleases fact)
	// likewise covers its ids on every exit.
	if fn.Pkg() != nil && fn.Pkg().Path() != pkgPathOf(ip.pkg) && ip.moduleLocal(fn.Pkg().Path()) {
		if fact, ok := ip.unit.Facts.Func(fn.Pkg().Path(), funcKey(fn)); ok {
			for _, id := range fact.NetReleases {
				if h.markDeferred(id, true) {
					fi.releasedIDs[id] = true
				}
			}
		}
	}
}

// pkgPathOf is pkg.Path() tolerating nil.
func pkgPathOf(p *types.Package) string {
	if p == nil {
		return ""
	}
	return p.Path()
}

// claimPairs maps a claim-acquiring call name to its releasing
// counterpart. Claims are module-local paired calls with the semantics
// of a resource hold — the kvstore routing claim (`beginOp` pins a
// routing snapshot's refcount until `endOp`) is the one in this tree —
// tracked branch-sensitively like locks but invisible to lockorder
// and holdblock (a claim does not exclude anyone).
var claimPairs = map[string]string{
	"beginOp": "endOp",
}

// claimAcquire reports whether fn acquires a claim, returning the
// claim's canonical ID ("kvstore.beginOp/endOp") and display name.
func (ip *Interproc) claimAcquire(fn *types.Func) (id, desc string, ok bool) {
	rel, found := claimPairs[fn.Name()]
	if !found || fn.Pkg() == nil || !ip.moduleLocal(fn.Pkg().Path()) {
		return "", "", false
	}
	id = fn.Pkg().Name() + "." + fn.Name() + "/" + rel
	return id, "claim " + id, true
}

// claimRelease reports whether fn releases a claim, returning the
// claim's canonical ID.
func (ip *Interproc) claimRelease(fn *types.Func) (string, bool) {
	if fn.Pkg() == nil || !ip.moduleLocal(fn.Pkg().Path()) {
		return "", false
	}
	for acq, rel := range claimPairs {
		if fn.Name() == rel {
			return fn.Pkg().Name() + "." + acq + "/" + rel, true
		}
	}
	return "", false
}

// block records a direct blocking operation at pos under h. park is
// the goroleak witness when the operation has no provable escape ("" =
// it can terminate). Inside the simulator package itself every block
// is treated as escapable: the cooperative scheduler's park/wake
// channel discipline is its own design, and exporting park risks from
// sim would condemn every simulated client operation downstream.
func (ip *Interproc) block(fi *funcInfo, desc string, pos token.Pos, h *held, park string) {
	if ip.isSimPkg() {
		park = ""
	}
	if park != "" {
		fi.parkCands = append(fi.parkCands, park+" ("+ip.shortPos(pos)+")")
	}
	fi.blocksDirect = append(fi.blocksDirect, blockObs{
		desc: desc,
		pos:  pos,
		held: append([]heldLock(nil), h.locks...),
		park: park,
	})
}

// isSimPkg reports whether the package under analysis is the simulator.
func (ip *Interproc) isSimPkg() bool {
	if ip.pkg == nil {
		return false
	}
	path := ip.pkg.Path()
	return path == simImportPath || strings.HasSuffix(path, "/internal/sim")
}

// shortPos renders pos as "file.go:line" for park-path witnesses.
func (ip *Interproc) shortPos(pos token.Pos) string {
	p := ip.unit.Fset.Position(pos)
	name := p.Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return fmt.Sprintf("%s:%d", name, p.Line)
}

// pseudoFunc analyzes a func literal as its own function with an empty
// held set (it runs on its own goroutine or at defer time) and returns
// its summary (goroleak reads a spawned literal's park risk from it).
func (ip *Interproc) pseudoFunc(parent *funcInfo, lit *ast.FuncLit, kind string) *funcInfo {
	fi := &funcInfo{
		key:         "",
		display:     fmt.Sprintf("%s in %s", kind, parent.display),
		pseudo:      true,
		acquires:    map[string]bool{},
		retTypes:    map[string]bool{},
		releasedIDs: map[string]bool{},
		netReleases: map[string]bool{},
		claimNames:  map[string]string{},
	}
	ip.funcs = append(ip.funcs, fi)
	h := &held{}
	if !ip.walkStmt(fi, lit.Body, h) {
		ip.recordExit(fi, lit.Body.Rbrace, h)
	}
	return fi
}

// isSyncMethod reports whether fn is a method of sync.Mutex/RWMutex.
func isSyncMethod(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	name := recvTypeName(fn)
	return name == "Mutex" || name == "RWMutex"
}

// walkExpr analyzes one expression under h, handling calls, channel
// receives, and func literals specially and recursing structurally
// otherwise.
func (ip *Interproc) walkExpr(fi *funcInfo, e ast.Expr, h *held) {
	switch x := e.(type) {
	case nil:
		return
	case *ast.CallExpr:
		ip.walkCall(fi, x, h)
	case *ast.UnaryExpr:
		ip.walkExpr(fi, x.X, h)
		if x.Op == token.ARROW {
			park := ""
			if !ip.recvEscapes(fi, x.X) {
				park = "receive on " + ip.chanID(fi, x.X) + ", which no analyzed path closes"
			}
			ip.block(fi, "channel receive", x.OpPos, h, park)
		}
	case *ast.FuncLit:
		ip.pseudoFunc(fi, x, "func literal")
	default:
		// Structural recursion: route each immediate child expression
		// back through walkExpr so the cases above fire at any depth.
		ast.Inspect(e, func(n ast.Node) bool {
			if n == ast.Node(e) {
				return true
			}
			if child, ok := n.(ast.Expr); ok {
				ip.walkExpr(fi, child, h)
				return false
			}
			return true
		})
	}
}

// walkCall classifies one call: mutex acquire/release, known standard-
// library blocking primitive, immediately-invoked literal, or a call
// to a (possibly module-local) named function.
func (ip *Interproc) walkCall(fi *funcInfo, call *ast.CallExpr, h *held) {
	// Evaluate the callee expression and arguments first — they may
	// themselves contain calls or receives.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		ip.walkExpr(fi, sel.X, h)
	}
	for _, a := range call.Args {
		ip.walkExpr(fi, a, h)
	}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		// Immediately-invoked literal: runs inline, same held set.
		ip.walkStmt(fi, lit.Body, h)
		return
	}
	fn := calleeOf(ip.info, call)
	if fn == nil {
		// A call through a function value: nothing blocks here that the
		// walk can see, but its termination is unknowable, which is a
		// park risk for any goroutine reaching this point.
		if ip.isDynamicCall(call) {
			fi.parkCands = append(fi.parkCands,
				"calls a function value ("+ip.shortPos(call.Pos())+"), whose termination is not analyzable")
		}
		return
	}
	if fn.Pkg() == nil {
		return
	}
	if isSyncMethod(fn) {
		ip.walkSyncOp(fi, call, fn, h)
		return
	}
	// Paired-call claims track like locks (branch-sensitively, for
	// releasepath) but never enter the lock graph.
	if id, desc, ok := ip.claimAcquire(fn); ok {
		fi.claimNames[id] = desc
		h.acquire(heldLock{id: id, exclusive: true, kind: kindClaim})
		return
	}
	if id, ok := ip.claimRelease(fn); ok {
		if h.release(id, true) {
			fi.releasedIDs[id] = true
		}
		return
	}
	path := fn.Pkg().Path()
	switch {
	case path == "sync" && fn.Name() == "Wait" && recvTypeName(fn) == "Cond":
		ip.block(fi, "sync.Cond.Wait", call.Pos(), h,
			"sync.Cond.Wait with no analyzable wake guarantee")
	case path == "sync" && fn.Name() == "Wait" && recvTypeName(fn) == "WaitGroup":
		// A WaitGroup join is bounded by its Add/Done discipline; the
		// children it joins are analyzed at their own go statements.
		ip.block(fi, "sync.WaitGroup.Wait", call.Pos(), h, "")
	case path == "time" && fn.Name() == "Sleep":
		ip.block(fi, "time.Sleep", call.Pos(), h, "")
	case ip.moduleLocal(path):
		// Apply an imported acquire/release summary to the held set:
		// a cross-package helper that returns holding a lock
		// (NetAcquires) extends the caller's critical section past the
		// call; a releasing helper (NetReleases) closes it.
		if path != pkgPathOf(ip.pkg) {
			if fact, ok := ip.unit.Facts.Func(path, funcKey(fn)); ok {
				for _, id := range fact.NetAcquires {
					h.acquire(heldLock{id: id, exclusive: true})
				}
				for _, id := range fact.NetReleases {
					if h.release(id, true) {
						fi.releasedIDs[id] = true
					}
				}
			}
		}
		fi.calls = append(fi.calls, callObs{
			fn:   fn,
			pos:  call.Pos(),
			held: append([]heldLock(nil), h.locks...),
		})
	}
}

// isDynamicCall reports whether call invokes a function value (not a
// named function, builtin, conversion, or literal).
func (ip *Interproc) isDynamicCall(call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	if tv, ok := ip.info.Types[fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return false
	}
	switch f := fun.(type) {
	case *ast.FuncLit:
		return false
	case *ast.Ident:
		switch ip.info.Uses[f].(type) {
		case *types.Builtin, *types.TypeName:
			return false
		}
	case *ast.SelectorExpr:
		if _, isType := ip.info.Uses[f.Sel].(*types.TypeName); isType {
			return false
		}
	}
	return true
}

// moduleLocal reports whether path is in this module (facts exist or
// could exist for it). The module root is the first path element of
// this package's own path — "piql" — which also covers the package
// itself.
func (ip *Interproc) moduleLocal(path string) bool {
	if ip.pkg == nil {
		return false
	}
	self := ip.pkg.Path()
	root := self
	if i := strings.IndexByte(self, '/'); i >= 0 {
		root = self[:i]
	}
	// Fixture packages run under fake import paths; treat same-package
	// calls as module-local regardless.
	if path == self {
		return true
	}
	return path == root || strings.HasPrefix(path, root+"/")
}

// walkSyncOp handles Lock/RLock/Unlock/RUnlock/TryLock on a
// sync.Mutex or RWMutex (including one embedded in a local struct).
func (ip *Interproc) walkSyncOp(fi *funcInfo, call *ast.CallExpr, fn *types.Func, h *held) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	id := ip.lockID(fi, sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		excl := fn.Name() == "Lock"
		for _, from := range h.ids() {
			fi.edges = append(fi.edges, localEdge{from: from, to: id, pos: call.Pos()})
		}
		fi.acquires[id] = true
		h.acquire(heldLock{id: id, exclusive: excl})
	case "Unlock":
		if h.release(id, true) {
			fi.releasedIDs[id] = true
		} else {
			fi.netReleases[id] = true
		}
	case "RUnlock":
		if h.release(id, false) {
			fi.releasedIDs[id] = true
		} else {
			fi.netReleases[id] = true
		}
		// TryLock/TryRLock: ignored (see the package comment).
	}
}

// lockID renders the canonical name of the lock denoted by x (the
// receiver of a Lock/Unlock call).
func (ip *Interproc) lockID(fi *funcInfo, x ast.Expr) string {
	fnName := fi.key
	if fnName == "" {
		fnName = "func"
	}
	return ip.lockIDKeyed(fnName, x)
}

// lockIDKeyed is lockID with the enclosing-function key supplied
// directly (the channel prepass runs outside any funcInfo).
func (ip *Interproc) lockIDKeyed(fnName string, x ast.Expr) string {
	x = ast.Unparen(x)
	switch v := x.(type) {
	case *ast.SelectorExpr:
		if selInfo, ok := ip.info.Selections[v]; ok && selInfo.Kind() == types.FieldVal {
			// Owner is the named struct type holding the field (walk
			// past pointers); instance-insensitive by construction.
			t := ip.typeOf(v.X)
			for {
				if p, okp := t.(*types.Pointer); okp {
					t = p.Elem()
					continue
				}
				break
			}
			owner := ""
			pkgName := ip.pkg.Name()
			if named, okn := t.(*types.Named); okn {
				owner = named.Obj().Name()
				if named.Obj().Pkg() != nil {
					pkgName = named.Obj().Pkg().Name()
				}
			}
			field := selInfo.Obj().Name()
			if owner != "" {
				return pkgName + "." + owner + "." + field
			}
			return pkgName + "." + field
		}
		// Package-qualified or otherwise: fall back to the object.
		if obj, ok := ip.info.Uses[v.Sel]; ok && obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
		return ip.pkg.Name() + "." + v.Sel.Name
	case *ast.Ident:
		obj := ip.info.ObjectOf(v)
		if obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Name() + "." + obj.Name()
		}
		// Local variable (possibly a struct embedding a mutex): scope
		// the name to the enclosing function.
		return ip.pkg.Name() + "." + fnName + "." + v.Name
	default:
		return ip.pkg.Name() + "." + types.ExprString(x)
	}
}

// recordReturn classifies the error-position results of one return
// statement for the transient fixpoint.
func (ip *Interproc) recordReturn(fi *funcInfo, ret *ast.ReturnStmt) {
	if fi.decl == nil {
		return
	}
	obj, _ := ip.info.Defs[fi.decl.Name].(*types.Func)
	if obj == nil {
		return
	}
	sig := obj.Type().(*types.Signature)
	results := sig.Results()
	if results == nil {
		return
	}
	errIdx := map[int]bool{}
	for i := 0; i < results.Len(); i++ {
		if isErrorType(results.At(i).Type()) {
			errIdx[i] = true
		}
	}
	if len(errIdx) == 0 {
		return
	}
	if len(ret.Results) == 1 && results.Len() > 1 {
		// return f() forwarding a multi-result call
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			ip.classifyErrExpr(fi, call, 0)
		}
		return
	}
	for i, e := range ret.Results {
		if errIdx[i] {
			ip.classifyErrExpr(fi, e, 0)
		}
	}
}

// classifyErrExpr records what an error-position expression can be:
// a typed error literal, the sentinel, a wrap, a forwarded call, or a
// local variable (traced through its assignments).
func (ip *Interproc) classifyErrExpr(fi *funcInfo, e ast.Expr, depth int) {
	if depth > 4 {
		return
	}
	e = ast.Unparen(e)
	switch v := e.(type) {
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			if cl, ok := v.X.(*ast.CompositeLit); ok {
				if name := ip.compositeTypeName(cl); name != "" {
					fi.retTypes["*"+name] = true
				}
			}
		}
	case *ast.CompositeLit:
		if name := ip.compositeTypeName(v); name != "" {
			fi.retTypes[name] = true
		}
	case *ast.Ident:
		if v.Name == "nil" {
			return
		}
		obj := ip.info.ObjectOf(v)
		if obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			if obj.Name() == "ErrTransient" {
				fi.retSentinel = true
			}
			return
		}
		// Local variable: every call assigned to it is a candidate
		// source (may-analysis; order does not matter).
		ip.traceLocalErrVar(fi, v.Name, depth)
	case *ast.SelectorExpr:
		if obj, ok := ip.info.Uses[v.Sel]; ok && obj.Name() == "ErrTransient" {
			fi.retSentinel = true
		}
	case *ast.CallExpr:
		fn := calleeOf(ip.info, v)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		if fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf" {
			if fmtWrapsError(v) {
				fi.retWrap = true
				for _, a := range v.Args[1:] {
					ip.classifyErrExpr(fi, a, depth+1)
				}
			}
			return
		}
		if ip.moduleLocal(fn.Pkg().Path()) {
			fi.retCallees = append(fi.retCallees, fn)
		}
	}
}

// compositeTypeName renders the qualified type name of a composite
// literal ("kvstore.ErrNodeDown"), or "" for anonymous types.
func (ip *Interproc) compositeTypeName(cl *ast.CompositeLit) string {
	t := ip.typeOf(cl)
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	pkgName := ip.pkg.Name()
	if named.Obj().Pkg() != nil {
		pkgName = named.Obj().Pkg().Name()
	}
	return pkgName + "." + named.Obj().Name()
}

// fmtWrapsError reports whether a fmt.Errorf call's format string
// contains %w.
func fmtWrapsError(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	return ok && strings.Contains(lit.Value, "%w")
}

// traceLocalErrVar unions in every call or literal assigned to a local
// variable anywhere in the function body.
func (ip *Interproc) traceLocalErrVar(fi *funcInfo, name string, depth int) {
	if fi.decl == nil || fi.decl.Body == nil {
		return
	}
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok2 := lhs.(*ast.Ident)
			if !ok2 || id.Name != name {
				continue
			}
			var rhs ast.Expr
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0]
			}
			if rhs != nil {
				ip.classifyErrExpr(fi, rhs, depth+1)
			}
		}
		return true
	})
}

// ---------------------------------------------------------------------
// Fixpoint.

// calleeFact resolves a callee's fixpoint summary: local functions from
// this package's in-progress state, module-local imports from the
// dependency facts. The bool reports whether anything is known.
func (ip *Interproc) calleeFact(fn *types.Func) (FuncFact, bool) {
	if fi, ok := ip.byObj[fn]; ok {
		return FuncFact{
			Blocks:      fi.mayBlock,
			BlockPath:   fi.blockPath,
			Acquires:    sortedKeys(fi.allAcquires),
			Transient:   fi.transient,
			ErrTypes:    sortedKeys(fi.allErrTypes),
			ParkRisk:    fi.parkRisk,
			NetAcquires: fi.netAcquireIDs(),
			NetReleases: sortedKeys(fi.netReleases),
		}, true
	}
	if fn.Pkg() == nil {
		return FuncFact{}, false
	}
	return ip.unit.Facts.Func(fn.Pkg().Path(), funcKey(fn))
}

// calleeDisplay renders a callee for diagnostics: "kvstore.(*Client).Get".
func calleeDisplay(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Name() + "." + funcKey(fn)
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// fixpoint propagates blocks/acquires/transient through local calls
// until stable. Imported facts are fixed inputs, so termination is
// bounded by the finite lock-ID and error-type sets.
func (ip *Interproc) fixpoint() {
	for _, fi := range ip.funcs {
		fi.allAcquires = map[string]bool{}
		for id := range fi.acquires {
			fi.allAcquires[id] = true
		}
		fi.allErrTypes = map[string]bool{}
		for t := range fi.retTypes {
			fi.allErrTypes[t] = true
		}
		if len(fi.blocksDirect) > 0 {
			fi.mayBlock = true
			fi.blockPath = fi.blocksDirect[0].desc
		}
		if len(fi.parkCands) > 0 {
			fi.parkRisk = fi.parkCands[0]
		}
		if fi.retSentinel {
			fi.transient = true
			fi.transientVia = "returns ErrTransient"
		}
		for t := range fi.retTypes {
			if ip.transientTypes[t] {
				fi.transient = true
				fi.transientVia = "returns " + t
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for _, fi := range ip.funcs {
			for _, c := range fi.calls {
				fact, ok := ip.calleeFact(c.fn)
				if !ok {
					continue
				}
				if fact.Blocks && !fi.mayBlock {
					fi.mayBlock = true
					fi.blockPath = calleeDisplay(c.fn)
					if fact.BlockPath != "" && len(fact.BlockPath) < 120 {
						fi.blockPath += " → " + fact.BlockPath
					}
					changed = true
				}
				for _, id := range fact.Acquires {
					if !fi.allAcquires[id] {
						fi.allAcquires[id] = true
						changed = true
					}
				}
				if fact.ParkRisk != "" && fi.parkRisk == "" {
					fi.parkRisk = calleeDisplay(c.fn)
					if len(fact.ParkRisk) < 160 {
						fi.parkRisk += " → " + fact.ParkRisk
					}
					changed = true
				}
			}
			for _, fn := range fi.retCallees {
				fact, ok := ip.calleeFact(fn)
				if !ok {
					continue
				}
				if fact.Transient && !fi.transient {
					fi.transient = true
					fi.transientVia = "forwards " + calleeDisplay(fn)
					changed = true
				}
				for _, t := range fact.ErrTypes {
					if !fi.allErrTypes[t] {
						fi.allErrTypes[t] = true
						changed = true
					}
				}
				// An error wrapped with %w stays transient if its
				// source was; unwrapped forwarding keeps types too —
				// both are unioned above.
			}
			// Typed errors whose types are transient make the function
			// transient (a callee may have introduced new types).
			if !fi.transient {
				for t := range fi.allErrTypes {
					if ip.transientTypes[t] {
						fi.transient = true
						fi.transientVia = "returns " + t
						changed = true
					}
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// Results.

// Facts exports this package's summaries for dependents: named
// functions with a non-empty summary, plus the package's lock edges
// (direct and call-derived).
func (ip *Interproc) Facts() *PackageFacts {
	pf := &PackageFacts{Funcs: map[string]FuncFact{}}
	for _, fi := range ip.funcs {
		if fi.pseudo {
			continue
		}
		f := FuncFact{
			Blocks:          fi.mayBlock,
			BlockPath:       fi.blockPath,
			Acquires:        sortedKeys(fi.allAcquires),
			Transient:       fi.transient,
			ErrTypes:        sortedKeys(fi.allErrTypes),
			ParkRisk:        fi.parkRisk,
			NetAcquires:     fi.netAcquireIDs(),
			NetReleases:     sortedKeys(fi.netReleases),
			AtomicResults:   sortedKeys(fi.atomicResults),
			SnapshotTainted: fi.snapshotTaintID != "",
		}
		if !f.Blocks && !f.Transient && len(f.Acquires) == 0 && len(f.ErrTypes) == 0 &&
			f.ParkRisk == "" && len(f.NetAcquires) == 0 && len(f.NetReleases) == 0 &&
			len(f.AtomicResults) == 0 && !f.SnapshotTainted {
			continue
		}
		pf.Funcs[fi.key] = f
	}
	pf.AtomicFields = sortedKeys(ip.atomicFields)
	seen := map[[2]string]bool{}
	for _, e := range ip.allEdges() {
		k := [2]string{e.from, e.to}
		if seen[k] {
			continue
		}
		seen[k] = true
		pf.LockEdges = append(pf.LockEdges, LockEdge{
			From: e.from,
			To:   e.to,
			Pos:  ip.unit.Fset.Position(e.pos).String(),
		})
	}
	sort.Slice(pf.LockEdges, func(i, j int) bool {
		if pf.LockEdges[i].From != pf.LockEdges[j].From {
			return pf.LockEdges[i].From < pf.LockEdges[j].From
		}
		return pf.LockEdges[i].To < pf.LockEdges[j].To
	})
	return pf
}

// netAcquireIDs returns the mutex IDs this function returns holding on
// some exit without ever releasing them — the signature of an
// intentional acquire-helper (the cross-package half of releasepath).
// Early-return leaks (released on one path, held on another) are
// excluded: those are bugs, not contracts, and releasepath flags them.
func (fi *funcInfo) netAcquireIDs() []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range fi.exits {
		for _, l := range e.held {
			if l.kind != kindMutex || l.deferred || fi.releasedIDs[l.id] || seen[l.id] {
				continue
			}
			seen[l.id] = true
			out = append(out, l.id)
		}
	}
	sort.Strings(out)
	return out
}

// allEdges returns every local acquired-while-held edge: direct
// acquisitions plus call-derived ones (locks held at a call site ×
// locks the callee may acquire, per its summary or imported fact).
func (ip *Interproc) allEdges() []localEdge {
	var out []localEdge
	for _, fi := range ip.funcs {
		out = append(out, fi.edges...)
		for _, c := range fi.calls {
			heldIDs := (&held{locks: c.held}).ids()
			if len(heldIDs) == 0 {
				continue
			}
			fact, ok := ip.calleeFact(c.fn)
			if !ok {
				continue
			}
			for _, from := range heldIDs {
				for _, to := range fact.Acquires {
					out = append(out, localEdge{from: from, to: to, pos: c.pos})
				}
			}
		}
	}
	return out
}
