package lint

import (
	"encoding/json"
	"sort"
)

// Cross-package facts.
//
// The interprocedural analyzers (lockorder, holdblock, errtaxonomy)
// need to know things about functions in *other* packages: does
// (*kvstore.Client).Get park the simulated process? which locks does
// (*Cluster).Rebalance end up acquiring? can (*Client).TestAndSet
// return an error that unwraps to kvstore.ErrTransient? Those summaries
// are computed once per package (see interproc.go) and serialized into
// the vetx facts files the `go vet` vettool protocol already threads
// between units: each unit's facts are written to cfg.VetxOutput, and a
// dependent unit finds its dependencies' facts in cfg.PackageVetx. The
// standalone driver keeps the same facts in memory, in dependency
// order. Only module-local packages carry facts; the behavior of the
// few standard-library blocking primitives is hardcoded in the
// analyzers instead of analyzed.

// FuncFact is one function's externally visible summary. Functions are
// keyed the way they read at a call site: "FuncName" for package
// functions, "(Type).Method" / "(*Type).Method" for methods.
type FuncFact struct {
	// Blocks reports that calling the function may block the goroutine
	// (or park the simulated process): a channel operation, a
	// sync.Cond/WaitGroup wait, a time.Sleep, or a call to something
	// that does — transitively.
	Blocks bool `json:"blocks,omitempty"`
	// BlockPath is a human-readable witness for Blocks: the call chain
	// from this function to the primitive that blocks.
	BlockPath string `json:"blockPath,omitempty"`
	// Acquires lists the canonical lock IDs (see interproc.go) the
	// function may acquire, directly or transitively.
	Acquires []string `json:"acquires,omitempty"`
	// Transient reports that the function may return an error that
	// unwraps to the package's ErrTransient sentinel (or to a typed
	// error that does).
	Transient bool `json:"transient,omitempty"`
	// ErrTypes lists the typed errors the function can return, e.g.
	// "*kvstore.ErrNodeDown".
	ErrTypes []string `json:"errTypes,omitempty"`
}

// LockEdge is one acquired-while-held observation: To was acquired at
// Pos while From was held. Edges are exported so a dependent package
// can stitch its own acquisitions into the global lock graph and catch
// cycles that span packages.
type LockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	// Pos is the acquisition site, as file:line (the exporting unit's
	// file positions).
	Pos string `json:"pos,omitempty"`
}

// PackageFacts is everything one package exports to its dependents.
type PackageFacts struct {
	// Version guards the encoding; readers ignore files with a
	// different version (stale caches across tool upgrades).
	Version int                 `json:"version"`
	Funcs   map[string]FuncFact `json:"funcs,omitempty"`
	// LockEdges are the package's acquired-while-held observations.
	LockEdges []LockEdge `json:"lockEdges,omitempty"`
}

// factsVersion bumps whenever the encoding or the meaning of a fact
// changes.
const factsVersion = 1

// EncodeFacts serializes facts for a vetx file.
func EncodeFacts(f *PackageFacts) []byte {
	if f == nil {
		f = &PackageFacts{}
	}
	f.Version = factsVersion
	out, err := json.Marshal(f)
	if err != nil {
		return nil
	}
	return out
}

// DecodeFacts parses a vetx facts file. Empty or foreign content (the
// zero-length acknowledgement files written for out-of-module units,
// or files from an older tool version) decodes to nil, which readers
// treat as "no facts".
func DecodeFacts(data []byte) *PackageFacts {
	if len(data) == 0 {
		return nil
	}
	var f PackageFacts
	if err := json.Unmarshal(data, &f); err != nil || f.Version != factsVersion {
		return nil
	}
	return &f
}

// FactStore holds the facts of every dependency package, keyed by
// import path.
type FactStore struct {
	pkgs map[string]*PackageFacts
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{pkgs: map[string]*PackageFacts{}}
}

// Add records one package's facts. nil facts are ignored.
func (s *FactStore) Add(path string, f *PackageFacts) {
	if f != nil {
		s.pkgs[path] = f
	}
}

// Pkg returns one package's facts, or nil.
func (s *FactStore) Pkg(path string) *PackageFacts {
	if s == nil {
		return nil
	}
	return s.pkgs[path]
}

// Func looks up one function's fact by package path and key.
func (s *FactStore) Func(path, key string) (FuncFact, bool) {
	p := s.Pkg(path)
	if p == nil {
		return FuncFact{}, false
	}
	f, ok := p.Funcs[key]
	return f, ok
}

// AllLockEdges returns every lock edge in the store plus extra, deduped
// by (From, To) with the first position kept, sorted for determinism.
func (s *FactStore) AllLockEdges(extra []LockEdge) []LockEdge {
	seen := map[[2]string]LockEdge{}
	add := func(e LockEdge) {
		k := [2]string{e.From, e.To}
		if _, ok := seen[k]; !ok {
			seen[k] = e
		}
	}
	// Local edges first so their positions win for reporting.
	for _, e := range extra {
		add(e)
	}
	if s != nil {
		var paths []string
		for p := range s.pkgs {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			for _, e := range s.pkgs[p].LockEdges {
				add(e)
			}
		}
	}
	out := make([]LockEdge, 0, len(seen))
	for _, e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}
