package lint

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Cross-package facts.
//
// The interprocedural analyzers (lockorder, holdblock, errtaxonomy)
// need to know things about functions in *other* packages: does
// (*kvstore.Client).Get park the simulated process? which locks does
// (*Cluster).Rebalance end up acquiring? can (*Client).TestAndSet
// return an error that unwraps to kvstore.ErrTransient? Those summaries
// are computed once per package (see interproc.go) and serialized into
// the vetx facts files the `go vet` vettool protocol already threads
// between units: each unit's facts are written to cfg.VetxOutput, and a
// dependent unit finds its dependencies' facts in cfg.PackageVetx. The
// standalone driver keeps the same facts in memory, in dependency
// order. Only module-local packages carry facts; the behavior of the
// few standard-library blocking primitives is hardcoded in the
// analyzers instead of analyzed.

// FuncFact is one function's externally visible summary. Functions are
// keyed the way they read at a call site: "FuncName" for package
// functions, "(Type).Method" / "(*Type).Method" for methods.
type FuncFact struct {
	// Blocks reports that calling the function may block the goroutine
	// (or park the simulated process): a channel operation, a
	// sync.Cond/WaitGroup wait, a time.Sleep, or a call to something
	// that does — transitively.
	Blocks bool `json:"blocks,omitempty"`
	// BlockPath is a human-readable witness for Blocks: the call chain
	// from this function to the primitive that blocks.
	BlockPath string `json:"blockPath,omitempty"`
	// Acquires lists the canonical lock IDs (see interproc.go) the
	// function may acquire, directly or transitively.
	Acquires []string `json:"acquires,omitempty"`
	// Transient reports that the function may return an error that
	// unwraps to the package's ErrTransient sentinel (or to a typed
	// error that does).
	Transient bool `json:"transient,omitempty"`
	// ErrTypes lists the typed errors the function can return, e.g.
	// "*kvstore.ErrNodeDown".
	ErrTypes []string `json:"errTypes,omitempty"`
	// ParkRisk is goroleak's witness that a run of this function may
	// never terminate: the first non-escapable blocking operation,
	// unbounded loop, or function-value call on some path ("" = the
	// analysis found a termination path everywhere). Dependents chain
	// it through their own call sites, so a `go` statement three
	// packages away can cite the primitive that parks.
	ParkRisk string `json:"parkRisk,omitempty"`
	// NetAcquires lists the canonical lock IDs the function returns
	// holding on some exit without ever releasing — an intentional
	// acquire-helper contract. A dependent's walk extends its held set
	// across calls to such helpers, so releasepath and holdblock see
	// cross-package critical sections.
	NetAcquires []string `json:"netAcquires,omitempty"`
	// NetReleases lists the lock IDs the function releases without a
	// matching acquisition of its own — the releasing half of a
	// cross-package helper pair.
	NetReleases []string `json:"netReleases,omitempty"`
	// AtomicResults lists the atomic-field IDs whose Load()ed value the
	// function may return. A caller treats such a result as
	// atomically-published state: plain writes through it are atomicmix
	// violations even though the Load happened a package away.
	AtomicResults []string `json:"atomicResults,omitempty"`
	// SnapshotTainted reports that some result derives from a claimed
	// routing snapshot (beginOp) the function does not itself release —
	// the acquire-helper shape. Callers inherit the scoping obligation:
	// snapshotescape seeds its provenance at calls to such functions.
	SnapshotTainted bool `json:"snapshotTainted,omitempty"`
}

// LockEdge is one acquired-while-held observation: To was acquired at
// Pos while From was held. Edges are exported so a dependent package
// can stitch its own acquisitions into the global lock graph and catch
// cycles that span packages.
type LockEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
	// Pos is the acquisition site, as file:line (the exporting unit's
	// file positions).
	Pos string `json:"pos,omitempty"`
}

// PackageFacts is everything one package exports to its dependents.
type PackageFacts struct {
	// Version guards the encoding; readers ignore files with a
	// different version (stale caches across tool upgrades).
	Version int                 `json:"version"`
	Funcs   map[string]FuncFact `json:"funcs,omitempty"`
	// LockEdges are the package's acquired-while-held observations.
	LockEdges []LockEdge `json:"lockEdges,omitempty"`
	// AtomicFields lists the canonical IDs ("pkg.Struct.field") of this
	// package's fields that are accessed atomically: fields of a
	// sync/atomic type, and plain-typed fields some site touches with a
	// sync/atomic function call. atomicmix uses the fact to flag plain
	// accesses from other packages, where the declaring package's
	// atomic call sites are invisible.
	AtomicFields []string `json:"atomicFields,omitempty"`
}

// factsVersion bumps whenever the encoding or the meaning of a fact
// changes. Version 2 added ParkRisk and NetAcquires/NetReleases;
// version 3 added AtomicFields, AtomicResults, and SnapshotTainted
// (the dataflow-analyzer facts). Decode-compat is by design version
// skew: DecodeFacts returns (nil, nil) for any other version, so a
// stale cache reads as "no facts", never as wrong facts.
const factsVersion = 3

// EncodeFacts serializes facts for a vetx file.
func EncodeFacts(f *PackageFacts) []byte {
	if f == nil {
		f = &PackageFacts{}
	}
	f.Version = factsVersion
	out, err := json.Marshal(f)
	if err != nil {
		return nil
	}
	return out
}

// DecodeFacts parses a vetx facts file. Three outcomes:
//
//   - (facts, nil): a well-formed file from this tool version;
//   - (nil, nil): content to silently ignore — the zero-length
//     acknowledgement files written for out-of-module units, or a
//     well-formed file from a different tool version (a stale cache
//     across upgrades is expected, not an error);
//   - (nil, err): corrupt or truncated content. Drivers must surface
//     this as a diagnostic and run without the facts — never panic,
//     never trust a partial decode. The go build cache and the lint
//     cache both replay these files long after they were written, so
//     torn writes and truncation are inputs, not impossibilities.
func DecodeFacts(data []byte) (*PackageFacts, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var f PackageFacts
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("corrupt facts (%d bytes): %w", len(data), err)
	}
	if f.Version != factsVersion {
		return nil, nil
	}
	if err := f.validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// validate rejects decoded facts whose shape would break the
// analyzers: JSON that parses but carries nonsense (an object where a
// fuzzer flipped a field into the wrong container) must read as
// corrupt, not as facts.
func (f *PackageFacts) validate() error {
	for key, fn := range f.Funcs {
		if key == "" {
			return fmt.Errorf("corrupt facts: empty function key")
		}
		for _, lists := range [][]string{fn.Acquires, fn.ErrTypes, fn.NetAcquires, fn.NetReleases, fn.AtomicResults} {
			for _, id := range lists {
				if id == "" {
					return fmt.Errorf("corrupt facts: empty ID in %q", key)
				}
			}
		}
	}
	for _, id := range f.AtomicFields {
		if id == "" {
			return fmt.Errorf("corrupt facts: empty atomic-field ID")
		}
	}
	for _, e := range f.LockEdges {
		if e.From == "" || e.To == "" {
			return fmt.Errorf("corrupt facts: lock edge with empty endpoint")
		}
	}
	return nil
}

// FactStore holds the facts of every dependency package, keyed by
// import path.
type FactStore struct {
	pkgs map[string]*PackageFacts
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{pkgs: map[string]*PackageFacts{}}
}

// Add records one package's facts. nil facts are ignored.
func (s *FactStore) Add(path string, f *PackageFacts) {
	if f != nil {
		s.pkgs[path] = f
	}
}

// Pkg returns one package's facts, or nil.
func (s *FactStore) Pkg(path string) *PackageFacts {
	if s == nil {
		return nil
	}
	return s.pkgs[path]
}

// AtomicFields returns every atomic-field ID in the store mapped to
// the exporting package's import path (first exporter wins, in sorted
// path order, for deterministic fact citations).
func (s *FactStore) AtomicFields() map[string]string {
	out := map[string]string{}
	if s == nil {
		return out
	}
	var paths []string
	for p := range s.pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		for _, id := range s.pkgs[p].AtomicFields {
			if _, ok := out[id]; !ok {
				out[id] = p
			}
		}
	}
	return out
}

// Func looks up one function's fact by package path and key.
func (s *FactStore) Func(path, key string) (FuncFact, bool) {
	p := s.Pkg(path)
	if p == nil {
		return FuncFact{}, false
	}
	f, ok := p.Funcs[key]
	return f, ok
}

// AllLockEdges returns every lock edge in the store plus extra, deduped
// by (From, To) with the first position kept, sorted for determinism.
func (s *FactStore) AllLockEdges(extra []LockEdge) []LockEdge {
	seen := map[[2]string]LockEdge{}
	add := func(e LockEdge) {
		k := [2]string{e.From, e.To}
		if _, ok := seen[k]; !ok {
			seen[k] = e
		}
	}
	// Local edges first so their positions win for reporting.
	for _, e := range extra {
		add(e)
	}
	if s != nil {
		var paths []string
		for p := range s.pkgs {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			for _, e := range s.pkgs[p].LockEdges {
				add(e)
			}
		}
	}
	out := make([]LockEdge, 0, len(seen))
	for _, e := range seen {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}
