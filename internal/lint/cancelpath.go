package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CancelPath: every context cancel func is invoked or deferred on
// every exit path.
//
// context.WithCancel/WithTimeout/WithDeadline (and their *Cause
// variants) return a CancelFunc the caller owns: until it runs, the
// child context stays registered with its parent and a WithTimeout
// timer stays live. A path that returns without calling it leaks both
// until the parent is canceled — which for request-scoped work may be
// never. This is releasepath's invariant with a different resource,
// and it runs as a second client of the same branch-sensitive walker
// (dataflow.go): the walk clones the outstanding-cancel set at
// branches, unions it at joins, and reports at the shared exit-path
// enumeration.
//
// Two deliberate approximations:
//
//   - assigning the cancel func anywhere other than a direct call or
//     defer — a struct field, a call argument, a return value, a
//     capture by a nested closure — transfers the obligation to the
//     new owner and the variable stops being tracked;
//   - discarding the cancel func outright (`ctx, _ := ...`) is
//     reported at the assignment: nobody can ever cancel that
//     context.
var CancelPath = &Analyzer{
	Name: "cancelpath",
	Doc:  "every context.WithCancel/WithTimeout/WithDeadline cancel func must be invoked or deferred on every exit path",
	Run:  runCancelPath,
}

// cancelCtor reports whether call constructs a cancellable context,
// returning the constructor's display name.
func cancelCtor(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	switch fn.Name() {
	case "WithCancel", "WithTimeout", "WithDeadline",
		"WithCancelCause", "WithTimeoutCause", "WithDeadlineCause":
		return "context." + fn.Name(), true
	}
	return "", false
}

// cancelOb is one outstanding cancel obligation.
type cancelOb struct {
	pos      token.Pos
	name     string
	ctor     string
	released bool
	deferred bool
}

// cancelState is the flowState: outstanding obligations by variable.
type cancelState struct {
	m map[*types.Var]cancelOb
}

func newCancelState() *cancelState { return &cancelState{m: map[*types.Var]cancelOb{}} }

func (s *cancelState) cloneFlow() flowState {
	out := newCancelState()
	for k, v := range s.m {
		out.m[k] = v
	}
	return out
}

// unionFlow merges sibling branches: an obligation is outstanding
// after the join if it is outstanding in either branch, and a
// deferred/released mark only survives when both branches carry it.
func (s *cancelState) unionFlow(other flowState) flowState {
	o := other.(*cancelState)
	out := s.cloneFlow().(*cancelState)
	for k, v := range o.m {
		if cur, ok := out.m[k]; ok {
			cur.released = cur.released && v.released
			cur.deferred = cur.deferred && v.deferred
			out.m[k] = cur
		} else {
			out.m[k] = v
		}
	}
	return out
}

func (s *cancelState) copyFlow(other flowState) {
	s.m = other.(*cancelState).m
}

// cancelFlow is the walker client for one function or literal body.
type cancelFlow struct {
	p    *Pass
	info *types.Info
	// xfer holds cancel vars whose obligation moved to another owner
	// (see the pre-scan in runCancelPath); they are never tracked.
	xfer map[types.Object]bool
	// reported dedups diagnostics across the walker's two-pass loop
	// revisits: exits by (pos, var), discards by pos.
	reported  map[token.Pos]map[*types.Var]bool
	discarded map[token.Pos]bool
}

func (c *cancelFlow) leafStmt(w *flowWalker, st ast.Stmt, fs flowState) {
	s := fs.(*cancelState)
	switch stmt := st.(type) {
	case *ast.AssignStmt:
		c.trackAssign(stmt, s)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(stmt.X).(*ast.CallExpr); ok {
			c.release(call, s, false)
		}
	case *ast.DeferStmt:
		c.release(stmt.Call, s, true)
	}
}

// trackAssign records ctx, cancel := context.WithCancel(...) shapes.
func (c *cancelFlow) trackAssign(stmt *ast.AssignStmt, s *cancelState) {
	if len(stmt.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	ctor, ok := cancelCtor(c.info, call)
	if !ok || len(stmt.Lhs) != 2 {
		return
	}
	id, ok := ast.Unparen(stmt.Lhs[1]).(*ast.Ident)
	if !ok {
		return
	}
	if id.Name == "_" {
		if !c.discarded[id.Pos()] {
			c.discarded[id.Pos()] = true
			c.p.Reportf(id.Pos(),
				"cancel func from %s is discarded; nothing can ever cancel this context (its timer and parent registration leak)", ctor)
		}
		return
	}
	obj := c.info.Defs[id]
	if obj == nil {
		obj = c.info.Uses[id]
	}
	v, ok := obj.(*types.Var)
	if !ok || c.xfer[obj] {
		return
	}
	s.m[v] = cancelOb{pos: id.Pos(), name: id.Name, ctor: ctor}
}

// release marks a direct cancel() call (or defer cancel()).
func (c *cancelFlow) release(call *ast.CallExpr, s *cancelState, deferred bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := c.info.Uses[id].(*types.Var)
	if !ok {
		return
	}
	if ob, tracked := s.m[v]; tracked {
		if deferred {
			ob.deferred = true
		} else {
			ob.released = true
		}
		s.m[v] = ob
	}
}

func (c *cancelFlow) flowExpr(e ast.Expr, fs flowState)                 {}
func (c *cancelFlow) flowComm(w *flowWalker, st ast.Stmt, fs flowState) {}
func (c *cancelFlow) forObs(s *ast.ForStmt, fs flowState)               {}
func (c *cancelFlow) rangeObs(s *ast.RangeStmt, fs flowState)           {}
func (c *cancelFlow) selectObs(s *ast.SelectStmt, fs flowState)         {}
func (c *cancelFlow) returnObs(s *ast.ReturnStmt, fs flowState)         {}

func (c *cancelFlow) exitPath(pos token.Pos, fs flowState) {
	s := fs.(*cancelState)
	for v, ob := range s.m {
		if ob.released || ob.deferred {
			continue
		}
		if c.reported[pos] == nil {
			c.reported[pos] = map[*types.Var]bool{}
		}
		if c.reported[pos][v] {
			continue
		}
		c.reported[pos][v] = true
		c.p.Reportf(pos,
			"cancel func %s from %s (created at line %d) is not called on this exit path; call it or defer it so the context releases its timer and parent registration",
			ob.name, ob.ctor, c.p.Fset.Position(ob.pos).Line)
	}
}

func runCancelPath(p *Pass) {
	if p.unit.Info == nil {
		return
	}
	for _, f := range p.Files {
		// Walk units: every function declaration body and every func
		// literal body (a literal's cancels are its own; the outer walk
		// does not descend into it).
		var bodies []*ast.BlockStmt
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					bodies = append(bodies, d.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, d.Body)
			}
			return true
		})
		for _, body := range bodies {
			c := &cancelFlow{
				p:         p,
				info:      p.unit.Info,
				xfer:      cancelTransfers(p.unit.Info, body),
				reported:  map[token.Pos]map[*types.Var]bool{},
				discarded: map[token.Pos]bool{},
			}
			w := &flowWalker{client: c}
			w.walkBody(body, newCancelState())
		}
	}
}

// cancelTransfers pre-scans a body for cancel vars whose obligation is
// handed to another owner: any use that is not the direct callee of a
// call or defer statement in this body (passed as an argument, stored,
// returned, captured by a nested literal, even compared) transfers
// responsibility, and the variable is not tracked.
func cancelTransfers(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	created := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		stmt, ok := n.(*ast.AssignStmt)
		if !ok || len(stmt.Rhs) != 1 || len(stmt.Lhs) != 2 {
			return true
		}
		call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := cancelCtor(info, call); !ok {
			return true
		}
		if id, ok := ast.Unparen(stmt.Lhs[1]).(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				created[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				created[obj] = true
			}
		}
		return true
	})
	xfer := map[types.Object]bool{}
	if len(created) == 0 {
		return xfer
	}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && created[obj] {
				if !directCancelCall(id, stack) {
					xfer[obj] = true
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	return xfer
}

// directCancelCall reports whether the identifier use is the callee of
// a plain or deferred call statement, with no intervening function
// literal (a capture inside a closure is a transfer even when the
// closure calls it — the closure's schedule is not this function's
// exit paths).
func directCancelCall(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	call, ok := stack[len(stack)-1].(*ast.CallExpr)
	if !ok || call.Fun != ast.Node(id) {
		return false
	}
	switch stack[len(stack)-2].(type) {
	case *ast.ExprStmt, *ast.DeferStmt:
	default:
		return false
	}
	// Any enclosing literal between the walked body and the call makes
	// it a capture. The walked body itself may be a literal's body —
	// stack[0] is the body block, so scan above it only.
	for _, n := range stack[:len(stack)-2] {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
	}
	return true
}
