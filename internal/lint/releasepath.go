package lint

// ReleasePath verifies, branch-sensitively, that every acquire has a
// release on *all* exits of the acquiring function — the
// release-on-all-paths analyzer. It reads the same held-lock walk as
// lockorder/holdblock, but instead of asking what is held at blocking
// points it asks what is still held at each return:
//
//   - a mutex (or RWMutex side) held at one return but released on
//     another path is an early-return leak — the classic
//     `mu.Lock(); if err { return }` bug — reported at the leaking
//     return;
//   - a mutex held at a return and never released anywhere is either a
//     total leak or an intentional acquire-helper; it is reported too,
//     and a justified helper carries //lint:allow releasepath, which
//     also exports the hold as a NetAcquires fact so *callers* in
//     other packages are checked for the matching release;
//   - paired-call claims (the kvstore beginOp/endOp routing claim —
//     see claimPairs in interproc.go) are tracked exactly like locks:
//     a routing snapshot whose refcount is never returned pins the old
//     table across a rebalance forever.
//
// defer'd Unlock/RUnlock/endOp marks the hold released on every exit,
// so the defer idiom passes without special cases. Cross-package
// helper pairs are balanced through the NetAcquires/NetReleases facts
// the walk applies at call sites, which is what the vetx acceptance
// test in cmd/piql-vet exercises: an acquire in kvstore, the missing
// release witnessed from engine.
var ReleasePath = &Analyzer{
	Name: "releasepath",
	Doc:  "every acquire (mutex, claim, imported net-acquire) must release on all exits",
	Run:  runReleasePath,
}

func runReleasePath(pass *Pass) {
	if pass.ip == nil {
		return
	}
	for _, fi := range pass.ip.funcs {
		// One report per (exit, lock class): the two-pass loop walk can
		// surface the same leak under both the shared and exclusive
		// rows of a union.
		reported := map[string]bool{}
		for _, e := range fi.exits {
			for _, l := range e.held {
				if l.deferred {
					continue
				}
				key := pass.Fset.Position(e.pos).String() + "\x00" + l.id
				if reported[key] {
					continue
				}
				reported[key] = true
				what := "mutex " + l.id
				if l.kind == kindClaim {
					what = fi.claimNames[l.id]
					if what == "" {
						what = "claim " + l.id
					}
				}
				if fi.releasedIDs[l.id] {
					pass.Reportf(e.pos,
						"%s is still held at this return but released on another path; release it on every exit or defer the release",
						what)
				} else {
					pass.Reportf(e.pos,
						"%s is never released on any path through %s; callers inherit the hold (an intentional acquire-helper needs //lint:allow releasepath naming the contract)",
						what, fi.display)
				}
			}
		}
	}
}
