// Package lint is a small static-analysis framework plus the project's
// concurrency-invariant analyzers. It plays the role of
// golang.org/x/tools/go/analysis for this repository — built on the
// standard library's go/ast and go/token only, because the build must
// not fetch modules — and is driven two ways: by cmd/piql-vet through
// `go vet -vettool` (see that command for the protocol) and by the
// analyzers' own tests through linttest.
//
// The analyzers enforce structural invariants of the concurrent
// engine/kvstore code that the type system cannot express: how routing
// snapshots are claimed, that version envelopes reach replicas intact,
// that simulated processes never block the real clock, and that lease
// tables are swapped whole. Each one documents its invariant on its
// Analyzer value.
//
// A site that violates the letter of a rule for a documented reason is
// suppressed with a directive comment naming the analyzer:
//
//	//lint:allow routingclaim — control-plane read under c.mu
//
// The directive is honored when it appears on the diagnostic's line,
// on the line above it, or in the doc comment of the enclosing
// function. Suppression is part of the framework, not the individual
// analyzers, so every rule gets it uniformly.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass is one analyzer's view of one package: parsed files (comments
// included) sharing a FileSet. The framework is AST-only — these
// invariants are structural, so no type information is needed, which
// keeps the vettool independent of export data.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// ImportPath is the package's import path ("" when unknown, e.g.
	// ad-hoc file sets in tests).
	ImportPath string

	diags []Diagnostic
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers is the registry cmd/piql-vet and the tests run.
var Analyzers = []*Analyzer{
	RoutingClaim,
	EnvelopeIntegrity,
	SimSleep,
	SimTimer,
	LeaseSwap,
}

// Run applies every analyzer to the files and returns the surviving
// diagnostics sorted by position. Files named *_test.go are skipped —
// the invariants govern production code; tests deliberately poke at
// internals (raw routing loads to assert convergence, wall-clock
// sleeps around immediate-mode clusters).
func Run(fset *token.FileSet, files []*ast.File, importPath string, analyzers []*Analyzer) []Diagnostic {
	var kept []*ast.File
	for _, f := range files {
		if strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		kept = append(kept, f)
	}
	allow := collectAllows(fset, kept)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: kept, ImportPath: importPath}
		a.Run(pass)
		for _, d := range pass.diags {
			if !allow.allows(a.Name, d.Pos) {
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out
}

// allowRe matches a suppression directive; everything after the
// analyzer name (an em-dash justification, usually) is ignored.
var allowRe = regexp.MustCompile(`^//lint:allow\s+([a-z]+)`)

// allowSet records where each analyzer is suppressed: the directive
// lines themselves, plus the line ranges of functions whose doc
// comment carries a directive.
type allowSet struct {
	// lines maps analyzer name -> file -> set of directive lines.
	lines map[string]map[string]map[int]bool
	// spans maps analyzer name -> file -> [start, end] line ranges.
	spans map[string]map[string][][2]int
}

func (s *allowSet) add(name, file string, line int) {
	if s.lines[name] == nil {
		s.lines[name] = map[string]map[int]bool{}
	}
	if s.lines[name][file] == nil {
		s.lines[name][file] = map[int]bool{}
	}
	s.lines[name][file][line] = true
}

func (s *allowSet) addSpan(name, file string, start, end int) {
	if s.spans[name] == nil {
		s.spans[name] = map[string][][2]int{}
	}
	s.spans[name][file] = append(s.spans[name][file], [2]int{start, end})
}

// allows reports whether a diagnostic at pos is suppressed: a
// directive on the same line or the line above, or an enclosing
// function whose doc comment carries one.
func (s *allowSet) allows(name string, pos token.Position) bool {
	if ls := s.lines[name][pos.Filename]; ls[pos.Line] || ls[pos.Line-1] {
		return true
	}
	for _, span := range s.spans[name][pos.Filename] {
		if pos.Line >= span[0] && pos.Line <= span[1] {
			return true
		}
	}
	return false
}

func collectAllows(fset *token.FileSet, files []*ast.File) *allowSet {
	s := &allowSet{
		lines: map[string]map[string]map[int]bool{},
		spans: map[string]map[string][][2]int{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if m := allowRe.FindStringSubmatch(c.Text); m != nil {
					p := fset.Position(c.Pos())
					s.add(m[1], p.Filename, p.Line)
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Doc != nil {
				for _, c := range fd.Doc.List {
					if m := allowRe.FindStringSubmatch(c.Text); m != nil {
						start := fset.Position(fd.Pos()).Line
						end := fset.Position(fd.End()).Line
						s.addSpan(m[1], fset.Position(fd.Pos()).Filename, start, end)
					}
				}
			}
		}
	}
	return s
}

// inspectStack walks the file calling fn with each node and the stack
// of its ancestors (outermost first, not including n itself).
func inspectStack(f *ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// enclosingFunc returns the innermost enclosing named function
// declaration on the stack, or nil (closures return their outermost
// named host).
func enclosingFunc(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// isSelectorCall reports whether n is a call of the form
// <expr>.<field>.<method>(...), e.g. c.routing.Load().
func isSelectorCall(n ast.Node, field, method string) (*ast.CallExpr, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil, false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != field {
		return nil, false
	}
	return call, true
}

// containsSelectorCall reports whether the expression tree rooted at e
// contains a <...>.<field>.<method>(...) call.
func containsSelectorCall(e ast.Expr, field, method string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := isSelectorCall(n, field, method); ok {
			found = true
			return false
		}
		return !found
	})
	return found
}

// resolveIdent finds the expression most recently assigned to name
// before pos within fn's body (a deliberately simple single-block
// approximation: the lexically last `name := rhs` or `name = rhs`
// above pos). Returns nil if name is not a locally assigned ident.
func resolveIdent(fn *ast.FuncDecl, name string, pos token.Pos) ast.Expr {
	if fn == nil || fn.Body == nil {
		return nil
	}
	var rhs ast.Expr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Pos() >= pos {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name != name {
				continue
			}
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0]
			}
		}
		return true
	})
	return rhs
}
