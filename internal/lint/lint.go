// Package lint is a small static-analysis framework plus the project's
// concurrency-invariant analyzers. It plays the role of
// golang.org/x/tools/go/analysis for this repository — built on the
// standard library's go/ast, go/token, and go/types only, because the
// build must not fetch modules — and is driven three ways: by
// cmd/piql-vet through `go vet -vettool` (see that command for the
// protocol), by `piql-vet -standalone`, and by the analyzers' own
// tests through linttest.
//
// The analyzers enforce structural invariants of the concurrent
// engine/kvstore code that the type system cannot express: how routing
// snapshots are claimed, that version envelopes reach replicas intact,
// that simulated processes never block the real clock, that lease
// tables are swapped whole — and, interprocedurally (see interproc.go),
// that the lock-acquisition graph stays acyclic, that nothing blocks
// while holding a mutex, and that client/op-path errors conform to the
// ErrTransient taxonomy. Each analyzer documents its invariant on its
// Analyzer value.
//
// A site that violates the letter of a rule for a documented reason is
// suppressed with a directive comment naming the analyzer:
//
//	//lint:allow routingclaim — control-plane read under c.mu
//
// The directive is honored when it appears on the diagnostic's line,
// on the line above it, or in the doc comment of the enclosing
// function. Suppression is part of the framework, not the individual
// analyzers, so every rule gets it uniformly — and so is staleness: a
// directive that suppresses nothing (for an analyzer that actually
// ran) is itself reported, so justified allows cannot rot after the
// code they excused is refactored away.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Analyzer is one named invariant check. Skip, when non-nil, excuses
// the analyzer from a unit entirely (it is then not counted as having
// run, so its //lint:allow directives are not audited for staleness
// there) — escapebudget uses it to run only when the driver supplied
// build diagnostics.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
	Skip func(*Unit) bool
}

// Pass is one analyzer's view of one package: parsed files (comments
// included) sharing a FileSet, plus — when the driver typechecked the
// unit — type information and interprocedural summaries. The original
// five analyzers are purely syntactic and ignore the typed side; the
// interprocedural ones (lockorder, holdblock, errtaxonomy) no-op when
// it is absent.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// ImportPath is the package's import path ("" when unknown, e.g.
	// ad-hoc file sets in tests).
	ImportPath string

	unit *Unit
	ip   *Interproc

	diags []Diagnostic
}

// Unit is one analysis unit: a package's parsed files, optionally
// typechecked, plus the facts of its dependencies. Pkg == nil means
// syntactic-only (the typed analyzers skip themselves).
type Unit struct {
	Fset       *token.FileSet
	Files      []*ast.File
	ImportPath string
	Pkg        *types.Package
	Info       *types.Info
	// Facts holds dependency summaries keyed by import path (nil is
	// treated as empty).
	Facts *FactStore
	// Escapes carries the compiler's attributed heap-escape decisions
	// for this package, when the driver ran `go build -gcflags=-m`
	// (piql-vet -escapebudget). nil in ordinary vet units, which makes
	// the escapebudget analyzer skip itself.
	Escapes *EscapeInfo
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportAt(p.Fset.Position(pos), format, args...)
}

// ReportAt records a violation at an already-resolved position —
// for diagnostics whose site comes from outside the FileSet, like the
// compiler's escape-analysis output. Suppression directives match on
// the position, so //lint:allow works for these too.
func (p *Pass) ReportAt(pos token.Position, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers is the registry cmd/piql-vet and the tests run: the five
// syntactic invariants, the five interprocedural ones (lockorder,
// holdblock, errtaxonomy, goroleak, releasepath), the build-diagnostic
// escapebudget, and the three dataflow analyzers built on the dataflow
// core (atomicmix, snapshotescape, cancelpath).
var Analyzers = []*Analyzer{
	RoutingClaim,
	EnvelopeIntegrity,
	SimSleep,
	SimTimer,
	LeaseSwap,
	LockOrder,
	HoldBlock,
	ErrTaxonomy,
	GoroLeak,
	ReleasePath,
	EscapeBudget,
	AtomicMix,
	SnapshotEscape,
	CancelPath,
}

// ByName returns the registered analyzer with the given name, or nil.
// Tests fetch analyzers through it so that deleting a registration
// fails the analyzer's fixture suite.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// StaleAllowName is the analyzer name stale //lint:allow diagnostics
// are reported under. Staleness is a framework property (it needs the
// post-suppression view across every analyzer in the run), so there is
// no Analyzer value to register; the name exists for output grouping
// and cannot itself be suppressed — a directive cannot justify its own
// existence.
const StaleAllowName = "staleallow"

// Run applies every analyzer to the files syntactically and returns
// the surviving diagnostics sorted by position. It is RunUnit without
// type information, kept for the syntactic-only callers.
func Run(fset *token.FileSet, files []*ast.File, importPath string, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunUnit(&Unit{Fset: fset, Files: files, ImportPath: importPath}, analyzers)
	return diags
}

// RunUnit applies every analyzer to the unit and returns the surviving
// diagnostics sorted by position, plus the package's exported facts
// (nil when the unit is untyped). Files named *_test.go are skipped —
// the invariants govern production code; tests deliberately poke at
// internals (raw routing loads to assert convergence, wall-clock
// sleeps around immediate-mode clusters).
func RunUnit(u *Unit, analyzers []*Analyzer) ([]Diagnostic, *PackageFacts) {
	if u.Facts == nil {
		u.Facts = NewFactStore()
	}
	var kept []*ast.File
	for _, f := range u.Files {
		if strings.HasSuffix(u.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		kept = append(kept, f)
	}
	var ip *Interproc
	var facts *PackageFacts
	if u.Pkg != nil && u.Info != nil {
		ip = buildInterproc(u, kept)
		facts = ip.Facts()
	}
	directives := collectDirectives(u.Fset, kept)
	var out []Diagnostic
	ran := map[string]bool{}
	for _, a := range analyzers {
		if a.Skip != nil && a.Skip(u) {
			continue
		}
		ran[a.Name] = true
		pass := &Pass{
			Analyzer:   a,
			Fset:       u.Fset,
			Files:      kept,
			ImportPath: u.ImportPath,
			unit:       u,
			ip:         ip,
		}
		a.Run(pass)
		for _, d := range pass.diags {
			if !directives.allow(a.Name, d.Pos) {
				out = append(out, d)
			}
		}
	}
	// Staleness: a directive for an analyzer that ran but suppressed
	// nothing is dead weight — or worse, a stale justification for a
	// violation that no longer exists. Directives naming analyzers
	// outside this run set are left alone (single-analyzer test runs
	// must not flag their neighbors' allows).
	for _, dir := range directives.list {
		if ran[dir.name] && !dir.used {
			out = append(out, Diagnostic{
				Analyzer: StaleAllowName,
				Pos:      dir.pos,
				Message: fmt.Sprintf(
					"//lint:allow %s suppresses no diagnostic; remove the directive or restore its justification",
					dir.name),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, facts
}

// allowRe matches a suppression directive; everything after the
// analyzer name (an em-dash justification, usually) is ignored.
var allowRe = regexp.MustCompile(`^//lint:allow\s+([a-z]+)`)

// directive is one //lint:allow comment: where it is, which analyzer
// it names, the function span it covers when it sits in a doc comment,
// and whether it suppressed anything this run.
type directive struct {
	name string
	pos  token.Position
	// span is the [start, end] line range the directive covers when it
	// appears in a function's doc comment; zero otherwise.
	span [2]int
	used bool
}

// directiveSet is every directive in the unit, in source order.
type directiveSet struct {
	list []*directive
	// byFile indexes directives by filename for the per-diagnostic
	// lookup.
	byFile map[string][]*directive
}

// allow reports whether a diagnostic by the named analyzer at pos is
// suppressed, marking the winning directive used.
func (s *directiveSet) allow(name string, pos token.Position) bool {
	ok := false
	for _, d := range s.byFile[pos.Filename] {
		if d.name != name {
			continue
		}
		if d.pos.Line == pos.Line || d.pos.Line == pos.Line-1 ||
			(d.span[1] > 0 && pos.Line >= d.span[0] && pos.Line <= d.span[1]) {
			d.used = true
			ok = true
			// Keep scanning: a line directive and a doc-comment
			// directive can both cover pos; both are then live.
		}
	}
	return ok
}

func collectDirectives(fset *token.FileSet, files []*ast.File) *directiveSet {
	s := &directiveSet{byFile: map[string][]*directive{}}
	// index finds the directive already recorded at a position (doc
	// comments appear both in File.Comments and in FuncDecl.Doc).
	index := map[string]*directive{}
	add := func(name string, pos token.Position) *directive {
		key := fmt.Sprintf("%s:%d:%d", pos.Filename, pos.Line, pos.Column)
		if d, ok := index[key]; ok {
			return d
		}
		d := &directive{name: name, pos: pos}
		index[key] = d
		s.list = append(s.list, d)
		s.byFile[pos.Filename] = append(s.byFile[pos.Filename], d)
		return d
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if m := allowRe.FindStringSubmatch(c.Text); m != nil {
					add(m[1], fset.Position(c.Pos()))
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if m := allowRe.FindStringSubmatch(c.Text); m != nil {
					d := add(m[1], fset.Position(c.Pos()))
					d.span = [2]int{
						fset.Position(fd.Pos()).Line,
						fset.Position(fd.End()).Line,
					}
				}
			}
		}
	}
	return s
}

// simImportPath is the discrete-event simulator package; the sim
// analyzers gate on a package importing it.
const simImportPath = "piql/internal/sim"

// importsSim reports whether any of the files imports the simulator
// package (by canonical path, or any path ending in /internal/sim so
// fixture modules qualify).
func importsSim(files []*ast.File) bool {
	for _, f := range files {
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil &&
				(path == simImportPath || strings.HasSuffix(path, "/internal/sim")) {
				return true
			}
		}
	}
	return false
}

// inspectStack walks the file calling fn with each node and the stack
// of its ancestors (outermost first, not including n itself).
func inspectStack(f *ast.File, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// enclosingFunc returns the innermost enclosing named function
// declaration on the stack, or nil (closures return their outermost
// named host).
func enclosingFunc(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// isSelectorCall reports whether n is a call of the form
// <expr>.<field>.<method>(...), e.g. c.routing.Load().
func isSelectorCall(n ast.Node, field, method string) (*ast.CallExpr, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return nil, false
	}
	inner, ok := sel.X.(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != field {
		return nil, false
	}
	return call, true
}

// containsSelectorCall reports whether the expression tree rooted at e
// contains a <...>.<field>.<method>(...) call.
func containsSelectorCall(e ast.Expr, field, method string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := isSelectorCall(n, field, method); ok {
			found = true
			return false
		}
		return !found
	})
	return found
}

// resolveIdent finds the expression most recently assigned to name
// before pos within fn's body (a deliberately simple single-block
// approximation: the lexically last `name := rhs` or `name = rhs`
// above pos). Returns nil if name is not a locally assigned ident.
func resolveIdent(fn *ast.FuncDecl, name string, pos token.Pos) ast.Expr {
	if fn == nil || fn.Body == nil {
		return nil
	}
	var rhs ast.Expr
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Pos() >= pos {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name != name {
				continue
			}
			if len(as.Rhs) == len(as.Lhs) {
				rhs = as.Rhs[i]
			} else if len(as.Rhs) == 1 {
				rhs = as.Rhs[0]
			}
		}
		return true
	})
	return rhs
}
