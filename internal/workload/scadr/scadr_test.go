package scadr

import (
	"testing"

	"piql/internal/engine"
	"piql/internal/kvstore"
)

func TestLoadAndAllQueriesCompileAndRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UsersPerNode = 40
	cfg.ThoughtsPerUser = 5
	cfg.SubsPerUser = 5
	cfg.MaxSubscriptions = 5

	cluster := kvstore.New(kvstore.Config{Nodes: 4, ReplicationFactor: 2, Seed: 1}, nil)
	eng := engine.New(cluster)
	s := eng.Session(nil)
	for _, ddl := range DDL(cfg) {
		if err := s.Exec(ddl); err != nil {
			t.Fatalf("ddl: %v", err)
		}
	}
	users, err := Load(s, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if users != 80 {
		t.Fatalf("users = %d", users)
	}
	w, err := NewWorker(s, cfg, users, 7)
	if err != nil {
		t.Fatal(err)
	}
	// All five queries run across many interactions without error.
	for i := 0; i < 50; i++ {
		if err := w.Interaction(); err != nil {
			t.Fatalf("interaction %d: %v", i, err)
		}
	}
	if err := w.Thoughtstream(); err != nil {
		t.Fatal(err)
	}
	// Every prepared query is bounded.
	for name, q := range w.Queries() {
		if q.Plan().OpBound() <= 0 {
			t.Errorf("%s has no bound", name)
		}
	}
	if w.RandomUser().S == "" {
		t.Error("RandomUser empty")
	}
	// The thoughtstream SQL helper parses.
	if _, err := s.Prepare(ThoughtstreamSQL(10)); err != nil {
		t.Fatal(err)
	}
}

func TestLoadTinyGraph(t *testing.T) {
	cfg := DefaultConfig()
	cfg.UsersPerNode = 2
	cfg.SubsPerUser = 10 // larger than the graph: loader must not hang
	cluster := kvstore.New(kvstore.Config{Nodes: 1, ReplicationFactor: 1, Seed: 1}, nil)
	eng := engine.New(cluster)
	s := eng.Session(nil)
	for _, ddl := range DDL(cfg) {
		if err := s.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Load(s, cfg, 1); err != nil {
		t.Fatal(err)
	}
}
