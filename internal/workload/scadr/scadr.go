// Package scadr implements the paper's SCADr benchmark (Section 8.1.2):
// a Twitter-like microblogging service with users, subscriptions
// (cardinality-limited per the PIQL DDL extension), and 140-character
// thoughts. The workload simulates rendering the SCADr home page: all
// five queries per interaction, plus a 1% chance of posting a thought.
package scadr

import (
	"fmt"
	"math/rand"

	"piql/internal/engine"
	"piql/internal/value"
)

// Config sizes the dataset. The paper loads 60,000 users per storage
// node with 100 thoughts and 10 subscriptions each; the simulated
// default scales the per-node user count down (keeping the per-user
// shape) so the whole sweep fits in memory — per-operation cost is
// independent of total size, which is the property under test.
type Config struct {
	UsersPerNode     int
	ThoughtsPerUser  int
	SubsPerUser      int
	MaxSubscriptions int // the CARDINALITY LIMIT (paper experiment: 10)
	PageSize         int // thoughtstream page size (paper experiment: 10)
	Seed             int64
}

// DefaultConfig returns the scaled experiment configuration.
func DefaultConfig() Config {
	return Config{
		UsersPerNode:     1000,
		ThoughtsPerUser:  10,
		SubsPerUser:      10,
		MaxSubscriptions: 10,
		PageSize:         10,
		Seed:             7,
	}
}

// DDL returns the SCADr schema with the cardinality constraint sized to
// the configuration.
func DDL(cfg Config) []string {
	return []string{
		`CREATE TABLE users (
			username VARCHAR(20),
			password VARCHAR(20),
			hometown VARCHAR(30),
			PRIMARY KEY (username))`,
		fmt.Sprintf(`CREATE TABLE subscriptions (
			owner VARCHAR(20),
			target VARCHAR(20),
			approved BOOLEAN,
			PRIMARY KEY (owner, target),
			FOREIGN KEY (target) REFERENCES users,
			CARDINALITY LIMIT %d (owner))`, cfg.MaxSubscriptions),
		`CREATE TABLE thoughts (
			owner VARCHAR(20),
			timestamp INT,
			text VARCHAR(140),
			PRIMARY KEY (owner, timestamp))`,
	}
}

// The five SCADr queries (Section 8.1.2).
func queries(cfg Config) map[string]string {
	return map[string]string{
		"usersFollowed": `
			SELECT u.username, u.hometown FROM subscriptions s JOIN users u
			WHERE u.username = s.target AND s.owner = [1: me]`,
		"recentThoughts": fmt.Sprintf(`
			SELECT timestamp, text FROM thoughts WHERE owner = [1: me]
			ORDER BY timestamp DESC LIMIT %d`, cfg.PageSize),
		"thoughtstream": fmt.Sprintf(`
			SELECT thoughts.owner, thoughts.timestamp, thoughts.text
			FROM subscriptions s JOIN thoughts
			WHERE thoughts.owner = s.target AND s.owner = [1: me] AND s.approved = true
			ORDER BY thoughts.timestamp DESC LIMIT %d`, cfg.PageSize),
		"findUser": `
			SELECT username, hometown FROM users WHERE username = [1: who]`,
	}
}

// ThoughtstreamSQL returns the headline query for external use
// (EXPLAIN demos, prediction heatmaps).
func ThoughtstreamSQL(pageSize int) string {
	return fmt.Sprintf(`
		SELECT thoughts.owner, thoughts.timestamp, thoughts.text
		FROM subscriptions s JOIN thoughts
		WHERE thoughts.owner = s.target AND s.owner = [1: me] AND s.approved = true
		ORDER BY thoughts.timestamp DESC LIMIT %d`, pageSize)
}

// UserName formats the i-th user's name.
func UserName(i int) string { return fmt.Sprintf("u%07d", i) }

// Load populates the store with cfg-sized data for the given node
// count. It uses an immediate-mode session; call before starting the
// simulation clock.
func Load(s *engine.Session, cfg Config, nodes int) (users int, err error) {
	users = cfg.UsersPerNode * nodes
	r := rand.New(rand.NewSource(cfg.Seed))
	for u := 0; u < users; u++ {
		name := UserName(u)
		if err := s.Exec(`INSERT INTO users VALUES (?, ?, ?)`,
			value.Str(name), value.Str("hunter2"), value.Str("Berkeley")); err != nil {
			return 0, fmt.Errorf("scadr: load user: %w", err)
		}
		for i := 0; i < cfg.ThoughtsPerUser; i++ {
			ts := int64(1_000_000 + u*cfg.ThoughtsPerUser + i)
			if err := s.Exec(`INSERT INTO thoughts VALUES (?, ?, ?)`,
				value.Str(name), value.Int(ts),
				value.Str(fmt.Sprintf("thought %d from %s", i, name))); err != nil {
				return 0, fmt.Errorf("scadr: load thought: %w", err)
			}
		}
	}
	if users <= cfg.SubsPerUser {
		return users, nil // graph too small for the requested fan-out
	}
	for u := 0; u < users; u++ {
		name := UserName(u)
		added := 0
		for added < cfg.SubsPerUser {
			v := r.Intn(users)
			if v == u {
				continue
			}
			err := s.Exec(`INSERT INTO subscriptions VALUES (?, ?, ?)`,
				value.Str(name), value.Str(UserName(v)), value.Bool(r.Intn(10) != 0))
			if err != nil {
				// Random collision on (owner, target): retry another target.
				continue
			}
			added++
		}
	}
	return users, nil
}

// Worker executes SCADr home-page interactions for one client thread.
type Worker struct {
	cfg     Config
	session *engine.Session
	users   int
	rng     *rand.Rand
	ts      int64

	usersFollowed  *engine.Prepared
	recentThoughts *engine.Prepared
	thoughtstream  *engine.Prepared
	findUser       *engine.Prepared
}

// NewWorker prepares the benchmark queries for one client thread.
func NewWorker(s *engine.Session, cfg Config, users int, seed int64) (*Worker, error) {
	w := &Worker{
		cfg:     cfg,
		session: s,
		users:   users,
		rng:     rand.New(rand.NewSource(seed)),
		ts:      2_000_000 + seed*1_000_000,
	}
	qs := queries(cfg)
	var err error
	if w.usersFollowed, err = s.Prepare(qs["usersFollowed"]); err != nil {
		return nil, err
	}
	if w.recentThoughts, err = s.Prepare(qs["recentThoughts"]); err != nil {
		return nil, err
	}
	if w.thoughtstream, err = s.Prepare(qs["thoughtstream"]); err != nil {
		return nil, err
	}
	if w.findUser, err = s.Prepare(qs["findUser"]); err != nil {
		return nil, err
	}
	return w, nil
}

// Interaction renders one home page for a random user: all four read
// queries, plus (1% of the time) posting a new thought.
func (w *Worker) Interaction() error {
	me := value.Str(UserName(w.rng.Intn(w.users)))
	if _, err := w.findUser.Execute(w.session, me); err != nil {
		return err
	}
	if _, err := w.usersFollowed.Execute(w.session, me); err != nil {
		return err
	}
	if _, err := w.recentThoughts.Execute(w.session, me); err != nil {
		return err
	}
	if _, err := w.thoughtstream.Execute(w.session, me); err != nil {
		return err
	}
	if w.rng.Intn(100) == 0 {
		w.ts++
		if err := w.session.Exec(`INSERT INTO thoughts VALUES (?, ?, ?)`,
			me, value.Int(w.ts), value.Str("a fresh thought")); err != nil {
			return err
		}
	}
	return nil
}

// Thoughtstream runs just the headline query for a random user (used by
// per-query latency measurements).
func (w *Worker) Thoughtstream() error {
	me := value.Str(UserName(w.rng.Intn(w.users)))
	_, err := w.thoughtstream.Execute(w.session, me)
	return err
}

// Queries exposes the prepared statements keyed by the Table 1 row
// names, for per-query latency measurement.
func (w *Worker) Queries() map[string]*engine.Prepared {
	return map[string]*engine.Prepared{
		"Users Followed":  w.usersFollowed,
		"Recent Thoughts": w.recentThoughts,
		"Thoughtstream":   w.thoughtstream,
		"Find User":       w.findUser,
	}
}

// RandomUser picks a uniform user parameter.
func (w *Worker) RandomUser() value.Value {
	return value.Str(UserName(w.rng.Intn(w.users)))
}
