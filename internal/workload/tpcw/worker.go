package tpcw

import (
	"fmt"
	"math/rand"

	"piql/internal/engine"
	"piql/internal/value"
)

// Worker drives the TPC-W ordering mix for one client thread. Each
// Interaction executes one web interaction's queries (and, for the
// ordering mix's update-heavy interactions, its writes).
type Worker struct {
	session   *engine.Session
	cfg       Config
	customers int
	items     int
	rng       *rand.Rand

	prepared map[string]*engine.Prepared
	cartSeq  int64
	orderSeq int64
	workerID int64
	lastCart int64
	readOnly bool
}

// SetReadOnly restricts the mix to query-only interactions (the paper's
// measurements concentrate on query execution; the ordering mix's
// writes are kept by default).
func (w *Worker) SetReadOnly(ro bool) { w.readOnly = ro }

// NewWorker prepares all benchmark queries for one client thread.
func NewWorker(s *engine.Session, cfg Config, customers, items int, workerID int64) (*Worker, error) {
	w := &Worker{
		session:   s,
		cfg:       cfg,
		customers: customers,
		items:     items,
		rng:       rand.New(rand.NewSource(cfg.Seed ^ workerID*0x9E37)),
		workerID:  workerID,
		lastCart:  -1,
	}
	w.prepared = make(map[string]*engine.Prepared)
	for name, sql := range QuerySQL() {
		p, err := s.Prepare(sql)
		if err != nil {
			return nil, fmt.Errorf("tpcw: prepare %s: %w", name, err)
		}
		w.prepared[name] = p
	}
	return w, nil
}

// Queries exposes the prepared statements by Table 1 row name.
func (w *Worker) Queries() map[string]*engine.Prepared { return w.prepared }

// interaction kinds with ordering-mix weights (Best Seller and Admin
// interactions omitted as in the paper; weights renormalized from the
// TPC-W ordering mix).
type interaction struct {
	name   string
	weight int
	run    func(w *Worker) error
}

var mix = []interaction{
	{"home", 16, (*Worker).homeWI},
	{"newProducts", 5, (*Worker).newProductsWI},
	{"productDetail", 17, (*Worker).productDetailWI},
	{"searchByAuthor", 9, (*Worker).searchByAuthorWI},
	{"searchByTitle", 10, (*Worker).searchByTitleWI},
	{"orderDisplay", 9, (*Worker).orderDisplayWI},
	{"buyRequest", 24, (*Worker).buyRequestWI}, // cart writes + query
	{"buyConfirm", 10, (*Worker).buyConfirmWI}, // order writes
}

var totalWeight = func() int {
	t := 0
	for _, m := range mix {
		t += m.weight
	}
	return t
}()

// Interaction executes one web interaction drawn from the ordering mix
// (or, in read-only mode, from the query interactions only).
func (w *Worker) Interaction() error {
	ms, total := mix, totalWeight
	if w.readOnly {
		ms, total = readMix, readWeight
	}
	n := w.rng.Intn(total)
	for _, m := range ms {
		if n < m.weight {
			return m.run(w)
		}
		n -= m.weight
	}
	return nil
}

var readMix = mix[:6] // every interaction before the write-heavy pair

var readWeight = func() int {
	t := 0
	for _, m := range readMix {
		t += m.weight
	}
	return t
}()

func (w *Worker) randCustomer() value.Value {
	return value.Str(CustomerName(w.rng.Intn(w.customers)))
}

func (w *Worker) randItem() value.Value {
	return value.Int(int64(w.rng.Intn(w.items)))
}

func (w *Worker) homeWI() error {
	if _, err := w.prepared["Home WI"].Execute(w.session, w.randCustomer()); err != nil {
		return err
	}
	// The home page also shows promotional items: bounded PK lookups.
	for i := 0; i < 5; i++ {
		if _, err := w.prepared["Product Detail WI"].Execute(w.session, w.randItem()); err != nil {
			return err
		}
	}
	return nil
}

func (w *Worker) newProductsWI() error {
	subject := Subjects[w.rng.Intn(len(Subjects))]
	_, err := w.prepared["New Products WI"].Execute(w.session, value.Str(subject))
	return err
}

func (w *Worker) productDetailWI() error {
	_, err := w.prepared["Product Detail WI"].Execute(w.session, w.randItem())
	return err
}

func (w *Worker) searchByAuthorWI() error {
	// First resolve the author by name token, then list their items.
	name := nameWords[w.rng.Intn(len(nameWords))]
	res, err := w.prepared["Search By Author Names WI"].Execute(w.session, value.Str(name))
	if err != nil {
		return err
	}
	if len(res.Rows) == 0 {
		return nil
	}
	aid := res.Rows[w.rng.Intn(len(res.Rows))][0]
	_, err = w.prepared["Search By Author WI"].Execute(w.session, aid)
	return err
}

func (w *Worker) searchByTitleWI() error {
	word := titleWords[w.rng.Intn(len(titleWords))]
	_, err := w.prepared["Search By Title WI"].Execute(w.session, value.Str(word))
	return err
}

func (w *Worker) orderDisplayWI() error {
	uname := w.randCustomer()
	if _, err := w.prepared["Order Display WI Get Customer"].Execute(w.session, uname); err != nil {
		return err
	}
	res, err := w.prepared["Order Display WI Get Last Order"].Execute(w.session, uname)
	if err != nil {
		return err
	}
	if len(res.Rows) == 0 {
		return nil
	}
	_, err = w.prepared["Order Display WI Get OrderLines"].Execute(w.session, res.Rows[0][0])
	return err
}

// buyRequestWI adds items to a fresh shopping cart (writes) and renders
// the cart page (the Buy Request query).
func (w *Worker) buyRequestWI() error {
	w.cartSeq++
	cartID := w.workerID*1_000_000_000 + w.cartSeq
	lines := 1 + w.rng.Intn(3)
	for i := 0; i < lines; i++ {
		err := w.session.Exec(`INSERT INTO cart_line VALUES (?, ?, ?)`,
			value.Int(cartID), w.randItem(), value.Int(int64(1+w.rng.Intn(3))))
		if err != nil {
			// Duplicate item in cart: acceptable, skip.
			continue
		}
	}
	w.lastCart = cartID
	_, err := w.prepared["Buy Request WI"].Execute(w.session, value.Int(cartID))
	return err
}

// buyConfirmWI turns the worker's last cart into an order: reads the
// cart, inserts the order and its lines, clears the cart.
func (w *Worker) buyConfirmWI() error {
	if w.lastCart < 0 {
		return w.buyRequestWI()
	}
	cartID := w.lastCart
	res, err := w.prepared["Buy Request WI"].Execute(w.session, value.Int(cartID))
	if err != nil {
		return err
	}
	w.orderSeq++
	orderID := w.workerID*1_000_000_000 + w.orderSeq + 500_000_000
	uname := w.randCustomer()
	if err := w.session.Exec(`INSERT INTO orders VALUES (?, ?, ?, ?, ?)`,
		value.Int(orderID), uname,
		value.Int(int64(40_000_000+w.rng.Intn(1_000_000))),
		value.Int(int64(1000+w.rng.Intn(10000))),
		value.Str("pending")); err != nil {
		return err
	}
	for i, row := range res.Rows {
		if err := w.session.Exec(`INSERT INTO order_line VALUES (?, ?, ?, ?)`,
			value.Int(orderID), value.Int(int64(i)), row[0], row[1]); err != nil {
			return err
		}
	}
	for _, row := range res.Rows {
		if err := w.session.Exec(`DELETE FROM cart_line WHERE scl_sc_id = ? AND scl_i_id = ?`,
			value.Int(cartID), row[0]); err != nil {
			return err
		}
	}
	w.lastCart = -1
	return nil
}
