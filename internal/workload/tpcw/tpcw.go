// Package tpcw implements the customer-facing web interactions of the
// TPC-W online bookstore benchmark as PIQL queries (Section 8.1.1): the
// nine interactions of the paper's Table 1, driven by the update-heavy
// "ordering" mix. Best Seller and Admin Confirm are analytical and are
// omitted, exactly as in the paper.
package tpcw

import (
	"fmt"
	"math/rand"

	"piql/internal/engine"
	"piql/internal/value"
)

// Config sizes the dataset. TPC-W scales customers with emulated
// browsers (the paper loads 75 EBs' worth per node and keeps items
// fixed at 10,000); the simulated default scales the absolute counts
// down while preserving per-customer shape.
type Config struct {
	CustomersPerNode int
	Items            int // constant regardless of node count (paper: 10,000)
	OrdersPerCust    int
	MaxOrderLines    int // CARDINALITY LIMIT on order lines per order
	MaxCartLines     int // CARDINALITY LIMIT on lines per cart (TPC-W optional constraint)
	Seed             int64
}

// DefaultConfig returns the scaled experiment configuration.
func DefaultConfig() Config {
	return Config{
		CustomersPerNode: 600,
		Items:            10000,
		OrdersPerCust:    1,
		MaxOrderLines:    100,
		MaxCartLines:     100,
		Seed:             11,
	}
}

// Subjects are the TPC-W item subject categories.
var Subjects = []string{
	"ARTS", "BIOGRAPHIES", "BUSINESS", "CHILDREN", "COMPUTERS",
	"COOKING", "HEALTH", "HISTORY", "HOME", "HUMOR", "LITERATURE",
	"MYSTERY", "NONFICTION", "PARENTING", "POLITICS", "REFERENCE",
	"RELIGION", "ROMANCE", "SELFHELP", "SCIENCE", "SCIFI", "SPORTS",
	"YOUTH", "TRAVEL",
}

var titleWords = []string{
	"shadow", "river", "night", "garden", "empire", "secret", "stone",
	"winter", "crimson", "silent", "golden", "lost", "broken", "wild",
	"hidden", "burning", "frozen", "sacred", "forgotten", "electric",
}

var nameWords = []string{
	"smith", "johnson", "lee", "garcia", "chen", "patel", "brown",
	"miller", "davis", "wilson", "anderson", "taylor", "moore", "martin",
}

// DDL returns the TPC-W schema subset backing the nine interactions.
func DDL(cfg Config) []string {
	return []string{
		`CREATE TABLE customer (
			c_uname VARCHAR(20),
			c_passwd VARCHAR(20),
			c_fname VARCHAR(17),
			c_lname VARCHAR(17),
			c_email VARCHAR(50),
			c_discount INT,
			PRIMARY KEY (c_uname))`,
		`CREATE TABLE author (
			a_id INT,
			a_fname VARCHAR(20),
			a_lname VARCHAR(20),
			PRIMARY KEY (a_id))`,
		`CREATE TABLE item (
			i_id INT,
			i_title VARCHAR(60),
			i_a_id INT,
			i_pub_date INT,
			i_subject VARCHAR(60),
			i_desc VARCHAR(100),
			i_cost INT,
			i_stock INT,
			PRIMARY KEY (i_id),
			FOREIGN KEY (i_a_id) REFERENCES author)`,
		fmt.Sprintf(`CREATE TABLE orders (
			o_id INT,
			o_c_uname VARCHAR(20),
			o_date_time INT,
			o_total INT,
			o_status VARCHAR(16),
			PRIMARY KEY (o_id),
			FOREIGN KEY (o_c_uname) REFERENCES customer,
			CARDINALITY LIMIT %d (o_c_uname))`, 500),
		fmt.Sprintf(`CREATE TABLE order_line (
			ol_o_id INT,
			ol_seq INT,
			ol_i_id INT,
			ol_qty INT,
			PRIMARY KEY (ol_o_id, ol_seq),
			FOREIGN KEY (ol_o_id) REFERENCES orders,
			FOREIGN KEY (ol_i_id) REFERENCES item,
			CARDINALITY LIMIT %d (ol_o_id))`, cfg.MaxOrderLines),
		fmt.Sprintf(`CREATE TABLE cart_line (
			scl_sc_id INT,
			scl_i_id INT,
			scl_qty INT,
			PRIMARY KEY (scl_sc_id, scl_i_id),
			FOREIGN KEY (scl_i_id) REFERENCES item,
			CARDINALITY LIMIT %d (scl_sc_id))`, cfg.MaxCartLines),
	}
}

// CustomerName formats the i-th customer's user name.
func CustomerName(i int) string { return fmt.Sprintf("c%07d", i) }

// Load populates the store for the given node count, returning the
// loaded sizes.
func Load(s *engine.Session, cfg Config, nodes int) (customers, items int, err error) {
	customers = cfg.CustomersPerNode * nodes
	items = cfg.Items
	r := rand.New(rand.NewSource(cfg.Seed))
	authors := items/10 + 1

	for a := 0; a < authors; a++ {
		if err := s.Exec(`INSERT INTO author VALUES (?, ?, ?)`,
			value.Int(int64(a)),
			value.Str(nameWords[r.Intn(len(nameWords))]),
			value.Str(nameWords[r.Intn(len(nameWords))])); err != nil {
			return 0, 0, fmt.Errorf("tpcw: load author: %w", err)
		}
	}
	for i := 0; i < items; i++ {
		title := fmt.Sprintf("%s %s %s #%d",
			titleWords[r.Intn(len(titleWords))],
			titleWords[r.Intn(len(titleWords))],
			titleWords[r.Intn(len(titleWords))], i)
		if err := s.Exec(`INSERT INTO item VALUES (?, ?, ?, ?, ?, ?, ?, ?)`,
			value.Int(int64(i)),
			value.Str(title),
			value.Int(int64(r.Intn(authors))),
			value.Int(int64(20000000+r.Intn(100000))),
			value.Str(Subjects[r.Intn(len(Subjects))]),
			value.Str("a fine book"),
			value.Int(int64(500+r.Intn(5000))),
			value.Int(int64(r.Intn(1000)))); err != nil {
			return 0, 0, fmt.Errorf("tpcw: load item: %w", err)
		}
	}
	oid := int64(0)
	for c := 0; c < customers; c++ {
		uname := CustomerName(c)
		if err := s.Exec(`INSERT INTO customer VALUES (?, ?, ?, ?, ?, ?)`,
			value.Str(uname), value.Str("pw"),
			value.Str(nameWords[r.Intn(len(nameWords))]),
			value.Str(nameWords[r.Intn(len(nameWords))]),
			value.Str(uname+"@example.com"),
			value.Int(int64(r.Intn(50)))); err != nil {
			return 0, 0, fmt.Errorf("tpcw: load customer: %w", err)
		}
		for o := 0; o < cfg.OrdersPerCust; o++ {
			oid++
			if err := s.Exec(`INSERT INTO orders VALUES (?, ?, ?, ?, ?)`,
				value.Int(oid), value.Str(uname),
				value.Int(int64(30000000+r.Intn(100000))),
				value.Int(int64(1000+r.Intn(20000))),
				value.Str("shipped")); err != nil {
				return 0, 0, fmt.Errorf("tpcw: load order: %w", err)
			}
			lines := 1 + r.Intn(4)
			for l := 0; l < lines; l++ {
				if err := s.Exec(`INSERT INTO order_line VALUES (?, ?, ?, ?)`,
					value.Int(oid), value.Int(int64(l)),
					value.Int(int64(r.Intn(items))), value.Int(int64(1+r.Intn(3)))); err != nil {
					return 0, 0, fmt.Errorf("tpcw: load order line: %w", err)
				}
			}
		}
	}
	return customers, items, nil
}

// QuerySQL returns the SQL for every Table 1 interaction, keyed by the
// paper's row names.
func QuerySQL() map[string]string {
	return map[string]string{
		"Home WI": `
			SELECT c_uname, c_fname, c_lname, c_discount FROM customer WHERE c_uname = [1: uname]`,
		"New Products WI": `
			SELECT i_id, i_title, i_pub_date, a_fname, a_lname
			FROM item JOIN author
			WHERE i_a_id = a_id AND i_subject CONTAINS [1: subject]
			ORDER BY i_pub_date DESC LIMIT 50`,
		"Product Detail WI": `
			SELECT i_id, i_title, i_desc, i_cost, i_stock, a_fname, a_lname
			FROM item JOIN author
			WHERE i_a_id = a_id AND i_id = [1: itemId]`,
		"Search By Author WI": `
			SELECT i_id, i_title, i_cost FROM item
			WHERE i_a_id = [1: authorId]
			ORDER BY i_title LIMIT 50`,
		"Search By Author Names WI": `
			SELECT a_id, a_fname, a_lname FROM author
			WHERE a_lname CONTAINS [1: lastName] LIMIT 20`,
		"Search By Title WI": `
			SELECT i_title, i_id, a_fname, a_lname
			FROM item JOIN author
			WHERE i_a_id = a_id AND i_title CONTAINS [1: titleWord]
			ORDER BY i_title LIMIT 50`,
		"Order Display WI Get Customer": `
			SELECT c_uname, c_fname, c_lname, c_email FROM customer WHERE c_uname = [1: uname]`,
		"Order Display WI Get Last Order": `
			SELECT o_id, o_date_time, o_total, o_status FROM orders
			WHERE o_c_uname = [1: uname]
			ORDER BY o_date_time DESC LIMIT 1`,
		"Order Display WI Get OrderLines": `
			SELECT ol_seq, ol_i_id, ol_qty FROM order_line WHERE ol_o_id = [1: orderId]`,
		"Buy Request WI": `
			SELECT scl_i_id, scl_qty, i_title, i_cost
			FROM cart_line scl JOIN item i
			WHERE i.i_id = scl.scl_i_id AND scl.scl_sc_id = [1: cartId]`,
	}
}
