package tpcw

import (
	"testing"

	"piql/internal/engine"
	"piql/internal/kvstore"
	"piql/internal/value"
)

type valueT = value.Value

var valueStr = value.Str

func testEngine(t *testing.T) (*engine.Session, Config) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.CustomersPerNode = 40
	cfg.Items = 300
	cluster := kvstore.New(kvstore.Config{Nodes: 4, ReplicationFactor: 2, Seed: 2}, nil)
	eng := engine.New(cluster)
	s := eng.Session(nil)
	for _, ddl := range DDL(cfg) {
		if err := s.Exec(ddl); err != nil {
			t.Fatalf("ddl: %v", err)
		}
	}
	return s, cfg
}

// TestAllTable1QueriesCompile verifies every interaction of the paper's
// Table 1 compiles to a bounded plan against the TPC-W schema.
func TestAllTable1QueriesCompile(t *testing.T) {
	s, _ := testEngine(t)
	for name, sql := range QuerySQL() {
		q, err := s.Prepare(sql)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if q.Plan().OpBound() <= 0 {
			t.Errorf("%s: unbounded", name)
		}
	}
}

func TestOrderingMixRuns(t *testing.T) {
	s, cfg := testEngine(t)
	customers, items, err := Load(s, cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if customers != 80 || items != 300 {
		t.Fatalf("loaded %d customers, %d items", customers, items)
	}
	w, err := NewWorker(s, cfg, customers, items, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Run enough interactions to hit every mix entry, including the
	// write-heavy ones.
	for i := 0; i < 120; i++ {
		if err := w.Interaction(); err != nil {
			t.Fatalf("interaction %d: %v", i, err)
		}
	}
	// Read-only mode never writes; run it and confirm order count
	// doesn't change.
	before, err := s.Query(`SELECT COUNT(*) FROM orders WHERE o_c_uname = ?`,
		strValue(CustomerName(0)))
	if err != nil {
		t.Fatal(err)
	}
	w.SetReadOnly(true)
	for i := 0; i < 40; i++ {
		if err := w.Interaction(); err != nil {
			t.Fatalf("read-only interaction %d: %v", i, err)
		}
	}
	after, _ := s.Query(`SELECT COUNT(*) FROM orders WHERE o_c_uname = ?`,
		strValue(CustomerName(0)))
	if before.Rows[0][0].I != after.Rows[0][0].I {
		t.Error("read-only mix wrote orders")
	}
}

func strValue(s string) valueT { return valueStr(s) }
