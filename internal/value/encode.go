package value

import (
	"encoding/binary"
	"fmt"
	"math"
)

// EncodeRow serializes a row into a compact binary record payload. The
// format is not order-preserving (see internal/codec for key encoding);
// it is the value format stored under a key/value-store key.
//
// Layout: uvarint(count) then per value: one type byte followed by the
// payload (bool: 1 byte; int: varint; float: 8 bytes; string/bytes:
// uvarint length + raw bytes).
func EncodeRow(r Row) []byte {
	buf := make([]byte, 0, 16+r.Size())
	buf = binary.AppendUvarint(buf, uint64(len(r)))
	for _, v := range r {
		buf = append(buf, byte(v.T))
		switch v.T {
		case TypeNull:
		case TypeBool:
			if v.B {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		case TypeInt:
			buf = binary.AppendVarint(buf, v.I)
		case TypeFloat:
			buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v.F))
		case TypeString:
			buf = binary.AppendUvarint(buf, uint64(len(v.S)))
			buf = append(buf, v.S...)
		case TypeBytes:
			buf = binary.AppendUvarint(buf, uint64(len(v.R)))
			buf = append(buf, v.R...)
		}
	}
	return buf
}

// DecodeRow parses a record payload produced by EncodeRow.
func DecodeRow(b []byte) (Row, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("value: corrupt row header")
	}
	if count > uint64(len(b)-n)+1 {
		return nil, fmt.Errorf("value: row count %d exceeds payload", count)
	}
	row := make(Row, count)
	if _, err := DecodeRowInto(row, b); err != nil {
		return nil, err
	}
	return row, nil
}

// DecodeRowInto decodes a record payload produced by EncodeRow directly
// into dst[0:count], returning the number of values written. It is the
// allocation-lean path used by the executor to decode records straight
// into a combined row instead of allocating a row and copying. dst must
// be at least as wide as the stored row.
func DecodeRowInto(dst Row, b []byte) (int, error) {
	count, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, fmt.Errorf("value: corrupt row header")
	}
	b = b[n:]
	if count > uint64(len(b))+1 {
		return 0, fmt.Errorf("value: row count %d exceeds payload", count)
	}
	if count > uint64(len(dst)) {
		return 0, fmt.Errorf("value: row has %d values, destination holds %d", count, len(dst))
	}
	for i := 0; i < int(count); i++ {
		if len(b) == 0 {
			return 0, fmt.Errorf("value: truncated row at value %d", i)
		}
		t := Type(b[0])
		b = b[1:]
		switch t {
		case TypeNull:
			dst[i] = Null()
		case TypeBool:
			if len(b) < 1 {
				return 0, fmt.Errorf("value: truncated bool")
			}
			dst[i] = Bool(b[0] != 0)
			b = b[1:]
		case TypeInt:
			x, n := binary.Varint(b)
			if n <= 0 {
				return 0, fmt.Errorf("value: corrupt int")
			}
			dst[i] = Int(x)
			b = b[n:]
		case TypeFloat:
			if len(b) < 8 {
				return 0, fmt.Errorf("value: truncated float")
			}
			dst[i] = Float(math.Float64frombits(binary.BigEndian.Uint64(b)))
			b = b[8:]
		case TypeString:
			l, n := binary.Uvarint(b)
			if n <= 0 || uint64(len(b)-n) < l {
				return 0, fmt.Errorf("value: corrupt string")
			}
			dst[i] = Str(string(b[n : n+int(l)]))
			b = b[n+int(l):]
		case TypeBytes:
			l, n := binary.Uvarint(b)
			if n <= 0 || uint64(len(b)-n) < l {
				return 0, fmt.Errorf("value: corrupt bytes")
			}
			raw := make([]byte, l)
			copy(raw, b[n:n+int(l)])
			dst[i] = Bytes(raw)
			b = b[n+int(l):]
		default:
			return 0, fmt.Errorf("value: unknown type tag %d", t)
		}
	}
	if len(b) != 0 {
		return 0, fmt.Errorf("value: %d trailing bytes after row", len(b))
	}
	return int(count), nil
}
