package value

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	cases := map[Type]string{
		TypeNull:   "NULL",
		TypeBool:   "BOOLEAN",
		TypeInt:    "INT",
		TypeFloat:  "DOUBLE",
		TypeString: "VARCHAR",
		TypeBytes:  "BLOB",
	}
	for typ, want := range cases {
		if got := typ.String(); got != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, got, want)
		}
	}
	if got := Type(99).String(); got != "Type(99)" {
		t.Errorf("unknown type renders as %q", got)
	}
}

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value is not NULL")
	}
	if !Equal(v, Null()) {
		t.Fatal("zero Value != Null()")
	}
}

func TestCompareWithinTypes(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Null(), Null(), 0},
		{Bool(false), Bool(true), -1},
		{Bool(true), Bool(true), 0},
		{Int(-5), Int(3), -1},
		{Int(3), Int(3), 0},
		{Int(7), Int(3), 1},
		{Float(1.5), Float(2.5), -1},
		{Float(math.Inf(-1)), Float(-1e308), -1},
		{Float(math.NaN()), Float(math.Inf(-1)), -1},
		{Float(math.NaN()), Float(math.NaN()), 0},
		{Str("a"), Str("ab"), -1},
		{Str("b"), Str("ab"), 1},
		{Str(""), Str(""), 0},
		{Bytes([]byte{1}), Bytes([]byte{1, 0}), -1},
		{Bytes(nil), Bytes(nil), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Compare(c.b, c.a); got != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d (antisymmetry)", c.b, c.a, got, -c.want)
		}
	}
}

func TestCompareAcrossTypes(t *testing.T) {
	ordered := []Value{Null(), Bool(true), Int(math.MaxInt64), Float(math.Inf(-1)), Str(""), Bytes(nil)}
	for i := range ordered {
		for j := range ordered {
			got := Compare(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL":    Null(),
		"true":    Bool(true),
		"false":   Bool(false),
		"42":      Int(42),
		"1.5":     Float(1.5),
		`"hi"`:    Str("hi"),
		"x'0102'": Bytes([]byte{1, 2}),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%#v.String() = %q, want %q", v, got, want)
		}
	}
}

func TestRowCloneIsDeep(t *testing.T) {
	raw := []byte{1, 2, 3}
	r := Row{Str("a"), Bytes(raw)}
	c := r.Clone()
	raw[0] = 99
	if c[1].R[0] != 1 {
		t.Fatal("Clone shares bytes payload with original")
	}
	if CompareRows(r[:1], c[:1]) != 0 {
		t.Fatal("Clone changed scalar values")
	}
}

func TestCompareRowsPrefix(t *testing.T) {
	a := Row{Int(1), Str("x")}
	b := Row{Int(1)}
	if got := CompareRows(a, b); got != 1 {
		t.Fatalf("longer row with equal prefix should sort after, got %d", got)
	}
	if got := CompareRows(b, a); got != -1 {
		t.Fatalf("prefix should sort before, got %d", got)
	}
	if got := CompareRows(Row{Int(2)}, Row{Int(1), Str("z")}); got != 1 {
		t.Fatalf("first component dominates, got %d", got)
	}
}

func TestSizePositive(t *testing.T) {
	vals := []Value{Null(), Bool(true), Int(1), Float(1), Str("hello"), Bytes(make([]byte, 10))}
	total := 0
	for _, v := range vals {
		if v.Size() <= 0 {
			t.Errorf("%v.Size() = %d, want > 0", v, v.Size())
		}
		total += v.Size()
	}
	if got := (Row(vals)).Size(); got != total {
		t.Errorf("Row.Size() = %d, want %d", got, total)
	}
}

// randomValue draws an arbitrary Value for property tests.
func randomValue(r *rand.Rand) Value {
	switch r.Intn(6) {
	case 0:
		return Null()
	case 1:
		return Bool(r.Intn(2) == 0)
	case 2:
		return Int(r.Int63() - r.Int63())
	case 3:
		return Float(math.Float64frombits(r.Uint64()))
	case 4:
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Intn(256))
		}
		return Str(string(b))
	default:
		n := r.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Intn(256))
		}
		return Bytes(b)
	}
}

// RandomRow draws an arbitrary Row; exported within the package for reuse
// by encode_test.go.
func randomRow(r *rand.Rand, maxLen int) Row {
	n := r.Intn(maxLen + 1)
	row := make(Row, n)
	for i := range row {
		row[i] = randomValue(r)
	}
	return row
}

func TestCompareIsTotalOrderProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000}
	// Antisymmetry and consistency with Equal.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomValue(r), randomValue(r)
		c1, c2 := Compare(a, b), Compare(b, a)
		if c1 != -c2 {
			return false
		}
		return (c1 == 0) == Equal(a, b)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	// Transitivity on triples.
	g := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		vs := []Value{randomValue(r), randomValue(r), randomValue(r)}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				for k := 0; k < 3; k++ {
					if Compare(vs[i], vs[j]) <= 0 && Compare(vs[j], vs[k]) <= 0 {
						if Compare(vs[i], vs[k]) > 0 {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(g, cfg); err != nil {
		t.Error(err)
	}
}
