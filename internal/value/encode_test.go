package value

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRowRoundTrip(t *testing.T) {
	rows := []Row{
		{},
		{Null()},
		{Bool(true), Bool(false)},
		{Int(0), Int(-1), Int(math.MaxInt64), Int(math.MinInt64)},
		{Float(0), Float(-0.0), Float(math.Inf(1)), Float(1e-300)},
		{Str(""), Str("hello"), Str("héllo \x00 world")},
		{Bytes(nil), Bytes([]byte{0, 255, 1})},
		{Int(42), Str("mixed"), Bool(true), Float(3.14), Null()},
	}
	for _, r := range rows {
		enc := EncodeRow(r)
		dec, err := DecodeRow(enc)
		if err != nil {
			t.Fatalf("DecodeRow(%v): %v", r, err)
		}
		if CompareRows(r, dec) != 0 {
			t.Fatalf("round trip mismatch: %v -> %v", r, dec)
		}
	}
}

func TestEncodeRowNaN(t *testing.T) {
	r := Row{Float(math.NaN())}
	dec, err := DecodeRow(EncodeRow(r))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(dec[0].F) {
		t.Fatalf("NaN did not survive round trip: %v", dec[0])
	}
}

func TestDecodeRowErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":              {},
		"huge count":         {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
		"truncated value":    {1},
		"unknown tag":        {1, 0x63},
		"truncated bool":     {1, byte(TypeBool)},
		"truncated float":    {1, byte(TypeFloat), 1, 2},
		"bad string length":  {1, byte(TypeString), 0x80},
		"short string":       {1, byte(TypeString), 5, 'a'},
		"short bytes":        {1, byte(TypeBytes), 5, 'a'},
		"trailing bytes":     append(EncodeRow(Row{Int(1)}), 0xAA),
		"count over payload": {200},
	}
	for name, b := range cases {
		if _, err := DecodeRow(b); err == nil {
			t.Errorf("%s: DecodeRow accepted corrupt input % x", name, b)
		}
	}
}

func TestDecodeRowInto(t *testing.T) {
	src := Row{Int(42), Str("mixed"), Bool(true), Float(3.14), Null(), Bytes([]byte{7, 0, 9})}
	enc := EncodeRow(src)

	// Exact-width destination.
	dst := make(Row, len(src))
	n, err := DecodeRowInto(dst, enc)
	if err != nil || n != len(src) {
		t.Fatalf("DecodeRowInto = %d, %v", n, err)
	}
	if CompareRows(src, dst) != 0 {
		t.Fatalf("decode mismatch: %v -> %v", src, dst)
	}

	// Wider destination: the tail must stay untouched.
	wide := make(Row, len(src)+3)
	sentinel := Str("sentinel")
	for i := len(src); i < len(wide); i++ {
		wide[i] = sentinel
	}
	if n, err := DecodeRowInto(wide, enc); err != nil || n != len(src) {
		t.Fatalf("wide DecodeRowInto = %d, %v", n, err)
	}
	if CompareRows(src, wide[:len(src)]) != 0 {
		t.Fatalf("wide decode mismatch: %v", wide[:len(src)])
	}
	for i := len(src); i < len(wide); i++ {
		if !Equal(wide[i], sentinel) {
			t.Fatalf("tail position %d clobbered: %v", i, wide[i])
		}
	}

	// Too-narrow destination must error, not truncate or panic.
	if _, err := DecodeRowInto(make(Row, len(src)-1), enc); err == nil {
		t.Fatal("narrow destination accepted")
	}

	// Corrupt inputs reported through the same validation as DecodeRow.
	for name, b := range map[string][]byte{
		"empty":           {},
		"trailing":        append(EncodeRow(Row{Int(1)}), 0xAA),
		"truncated value": {2, byte(TypeInt)},
	} {
		if _, err := DecodeRowInto(make(Row, 8), b); err == nil {
			t.Errorf("%s: DecodeRowInto accepted corrupt input", name)
		}
	}
}

func TestEncodeDecodeRowProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		row := randomRow(r, 8)
		dec, err := DecodeRow(EncodeRow(row))
		if err != nil {
			return false
		}
		return CompareRows(row, dec) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
