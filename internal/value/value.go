// Package value defines the dynamically typed values and rows that flow
// through the PIQL engine: table cells, query parameters, and key parts.
//
// Values are small immutable structs. The zero Value is NULL. Ordering
// follows key-encoding order (see internal/codec): NULL < bool < int <
// float < string < bytes, with natural ordering within a type.
package value

import (
	"fmt"
	"math"
	"strings"
)

// Type enumerates the runtime types a Value can hold.
type Type uint8

// Supported value types. The numeric order of the constants defines the
// cross-type sort order used by Compare and by the key codec.
const (
	TypeNull Type = iota
	TypeBool
	TypeInt
	TypeFloat
	TypeString
	TypeBytes
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeBool:
		return "BOOLEAN"
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "DOUBLE"
	case TypeString:
		return "VARCHAR"
	case TypeBytes:
		return "BLOB"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Value is a single dynamically typed datum. Exactly one payload field is
// meaningful, selected by T. The zero value is NULL.
type Value struct {
	T Type
	B bool
	I int64
	F float64
	S string
	R []byte // raw bytes payload for TypeBytes
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{T: TypeBool, B: b} }

// Int returns a 64-bit integer value.
func Int(i int64) Value { return Value{T: TypeInt, I: i} }

// Float returns a 64-bit float value.
func Float(f float64) Value { return Value{T: TypeFloat, F: f} }

// Str returns a string value.
func Str(s string) Value { return Value{T: TypeString, S: s} }

// Bytes returns a raw bytes value. The slice is retained, not copied.
func Bytes(b []byte) Value { return Value{T: TypeBytes, R: b} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.T == TypeNull }

// Truthy reports whether v is the boolean true. Non-boolean values are
// never truthy; predicates in PIQL are strictly typed.
func (v Value) Truthy() bool { return v.T == TypeBool && v.B }

// String renders the value for plans, logs, and the shell.
func (v Value) String() string {
	switch v.T {
	case TypeNull:
		return "NULL"
	case TypeBool:
		if v.B {
			return "true"
		}
		return "false"
	case TypeInt:
		return fmt.Sprintf("%d", v.I)
	case TypeFloat:
		return fmt.Sprintf("%g", v.F)
	case TypeString:
		return fmt.Sprintf("%q", v.S)
	case TypeBytes:
		return fmt.Sprintf("x'%x'", v.R)
	default:
		return fmt.Sprintf("Value(%d)", uint8(v.T))
	}
}

// Compare orders a relative to b: -1, 0, or +1. Values of different types
// order by their Type constants; NULL sorts before everything.
func Compare(a, b Value) int {
	if a.T != b.T {
		if a.T < b.T {
			return -1
		}
		return 1
	}
	switch a.T {
	case TypeNull:
		return 0
	case TypeBool:
		switch {
		case a.B == b.B:
			return 0
		case !a.B:
			return -1
		default:
			return 1
		}
	case TypeInt:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	case TypeFloat:
		return compareFloat(a.F, b.F)
	case TypeString:
		return strings.Compare(a.S, b.S)
	case TypeBytes:
		return compareBytes(a.R, b.R)
	default:
		return 0
	}
}

func compareFloat(a, b float64) int {
	// NaN sorts before all other floats so ordering stays total.
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// Equal reports whether a and b are the same value.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Size returns the approximate in-memory/wire size of the value in bytes.
// The SLO prediction model uses this as the per-tuple size β.
func (v Value) Size() int {
	switch v.T {
	case TypeNull:
		return 1
	case TypeBool:
		return 2
	case TypeInt, TypeFloat:
		return 9
	case TypeString:
		return 1 + len(v.S)
	case TypeBytes:
		return 1 + len(v.R)
	default:
		return 1
	}
}

// Row is an ordered tuple of values.
type Row []Value

// Size returns the approximate wire size of the row in bytes.
func (r Row) Size() int {
	n := 0
	for _, v := range r {
		n += v.Size()
	}
	return n
}

// Clone returns a deep copy of the row (bytes payloads included).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	for i, v := range out {
		if v.T == TypeBytes && v.R != nil {
			b := make([]byte, len(v.R))
			copy(b, v.R)
			out[i].R = b
		}
	}
	return out
}

// String renders the row as a parenthesized tuple.
func (r Row) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range r {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// CompareRows orders two rows lexicographically.
func CompareRows(a, b Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}
