package engine

import (
	"errors"
	"testing"

	"piql/internal/analyze"
	"piql/internal/core"
	"piql/internal/kvstore"
	"piql/internal/value"
)

// newAdmissionFixture builds an engine with the SCADr-style schema and
// a handful of rows: one celebrity with fans (the unbounded query's
// worst case) and ordinary users.
func newAdmissionFixture(t *testing.T) (*Engine, *Session) {
	t.Helper()
	cluster := kvstore.New(kvstore.Config{Nodes: 4, ReplicationFactor: 2, Seed: 7}, nil)
	eng := New(cluster)
	s := eng.Session(nil)
	for _, ddl := range []string{
		`CREATE TABLE users (username VARCHAR(20), bio VARCHAR(140), PRIMARY KEY (username))`,
		`CREATE TABLE subscriptions (owner VARCHAR(20), target VARCHAR(20), approved BOOLEAN,
			PRIMARY KEY (owner, target),
			FOREIGN KEY (target) REFERENCES users,
			CARDINALITY LIMIT 100 (owner))`,
	} {
		if err := s.Exec(ddl); err != nil {
			t.Fatalf("ddl: %v", err)
		}
	}
	for _, u := range []string{"celeb", "ann", "bob"} {
		if err := s.Exec(`INSERT INTO users VALUES (?, 'hi')`, value.Str(u)); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	for _, owner := range []string{"ann", "bob"} {
		if err := s.Exec(`INSERT INTO subscriptions VALUES (?, 'celeb', true)`, value.Str(owner)); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	return eng, s
}

const subscriberSQL = `SELECT * FROM subscriptions WHERE target = [1: t]`

func TestPrepareAttachesBound(t *testing.T) {
	_, s := newAdmissionFixture(t)
	p, err := s.Prepare(`SELECT * FROM users WHERE username = [1: u]`)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	b := p.Bound()
	if b == nil || !b.Bounded {
		t.Fatalf("prepared plan carries bound %+v, want a bounded analysis", b)
	}
	if b.Ops != p.Plan().OpBound() {
		t.Errorf("bound %d != compiler bound %d", b.Ops, p.Plan().OpBound())
	}
}

func TestPrepareCostBasedRunsWithoutPolicy(t *testing.T) {
	_, s := newAdmissionFixture(t)
	p, err := s.PrepareCostBased(subscriberSQL, core.Stats{})
	if err != nil {
		t.Fatalf("cost-based prepare: %v", err)
	}
	if p.Bound().Bounded {
		t.Fatalf("subscriber query should analyze unbounded:\n%s", p.Plan().Explain())
	}
	res, err := p.Execute(s, value.Str("celeb"))
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2 subscribers", len(res.Rows))
	}
}

func TestAdmissionRefusesUnbounded(t *testing.T) {
	eng, s := newAdmissionFixture(t)

	// Cache the unbounded plan before enforcement: re-admission on the
	// cache hit must still refuse it afterwards.
	if _, err := s.PrepareCostBased(subscriberSQL, core.Stats{}); err != nil {
		t.Fatalf("pre-enforcement prepare: %v", err)
	}

	eng.SetAdmission(&analyze.Policy{Enforce: true})
	_, err := s.PrepareCostBased(subscriberSQL, core.Stats{})
	var eu *analyze.ErrUnbounded
	if !errors.As(err, &eu) {
		t.Fatalf("got %v, want *analyze.ErrUnbounded", err)
	}
	if len(eu.Chain) == 0 || len(eu.Suggestions) == 0 {
		t.Errorf("refusal lacks context: %+v", eu)
	}
	// Bounded traffic is unaffected by enforcement.
	if _, err := s.Prepare(`SELECT * FROM subscriptions WHERE owner = [1: o]`); err != nil {
		t.Errorf("bounded query refused: %v", err)
	}
	// Dropping the policy re-admits the cached plan.
	eng.SetAdmission(nil)
	if _, err := s.PrepareCostBased(subscriberSQL, core.Stats{}); err != nil {
		t.Errorf("prepare after policy removal: %v", err)
	}
}

func TestAdmissionOpBudget(t *testing.T) {
	eng, s := newAdmissionFixture(t)
	eng.SetAdmission(&analyze.Policy{Enforce: true, MaxOps: 3})

	// owner equality: 1 range read — admitted.
	if _, err := s.Prepare(`SELECT * FROM subscriptions WHERE owner = [1: o]`); err != nil {
		t.Fatalf("1-op query refused under MaxOps=3: %v", err)
	}
	// IN list over 5 primary keys: 5 point gets — refused, not cached.
	over := `SELECT * FROM users WHERE username IN ('a', 'b', 'c', 'd', 'e')`
	_, err := s.Prepare(over)
	var eo *analyze.ErrOverSLO
	if !errors.As(err, &eo) {
		t.Fatalf("got %v, want *analyze.ErrOverSLO", err)
	}
	if eo.Ops != 5 || eo.MaxOps != 3 {
		t.Errorf("refusal = %+v, want ops 5 over budget 3", eo)
	}
	eng.SetAdmission(nil)
	if _, err := s.Prepare(over); err != nil {
		t.Errorf("refused plan was cached, or recompile failed: %v", err)
	}
}
