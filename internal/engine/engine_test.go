package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"piql/internal/exec"
	"piql/internal/index"
	"piql/internal/kvstore"
	"piql/internal/value"
)

func newTestEngine(t *testing.T, nodes int) (*Engine, *Session) {
	t.Helper()
	cluster := kvstore.New(kvstore.Config{Nodes: nodes, ReplicationFactor: 2, Seed: 42}, nil)
	eng := New(cluster)
	s := eng.Session(nil)
	for _, ddl := range []string{
		`CREATE TABLE users (
			username VARCHAR(20), password VARCHAR(20), hometown VARCHAR(30),
			PRIMARY KEY (username))`,
		`CREATE TABLE subscriptions (
			owner VARCHAR(20), target VARCHAR(20), approved BOOLEAN,
			PRIMARY KEY (owner, target),
			FOREIGN KEY (target) REFERENCES users,
			CARDINALITY LIMIT 100 (owner))`,
		`CREATE TABLE thoughts (
			owner VARCHAR(20), timestamp INT, text VARCHAR(140),
			PRIMARY KEY (owner, timestamp),
			CARDINALITY LIMIT 200 (owner))`,
	} {
		if err := s.Exec(ddl); err != nil {
			t.Fatalf("DDL: %v", err)
		}
	}
	return eng, s
}

// loadSCADr populates a small deterministic social graph.
func loadSCADr(t *testing.T, s *Session, users, thoughtsPer, subsPer int) {
	t.Helper()
	r := rand.New(rand.NewSource(7))
	for u := 0; u < users; u++ {
		name := fmt.Sprintf("user%03d", u)
		if err := s.Exec(`INSERT INTO users VALUES (?, ?, ?)`,
			value.Str(name), value.Str("pw"), value.Str("Berkeley")); err != nil {
			t.Fatalf("insert user: %v", err)
		}
		for i := 0; i < thoughtsPer; i++ {
			if err := s.Exec(`INSERT INTO thoughts VALUES (?, ?, ?)`,
				value.Str(name), value.Int(int64(1000+i)),
				value.Str(fmt.Sprintf("thought %d of %s", i, name))); err != nil {
				t.Fatalf("insert thought: %v", err)
			}
		}
	}
	for u := 0; u < users; u++ {
		name := fmt.Sprintf("user%03d", u)
		seen := map[int]bool{u: true}
		for len(seen) <= subsPer && len(seen) < users {
			v := r.Intn(users)
			if seen[v] {
				continue
			}
			seen[v] = true
			if err := s.Exec(`INSERT INTO subscriptions VALUES (?, ?, ?)`,
				value.Str(name), value.Str(fmt.Sprintf("user%03d", v)), value.Bool(v%5 != 0)); err != nil {
				t.Fatalf("insert subscription: %v", err)
			}
		}
	}
}

func TestFindUser(t *testing.T) {
	_, s := newTestEngine(t, 4)
	loadSCADr(t, s, 20, 3, 4)
	res, err := s.Query(`SELECT username, hometown FROM users WHERE username = ?`, value.Str("user007"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].S != "user007" || res.Rows[0][1].S != "Berkeley" {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Names[1] != "hometown" {
		t.Fatalf("names = %v", res.Names)
	}
	// Missing user: empty result, not an error.
	res, err = s.Query(`SELECT username, hometown FROM users WHERE username = ?`, value.Str("nobody"))
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("rows = %v, err = %v", res.Rows, err)
	}
}

func TestRecentThoughtsOrderAndLimit(t *testing.T) {
	_, s := newTestEngine(t, 4)
	loadSCADr(t, s, 10, 25, 3)
	res, err := s.Query(`SELECT timestamp, text FROM thoughts WHERE owner = ? ORDER BY timestamp DESC LIMIT 10`,
		value.Str("user003"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for i, row := range res.Rows {
		want := int64(1024 - i)
		if row[0].I != want {
			t.Fatalf("row %d timestamp = %d, want %d", i, row[0].I, want)
		}
	}
}

// TestThoughtstreamMatchesReference executes the headline query and
// compares against a brute-force reference over the same data.
func TestThoughtstreamMatchesReference(t *testing.T) {
	_, s := newTestEngine(t, 5)
	const users, thoughtsPer, subsPer = 30, 15, 8
	loadSCADr(t, s, users, thoughtsPer, subsPer)

	q, err := s.Prepare(`
		SELECT thoughts.owner, thoughts.timestamp, thoughts.text
		FROM subscriptions s JOIN thoughts
		WHERE thoughts.owner = s.target AND s.owner = ? AND s.approved = true
		ORDER BY thoughts.timestamp DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}

	// Brute-force reference from raw store contents.
	reference := func(me string) [][2]string {
		subs, _ := s.Query(`SELECT target, approved FROM subscriptions WHERE owner = ?`, value.Str(me))
		type tr struct {
			owner string
			ts    int64
			text  string
		}
		var all []tr
		for _, sub := range subs.Rows {
			if !sub[1].Truthy() {
				continue
			}
			th, _ := s.Query(`SELECT owner, timestamp, text FROM thoughts WHERE owner = ? ORDER BY timestamp DESC LIMIT 100`,
				value.Str(sub[0].S))
			for _, row := range th.Rows {
				all = append(all, tr{row[0].S, row[1].I, row[2].S})
			}
		}
		sort.SliceStable(all, func(i, j int) bool {
			if all[i].ts != all[j].ts {
				return all[i].ts > all[j].ts
			}
			return all[i].owner < all[j].owner
		})
		if len(all) > 10 {
			all = all[:10]
		}
		out := make([][2]string, len(all))
		for i, e := range all {
			out[i] = [2]string{e.owner, fmt.Sprint(e.ts)}
		}
		return out
	}

	for u := 0; u < users; u += 3 {
		me := fmt.Sprintf("user%03d", u)
		res, err := q.Execute(s, value.Str(me))
		if err != nil {
			t.Fatal(err)
		}
		want := reference(me)
		if len(res.Rows) != len(want) {
			t.Fatalf("%s: got %d rows, want %d", me, len(res.Rows), len(want))
		}
		for i, row := range res.Rows {
			if row[1].I != mustInt(want[i][1]) {
				t.Fatalf("%s row %d: ts %d, want %s (owner %s vs %s)", me, i, row[1].I, want[i][1], row[0].S, want[i][0])
			}
		}
	}
}

func mustInt(s string) int64 {
	var n int64
	fmt.Sscan(s, &n)
	return n
}

// TestAllStrategiesAgree: Lazy, Simple, and Parallel must produce
// identical results — they differ only in request patterns.
func TestAllStrategiesAgree(t *testing.T) {
	_, s := newTestEngine(t, 5)
	loadSCADr(t, s, 20, 10, 6)
	queries := []struct {
		sql    string
		params []value.Value
	}{
		{`SELECT * FROM users WHERE username = ?`, []value.Value{value.Str("user004")}},
		{`SELECT * FROM thoughts WHERE owner = ? ORDER BY timestamp DESC LIMIT 5`, []value.Value{value.Str("user004")}},
		{`SELECT thoughts.* FROM subscriptions s JOIN thoughts
		  WHERE thoughts.owner = s.target AND s.owner = ? AND s.approved = true
		  ORDER BY thoughts.timestamp DESC LIMIT 10`, []value.Value{value.Str("user004")}},
		{`SELECT u.* FROM subscriptions s JOIN users u
		  WHERE u.username = s.target AND s.owner = ?`, []value.Value{value.Str("user004")}},
	}
	for _, q := range queries {
		var results [][]value.Row
		for _, strat := range []exec.Strategy{exec.Lazy, exec.Simple, exec.Parallel} {
			s.SetStrategy(strat)
			res, err := s.Query(q.sql, q.params...)
			if err != nil {
				t.Fatalf("%s under %v: %v", q.sql, strat, err)
			}
			results = append(results, res.Rows)
		}
		for i := 1; i < len(results); i++ {
			if len(results[i]) != len(results[0]) {
				t.Fatalf("%s: strategy %d returned %d rows vs %d", q.sql, i, len(results[i]), len(results[0]))
			}
			for j := range results[i] {
				if value.CompareRows(results[i][j], results[0][j]) != 0 {
					t.Fatalf("%s: row %d differs across strategies", q.sql, j)
				}
			}
		}
	}
}

// TestOpBoundInvariant: executed key/value operations never exceed the
// compiler's static bound (the paper's core guarantee), measured on a
// single-node cluster where partition-walk slack is zero.
func TestOpBoundInvariant(t *testing.T) {
	cluster := kvstore.New(kvstore.Config{Nodes: 1, ReplicationFactor: 1, Seed: 1}, nil)
	eng := New(cluster)
	s := eng.Session(nil)
	for _, ddl := range []string{
		`CREATE TABLE users (username VARCHAR(20), password VARCHAR(20), hometown VARCHAR(30), PRIMARY KEY (username))`,
		`CREATE TABLE subscriptions (owner VARCHAR(20), target VARCHAR(20), approved BOOLEAN,
			PRIMARY KEY (owner, target), FOREIGN KEY (target) REFERENCES users, CARDINALITY LIMIT 100 (owner))`,
		`CREATE TABLE thoughts (owner VARCHAR(20), timestamp INT, text VARCHAR(140), PRIMARY KEY (owner, timestamp))`,
	} {
		if err := s.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	loadSCADr(t, s, 40, 30, 10)

	queries := []string{
		`SELECT * FROM users WHERE username = ?`,
		`SELECT * FROM thoughts WHERE owner = ? ORDER BY timestamp DESC LIMIT 10`,
		`SELECT thoughts.* FROM subscriptions s JOIN thoughts
		 WHERE thoughts.owner = s.target AND s.owner = ? AND s.approved = true
		 ORDER BY thoughts.timestamp DESC LIMIT 10`,
		`SELECT u.* FROM subscriptions s JOIN users u WHERE u.username = s.target AND s.owner = ?`,
		`SELECT COUNT(*) FROM subscriptions WHERE owner = ?`,
	}
	for _, sql := range queries {
		q, err := s.Prepare(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		bound := q.Plan().OpBound()
		for u := 0; u < 40; u += 7 {
			// The static bound holds for the batching executors; the
			// LazyExecutor deliberately issues one request per tuple
			// (Section 8.5) and is benchmarked, not bounded.
			for _, strat := range []exec.Strategy{exec.Simple, exec.Parallel} {
				s.SetStrategy(strat)
				s.Client().ResetOps()
				if _, err := q.Execute(s, value.Str(fmt.Sprintf("user%03d", u))); err != nil {
					t.Fatal(err)
				}
				if ops := s.Client().Ops(); ops > int64(bound) {
					t.Fatalf("%s (%v): executed %d ops, bound %d", sql, strat, ops, bound)
				}
			}
		}
	}
}

// TestOpsIndependentOfDatabaseSize: growing the database 8x must not
// change the operations a bounded query performs — scale independence
// made observable.
func TestOpsIndependentOfDatabaseSize(t *testing.T) {
	measure := func(users int) int64 {
		cluster := kvstore.New(kvstore.Config{Nodes: 1, ReplicationFactor: 1, Seed: 5}, nil)
		eng := New(cluster)
		s := eng.Session(nil)
		for _, ddl := range []string{
			`CREATE TABLE users (username VARCHAR(20), password VARCHAR(20), hometown VARCHAR(30), PRIMARY KEY (username))`,
			`CREATE TABLE subscriptions (owner VARCHAR(20), target VARCHAR(20), approved BOOLEAN,
				PRIMARY KEY (owner, target), FOREIGN KEY (target) REFERENCES users, CARDINALITY LIMIT 100 (owner))`,
			`CREATE TABLE thoughts (owner VARCHAR(20), timestamp INT, text VARCHAR(140), PRIMARY KEY (owner, timestamp))`,
		} {
			if err := s.Exec(ddl); err != nil {
				t.Fatal(err)
			}
		}
		loadSCADr(t, s, users, 20, 10)
		q, err := s.Prepare(`SELECT thoughts.* FROM subscriptions s JOIN thoughts
			WHERE thoughts.owner = s.target AND s.owner = ? AND s.approved = true
			ORDER BY thoughts.timestamp DESC LIMIT 10`)
		if err != nil {
			t.Fatal(err)
		}
		s.Client().ResetOps()
		if _, err := q.Execute(s, value.Str("user005")); err != nil {
			t.Fatal(err)
		}
		return s.Client().Ops()
	}
	small, large := measure(15), measure(120)
	if large > small+1 { // +1 tolerance for replica/partition jitter
		t.Fatalf("ops grew with database size: %d -> %d", small, large)
	}
}

func TestPaginationFullTraversal(t *testing.T) {
	_, s := newTestEngine(t, 4)
	loadSCADr(t, s, 5, 47, 2)
	q, err := s.Prepare(`SELECT timestamp FROM thoughts WHERE owner = ? ORDER BY timestamp DESC PAGINATE 10`)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := q.Paginate(value.Str("user002"))
	if err != nil {
		t.Fatal(err)
	}
	var all []int64
	pages := 0
	for !cur.Done() {
		res, err := cur.Next(s)
		if err != nil {
			t.Fatal(err)
		}
		if res == nil {
			break
		}
		if len(res.Rows) > 10 {
			t.Fatalf("page has %d rows", len(res.Rows))
		}
		for _, row := range res.Rows {
			all = append(all, row[0].I)
		}
		pages++
		if pages > 10 {
			t.Fatal("cursor did not terminate")
		}
	}
	if len(all) != 47 {
		t.Fatalf("traversed %d thoughts, want 47", len(all))
	}
	for i := range all {
		if all[i] != int64(1046-i) {
			t.Fatalf("position %d = %d, want %d", i, all[i], 1046-i)
		}
	}
}

// TestPaginationLazyStrategy pages the same cursor query under the
// LazyExecutor, whose tuple-at-a-time range walk advances a successor
// key per tuple. The cursor threads one scratch buffer through every
// page (exec.Scratch), so the walk reuses it instead of allocating per
// tuple — this pins the results staying identical to the batched
// strategies across page boundaries, where a stale or clobbered buffer
// would skip or repeat tuples.
func TestPaginationLazyStrategy(t *testing.T) {
	_, s := newTestEngine(t, 4)
	loadSCADr(t, s, 5, 47, 2)
	q, err := s.Prepare(`SELECT timestamp FROM thoughts WHERE owner = ? ORDER BY timestamp DESC PAGINATE 10`)
	if err != nil {
		t.Fatal(err)
	}
	s.SetStrategy(exec.Lazy)
	cur, err := q.Paginate(value.Str("user002"))
	if err != nil {
		t.Fatal(err)
	}
	var all []int64
	for pages := 0; !cur.Done(); pages++ {
		if pages > 10 {
			t.Fatal("cursor did not terminate")
		}
		res, err := cur.Next(s)
		if err != nil {
			t.Fatal(err)
		}
		if res == nil {
			break
		}
		for _, row := range res.Rows {
			all = append(all, row[0].I)
		}
	}
	if len(all) != 47 {
		t.Fatalf("lazy traversal saw %d thoughts, want 47", len(all))
	}
	for i := range all {
		if all[i] != int64(1046-i) {
			t.Fatalf("lazy position %d = %d, want %d", i, all[i], 1046-i)
		}
	}
}

// TestCursorSerializationAcrossSessions ships a serialized cursor to a
// "different application server" (fresh session) and resumes.
func TestCursorSerializationAcrossSessions(t *testing.T) {
	eng, s := newTestEngine(t, 4)
	loadSCADr(t, s, 5, 25, 2)
	q, err := s.Prepare(`SELECT timestamp FROM thoughts WHERE owner = ? ORDER BY timestamp DESC PAGINATE 10`)
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := q.Paginate(value.Str("user001"))
	first, err := cur.Next(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Rows) != 10 {
		t.Fatalf("first page = %d rows", len(first.Rows))
	}
	blob := cur.Serialize()
	if len(blob) > 4096 {
		t.Fatalf("serialized cursor is %d bytes; should be small", len(blob))
	}

	s2 := eng.Session(nil)
	cur2, err := eng.RestoreCursor(s2, blob)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cur2.Next(s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Rows) != 10 || second.Rows[0][0].I != 1014 {
		t.Fatalf("second page starts at %v, want 1014", second.Rows[0])
	}
	// Corrupt cursors are rejected.
	if _, err := eng.RestoreCursor(s2, []byte{99}); err == nil {
		t.Fatal("corrupt cursor accepted")
	}
	if _, err := eng.RestoreCursor(s2, blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated cursor accepted")
	}
}

// TestPaginatedThoughtstream pages through the SortedIndexJoin query.
func TestPaginatedThoughtstream(t *testing.T) {
	_, s := newTestEngine(t, 4)
	loadSCADr(t, s, 12, 12, 5)
	q, err := s.Prepare(`
		SELECT thoughts.owner, thoughts.timestamp FROM subscriptions s JOIN thoughts
		WHERE thoughts.owner = s.target AND s.owner = ? AND s.approved = true
		ORDER BY thoughts.timestamp DESC PAGINATE 7`)
	if err != nil {
		t.Fatal(err)
	}
	// Reference: full result via a large LIMIT query.
	full, err := s.Query(`
		SELECT thoughts.owner, thoughts.timestamp FROM subscriptions s JOIN thoughts
		WHERE thoughts.owner = s.target AND s.owner = ? AND s.approved = true
		ORDER BY thoughts.timestamp DESC LIMIT 100`, value.Str("user006"))
	if err != nil {
		t.Fatal(err)
	}
	cur, _ := q.Paginate(value.Str("user006"))
	var paged []value.Row
	for !cur.Done() {
		res, err := cur.Next(s)
		if err != nil {
			t.Fatal(err)
		}
		if res == nil {
			break
		}
		paged = append(paged, res.Rows...)
	}
	if len(paged) != len(full.Rows) {
		t.Fatalf("paged %d rows, reference %d", len(paged), len(full.Rows))
	}
	for i := range paged {
		if paged[i][1].I != full.Rows[i][1].I {
			t.Fatalf("row %d: paged ts %d vs full ts %d", i, paged[i][1].I, full.Rows[i][1].I)
		}
	}
}

func TestCardinalityConstraintEnforced(t *testing.T) {
	_, s := newTestEngine(t, 3)
	// Prepare a query so the subscriptions-by-owner index exists (the
	// enforcement path uses it when present).
	if err := s.Exec(`INSERT INTO users VALUES ('hub', 'pw', 'SF')`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Exec(`INSERT INTO subscriptions VALUES (?, ?, true)`,
			value.Str("hub"), value.Str(fmt.Sprintf("t%03d", i))); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	err := s.Exec(`INSERT INTO subscriptions VALUES ('hub', 'one-too-many', true)`)
	var card *index.ErrCardinalityExceeded
	if !errors.As(err, &card) {
		t.Fatalf("101st subscription: err = %v, want ErrCardinalityExceeded", err)
	}
	// The violating row must be rolled back.
	res, err := s.Query(`SELECT COUNT(*) FROM subscriptions WHERE owner = ?`, value.Str("hub"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].I != 100 {
		t.Fatalf("count after rollback = %d", res.Rows[0][0].I)
	}
}

func TestDuplicatePrimaryKeyRejected(t *testing.T) {
	_, s := newTestEngine(t, 3)
	if err := s.Exec(`INSERT INTO users VALUES ('bob', 'pw', 'SF')`); err != nil {
		t.Fatal(err)
	}
	err := s.Exec(`INSERT INTO users VALUES ('bob', 'other', 'LA')`)
	var dup *index.ErrDuplicateKey
	if !errors.As(err, &dup) {
		t.Fatalf("err = %v, want ErrDuplicateKey", err)
	}
	// Original row untouched.
	res, _ := s.Query(`SELECT password FROM users WHERE username = 'bob'`)
	if res.Rows[0][0].S != "pw" {
		t.Fatalf("row overwritten: %v", res.Rows[0])
	}
}

func TestUpdateMaintainsIndexes(t *testing.T) {
	_, s := newTestEngine(t, 3)
	if err := s.Exec(`INSERT INTO users VALUES ('ann', 'pw', 'SF')`); err != nil {
		t.Fatal(err)
	}
	// Force a secondary index on hometown via a scan query.
	if _, err := s.Query(`SELECT * FROM users WHERE hometown = 'SF' LIMIT 5`); err != nil {
		t.Fatal(err)
	}
	if err := s.Exec(`UPDATE users SET hometown = 'LA' WHERE username = 'ann'`); err != nil {
		t.Fatal(err)
	}
	res, _ := s.Query(`SELECT hometown FROM users WHERE username = 'ann'`)
	if res.Rows[0][0].S != "LA" {
		t.Fatalf("hometown = %v", res.Rows[0][0])
	}
	// The index reflects the update: found under LA, gone from SF.
	la, _ := s.Query(`SELECT username FROM users WHERE hometown = 'LA' LIMIT 5`)
	if len(la.Rows) != 1 || la.Rows[0][0].S != "ann" {
		t.Fatalf("LA index scan = %v", la.Rows)
	}
	sf, _ := s.Query(`SELECT username FROM users WHERE hometown = 'SF' LIMIT 5`)
	if len(sf.Rows) != 0 {
		t.Fatalf("stale SF index entry: %v", sf.Rows)
	}
	if err := s.Exec(`DELETE FROM users WHERE username = 'ann'`); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Query(`SELECT * FROM users WHERE username = 'ann'`)
	if len(res.Rows) != 0 {
		t.Fatal("row survived DELETE")
	}
}

func TestTokenSearchEndToEnd(t *testing.T) {
	cluster := kvstore.New(kvstore.Config{Nodes: 3, ReplicationFactor: 1, Seed: 9}, nil)
	eng := New(cluster)
	s := eng.Session(nil)
	if err := s.Exec(`CREATE TABLE items (i_id INT, i_title VARCHAR(60), PRIMARY KEY (i_id))`); err != nil {
		t.Fatal(err)
	}
	titles := []string{
		"The Go Programming Language",
		"Designing Data-Intensive Applications",
		"Programming Pearls",
		"The Art of Computer Programming",
		"Clean Code",
	}
	for i, title := range titles {
		if err := s.Exec(`INSERT INTO items VALUES (?, ?)`, value.Int(int64(i)), value.Str(title)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Query(`SELECT i_title FROM items WHERE i_title CONTAINS ? ORDER BY i_title LIMIT 50`,
		value.Str("programming"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Sorted by title.
	for i := 1; i < len(res.Rows); i++ {
		if strings.Compare(res.Rows[i-1][0].S, res.Rows[i][0].S) > 0 {
			t.Fatalf("titles unsorted: %v", res.Rows)
		}
	}
	// Case-insensitive token match; late inserts visible (index maintained).
	if err := s.Exec(`INSERT INTO items VALUES (99, 'More PROGRAMMING Wisdom')`); err != nil {
		t.Fatal(err)
	}
	res, _ = s.Query(`SELECT i_title FROM items WHERE i_title CONTAINS ? ORDER BY i_title LIMIT 50`, value.Str("Programming"))
	if len(res.Rows) != 4 {
		t.Fatalf("after insert: rows = %v", res.Rows)
	}
}

func TestSubscriberIntersection(t *testing.T) {
	_, s := newTestEngine(t, 4)
	loadSCADr(t, s, 30, 2, 10)
	res, err := s.Query(`
		SELECT owner FROM subscriptions
		WHERE target = ? AND owner IN (?, ?, ?)`,
		value.Str("user010"), value.Str("user001"), value.Str("user002"), value.Str("user003"))
	if err != nil {
		t.Fatal(err)
	}
	// Verify against per-pair lookups.
	want := 0
	for _, friend := range []string{"user001", "user002", "user003"} {
		r, _ := s.Query(`SELECT * FROM subscriptions WHERE owner = ? AND target = ?`,
			value.Str(friend), value.Str("user010"))
		want += len(r.Rows)
	}
	if len(res.Rows) != want {
		t.Fatalf("intersection = %d rows, want %d", len(res.Rows), want)
	}
}

func TestGroupByAggregate(t *testing.T) {
	_, s := newTestEngine(t, 3)
	loadSCADr(t, s, 6, 9, 3)
	res, err := s.Query(`
		SELECT target, COUNT(*) FROM subscriptions WHERE owner = ? GROUP BY target`,
		value.Str("user001"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row[1].I != 1 {
			t.Fatalf("count = %v", row)
		}
	}
	// MIN/MAX/AVG/SUM over thoughts timestamps.
	res, err = s.Query(`
		SELECT COUNT(*), MIN(timestamp), MAX(timestamp), AVG(timestamp), SUM(timestamp)
		FROM thoughts WHERE owner = ?`, value.Str("user002"))
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	if row[0].I != 9 || row[1].I != 1000 || row[2].I != 1008 {
		t.Fatalf("aggs = %v", row)
	}
	if row[3].F != 1004 || row[4].I != 9036 {
		t.Fatalf("avg/sum = %v", row)
	}
}

func TestGCDanglingEntries(t *testing.T) {
	eng, s := newTestEngine(t, 3)
	if err := s.Exec(`INSERT INTO users VALUES ('gcu', 'pw', 'SF')`); err != nil {
		t.Fatal(err)
	}
	// Build a hometown secondary index, then delete the record *directly*
	// from the store, bypassing maintenance — simulating a crash between
	// protocol steps.
	if _, err := s.Query(`SELECT * FROM users WHERE hometown = 'SF' LIMIT 5`); err != nil {
		t.Fatal(err)
	}
	tab := eng.Catalog().Table("users")
	s.Client().Delete(index.RecordKeyFromPK(tab, value.Row{value.Str("gcu")}))

	// The dangling entry is invisible to queries (deref skips it)...
	res, err := s.Query(`SELECT * FROM users WHERE hometown = 'SF' LIMIT 5`)
	if err != nil || len(res.Rows) != 0 {
		t.Fatalf("dangling entry visible: %v, %v", res.Rows, err)
	}
	// ...and GC removes it.
	var secondary = 0
	for _, ix := range eng.Catalog().Indexes("users") {
		if ix.Primary {
			continue
		}
		n, err := index.NewMaintainer(eng.Catalog()).GCDangling(s.Client(), ix)
		if err != nil {
			t.Fatal(err)
		}
		secondary += n
	}
	if secondary == 0 {
		t.Fatal("GC collected nothing")
	}
}

func TestPrepareRejectsUnbounded(t *testing.T) {
	_, s := newTestEngine(t, 3)
	_, err := s.Prepare(`SELECT * FROM thoughts WHERE text = 'x'`)
	if err == nil || !strings.Contains(err.Error(), "not scale-independent") {
		t.Fatalf("err = %v", err)
	}
}

func TestInequalityRange(t *testing.T) {
	_, s := newTestEngine(t, 3)
	loadSCADr(t, s, 4, 30, 2)
	res, err := s.Query(`
		SELECT timestamp FROM thoughts
		WHERE owner = ? AND timestamp > 1020 AND timestamp <= 1025
		ORDER BY timestamp DESC LIMIT 20`, value.Str("user001"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for i, row := range res.Rows {
		if row[0].I != int64(1025-i) {
			t.Fatalf("row %d = %v", i, row)
		}
	}
}
