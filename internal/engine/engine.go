// Package engine assembles the PIQL database library of Figure 2: the
// catalog, the compiler, the execution engine, and the write path, all
// running stateless in the application tier against the key/value store.
//
// # Concurrency
//
// One Engine serves any number of Sessions concurrently, each from its
// own goroutine — PIQL's application-tier library is stateless per
// request, so throughput scales with clients. The shared state is
// organized so the hot path never blocks:
//
//   - the catalog is an immutable snapshot published through an atomic
//     pointer; DDL (and the compiler's automatic index creation) clones
//     the snapshot, mutates the clone under a writer lock, and publishes
//     it — queries keep reading the old snapshot without locking;
//   - the compiled-plan cache is guarded by an RWMutex, so cache hits
//     (the steady state) take only a read lock;
//   - index backfills are deduplicated by signature with a single-flight
//     table: the first session builds, racing sessions wait for the
//     build to finish instead of double-building or — worse — reading an
//     index mid-backfill.
//
// A Session itself is single-goroutine (it owns a kvstore.Client and a
// strategy override); spawn one Session per goroutine.
//
// # Online index builds
//
// CREATE INDEX is safe under concurrent writes to the same table. An
// index has a lifecycle in the catalog: it is registered as building
// (schema.StateBuilding) — from that moment every write maintains its
// entries — then the backfill scans the existing records and flips it
// ready (schema.StateReady) through a copy-on-write catalog publish.
// The planner only serves queries from ready indexes. One write-gap
// window remains between registration and the backfill scan: a writer
// that loaded the catalog before the index was published would neither
// maintain the index nor be seen by a scan that already passed its row.
// The engine closes it by draining in-flight write operations (a brief
// exclusive acquire of writeGate) after publishing the index and before
// scanning: any write that starts after the drain sees the published
// index and maintains it; any write that started before finishes before
// the scan and is picked up by it.
package engine

import (
	"fmt"
	"sync"
	"sync/atomic"

	"piql/internal/analyze"
	"piql/internal/core"
	"piql/internal/exec"
	"piql/internal/index"
	"piql/internal/kvstore"
	"piql/internal/parser"
	"piql/internal/schema"
	"piql/internal/sim"
	"piql/internal/value"
)

// Engine is one application-tier PIQL library instance. It is stateless
// between requests apart from the catalog and compiled-plan cache; all
// data lives in the key/value store. An Engine is safe for concurrent
// use by multiple sessions (see the package comment).
type Engine struct {
	cluster *kvstore.Cluster
	maint   *index.Maintainer

	// cat holds the current copy-on-write catalog snapshot. Readers
	// load it without locking; writers serialize on ddlMu, clone,
	// mutate the clone, and publish it here.
	cat   atomic.Pointer[schema.Catalog]
	ddlMu sync.Mutex

	plansMu sync.RWMutex
	plans   map[string]*Prepared // by SQL text

	buildMu sync.Mutex
	builds  map[string]*indexBuild // in-flight/completed backfills by signature

	// writeGate closes the index-build write-gap window: every write
	// operation holds it shared for the op's duration (loading the
	// catalog inside), and a backfill acquires it exclusively — once,
	// briefly — after its index is published and before its scan, so no
	// writer can still be acting on a pre-index catalog snapshot.
	writeGate sync.RWMutex

	// simDrains is the cooperative-mode analogue of a pending exclusive
	// writeGate acquisition. A simulated builder cannot block in Lock()
	// (it holds the scheduler token), and a bare TryLock spin never
	// wins under sustained writers — a simulated writer is parked only
	// while it is *inside* an op holding the gate, so the gate is never
	// observably free. While simDrains > 0, simulated write operations
	// yield before taking the gate, so only in-flight ops separate the
	// drainer from its barrier.
	simDrains atomic.Int32

	// admission is the SLO admission-control policy applied by Prepare
	// (Section 6: queries whose static bound or predicted latency
	// violates the SLO are refused before they ever run). Nil or
	// non-enforcing policies admit everything; the bound is attached to
	// the prepared plan either way.
	admission atomic.Pointer[analyze.Policy]

	defStrat   atomic.Int32 // exec.Strategy
	readQuorum atomic.Int32 // replicas per point read for new sessions
}

// New creates an engine over a cluster.
func New(cluster *kvstore.Cluster) *Engine {
	e := &Engine{
		cluster: cluster,
		plans:   make(map[string]*Prepared),
		builds:  make(map[string]*indexBuild),
	}
	e.cat.Store(schema.NewCatalog())
	e.maint = index.NewMaintainer(e) // live source: writes see new indexes immediately
	e.defStrat.Store(int32(exec.Parallel))
	return e
}

// SetDefaultStrategy changes the execution strategy used by sessions
// created afterwards that do not override it (Section 8.5's executor
// comparison).
func (e *Engine) SetDefaultStrategy(s exec.Strategy) { e.defStrat.Store(int32(s)) }

// SetReadQuorum sets how many replicas sessions created afterwards
// consult per point read (see kvstore.Client.SetReadQuorum). r <= 1 is
// the default single-replica read; r = 2 with replication factor 2
// bounds staleness to zero while any one replica is partitioned,
// because an acked write reaches every reachable owner synchronously.
func (e *Engine) SetReadQuorum(r int) { e.readQuorum.Store(int32(r)) }

// SetAdmission installs (or, with nil, removes) the admission-control
// policy. The policy applies to every subsequent Prepare, including
// cache hits: a plan admitted under an old policy is re-checked against
// the new one, so tightening the SLO takes effect without a cache
// flush.
func (e *Engine) SetAdmission(p *analyze.Policy) { e.admission.Store(p) }

// Admission returns the current admission policy (nil if none).
func (e *Engine) Admission() *analyze.Policy { return e.admission.Load() }

// Catalog returns the current catalog snapshot. The snapshot is
// immutable; concurrent DDL publishes new snapshots rather than
// mutating this one.
func (e *Engine) Catalog() *schema.Catalog { return e.cat.Load() }

// Cluster exposes the underlying store.
func (e *Engine) Cluster() *kvstore.Cluster { return e.cluster }

// Session is a per-goroutine handle: it owns a key/value client (and
// thus a virtual-time identity in simulated mode) and a strategy
// override. Sessions are cheap; create one per goroutine rather than
// sharing one across goroutines.
type Session struct {
	eng    *Engine
	client *kvstore.Client
	strat  exec.Strategy
}

// Session creates a session. proc may be nil for immediate mode.
func (e *Engine) Session(proc *sim.Proc) *Session {
	client := e.cluster.NewClient(proc)
	client.SetReadQuorum(int(e.readQuorum.Load()))
	return &Session{
		eng:    e,
		client: client,
		strat:  exec.Strategy(e.defStrat.Load()),
	}
}

// SetStrategy overrides the execution strategy for this session.
func (s *Session) SetStrategy(st exec.Strategy) { s.strat = st }

// Client exposes the session's store client (op counting, timing).
func (s *Session) Client() *kvstore.Client { return s.client }

// Exec runs a DDL or DML statement. Queries must go through Prepare.
func (s *Session) Exec(sql string, params ...value.Value) error {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return err
	}
	switch stmt := stmt.(type) {
	case *parser.CreateTable:
		return s.eng.createTable(stmt.Table)
	case *parser.CreateIndex:
		return s.eng.createIndex(s, stmt.Index)
	case *parser.Insert:
		return s.insert(stmt, params)
	case *parser.Update:
		return s.update(stmt, params)
	case *parser.Delete:
		return s.delete(stmt, params)
	case *parser.Select:
		return fmt.Errorf("engine: use Prepare/Query for SELECT statements")
	default:
		return fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

// updateCatalog runs one copy-on-write catalog mutation: clone the
// latest snapshot under ddlMu, apply fn to the clone, and publish it
// only if fn succeeds — a failing mutation leaves no trace. Every
// catalog writer (DDL and the compiler) goes through here.
func (e *Engine) updateCatalog(fn func(next *schema.Catalog) error) error {
	e.ddlMu.Lock()
	defer e.ddlMu.Unlock()
	next := e.cat.Load().Clone()
	if err := fn(next); err != nil {
		return err
	}
	e.cat.Store(next)
	return nil
}

func (e *Engine) createTable(t *schema.Table) error {
	return e.updateCatalog(func(next *schema.Catalog) error {
		return next.AddTable(t)
	})
}

func (e *Engine) createIndex(s *Session, ix *schema.Index) error {
	var canonical *schema.Index
	err := e.updateCatalog(func(next *schema.Catalog) error {
		var err error
		canonical, err = next.AddIndex(ix)
		return err
	})
	if err != nil {
		return err
	}
	return e.ensureBuilt(s, []*schema.Index{canonical})
}

// indexBuild is one in-flight or completed backfill: err is written
// before done is closed, so waiters that return from <-done see it.
type indexBuild struct {
	done chan struct{}
	err  error
}

// ensureBuilt backfills any indexes not yet ready in the catalog.
// Builds are single-flight per index signature: the first session to
// request an index runs the backfill while racing sessions block until
// it completes (previously two sessions could race the signature map,
// with the loser reading the index mid-backfill). A successful build
// first passes the read-only ghost assertion (deletes racing the
// backfill scan must have outranked its stamped re-puts on every
// suspect; see verifyBackfillRace) and only then flips the index to
// ready through a copy-on-write catalog publish; a failed or
// assertion-violating build is forgotten so a later Prepare can retry
// it.
func (e *Engine) ensureBuilt(s *Session, ixs []*schema.Index) error {
	for _, ix := range ixs {
		if ix.Primary {
			continue
		}
		if e.Catalog().IndexState(ix) == schema.StateReady {
			continue // steady state: no locks
		}
		sig := ix.Signature()
		e.buildMu.Lock()
		b, inFlight := e.builds[sig]
		if !inFlight {
			b = &indexBuild{done: make(chan struct{})}
			e.builds[sig] = b
		}
		e.buildMu.Unlock()
		if inFlight {
			// A simulated-mode session holds the sim scheduler's token:
			// blocking on the channel would deadlock the whole virtual-
			// time environment. Poll instead, parking for zero virtual
			// time between attempts so the builder — simulated or real —
			// makes progress. (The old workaround duplicated the whole
			// backfill; now sim waiters get the same single-flight wait
			// as real goroutines.)
			if s.client.Simulated() {
				for !b.finished() {
					s.client.Yield()
				}
			} else {
				<-b.done
			}
			if b.err != nil {
				return b.err
			}
			continue
		}
		// This session is the builder. The index is already registered
		// (building) in the published catalog, so every write that starts
		// from here on maintains it. Open the build-tombstone registry
		// first — every delete that could race the scan records its entry
		// keys there — then drain writers that may still hold a pre-index
		// snapshot: any write that starts after the drain sees both the
		// index and the registry; any write from before finishes before
		// the scan and is picked up (or skipped) by it.
		// Draw the scan stamp first: the registry opens and the drain
		// runs after it, so every write that can race the scan — and in
		// particular every suspect the registry records — stamps itself
		// strictly newer than snap. (Drawn after the drain, a delete
		// that started in between could stamp older than the scan and
		// genuinely lose to its re-put.)
		snap := s.client.StampVersion()
		e.maint.BeginBuildTombstones(ix)
		e.drainWriters(s)
		b.err = e.maint.BackfillAt(s.client, ix, snap)
		suspects := e.maint.TakeBuildTombstones(ix)
		// Assert before publishing, and even after a failed backfill:
		// the aborted scan may already have re-put entries for rows
		// deleted while it ran, and a retry's registry starts fresh —
		// these suspects are the only record of the candidate ghosts.
		// The check is read-only (the versioned store already guarantees
		// the delete won; see Maintainer.VerifyBuildSuspects), so a
		// violation fails the build — the index is never flipped ready
		// over a known ghost, and a later Prepare retries the build.
		if verr := e.verifyBackfillRace(s, ix, snap, suspects); verr != nil && b.err == nil {
			b.err = verr
		}
		if b.err == nil {
			e.markReady(ix)
		} else {
			e.buildMu.Lock()
			delete(e.builds, sig)
			e.buildMu.Unlock()
		}
		close(b.done)
		if b.err != nil {
			return b.err
		}
	}
	return nil
}

// finished reports whether the build's done channel is closed, without
// blocking — the poll a cooperative simulated waiter needs.
func (b *indexBuild) finished() bool {
	select {
	case <-b.done:
		return true
	default:
		return false
	}
}

// drainWriters blocks until every write operation that started before
// the call has finished: one brief exclusive acquire of writeGate. A
// simulated session cannot block on the gate — it holds the cooperative
// scheduler's token, and the writers it is waiting for are parked
// processes that need that token to finish — so it raises simDrains
// (new simulated write ops yield instead of starting, exactly as a
// pending real Lock blocks new readers) and spins on TryLock, parking
// until the next event between attempts; the in-flight gate holders
// run to completion in between. This gives sim runs the same bounded,
// building→ready drain as real goroutines.
func (e *Engine) drainWriters(s *Session) {
	if s.client.Simulated() {
		e.simDrains.Add(1)
		for !e.writeGate.TryLock() {
			s.client.Yield()
		}
		e.writeGate.Unlock()
		e.simDrains.Add(-1)
		return
	}
	e.writeGate.Lock()
	//lint:ignore SA2001 empty critical section is the drain barrier
	e.writeGate.Unlock()
}

// awaitDrains holds a simulated write operation at the door while a
// drain is pending — the cooperative counterpart of sync.RWMutex's
// writer preference. Called before every shared writeGate acquisition;
// immediate-mode sessions rely on the RWMutex itself.
func (s *Session) awaitDrains() {
	if !s.client.Simulated() {
		return
	}
	for s.eng.simDrains.Load() != 0 {
		s.client.Yield()
	}
}

// verifyBackfillRace asserts the delete-racing-backfill invariant: a
// row deleted while the backfill scan ran can have its entry re-put by
// the scan after the delete removed it, but the re-put is stamped at
// the scan-begin version and the delete's tombstone later, so the
// versioned store guarantees the delete wins on every replica. The
// suspects are the build-tombstone registry's contents — exactly the
// entry keys writers deleted while the backfill ran, with no index
// re-scan — and the check is a version comparison per suspect
// (Maintainer.VerifyBuildSuspects), run under a writer drain so no
// delete is still mid-propagation when the versions are read. The
// pre-versioning protocol had to confirm-and-delete the ghosts here;
// now a non-nil return means the store broke its ordering invariant.
func (e *Engine) verifyBackfillRace(s *Session, ix *schema.Index, snap kvstore.Version, suspects [][]byte) error {
	if len(suspects) == 0 {
		return nil
	}
	if s.client.Simulated() {
		// A simulated check must not hold the gate across virtual-time
		// parks (writers blocked on the held gate could never run
		// again). Instead: drain writers in virtual time, then read the
		// versions through an immediate (zero-latency) client. The
		// builder holds the cooperative scheduler's only token and never
		// parks during the check, so no writer can interleave with it —
		// the same exclusion the write gate provides for real
		// goroutines. (The check's requests pay no virtual time;
		// maintenance cost is not part of the modeled workload.)
		e.drainWriters(s)
		return e.maint.VerifyBuildSuspects(e.cluster.NewClient(nil), ix, snap, suspects)
	}
	// Blocking writers on the held gate while the suspect versions are
	// read is this branch's entire point (the drain semantic); real
	// goroutines keep the holder running, and the virtual-time case
	// above avoids the gate precisely because parked writers there
	// could never run again.
	e.writeGate.Lock()
	defer e.writeGate.Unlock()
	//lint:allow holdblock — intentional writer drain; real-clock branch only
	return e.maint.VerifyBuildSuspects(s.client, ix, snap, suspects)
}

// markReady publishes a catalog snapshot with the index flipped to
// ready. Idempotent.
func (e *Engine) markReady(ix *schema.Index) {
	_ = e.updateCatalog(func(next *schema.Catalog) error {
		next.SetIndexReady(ix)
		return nil
	})
}

// Prepared is a compiled, reusable query.
type Prepared struct {
	eng   *Engine
	plan  *core.Plan
	sql   string
	bound *analyze.Bound
}

// Prepare compiles a SELECT (building any new indexes the plan needs)
// or returns the cached plan for previously prepared text. The cache
// hit — the steady state under load — takes only a read lock. Every
// prepared plan carries its static operation bound (Prepared.Bound);
// if an admission policy is enforced, unbounded or over-SLO plans are
// refused here — before any index is built or cached — with a typed
// *analyze.ErrUnbounded or *analyze.ErrOverSLO.
func (s *Session) Prepare(sql string) (*Prepared, error) {
	return s.prepare(sql, sql, func(cat *schema.Catalog, sel *parser.Select) (*core.Plan, error) {
		return core.Compile(cat, sel)
	})
}

// PrepareCostBased compiles a SELECT the way the Section 8.3 baseline
// optimizer would — minimizing average operations with no regard for
// worst-case bounds — so it can produce executable *unbounded* plans
// the PIQL compiler refuses. This is the misbehaving-tenant path: with
// an enforcing admission policy installed, such plans are refused at
// Prepare with *analyze.ErrUnbounded; without one, they run.
func (s *Session) PrepareCostBased(sql string, stats core.Stats) (*Prepared, error) {
	return s.prepare("cost-based\x00"+sql, sql, func(cat *schema.Catalog, sel *parser.Select) (*core.Plan, error) {
		return core.CompileCostBased(cat, sel, stats)
	})
}

func (s *Session) prepare(cacheKey, sql string, compile func(*schema.Catalog, *parser.Select) (*core.Plan, error)) (*Prepared, error) {
	e := s.eng
	e.plansMu.RLock()
	p, hit := e.plans[cacheKey]
	e.plansMu.RUnlock()
	if hit {
		// Re-admit under the current policy: the plan may have been
		// cached before enforcement was tightened.
		if err := e.Admission().Admit(sql, p.bound); err != nil {
			return nil, err
		}
		return p, nil
	}

	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*parser.Select)
	if !ok {
		return nil, fmt.Errorf("engine: Prepare expects a SELECT, got %T", stmt)
	}
	// The compiler registers any secondary indexes the plan needs, so it
	// is potentially a catalog writer. Compile optimistically against a
	// throwaway clone with no lock held: when every index the plan reads
	// already exists in the published snapshot — the common case — the
	// result needs no publishing and cold compilations run fully in
	// parallel. Only a plan that created a genuinely new index recompiles
	// under ddlMu so the index lands in a published snapshot. (A rejected
	// query leaves no trace either way.)
	snap := e.cat.Load()
	plan, err := compile(snap.Clone(), sel)
	if err != nil {
		return nil, err
	}
	// Static boundedness analysis + admission control (Section 6). This
	// runs before any index build or catalog publish: a refused query
	// leaves no trace — no backfill work, no cache entry.
	bound := analyze.Plan(plan)
	if err := e.Admission().Admit(sql, bound); err != nil {
		return nil, err
	}
	if !snapshotHasIndexes(snap, plan.RequiredIndexes) {
		err = e.updateCatalog(func(next *schema.Catalog) error {
			var err error
			plan, err = compile(next, sel)
			return err
		})
		if err != nil {
			return nil, err
		}
		bound = analyze.Plan(plan)
	}
	if err := e.ensureBuilt(s, plan.RequiredIndexes); err != nil {
		return nil, err
	}
	p = &Prepared{eng: e, plan: plan, sql: sql, bound: bound}
	e.plansMu.Lock()
	if existing, ok := e.plans[cacheKey]; ok {
		p = existing // another session won the compile race; use its plan
	} else {
		e.plans[cacheKey] = p
	}
	e.plansMu.Unlock()
	return p, nil
}

// snapshotHasIndexes reports whether every index in ixs is already
// registered (by structural signature) in the catalog snapshot.
func snapshotHasIndexes(cat *schema.Catalog, ixs []*schema.Index) bool {
	for _, ix := range ixs {
		found := false
		for _, have := range cat.Indexes(ix.Table) {
			if have == ix || have.Signature() == ix.Signature() {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Plan exposes the compiled plan (bounds, explain output).
func (p *Prepared) Plan() *core.Plan { return p.plan }

// Bound exposes the plan's static boundedness analysis: the symbolic
// per-operator operation bound attached at Prepare time.
func (p *Prepared) Bound() *analyze.Bound { return p.bound }

// SQL returns the source text.
func (p *Prepared) SQL() string { return p.sql }

// Execute runs the query and returns all rows (the single page, for
// paginated queries — use Paginate for cursors).
func (p *Prepared) Execute(s *Session, params ...value.Value) (*exec.Result, error) {
	return exec.Run(p.plan, &exec.Ctx{Client: s.client, Params: params, Strategy: s.strat})
}

// Query is shorthand for Prepare + Execute.
func (s *Session) Query(sql string, params ...value.Value) (*exec.Result, error) {
	p, err := s.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return p.Execute(s, params...)
}

// --- write path ---

// Write operations hold writeGate shared for their whole duration —
// including the catalog load — so an index backfill can drain them (see
// ensureBuilt). Shared acquisition is uncontended in the steady state.

func (s *Session) insert(stmt *parser.Insert, params []value.Value) error {
	s.awaitDrains()
	s.eng.writeGate.RLock()
	defer s.eng.writeGate.RUnlock()
	t := s.eng.Catalog().Table(stmt.Table)
	if t == nil {
		return fmt.Errorf("engine: unknown table %q", stmt.Table)
	}
	row, err := buildRow(t, stmt.Columns, stmt.Values, params)
	if err != nil {
		return err
	}
	return s.eng.maint.Insert(s.client, t, row)
}

func (s *Session) update(stmt *parser.Update, params []value.Value) error {
	s.awaitDrains()
	s.eng.writeGate.RLock()
	defer s.eng.writeGate.RUnlock()
	t := s.eng.Catalog().Table(stmt.Table)
	if t == nil {
		return fmt.Errorf("engine: unknown table %q", stmt.Table)
	}
	pk, err := pkFromWhere(t, stmt.Where, params)
	if err != nil {
		return err
	}
	rkey := index.RecordKeyFromPK(t, pk)
	s.client.TakeErr()
	rec, ok := s.client.Get(rkey)
	if !ok {
		// Distinguish "the row is absent" from "the row's replicas are
		// unreachable": the latter is transient and must not be reported
		// as a missing row (callers treat missing-row as a fatal semantic
		// error and would drop the update on the floor).
		if derr := s.client.TakeErr(); derr != nil {
			return fmt.Errorf("engine: update %s: %w", t.Name, derr)
		}
		return fmt.Errorf("engine: no row in %s with primary key %s", t.Name, pk)
	}
	row, err := value.DecodeRow(rec)
	if err != nil {
		return fmt.Errorf("engine: corrupt record: %w", err)
	}
	for _, a := range stmt.Set {
		ci := t.ColumnIndex(a.Column)
		if ci < 0 {
			return fmt.Errorf("engine: unknown column %q in %s", a.Column, t.Name)
		}
		v, err := evalExpr(a.Value, params)
		if err != nil {
			return err
		}
		row[ci] = v
	}
	// Primary key columns must not change through UPDATE.
	for i, col := range t.PrimaryKey {
		if !value.Equal(row[t.ColumnIndex(col)], pk[i]) {
			return fmt.Errorf("engine: UPDATE may not modify primary key column %q", col)
		}
	}
	return s.eng.maint.Update(s.client, t, row)
}

func (s *Session) delete(stmt *parser.Delete, params []value.Value) error {
	s.awaitDrains()
	s.eng.writeGate.RLock()
	defer s.eng.writeGate.RUnlock()
	t := s.eng.Catalog().Table(stmt.Table)
	if t == nil {
		return fmt.Errorf("engine: unknown table %q", stmt.Table)
	}
	pk, err := pkFromWhere(t, stmt.Where, params)
	if err != nil {
		return err
	}
	return s.eng.maint.Delete(s.client, t, pk)
}

// buildRow assembles a full table row from INSERT columns and values.
func buildRow(t *schema.Table, cols []string, exprs []parser.Expr, params []value.Value) (value.Row, error) {
	row := make(value.Row, len(t.Columns))
	if len(cols) == 0 {
		if len(exprs) != len(t.Columns) {
			return nil, fmt.Errorf("engine: INSERT into %s needs %d values, got %d", t.Name, len(t.Columns), len(exprs))
		}
		for i, e := range exprs {
			v, err := evalExpr(e, params)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		return checkTypes(t, row)
	}
	for i, col := range cols {
		ci := t.ColumnIndex(col)
		if ci < 0 {
			return nil, fmt.Errorf("engine: unknown column %q in %s", col, t.Name)
		}
		v, err := evalExpr(exprs[i], params)
		if err != nil {
			return nil, err
		}
		row[ci] = v
	}
	return checkTypes(t, row)
}

func checkTypes(t *schema.Table, row value.Row) (value.Row, error) {
	for i, col := range t.Columns {
		v := row[i]
		if v.IsNull() {
			continue
		}
		if col.Type == value.TypeFloat && v.T == value.TypeInt {
			row[i] = value.Float(float64(v.I))
			continue
		}
		if v.T != col.Type {
			return nil, fmt.Errorf("engine: column %s.%s is %s, got %s", t.Name, col.Name, col.Type, v.T)
		}
		if col.MaxLen > 0 && v.T == value.TypeString && len(v.S) > col.MaxLen {
			return nil, fmt.Errorf("engine: value for %s.%s exceeds VARCHAR(%d)", t.Name, col.Name, col.MaxLen)
		}
	}
	return row, nil
}

// pkFromWhere requires the WHERE clause to be exactly an equality on the
// full primary key — PIQL's scale-independent contract for point writes.
func pkFromWhere(t *schema.Table, where []parser.Predicate, params []value.Value) (value.Row, error) {
	byCol := make(map[string]value.Value)
	for _, p := range where {
		if p.Op != parser.OpEq || p.InList != nil {
			return nil, fmt.Errorf("engine: writes require equality predicates on the primary key, got %s", p)
		}
		v, err := evalExpr(p.Right, params)
		if err != nil {
			return nil, err
		}
		byCol[lower(p.Left.Column)] = v
	}
	if len(byCol) != len(t.PrimaryKey) {
		return nil, fmt.Errorf("engine: writes to %s must name exactly the primary key (%v)", t.Name, t.PrimaryKey)
	}
	pk := make(value.Row, len(t.PrimaryKey))
	for i, col := range t.PrimaryKey {
		v, ok := byCol[lower(col)]
		if !ok {
			return nil, fmt.Errorf("engine: writes to %s must constrain primary key column %q", t.Name, col)
		}
		pk[i] = v
	}
	return pk, nil
}

func evalExpr(e parser.Expr, params []value.Value) (value.Value, error) {
	switch e := e.(type) {
	case parser.Literal:
		return e.Val, nil
	case parser.Param:
		if e.Index < 1 || e.Index > len(params) {
			return value.Value{}, fmt.Errorf("engine: parameter %d not supplied (%d given)", e.Index, len(params))
		}
		return params[e.Index-1], nil
	default:
		return value.Value{}, fmt.Errorf("engine: unsupported expression %s", e)
	}
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
