// Package engine assembles the PIQL database library of Figure 2: the
// catalog, the compiler, the execution engine, and the write path, all
// running stateless in the application tier against the key/value store.
package engine

import (
	"fmt"
	"sync"

	"piql/internal/core"
	"piql/internal/exec"
	"piql/internal/index"
	"piql/internal/kvstore"
	"piql/internal/parser"
	"piql/internal/schema"
	"piql/internal/sim"
	"piql/internal/value"
)

// Engine is one application-tier PIQL library instance. It is stateless
// between requests apart from the catalog and compiled-plan cache; all
// data lives in the key/value store.
type Engine struct {
	cluster *kvstore.Cluster
	cat     *schema.Catalog
	maint   *index.Maintainer

	mu       sync.Mutex
	plans    map[string]*Prepared // by SQL text
	built    map[string]bool      // index signatures already backfilled
	defStrat exec.Strategy
}

// New creates an engine over a cluster.
func New(cluster *kvstore.Cluster) *Engine {
	cat := schema.NewCatalog()
	return &Engine{
		cluster:  cluster,
		cat:      cat,
		maint:    index.NewMaintainer(cat),
		plans:    make(map[string]*Prepared),
		built:    make(map[string]bool),
		defStrat: exec.Parallel,
	}
}

// SetDefaultStrategy changes the execution strategy used by sessions
// that do not override it (Section 8.5's executor comparison).
func (e *Engine) SetDefaultStrategy(s exec.Strategy) { e.defStrat = s }

// Catalog exposes the schema catalog (read-mostly).
func (e *Engine) Catalog() *schema.Catalog { return e.cat }

// Cluster exposes the underlying store.
func (e *Engine) Cluster() *kvstore.Cluster { return e.cluster }

// Session is a per-process handle: it owns a key/value client (and thus
// a virtual-time identity in simulated mode).
type Session struct {
	eng    *Engine
	client *kvstore.Client
	strat  exec.Strategy
}

// Session creates a session. proc may be nil for immediate mode.
func (e *Engine) Session(proc *sim.Proc) *Session {
	return &Session{eng: e, client: e.cluster.NewClient(proc), strat: e.defStrat}
}

// SetStrategy overrides the execution strategy for this session.
func (s *Session) SetStrategy(st exec.Strategy) { s.strat = st }

// Client exposes the session's store client (op counting, timing).
func (s *Session) Client() *kvstore.Client { return s.client }

// Exec runs a DDL or DML statement. Queries must go through Prepare.
func (s *Session) Exec(sql string, params ...value.Value) error {
	stmt, err := parser.Parse(sql)
	if err != nil {
		return err
	}
	switch stmt := stmt.(type) {
	case *parser.CreateTable:
		return s.eng.createTable(stmt.Table)
	case *parser.CreateIndex:
		return s.eng.createIndex(s, stmt.Index)
	case *parser.Insert:
		return s.insert(stmt, params)
	case *parser.Update:
		return s.update(stmt, params)
	case *parser.Delete:
		return s.delete(stmt, params)
	case *parser.Select:
		return fmt.Errorf("engine: use Prepare/Query for SELECT statements")
	default:
		return fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

func (e *Engine) createTable(t *schema.Table) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cat.AddTable(t)
}

func (e *Engine) createIndex(s *Session, ix *schema.Index) error {
	e.mu.Lock()
	canonical, err := e.cat.AddIndex(ix)
	e.mu.Unlock()
	if err != nil {
		return err
	}
	return e.ensureBuilt(s, []*schema.Index{canonical})
}

// ensureBuilt backfills any indexes not yet materialized in the store.
func (e *Engine) ensureBuilt(s *Session, ixs []*schema.Index) error {
	for _, ix := range ixs {
		e.mu.Lock()
		done := e.built[ix.Signature()]
		if !done {
			e.built[ix.Signature()] = true
		}
		e.mu.Unlock()
		if done || ix.Primary {
			continue
		}
		if err := e.maint.Backfill(s.client, ix); err != nil {
			return err
		}
	}
	return nil
}

// Prepared is a compiled, reusable query.
type Prepared struct {
	eng  *Engine
	plan *core.Plan
	sql  string
}

// Prepare compiles a SELECT (building any new indexes the plan needs)
// or returns the cached plan for previously prepared text.
func (s *Session) Prepare(sql string) (*Prepared, error) {
	s.eng.mu.Lock()
	if p, ok := s.eng.plans[sql]; ok {
		s.eng.mu.Unlock()
		return p, nil
	}
	s.eng.mu.Unlock()

	stmt, err := parser.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*parser.Select)
	if !ok {
		return nil, fmt.Errorf("engine: Prepare expects a SELECT, got %T", stmt)
	}
	s.eng.mu.Lock()
	plan, err := core.Compile(s.eng.cat, sel)
	s.eng.mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := s.eng.ensureBuilt(s, plan.RequiredIndexes); err != nil {
		return nil, err
	}
	p := &Prepared{eng: s.eng, plan: plan, sql: sql}
	s.eng.mu.Lock()
	s.eng.plans[sql] = p
	s.eng.mu.Unlock()
	return p, nil
}

// Plan exposes the compiled plan (bounds, explain output).
func (p *Prepared) Plan() *core.Plan { return p.plan }

// SQL returns the source text.
func (p *Prepared) SQL() string { return p.sql }

// Execute runs the query and returns all rows (the single page, for
// paginated queries — use Paginate for cursors).
func (p *Prepared) Execute(s *Session, params ...value.Value) (*exec.Result, error) {
	return exec.Run(p.plan, &exec.Ctx{Client: s.client, Params: params, Strategy: s.strat})
}

// Query is shorthand for Prepare + Execute.
func (s *Session) Query(sql string, params ...value.Value) (*exec.Result, error) {
	p, err := s.Prepare(sql)
	if err != nil {
		return nil, err
	}
	return p.Execute(s, params...)
}

// --- write path ---

func (s *Session) insert(stmt *parser.Insert, params []value.Value) error {
	t := s.eng.cat.Table(stmt.Table)
	if t == nil {
		return fmt.Errorf("engine: unknown table %q", stmt.Table)
	}
	row, err := buildRow(t, stmt.Columns, stmt.Values, params)
	if err != nil {
		return err
	}
	return s.eng.maint.Insert(s.client, t, row)
}

func (s *Session) update(stmt *parser.Update, params []value.Value) error {
	t := s.eng.cat.Table(stmt.Table)
	if t == nil {
		return fmt.Errorf("engine: unknown table %q", stmt.Table)
	}
	pk, err := pkFromWhere(t, stmt.Where, params)
	if err != nil {
		return err
	}
	rkey := index.RecordKeyFromPK(t, pk)
	rec, ok := s.client.Get(rkey)
	if !ok {
		return fmt.Errorf("engine: no row in %s with primary key %s", t.Name, pk)
	}
	row, err := value.DecodeRow(rec)
	if err != nil {
		return fmt.Errorf("engine: corrupt record: %w", err)
	}
	for _, a := range stmt.Set {
		ci := t.ColumnIndex(a.Column)
		if ci < 0 {
			return fmt.Errorf("engine: unknown column %q in %s", a.Column, t.Name)
		}
		v, err := evalExpr(a.Value, params)
		if err != nil {
			return err
		}
		row[ci] = v
	}
	// Primary key columns must not change through UPDATE.
	for i, col := range t.PrimaryKey {
		if !value.Equal(row[t.ColumnIndex(col)], pk[i]) {
			return fmt.Errorf("engine: UPDATE may not modify primary key column %q", col)
		}
	}
	return s.eng.maint.Update(s.client, t, row)
}

func (s *Session) delete(stmt *parser.Delete, params []value.Value) error {
	t := s.eng.cat.Table(stmt.Table)
	if t == nil {
		return fmt.Errorf("engine: unknown table %q", stmt.Table)
	}
	pk, err := pkFromWhere(t, stmt.Where, params)
	if err != nil {
		return err
	}
	return s.eng.maint.Delete(s.client, t, pk)
}

// buildRow assembles a full table row from INSERT columns and values.
func buildRow(t *schema.Table, cols []string, exprs []parser.Expr, params []value.Value) (value.Row, error) {
	row := make(value.Row, len(t.Columns))
	if len(cols) == 0 {
		if len(exprs) != len(t.Columns) {
			return nil, fmt.Errorf("engine: INSERT into %s needs %d values, got %d", t.Name, len(t.Columns), len(exprs))
		}
		for i, e := range exprs {
			v, err := evalExpr(e, params)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		return checkTypes(t, row)
	}
	for i, col := range cols {
		ci := t.ColumnIndex(col)
		if ci < 0 {
			return nil, fmt.Errorf("engine: unknown column %q in %s", col, t.Name)
		}
		v, err := evalExpr(exprs[i], params)
		if err != nil {
			return nil, err
		}
		row[ci] = v
	}
	return checkTypes(t, row)
}

func checkTypes(t *schema.Table, row value.Row) (value.Row, error) {
	for i, col := range t.Columns {
		v := row[i]
		if v.IsNull() {
			continue
		}
		if col.Type == value.TypeFloat && v.T == value.TypeInt {
			row[i] = value.Float(float64(v.I))
			continue
		}
		if v.T != col.Type {
			return nil, fmt.Errorf("engine: column %s.%s is %s, got %s", t.Name, col.Name, col.Type, v.T)
		}
		if col.MaxLen > 0 && v.T == value.TypeString && len(v.S) > col.MaxLen {
			return nil, fmt.Errorf("engine: value for %s.%s exceeds VARCHAR(%d)", t.Name, col.Name, col.MaxLen)
		}
	}
	return row, nil
}

// pkFromWhere requires the WHERE clause to be exactly an equality on the
// full primary key — PIQL's scale-independent contract for point writes.
func pkFromWhere(t *schema.Table, where []parser.Predicate, params []value.Value) (value.Row, error) {
	byCol := make(map[string]value.Value)
	for _, p := range where {
		if p.Op != parser.OpEq || p.InList != nil {
			return nil, fmt.Errorf("engine: writes require equality predicates on the primary key, got %s", p)
		}
		v, err := evalExpr(p.Right, params)
		if err != nil {
			return nil, err
		}
		byCol[lower(p.Left.Column)] = v
	}
	if len(byCol) != len(t.PrimaryKey) {
		return nil, fmt.Errorf("engine: writes to %s must name exactly the primary key (%v)", t.Name, t.PrimaryKey)
	}
	pk := make(value.Row, len(t.PrimaryKey))
	for i, col := range t.PrimaryKey {
		v, ok := byCol[lower(col)]
		if !ok {
			return nil, fmt.Errorf("engine: writes to %s must constrain primary key column %q", t.Name, col)
		}
		pk[i] = v
	}
	return pk, nil
}

func evalExpr(e parser.Expr, params []value.Value) (value.Value, error) {
	switch e := e.(type) {
	case parser.Literal:
		return e.Val, nil
	case parser.Param:
		if e.Index < 1 || e.Index > len(params) {
			return value.Value{}, fmt.Errorf("engine: parameter %d not supplied (%d given)", e.Index, len(params))
		}
		return params[e.Index-1], nil
	default:
		return value.Value{}, fmt.Errorf("engine: unsupported expression %s", e)
	}
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'A' <= c && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
