package engine

import (
	"errors"

	"piql/internal/kvstore"
)

// Retryable reports whether err is a transient cluster condition — a
// dead or partitioned replica, an exhausted fence-retry budget against
// an expiring primary, a degraded read — that a caller should retry
// (with backoff) rather than treat as a semantic failure.
//
// The store's failure errors all unwrap to kvstore.ErrTransient, and
// every layer above wraps with %w, so one errors.Is covers the chain:
// a *kvstore.ErrNodeDown inside an "exec: degraded read" inside a
// session error is still retryable. Semantic failures — duplicate key,
// unknown table, malformed query, admission refusal — never carry the
// sentinel and classify as fatal.
func Retryable(err error) bool {
	return errors.Is(err, kvstore.ErrTransient)
}
