package engine

import (
	"fmt"
	"sync"
	"testing"

	"piql/internal/exec"
	"piql/internal/kvstore"
	"piql/internal/sim"
	"piql/internal/value"
)

// TestConcurrentSessions hammers one engine from many goroutines — each
// with its own session — mixing cached and cold Prepares, query
// execution, point writes, and concurrent DDL (CREATE TABLE / CREATE
// INDEX racing the read path). Run under -race it is the engine's
// concurrency proof; the assertions check that results stay correct and
// that every execution respects its plan's static op bound.
func TestConcurrentSessions(t *testing.T) {
	eng, loader := newTestEngine(t, 4)
	loadSCADr(t, loader, 40, 5, 8)

	const goroutines = 16
	const iterations = 30
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := eng.Session(nil)
			fail := func(format string, args ...any) {
				select {
				case errs <- fmt.Errorf(format, args...):
				default:
				}
			}
			for i := 0; i < iterations; i++ {
				// Cold Prepare every few iterations: distinct LIMIT text
				// defeats the plan cache, so the compiler (a catalog
				// writer) runs concurrently with everything else.
				limit := 2 + (g*iterations+i)%7
				sql := fmt.Sprintf(`SELECT * FROM thoughts WHERE owner = ? ORDER BY timestamp DESC LIMIT %d`, limit)
				p, err := s.Prepare(sql)
				if err != nil {
					fail("prepare: %v", err)
					return
				}
				owner := value.Str(fmt.Sprintf("user%03d", (g+i)%40))
				s.Client().ResetOps()
				res, err := p.Execute(s, owner)
				if err != nil {
					fail("execute: %v", err)
					return
				}
				if got := s.Client().Ops(); got > int64(p.Plan().OpBound()) {
					fail("execution used %d ops, plan bound is %d", got, p.Plan().OpBound())
					return
				}
				if len(res.Rows) == 0 || len(res.Rows) > limit {
					fail("thoughts query returned %d rows, want 1..%d", len(res.Rows), limit)
					return
				}
				// Point write with a per-goroutine key: never conflicts.
				ts := int64(100_000 + g*10_000 + i)
				if err := s.Exec(`INSERT INTO thoughts VALUES (?, ?, ?)`,
					owner, value.Int(ts), value.Str("concurrent thought")); err != nil {
					fail("insert: %v", err)
					return
				}
				// Concurrent DDL: every goroutine creates its own table
				// once, and all goroutines race the same CREATE INDEX
				// (the single-flight backfill must build it exactly once).
				if i == 0 {
					ddl := fmt.Sprintf(`CREATE TABLE scratch_%d (k VARCHAR(10), PRIMARY KEY (k))`, g)
					if err := s.Exec(ddl); err != nil {
						fail("create table: %v", err)
						return
					}
					if err := s.Exec(`CREATE INDEX town ON users (hometown)`); err != nil {
						fail("create index: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every racing CREATE INDEX deduplicated to one canonical index.
	town := 0
	for _, ix := range eng.Catalog().Indexes("users") {
		if !ix.Primary {
			town++
		}
	}
	if town != 1 {
		t.Fatalf("expected exactly 1 secondary index on users after racing DDL, got %d", town)
	}
	// And the backfilled index serves correct results.
	s := eng.Session(nil)
	p, err := s.Prepare(`SELECT username FROM users WHERE hometown = ? LIMIT 50`)
	if err != nil {
		t.Fatalf("prepare via new index: %v", err)
	}
	res, err := p.Execute(s, value.Str("Berkeley"))
	if err != nil {
		t.Fatalf("execute via new index: %v", err)
	}
	if len(res.Rows) != 40 {
		t.Fatalf("hometown index query returned %d rows, want 40", len(res.Rows))
	}
	// All goroutine-private tables registered despite racing CoW writers.
	for g := 0; g < goroutines; g++ {
		if eng.Catalog().Table(fmt.Sprintf("scratch_%d", g)) == nil {
			t.Fatalf("table scratch_%d lost in a racing catalog update", g)
		}
	}
}

// TestSimulatedSessionsColdPrepareSameIndex regression-tests a
// deadlock: two virtual-time processes cold-Prepare the same SQL
// needing a new secondary index. The first parks mid-backfill on
// simulated store latency; the second must not block on the
// single-flight channel (it holds the sim scheduler's only token — the
// builder could never resume). It polls the build with a virtual-time
// Yield instead, waiting for the same single-flight result as a real
// goroutine would.
func TestSimulatedSessionsColdPrepareSameIndex(t *testing.T) {
	env := sim.NewEnv()
	cluster := kvstore.New(kvstore.Config{Nodes: 2, ReplicationFactor: 2, Seed: 7}, env)
	eng := New(cluster)
	loader := eng.Session(nil)
	if err := loader.Exec(`CREATE TABLE users (username VARCHAR(20), hometown VARCHAR(30), PRIMARY KEY (username))`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := loader.Exec(`INSERT INTO users VALUES (?, 'Berkeley')`,
			value.Str(fmt.Sprintf("user%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	const sql = `SELECT username FROM users WHERE hometown = ? LIMIT 50`
	var errs [2]error
	var rows [2]int
	for g := 0; g < 2; g++ {
		g := g
		env.Spawn(func(p *sim.Proc) {
			s := eng.Session(p)
			pre, err := s.Prepare(sql)
			if err != nil {
				errs[g] = err
				return
			}
			res, err := pre.Execute(s, value.Str("Berkeley"))
			if err != nil {
				errs[g] = err
				return
			}
			rows[g] = len(res.Rows)
		})
	}
	env.Run(0) // would hang forever on the deadlock
	env.Stop()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("proc %d: %v", g, err)
		}
		if rows[g] != 50 {
			t.Fatalf("proc %d saw %d rows via the new index, want 50", g, rows[g])
		}
	}
}

// TestSetDefaultStrategyConcurrent races SetDefaultStrategy against
// Session creation — the seed read defStrat with no synchronization.
func TestSetDefaultStrategyConcurrent(t *testing.T) {
	eng, _ := newTestEngine(t, 2)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if g%2 == 0 {
					eng.SetDefaultStrategy(exec.Strategy(i % 3))
				} else {
					_ = eng.Session(nil)
				}
			}
		}(g)
	}
	wg.Wait()
}
