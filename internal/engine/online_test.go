package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"piql/internal/index"
	"piql/internal/kvstore"
	"piql/internal/schema"
	"piql/internal/sim"
	"piql/internal/value"
)

// TestCreateIndexUnderConcurrentWrites is the online-index-build proof:
// writers insert rows non-stop while CREATE INDEX runs. Once the index
// is ready, every row — including rows written during the backfill —
// must have its entry. The seed engine documented this as a known
// write-gap ("a writer on the pre-index catalog snapshot may insert a
// row the backfill scan has already passed"); the building→ready
// lifecycle plus the writer drain closes it. Run under -race.
func TestCreateIndexUnderConcurrentWrites(t *testing.T) {
	for round := 0; round < 4; round++ {
		cluster := kvstore.New(kvstore.Config{Nodes: 4, ReplicationFactor: 2, Seed: int64(round + 1)}, nil)
		eng := New(cluster)
		loader := eng.Session(nil)
		if err := loader.Exec(`CREATE TABLE people (name VARCHAR(30), town VARCHAR(30), PRIMARY KEY (name))`); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			if err := loader.Exec(`INSERT INTO people VALUES (?, 'Berkeley')`,
				value.Str(fmt.Sprintf("seed-%04d", i))); err != nil {
				t.Fatal(err)
			}
		}

		const writers = 8
		const perWriter = 400
		var inserted atomic.Int64
		errs := make(chan error, writers)
		var wg sync.WaitGroup
		for g := 0; g < writers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				s := eng.Session(nil)
				for i := 0; i < perWriter; i++ {
					name := fmt.Sprintf("r%d-w%d-%05d", round, g, i)
					if err := s.Exec(`INSERT INTO people VALUES (?, 'Berkeley')`, value.Str(name)); err != nil {
						select {
						case errs <- fmt.Errorf("writer %d: %v", g, err):
						default:
						}
						return
					}
					inserted.Add(1)
				}
			}(g)
		}

		// Let the writers get going, then build the index under them.
		for inserted.Load() < 50 {
		}
		// The index embeds the primary key, so it carries one entry per
		// row (and is exactly the index the final query plans over).
		s := eng.Session(nil)
		if err := s.Exec(`CREATE INDEX town_ix ON people (town, name)`); err != nil {
			t.Fatal(err)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		// The index flipped ready.
		var ix *schema.Index
		for _, cand := range eng.Catalog().Indexes("people") {
			if !cand.Primary {
				ix = cand
			}
		}
		if ix == nil {
			t.Fatal("secondary index missing from catalog")
		}
		if st := eng.Catalog().IndexState(ix); st != schema.StateReady {
			t.Fatalf("index state after CREATE INDEX = %v, want ready", st)
		}

		// Zero missing entries: every record has its index entry.
		tbl := eng.Catalog().Table("people")
		cl := cluster.NewClient(nil)
		prefix := index.RecordPrefix(tbl)
		records := 0
		for _, kv := range cl.GetRange(kvstore.RangeRequest{Start: prefix, End: prefixEnd(prefix)}) {
			row, err := value.DecodeRow(kv.Value)
			if err != nil {
				t.Fatal(err)
			}
			records++
			for _, ekey := range index.EntryKeys(ix, tbl, row) {
				if _, ok := cl.Get(ekey); !ok {
					t.Fatalf("round %d: row %v written during backfill is missing its index entry", round, row)
				}
			}
		}
		if want := int(inserted.Load()) + 300; records != want {
			t.Fatalf("round %d: %d records stored, want %d", round, records, want)
		}

		// And the planner serves the ready index end to end.
		p, err := s.Prepare(`SELECT name FROM people WHERE town = ? LIMIT 10000`)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Execute(s, value.Str("Berkeley"))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != records {
			t.Fatalf("round %d: index query returned %d rows, want %d", round, len(res.Rows), records)
		}
	}
}

// prefixEnd is codec.PrefixEnd without the import cycle concern in this
// test: smallest key greater than every key with the prefix.
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] < 0xff {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// TestSimulatedCreateIndexDrainsWriters is the sim-mode half of the
// online-build guarantee: virtual-time writer processes insert rows
// (parking mid-operation on store latency, catalog snapshot in hand)
// while another process runs CREATE INDEX. The builder used to skip the
// writer drain in simulated mode — blocking on the gate would deadlock
// the cooperative scheduler — so a writer still acting on a pre-index
// snapshot could insert a row the backfill scan had already passed.
// With the yield-based drain the builder waits the writers out in
// virtual time, and the ready index must cover every row, exactly as
// under real goroutines.
func TestSimulatedCreateIndexDrainsWriters(t *testing.T) {
	for round := 0; round < 3; round++ {
		env := sim.NewEnv()
		cluster := kvstore.New(kvstore.Config{Nodes: 4, ReplicationFactor: 2, Seed: int64(31 + round)}, env)
		eng := New(cluster)
		loader := eng.Session(nil)
		if err := loader.Exec(`CREATE TABLE simfolk (name VARCHAR(30), town VARCHAR(30), tag VARCHAR(10), PRIMARY KEY (name))`); err != nil {
			t.Fatal(err)
		}
		// A pre-built index makes every insert pay an entry put *before*
		// its record write — so a simulated writer parks mid-operation
		// with its (possibly pre-index) catalog snapshot in hand. That is
		// the window the drain must close for the index raced below.
		if err := loader.Exec(`CREATE INDEX sim_tag ON simfolk (tag, name)`); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 80; i++ {
			if err := loader.Exec(`INSERT INTO simfolk VALUES (?, 'Berkeley', 't0')`,
				value.Str(fmt.Sprintf("seed-%03d", i))); err != nil {
				t.Fatal(err)
			}
		}
		var total atomic.Int64
		var procErr error
		const writers = 4
		for g := 0; g < writers; g++ {
			g := g
			env.Spawn(func(p *sim.Proc) {
				s := eng.Session(p)
				for i := 0; i < 60; i++ {
					if err := s.Exec(`INSERT INTO simfolk VALUES (?, 'Berkeley', 't1')`,
						value.Str(fmt.Sprintf("w%d-%03d", g, i))); err != nil {
						procErr = fmt.Errorf("writer %d: %v", g, err)
						return
					}
					total.Add(1)
				}
			})
		}
		env.Spawn(func(p *sim.Proc) {
			p.Sleep(2 * time.Millisecond) // land mid-stream
			s := eng.Session(p)
			if err := s.Exec(`CREATE INDEX sim_town ON simfolk (town, name)`); err != nil {
				procErr = fmt.Errorf("create index: %v", err)
			}
		})
		env.Run(0)
		env.Stop()
		if procErr != nil {
			t.Fatal(procErr)
		}

		var ix *schema.Index
		for _, cand := range eng.Catalog().Indexes("simfolk") {
			if cand.Name == "sim_town" {
				ix = cand
			}
		}
		if ix == nil {
			t.Fatal("raced secondary index missing")
		}
		if st := eng.Catalog().IndexState(ix); st != schema.StateReady {
			t.Fatalf("index state %v after simulated build, want ready", st)
		}
		tbl := eng.Catalog().Table("simfolk")
		cl := cluster.NewClient(nil)
		prefix := index.RecordPrefix(tbl)
		records := 0
		for _, kv := range cl.GetRange(kvstore.RangeRequest{Start: prefix, End: prefixEnd(prefix)}) {
			row, err := value.DecodeRow(kv.Value)
			if err != nil {
				t.Fatal(err)
			}
			records++
			for _, ekey := range index.EntryKeys(ix, tbl, row) {
				if _, ok := cl.Get(ekey); !ok {
					t.Fatalf("round %d: row %v written during the simulated backfill is missing its entry", round, row)
				}
			}
		}
		if want := int(total.Load()) + 80; records != want {
			t.Fatalf("round %d: %d records, want %d", round, records, want)
		}
	}
}

// TestCreateIndexRacingDeletesNoDangling proves the post-flip sweep: a
// delete racing the backfill scan can have its entry re-put after the
// row is gone, which previously dangled until a lazy GCDangling pass.
// ensureBuilt now sweeps suspects after the flip and confirms them under
// a writer drain, so once CREATE INDEX and the deleters finish, the
// index must mirror the records exactly — with no GC call here.
func TestCreateIndexRacingDeletesNoDangling(t *testing.T) {
	for round := 0; round < 6; round++ {
		cluster := kvstore.New(kvstore.Config{Nodes: 4, ReplicationFactor: 2, Seed: int64(round + 41)}, nil)
		eng := New(cluster)
		loader := eng.Session(nil)
		if err := loader.Exec(`CREATE TABLE doomed (id VARCHAR(30), tag VARCHAR(20), PRIMARY KEY (id))`); err != nil {
			t.Fatal(err)
		}
		const rows = 3000
		for i := 0; i < rows; i++ {
			if err := loader.Exec(`INSERT INTO doomed VALUES (?, ?)`,
				value.Str(fmt.Sprintf("row-%04d", i)), value.Str(fmt.Sprintf("tag-%02d", i%7))); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		errs := make(chan error, 3)
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				s := eng.Session(nil)
				// Race the backfill, not the loader: hold until the index is
				// registered (building), then delete while its scan re-puts
				// entries — the exact interleaving that used to dangle.
				for len(eng.Catalog().Indexes("doomed")) < 2 {
				}
				for i := g; i < rows; i += 2 { // split the rows between deleters
					if i%3 == 0 {
						continue // leave a third of the table alive
					}
					if err := s.Exec(`DELETE FROM doomed WHERE id = ?`,
						value.Str(fmt.Sprintf("row-%04d", i))); err != nil {
						select {
						case errs <- err:
						default:
						}
						return
					}
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := eng.Session(nil)
			if err := s.Exec(`CREATE INDEX doomed_tag ON doomed (tag, id)`); err != nil {
				select {
				case errs <- err:
				default:
				}
			}
		}()
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}

		var ix *schema.Index
		for _, cand := range eng.Catalog().Indexes("doomed") {
			if !cand.Primary {
				ix = cand
			}
		}
		tbl := eng.Catalog().Table("doomed")
		cl := cluster.NewClient(nil)
		want := make(map[string]bool)
		rp := index.RecordPrefix(tbl)
		for _, kv := range cl.GetRange(kvstore.RangeRequest{Start: rp, End: prefixEnd(rp)}) {
			row, err := value.DecodeRow(kv.Value)
			if err != nil {
				t.Fatal(err)
			}
			for _, ekey := range index.EntryKeys(ix, tbl, row) {
				want[string(ekey)] = true
			}
		}
		ip := index.IndexPrefix(ix)
		for _, kv := range cl.GetRange(kvstore.RangeRequest{Start: ip, End: prefixEnd(ip)}) {
			if !want[string(kv.Key)] {
				t.Fatalf("round %d: dangling entry %q survived the post-flip sweep", round, kv.Key)
			}
			delete(want, string(kv.Key))
		}
		for k := range want {
			t.Fatalf("round %d: record missing its entry %q", round, []byte(k))
		}
	}
}

// TestCreateIndexFailureIsRetryable pins the failed-build path: a
// backfill error leaves the index building (never ready), and a later
// build may retry.
func TestCreateIndexFailureIsRetryable(t *testing.T) {
	cluster := kvstore.New(kvstore.Config{Nodes: 2, ReplicationFactor: 1, Seed: 5}, nil)
	eng := New(cluster)
	s := eng.Session(nil)
	if err := s.Exec(`CREATE TABLE things (id VARCHAR(10), tag VARCHAR(10), PRIMARY KEY (id))`); err != nil {
		t.Fatal(err)
	}
	if err := s.Exec(`INSERT INTO things VALUES ('a', 'x')`); err != nil {
		t.Fatal(err)
	}
	// Corrupt the record so the backfill scan fails.
	tbl := eng.Catalog().Table("things")
	cl := cluster.NewClient(nil)
	var rkey []byte
	for _, kv := range cl.GetRange(kvstore.RangeRequest{Start: index.RecordPrefix(tbl), End: prefixEnd(index.RecordPrefix(tbl))}) {
		rkey = kv.Key
		cl.Put(kv.Key, []byte{0xff, 0xfe, 0xfd})
	}
	err := s.Exec(`CREATE INDEX tag_ix ON things (tag)`)
	if err == nil {
		t.Fatal("CREATE INDEX over a corrupt record succeeded")
	}
	var ix *schema.Index
	for _, cand := range eng.Catalog().Indexes("things") {
		if !cand.Primary {
			ix = cand
		}
	}
	if st := eng.Catalog().IndexState(ix); st != schema.StateBuilding {
		t.Fatalf("failed build left state %v, want building", st)
	}
	// Repair and retry: the single-flight slot was released.
	cl.Put(rkey, value.EncodeRow(value.Row{value.Str("a"), value.Str("x")}))
	if err := s.Exec(`CREATE INDEX tag_ix ON things (tag)`); err != nil {
		t.Fatalf("retry after repair: %v", err)
	}
	if st := eng.Catalog().IndexState(ix); st != schema.StateReady {
		t.Fatalf("state after successful retry = %v, want ready", st)
	}
}
