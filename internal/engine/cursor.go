package engine

import (
	"encoding/binary"
	"fmt"

	"piql/internal/exec"
	"piql/internal/value"
)

// Cursor is a client-side cursor over a PAGINATE query (Section 4.1).
// It is resumable: Serialize captures its full state in a small byte
// string that can be shipped to the user with the page and restored on
// any application server with Engine.RestoreCursor — no server-side
// cursor state exists anywhere.
type Cursor struct {
	prepared *Prepared
	params   value.Row
	resume   exec.ResumeState
	scratch  exec.Scratch // buffers reused across pages (Lazy walk keys)
	done     bool
}

// Paginate opens a cursor over a PAGINATE query.
func (p *Prepared) Paginate(params ...value.Value) (*Cursor, error) {
	if p.plan.PageSize == 0 {
		return nil, fmt.Errorf("engine: %q has no PAGINATE clause", p.sql)
	}
	return &Cursor{prepared: p, params: params}, nil
}

// Next fetches the next page. It returns nil when the cursor is
// exhausted.
func (c *Cursor) Next(s *Session) (*exec.Result, error) {
	if c.done {
		return nil, nil
	}
	ctx := &exec.Ctx{
		Client:   s.client,
		Params:   c.params,
		Strategy: s.strat,
		Resume:   c.resume,
		Scratch:  &c.scratch,
	}
	res, err := exec.Run(c.prepared.plan, ctx)
	if err != nil {
		return nil, err
	}
	if res.More {
		c.resume = res.Resume
	} else {
		c.done = true
	}
	return res, nil
}

// Done reports whether the cursor is exhausted.
func (c *Cursor) Done() bool { return c.done }

// cursorVersion guards the serialized layout.
const cursorVersion = 1

// Serialize captures the cursor's state: query text, parameters, and
// the per-scan resume keys. The result is small — typically under a
// hundred bytes plus the query text.
func (c *Cursor) Serialize() []byte {
	buf := []byte{cursorVersion}
	if c.done {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = appendBytes(buf, []byte(c.prepared.sql))
	buf = appendBytes(buf, value.EncodeRow(c.params))
	buf = binary.AppendUvarint(buf, uint64(len(c.resume)))
	for ord, key := range c.resume {
		buf = binary.AppendUvarint(buf, uint64(ord))
		buf = appendBytes(buf, key)
	}
	return buf
}

// RestoreCursor reconstructs a cursor from Serialize output on any
// engine instance (re-preparing the query if needed).
func (e *Engine) RestoreCursor(s *Session, data []byte) (*Cursor, error) {
	if len(data) < 2 || data[0] != cursorVersion {
		return nil, fmt.Errorf("engine: unsupported cursor version")
	}
	done := data[1] == 1
	rest := data[2:]
	sqlBytes, rest, err := readBytes(rest)
	if err != nil {
		return nil, fmt.Errorf("engine: corrupt cursor: %w", err)
	}
	paramBytes, rest, err := readBytes(rest)
	if err != nil {
		return nil, fmt.Errorf("engine: corrupt cursor: %w", err)
	}
	params, err := value.DecodeRow(paramBytes)
	if err != nil {
		return nil, fmt.Errorf("engine: corrupt cursor params: %w", err)
	}
	n, sz := binary.Uvarint(rest)
	if sz <= 0 {
		return nil, fmt.Errorf("engine: corrupt cursor resume count")
	}
	rest = rest[sz:]
	resume := exec.ResumeState{}
	for i := uint64(0); i < n; i++ {
		ord, sz := binary.Uvarint(rest)
		if sz <= 0 {
			return nil, fmt.Errorf("engine: corrupt cursor resume entry")
		}
		rest = rest[sz:]
		var key []byte
		key, rest, err = readBytes(rest)
		if err != nil {
			return nil, fmt.Errorf("engine: corrupt cursor resume key: %w", err)
		}
		resume[int(ord)] = key
	}
	p, err := s.Prepare(string(sqlBytes))
	if err != nil {
		return nil, err
	}
	if p.plan.PageSize == 0 {
		return nil, fmt.Errorf("engine: restored cursor for non-paginated query")
	}
	c := &Cursor{prepared: p, params: params, done: done}
	if len(resume) > 0 {
		c.resume = resume
	}
	return c, nil
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func readBytes(b []byte) (payload, rest []byte, err error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 || uint64(len(b)-sz) < n {
		return nil, nil, fmt.Errorf("truncated length-prefixed field")
	}
	return b[sz : sz+int(n)], b[sz+int(n):], nil
}
