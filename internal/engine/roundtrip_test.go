package engine

import (
	"fmt"
	"strings"
	"testing"

	"piql/internal/exec"
	"piql/internal/kvstore"
	"piql/internal/value"
)

// Round-trip budget regression tests: every remote operator must cost a
// constant number of batched request sets, independent of its fan-out K.
// The session's op-counting client measures the EXACT number of storage
// requests per (plan, strategy) on a single-node cluster (one partition,
// so a batched request set is exactly one operation and any regression
// to per-stream or per-tuple requests shows up as a higher count).

// newRoundTripFixture builds a deterministic dataset whose fan-outs are
// known: user "u00" has K=3 approved subscriptions; each target user
// owns 12 thoughts and authors 12 articles; hometown "h0" has 3 users.
func newRoundTripFixture(t *testing.T) *Session {
	t.Helper()
	cluster := kvstore.New(kvstore.Config{Nodes: 1, ReplicationFactor: 1, Seed: 2}, nil)
	s := New(cluster).Session(nil)
	for _, ddl := range []string{
		`CREATE TABLE users (username VARCHAR(20), hometown VARCHAR(20), bio VARCHAR(140),
			PRIMARY KEY (username), CARDINALITY LIMIT 5 (hometown))`,
		`CREATE TABLE subscriptions (owner VARCHAR(20), target VARCHAR(20), approved BOOLEAN,
			PRIMARY KEY (owner, target), FOREIGN KEY (target) REFERENCES users, CARDINALITY LIMIT 100 (owner))`,
		`CREATE TABLE thoughts (owner VARCHAR(20), timestamp INT, text VARCHAR(140),
			PRIMARY KEY (owner, timestamp))`,
		`CREATE TABLE articles (id VARCHAR(20), author VARCHAR(20), ts INT, title VARCHAR(60),
			PRIMARY KEY (id), CARDINALITY LIMIT 20 (author))`,
	} {
		if err := s.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	for u := 0; u < 6; u++ {
		name := fmt.Sprintf("u%02d", u)
		home := "h1"
		if u < 3 {
			home = "h0"
		}
		if err := s.Exec(`INSERT INTO users VALUES (?, ?, 'hi')`, value.Str(name), value.Str(home)); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i++ {
			if err := s.Exec(`INSERT INTO thoughts VALUES (?, ?, 'txt')`,
				value.Str(name), value.Int(int64(i))); err != nil {
				t.Fatal(err)
			}
			if err := s.Exec(`INSERT INTO articles VALUES (?, ?, ?, 'title')`,
				value.Str(fmt.Sprintf("a-%s-%02d", name, i)), value.Str(name), value.Int(int64(i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, target := range []string{"u01", "u02", "u03"} { // K = 3 streams
		if err := s.Exec(`INSERT INTO subscriptions VALUES ('u00', ?, true)`, value.Str(target)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestPerOperatorRoundTripBudgets(t *testing.T) {
	s := newRoundTripFixture(t)
	cases := []struct {
		name string
		sql  string
		arg  value.Value
		// Exact expected storage operations per strategy. The batching
		// executors (Simple, Parallel) must stay flat in the fan-out K;
		// Lazy pays per tuple by design (Section 8.5).
		lazy, simple, parallel int64
	}{
		{
			// PKLookup: one key, one request under every strategy.
			name: "pk lookup", arg: value.Str("u01"),
			sql:  `SELECT * FROM users WHERE username = ?`,
			lazy: 1, simple: 1, parallel: 1,
		},
		{
			// Primary IndexScan, LIMIT 10 of 12: one range request batched,
			// ten tuple-at-a-time requests lazy.
			name: "primary index scan", arg: value.Str("u01"),
			sql:  `SELECT * FROM thoughts WHERE owner = ? ORDER BY timestamp DESC LIMIT 10`,
			lazy: 10, simple: 1, parallel: 1,
		},
		{
			// Secondary IndexScan + dereference (3 matching users, bound 5):
			// one entry scan + ONE batched dereference. Lazy: 3 entries + 1
			// empty probe + 3 record gets.
			name: "secondary scan deref", arg: value.Str("h0"),
			sql:  `SELECT * FROM users WHERE hometown = ?`,
			lazy: 7, simple: 2, parallel: 2,
		},
		{
			// IndexFKJoin over K=3 child rows: one child scan + ONE batched
			// join fetch. Lazy: (3 entries + 1 empty probe) + 3 gets.
			name: "fk join", arg: value.Str("u00"),
			sql:  `SELECT u.* FROM subscriptions s JOIN users u WHERE u.username = s.target AND s.owner = ?`,
			lazy: 7, simple: 2, parallel: 2,
		},
		{
			// SortedIndexJoin over the PRIMARY index (thoughtstream), K=3
			// streams of 10: child scan + K per-stream range reads, no
			// dereference. Lazy: (3+1) child + 3x10 tuple fetches.
			name: "sorted join primary", arg: value.Str("u00"),
			sql: `SELECT thoughts.* FROM subscriptions s JOIN thoughts
			      WHERE thoughts.owner = s.target AND s.owner = ? AND s.approved = true
			      ORDER BY thoughts.timestamp DESC LIMIT 10`,
			lazy: 34, simple: 4, parallel: 4,
		},
		{
			// SortedIndexJoin over a SECONDARY index, K=3 streams of 10:
			// child scan + K per-stream entry reads + ONE batched
			// cross-stream dereference — NOT one dereference per stream
			// (which would be 7 = 1+K+K, the pre-batching behavior).
			// Lazy: (3+1) child + 3x10 entries + 30 record gets.
			name: "sorted join secondary", arg: value.Str("u00"),
			sql: `SELECT a.* FROM subscriptions s JOIN articles a
			      WHERE a.author = s.target AND s.owner = ? AND s.approved = true
			      ORDER BY a.ts DESC LIMIT 10`,
			lazy: 64, simple: 5, parallel: 5,
		},
	}
	for _, tc := range cases {
		q, err := s.Prepare(tc.sql)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for strat, want := range map[exec.Strategy]int64{
			exec.Lazy: tc.lazy, exec.Simple: tc.simple, exec.Parallel: tc.parallel,
		} {
			s.SetStrategy(strat)
			s.Client().ResetOps()
			res, err := q.Execute(s, tc.arg)
			if err != nil {
				t.Fatalf("%s (%v): %v", tc.name, strat, err)
			}
			if len(res.Rows) == 0 {
				t.Fatalf("%s (%v): no rows", tc.name, strat)
			}
			if got := s.Client().Ops(); got != want {
				t.Errorf("%s (%v): %d storage ops, want exactly %d", tc.name, strat, got, want)
			}
		}
	}
}

// TestResidualOnJoinedRelation: residual predicates bind relation-local
// column indexes, but operators evaluate them against the combined row
// — the compiler must rebase them by the relation's offset. Before that
// shift, a residual on any non-first relation silently compared the
// wrong column (here u.hometown would have read s.approved's slot).
func TestResidualOnJoinedRelation(t *testing.T) {
	s := newRoundTripFixture(t)
	q, err := s.Prepare(`SELECT u.username, u.hometown FROM subscriptions s JOIN users u
		WHERE u.username = s.target AND s.owner = ? AND u.hometown = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if expl := q.Plan().Explain(); !strings.Contains(expl, "residual: u.hometown") {
		t.Fatalf("expected a hometown residual on the join:\n%s", expl)
	}
	// u00 subscribes to u01, u02 (hometown h0) and u03 (hometown h1).
	res, err := q.Execute(s, value.Str("u00"), value.Str("h0"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2 (u01, u02): %v", len(res.Rows), res.Rows)
	}
	for _, row := range res.Rows {
		if row[1].S != "h0" {
			t.Fatalf("residual leaked row %v", row)
		}
	}
}

// TestPaginatedSortedJoinWithResidual: a residual predicate on a
// paginated SortedIndexJoin (the cardinality-bounded join shape — the
// ordered top-K shape never carries residuals) must compact the
// cursor's per-stream positions in lockstep with the dropped rows. A
// stale position makes the next page resume at a dropped row's key and
// re-return rows the previous page already delivered.
func TestPaginatedSortedJoinWithResidual(t *testing.T) {
	cluster := kvstore.New(kvstore.Config{Nodes: 1, ReplicationFactor: 1, Seed: 4}, nil)
	s := New(cluster).Session(nil)
	for _, ddl := range []string{
		`CREATE TABLE users (username VARCHAR(20), PRIMARY KEY (username))`,
		`CREATE TABLE subscriptions (owner VARCHAR(20), target VARCHAR(20),
			PRIMARY KEY (owner, target), FOREIGN KEY (target) REFERENCES users, CARDINALITY LIMIT 100 (owner))`,
		`CREATE TABLE articles (id VARCHAR(20), author VARCHAR(20), ts INT, title VARCHAR(60),
			PRIMARY KEY (id), CARDINALITY LIMIT 20 (author))`,
	} {
		if err := s.Exec(ddl); err != nil {
			t.Fatal(err)
		}
	}
	// One stream whose entry-key order (by id) matches ts DESC, so the
	// join's page order equals the output order; keep/drop alternates so
	// a page boundary lands right after rows preceded by a dropped one.
	if err := s.Exec(`INSERT INTO users VALUES ('u01')`); err != nil {
		t.Fatal(err)
	}
	if err := s.Exec(`INSERT INTO subscriptions VALUES ('u00', 'u01')`); err != nil {
		t.Fatal(err)
	}
	titles := []string{"drop", "keep", "keep", "drop", "keep", "drop", "keep", "keep"}
	var kept []string
	for i, title := range titles {
		id := fmt.Sprintf("a%d", i)
		if err := s.Exec(`INSERT INTO articles VALUES (?, 'u01', ?, ?)`,
			value.Str(id), value.Int(int64(100-i)), value.Str(title)); err != nil {
			t.Fatal(err)
		}
		if title == "keep" {
			kept = append(kept, id)
		}
	}
	q, err := s.Prepare(`SELECT a.id FROM subscriptions s JOIN articles a
		WHERE a.author = s.target AND s.owner = ? AND a.title <> 'drop'
		ORDER BY a.ts DESC PAGINATE 2`)
	if err != nil {
		t.Fatal(err)
	}
	// The test is only meaningful if the title predicate really is a
	// residual on the SortedIndexJoin (not pushed into a scan).
	if expl := q.Plan().Explain(); !strings.Contains(expl, "SortedIndexJoin") || !strings.Contains(expl, "residual") {
		t.Fatalf("plan does not have a residual sorted join:\n%s", expl)
	}
	cur, err := q.Paginate(value.Str("u00"))
	if err != nil {
		t.Fatal(err)
	}
	var paged []string
	for !cur.Done() {
		res, err := cur.Next(s)
		if err != nil {
			t.Fatal(err)
		}
		if res == nil {
			break
		}
		for _, row := range res.Rows {
			paged = append(paged, row[0].S)
		}
		if len(paged) > 2*len(titles) {
			t.Fatalf("cursor does not terminate: %v", paged)
		}
	}
	if len(paged) != len(kept) {
		t.Fatalf("paged %v, want %v (stale per-stream resume re-returns rows)", paged, kept)
	}
	for i := range kept {
		if paged[i] != kept[i] {
			t.Fatalf("page row %d = %s, want %s", i, paged[i], kept[i])
		}
	}
}

// TestSortedJoinDerefIsBatchedAcrossStreams pins the tentpole invariant
// directly: growing the number of join streams K must grow the batching
// executors' request count by exactly K (the per-stream range reads) and
// not 2K (range reads plus per-stream dereferences).
func TestSortedJoinDerefIsBatchedAcrossStreams(t *testing.T) {
	s := newRoundTripFixture(t)
	q, err := s.Prepare(`SELECT a.* FROM subscriptions s JOIN articles a
		WHERE a.author = s.target AND s.owner = ? AND s.approved = true
		ORDER BY a.ts DESC LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	opsWithK := func(k int) int64 {
		// u00 starts with K=3 targets; add more up to k.
		for extra := 3; extra < k; extra++ {
			target := fmt.Sprintf("u%02d", extra+1)
			if err := s.Exec(`INSERT INTO subscriptions VALUES ('u00', ?, true)`, value.Str(target)); err != nil {
				t.Fatal(err)
			}
		}
		s.SetStrategy(exec.Parallel)
		s.Client().ResetOps()
		if _, err := q.Execute(s, value.Str("u00")); err != nil {
			t.Fatal(err)
		}
		return s.Client().Ops()
	}
	k3, k5 := opsWithK(3), opsWithK(5)
	if k3 != 5 || k5 != 7 {
		t.Fatalf("ops(K=3)=%d ops(K=5)=%d, want 5 and 7: request count must grow by K, not 2K", k3, k5)
	}
}
