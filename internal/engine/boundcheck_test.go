package engine

import (
	"testing"

	"piql/internal/exec"
	"piql/internal/value"
)

// TestStaticBoundCoversMeasuredOps cross-checks the static analyzer
// against the measured request counts of every plan pinned in
// roundtrip_test.go: the bound must be sound (>= what the batching
// executors actually issue) and tight within a documented slack factor
// (so a regression to uselessly loose bounds fails too).
//
// Two deliberate sources of slack, documented per case:
//
//   - declared vs actual cardinality: the bound pays the declared
//     CARDINALITY LIMIT (100 subscriptions per owner, 5 users per
//     hometown), the fixture's actual fan-out is K=3;
//   - logical operations vs requests: the bound counts key/value
//     *operations* (every get in a dereference batch), the op-counting
//     client counts *request sets* — on the single-node fixture a batch
//     of 100 gets lands as one request.
//
// The Lazy executor is outside the bound's contract: it trades round
// trips for memory by design (Section 8.5), issuing one request per
// tuple, and so may exceed the operation bound (e.g. a LIMIT 10 scan
// is 1 bounded operation but 10 lazy requests).
func TestStaticBoundCoversMeasuredOps(t *testing.T) {
	s := newRoundTripFixture(t)
	cases := []struct {
		name string
		sql  string
		arg  value.Value
		// bound pins the analyzer's static operation bound; slack is the
		// maximum allowed bound/measured ratio with its derivation.
		bound int
		slack int
	}{
		{
			// Exact: one key, one get.
			name: "pk lookup", arg: value.Str("u01"),
			sql:   `SELECT * FROM users WHERE username = ?`,
			bound: 1, slack: 1,
		},
		{
			// Exact: one range request regardless of LIMIT.
			name: "primary index scan", arg: value.Str("u01"),
			sql:   `SELECT * FROM thoughts WHERE owner = ? ORDER BY timestamp DESC LIMIT 10`,
			bound: 1, slack: 1,
		},
		{
			// 1 scan + card(hometown)=5 derefs = 6 vs 2 requests: the
			// deref batch is one request (5x), actual matches are 3 of 5.
			name: "secondary scan deref", arg: value.Str("h0"),
			sql:   `SELECT * FROM users WHERE hometown = ?`,
			bound: 6, slack: 3,
		},
		{
			// 1 scan + card(owner)=100 join gets = 101 vs 2 requests:
			// the join batch is one request and K=3 of the declared 100
			// subscriptions exist.
			name: "fk join", arg: value.Str("u00"),
			sql:   `SELECT u.* FROM subscriptions s JOIN users u WHERE u.username = s.target AND s.owner = ?`,
			bound: 101, slack: 51,
		},
		{
			// 1 child scan + card(owner)=100 per-stream ranges = 101 vs
			// 1 + K = 4 requests (K=3 actual streams).
			name: "sorted join primary", arg: value.Str("u00"),
			sql: `SELECT thoughts.* FROM subscriptions s JOIN thoughts
			      WHERE thoughts.owner = s.target AND s.owner = ? AND s.approved = true
			      ORDER BY thoughts.timestamp DESC LIMIT 10`,
			bound: 101, slack: 26,
		},
		{
			// 1 + 100 ranges + 100x10 derefs = 1101 vs 1 + K + 1 = 5
			// requests: K=3 streams, one cross-stream deref batch.
			name: "sorted join secondary", arg: value.Str("u00"),
			sql: `SELECT a.* FROM subscriptions s JOIN articles a
			      WHERE a.author = s.target AND s.owner = ? AND s.approved = true
			      ORDER BY a.ts DESC LIMIT 10`,
			bound: 1101, slack: 221,
		},
	}
	for _, tc := range cases {
		q, err := s.Prepare(tc.sql)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		b := q.Bound()
		if !b.Bounded {
			t.Fatalf("%s: classified unbounded: %s", tc.name, b.Reason)
		}
		if b.Ops != tc.bound {
			t.Errorf("%s: analyzer bound = %d, want %d\n%s", tc.name, b.Ops, tc.bound, b)
		}
		if b.Ops != q.Plan().OpBound() {
			t.Errorf("%s: analyzer bound %d != compiler bound %d", tc.name, b.Ops, q.Plan().OpBound())
		}
		for _, strat := range []exec.Strategy{exec.Simple, exec.Parallel} {
			s.SetStrategy(strat)
			s.Client().ResetOps()
			if _, err := q.Execute(s, tc.arg); err != nil {
				t.Fatalf("%s (%v): %v", tc.name, strat, err)
			}
			measured := int(s.Client().Ops())
			if measured > b.Ops {
				t.Errorf("%s (%v): UNSOUND: measured %d ops exceeds static bound %d", tc.name, strat, measured, b.Ops)
			}
			if b.Ops > tc.slack*measured {
				t.Errorf("%s (%v): bound %d looser than documented %dx slack over measured %d",
					tc.name, strat, b.Ops, tc.slack, measured)
			}
		}
	}
}
