package engine

import (
	"errors"
	"fmt"
	"testing"

	"piql/internal/kvstore"
	"piql/internal/value"
)

// TestRetryableClassification pins the engine's transient-vs-fatal
// split: every typed kvstore degradation — node down, fenced, retry
// budget exhausted — is retryable through any depth of %w wrapping,
// while semantic errors (and nil) are not. Callers build retry loops
// on exactly this predicate, so a misclassification either wedges a
// recoverable operation or spins forever on a permanent failure.
func TestRetryableClassification(t *testing.T) {
	transient := []error{
		&kvstore.ErrNodeDown{Node: 2},
		&kvstore.ErrNodeDown{Node: 1, Partitioned: true},
		&kvstore.ErrFenceExhausted{Op: "testandset", Attempts: 8, Last: &kvstore.ErrNodeDown{Node: 0}},
		&kvstore.ErrFenceExhausted{Op: "write"},
		kvstore.ErrTransient,
	}
	for _, err := range transient {
		if !Retryable(err) {
			t.Errorf("Retryable(%v) = false, want true", err)
		}
		deep := fmt.Errorf("exec: degraded read: %w", fmt.Errorf("engine: update t: %w", err))
		if !Retryable(deep) {
			t.Errorf("Retryable lost the transient marker through wrapping: %v", deep)
		}
	}
	fatal := []error{
		nil,
		errors.New("engine: unknown table nope"),
		fmt.Errorf("parse: %w", errors.New("syntax error")),
	}
	for _, err := range fatal {
		if Retryable(err) {
			t.Errorf("Retryable(%v) = true, want false", err)
		}
	}
}

// TestDegradedReadSurfacesRetryable drives the classification end to
// end: a query against a cluster whose only replicas are unreachable
// fails with an error the engine classifies retryable, while a
// semantic failure from the same session does not.
func TestDegradedReadSurfacesRetryable(t *testing.T) {
	cluster := kvstore.New(kvstore.Config{Nodes: 1, ReplicationFactor: 1, Seed: 9}, nil)
	eng := New(cluster)
	s := eng.Session(nil)
	if err := s.Exec(`CREATE TABLE r (id VARCHAR(10), PRIMARY KEY (id))`); err != nil {
		t.Fatal(err)
	}
	if err := s.Exec(`INSERT INTO r VALUES (?)`, value.Str("a")); err != nil {
		t.Fatal(err)
	}

	cluster.Kill(0)
	_, err := s.Query(`SELECT id FROM r WHERE id = ? LIMIT 1`, value.Str("a"))
	if err == nil {
		t.Fatal("query against a fully-dead replica set returned no error")
	}
	if !Retryable(err) {
		t.Fatalf("degraded read %v does not classify retryable", err)
	}
	var nd *kvstore.ErrNodeDown
	if !errors.As(err, &nd) || nd.Node != 0 {
		t.Fatalf("degraded read does not expose its *ErrNodeDown cause: %v", err)
	}

	cluster.Restart(0)
	if _, err := s.Query(`SELECT id FROM r WHERE id = ? LIMIT 1`, value.Str("a")); err != nil {
		t.Fatalf("query still failing after restart: %v", err)
	}
	if _, err := s.Query(`SELECT id FROM missing WHERE id = ? LIMIT 1`, value.Str("a")); err == nil {
		t.Fatal("query on a missing table returned no error")
	} else if Retryable(err) {
		t.Fatalf("semantic failure %v classifies retryable", err)
	}
}
