// Package btree implements the in-memory ordered map that backs each
// simulated storage node in the key/value store: a classic B-tree over
// []byte keys with ascending and descending range iteration.
//
// The tree is not safe for concurrent use; kvstore.Node serializes access.
package btree

import "bytes"

// degree is the minimum number of children of an internal node. Nodes hold
// between degree-1 and 2*degree-1 items (except the root).
const degree = 32

const maxItems = 2*degree - 1

// Item is a key/value pair stored in the tree.
type Item struct {
	Key   []byte
	Value []byte
}

type node struct {
	items    []Item  // sorted by key
	children []*node // len(children) == len(items)+1 for internal nodes
}

func (n *node) leaf() bool { return len(n.children) == 0 }

// Tree is a B-tree mapping []byte keys to []byte values. The zero value is
// not usable; call New.
type Tree struct {
	root *node
	size int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{}}
}

// Len returns the number of items in the tree.
func (t *Tree) Len() int { return t.size }

// Get returns the value stored under key, or (nil, false).
func (t *Tree) Get(key []byte) ([]byte, bool) {
	n := t.root
	for {
		i, found := search(n.items, key)
		if found {
			return n.items[i].Value, true
		}
		if n.leaf() {
			return nil, false
		}
		n = n.children[i]
	}
}

// search returns the index of the first item >= key and whether it equals key.
func search(items []Item, key []byte) (int, bool) {
	lo, hi := 0, len(items)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(items[mid].Key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(items) && bytes.Equal(items[lo].Key, key) {
		return lo, true
	}
	return lo, false
}

// Put inserts or replaces the value under key and reports whether the key
// was newly inserted. Key and value slices are retained, not copied.
func (t *Tree) Put(key, val []byte) bool {
	if len(t.root.items) == maxItems {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.root.splitChild(0)
	}
	inserted := t.root.insert(key, val)
	if inserted {
		t.size++
	}
	return inserted
}

// insert adds key into the (non-full) subtree rooted at n.
func (n *node) insert(key, val []byte) bool {
	i, found := search(n.items, key)
	if found {
		n.items[i].Value = val
		return false // replaced, not newly inserted
	}
	if n.leaf() {
		n.items = append(n.items, Item{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = Item{Key: key, Value: val}
		return true
	}
	if len(n.children[i].items) == maxItems {
		n.splitChild(i)
		switch c := bytes.Compare(key, n.items[i].Key); {
		case c == 0:
			n.items[i].Value = val
			return false
		case c > 0:
			i++
		}
	}
	return n.children[i].insert(key, val)
}

// splitChild splits the full child at index i, moving its median item up.
func (n *node) splitChild(i int) {
	child := n.children[i]
	median := child.items[degree-1]
	right := &node{
		items: append([]Item(nil), child.items[degree:]...),
	}
	if !child.leaf() {
		right.children = append([]*node(nil), child.children[degree:]...)
		child.children = child.children[:degree]
	}
	child.items = child.items[:degree-1]

	n.items = append(n.items, Item{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Delete removes key from the tree and reports whether it was present.
func (t *Tree) Delete(key []byte) bool {
	removed := t.root.remove(key)
	if len(t.root.items) == 0 && !t.root.leaf() {
		t.root = t.root.children[0]
	}
	if removed {
		t.size--
	}
	return removed
}

func (n *node) remove(key []byte) bool {
	i, found := search(n.items, key)
	if n.leaf() {
		if !found {
			return false
		}
		n.items = append(n.items[:i], n.items[i+1:]...)
		return true
	}
	if found {
		// Replace with predecessor from the left child, then remove it there.
		left := n.children[i]
		if len(left.items) >= degree {
			pred := left.max()
			n.items[i] = pred
			return left.remove(pred.Key)
		}
		right := n.children[i+1]
		if len(right.items) >= degree {
			succ := right.min()
			n.items[i] = succ
			return right.remove(succ.Key)
		}
		n.mergeChildren(i)
		return n.children[i].remove(key)
	}
	child := n.children[i]
	if len(child.items) < degree {
		i = n.fill(i)
		child = n.children[i]
	}
	return child.remove(key)
}

// fill ensures child i has at least degree items before descending,
// borrowing from a sibling or merging. Returns the (possibly shifted)
// child index to descend into.
func (n *node) fill(i int) int {
	if i > 0 && len(n.children[i-1].items) >= degree {
		n.borrowFromLeft(i)
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) >= degree {
		n.borrowFromRight(i)
		return i
	}
	if i == len(n.children)-1 {
		n.mergeChildren(i - 1)
		return i - 1
	}
	n.mergeChildren(i)
	return i
}

func (n *node) borrowFromLeft(i int) {
	child, left := n.children[i], n.children[i-1]
	child.items = append(child.items, Item{})
	copy(child.items[1:], child.items)
	child.items[0] = n.items[i-1]
	n.items[i-1] = left.items[len(left.items)-1]
	left.items = left.items[:len(left.items)-1]
	if !left.leaf() {
		moved := left.children[len(left.children)-1]
		left.children = left.children[:len(left.children)-1]
		child.children = append(child.children, nil)
		copy(child.children[1:], child.children)
		child.children[0] = moved
	}
}

func (n *node) borrowFromRight(i int) {
	child, right := n.children[i], n.children[i+1]
	child.items = append(child.items, n.items[i])
	n.items[i] = right.items[0]
	right.items = append(right.items[:0], right.items[1:]...)
	if !right.leaf() {
		moved := right.children[0]
		right.children = append(right.children[:0], right.children[1:]...)
		child.children = append(child.children, moved)
	}
}

// mergeChildren merges child i, separator item i, and child i+1.
func (n *node) mergeChildren(i int) {
	left, right := n.children[i], n.children[i+1]
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	left.children = append(left.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

func (n *node) min() Item {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

func (n *node) max() Item {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}
