package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%08d", i)) }

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 {
		t.Fatal("new tree not empty")
	}
	if _, ok := tr.Get([]byte("x")); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if tr.Delete([]byte("x")) {
		t.Fatal("Delete on empty tree returned true")
	}
	n := 0
	tr.Ascend(nil, nil, func(Item) bool { n++; return true })
	if n != 0 {
		t.Fatal("Ascend on empty tree visited items")
	}
}

func TestPutGetOverwrite(t *testing.T) {
	tr := New()
	if !tr.Put([]byte("a"), []byte("1")) {
		t.Fatal("first Put not reported as insert")
	}
	if tr.Put([]byte("a"), []byte("2")) {
		t.Fatal("overwrite reported as insert")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	v, ok := tr.Get([]byte("a"))
	if !ok || string(v) != "2" {
		t.Fatalf("Get = %q, %v", v, ok)
	}
}

func TestLargeSequentialAndReverse(t *testing.T) {
	const n = 10000
	for _, reverse := range []bool{false, true} {
		tr := New()
		for i := 0; i < n; i++ {
			j := i
			if reverse {
				j = n - 1 - i
			}
			tr.Put(key(j), key(j))
		}
		if tr.Len() != n {
			t.Fatalf("Len = %d, want %d", tr.Len(), n)
		}
		prev := []byte(nil)
		count := 0
		tr.Ascend(nil, nil, func(it Item) bool {
			if prev != nil && bytes.Compare(prev, it.Key) >= 0 {
				t.Fatalf("out of order: %q then %q", prev, it.Key)
			}
			prev = it.Key
			count++
			return true
		})
		if count != n {
			t.Fatalf("Ascend visited %d, want %d", count, n)
		}
	}
}

func TestRangeBounds(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Put(key(i), nil)
	}
	var got []string
	tr.Ascend(key(10), key(15), func(it Item) bool {
		got = append(got, string(it.Key))
		return true
	})
	want := []string{"key-00000010", "key-00000011", "key-00000012", "key-00000013", "key-00000014"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Descending over the same range.
	got = got[:0]
	tr.Descend(key(10), key(15), func(it Item) bool {
		got = append(got, string(it.Key))
		return true
	})
	for i := range want {
		if got[i] != want[len(want)-1-i] {
			t.Fatalf("descend got %v", got)
		}
	}
	if tr.Count(key(10), key(15)) != 5 {
		t.Fatalf("Count = %d, want 5", tr.Count(key(10), key(15)))
	}
}

func TestEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		tr.Put(key(i), nil)
	}
	n := 0
	tr.Ascend(nil, nil, func(Item) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early stop visited %d, want 7", n)
	}
	n = 0
	tr.Descend(nil, nil, func(Item) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("descend early stop visited %d, want 3", n)
	}
}

func TestDeleteAll(t *testing.T) {
	const n = 5000
	tr := New()
	perm := rand.New(rand.NewSource(7)).Perm(n)
	for _, i := range perm {
		tr.Put(key(i), key(i))
	}
	for _, i := range perm {
		if !tr.Delete(key(i)) {
			t.Fatalf("Delete(%d) = false", i)
		}
		if tr.Delete(key(i)) {
			t.Fatalf("double Delete(%d) = true", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
}

// TestAgainstReferenceModel drives the tree with a random op sequence and
// compares every observable against a map + sorted-slice reference model.
func TestAgainstReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New()
		ref := map[string]string{}
		const keySpace = 200
		for op := 0; op < 500; op++ {
			k := fmt.Sprintf("k%03d", r.Intn(keySpace))
			switch r.Intn(4) {
			case 0, 1: // put
				v := fmt.Sprintf("v%d", op)
				_, existed := ref[k]
				if ins := tr.Put([]byte(k), []byte(v)); ins == existed {
					return false
				}
				ref[k] = v
			case 2: // delete
				_, existed := ref[k]
				if tr.Delete([]byte(k)) != existed {
					return false
				}
				delete(ref, k)
			default: // get
				v, ok := tr.Get([]byte(k))
				rv, rok := ref[k]
				if ok != rok || (ok && string(v) != rv) {
					return false
				}
			}
		}
		if tr.Len() != len(ref) {
			return false
		}
		// Full ascending scan must equal the sorted reference.
		keys := make([]string, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		i := 0
		okScan := true
		tr.Ascend(nil, nil, func(it Item) bool {
			if i >= len(keys) || string(it.Key) != keys[i] || string(it.Value) != ref[keys[i]] {
				okScan = false
				return false
			}
			i++
			return true
		})
		if !okScan || i != len(keys) {
			return false
		}
		// Random subrange, both directions.
		lo := []byte(fmt.Sprintf("k%03d", r.Intn(keySpace)))
		hi := []byte(fmt.Sprintf("k%03d", r.Intn(keySpace)))
		if bytes.Compare(lo, hi) > 0 {
			lo, hi = hi, lo
		}
		var want []string
		for _, k := range keys {
			if k >= string(lo) && k < string(hi) {
				want = append(want, k)
			}
		}
		var gotAsc, gotDesc []string
		tr.Ascend(lo, hi, func(it Item) bool { gotAsc = append(gotAsc, string(it.Key)); return true })
		tr.Descend(lo, hi, func(it Item) bool { gotDesc = append(gotDesc, string(it.Key)); return true })
		if len(gotAsc) != len(want) || len(gotDesc) != len(want) {
			return false
		}
		for i := range want {
			if gotAsc[i] != want[i] || gotDesc[i] != want[len(want)-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPut(b *testing.B) {
	tr := New()
	keys := make([][]byte, b.N)
	for i := range keys {
		keys[i] = key(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(keys[i], keys[i])
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	const n = 100000
	for i := 0; i < n; i++ {
		tr.Put(key(i), key(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(key(i % n))
	}
}
