package btree

import "bytes"

// Ascend visits items with start <= key < end in ascending order, calling
// fn for each; iteration stops early when fn returns false. A nil start
// means "from the beginning"; a nil end means "to the end".
func (t *Tree) Ascend(start, end []byte, fn func(Item) bool) {
	t.root.ascend(start, end, fn)
}

func (n *node) ascend(start, end []byte, fn func(Item) bool) bool {
	i := 0
	if start != nil {
		i, _ = search(n.items, start)
	}
	for ; i < len(n.items); i++ {
		it := n.items[i]
		if !n.leaf() {
			if !n.children[i].ascend(start, end, fn) {
				return false
			}
		}
		if start != nil && bytes.Compare(it.Key, start) < 0 {
			continue
		}
		if end != nil && bytes.Compare(it.Key, end) >= 0 {
			return false
		}
		if !fn(it) {
			return false
		}
		// Items after the first visited one are all >= start; skip the
		// bound check on deeper recursion by clearing start.
		start = nil
	}
	if !n.leaf() {
		return n.children[len(n.items)].ascend(start, end, fn)
	}
	return true
}

// Descend visits items with start <= key < end in descending order
// (greatest first), calling fn for each; stops early when fn returns
// false. Bounds have the same meaning as in Ascend.
func (t *Tree) Descend(start, end []byte, fn func(Item) bool) {
	t.root.descend(start, end, fn)
}

func (n *node) descend(start, end []byte, fn func(Item) bool) bool {
	i := len(n.items)
	if end != nil {
		i, _ = search(n.items, end)
	}
	for ; i > 0; i-- {
		it := n.items[i-1]
		if !n.leaf() {
			if !n.children[i].descend(start, end, fn) {
				return false
			}
		}
		if end != nil && bytes.Compare(it.Key, end) >= 0 {
			continue
		}
		if start != nil && bytes.Compare(it.Key, start) < 0 {
			return false
		}
		if !fn(it) {
			return false
		}
		end = nil
	}
	if !n.leaf() {
		return n.children[0].descend(start, end, fn)
	}
	return true
}

// Count returns the number of items with start <= key < end. Bounds have
// the same meaning as in Ascend.
func (t *Tree) Count(start, end []byte) int {
	n := 0
	t.Ascend(start, end, func(Item) bool {
		n++
		return true
	})
	return n
}
