package index

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"piql/internal/codec"
	"piql/internal/kvstore"
	"piql/internal/schema"
	"piql/internal/value"
)

// CatalogSource yields the current catalog snapshot. A *schema.Catalog
// is its own (static) source; engines whose catalogs evolve via
// copy-on-write pass a live source so writes immediately maintain
// indexes created after the Maintainer was constructed.
type CatalogSource interface {
	Catalog() *schema.Catalog
}

// Maintainer runs the write path for one table against the key/value
// store, keeping every registered secondary index consistent and
// enforcing the schema's uniqueness and cardinality constraints.
//
// A Maintainer holds no per-row state: it is safe for concurrent use as
// long as each call gets its own kvstore.Client and the CatalogSource
// is safe (an atomically published snapshot is). Its only mutable state
// is the build-tombstone registry — the mutex-guarded rendezvous
// between writers deleting entries of a still-building index and that
// index's backfill (see BeginBuildTombstones).
type Maintainer struct {
	src CatalogSource

	// activeBuilds counts open registries so the steady-state delete
	// path (no backfill in flight) pays one atomic load, not a lock.
	activeBuilds atomic.Int32

	// buildTombs records, per in-flight backfill (by index signature),
	// every entry key a writer deleted while the index was building.
	// The backfill's scan snapshot may re-put such an entry after the
	// delete — but backfill entries are stamped at the scan-begin
	// version while the writer's delete tombstones carry later ones, so
	// the store's put-if-newer keeps the re-put from ever resurrecting
	// the entry on any replica. The registry is therefore no longer a
	// repair worklist but the suspect set for the post-build invariant
	// check (VerifyBuildSuspects): each recorded key must end up absent
	// or owned by a write newer than the scan.
	tombMu     sync.Mutex
	buildTombs map[string]map[string]struct{}
}

// NewMaintainer returns a write-path helper over the catalog source.
func NewMaintainer(src CatalogSource) *Maintainer {
	return &Maintainer{src: src}
}

// BeginBuildTombstones opens the tombstone registry for one index
// backfill. From this call until TakeBuildTombstones, every writer that
// deletes entries of the index records their keys first (writers find
// the registry by the index's signature). The builder must open the
// registry before draining writers, so any write that could overlap the
// scan already sees it.
func (m *Maintainer) BeginBuildTombstones(ix *schema.Index) {
	m.tombMu.Lock()
	if m.buildTombs == nil {
		m.buildTombs = make(map[string]map[string]struct{})
	}
	if _, open := m.buildTombs[ix.Signature()]; !open {
		m.buildTombs[ix.Signature()] = make(map[string]struct{})
		m.activeBuilds.Add(1)
	}
	m.tombMu.Unlock()
}

// TakeBuildTombstones closes the registry and returns the entry keys
// deleted while the backfill ran — the exact suspect set for the
// post-build ghost assertion (VerifyBuildSuspects). Returns nil if the
// registry was never opened.
func (m *Maintainer) TakeBuildTombstones(ix *schema.Index) [][]byte {
	m.tombMu.Lock()
	defer m.tombMu.Unlock()
	set, open := m.buildTombs[ix.Signature()]
	if open {
		delete(m.buildTombs, ix.Signature())
		m.activeBuilds.Add(-1)
	}
	if len(set) == 0 {
		return nil
	}
	keys := make([][]byte, 0, len(set))
	for k := range set {
		keys = append(keys, []byte(k))
	}
	return keys
}

// recordBuildTombstones notes entry keys a writer is about to delete,
// when ix has an open backfill registry. Must be called before the
// deletes are issued: a key recorded after the builder collected the
// registry is guaranteed to be deleted after every backfill put of that
// key, which cannot leave a dangle.
func (m *Maintainer) recordBuildTombstones(ix *schema.Index, keys [][]byte) {
	if len(keys) == 0 || m.activeBuilds.Load() == 0 {
		return
	}
	m.tombMu.Lock()
	if set, ok := m.buildTombs[ix.Signature()]; ok {
		for _, k := range keys {
			set[string(k)] = struct{}{}
		}
	}
	m.tombMu.Unlock()
}

// ErrDuplicateKey is returned when an insert collides with an existing
// primary key.
type ErrDuplicateKey struct {
	Table string
	PK    value.Row
}

func (e *ErrDuplicateKey) Error() string {
	return fmt.Sprintf("duplicate primary key %s in table %s", e.PK, e.Table)
}

// ErrCardinalityExceeded is returned when an insert would violate a
// CARDINALITY LIMIT; per Section 7.2 the record is inserted first,
// checked with a count-range request, and removed again on violation.
type ErrCardinalityExceeded struct {
	Table   string
	Columns []string
	Limit   int
}

func (e *ErrCardinalityExceeded) Error() string {
	return fmt.Sprintf("cardinality limit %d on %s(%s) exceeded",
		e.Limit, e.Table, strings.Join(e.Columns, ", "))
}

// secondaryIndexes returns the table's non-primary indexes from one
// catalog snapshot. Each write operation loads the snapshot once and
// threads the index list through, so a concurrent copy-on-write catalog
// publish cannot make one operation see two different index sets (e.g.
// writing entries for one set and rolling back a different one).
//
// Building indexes are included: the write path maintains an index from
// the moment it is registered, which is what lets the backfill flip it
// ready without a write gap (see engine.ensureBuilt).
func (m *Maintainer) secondaryIndexes(t *schema.Table) []*schema.Index {
	_, ixs := m.snapshot(t)
	return ixs
}

// snapshot loads the catalog once and returns it with the table's
// secondary indexes — the per-operation view.
func (m *Maintainer) snapshot(t *schema.Table) (*schema.Catalog, []*schema.Index) {
	cat := m.src.Catalog()
	var ixs []*schema.Index
	for _, ix := range cat.Indexes(t.Name) {
		if !ix.Primary {
			ixs = append(ixs, ix)
		}
	}
	return cat, ixs
}

// Insert writes a full row following the paper's protocol: secondary
// index entries first, then the record via test-and-set (uniqueness),
// then the cardinality count-check (deleting the row again on
// violation). crashAfter optionally injects a crash for recovery tests:
// 0 disables; n > 0 panics after n storage writes.
func (m *Maintainer) Insert(cl *kvstore.Client, t *schema.Table, row value.Row) error {
	if len(row) != len(t.Columns) {
		return fmt.Errorf("index: row has %d values, table %s has %d columns", len(row), t.Name, len(t.Columns))
	}
	cat, ixs := m.snapshot(t)
	rec := value.EncodeRow(row)
	// (1) Insert all secondary index entries (in parallel: ordering only
	// matters between the entries and the record, not among entries).
	putEntries(cl, entryKeysFor(ixs, t, row))
	// (2) Insert the record if absent (uniqueness via test-and-set).
	// TestAndSet is linearizable across rebalances: the store absorbs
	// epoch-fencing retries internally (a fenced decision was never made,
	// so re-running the test is safe), which means a false, error-free
	// return here is always a genuine duplicate — decided by the one
	// authoritative primary — never a routing artifact. Duplicate-key
	// detection and the rollback below rely on that exactness. An error
	// (retry budget exhausted against a dead primary) means no decision
	// was made: surface it without the duplicate rollback — the entries
	// written in (1) stay behind as benign dangling entries that index
	// GC collects, the same class a crash between (1) and (2) leaves.
	rkey := RecordKey(t, row)
	swapped, tasErr := cl.TestAndSet(rkey, nil, rec)
	if tasErr != nil {
		return fmt.Errorf("index: insert %s: %w", t.Name, tasErr)
	}
	if !swapped {
		// Roll back the entries we just wrote. While the colliding row
		// still exists its entries may be shared with ours, so only
		// delete ones the stored row does not also produce. If it was
		// deleted between the failed test-and-set and this read, nothing
		// is shared anymore — delete everything this insert wrote, or the
		// entries would dangle forever.
		if existing, ok := cl.Get(rkey); ok {
			if old, err := value.DecodeRow(existing); err == nil {
				m.deleteStaleEntries(cl, ixs, t, row, old)
			}
		} else {
			m.deleteRowEntries(cl, ixs, t, row)
			// A concurrent insert of the same key may have committed while
			// we were deleting — and its entry keys can coincide with the
			// ones just removed. Restore whatever the winner's row needs.
			// (A winner whose record lands after this read but whose entry
			// puts preceded our deletions remains exposed for that sliver;
			// the alternative — never rolling back — leaked the entries
			// permanently.)
			if rec2, ok := cl.Get(rkey); ok {
				if winner, err := value.DecodeRow(rec2); err == nil {
					putEntries(cl, entryKeysFor(ixs, t, winner))
				}
			}
		}
		pk := make(value.Row, len(t.PrimaryKey))
		for i, col := range t.PrimaryKey {
			pk[i] = row[t.ColumnIndex(col)]
		}
		return &ErrDuplicateKey{Table: t.Name, PK: pk}
	}
	// (3) Check cardinality constraints with count-range requests.
	for _, card := range t.Cardinalities {
		n := m.countMatching(cl, cat, ixs, t, card, row)
		if n > card.Limit {
			// Violation: undo the insert (record first so readers stop
			// seeing it, then entries).
			cl.Delete(rkey)
			m.deleteRowEntries(cl, ixs, t, row)
			return &ErrCardinalityExceeded{Table: t.Name, Columns: card.Columns, Limit: card.Limit}
		}
	}
	return nil
}

// countMatching counts rows sharing the constraint column values with
// row. It uses an index over the constraint columns when one exists
// (the compiler will have created one for any constraint it exploits);
// otherwise it falls back to counting over the record range, which is
// only valid when the constraint columns prefix the primary key.
func (m *Maintainer) countMatching(cl *kvstore.Client, cat *schema.Catalog, ixs []*schema.Index, t *schema.Table, card schema.Cardinality, row value.Row) int {
	if ix := constraintIndex(cat, ixs, card); ix != nil {
		prefix := IndexPrefix(ix)
		for i := range card.Columns {
			f := ix.Fields[i]
			prefix = codec.AppendValue(prefix, row[t.ColumnIndex(f.Column)], f.Desc)
		}
		return cl.CountRange(prefix, codec.PrefixEnd(prefix))
	}
	if m.prefixesPrimaryKey(t, card.Columns) {
		prefix := RecordPrefix(t)
		for _, col := range card.Columns {
			prefix = codec.AppendValue(prefix, row[t.ColumnIndex(col)], false)
		}
		return cl.CountRange(prefix, codec.PrefixEnd(prefix))
	}
	// No efficient path: scan-count via the record range with a filter.
	// Bounded in practice by the constraint itself once enforced.
	prefix := RecordPrefix(t)
	n := 0
	for _, kv := range cl.GetRange(kvstore.RangeRequest{Start: prefix, End: codec.PrefixEnd(prefix)}) {
		other, err := value.DecodeRow(kv.Value)
		if err != nil {
			continue
		}
		match := true
		for _, col := range card.Columns {
			ci := t.ColumnIndex(col)
			if !value.Equal(other[ci], row[ci]) {
				match = false
				break
			}
		}
		if match {
			n++
		}
	}
	return n
}

// constraintIndex finds a ready secondary index whose leading non-token
// fields are exactly the constraint columns, in any order: the count
// scans a prefix bound by equality on every constraint column, so the
// order the index stores them in does not matter. (The match used to be
// positional, rejecting indexes that permute the constraint columns even
// though they serve the count just as well.) A building index must not
// be used — its backfill may not have reached every pre-existing row
// yet, and an undercount would admit constraint-violating inserts; the
// callers' fallback paths count over the records, which are always
// complete.
func constraintIndex(cat *schema.Catalog, ixs []*schema.Index, card schema.Cardinality) *schema.Index {
	for _, ix := range ixs {
		if cat.IndexState(ix) != schema.StateReady {
			continue
		}
		if len(ix.Fields) < len(card.Columns) {
			continue
		}
		ok := true
		for i := range card.Columns {
			f := ix.Fields[i]
			if f.Token || !containsFold(card.Columns, f.Column) {
				ok = false
				break
			}
		}
		if ok && distinctFold(ix.Fields[:len(card.Columns)]) {
			return ix
		}
	}
	return nil
}

// containsFold reports whether cols contains s, case-insensitively.
func containsFold(cols []string, s string) bool {
	for _, c := range cols {
		if strings.EqualFold(c, s) {
			return true
		}
	}
	return false
}

// distinctFold reports whether the fields name pairwise-distinct columns
// (so "leading fields drawn from the constraint columns" implies they
// cover all of them).
func distinctFold(fields []schema.IndexField) bool {
	for i := range fields {
		for j := i + 1; j < len(fields); j++ {
			if strings.EqualFold(fields[i].Column, fields[j].Column) {
				return false
			}
		}
	}
	return true
}

func (m *Maintainer) prefixesPrimaryKey(t *schema.Table, cols []string) bool {
	if len(cols) > len(t.PrimaryKey) {
		return false
	}
	for i, col := range cols {
		if !strings.EqualFold(t.PrimaryKey[i], col) {
			return false
		}
	}
	return true
}

// Update rewrites an existing row (identified by its primary key inside
// newRow): new index entries first, then the record, then stale entry
// deletion — the ordering that tolerates a crash at any point with only
// dangling entries as fallout.
func (m *Maintainer) Update(cl *kvstore.Client, t *schema.Table, newRow value.Row) error {
	ixs := m.secondaryIndexes(t)
	rkey := RecordKey(t, newRow)
	oldRec, ok := cl.Get(rkey)
	if !ok {
		return fmt.Errorf("index: update of missing row in %s", t.Name)
	}
	oldRow, err := value.DecodeRow(oldRec)
	if err != nil {
		return fmt.Errorf("index: corrupt record in %s: %w", t.Name, err)
	}
	// (1) New entries, in parallel.
	putEntries(cl, entryKeysFor(ixs, t, newRow))
	// (2) Record.
	cl.Put(rkey, value.EncodeRow(newRow))
	// (3) Stale entries.
	m.deleteStaleEntries(cl, ixs, t, oldRow, newRow)
	return nil
}

// deleteStaleEntries removes index entries produced by oldRow but not by
// keepRow.
func (m *Maintainer) deleteStaleEntries(cl *kvstore.Client, ixs []*schema.Index, t *schema.Table, oldRow, keepRow value.Row) {
	var stale [][]byte
	for _, ix := range ixs {
		keep := make(map[string]bool)
		for _, key := range EntryKeys(ix, t, keepRow) {
			keep[string(key)] = true
		}
		var ixStale [][]byte
		for _, key := range EntryKeys(ix, t, oldRow) {
			if !keep[string(key)] {
				ixStale = append(ixStale, key)
			}
		}
		m.recordBuildTombstones(ix, ixStale)
		stale = append(stale, ixStale...)
	}
	deleteEntries(cl, stale)
}

// deleteRowEntries removes every entry row produces, recording build
// tombstones first for any index whose backfill is in flight.
func (m *Maintainer) deleteRowEntries(cl *kvstore.Client, ixs []*schema.Index, t *schema.Table, row value.Row) {
	var keys [][]byte
	for _, ix := range ixs {
		eks := EntryKeys(ix, t, row)
		m.recordBuildTombstones(ix, eks)
		keys = append(keys, eks...)
	}
	deleteEntries(cl, keys)
}

// Delete removes a row and its index entries (record first, so readers
// immediately stop seeing it; entries become dangling until removed).
func (m *Maintainer) Delete(cl *kvstore.Client, t *schema.Table, pk value.Row) error {
	ixs := m.secondaryIndexes(t)
	rkey := RecordKeyFromPK(t, pk)
	rec, ok := cl.Get(rkey)
	if !ok {
		return nil // idempotent
	}
	row, err := value.DecodeRow(rec)
	if err != nil {
		return fmt.Errorf("index: corrupt record in %s: %w", t.Name, err)
	}
	cl.Delete(rkey)
	m.deleteRowEntries(cl, ixs, t, row)
	return nil
}

// entryKeysFor collects every secondary index entry key a row produces.
func entryKeysFor(ixs []*schema.Index, t *schema.Table, row value.Row) [][]byte {
	var keys [][]byte
	for _, ix := range ixs {
		keys = append(keys, EntryKeys(ix, t, row)...)
	}
	return keys
}

// putEntries writes entry keys concurrently.
func putEntries(cl *kvstore.Client, keys [][]byte) {
	if len(keys) <= 1 {
		for _, k := range keys {
			cl.Put(k, nil)
		}
		return
	}
	fns := make([]func(*kvstore.Client), len(keys))
	for i, k := range keys {
		k := k
		fns[i] = func(sub *kvstore.Client) { sub.Put(k, nil) }
	}
	cl.Parallel(fns...)
}

// deleteEntries removes entry keys concurrently.
func deleteEntries(cl *kvstore.Client, keys [][]byte) {
	if len(keys) <= 1 {
		for _, k := range keys {
			cl.Delete(k)
		}
		return
	}
	fns := make([]func(*kvstore.Client), len(keys))
	for i, k := range keys {
		k := k
		fns[i] = func(sub *kvstore.Client) { sub.Delete(k) }
	}
	cl.Parallel(fns...)
}

// Backfill builds a newly created secondary index from the existing
// records of its table, returning the scan-begin version its entry
// writes were stamped with. It is the scan half of the online build
// protocol: the index is registered (building) before the scan starts,
// so concurrent writes maintain it, and the caller flips it ready
// afterwards (engine.ensureBuilt, which also drains writers that could
// still hold a pre-registration catalog snapshot).
//
// Every entry the backfill writes is stamped at one version drawn
// before the scan reads anything (PutStamped). That makes the scan a
// consistent "as of" replay: any write racing the build — in
// particular a delete whose entries the stale scan would re-put —
// carries a later version and outranks the backfill on every replica,
// so the delete-racing-backfill dangle (and its replica-diverged ghost
// variant) is structurally impossible rather than swept up afterwards.
// Entry puts are idempotent, so concurrent or duplicate backfills are
// harmless.
func (m *Maintainer) Backfill(cl *kvstore.Client, ix *schema.Index) (kvstore.Version, error) {
	snap := cl.StampVersion()
	return snap, m.BackfillAt(cl, ix, snap)
}

// BackfillAt is Backfill with a caller-drawn scan stamp. The caller
// must draw snap before any write it intends to outrank the scan can
// stamp itself — the engine draws it before opening the build-tombstone
// registry and draining writers, so every write that could race the
// scan (and so every registry suspect) provably carries a version newer
// than snap.
func (m *Maintainer) BackfillAt(cl *kvstore.Client, ix *schema.Index, snap kvstore.Version) error {
	if ix.Primary {
		return nil
	}
	t := m.src.Catalog().Table(ix.Table)
	if t == nil {
		return fmt.Errorf("index: backfill of index on unknown table %q", ix.Table)
	}
	// Scan each partition's primary, not a random replica: under async
	// replication a lagged replica can still show a row whose delete
	// predates the build — no entry tombstone exists for it (the index
	// didn't), so an entry minted from that stale read would dangle
	// with nothing to outrank it.
	prefix := RecordPrefix(t)
	for _, kv := range cl.GetRangePrimary(kvstore.RangeRequest{Start: prefix, End: codec.PrefixEnd(prefix)}) {
		row, err := value.DecodeRow(kv.Value)
		if err != nil {
			return fmt.Errorf("index: corrupt record during backfill of %s: %w", ix.Name, err)
		}
		for _, key := range EntryKeys(ix, t, row) {
			cl.PutStamped(key, nil, snap)
		}
	}
	return nil
}

// GCDangling scans an index for entries whose record no longer exists
// and removes them — the garbage collection the paper mentions for the
// dangling pointers the crash-tolerant ordering can leave behind. It
// returns how many entries were collected.
func (m *Maintainer) GCDangling(cl *kvstore.Client, ix *schema.Index) (int, error) {
	if ix.Primary {
		return 0, nil
	}
	t := m.src.Catalog().Table(ix.Table)
	if t == nil {
		return 0, fmt.Errorf("index: gc of index on unknown table %q", ix.Table)
	}
	prefix := IndexPrefix(ix)
	removed := 0
	for _, kv := range cl.GetRange(kvstore.RangeRequest{Start: prefix, End: codec.PrefixEnd(prefix)}) {
		dangling, err := m.entryDangling(cl, ix, t, kv.Key)
		if err != nil {
			return removed, err
		}
		if dangling {
			cl.Delete(kv.Key)
			removed++
		}
	}
	return removed, nil
}

// entryDangling reports whether the index entry key points at a record
// that no longer exists or no longer produces it (stale after a
// half-completed update). An undecodable record is not dangling — its
// entry may still be live, and deleting on corruption would hide the
// corruption.
func (m *Maintainer) entryDangling(cl *kvstore.Client, ix *schema.Index, t *schema.Table, ekey []byte) (bool, error) {
	pk, err := DecodeEntry(ix, t, ekey)
	if err != nil {
		return false, err
	}
	rec, ok := cl.Get(RecordKeyFromPK(t, pk))
	if !ok {
		return true, nil
	}
	row, err := value.DecodeRow(rec)
	if err != nil {
		return false, nil
	}
	for _, key := range EntryKeys(ix, t, row) {
		if bytes.Equal(key, ekey) {
			return false, nil
		}
	}
	return true, nil
}

// VerifyBuildSuspects asserts the build's ghost invariant over the
// build-tombstone registry's suspects: entry keys writers deleted while
// the backfill ran. Under versioned storage the backfill's re-put of
// such a key is stamped at the scan-begin version (snap) and the
// writer's delete tombstone is stamped later, so put-if-newer already
// guarantees the re-put cannot survive — the pre-versioning protocol
// re-fetched every suspect's record and deleted confirmed dangles here,
// which also had to re-converge replica-diverged ghosts. What remains
// is a version comparison per suspect: each must be absent (the
// tombstone won) or carry a version newer than snap (a live writer
// legitimately re-created it). A suspect still stamped at or before
// snap means a backfill write survived a later delete — a protocol
// violation, returned as an error, never silently repaired.
//
// For the check to be free of false positives the caller must exclude
// concurrent writers (e.g. hold the engine's write gate exclusively, or
// drain them), so no delete is mid-propagation when the versions are
// read. The read goes to each key's authoritative primary — the one
// replica that holds every write synchronously — so a lagged replica
// under async replication can never masquerade as a ghost.
func (m *Maintainer) VerifyBuildSuspects(cl *kvstore.Client, ix *schema.Index, snap kvstore.Version, suspects [][]byte) error {
	if ix.Primary {
		return nil
	}
	for _, ekey := range suspects {
		_, ver, ok := cl.GetVersionedPrimary(ekey)
		if ok && !ver.After(snap) {
			return fmt.Errorf("index: build ghost on %s: entry %q deleted during the backfill still carries scan version %+v (snap %+v)",
				ix.Name, ekey, ver, snap)
		}
	}
	return nil
}
