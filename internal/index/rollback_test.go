package index

import (
	"fmt"
	"sync"
	"testing"

	"piql/internal/codec"
	"piql/internal/kvstore"
	"piql/internal/schema"
	"piql/internal/value"
)

// TestInsertRollbackRacingDelete regression-tests the duplicate-key
// rollback leak: Insert writes its index entries, fails the record
// test-and-set against an existing row, and — before it can read that
// row to compute a shared-entry-aware rollback — a concurrent Delete
// removes it. The seed code took "row gone" as "nothing to roll back"
// and left this insert's entries dangling forever. The fix deletes the
// insert's own entries when the read misses. Run under -race.
//
// The invariant checked after every racing pair quiesces: the index
// holds exactly the entries of the rows that exist — no dangling
// entries, no missing ones.
func TestInsertRollbackRacingDelete(t *testing.T) {
	cat := schema.NewCatalog()
	tab := &schema.Table{
		Name: "docs",
		Columns: []schema.Column{
			{Name: "id", Type: value.TypeString, MaxLen: 20},
			{Name: "tag", Type: value.TypeString, MaxLen: 20},
		},
		PrimaryKey: []string{"id"},
	}
	if err := cat.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	ix, err := cat.AddIndex(&schema.Index{
		Name:   "by_tag",
		Table:  "docs",
		Fields: []schema.IndexField{{Column: "tag"}, {Column: "id"}},
	})
	if err != nil {
		t.Fatal(err)
	}

	cluster := kvstore.New(kvstore.Config{Nodes: 3, ReplicationFactor: 2, Seed: 13}, nil)
	m := NewMaintainer(cat)

	const iterations = 4000
	pk := value.Row{value.Str("contested")}
	var wg sync.WaitGroup
	wg.Add(2)
	var duplicates int
	go func() { // inserter: same primary key, fresh tag every attempt
		defer wg.Done()
		cl := cluster.NewClient(nil)
		for i := 0; i < iterations; i++ {
			row := value.Row{value.Str("contested"), value.Str(fmt.Sprintf("tag-%06d", i))}
			if err := m.Insert(cl, tab, row); err != nil {
				if _, ok := err.(*ErrDuplicateKey); !ok {
					panic(err)
				}
				duplicates++
			}
		}
	}()
	go func() { // deleter: constantly removes the contested row
		defer wg.Done()
		cl := cluster.NewClient(nil)
		for i := 0; i < iterations; i++ {
			if err := m.Delete(cl, tab, pk); err != nil {
				panic(err)
			}
		}
	}()
	wg.Wait()
	if duplicates == 0 {
		t.Fatal("no duplicate-key collisions occurred; the race was never exercised")
	}

	// Quiesced: entries must exactly mirror the surviving records.
	cl := cluster.NewClient(nil)
	live := make(map[string]bool)
	rp := RecordPrefix(tab)
	for _, kv := range cl.GetRange(kvstore.RangeRequest{Start: rp, End: codec.PrefixEnd(rp)}) {
		row, err := value.DecodeRow(kv.Value)
		if err != nil {
			t.Fatal(err)
		}
		for _, ekey := range EntryKeys(ix, tab, row) {
			live[string(ekey)] = true
		}
	}
	ip := IndexPrefix(ix)
	for _, kv := range cl.GetRange(kvstore.RangeRequest{Start: ip, End: codec.PrefixEnd(ip)}) {
		if !live[string(kv.Key)] {
			t.Fatalf("dangling index entry %q leaked by the insert rollback", kv.Key)
		}
		delete(live, string(kv.Key))
	}
	for k := range live {
		t.Fatalf("record entry %q missing from the index", []byte(k))
	}
}

// TestConstraintIndexAnyOrder pins the doc'd behavior: an index whose
// leading fields permute the constraint columns serves the cardinality
// count (the match used to be positional and silently fell back to a
// full-table scan-count).
func TestConstraintIndexAnyOrder(t *testing.T) {
	cat := schema.NewCatalog()
	tab := &schema.Table{
		Name: "subs",
		Columns: []schema.Column{
			{Name: "approved", Type: value.TypeString, MaxLen: 5},
			{Name: "target", Type: value.TypeString, MaxLen: 20},
			{Name: "owner", Type: value.TypeString, MaxLen: 20},
		},
		PrimaryKey:    []string{"owner", "target"},
		Cardinalities: []schema.Cardinality{{Limit: 2, Columns: []string{"owner", "approved"}}},
	}
	if err := cat.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	// Leading fields are the constraint columns in the *other* order.
	if _, err := cat.AddIndex(&schema.Index{
		Name:   "by_approved_owner",
		Table:  "subs",
		Fields: []schema.IndexField{{Column: "approved"}, {Column: "owner"}, {Column: "target"}},
	}); err != nil {
		t.Fatal(err)
	}

	cluster := kvstore.New(kvstore.Config{Nodes: 2, ReplicationFactor: 1, Seed: 3}, nil)
	m := NewMaintainer(cat)
	// While the index is still building its backfill may undercount, so
	// the constraint check must not use it (the record-scan fallback is
	// always complete).
	if got := constraintIndex(cat, m.secondaryIndexes(tab), tab.Cardinalities[0]); got != nil {
		t.Fatalf("constraintIndex used building index %v", got)
	}
	cat.SetIndexReady(tab2Index(cat, "subs", "by_approved_owner"))
	// Once ready, the permuted index serves the constraint (the
	// positional matcher returned nil here and fell back to
	// scan-counting).
	if got := constraintIndex(cat, m.secondaryIndexes(tab), tab.Cardinalities[0]); got == nil || got.Name != "by_approved_owner" {
		t.Fatalf("constraintIndex = %v, want by_approved_owner", got)
	}
	cl := cluster.NewClient(nil)
	insert := func(owner, target, approved string) error {
		return m.Insert(cl, tab, value.Row{value.Str(approved), value.Str(target), value.Str(owner)})
	}
	if err := insert("ann", "t1", "yes"); err != nil {
		t.Fatal(err)
	}
	if err := insert("ann", "t2", "yes"); err != nil {
		t.Fatal(err)
	}
	cl.ResetOps()
	err := insert("ann", "t3", "yes")
	var card *ErrCardinalityExceeded
	if e, ok := err.(*ErrCardinalityExceeded); ok {
		card = e
	}
	if card == nil {
		t.Fatalf("third insert err = %v, want cardinality violation", err)
	}
	// The count must have gone through the permuted index (a bounded
	// count-range on its prefix), not a full record scan. With three
	// 1-partition... the op budget pins it: entries+record+count+undo is
	// far below what a record scan-count of every row would add per row,
	// but assert directly via the index path: a count over the index
	// prefix equals the rows sharing (owner, approved).
	prefix := ScanPrefix(tab2Index(cat, "subs", "by_approved_owner"), value.Row{value.Str("yes"), value.Str("ann")})
	if got := cl.CountRange(prefix, codec.PrefixEnd(prefix)); got != 2 {
		t.Fatalf("index-prefix count = %d, want 2 surviving rows", got)
	}
	// A different owner is unaffected.
	if err := insert("bob", "t1", "yes"); err != nil {
		t.Fatalf("unrelated owner hit the limit: %v", err)
	}
}

func tab2Index(cat *schema.Catalog, table, name string) *schema.Index {
	for _, ix := range cat.Indexes(table) {
		if ix.Name == name {
			return ix
		}
	}
	return nil
}
