package index

import (
	"strings"
	"testing"

	"piql/internal/kvstore"
	"piql/internal/schema"
	"piql/internal/value"
)

// TestBackfillStampLosesToRacingDelete pins the mechanism that makes
// the delete-racing-backfill dangle structurally impossible: backfill
// entry writes are stamped at the scan-begin version, so a delete
// issued after that stamp outranks the backfill's late re-put on every
// replica — regardless of the order the writes land in.
func TestBackfillStampLosesToRacingDelete(t *testing.T) {
	cat, tab := thoughtsTable(t)
	ix, err := cat.AddIndex(&schema.Index{
		Name:   "by_time",
		Table:  "thoughts",
		Fields: []schema.IndexField{{Column: "timestamp"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Primary {
		t.Fatal("fixture index unexpectedly canonicalized as primary")
	}
	cluster := kvstore.New(kvstore.Config{Nodes: 2, ReplicationFactor: 2, Seed: 5}, nil)
	cl := cluster.NewClient(nil)

	row := value.Row{value.Str("ann"), value.Int(7), value.Str("x")}
	ekey := EntryKeys(ix, tab, row)[0]

	snap := cl.StampVersion()      // the backfill's scan-begin stamp
	cl.Delete(ekey)                // a writer's racing delete, stamped later
	cl.PutStamped(ekey, nil, snap) // the backfill's stale re-put lands last
	if _, ok := cl.Get(ekey); ok {
		t.Fatal("backfill's stale stamped put resurrected a deleted entry")
	}

	// VerifyBuildSuspects: the suspect is absent — invariant holds.
	m := NewMaintainer(cat)
	if err := m.VerifyBuildSuspects(cl, ix, snap, [][]byte{ekey}); err != nil {
		t.Fatalf("invariant check failed on a converged suspect: %v", err)
	}
	// A writer re-creating the entry afterwards is legitimate: its stamp
	// is newer than the scan's.
	cl.Put(ekey, nil)
	if err := m.VerifyBuildSuspects(cl, ix, snap, [][]byte{ekey}); err != nil {
		t.Fatalf("invariant check rejected a writer-owned entry: %v", err)
	}

	// And the violation the assertion exists for: an entry still carrying
	// a scan-age version after its delete was recorded means the store
	// broke put-if-newer. Simulate it with a fresh key written only at a
	// pre-snap stamp.
	old := cl.StampVersion()
	snap2 := cl.StampVersion()
	ghost := EntryKeys(ix, tab, value.Row{value.Str("bob"), value.Int(1), value.Str("y")})[0]
	cl.PutStamped(ghost, nil, old)
	err = m.VerifyBuildSuspects(cl, ix, snap2, [][]byte{ghost})
	if err == nil || !strings.Contains(err.Error(), "build ghost") {
		t.Fatalf("invariant check missed a scan-age ghost: %v", err)
	}
}
