// Package index owns the physical storage layout of PIQL data in the
// key/value store — record keys and secondary index entries — and the
// write-path maintenance protocol of Section 7.2: index entries are
// inserted before the record and stale entries deleted after, so a crash
// leaves at worst dangling index entries (never missing ones);
// cardinality constraints are enforced with a count-range check after
// insert; uniqueness uses test-and-set.
package index

import (
	"fmt"
	"strings"
	"sync"

	"piql/internal/codec"
	"piql/internal/core"
	"piql/internal/schema"
	"piql/internal/value"
)

// Key namespaces. Records and index entries live in disjoint regions of
// the key space, both prefixed by a string component so the cluster's
// range partitioning keeps each table/index section contiguous.
const (
	recordNS = "t:"
	indexNS  = "x:"
)

// Tables and indexes are immutable once registered in a catalog (shared
// across snapshots and compiled plans), so their namespace prefixes are
// computed once and cached by identity. Cached slices are capacity-
// clipped: appending to one always reallocates, so callers can extend a
// returned prefix into a full key without clobbering the cache.
var (
	recordPrefixCache sync.Map // *schema.Table -> []byte
	indexPrefixCache  sync.Map // *schema.Index -> []byte
)

// RecordPrefix returns the key prefix of all records of a table.
func RecordPrefix(t *schema.Table) []byte {
	if p, ok := recordPrefixCache.Load(t); ok {
		return p.([]byte)
	}
	p := codec.EncodeKey(value.Row{value.Str(recordNS + strings.ToLower(t.Name))}, nil)
	p = p[:len(p):len(p)]
	recordPrefixCache.Store(t, p)
	return p
}

// RecordKey builds the storage key of the row's record: the table
// namespace followed by the encoded primary key values.
func RecordKey(t *schema.Table, row value.Row) []byte {
	key := RecordPrefix(t)
	for _, pk := range t.PrimaryKey {
		key = codec.AppendValue(key, row[t.ColumnIndex(pk)], false)
	}
	return key
}

// RecordKeyFromPK builds a record key from primary key values directly.
func RecordKeyFromPK(t *schema.Table, pk value.Row) []byte {
	key := RecordPrefix(t)
	for _, v := range pk {
		key = codec.AppendValue(key, v, false)
	}
	return key
}

// IndexPrefix returns the key prefix of all entries of a secondary index.
func IndexPrefix(ix *schema.Index) []byte {
	if p, ok := indexPrefixCache.Load(ix); ok {
		return p.([]byte)
	}
	p := codec.EncodeKey(value.Row{value.Str(indexNS + strings.ToLower(ix.Name))}, nil)
	p = p[:len(p):len(p)]
	indexPrefixCache.Store(ix, p)
	return p
}

// EntryKeys builds the index entry keys a row contributes to ix. Plain
// indexes produce exactly one entry; a tokenized leading field produces
// one entry per distinct token of the column text (the inverted
// full-text index of Section 7.3).
func EntryKeys(ix *schema.Index, t *schema.Table, row value.Row) [][]byte {
	suffix := make([]byte, 0, 64)
	var tokenField *schema.IndexField
	for i := range ix.Fields {
		f := &ix.Fields[i]
		if f.Token {
			if tokenField != nil {
				// Multiple token fields per index are rejected by the
				// catalog; defensive guard.
				panic("index: multiple token fields")
			}
			tokenField = f
			continue
		}
		suffix = codec.AppendValue(suffix, row[t.ColumnIndex(f.Column)], f.Desc)
	}
	if tokenField == nil {
		key := append(IndexPrefix(ix), suffix...)
		return [][]byte{key}
	}
	text := row[t.ColumnIndex(tokenField.Column)]
	toks := core.Tokenize(text.S)
	seen := make(map[string]bool, len(toks))
	var keys [][]byte
	prefix := IndexPrefix(ix)
	for _, tok := range toks {
		if seen[tok] {
			continue
		}
		seen[tok] = true
		key := make([]byte, 0, len(prefix)+1+len(tok)+len(suffix))
		key = append(key, prefix...)
		key = codec.AppendValue(key, value.Str(tok), tokenField.Desc)
		key = append(key, suffix...)
		keys = append(keys, key)
	}
	return keys
}

// entryDesc returns the desc flags of an entry key's components: the
// namespace, then the fields in entry-key order (token first).
func entryDesc(ix *schema.Index) []bool {
	return append([]bool{false}, entryFieldFlags(ix)...)
}

// DecodeEntry extracts the primary key values from a secondary index
// entry key, using the positions of the table's primary key columns
// within the index fields.
func DecodeEntry(ix *schema.Index, t *schema.Table, key []byte) (value.Row, error) {
	vals, err := codec.DecodeKey(key, 1+len(ix.Fields), entryDesc(ix))
	if err != nil {
		return nil, fmt.Errorf("index %s: %w", ix.Name, err)
	}
	// vals[0] = namespace; the token value (if any) comes next; then the
	// non-token field values in field order.
	fieldVal := make(map[string]value.Value)
	pos := 1
	for _, f := range ix.Fields {
		if f.Token {
			pos = 2 // skip the token value: it is not a column value
			break
		}
	}
	for _, f := range ix.Fields {
		if f.Token {
			continue
		}
		fieldVal[strings.ToLower(f.Column)] = vals[pos]
		pos++
	}
	pk := make(value.Row, len(t.PrimaryKey))
	for i, col := range t.PrimaryKey {
		v, ok := fieldVal[strings.ToLower(col)]
		if !ok {
			return nil, fmt.Errorf("index %s does not embed primary key column %s", ix.Name, col)
		}
		pk[i] = v
	}
	return pk, nil
}

// FieldValues decodes all non-token field column values from an entry
// key (used by covering reads of sort columns).
func FieldValues(ix *schema.Index, key []byte) (value.Row, error) {
	n := 1 + len(ix.Fields)
	vals, err := codec.DecodeKey(key, n, entryDesc(ix))
	if err != nil {
		return nil, err
	}
	return vals[1:], nil
}

// ScanPrefix builds the scan prefix for an index access: namespace, then
// the given leading values encoded with the index's field directions.
// For tokenized indexes the first value is the token.
func ScanPrefix(ix *schema.Index, leading value.Row) []byte {
	key := IndexPrefix(ix)
	flags := entryFieldFlags(ix)
	for i, v := range leading {
		key = codec.AppendValue(key, v, flags[i])
	}
	return key
}

// entryFieldFlags returns desc flags in entry-key order (token first).
func entryFieldFlags(ix *schema.Index) []bool {
	var flags []bool
	for _, f := range ix.Fields {
		if f.Token {
			flags = append(flags, f.Desc)
		}
	}
	for _, f := range ix.Fields {
		if !f.Token {
			flags = append(flags, f.Desc)
		}
	}
	return flags
}

// RangeComponentDesc returns the desc flag of the entry component at
// position i (0-based over token-then-nontoken order) — needed to encode
// inequality range bounds.
func RangeComponentDesc(ix *schema.Index, i int) bool {
	flags := entryFieldFlags(ix)
	return flags[i]
}

// NormalizeTokens lower-cases the leading token value of a scan prefix,
// so CONTAINS lookups match the tokenizer's casing regardless of how the
// search word was supplied. Non-token indexes are untouched.
func NormalizeTokens(ix *schema.Index, leading value.Row) {
	for _, f := range ix.Fields {
		if !f.Token {
			continue
		}
		// The token component is always encoded first.
		if len(leading) > 0 && leading[0].T == value.TypeString {
			toks := core.Tokenize(leading[0].S)
			if len(toks) > 0 {
				leading[0] = value.Str(toks[0])
			} else {
				leading[0] = value.Str("")
			}
		}
		return
	}
}

// RowFromCoveringEntry reconstructs a full table row from an entry of a
// covering index — one whose non-token fields include every column of
// the table — writing the columns into dest starting at offset. The
// cost-based baseline's unbounded scans read rows this way without a
// dereference round trip.
func RowFromCoveringEntry(ix *schema.Index, t *schema.Table, key []byte, dest value.Row, offset int) error {
	vals, err := codec.DecodeKey(key, 1+len(ix.Fields), entryDesc(ix))
	if err != nil {
		return fmt.Errorf("index %s: %w", ix.Name, err)
	}
	pos := 1
	for _, f := range ix.Fields {
		if f.Token {
			pos = 2
			break
		}
	}
	seen := make(map[string]bool, len(ix.Fields))
	for _, f := range ix.Fields {
		if f.Token {
			continue
		}
		ci := t.ColumnIndex(f.Column)
		if ci < 0 {
			return fmt.Errorf("index %s: unknown column %s", ix.Name, f.Column)
		}
		dest[offset+ci] = vals[pos]
		seen[strings.ToLower(f.Column)] = true
		pos++
	}
	for _, c := range t.Columns {
		if !seen[strings.ToLower(c.Name)] {
			return fmt.Errorf("index %s does not cover column %s", ix.Name, c.Name)
		}
	}
	return nil
}
