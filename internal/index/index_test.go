package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"piql/internal/schema"
	"piql/internal/value"
)

func thoughtsTable(t *testing.T) (*schema.Catalog, *schema.Table) {
	t.Helper()
	cat := schema.NewCatalog()
	tab := &schema.Table{
		Name: "thoughts",
		Columns: []schema.Column{
			{Name: "owner", Type: value.TypeString, MaxLen: 20},
			{Name: "timestamp", Type: value.TypeInt},
			{Name: "text", Type: value.TypeString, MaxLen: 140},
		},
		PrimaryKey: []string{"owner", "timestamp"},
	}
	if err := cat.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	return cat, tab
}

func TestRecordKeyOrdering(t *testing.T) {
	_, tab := thoughtsTable(t)
	row := func(owner string, ts int64) value.Row {
		return value.Row{value.Str(owner), value.Int(ts), value.Str("x")}
	}
	k1 := RecordKey(tab, row("ann", 5))
	k2 := RecordKey(tab, row("ann", 9))
	k3 := RecordKey(tab, row("bob", 1))
	if !(bytes.Compare(k1, k2) < 0 && bytes.Compare(k2, k3) < 0) {
		t.Fatal("record keys out of order")
	}
	// Prefix containment: all of ann's records under her prefix.
	prefix := RecordPrefix(tab)
	if !bytes.HasPrefix(k1, prefix) {
		t.Fatal("record key missing table prefix")
	}
	if !bytes.Equal(k1, RecordKeyFromPK(tab, value.Row{value.Str("ann"), value.Int(5)})) {
		t.Fatal("RecordKeyFromPK mismatch")
	}
}

func TestEntryKeysAndDecode(t *testing.T) {
	cat, tab := thoughtsTable(t)
	ix, err := cat.AddIndex(&schema.Index{
		Name:  "by_owner_ts_desc",
		Table: "thoughts",
		Fields: []schema.IndexField{
			{Column: "owner"},
			{Column: "timestamp", Desc: true},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	row := value.Row{value.Str("ann"), value.Int(42), value.Str("hello")}
	keys := EntryKeys(ix, tab, row)
	if len(keys) != 1 {
		t.Fatalf("entries = %d", len(keys))
	}
	pk, err := DecodeEntry(ix, tab, keys[0])
	if err != nil {
		t.Fatal(err)
	}
	if pk[0].S != "ann" || pk[1].I != 42 {
		t.Fatalf("decoded pk = %v", pk)
	}
	// DESC component: larger timestamps sort earlier.
	later := EntryKeys(ix, tab, value.Row{value.Str("ann"), value.Int(100), value.Str("x")})[0]
	if bytes.Compare(later, keys[0]) >= 0 {
		t.Fatal("DESC timestamp did not invert entry order")
	}
}

func TestTokenEntryKeys(t *testing.T) {
	cat, tab := thoughtsTable(t)
	ix, err := cat.AddIndex(&schema.Index{
		Name:  "ft",
		Table: "thoughts",
		Fields: []schema.IndexField{
			{Column: "text", Token: true},
			{Column: "owner"},
			{Column: "timestamp"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	row := value.Row{value.Str("ann"), value.Int(7), value.Str("The quick brown fox the QUICK")}
	keys := EntryKeys(ix, tab, row)
	// Distinct lower-cased tokens: the, quick, brown, fox.
	if len(keys) != 4 {
		t.Fatalf("token entries = %d, want 4", len(keys))
	}
	for _, k := range keys {
		pk, err := DecodeEntry(ix, tab, k)
		if err != nil {
			t.Fatal(err)
		}
		if pk[0].S != "ann" || pk[1].I != 7 {
			t.Fatalf("pk from token entry = %v", pk)
		}
		if !bytes.HasPrefix(k, IndexPrefix(ix)) {
			t.Fatal("entry outside index prefix")
		}
	}
	// ScanPrefix for one token selects only that token's entries.
	prefix := ScanPrefix(ix, value.Row{value.Str("quick")})
	matches := 0
	for _, k := range keys {
		if bytes.HasPrefix(k, prefix) {
			matches++
		}
	}
	if matches != 1 {
		t.Fatalf("token prefix matched %d entries", matches)
	}
}

func TestNormalizeTokens(t *testing.T) {
	cat, tab := thoughtsTable(t)
	ix, _ := cat.AddIndex(&schema.Index{
		Name:   "ft2",
		Table:  tab.Name,
		Fields: []schema.IndexField{{Column: "text", Token: true}, {Column: "owner"}, {Column: "timestamp"}},
	})
	leading := value.Row{value.Str("QuIcK")}
	NormalizeTokens(ix, leading)
	if leading[0].S != "quick" {
		t.Fatalf("normalized = %q", leading[0].S)
	}
	// Non-token index untouched.
	plain, _ := cat.AddIndex(&schema.Index{Name: "p", Table: tab.Name,
		Fields: []schema.IndexField{{Column: "owner"}, {Column: "timestamp"}}})
	leading = value.Row{value.Str("MiXeD")}
	NormalizeTokens(plain, leading)
	if leading[0].S != "MiXeD" {
		t.Fatal("non-token index value was modified")
	}
}

// TestEntryDecodeProperty: DecodeEntry inverts EntryKeys for random rows
// and random index shapes over the primary key columns.
func TestEntryDecodeProperty(t *testing.T) {
	cat, tab := thoughtsTable(t)
	ixAsc, _ := cat.AddIndex(&schema.Index{Name: "pa", Table: tab.Name,
		Fields: []schema.IndexField{{Column: "timestamp"}, {Column: "owner"}}})
	ixDesc, _ := cat.AddIndex(&schema.Index{Name: "pd", Table: tab.Name,
		Fields: []schema.IndexField{{Column: "timestamp", Desc: true}, {Column: "owner", Desc: true}}})
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		row := value.Row{
			value.Str(fmt.Sprintf("u%d", r.Intn(1000))),
			value.Int(r.Int63n(1e9)),
			value.Str("body"),
		}
		for _, ix := range []*schema.Index{ixAsc, ixDesc} {
			keys := EntryKeys(ix, tab, row)
			if len(keys) != 1 {
				return false
			}
			pk, err := DecodeEntry(ix, tab, keys[0])
			if err != nil || pk[0].S != row[0].S || pk[1].I != row[1].I {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRowFromCoveringEntry(t *testing.T) {
	cat, tab := thoughtsTable(t)
	cover, err := cat.AddIndex(&schema.Index{Name: "cov", Table: tab.Name,
		Fields: []schema.IndexField{{Column: "text"}, {Column: "owner"}, {Column: "timestamp"}}})
	if err != nil {
		t.Fatal(err)
	}
	row := value.Row{value.Str("ann"), value.Int(5), value.Str("covered")}
	key := EntryKeys(cover, tab, row)[0]
	dest := make(value.Row, 3)
	if err := RowFromCoveringEntry(cover, tab, key, dest, 0); err != nil {
		t.Fatal(err)
	}
	if value.CompareRows(dest, row) != 0 {
		t.Fatalf("reconstructed = %v, want %v", dest, row)
	}
	// Non-covering index errors.
	partial, _ := cat.AddIndex(&schema.Index{Name: "part", Table: tab.Name,
		Fields: []schema.IndexField{{Column: "owner"}, {Column: "timestamp"}}})
	pkey := EntryKeys(partial, tab, row)[0]
	if err := RowFromCoveringEntry(partial, tab, pkey, make(value.Row, 3), 0); err == nil {
		t.Fatal("non-covering index accepted")
	}
}
