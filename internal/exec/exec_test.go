package exec

import (
	"bytes"
	"testing"
)

// Higher-level executor behavior (strategies, residuals, pagination,
// bounds) is exercised end-to-end in internal/engine's tests; these
// cover the package's standalone pieces.

func TestStrategyNames(t *testing.T) {
	cases := map[Strategy]string{
		Lazy:        "LazyExecutor",
		Simple:      "SimpleExecutor",
		Parallel:    "ParallelExecutor",
		Strategy(9): "Strategy(9)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}

func TestStreamResumeRoundTrip(t *testing.T) {
	in := map[string][]byte{
		"prefix-a": {1, 2, 3},
		"prefix-b": {},
		"":         {9},
	}
	out := decodeStreamResume(encodeStreamResume(in))
	if len(out) != len(in) {
		t.Fatalf("lost entries: %v", out)
	}
	for k, v := range in {
		if !bytes.Equal(out[k], v) {
			t.Errorf("key %q: %v != %v", k, out[k], v)
		}
	}
	// Deterministic encoding (sorted keys).
	if !bytes.Equal(encodeStreamResume(in), encodeStreamResume(in)) {
		t.Error("encoding not deterministic")
	}
}

func TestStreamResumeCorruptInputs(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, // huge count
		{2, 5, 'a'},                 // truncated key
		{1, 1, 'k', 5, 1},           // truncated value
		encodeStreamResume(nil)[:0], // empty again
	}
	for i, b := range cases {
		m := decodeStreamResume(b)
		if m == nil {
			t.Errorf("case %d: nil map", i)
		}
	}
}

func TestSuccessor(t *testing.T) {
	k := []byte{1, 2}
	s := successor(k)
	if bytes.Compare(s, k) <= 0 {
		t.Fatal("successor not greater")
	}
	if bytes.Compare(s, []byte{1, 2, 1}) >= 0 {
		t.Fatal("successor not tight")
	}
	// Input must not be aliased.
	s[0] = 99
	if k[0] != 1 {
		t.Fatal("successor aliased its input")
	}
}
