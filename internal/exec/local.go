package exec

import (
	"fmt"
	"sort"

	"piql/internal/core"
	"piql/internal/parser"
	"piql/internal/value"
)

// runSelection filters in the application tier.
func (e *executor) runSelection(n *core.LocalSelection) ([]value.Row, error) {
	rows, err := e.run(n.ChildPlan)
	if err != nil {
		return nil, err
	}
	return e.filterResidual(rows, n.Preds)
}

// runSort orders the bounded input.
func (e *executor) runSort(n *core.LocalSort) ([]value.Row, error) {
	rows, err := e.run(n.ChildPlan)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(rows, func(a, b int) bool {
		return lessBySortKeys(rows[a], rows[b], n.Keys)
	})
	return rows, nil
}

// runStop truncates after K rows.
func (e *executor) runStop(n *core.LocalStop) ([]value.Row, error) {
	rows, err := e.run(n.ChildPlan)
	if err != nil {
		return nil, err
	}
	if len(rows) > n.K {
		rows = rows[:n.K]
	}
	return rows, nil
}

// runProject maps combined rows to output rows.
func (e *executor) runProject(n *core.LocalProject) ([]value.Row, error) {
	rows, err := e.run(n.ChildPlan)
	if err != nil {
		return nil, err
	}
	out := make([]value.Row, len(rows))
	for i, row := range rows {
		proj := make(value.Row, len(n.Cols))
		for j, c := range n.Cols {
			proj[j] = row[c]
		}
		out[i] = proj
	}
	return out, nil
}

// aggState accumulates one group.
type aggState struct {
	groupVals value.Row
	count     int64
	sums      []float64
	intSums   []int64
	isFloat   []bool
	mins      value.Row
	maxs      value.Row
	counts    []int64 // per-agg non-null counts (for AVG)
	first     value.Row
}

// runAgg computes grouped aggregates over the bounded input in the
// client tier, as Section 7.1 prescribes.
func (e *executor) runAgg(n *core.LocalAgg) ([]value.Row, error) {
	rows, err := e.run(n.ChildPlan)
	if err != nil {
		return nil, err
	}
	groups := make(map[string]*aggState)
	var order []string
	for _, row := range rows {
		gv := make(value.Row, len(n.GroupBy))
		for i, c := range n.GroupBy {
			gv[i] = row[c]
		}
		key := string(value.EncodeRow(gv))
		st, ok := groups[key]
		if !ok {
			st = &aggState{
				groupVals: gv,
				sums:      make([]float64, len(n.Aggs)),
				intSums:   make([]int64, len(n.Aggs)),
				isFloat:   make([]bool, len(n.Aggs)),
				mins:      make(value.Row, len(n.Aggs)),
				maxs:      make(value.Row, len(n.Aggs)),
				counts:    make([]int64, len(n.Aggs)),
				first:     row,
			}
			groups[key] = st
			order = append(order, key)
		}
		st.count++
		for i, a := range n.Aggs {
			if a.Col < 0 || a.Kind == parser.AggNone || a.Kind == parser.AggCount {
				continue
			}
			v := row[a.Col]
			if v.IsNull() {
				continue
			}
			st.counts[i]++
			switch v.T {
			case value.TypeInt:
				st.intSums[i] += v.I
				st.sums[i] += float64(v.I)
			case value.TypeFloat:
				st.isFloat[i] = true
				st.sums[i] += v.F
			default:
				if a.Kind == parser.AggSum || a.Kind == parser.AggAvg {
					return nil, fmt.Errorf("exec: %s over non-numeric column %s", a.Kind, a.Name)
				}
			}
			if st.counts[i] == 1 || value.Compare(v, st.mins[i]) < 0 {
				st.mins[i] = v
			}
			if st.counts[i] == 1 || value.Compare(v, st.maxs[i]) > 0 {
				st.maxs[i] = v
			}
		}
	}
	out := make([]value.Row, 0, len(groups))
	for _, key := range order {
		st := groups[key]
		row := make(value.Row, len(n.Aggs))
		for i, a := range n.Aggs {
			switch a.Kind {
			case parser.AggNone:
				row[i] = st.first[a.Col]
			case parser.AggCount:
				if a.Col < 0 {
					row[i] = value.Int(st.count)
				} else {
					row[i] = value.Int(st.counts[i])
				}
			case parser.AggSum:
				if st.isFloat[i] {
					row[i] = value.Float(st.sums[i])
				} else {
					row[i] = value.Int(st.intSums[i])
				}
			case parser.AggAvg:
				if st.counts[i] == 0 {
					row[i] = value.Null()
				} else {
					row[i] = value.Float(st.sums[i] / float64(st.counts[i]))
				}
			case parser.AggMin:
				if st.counts[i] == 0 {
					row[i] = value.Null()
				} else {
					row[i] = st.mins[i]
				}
			case parser.AggMax:
				if st.counts[i] == 0 {
					row[i] = value.Null()
				} else {
					row[i] = st.maxs[i]
				}
			}
		}
		out = append(out, row)
	}
	return out, nil
}
