// Package exec is the PIQL execution engine (Section 7): it runs
// compiled physical plans against the key/value store. Remote operators
// exploit the compiler's limit hints to batch their requests and can
// issue them in parallel; the three strategies of Section 8.5 —
// LazyExecutor, SimpleExecutor, ParallelExecutor — differ only in how
// those requests are issued.
//
// Because every compiled plan is statically bounded, operators
// materialize their (small) outputs; the Rows facade exposes the
// classic open/next/close iterator interface on top.
package exec

import (
	"fmt"

	"piql/internal/core"
	"piql/internal/kvstore"
	"piql/internal/value"
)

// Strategy selects how remote operators issue key/value requests.
type Strategy int

const (
	// Lazy requests one tuple at a time, like a traditional disk-based
	// engine — no batching, no parallelism.
	Lazy Strategy = iota
	// Simple batches each operator's requests using the compiler's limit
	// hints but waits for each batch before issuing the next.
	Simple
	// Parallel batches and issues all of an operator's requests to the
	// key/value store concurrently (the default).
	Parallel
)

// String returns the executor name used in the paper's Figure 12.
func (s Strategy) String() string {
	switch s {
	case Lazy:
		return "LazyExecutor"
	case Simple:
		return "SimpleExecutor"
	case Parallel:
		return "ParallelExecutor"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Ctx carries one execution's environment.
type Ctx struct {
	Client   *kvstore.Client
	Params   []value.Value
	Strategy Strategy
	// Resume holds per-remote-operator resume keys for paginated
	// queries; nil means start from the beginning. Run replaces it with
	// the state to pass to the next page.
	Resume ResumeState
	// Scratch optionally carries buffers reused across executions. A
	// Cursor threads the same Scratch through every page, so the Lazy
	// strategy's tuple-at-a-time pagination walk reuses one successor-key
	// buffer across all Next calls instead of allocating per tuple.
	Scratch *Scratch
}

// Scratch is a reusable buffer set for repeated executions of the same
// query (one page after another through a Cursor). The zero value is
// ready to use; a Scratch must not be shared between concurrent
// executions.
type Scratch struct {
	key []byte // successor-key buffer for the Lazy tuple-at-a-time walk
}

// ResumeState maps a remote operator's ordinal (leaf first) to the
// serialized position after the last tuple it returned. It is the whole
// of a client-side cursor's stored state, matching the paper's
// observation that only the last key of each uncompleted index scan
// needs to be remembered.
type ResumeState map[int][]byte

// Result is one (fully materialized) query result page.
type Result struct {
	// Rows are the projected output rows.
	Rows []value.Row
	// Names are the output column names.
	Names []string
	// More reports whether a paginated query may have further pages.
	More bool
	// Resume is the cursor state for the next page (nil when done or
	// not paginated).
	Resume ResumeState
}

// Run executes a compiled plan and returns its result (one page, for
// paginated queries).
func Run(plan *core.Plan, ctx *Ctx) (*Result, error) {
	if ctx.Params == nil {
		ctx.Params = value.Row{}
	}
	if len(ctx.Params) < plan.NumParams {
		return nil, fmt.Errorf("exec: query needs %d parameters, got %d", plan.NumParams, len(ctx.Params))
	}
	e := &executor{plan: plan, ctx: ctx, driverOrd: plan.PaginationDriver()}
	if plan.PageSize > 0 {
		e.nextResume = ResumeState{}
	}
	// Store reads degrade silently when replicas are down: a Get against
	// an unreachable partition reads as a miss and the client records the
	// condition on the side (Client.TakeErr). Clear any stale record from
	// an earlier operation, then surface what this execution deposits —
	// otherwise a partitioned range would quietly subtract rows from the
	// result instead of failing the query with a retryable error.
	e.ctx.Client.TakeErr()
	rows, err := e.run(plan.Root)
	if err != nil {
		return nil, err
	}
	if derr := e.ctx.Client.TakeErr(); derr != nil {
		return nil, fmt.Errorf("exec: degraded read: %w", derr)
	}
	res := &Result{Rows: rows, Names: plan.OutputNames}
	if plan.PageSize > 0 {
		res.More = len(rows) == plan.PageSize
		if res.More {
			res.Resume = e.nextResume
		}
	}
	return res, nil
}

type executor struct {
	plan       *core.Plan
	ctx        *Ctx
	remoteSeq  int
	nextResume ResumeState
	driverOrd  int
}

// nextRemoteOrdinal returns the next remote operator's ordinal and its
// incoming resume key. Remote ordinals are assigned leaf-first in
// execution order, matching plan.RemoteOps. Only the pagination-driving
// operator (plan.PaginationDriver) receives and stores resume state.
func (e *executor) nextRemoteOrdinal() (ord int, resume []byte) {
	ord = e.remoteSeq
	e.remoteSeq++
	if e.ctx.Resume != nil && ord == e.driverOrd {
		resume = e.ctx.Resume[ord]
	}
	return ord, resume
}

// storeResume records an operator's outgoing cursor position if it is
// the pagination driver (non-paginated executions keep no cursor state).
func (e *executor) storeResume(ord int, key []byte) {
	if e.nextResume != nil && ord == e.driverOrd && key != nil {
		e.nextResume[ord] = key
	}
}

func (e *executor) run(n core.Physical) ([]value.Row, error) {
	switch n := n.(type) {
	case *core.PKLookup:
		return e.runPKLookup(n)
	case *core.IndexScan:
		return e.runIndexScan(n)
	case *core.IndexFKJoin:
		return e.runFKJoin(n)
	case *core.SortedIndexJoin:
		return e.runSortedJoin(n)
	case *core.LocalSelection:
		return e.runSelection(n)
	case *core.LocalSort:
		return e.runSort(n)
	case *core.LocalStop:
		return e.runStop(n)
	case *core.LocalProject:
		return e.runProject(n)
	case *core.LocalAgg:
		return e.runAgg(n)
	default:
		return nil, fmt.Errorf("exec: unknown physical operator %T", n)
	}
}

// evalPreds reports whether row passes every predicate.
func (e *executor) evalPreds(row value.Row, preds []core.LocalPred) (bool, error) {
	for _, p := range preds {
		ok, err := p.Eval(row, e.ctx.Params)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// filterResidual applies an operator's residual predicates.
func (e *executor) filterResidual(rows []value.Row, preds []core.LocalPred) ([]value.Row, error) {
	if len(preds) == 0 {
		return rows, nil
	}
	out := rows[:0]
	for _, row := range rows {
		keep, err := e.evalPreds(row, preds)
		if err != nil {
			return nil, err
		}
		if keep {
			out = append(out, row)
		}
	}
	return out, nil
}

// newRow allocates a combined row of the plan's width.
func (e *executor) newRow() value.Row {
	return make(value.Row, e.plan.RowWidth)
}

// placeRecord decodes a stored record directly into the combined row at
// the table's offset — no intermediate row allocation.
func placeRecord(row value.Row, offset int, rec []byte) error {
	if _, err := value.DecodeRowInto(row[offset:], rec); err != nil {
		return fmt.Errorf("exec: corrupt record: %w", err)
	}
	return nil
}

// getBatch resolves record keys according to the strategy: Lazy issues
// one Get per key (tuple at a time, the paper's strawman); Simple issues
// one batched request set with the per-node batches sequential; Parallel
// issues them concurrently. Missing keys yield nil entries.
func (e *executor) getBatch(keys [][]byte) [][]byte {
	switch e.ctx.Strategy {
	case Lazy:
		recs := make([][]byte, len(keys))
		for i, k := range keys {
			if v, ok := e.ctx.Client.Get(k); ok {
				recs[i] = v
			}
		}
		return recs
	case Simple:
		return e.ctx.Client.MultiGetSeq(keys)
	default:
		return e.ctx.Client.MultiGet(keys)
	}
}
