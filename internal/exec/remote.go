package exec

import (
	"encoding/binary"
	"sort"

	"piql/internal/codec"
	"piql/internal/core"
	"piql/internal/index"
	"piql/internal/kvstore"
	"piql/internal/schema"
	"piql/internal/value"
)

// runPKLookup fetches at most one record per key.
func (e *executor) runPKLookup(n *core.PKLookup) ([]value.Row, error) {
	e.nextRemoteOrdinal() // PKLookup has no resumable position
	keys := make([][]byte, 0, len(n.Keys))
	for _, spec := range n.Keys {
		pk, err := spec.Eval(e.ctx.Params, nil)
		if err != nil {
			return nil, err
		}
		keys = append(keys, index.RecordKeyFromPK(n.Table, pk))
	}
	recs := e.getBatch(keys)
	var rows []value.Row
	for _, rec := range recs {
		if rec == nil {
			continue
		}
		row := e.newRow()
		if err := placeRecord(row, n.TableOffset, rec); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return e.filterResidual(rows, n.Residual)
}

// scanBounds computes the byte range of an index scan from its equality
// prefix and optional inequality bounds, honoring the direction of the
// range component's encoding.
func scanBounds(n *core.IndexScan, params []value.Value) (start, end []byte, err error) {
	eq, err := core.KeySpec(n.Eq).Eval(params, nil)
	if err != nil {
		return nil, nil, err
	}
	index.NormalizeTokens(n.Index, eq)
	var prefix []byte
	var compDesc bool
	if n.Index.Primary {
		prefix = index.RecordPrefix(n.Table)
		for _, v := range eq {
			prefix = codec.AppendValue(prefix, v, false)
		}
		compDesc = false
	} else {
		prefix = index.ScanPrefix(n.Index, eq)
		if n.Lower != nil || n.Upper != nil {
			compDesc = index.RangeComponentDesc(n.Index, len(eq))
		}
	}
	start, end = prefix, codec.PrefixEnd(prefix)

	bound := func(b *core.RangeBound, desc bool) ([]byte, error) {
		v, err := b.Expr.Eval(params, nil)
		if err != nil {
			return nil, err
		}
		return codec.AppendValue(append([]byte{}, prefix...), v, desc), nil
	}
	// In value space Lower/Upper are fixed; in byte space a descending
	// component swaps their roles.
	lo, hi := n.Lower, n.Upper
	if compDesc {
		lo, hi = hi, lo
	}
	if lo != nil {
		k, err := bound(lo, compDesc)
		if err != nil {
			return nil, nil, err
		}
		if lo.Inclusive {
			start = k
		} else {
			start = codec.PrefixEnd(k)
		}
	}
	if hi != nil {
		k, err := bound(hi, compDesc)
		if err != nil {
			return nil, nil, err
		}
		if hi.Inclusive {
			end = codec.PrefixEnd(k)
		} else {
			end = k
		}
	}
	return start, end, nil
}

// fetchRange reads up to limit entries of [start, end), honoring the
// strategy: Lazy fetches one entry per request; Simple fetches the whole
// batch in one request, walking partitions sequentially; Parallel
// scatter-gathers the per-partition scans concurrently. limit <= 0 means
// "everything" (cost-based unbounded plans only).
func (e *executor) fetchRange(start, end []byte, limit int, reverse bool) []kvstore.KV {
	req := kvstore.RangeRequest{Start: start, End: end, Limit: limit, Reverse: reverse}
	switch {
	case e.ctx.Strategy == Parallel:
		return e.ctx.Client.GetRangeScatter(req)
	case e.ctx.Strategy != Lazy || limit <= 0:
		return e.ctx.Client.GetRange(req)
	}
	// Tuple-at-a-time walk: each fetched key becomes the next request's
	// start bound. The successor key lives in a scratch buffer reused
	// across tuples — and, when the caller threads a Scratch through
	// (Cursor pagination), across pages — so the walk's only per-tuple
	// cost is the request itself, not an allocation. Rebinding the
	// buffer between iterations is safe: GetRange reads its bounds only
	// for the duration of the call.
	var buf []byte
	if e.ctx.Scratch != nil {
		buf = e.ctx.Scratch.key
	}
	var out []kvstore.KV
	for len(out) < limit {
		kvs := e.ctx.Client.GetRange(kvstore.RangeRequest{Start: start, End: end, Limit: 1, Reverse: reverse})
		if len(kvs) == 0 {
			break
		}
		out = append(out, kvs[0])
		if reverse {
			end = kvs[0].Key
		} else {
			buf = append(buf[:0], kvs[0].Key...)
			buf = append(buf, 0x00)
			start = buf
		}
	}
	if e.ctx.Scratch != nil {
		e.ctx.Scratch.key = buf
	}
	return out
}

// successor returns the smallest key greater than k.
func successor(k []byte) []byte {
	return append(append([]byte{}, k...), 0x00)
}

// runIndexScan reads one contiguous index section.
func (e *executor) runIndexScan(n *core.IndexScan) ([]value.Row, error) {
	ord, resume := e.nextRemoteOrdinal()
	start, end, err := scanBounds(n, e.ctx.Params)
	if err != nil {
		return nil, err
	}
	reverse := !n.Ascending
	if resume != nil {
		if reverse {
			end = resume
		} else {
			start = successor(resume)
		}
	}
	limit := 0
	if !n.Unbounded {
		limit = n.LimitHint
		if limit == 0 {
			limit = n.DataStopCard
		}
	}
	kvs := e.fetchRange(start, end, limit, reverse)
	if len(kvs) > 0 {
		e.storeResume(ord, kvs[len(kvs)-1].Key)
	} else {
		e.storeResume(ord, resume)
	}

	var rows []value.Row
	switch {
	case n.Index.Primary:
		for _, kv := range kvs {
			row := e.newRow()
			if err := placeRecord(row, n.TableOffset, kv.Value); err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	case !n.NeedDeref:
		// Covering index: every column is embedded in the entry key.
		for _, kv := range kvs {
			row := e.newRow()
			if err := index.RowFromCoveringEntry(n.Index, n.Table, kv.Key, row, n.TableOffset); err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	default:
		rows, err = e.derefEntries(n.Index, n.Table, n.TableOffset, kvs)
		if err != nil {
			return nil, err
		}
	}
	return e.filterResidual(rows, n.Residual)
}

// appendEntryRecordKeys decodes secondary index entries into the record
// keys they reference, appending to dst.
func appendEntryRecordKeys(dst [][]byte, ix *schema.Index, table *schema.Table, kvs []kvstore.KV) ([][]byte, error) {
	for _, kv := range kvs {
		pk, err := index.DecodeEntry(ix, table, kv.Key)
		if err != nil {
			return nil, err
		}
		dst = append(dst, index.RecordKeyFromPK(table, pk))
	}
	return dst, nil
}

// derefEntries resolves secondary index entries to full records with one
// batched request set, preserving entry order (rows whose record
// vanished — dangling entries — are skipped).
func (e *executor) derefEntries(ix *schema.Index, table *schema.Table, offset int, kvs []kvstore.KV) ([]value.Row, error) {
	keys, err := appendEntryRecordKeys(make([][]byte, 0, len(kvs)), ix, table, kvs)
	if err != nil {
		return nil, err
	}
	recs := e.getBatch(keys)
	var rows []value.Row
	for _, rec := range recs {
		if rec == nil {
			continue // dangling entry awaiting GC
		}
		row := e.newRow()
		if err := placeRecord(row, offset, rec); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runFKJoin extends each child row with at most one record of the
// joined table.
func (e *executor) runFKJoin(n *core.IndexFKJoin) ([]value.Row, error) {
	childRows, err := e.run(n.ChildPlan)
	if err != nil {
		return nil, err
	}
	e.nextRemoteOrdinal() // order preserved; no resumable position of its own
	keys := make([][]byte, len(childRows))
	for i, row := range childRows {
		pk, err := n.Keys.Eval(e.ctx.Params, row)
		if err != nil {
			return nil, err
		}
		keys[i] = index.RecordKeyFromPK(n.Table, pk)
	}
	recs := e.getBatch(keys)
	var rows []value.Row
	for i, rec := range recs {
		if rec == nil {
			continue // no matching row: inner join drops it
		}
		if err := placeRecord(childRows[i], n.TableOffset, rec); err != nil {
			return nil, err
		}
		rows = append(rows, childRows[i])
	}
	return e.filterResidual(rows, n.Residual)
}

// runSortedJoin fetches up to PerKeyLimit pre-sorted matches per child
// row and merges the streams into the output order. For paginated
// queries the cursor keeps one resume position per join-key stream —
// a shared position would skip tied sort values in sibling streams.
func (e *executor) runSortedJoin(n *core.SortedIndexJoin) ([]value.Row, error) {
	childRows, err := e.run(n.ChildPlan)
	if err != nil {
		return nil, err
	}
	ord, resumeBlob := e.nextRemoteOrdinal()
	resume := decodeStreamResume(resumeBlob)

	type perKey struct {
		prefix     []byte
		start, end []byte
		kvs        []kvstore.KV
	}
	scans := make([]perKey, len(childRows))
	for i, row := range childRows {
		jk, err := n.JoinKey.Eval(e.ctx.Params, row)
		if err != nil {
			return nil, err
		}
		var prefix []byte
		if n.Index.Primary {
			prefix = index.RecordPrefix(n.Table)
			for _, v := range jk {
				prefix = codec.AppendValue(prefix, v, false)
			}
		} else {
			prefix = index.ScanPrefix(n.Index, jk)
		}
		start, end := prefix, codec.PrefixEnd(prefix)
		// Resume this stream just past the last element it contributed
		// to a previous page.
		if suffix, ok := resume[string(prefix)]; ok {
			if n.Ascending {
				start = successor(append(append([]byte{}, prefix...), suffix...))
			} else {
				end = append(append([]byte{}, prefix...), suffix...)
			}
		}
		scans[i] = perKey{prefix: prefix, start: start, end: end}
	}

	fetch := func(sub *kvstore.Client, i int, scatter bool) {
		req := kvstore.RangeRequest{
			Start:   scans[i].start,
			End:     scans[i].end,
			Limit:   n.PerKeyLimit,
			Reverse: !n.Ascending,
		}
		if scatter {
			scans[i].kvs = sub.GetRangeScatter(req)
		} else {
			scans[i].kvs = sub.GetRange(req)
		}
	}
	switch e.ctx.Strategy {
	case Parallel:
		// All K per-key scans concurrently, each itself scatter-gathering
		// across the partitions its range spans.
		fns := make([]func(*kvstore.Client), len(scans))
		for i := range scans {
			i := i
			fns[i] = func(sub *kvstore.Client) { fetch(sub, i, true) }
		}
		e.ctx.Client.Parallel(fns...)
	default:
		// Lazy and Simple both issue the per-key requests sequentially;
		// Lazy additionally fetches tuple by tuple.
		for i := range scans {
			if e.ctx.Strategy == Lazy {
				scans[i].kvs = e.fetchRange(scans[i].start, scans[i].end, n.PerKeyLimit, !n.Ascending)
			} else {
				fetch(e.ctx.Client, i, false)
			}
		}
	}

	// Resolve secondary-index entries from ALL streams with one batched
	// request set. (This used to dereference stream by stream — K
	// sequential MultiGets after the parallel range fetch, serializing K
	// round trips; now every operator costs a constant number of trips.)
	var recs [][]byte // flat across streams, parallel to the scans' kvs
	if !n.Index.Primary {
		var keys [][]byte
		total := 0
		for _, sc := range scans {
			total += len(sc.kvs)
		}
		keys = make([][]byte, 0, total)
		for _, sc := range scans {
			keys, err = appendEntryRecordKeys(keys, n.Index, n.Table, sc.kvs)
			if err != nil {
				return nil, err
			}
		}
		recs = e.getBatch(keys)
	}

	// Materialize joined rows, remembering each row's stream and
	// entry-key suffix.
	var joined []value.Row
	var suffixes [][]byte
	var stream []int
	flat := 0 // position in recs
	for i, sc := range scans {
		for _, kv := range sc.kvs {
			rec := kv.Value
			if !n.Index.Primary {
				rec = recs[flat]
				flat++
				if rec == nil {
					continue // dangling entry awaiting GC
				}
			}
			row := e.newRow()
			copy(row, childRows[i])
			if err := placeRecord(row, n.TableOffset, rec); err != nil {
				return nil, err
			}
			joined = append(joined, row)
			suffixes = append(suffixes, suffixOf(kv.Key, sc.prefix))
			stream = append(stream, i)
		}
	}

	// Merge into output order.
	if len(n.MergeSort) > 0 {
		idx := make([]int, len(joined))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool {
			return lessBySortKeys(joined[idx[a]], joined[idx[b]], n.MergeSort)
		})
		ordered := make([]value.Row, len(joined))
		orderedSuffix := make([][]byte, len(joined))
		orderedStream := make([]int, len(joined))
		for i, j := range idx {
			ordered[i] = joined[j]
			orderedSuffix[i] = suffixes[j]
			orderedStream[i] = stream[j]
		}
		joined, suffixes, stream = ordered, orderedSuffix, orderedStream
	}
	// Residual filtering must compact suffixes and stream in lockstep
	// with joined: the cursor below indexes all three by output position,
	// so dropping a row from joined alone would resume the next page at a
	// stale (earlier) key of the wrong stream.
	if len(n.Residual) > 0 {
		outRows, outSuffix, outStream := joined[:0], suffixes[:0], stream[:0]
		for i, row := range joined {
			keep, err := e.evalPreds(row, n.Residual)
			if err != nil {
				return nil, err
			}
			if keep {
				outRows = append(outRows, row)
				outSuffix = append(outSuffix, suffixes[i])
				outStream = append(outStream, stream[i])
			}
		}
		joined, suffixes, stream = outRows, outSuffix, outStream
	}
	// Cursor state: per stream, the suffix of the last element consumed
	// by this page; untouched streams keep their previous position.
	if e.plan.PageSize > 0 {
		cut := len(joined)
		if e.plan.PageSize < cut {
			cut = e.plan.PageSize
		}
		next := make(map[string][]byte, len(resume))
		for k, v := range resume {
			next[k] = v
		}
		for i := 0; i < cut && i < len(stream); i++ {
			next[string(scans[stream[i]].prefix)] = suffixes[i]
		}
		e.storeResume(ord, encodeStreamResume(next))
	}
	return joined, nil
}

// encodeStreamResume serializes per-stream cursor positions.
func encodeStreamResume(m map[string][]byte) []byte {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := binary.AppendUvarint(nil, uint64(len(m)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
		buf = binary.AppendUvarint(buf, uint64(len(m[k])))
		buf = append(buf, m[k]...)
	}
	return buf
}

// decodeStreamResume parses encodeStreamResume output; nil or corrupt
// input yields an empty map (a fresh cursor).
func decodeStreamResume(b []byte) map[string][]byte {
	m := make(map[string][]byte)
	if len(b) == 0 {
		return m
	}
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return m
	}
	b = b[sz:]
	for i := uint64(0); i < n; i++ {
		kl, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b)-sz) < kl {
			return map[string][]byte{}
		}
		k := string(b[sz : sz+int(kl)])
		b = b[sz+int(kl):]
		vl, sz := binary.Uvarint(b)
		if sz <= 0 || uint64(len(b)-sz) < vl {
			return map[string][]byte{}
		}
		v := append([]byte{}, b[sz:sz+int(vl)]...)
		b = b[sz+int(vl):]
		m[k] = v
	}
	return m
}

// suffixOf slices the per-stream suffix out of an entry key. Stored keys
// are immutable once written, so aliasing the key's backing array is
// safe (the resume encoder copies the bytes it serializes).
func suffixOf(key []byte, prefix []byte) []byte {
	return key[len(prefix):]
}

func lessBySortKeys(a, b value.Row, keys []core.SortKey) bool {
	for _, k := range keys {
		c := value.Compare(a[k.Col], b[k.Col])
		if c == 0 {
			continue
		}
		if k.Desc {
			return c > 0
		}
		return c < 0
	}
	return false
}
