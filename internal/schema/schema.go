// Package schema defines the PIQL catalog: tables, columns, primary and
// foreign keys, secondary indexes, and the paper's DDL extension —
// relationship cardinality constraints (`CARDINALITY LIMIT n (cols)`),
// which bound how many tuples may share a value combination and feed the
// optimizer's data-stop insertion (Section 4.2).
package schema

import (
	"fmt"
	"strings"

	"piql/internal/value"
)

// Column is one table column.
type Column struct {
	Name string
	Type value.Type
	// MaxLen caps string/bytes length (VARCHAR(n)); 0 = unbounded. The
	// SLO model uses it to derive the per-tuple size β.
	MaxLen int
}

// sizeEstimate returns the worst-case encoded size of the column in
// bytes, used as β by the prediction model.
func (c Column) sizeEstimate() int {
	switch c.Type {
	case value.TypeInt, value.TypeFloat:
		return 9
	case value.TypeBool:
		return 2
	case value.TypeString, value.TypeBytes:
		if c.MaxLen > 0 {
			return 1 + c.MaxLen
		}
		return 256 // unbounded strings: assume web-form scale
	default:
		return 1
	}
}

// ForeignKey declares that Columns reference the primary key of RefTable.
// It gives the optimizer the 1-tuple bound in the FK -> PK direction.
type ForeignKey struct {
	Columns  []string
	RefTable string
}

// Cardinality is the PIQL DDL extension: at most Limit rows may share any
// one combination of values for Columns.
type Cardinality struct {
	Limit   int
	Columns []string
}

// Table is a catalog entry.
type Table struct {
	Name          string
	Columns       []Column
	PrimaryKey    []string
	ForeignKeys   []ForeignKey
	Cardinalities []Cardinality

	colIndex map[string]int
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	if i, ok := t.colIndex[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column {
	i := t.ColumnIndex(name)
	if i < 0 {
		return nil
	}
	return &t.Columns[i]
}

// RowSizeEstimate returns the worst-case row size in bytes (the β of the
// prediction model for tuples of this table).
func (t *Table) RowSizeEstimate() int {
	n := 0
	for _, c := range t.Columns {
		n += c.sizeEstimate()
	}
	return n
}

// IsPrimaryKey reports whether cols covers exactly the primary key
// (order-insensitive).
func (t *Table) IsPrimaryKey(cols []string) bool {
	return coversAll(cols, t.PrimaryKey) && len(cols) >= len(t.PrimaryKey)
}

// CardinalityFor returns the tightest cardinality limit whose columns are
// all covered by the given equality columns, or 0 if none applies. A full
// primary-key match returns 1.
func (t *Table) CardinalityFor(equalityCols []string) int {
	if coversAll(equalityCols, t.PrimaryKey) {
		return 1
	}
	best := 0
	for _, c := range t.Cardinalities {
		if coversAll(equalityCols, c.Columns) {
			if best == 0 || c.Limit < best {
				best = c.Limit
			}
		}
	}
	return best
}

// CardinalityConstraint returns the tightest declared CARDINALITY LIMIT
// constraint whose columns are all covered by the given equality
// columns, or nil if none applies. Unlike CardinalityFor it does not
// treat a primary-key match as an implicit limit of 1 — it reports only
// constraints the schema author wrote down, so static analysis can name
// the declaration a bound came from.
func (t *Table) CardinalityConstraint(equalityCols []string) *Cardinality {
	var best *Cardinality
	for i := range t.Cardinalities {
		c := &t.Cardinalities[i]
		if coversAll(equalityCols, c.Columns) {
			if best == nil || c.Limit < best.Limit {
				best = c
			}
		}
	}
	return best
}

// String renders the constraint as written in DDL.
func (c *Cardinality) String() string {
	return fmt.Sprintf("CARDINALITY LIMIT %d (%s)", c.Limit, strings.Join(c.Columns, ", "))
}

// coversAll reports whether every column in want appears in have
// (case-insensitive).
func coversAll(have, want []string) bool {
	for _, w := range want {
		found := false
		for _, h := range have {
			if strings.EqualFold(h, w) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// IndexField is one component of an index key.
type IndexField struct {
	Column string
	Desc   bool
	// Token indicates an inverted full-text component: the index holds
	// one entry per token of the column's text (Section 7.3).
	Token bool
}

// Index is an index over a table. For secondary indexes the stored key
// is the encoded Fields followed by the table's primary key (making
// entries unique) and the entry value is empty — lookups dereference
// into the primary record. The primary index (Primary == true) is the
// record itself: scans over it read full rows with no dereference.
type Index struct {
	Name    string
	Table   string
	Fields  []IndexField
	Primary bool
}

// KeyColumns returns the index field column names in order.
func (ix *Index) KeyColumns() []string {
	out := make([]string, len(ix.Fields))
	for i, f := range ix.Fields {
		out[i] = f.Column
	}
	return out
}

// String renders the index like the paper's Table 1, e.g.
// "Items(Token(I_TITLE), I_TITLE, I_ID)".
func (ix *Index) String() string {
	var parts []string
	for _, f := range ix.Fields {
		s := f.Column
		if f.Token {
			s = "Token(" + s + ")"
		}
		if f.Desc {
			s += " DESC"
		}
		parts = append(parts, s)
	}
	return fmt.Sprintf("%s(%s)", ix.Table, strings.Join(parts, ", "))
}

// IndexState is the lifecycle phase of an index in a catalog. The state
// lives in the catalog (keyed by structural signature), not in the Index
// value, so Index values stay immutable and shareable across snapshots
// while the state advances through copy-on-write catalog updates.
type IndexState int

const (
	// StateBuilding marks an index that is registered — and therefore
	// already maintained by the write path — but whose backfill has not
	// completed: it may still miss entries for pre-existing rows, so the
	// planner must not serve queries from it.
	StateBuilding IndexState = iota
	// StateReady marks a fully backfilled index, safe to query.
	StateReady
)

func (st IndexState) String() string {
	if st == StateReady {
		return "ready"
	}
	return "building"
}

// Signature identifies an index by its structure, ignoring the name, so
// the engine can deduplicate compiler-requested indexes.
func (ix *Index) Signature() string {
	var sb strings.Builder
	sb.WriteString(strings.ToLower(ix.Table))
	for _, f := range ix.Fields {
		sb.WriteByte('|')
		sb.WriteString(strings.ToLower(f.Column))
		if f.Desc {
			sb.WriteString(":d")
		}
		if f.Token {
			sb.WriteString(":t")
		}
	}
	return sb.String()
}

// Catalog is the set of tables and indexes known to an engine instance.
//
// A Catalog value is not internally synchronized: concurrent readers are
// fine, but a writer (AddTable, AddIndex) must not race with anything.
// Engines that serve concurrent sessions therefore treat catalogs as
// copy-on-write snapshots — Clone an old snapshot, mutate the clone,
// publish it atomically — so the read path never takes a lock. Tables
// and indexes are immutable once registered, which is what makes sharing
// them across snapshots (and across compiled plans) safe.
type Catalog struct {
	tables  map[string]*Table
	indexes map[string][]*Index   // by lower(table)
	state   map[string]IndexState // by index signature; absent = building
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tables:  make(map[string]*Table),
		indexes: make(map[string][]*Index),
		state:   make(map[string]IndexState),
	}
}

// Catalog returns the catalog itself, making *Catalog its own (static)
// snapshot source — see index.CatalogSource.
func (c *Catalog) Catalog() *Catalog { return c }

// Clone returns a snapshot that can be mutated independently of c. The
// Table and Index values are shared (they are immutable once added);
// only the registration maps and index slices are copied.
func (c *Catalog) Clone() *Catalog {
	nc := NewCatalog()
	for k, t := range c.tables {
		nc.tables[k] = t
	}
	for k, ixs := range c.indexes {
		nc.indexes[k] = append([]*Index(nil), ixs...)
	}
	for sig, st := range c.state {
		nc.state[sig] = st
	}
	return nc
}

// AddTable validates and registers a table.
func (c *Catalog) AddTable(t *Table) error {
	if t.Name == "" {
		return fmt.Errorf("schema: table with empty name")
	}
	key := strings.ToLower(t.Name)
	if _, dup := c.tables[key]; dup {
		return fmt.Errorf("schema: table %q already exists", t.Name)
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("schema: table %q has no columns", t.Name)
	}
	t.colIndex = make(map[string]int, len(t.Columns))
	for i, col := range t.Columns {
		lk := strings.ToLower(col.Name)
		if _, dup := t.colIndex[lk]; dup {
			return fmt.Errorf("schema: table %q: duplicate column %q", t.Name, col.Name)
		}
		t.colIndex[lk] = i
	}
	if len(t.PrimaryKey) == 0 {
		return fmt.Errorf("schema: table %q has no primary key", t.Name)
	}
	for _, pk := range t.PrimaryKey {
		if t.ColumnIndex(pk) < 0 {
			return fmt.Errorf("schema: table %q: primary key column %q does not exist", t.Name, pk)
		}
	}
	for _, fk := range t.ForeignKeys {
		for _, col := range fk.Columns {
			if t.ColumnIndex(col) < 0 {
				return fmt.Errorf("schema: table %q: foreign key column %q does not exist", t.Name, col)
			}
		}
		ref := c.tables[strings.ToLower(fk.RefTable)]
		if ref == nil && !strings.EqualFold(fk.RefTable, t.Name) {
			return fmt.Errorf("schema: table %q: foreign key references unknown table %q", t.Name, fk.RefTable)
		}
		if ref != nil && len(ref.PrimaryKey) != len(fk.Columns) {
			return fmt.Errorf("schema: table %q: foreign key to %q has %d columns, primary key has %d",
				t.Name, fk.RefTable, len(fk.Columns), len(ref.PrimaryKey))
		}
	}
	for _, card := range t.Cardinalities {
		if card.Limit <= 0 {
			return fmt.Errorf("schema: table %q: cardinality limit must be positive, got %d", t.Name, card.Limit)
		}
		if len(card.Columns) == 0 {
			return fmt.Errorf("schema: table %q: cardinality limit without columns", t.Name)
		}
		for _, col := range card.Columns {
			if t.ColumnIndex(col) < 0 {
				return fmt.Errorf("schema: table %q: cardinality column %q does not exist", t.Name, col)
			}
		}
	}
	c.tables[key] = t
	// The primary index is implicit: register it so the compiler's index
	// matching treats the record layout as just another access path.
	pk := &Index{Name: "pk_" + key, Table: t.Name, Primary: true}
	for _, col := range t.PrimaryKey {
		pk.Fields = append(pk.Fields, IndexField{Column: col})
	}
	c.indexes[key] = append(c.indexes[key], pk)
	c.state[pk.Signature()] = StateReady // the record layout needs no backfill
	return nil
}

// Table returns the named table, or nil.
func (c *Catalog) Table(name string) *Table {
	return c.tables[strings.ToLower(name)]
}

// Tables returns all tables (unordered).
func (c *Catalog) Tables() []*Table {
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	return out
}

// AddIndex registers an index after validating it, deduplicating by
// structural signature. It returns the canonical index (the existing one
// if a structural duplicate was already present).
func (c *Catalog) AddIndex(ix *Index) (*Index, error) {
	t := c.Table(ix.Table)
	if t == nil {
		return nil, fmt.Errorf("schema: index %q on unknown table %q", ix.Name, ix.Table)
	}
	if len(ix.Fields) == 0 {
		return nil, fmt.Errorf("schema: index %q has no fields", ix.Name)
	}
	for _, f := range ix.Fields {
		col := t.Column(f.Column)
		if col == nil {
			return nil, fmt.Errorf("schema: index %q: column %q does not exist in %q", ix.Name, f.Column, ix.Table)
		}
		if f.Token && col.Type != value.TypeString {
			return nil, fmt.Errorf("schema: index %q: Token() requires a string column, %q is %s", ix.Name, f.Column, col.Type)
		}
	}
	sig := ix.Signature()
	for _, existing := range c.indexes[strings.ToLower(ix.Table)] {
		if existing.Signature() == sig {
			return existing, nil
		}
	}
	c.indexes[strings.ToLower(ix.Table)] = append(c.indexes[strings.ToLower(ix.Table)], ix)
	// A new secondary index starts life building: the write path maintains
	// it from this moment, but the planner must wait for the backfill to
	// flip it ready (engine.ensureBuilt).
	c.state[sig] = StateBuilding
	return ix, nil
}

// Indexes returns the indexes on a table.
func (c *Catalog) Indexes(table string) []*Index {
	return c.indexes[strings.ToLower(table)]
}

// IndexState returns the lifecycle state of an index in this catalog.
// Unregistered indexes report building (the conservative answer).
func (c *Catalog) IndexState(ix *Index) IndexState {
	return c.state[ix.Signature()]
}

// SetIndexReady marks an index's backfill complete. Like every catalog
// mutation it must only run on an unpublished clone (copy-on-write).
func (c *Catalog) SetIndexReady(ix *Index) {
	c.state[ix.Signature()] = StateReady
}
