package schema

import (
	"strings"
	"testing"

	"piql/internal/value"
)

func users() *Table {
	return &Table{
		Name: "users",
		Columns: []Column{
			{Name: "username", Type: value.TypeString, MaxLen: 20},
			{Name: "age", Type: value.TypeInt},
			{Name: "bio", Type: value.TypeString},
		},
		PrimaryKey: []string{"username"},
	}
}

func TestAddTableAndLookup(t *testing.T) {
	c := NewCatalog()
	if err := c.AddTable(users()); err != nil {
		t.Fatal(err)
	}
	tab := c.Table("USERS") // case-insensitive
	if tab == nil || tab.ColumnIndex("UserName") != 0 || tab.ColumnIndex("nope") != -1 {
		t.Fatalf("lookup failed: %+v", tab)
	}
	if tab.Column("age").Type != value.TypeInt {
		t.Fatal("column lookup failed")
	}
	if len(c.Tables()) != 1 {
		t.Fatal("Tables() wrong")
	}
	// The primary index is auto-registered.
	ixs := c.Indexes("users")
	if len(ixs) != 1 || !ixs[0].Primary {
		t.Fatalf("primary index missing: %v", ixs)
	}
}

func TestAddTableValidation(t *testing.T) {
	cases := []struct {
		name string
		tab  *Table
	}{
		{"empty name", &Table{}},
		{"no columns", &Table{Name: "t", PrimaryKey: []string{"a"}}},
		{"no pk", &Table{Name: "t", Columns: []Column{{Name: "a", Type: value.TypeInt}}}},
		{"bad pk col", &Table{Name: "t", Columns: []Column{{Name: "a", Type: value.TypeInt}}, PrimaryKey: []string{"b"}}},
		{"dup column", &Table{Name: "t", Columns: []Column{{Name: "a", Type: value.TypeInt}, {Name: "A", Type: value.TypeInt}}, PrimaryKey: []string{"a"}}},
		{"bad fk col", &Table{Name: "t", Columns: []Column{{Name: "a", Type: value.TypeInt}}, PrimaryKey: []string{"a"},
			ForeignKeys: []ForeignKey{{Columns: []string{"x"}, RefTable: "t"}}}},
		{"fk unknown table", &Table{Name: "t", Columns: []Column{{Name: "a", Type: value.TypeInt}}, PrimaryKey: []string{"a"},
			ForeignKeys: []ForeignKey{{Columns: []string{"a"}, RefTable: "zzz"}}}},
		{"card zero", &Table{Name: "t", Columns: []Column{{Name: "a", Type: value.TypeInt}}, PrimaryKey: []string{"a"},
			Cardinalities: []Cardinality{{Limit: 0, Columns: []string{"a"}}}}},
		{"card no cols", &Table{Name: "t", Columns: []Column{{Name: "a", Type: value.TypeInt}}, PrimaryKey: []string{"a"},
			Cardinalities: []Cardinality{{Limit: 5}}}},
		{"card bad col", &Table{Name: "t", Columns: []Column{{Name: "a", Type: value.TypeInt}}, PrimaryKey: []string{"a"},
			Cardinalities: []Cardinality{{Limit: 5, Columns: []string{"b"}}}}},
	}
	for _, c := range cases {
		cat := NewCatalog()
		if err := cat.AddTable(c.tab); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Duplicate table.
	cat := NewCatalog()
	if err := cat.AddTable(users()); err != nil {
		t.Fatal(err)
	}
	if err := cat.AddTable(users()); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestCardinalityFor(t *testing.T) {
	tab := &Table{
		Name: "subs",
		Columns: []Column{
			{Name: "owner", Type: value.TypeString},
			{Name: "target", Type: value.TypeString},
			{Name: "kind", Type: value.TypeString},
		},
		PrimaryKey: []string{"owner", "target"},
		Cardinalities: []Cardinality{
			{Limit: 100, Columns: []string{"owner"}},
			{Limit: 40, Columns: []string{"owner", "kind"}},
		},
	}
	c := NewCatalog()
	if err := c.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	if got := tab.CardinalityFor([]string{"owner", "target"}); got != 1 {
		t.Errorf("full PK coverage = %d, want 1", got)
	}
	if got := tab.CardinalityFor([]string{"owner"}); got != 100 {
		t.Errorf("owner = %d, want 100", got)
	}
	if got := tab.CardinalityFor([]string{"KIND", "OWNER"}); got != 40 {
		t.Errorf("owner+kind picks tightest = %d, want 40", got)
	}
	if got := tab.CardinalityFor([]string{"target"}); got != 0 {
		t.Errorf("target = %d, want 0", got)
	}
}

func TestIndexValidationAndDedup(t *testing.T) {
	c := NewCatalog()
	if err := c.AddTable(users()); err != nil {
		t.Fatal(err)
	}
	ix1, err := c.AddIndex(&Index{Name: "a", Table: "users", Fields: []IndexField{{Column: "bio", Token: true}, {Column: "username"}}})
	if err != nil {
		t.Fatal(err)
	}
	// Structural duplicate returns the canonical instance.
	ix2, err := c.AddIndex(&Index{Name: "b", Table: "users", Fields: []IndexField{{Column: "BIO", Token: true}, {Column: "USERNAME"}}})
	if err != nil {
		t.Fatal(err)
	}
	if ix1 != ix2 {
		t.Error("structural duplicate not deduplicated")
	}
	if len(c.Indexes("users")) != 2 { // primary + one secondary
		t.Errorf("indexes = %v", c.Indexes("users"))
	}
	// Validation failures.
	bad := []*Index{
		{Name: "x", Table: "zzz", Fields: []IndexField{{Column: "a"}}},
		{Name: "x", Table: "users", Fields: nil},
		{Name: "x", Table: "users", Fields: []IndexField{{Column: "nope"}}},
		{Name: "x", Table: "users", Fields: []IndexField{{Column: "age", Token: true}}},
	}
	for i, ix := range bad {
		if _, err := c.AddIndex(ix); err == nil {
			t.Errorf("bad index %d accepted", i)
		}
	}
}

func TestIndexStringAndSignature(t *testing.T) {
	ix := &Index{Name: "i", Table: "Items", Fields: []IndexField{
		{Column: "I_TITLE", Token: true},
		{Column: "I_TITLE"},
		{Column: "I_ID", Desc: true},
	}}
	s := ix.String()
	if !strings.Contains(s, "Token(I_TITLE)") || !strings.Contains(s, "I_ID DESC") {
		t.Errorf("String = %q", s)
	}
	if ix.Signature() == (&Index{Table: "Items", Fields: []IndexField{{Column: "i_title"}}}).Signature() {
		t.Error("signatures collide")
	}
	cols := ix.KeyColumns()
	if len(cols) != 3 || cols[0] != "I_TITLE" {
		t.Errorf("KeyColumns = %v", cols)
	}
}

func TestRowSizeEstimate(t *testing.T) {
	tab := users()
	c := NewCatalog()
	if err := c.AddTable(tab); err != nil {
		t.Fatal(err)
	}
	// username 21 + age 9 + unbounded bio 256.
	if got := tab.RowSizeEstimate(); got != 21+9+256 {
		t.Errorf("RowSizeEstimate = %d", got)
	}
}
