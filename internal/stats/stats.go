// Package stats provides the small statistical toolkit used by the
// experiment harness and the SLO prediction model: percentiles, means,
// and least-squares linear fits with R² (the paper reports R² for the
// throughput scale-up experiments).
package stats

import (
	"fmt"
	"sort"
	"time"
)

// Percentile returns the p-th percentile (0 < p <= 100) of samples using
// nearest-rank on a sorted copy. It returns 0 for an empty slice.
func Percentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return percentileSorted(sorted, p)
}

// PercentileSorted is Percentile over an already ascending-sorted slice,
// avoiding the copy and sort.
func PercentileSorted(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return percentileSorted(sorted, p)
}

func percentileSorted(sorted []time.Duration, p float64) time.Duration {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted))+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Mean returns the arithmetic mean of samples, or 0 if empty.
func Mean(samples []time.Duration) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range samples {
		sum += s
	}
	return sum / time.Duration(len(samples))
}

// Max returns the maximum of samples, or 0 if empty.
func Max(samples []time.Duration) time.Duration {
	var m time.Duration
	for _, s := range samples {
		if s > m {
			m = s
		}
	}
	return m
}

// LinearFit holds a least-squares fit y = Slope*x + Intercept and its
// coefficient of determination R².
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLine computes the least-squares line through (x[i], y[i]). It panics
// if the slices differ in length and returns a zero fit for fewer than
// two points.
func FitLine(x, y []float64) LinearFit {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: FitLine length mismatch %d vs %d", len(x), len(y)))
	}
	n := float64(len(x))
	if len(x) < 2 {
		return LinearFit{}
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return LinearFit{}
	}
	slope := (n*sxy - sx*sy) / denom
	intercept := (sy - slope*sx) / n

	meanY := sy / n
	var ssTot, ssRes float64
	for i := range x {
		pred := slope*x[i] + intercept
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}
}
