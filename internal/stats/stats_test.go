package stats

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func durs(vals ...int) []time.Duration {
	out := make([]time.Duration, len(vals))
	for i, v := range vals {
		out[i] = time.Duration(v) * time.Millisecond
	}
	return out
}

func TestPercentileBasics(t *testing.T) {
	s := durs(10, 20, 30, 40, 50, 60, 70, 80, 90, 100)
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{50, 50 * time.Millisecond},
		{90, 90 * time.Millisecond},
		{99, 100 * time.Millisecond},
		{100, 100 * time.Millisecond},
		{0, 10 * time.Millisecond},
		{10, 10 * time.Millisecond},
	}
	for _, c := range cases {
		if got := Percentile(s, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileUnsortedInputUntouched(t *testing.T) {
	s := durs(50, 10, 30)
	if got := Percentile(s, 50); got != 30*time.Millisecond {
		t.Fatalf("median = %v", got)
	}
	if s[0] != 50*time.Millisecond {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileEmptyAndSingle(t *testing.T) {
	if got := Percentile(nil, 99); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	if got := Percentile(durs(7), 99); got != 7*time.Millisecond {
		t.Fatalf("single percentile = %v", got)
	}
}

func TestPercentileSortedMatches(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	s := make([]time.Duration, 1000)
	for i := range s {
		s[i] = time.Duration(r.Intn(1e6)) * time.Microsecond
	}
	for _, p := range []float64{1, 25, 50, 90, 99, 99.9} {
		want := Percentile(s, p)
		sorted := make([]time.Duration, len(s))
		copy(sorted, s)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		if got := PercentileSorted(sorted, p); got != want {
			t.Errorf("p%.1f: sorted %v != unsorted %v", p, got, want)
		}
	}
}

func TestMeanMax(t *testing.T) {
	s := durs(10, 20, 30)
	if got := Mean(s); got != 20*time.Millisecond {
		t.Fatalf("Mean = %v", got)
	}
	if got := Max(s); got != 30*time.Millisecond {
		t.Fatalf("Max = %v", got)
	}
	if Mean(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty Mean/Max not 0")
	}
}

func TestFitLineExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 2x + 3
	fit := FitLine(x, y)
	if math.Abs(fit.Slope-2) > 1e-9 || math.Abs(fit.Intercept-3) > 1e-9 {
		t.Fatalf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-9 {
		t.Fatalf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLineNoisy(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	var x, y []float64
	for i := 0; i < 100; i++ {
		xv := float64(i)
		x = append(x, xv)
		y = append(y, 3*xv+10+r.NormFloat64()*5)
	}
	fit := FitLine(x, y)
	if fit.Slope < 2.8 || fit.Slope > 3.2 {
		t.Fatalf("slope = %v", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if fit := FitLine([]float64{1}, []float64{2}); fit.Slope != 0 || fit.R2 != 0 {
		t.Fatalf("single point fit = %+v", fit)
	}
	if fit := FitLine([]float64{2, 2}, []float64{1, 3}); fit.Slope != 0 {
		t.Fatalf("vertical fit = %+v", fit)
	}
	// Constant y: R² defined as 1 (perfect fit by the constant line).
	if fit := FitLine([]float64{1, 2, 3}, []float64{4, 4, 4}); fit.R2 != 1 {
		t.Fatalf("constant fit = %+v", fit)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	FitLine([]float64{1}, []float64{1, 2})
}
