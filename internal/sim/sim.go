// Package sim is a deterministic discrete-event simulation kernel. It
// stands in for the paper's physical EC2 testbed: virtual time, coroutine
// processes (client machines, load generators), and multi-server FIFO
// resources (storage-node request queues).
//
// Processes are goroutines that run one at a time under a token-passing
// scheduler, so a simulation with a fixed seed is fully deterministic
// regardless of GOMAXPROCS.
package sim

import (
	"container/heap"
	"runtime"
	"time"
)

// event wakes a parked process at a virtual time. seq breaks ties FIFO.
// yield marks a poll wakeup scheduled by Yield: other yielders ignore it
// when choosing their own wake time, so two polling processes can never
// keep each other — and the virtual clock — spinning at one instant.
type event struct {
	at    time.Duration
	seq   int64
	wake  chan struct{}
	yield bool
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)         { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any           { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() time.Duration { return h[0].at }

// Env is a simulation environment. Create with NewEnv, add processes with
// Spawn, then call Run. Not safe for use from multiple OS threads except
// through the process API.
type Env struct {
	now     time.Duration
	events  eventHeap
	seq     int64
	yield   chan struct{} // running process signals the scheduler here
	stopped bool
	procs   int // live processes (running or parked)

	resources []*Resource // registered for cleanup in Stop
}

// NewEnv returns an empty environment at virtual time zero.
func NewEnv() *Env {
	return &Env{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// Proc is the handle a process uses to interact with virtual time. It is
// only valid inside the process's own goroutine.
type Proc struct {
	env  *Env
	wake chan struct{}
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.env.now }

// Spawn registers fn as a new process starting at the current virtual
// time. It may be called before Run or from inside a running process.
func (e *Env) Spawn(fn func(p *Proc)) {
	p := &Proc{env: e, wake: make(chan struct{})}
	e.procs++
	e.schedule(e.now, p.wake)
	//lint:allow goroleak — sim process: the cooperative scheduler owns termination (Run wakes each process in turn and drains via yield; stopped processes Goexit).
	go func() {
		<-p.wake
		if e.stopped {
			e.procs--
			e.yield <- struct{}{}
			runtime.Goexit()
		}
		fn(p)
		e.procs--
		e.yield <- struct{}{}
	}()
}

// schedule queues a wakeup without transferring control.
func (e *Env) schedule(at time.Duration, wake chan struct{}) {
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, wake: wake})
}

// park hands the scheduler token back and blocks until woken. Must only
// be called from a process goroutine that has already scheduled its own
// wakeup (or expects another process to schedule one).
func (p *Proc) park() {
	p.env.yield <- struct{}{}
	<-p.wake
	if p.env.stopped {
		p.env.procs--
		p.env.yield <- struct{}{}
		runtime.Goexit()
	}
}

// Sleep advances the process by d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.env.schedule(p.env.now+d, p.wake)
	p.park()
}

// Yield parks the process until the next non-yield event — the next
// instant at which some other process makes real progress — resuming in
// FIFO turn behind it. It is the cooperative scheduler's
// runtime.Gosched: a process polling for a condition another process
// must establish yields between polls so the establishing process — and
// virtual time — can advance. Two subtleties make this more than a
// Sleep(0): a zero sleep would reschedule the poller at the current
// time, staying ahead of every future event and freezing the clock; and
// pending *yield* events must be ignored when picking the wake time, or
// two pollers (say, a backfill draining writers and a writer waiting
// out the drain) would treat each other's polls as progress and spin
// the clock frozen forever.
func (p *Proc) Yield() {
	e := p.env
	at := e.now
	found := false
	for _, ev := range e.events {
		if ev.yield {
			continue
		}
		if !found || ev.at < at {
			at, found = ev.at, true
		}
	}
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, wake: p.wake, yield: true})
	p.park()
}

// Parallel runs fns as concurrent child processes and returns once all of
// them have completed. It models a client issuing a batch of key/value
// requests in parallel: elapsed virtual time is the max of the children,
// not the sum.
func (p *Proc) Parallel(fns ...func(c *Proc)) {
	remaining := len(fns)
	if remaining == 0 {
		return
	}
	for _, fn := range fns {
		fn := fn
		p.env.Spawn(func(c *Proc) {
			fn(c)
			remaining--
			if remaining == 0 {
				c.env.schedule(c.env.now, p.wake)
			}
		})
	}
	p.park()
}

// Run executes events until the event queue empties or virtual time would
// exceed until (if until > 0). It returns the final virtual time. After
// Run returns, Stop must be called to release parked process goroutines
// unless the caller will Run again.
func (e *Env) Run(until time.Duration) time.Duration {
	for len(e.events) > 0 {
		if until > 0 && e.events.peek() > until {
			e.now = until
			return e.now
		}
		ev := heap.Pop(&e.events).(event)
		e.now = ev.at
		ev.wake <- struct{}{}
		<-e.yield
	}
	return e.now
}

// Stop terminates all remaining processes (parked on events or resources)
// so their goroutines exit. The environment is unusable afterwards.
func (e *Env) Stop() {
	e.stopped = true
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		ev.wake <- struct{}{}
		<-e.yield
	}
	for _, r := range e.resources {
		for _, w := range r.waiters {
			w <- struct{}{}
			<-e.yield
		}
		r.waiters = nil
	}
}

// Resource is a multi-server FIFO queue in virtual time: up to Servers
// processes hold it concurrently; the rest wait in arrival order. It
// models one storage node's request-processing capacity.
type Resource struct {
	env     *Env
	servers int
	busy    int
	waiters []chan struct{}
	// Busy time accounting for utilization reports.
	busyTime   time.Duration
	lastChange time.Duration
}

// NewResource creates a resource with the given number of servers.
func (e *Env) NewResource(servers int) *Resource {
	if servers < 1 {
		servers = 1
	}
	r := &Resource{env: e, servers: servers}
	e.resources = append(e.resources, r)
	return r
}

func (r *Resource) accrue() {
	r.busyTime += time.Duration(r.busy) * (r.env.now - r.lastChange)
	r.lastChange = r.env.now
}

// Acquire blocks the process until a server is free.
func (r *Resource) Acquire(p *Proc) {
	if r.busy < r.servers {
		r.accrue()
		r.busy++
		return
	}
	r.waiters = append(r.waiters, p.wake)
	p.park()
	// The releaser incremented busy on our behalf before waking us.
}

// Release frees a server, handing it to the longest-waiting process if any.
func (r *Resource) Release() {
	r.accrue()
	if len(r.waiters) > 0 {
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		// busy stays the same: the server passes directly to the waiter.
		r.env.schedule(r.env.now, w)
		return
	}
	r.busy--
}

// Use acquires the resource, holds it for service, then releases it. It
// models a single request visiting a server.
func (r *Resource) Use(p *Proc, service time.Duration) {
	r.Acquire(p)
	p.Sleep(service)
	r.Release()
}

// BusyTime returns the cumulative server-busy virtual time (summed over
// servers), for utilization reporting.
func (r *Resource) BusyTime() time.Duration {
	r.accrue()
	return r.busyTime
}

// QueueLen returns the number of processes waiting (not being served).
func (r *Resource) QueueLen() int { return len(r.waiters) }
