package sim

import (
	"testing"
	"time"
)

const ms = time.Millisecond

func TestSleepAdvancesVirtualTime(t *testing.T) {
	e := NewEnv()
	var at []time.Duration
	e.Spawn(func(p *Proc) {
		p.Sleep(10 * ms)
		at = append(at, p.Now())
		p.Sleep(5 * ms)
		at = append(at, p.Now())
	})
	end := e.Run(0)
	if end != 15*ms {
		t.Fatalf("end = %v, want 15ms", end)
	}
	if len(at) != 2 || at[0] != 10*ms || at[1] != 15*ms {
		t.Fatalf("timestamps = %v", at)
	}
}

func TestInterleavingIsDeterministic(t *testing.T) {
	run := func() []string {
		e := NewEnv()
		var log []string
		for i, d := range []time.Duration{3 * ms, 1 * ms, 2 * ms} {
			i, d := i, d
			e.Spawn(func(p *Proc) {
				p.Sleep(d)
				log = append(log, string(rune('a'+i)))
				p.Sleep(10 * ms)
				log = append(log, string(rune('A'+i)))
			})
		}
		e.Run(0)
		return log
	}
	want := []string{"b", "c", "a", "B", "C", "A"}
	for trial := 0; trial < 5; trial++ {
		got := run()
		if len(got) != len(want) {
			t.Fatalf("log = %v", got)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: log = %v, want %v", trial, got, want)
			}
		}
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Spawn(func(p *Proc) {
			p.Sleep(7 * ms)
			order = append(order, i)
		})
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: %v", order)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEnv()
	fired := 0
	e.Spawn(func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(10 * ms)
			fired++
		}
	})
	end := e.Run(55 * ms)
	if end != 55*ms {
		t.Fatalf("end = %v", end)
	}
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
	e.Stop()
}

func TestResourceQueueing(t *testing.T) {
	// 2 servers, 4 jobs of 10ms arriving together: completions at 10,10,20,20.
	e := NewEnv()
	r := e.NewResource(2)
	var done []time.Duration
	for i := 0; i < 4; i++ {
		e.Spawn(func(p *Proc) {
			r.Use(p, 10*ms)
			done = append(done, p.Now())
		})
	}
	e.Run(0)
	want := []time.Duration{10 * ms, 10 * ms, 20 * ms, 20 * ms}
	if len(done) != 4 {
		t.Fatalf("done = %v", done)
	}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
	if got := r.BusyTime(); got != 40*ms {
		t.Fatalf("BusyTime = %v, want 40ms", got)
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEnv()
	r := e.NewResource(1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Spawn(func(p *Proc) {
			p.Sleep(time.Duration(i) * ms) // arrive in index order
			r.Use(p, 100*ms)
			order = append(order, i)
		})
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("not FIFO: %v", order)
		}
	}
}

func TestParallelTakesMax(t *testing.T) {
	e := NewEnv()
	var elapsed time.Duration
	e.Spawn(func(p *Proc) {
		p.Parallel(
			func(c *Proc) { c.Sleep(5 * ms) },
			func(c *Proc) { c.Sleep(30 * ms) },
			func(c *Proc) { c.Sleep(10 * ms) },
		)
		elapsed = p.Now()
	})
	e.Run(0)
	if elapsed != 30*ms {
		t.Fatalf("parallel elapsed = %v, want 30ms", elapsed)
	}
}

func TestParallelEmpty(t *testing.T) {
	e := NewEnv()
	ran := false
	e.Spawn(func(p *Proc) {
		p.Parallel()
		ran = true
	})
	e.Run(0)
	if !ran {
		t.Fatal("process with empty Parallel did not finish")
	}
}

func TestParallelOnSharedResource(t *testing.T) {
	// 8 parallel ops on a 2-server node, 10ms each: 4 waves -> 40ms.
	e := NewEnv()
	r := e.NewResource(2)
	var elapsed time.Duration
	e.Spawn(func(p *Proc) {
		var fns []func(*Proc)
		for i := 0; i < 8; i++ {
			fns = append(fns, func(c *Proc) { r.Use(c, 10*ms) })
		}
		p.Parallel(fns...)
		elapsed = p.Now()
	})
	e.Run(0)
	if elapsed != 40*ms {
		t.Fatalf("elapsed = %v, want 40ms", elapsed)
	}
}

func TestStopReleasesParkedProcesses(t *testing.T) {
	e := NewEnv()
	r := e.NewResource(1)
	e.Spawn(func(p *Proc) { r.Acquire(p); p.Sleep(time.Hour) })
	e.Spawn(func(p *Proc) { r.Acquire(p) }) // will wait forever
	e.Run(10 * ms)
	e.Stop() // must not hang
	if e.procs != 0 {
		t.Fatalf("procs = %d after Stop, want 0", e.procs)
	}
}

func TestSpawnFromInsideProcess(t *testing.T) {
	e := NewEnv()
	var childTime time.Duration
	e.Spawn(func(p *Proc) {
		p.Sleep(5 * ms)
		p.Env().Spawn(func(c *Proc) {
			c.Sleep(3 * ms)
			childTime = c.Now()
		})
	})
	e.Run(0)
	if childTime != 8*ms {
		t.Fatalf("child finished at %v, want 8ms", childTime)
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	e := NewEnv()
	e.Spawn(func(p *Proc) { p.Sleep(-5 * ms) })
	if end := e.Run(0); end != 0 {
		t.Fatalf("end = %v, want 0", end)
	}
}

func TestQueueLen(t *testing.T) {
	e := NewEnv()
	r := e.NewResource(1)
	var sawQueue int
	for i := 0; i < 3; i++ {
		e.Spawn(func(p *Proc) { r.Use(p, 10*ms) })
	}
	e.Spawn(func(p *Proc) {
		p.Sleep(5 * ms)
		sawQueue = r.QueueLen()
	})
	e.Run(0)
	if sawQueue != 2 {
		t.Fatalf("QueueLen at t=5ms = %d, want 2", sawQueue)
	}
}
