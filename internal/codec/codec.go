// Package codec implements the order-preserving key encoding used for all
// key/value-store keys: primary keys, secondary index entries, and range
// scan boundaries.
//
// The central invariant, relied on by every index scan in the engine and
// property-tested in codec_test.go, is
//
//	bytes.Compare(EncodeKey(a), EncodeKey(b)) == value.CompareRows(a, b)
//
// Descending components invert their payload bytes so that a single
// ascending byte scan over the store yields rows in the requested mixed
// ASC/DESC order (used by SortedIndexJoin over composite indexes).
package codec

import (
	"encoding/binary"
	"fmt"
	"math"

	"piql/internal/value"
)

// Type tags. Their byte order defines the cross-type sort order and must
// match the ordering of value.Type constants.
const (
	tagNull   byte = 0x02
	tagBool   byte = 0x03
	tagInt    byte = 0x04
	tagFloat  byte = 0x05
	tagString byte = 0x06
	tagBytes  byte = 0x07

	// String/bytes payload framing: 0x00 bytes are escaped as 0x00 0xFF
	// and the payload ends with 0x00 0x01, so that prefixes sort before
	// their extensions and no payload can escape its field.
	escByte  byte = 0x00
	escPad   byte = 0xFF
	termByte byte = 0x01
)

// Asc and Desc select the direction of a key component.
const (
	Asc  = false
	Desc = true
)

// AppendValue appends the order-preserving encoding of v to dst. If desc
// is true the component's bytes are inverted so larger values sort first.
func AppendValue(dst []byte, v value.Value, desc bool) []byte {
	start := len(dst)
	switch v.T {
	case value.TypeNull:
		dst = append(dst, tagNull)
	case value.TypeBool:
		if v.B {
			dst = append(dst, tagBool, 1)
		} else {
			dst = append(dst, tagBool, 0)
		}
	case value.TypeInt:
		dst = append(dst, tagInt)
		// Flip the sign bit so negative numbers sort before positive.
		dst = binary.BigEndian.AppendUint64(dst, uint64(v.I)^(1<<63))
	case value.TypeFloat:
		dst = append(dst, tagFloat)
		dst = binary.BigEndian.AppendUint64(dst, floatSortBits(v.F))
	case value.TypeString:
		dst = append(dst, tagString)
		dst = appendEscaped(dst, []byte(v.S))
	case value.TypeBytes:
		dst = append(dst, tagBytes)
		dst = appendEscaped(dst, v.R)
	default:
		panic(fmt.Sprintf("codec: unknown value type %d", v.T))
	}
	if desc {
		for i := start; i < len(dst); i++ {
			dst[i] = ^dst[i]
		}
	}
	return dst
}

func appendEscaped(dst, payload []byte) []byte {
	for _, b := range payload {
		if b == escByte {
			dst = append(dst, escByte, escPad)
		} else {
			dst = append(dst, b)
		}
	}
	return append(dst, escByte, termByte)
}

// floatSortBits maps an IEEE-754 double onto a uint64 whose unsigned
// ordering matches the float ordering (with NaN first, matching
// value.Compare).
func floatSortBits(f float64) uint64 {
	if math.IsNaN(f) {
		return 0
	}
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		return ^bits // negative: invert everything
	}
	return bits | (1 << 63) // positive: set sign bit
}

// EncodeKey encodes a composite key. desc may be nil (all ascending) or
// must have one entry per value.
func EncodeKey(vals value.Row, desc []bool) []byte {
	if desc != nil && len(desc) != len(vals) {
		panic("codec: desc length mismatch")
	}
	dst := make([]byte, 0, 8+vals.Size())
	for i, v := range vals {
		d := false
		if desc != nil {
			d = desc[i]
		}
		dst = AppendValue(dst, v, d)
	}
	return dst
}

// DecodeKey decodes a composite key produced by EncodeKey. The caller must
// supply the same desc directions used during encoding.
func DecodeKey(key []byte, n int, desc []bool) (value.Row, error) {
	row := make(value.Row, 0, n)
	rest := key
	for i := 0; i < n; i++ {
		d := false
		if desc != nil {
			d = desc[i]
		}
		v, tail, err := decodeValue(rest, d)
		if err != nil {
			return nil, fmt.Errorf("codec: component %d: %w", i, err)
		}
		row = append(row, v)
		rest = tail
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("codec: %d trailing key bytes", len(rest))
	}
	return row, nil
}

func decodeValue(b []byte, desc bool) (value.Value, []byte, error) {
	if len(b) == 0 {
		return value.Value{}, nil, fmt.Errorf("truncated key")
	}
	tag := b[0]
	if desc {
		tag = ^tag
	}
	inv := func(x byte) byte {
		if desc {
			return ^x
		}
		return x
	}
	switch tag {
	case tagNull:
		return value.Null(), b[1:], nil
	case tagBool:
		if len(b) < 2 {
			return value.Value{}, nil, fmt.Errorf("truncated bool")
		}
		return value.Bool(inv(b[1]) != 0), b[2:], nil
	case tagInt:
		if len(b) < 9 {
			return value.Value{}, nil, fmt.Errorf("truncated int")
		}
		raw := make([]byte, 8)
		for i := 0; i < 8; i++ {
			raw[i] = inv(b[1+i])
		}
		u := binary.BigEndian.Uint64(raw)
		return value.Int(int64(u ^ (1 << 63))), b[9:], nil
	case tagFloat:
		if len(b) < 9 {
			return value.Value{}, nil, fmt.Errorf("truncated float")
		}
		raw := make([]byte, 8)
		for i := 0; i < 8; i++ {
			raw[i] = inv(b[1+i])
		}
		return value.Float(floatFromSortBits(binary.BigEndian.Uint64(raw))), b[9:], nil
	case tagString, tagBytes:
		payload, tail, err := decodeEscaped(b[1:], desc)
		if err != nil {
			return value.Value{}, nil, err
		}
		if tag == tagString {
			return value.Str(string(payload)), tail, nil
		}
		return value.Bytes(payload), tail, nil
	default:
		return value.Value{}, nil, fmt.Errorf("unknown key tag 0x%02x", tag)
	}
}

func decodeEscaped(b []byte, desc bool) (payload, tail []byte, err error) {
	out := make([]byte, 0, len(b))
	i := 0
	for {
		if i >= len(b) {
			return nil, nil, fmt.Errorf("unterminated string key")
		}
		c := b[i]
		if desc {
			c = ^c
		}
		if c != escByte {
			out = append(out, c)
			i++
			continue
		}
		if i+1 >= len(b) {
			return nil, nil, fmt.Errorf("dangling escape in string key")
		}
		next := b[i+1]
		if desc {
			next = ^next
		}
		switch next {
		case escPad:
			out = append(out, escByte)
			i += 2
		case termByte:
			return out, b[i+2:], nil
		default:
			return nil, nil, fmt.Errorf("bad escape 0x%02x in string key", next)
		}
	}
}

func floatFromSortBits(u uint64) float64 {
	if u == 0 {
		return math.NaN()
	}
	if u&(1<<63) != 0 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

// PrefixEnd returns the smallest key greater than every key having the
// given prefix, or nil if no such key exists (prefix is all 0xFF). It is
// used as the exclusive upper bound of prefix range scans.
func PrefixEnd(prefix []byte) []byte {
	end := make([]byte, len(prefix))
	copy(end, prefix)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}
