package codec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"piql/internal/value"
)

func randomValue(r *rand.Rand) value.Value {
	switch r.Intn(6) {
	case 0:
		return value.Null()
	case 1:
		return value.Bool(r.Intn(2) == 0)
	case 2:
		return value.Int(r.Int63() - r.Int63())
	case 3:
		return value.Float(math.Float64frombits(r.Uint64()))
	case 4:
		n := r.Intn(10)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Intn(256))
		}
		return value.Str(string(b))
	default:
		n := r.Intn(10)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Intn(256))
		}
		return value.Bytes(b)
	}
}

func randomRow(r *rand.Rand, n int) value.Row {
	row := make(value.Row, n)
	for i := range row {
		row[i] = randomValue(r)
	}
	return row
}

// TestOrderPreservingProperty is the load-bearing invariant of the module:
// byte order of encodings equals semantic order of rows.
func TestOrderPreservingProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		a, b := randomRow(r, n), randomRow(r, n)
		ea, eb := EncodeKey(a, nil), EncodeKey(b, nil)
		return sign(bytes.Compare(ea, eb)) == sign(value.CompareRows(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestDescendingInvertsOrder checks that a DESC component reverses order.
func TestDescendingInvertsOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomValue(r), randomValue(r)
		ea := EncodeKey(value.Row{a}, []bool{Desc})
		eb := EncodeKey(value.Row{b}, []bool{Desc})
		return sign(bytes.Compare(ea, eb)) == -sign(value.Compare(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestMixedDirectionComposite exercises ASC+DESC composite keys like the
// (owner ASC, timestamp DESC) thoughts index from the paper.
func TestMixedDirectionComposite(t *testing.T) {
	desc := []bool{Asc, Desc}
	k := func(owner string, ts int64) []byte {
		return EncodeKey(value.Row{value.Str(owner), value.Int(ts)}, desc)
	}
	// Same owner: later timestamps sort first.
	if bytes.Compare(k("bob", 10), k("bob", 5)) >= 0 {
		t.Error("DESC timestamp did not invert within owner")
	}
	// Different owners: owner ASC dominates regardless of timestamp.
	if bytes.Compare(k("alice", 1), k("bob", 100)) >= 0 {
		t.Error("ASC owner did not dominate")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		row := randomRow(r, n)
		desc := make([]bool, n)
		for i := range desc {
			desc[i] = r.Intn(2) == 0
		}
		enc := EncodeKey(row, desc)
		dec, err := DecodeKey(enc, n, desc)
		if err != nil {
			return false
		}
		// NaN compares equal to NaN under value.Compare, so CompareRows
		// handles the one non-reflexive float case for us.
		return value.CompareRows(row, dec) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestStringPrefixOrdering(t *testing.T) {
	// "a" < "ab" must hold even with the terminator in place, and a string
	// containing 0x00 must not escape its field.
	a := EncodeKey(value.Row{value.Str("a")}, nil)
	ab := EncodeKey(value.Row{value.Str("ab")}, nil)
	if bytes.Compare(a, ab) >= 0 {
		t.Error(`"a" >= "ab" after encoding`)
	}
	zero := EncodeKey(value.Row{value.Str("a\x00b"), value.Int(1)}, nil)
	row, err := DecodeKey(zero, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if row[0].S != "a\x00b" || row[1].I != 1 {
		t.Errorf("NUL-containing string corrupted: %v", row)
	}
}

func TestPrefixEnd(t *testing.T) {
	cases := []struct {
		in   []byte
		want []byte
	}{
		{[]byte{1, 2, 3}, []byte{1, 2, 4}},
		{[]byte{1, 0xFF}, []byte{2}},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte{}, nil},
	}
	for _, c := range cases {
		if got := PrefixEnd(c.in); !bytes.Equal(got, c.want) {
			t.Errorf("PrefixEnd(% x) = % x, want % x", c.in, got, c.want)
		}
	}
}

// TestPrefixEndBoundsProperty: every key extending prefix sorts < PrefixEnd.
func TestPrefixEndBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prefix := EncodeKey(randomRow(r, 1+r.Intn(2)), nil)
		ext := EncodeKey(randomRow(r, 1), nil)
		full := append(append([]byte{}, prefix...), ext...)
		end := PrefixEnd(prefix)
		if end == nil {
			return true // all-0xFF prefix: unbounded above
		}
		return bytes.Compare(full, end) < 0 && bytes.Compare(prefix, end) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeKeyErrors(t *testing.T) {
	good := EncodeKey(value.Row{value.Str("hi"), value.Int(1)}, nil)
	if _, err := DecodeKey(good[:3], 2, nil); err == nil {
		t.Error("truncated key accepted")
	}
	if _, err := DecodeKey(good, 1, nil); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodeKey([]byte{0x63}, 1, nil); err == nil {
		t.Error("unknown tag accepted")
	}
	if _, err := DecodeKey([]byte{tagString, 'a'}, 1, nil); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := DecodeKey([]byte{tagString, escByte, 0x55}, 1, nil); err == nil {
		t.Error("bad escape accepted")
	}
	if _, err := DecodeKey([]byte{tagInt, 1, 2}, 1, nil); err == nil {
		t.Error("short int accepted")
	}
	if _, err := DecodeKey([]byte{tagFloat, 1, 2}, 1, nil); err == nil {
		t.Error("short float accepted")
	}
	if _, err := DecodeKey([]byte{tagBool}, 1, nil); err == nil {
		t.Error("short bool accepted")
	}
	if _, err := DecodeKey(nil, 1, nil); err == nil {
		t.Error("empty key accepted")
	}
}

func TestIntBoundaries(t *testing.T) {
	vals := []int64{math.MinInt64, math.MinInt64 + 1, -1, 0, 1, math.MaxInt64 - 1, math.MaxInt64}
	var prev []byte
	for i, v := range vals {
		enc := EncodeKey(value.Row{value.Int(v)}, nil)
		if i > 0 && bytes.Compare(prev, enc) >= 0 {
			t.Errorf("int ordering broken at %d", v)
		}
		prev = enc
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	default:
		return 0
	}
}
