// Package parser implements the PIQL language frontend: a lexer and
// recursive-descent parser for the SQL subset extended with PAGINATE,
// CARDINALITY LIMIT (DDL), named parameters ([1: name]), and token
// search (CONTAINS), producing the AST consumed by internal/core.
package parser

import (
	"fmt"
	"strings"

	"piql/internal/schema"
	"piql/internal/value"
)

// Statement is any parsed PIQL statement.
type Statement interface {
	stmt()
	String() string
}

// --- expressions ---

// Expr is a scalar expression: literal, parameter, or column reference.
type Expr interface {
	expr()
	String() string
}

// Literal is a constant value.
type Literal struct {
	Val value.Value
}

func (Literal) expr() {}
func (l Literal) String() string {
	// Strings render SQL-style ('it''s') so Statement.String output
	// reparses; other types share the value rendering.
	if l.Val.T == value.TypeString {
		return "'" + strings.ReplaceAll(l.Val.S, "'", "''") + "'"
	}
	return l.Val.String()
}

// Param is a query parameter: either positional (?) or the paper's
// bracketed form [1: titleWord].
type Param struct {
	Index int    // 1-based
	Name  string // optional
}

func (Param) expr() {}
func (p Param) String() string {
	if p.Name != "" {
		return fmt.Sprintf("[%d: %s]", p.Index, p.Name)
	}
	return fmt.Sprintf("[%d]", p.Index)
}

// ColumnRef names a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table  string // alias or table name; "" = unqualified
	Column string
}

func (ColumnRef) expr() {}
func (c ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

// CompareOp is a predicate comparison operator.
type CompareOp int

// Comparison operators. OpLike is parsed but rejected by the optimizer
// (with a rewrite suggestion); OpContains is the scale-independent token
// search the paper substitutes for LIKE.
const (
	OpEq CompareOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpLike
	OpContains
)

func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpLike:
		return "LIKE"
	case OpContains:
		return "CONTAINS"
	default:
		return fmt.Sprintf("CompareOp(%d)", int(op))
	}
}

// Predicate is one conjunct of a WHERE clause: Left op Right. PIQL
// restricts WHERE clauses to conjunctions of comparisons (plus IN-lists),
// which is what keeps static analysis tractable.
type Predicate struct {
	Left  ColumnRef
	Op    CompareOp
	Right Expr
	// InList holds the right-hand side of an IN predicate; when set, Op
	// is OpEq and Right is nil.
	InList []Expr
}

func (p Predicate) String() string {
	if p.InList != nil {
		parts := make([]string, len(p.InList))
		for i, e := range p.InList {
			parts[i] = e.String()
		}
		return fmt.Sprintf("%s IN (%s)", p.Left, strings.Join(parts, ", "))
	}
	return fmt.Sprintf("%s %s %s", p.Left, p.Op, p.Right)
}

// --- SELECT ---

// AggKind enumerates aggregate functions.
type AggKind int

// Aggregates; AggNone marks a plain column projection.
const (
	AggNone AggKind = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return ""
	}
}

// SelectItem is one projection: a column, table.*, or an aggregate.
type SelectItem struct {
	Star    bool      // SELECT * or table.*
	StarOf  string    // table qualifier for table.*
	Col     ColumnRef // when not Star
	Agg     AggKind
	AggStar bool // COUNT(*)
	Alias   string
}

func (s SelectItem) String() string {
	switch {
	case s.Star && s.StarOf != "":
		return s.StarOf + ".*"
	case s.Star:
		return "*"
	case s.Agg != AggNone && s.AggStar:
		return s.Agg.String() + "(*)"
	case s.Agg != AggNone:
		return fmt.Sprintf("%s(%s)", s.Agg, s.Col)
	default:
		return s.Col.String()
	}
}

// TableRef is a FROM-clause table with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Name returns the alias if present, else the table name.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

func (t TableRef) String() string {
	if t.Alias != "" {
		return t.Table + " " + t.Alias
	}
	return t.Table
}

// OrderItem is one ORDER BY component.
type OrderItem struct {
	Col  ColumnRef
	Desc bool
}

func (o OrderItem) String() string {
	if o.Desc {
		return o.Col.String() + " DESC"
	}
	return o.Col.String() + " ASC"
}

// Select is a parsed SELECT statement. Joins are expressed either with
// explicit JOIN clauses (ON conditions folded into Where) or as a
// comma-separated FROM list with join predicates in WHERE, as in the
// paper's examples.
type Select struct {
	Items    []SelectItem
	From     []TableRef
	Where    []Predicate // conjunction
	GroupBy  []ColumnRef
	OrderBy  []OrderItem
	Limit    int // 0 = none; PIQL requires a literal bound
	Paginate int // 0 = none; page size for client-side cursors
}

func (*Select) stmt() {}

func (s *Select) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.String())
	}
	sb.WriteString(" FROM ")
	for i, t := range s.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(t.String())
	}
	if len(s.Where) > 0 {
		sb.WriteString(" WHERE ")
		for i, p := range s.Where {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			sb.WriteString(p.String())
		}
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, c := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(c.String())
		}
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.String())
		}
	}
	if s.Limit > 0 {
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
	}
	if s.Paginate > 0 {
		fmt.Fprintf(&sb, " PAGINATE %d", s.Paginate)
	}
	return sb.String()
}

// --- DML write statements ---

// Insert is INSERT INTO t (cols) VALUES (exprs).
type Insert struct {
	Table   string
	Columns []string // empty = all columns in table order
	Values  []Expr
}

func (*Insert) stmt() {}

func (s *Insert) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "INSERT INTO %s", s.Table)
	if len(s.Columns) > 0 {
		fmt.Fprintf(&sb, " (%s)", strings.Join(s.Columns, ", "))
	}
	sb.WriteString(" VALUES (")
	for i, e := range s.Values {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(e.String())
	}
	sb.WriteString(")")
	return sb.String()
}

// Assignment is one SET column = expr.
type Assignment struct {
	Column string
	Value  Expr
}

// Update is UPDATE t SET ... WHERE <primary key equality>.
type Update struct {
	Table string
	Set   []Assignment
	Where []Predicate
}

func (*Update) stmt() {}

func (s *Update) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "UPDATE %s SET ", s.Table)
	for i, a := range s.Set {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s = %s", a.Column, a.Value)
	}
	writeWhere(&sb, s.Where)
	return sb.String()
}

// Delete is DELETE FROM t WHERE <primary key equality>.
type Delete struct {
	Table string
	Where []Predicate
}

func (*Delete) stmt() {}

func (s *Delete) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DELETE FROM %s", s.Table)
	writeWhere(&sb, s.Where)
	return sb.String()
}

func writeWhere(sb *strings.Builder, where []Predicate) {
	if len(where) == 0 {
		return
	}
	sb.WriteString(" WHERE ")
	for i, p := range where {
		if i > 0 {
			sb.WriteString(" AND ")
		}
		sb.WriteString(p.String())
	}
}

// CreateTable wraps a parsed DDL statement.
type CreateTable struct {
	Table *schema.Table
}

func (*CreateTable) stmt() {}

func (s *CreateTable) String() string { return "CREATE TABLE " + s.Table.Name }
