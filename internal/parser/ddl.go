package parser

import (
	"strconv"

	"piql/internal/schema"
	"piql/internal/value"
)

// CreateIndex wraps a parsed CREATE INDEX statement. The optimizer
// usually derives indexes automatically (Section 5.3); this statement
// exists for manual control and tests.
type CreateIndex struct {
	Index *schema.Index
}

func (*CreateIndex) stmt() {}

func (s *CreateIndex) String() string { return "CREATE INDEX " + s.Index.Name }

func (p *parser) parseCreate() (Statement, error) {
	p.next() // CREATE
	switch {
	case p.accept(tokKeyword, "TABLE"):
		return p.parseCreateTable()
	case p.accept(tokKeyword, "INDEX"):
		return p.parseCreateIndex()
	default:
		return nil, p.errorf("expected TABLE or INDEX after CREATE, found %q", p.peek().text)
	}
}

// parseCreateTable parses the PIQL DDL:
//
//	CREATE TABLE name (
//	    col TYPE [, ...],
//	    PRIMARY KEY (cols),
//	    FOREIGN KEY (cols) REFERENCES table,
//	    CARDINALITY LIMIT n (cols)
//	)
func (p *parser) parseCreateTable() (*CreateTable, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	t := &schema.Table{Name: name.text}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokKeyword, "PRIMARY"):
			if _, err := p.expect(tokKeyword, "KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseColumnNameList()
			if err != nil {
				return nil, err
			}
			if t.PrimaryKey != nil {
				return nil, p.errorf("duplicate PRIMARY KEY clause")
			}
			t.PrimaryKey = cols
		case p.accept(tokKeyword, "FOREIGN"):
			if _, err := p.expect(tokKeyword, "KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseColumnNameList()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokKeyword, "REFERENCES"); err != nil {
				return nil, err
			}
			ref, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			t.ForeignKeys = append(t.ForeignKeys, schema.ForeignKey{Columns: cols, RefTable: ref.text})
		case p.accept(tokKeyword, "CARDINALITY"):
			if _, err := p.expect(tokKeyword, "LIMIT"); err != nil {
				return nil, err
			}
			num, err := p.expect(tokNumber, "")
			if err != nil {
				return nil, err
			}
			limit, err := strconv.Atoi(num.text)
			if err != nil || limit <= 0 {
				return nil, p.errorf("CARDINALITY LIMIT must be a positive integer, got %q", num.text)
			}
			cols, err := p.parseColumnNameList()
			if err != nil {
				return nil, err
			}
			t.Cardinalities = append(t.Cardinalities, schema.Cardinality{Limit: limit, Columns: cols})
		default:
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			t.Columns = append(t.Columns, col)
		}
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return &CreateTable{Table: t}, nil
}

func (p *parser) parseColumnNameList() ([]string, error) {
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		cols = append(cols, col.text)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return cols, nil
}

func (p *parser) parseColumnDef() (schema.Column, error) {
	name, err := p.expectIdent()
	if err != nil {
		return schema.Column{}, err
	}
	col := schema.Column{Name: name.text}
	typ := p.next()
	if typ.kind != tokKeyword {
		return schema.Column{}, p.errorf("expected a type for column %q, found %q", name.text, typ.text)
	}
	switch typ.text {
	case "INT", "BIGINT", "TIMESTAMP":
		col.Type = value.TypeInt
	case "DOUBLE", "FLOAT":
		col.Type = value.TypeFloat
	case "BOOLEAN":
		col.Type = value.TypeBool
	case "VARCHAR":
		col.Type = value.TypeString
		if p.accept(tokSymbol, "(") {
			num, err := p.expect(tokNumber, "")
			if err != nil {
				return schema.Column{}, err
			}
			n, err := strconv.Atoi(num.text)
			if err != nil || n <= 0 {
				return schema.Column{}, p.errorf("VARCHAR length must be positive")
			}
			col.MaxLen = n
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return schema.Column{}, err
			}
		}
	case "TEXT":
		col.Type = value.TypeString
	case "BLOB":
		col.Type = value.TypeBytes
	default:
		return schema.Column{}, p.errorf("unknown type %q for column %q", typ.text, name.text)
	}
	// Tolerated no-op modifiers.
	for {
		switch {
		case p.accept(tokKeyword, "NOT"):
			if _, err := p.expect(tokKeyword, "NULL"); err != nil {
				return schema.Column{}, err
			}
		case p.accept(tokKeyword, "UNIQUE"):
		default:
			return col, nil
		}
	}
}

// parseCreateIndex parses CREATE INDEX name ON table (field [, ...])
// where field is `col`, `col DESC`, or `TOKEN(col)`.
func (p *parser) parseCreateIndex() (*CreateIndex, error) {
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "ON"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	ix := &schema.Index{Name: name.text, Table: table.text}
	for {
		var f schema.IndexField
		if p.accept(tokKeyword, "TOKEN") {
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return nil, err
			}
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			f = schema.IndexField{Column: col.text, Token: true}
		} else {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			f = schema.IndexField{Column: col.text}
		}
		if p.accept(tokKeyword, "DESC") {
			f.Desc = true
		} else {
			p.accept(tokKeyword, "ASC")
		}
		ix.Fields = append(ix.Fields, f)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	return &CreateIndex{Index: ix}, nil
}
