package parser

import (
	"strings"
	"testing"

	"piql/internal/value"
)

func mustSelect(t *testing.T, src string) *Select {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	sel, ok := stmt.(*Select)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *Select", src, stmt)
	}
	return sel
}

// TestThoughtstreamQuery parses the paper's Figure 3(a) query verbatim.
func TestThoughtstreamQuery(t *testing.T) {
	src := `SELECT thoughts.*
	        FROM subscriptions s JOIN thoughts t
	        WHERE t.owner = s.target
	          AND s.owner = [1: uname]
	          AND s.approved = true
	        ORDER BY t.timestamp DESC
	        LIMIT 10`
	s := mustSelect(t, src)
	if len(s.From) != 2 || s.From[0].Alias != "s" || s.From[1].Alias != "t" {
		t.Fatalf("From = %v", s.From)
	}
	if len(s.Where) != 3 {
		t.Fatalf("Where = %v", s.Where)
	}
	join := s.Where[0]
	if join.Left != (ColumnRef{Table: "t", Column: "owner"}) {
		t.Fatalf("join left = %v", join.Left)
	}
	if right, ok := join.Right.(ColumnRef); !ok || right != (ColumnRef{Table: "s", Column: "target"}) {
		t.Fatalf("join right = %v", join.Right)
	}
	if p, ok := s.Where[1].Right.(Param); !ok || p.Index != 1 || p.Name != "uname" {
		t.Fatalf("param = %v", s.Where[1].Right)
	}
	if lit, ok := s.Where[2].Right.(Literal); !ok || !lit.Val.Truthy() {
		t.Fatalf("approved literal = %v", s.Where[2].Right)
	}
	if len(s.OrderBy) != 1 || !s.OrderBy[0].Desc {
		t.Fatalf("OrderBy = %v", s.OrderBy)
	}
	if s.Limit != 10 {
		t.Fatalf("Limit = %d", s.Limit)
	}
	if !s.Items[0].Star || s.Items[0].StarOf != "thoughts" {
		t.Fatalf("Items = %v", s.Items)
	}
}

// TestSearchByTitleQuery parses the paper's Section 5.3 query with
// CONTAINS substituted for the tokenized LIKE, as Table 1 prescribes.
func TestSearchByTitleQuery(t *testing.T) {
	src := `SELECT I_TITLE, I_ID, A_FNAME, A_LNAME
	        FROM ITEM, AUTHOR
	        WHERE I_A_ID = A_ID AND I_TITLE CONTAINS [1: titleWord]
	        ORDER BY I_TITLE
	        LIMIT 50`
	s := mustSelect(t, src)
	if len(s.Items) != 4 || s.Items[0].Col.Column != "I_TITLE" {
		t.Fatalf("Items = %v", s.Items)
	}
	if len(s.From) != 2 {
		t.Fatalf("From = %v", s.From)
	}
	if s.Where[1].Op != OpContains {
		t.Fatalf("op = %v", s.Where[1].Op)
	}
	if s.Limit != 50 {
		t.Fatalf("Limit = %d", s.Limit)
	}
}

func TestPaginateClause(t *testing.T) {
	s := mustSelect(t, `SELECT * FROM thoughts WHERE owner = ? ORDER BY timestamp DESC PAGINATE 10`)
	if s.Paginate != 10 || s.Limit != 0 {
		t.Fatalf("Paginate = %d, Limit = %d", s.Paginate, s.Limit)
	}
	if p, ok := s.Where[0].Right.(Param); !ok || p.Index != 1 {
		t.Fatalf("positional param = %v", s.Where[0].Right)
	}
}

func TestLimitAndPaginateMutuallyExclusive(t *testing.T) {
	_, err := Parse(`SELECT * FROM t WHERE a = 1 LIMIT 5 PAGINATE 5`)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err = %v", err)
	}
}

func TestInListPredicate(t *testing.T) {
	s := mustSelect(t, `SELECT * FROM subscriptions WHERE target = [1: u] AND owner IN ([2: a], [3: b], 'carol')`)
	p := s.Where[1]
	if p.InList == nil || len(p.InList) != 3 {
		t.Fatalf("InList = %v", p.InList)
	}
	if lit, ok := p.InList[2].(Literal); !ok || lit.Val.S != "carol" {
		t.Fatalf("InList[2] = %v", p.InList[2])
	}
}

func TestJoinWithOn(t *testing.T) {
	s := mustSelect(t, `SELECT * FROM orders o JOIN order_line ol ON ol.ol_o_id = o.o_id WHERE o.o_id = ?`)
	if len(s.From) != 2 || len(s.Where) != 2 {
		t.Fatalf("From=%v Where=%v", s.From, s.Where)
	}
}

func TestAggregatesAndGroupBy(t *testing.T) {
	s := mustSelect(t, `SELECT owner, COUNT(*), MAX(timestamp) FROM thoughts WHERE owner = ? GROUP BY owner LIMIT 1`)
	if s.Items[1].Agg != AggCount || !s.Items[1].AggStar {
		t.Fatalf("Items[1] = %v", s.Items[1])
	}
	if s.Items[2].Agg != AggMax || s.Items[2].Col.Column != "timestamp" {
		t.Fatalf("Items[2] = %v", s.Items[2])
	}
	if len(s.GroupBy) != 1 {
		t.Fatalf("GroupBy = %v", s.GroupBy)
	}
}

func TestLiteralKinds(t *testing.T) {
	s := mustSelect(t, `SELECT * FROM t WHERE a = 5 AND b = -3 AND c = 2.5 AND d = 'x''y' AND e = false AND f = NULL LIMIT 1`)
	wants := []value.Value{value.Int(5), value.Int(-3), value.Float(2.5), value.Str("x'y"), value.Bool(false), value.Null()}
	for i, w := range wants {
		lit, ok := s.Where[i].Right.(Literal)
		if !ok || !value.Equal(lit.Val, w) {
			t.Errorf("Where[%d].Right = %v, want %v", i, s.Where[i].Right, w)
		}
	}
}

func TestInsertUpdateDelete(t *testing.T) {
	stmt, err := Parse(`INSERT INTO users (username, password) VALUES (?, ?)`)
	if err != nil {
		t.Fatal(err)
	}
	ins := stmt.(*Insert)
	if ins.Table != "users" || len(ins.Columns) != 2 || len(ins.Values) != 2 {
		t.Fatalf("ins = %+v", ins)
	}
	if p := ins.Values[1].(Param); p.Index != 2 {
		t.Fatalf("second positional param index = %d", p.Index)
	}

	stmt, err = Parse(`UPDATE users SET password = ?, hometown = 'SF' WHERE username = ?`)
	if err != nil {
		t.Fatal(err)
	}
	upd := stmt.(*Update)
	if len(upd.Set) != 2 || upd.Set[0].Column != "password" {
		t.Fatalf("upd = %+v", upd)
	}
	if p := upd.Set[0].Value.(Param); p.Index != 1 {
		t.Fatalf("set param index = %d", p.Index)
	}
	if p := upd.Where[0].Right.(Param); p.Index != 2 {
		t.Fatalf("where param index = %d", p.Index)
	}

	stmt, err = Parse(`DELETE FROM subscriptions WHERE owner = ? AND target = ?`)
	if err != nil {
		t.Fatal(err)
	}
	del := stmt.(*Delete)
	if del.Table != "subscriptions" || len(del.Where) != 2 {
		t.Fatalf("del = %+v", del)
	}
}

func TestCreateTableDDL(t *testing.T) {
	stmt, err := Parse(`CREATE TABLE Subscriptions (
		ownerUserId INT,
		targetUserId INT,
		approved BOOLEAN,
		note VARCHAR(255) NOT NULL,
		PRIMARY KEY (ownerUserId, targetUserId),
		FOREIGN KEY (targetUserId) REFERENCES Users,
		CARDINALITY LIMIT 100 (ownerUserId)
	)`)
	if err != nil {
		t.Fatal(err)
	}
	ct := stmt.(*CreateTable)
	tab := ct.Table
	if tab.Name != "Subscriptions" || len(tab.Columns) != 4 {
		t.Fatalf("table = %+v", tab)
	}
	if tab.Columns[3].Type != value.TypeString || tab.Columns[3].MaxLen != 255 {
		t.Fatalf("note column = %+v", tab.Columns[3])
	}
	if len(tab.PrimaryKey) != 2 || tab.PrimaryKey[0] != "ownerUserId" {
		t.Fatalf("pk = %v", tab.PrimaryKey)
	}
	if len(tab.ForeignKeys) != 1 || tab.ForeignKeys[0].RefTable != "Users" {
		t.Fatalf("fk = %v", tab.ForeignKeys)
	}
	if len(tab.Cardinalities) != 1 || tab.Cardinalities[0].Limit != 100 {
		t.Fatalf("card = %v", tab.Cardinalities)
	}
}

func TestCreateIndexDDL(t *testing.T) {
	stmt, err := Parse(`CREATE INDEX title_idx ON Items (TOKEN(I_TITLE), I_TITLE, I_ID DESC)`)
	if err != nil {
		t.Fatal(err)
	}
	ci := stmt.(*CreateIndex)
	ix := ci.Index
	if ix.Table != "Items" || len(ix.Fields) != 3 {
		t.Fatalf("ix = %+v", ix)
	}
	if !ix.Fields[0].Token || ix.Fields[0].Column != "I_TITLE" {
		t.Fatalf("field 0 = %+v", ix.Fields[0])
	}
	if !ix.Fields[2].Desc {
		t.Fatalf("field 2 = %+v", ix.Fields[2])
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		``,
		`SELECT`,
		`SELECT * FROM`,
		`SELECT * FROM t WHERE`,
		`SELECT * FROM t WHERE a OR b`,
		`SELECT * FROM t WHERE a = 1 OR b = 2`,
		`SELECT * FROM t LIMIT 0`,
		`SELECT * FROM t LIMIT -5`,
		`SELECT * FROM t WHERE a = 'unterminated`,
		`SELECT * FROM t WHERE a = [0: x]`,
		`SELECT * FROM t WHERE a = [1: x`,
		`SELECT * FROM t; SELECT * FROM u`,
		`INSERT INTO t (a, b) VALUES (1)`,
		`CREATE TABLE t (a FOO)`,
		`CREATE TABLE t (a INT, PRIMARY KEY (a), PRIMARY KEY (a))`,
		`CREATE TABLE t (a INT, CARDINALITY LIMIT 0 (a))`,
		`CREATE NONSENSE x`,
		`SELECT SUM(*) FROM t`,
		`SELECT * FROM t WHERE a @ 1`,
		`SELECT * FROM t WHERE a = 1.2.3`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// TestStringRoundTrip: rendering a parsed statement and reparsing it
// yields the same rendering (a stable canonical form).
func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		`SELECT thoughts.* FROM subscriptions s JOIN thoughts t WHERE t.owner = s.target AND s.owner = [1: uname] ORDER BY t.timestamp DESC LIMIT 10`,
		`SELECT a, b FROM t WHERE a = 5 AND b CONTAINS [1: w] PAGINATE 20`,
		`INSERT INTO t (a, b) VALUES (1, 'x')`,
		`UPDATE t SET a = 2 WHERE b = 'k'`,
		`DELETE FROM t WHERE a = 1`,
		`SELECT COUNT(*) FROM t WHERE k = 1 GROUP BY a LIMIT 1`,
	}
	for _, src := range srcs {
		stmt, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		rendered := stmt.String()
		stmt2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("reparse of %q: %v", rendered, err)
		}
		if stmt2.String() != rendered {
			t.Errorf("not canonical:\n  first:  %s\n  second: %s", rendered, stmt2.String())
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	s := mustSelect(t, "SELECT * -- trailing comment\nFROM t -- another\nWHERE a = 1 LIMIT 1")
	if len(s.Where) != 1 {
		t.Fatalf("Where = %v", s.Where)
	}
}

func TestOperatorVariants(t *testing.T) {
	s := mustSelect(t, `SELECT * FROM t WHERE a != 1 AND b <> 2 AND c <= 3 AND d >= 4 AND e < 5 AND f > 6 AND g LIKE 'x' LIMIT 1`)
	wantOps := []CompareOp{OpNe, OpNe, OpLe, OpGe, OpLt, OpGt, OpLike}
	for i, w := range wantOps {
		if s.Where[i].Op != w {
			t.Errorf("op[%d] = %v, want %v", i, s.Where[i].Op, w)
		}
	}
}
