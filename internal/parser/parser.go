package parser

import (
	"fmt"
	"strconv"
	"strings"

	"piql/internal/value"
)

// Parse parses a single PIQL statement (SELECT, INSERT, UPDATE, DELETE,
// or CREATE TABLE).
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errorf("unexpected %q after statement", p.peek().text)
	}
	normalizeParams(stmt)
	return stmt, nil
}

// normalizeParams assigns 1-based indexes to positional '?' parameters in
// textual order across the whole statement. Bracketed parameters keep
// their explicit indexes.
func normalizeParams(stmt Statement) {
	n := 0
	visit := func(e Expr) Expr {
		if p, ok := e.(Param); ok && p.Index == 0 {
			n++
			p.Index = n
			return p
		}
		return e
	}
	visitPreds := func(preds []Predicate) {
		for i := range preds {
			if preds[i].Right != nil {
				preds[i].Right = visit(preds[i].Right)
			}
			for j := range preds[i].InList {
				preds[i].InList[j] = visit(preds[i].InList[j])
			}
		}
	}
	switch s := stmt.(type) {
	case *Select:
		visitPreds(s.Where)
	case *Insert:
		for i := range s.Values {
			s.Values[i] = visit(s.Values[i])
		}
	case *Update:
		for i := range s.Set {
			s.Set[i].Value = visit(s.Set[i].Value)
		}
		visitPreds(s.Where)
	case *Delete:
		visitPreds(s.Where)
	}
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

// at reports whether the current token matches kind (and text, if given).
func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

// accept consumes the current token if it matches, reporting success.
func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

// expect consumes a required token or returns a positioned error.
func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[tokenKind]string{
			tokIdent: "identifier", tokNumber: "number", tokString: "string",
		}[kind]
	}
	return token{}, p.errorf("expected %s, found %q", want, p.peek().text)
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("syntax error at offset %d: %s", p.peek().pos, fmt.Sprintf(format, args...))
}

// identKeywords are keywords that may double as identifiers (column and
// table names) — mostly type names, so schemas like SCADr's
// thoughts(timestamp) parse.
var identKeywords = map[string]bool{
	"INT": true, "BIGINT": true, "VARCHAR": true, "TEXT": true,
	"BOOLEAN": true, "DOUBLE": true, "FLOAT": true, "BLOB": true,
	"TIMESTAMP": true, "KEY": true, "TOKEN": true,
}

// expectIdent consumes an identifier, also accepting keywords that are
// legal identifiers in context.
func (p *parser) expectIdent() (token, error) {
	t := p.peek()
	if t.kind == tokIdent {
		return p.next(), nil
	}
	if t.kind == tokKeyword && identKeywords[t.text] {
		t = p.next()
		// Keyword tokens are upper-cased; restore the source spelling.
		t.text = p.src[t.pos : t.pos+len(t.text)]
		return t, nil
	}
	return token{}, p.errorf("expected identifier, found %q", t.text)
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(tokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(tokKeyword, "UPDATE"):
		return p.parseUpdate()
	case p.at(tokKeyword, "DELETE"):
		return p.parseDelete()
	case p.at(tokKeyword, "CREATE"):
		return p.parseCreate()
	default:
		return nil, p.errorf("expected a statement, found %q", p.peek().text)
	}
}

// --- SELECT ---

func (p *parser) parseSelect() (*Select, error) {
	p.next() // SELECT
	s := &Select{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	first, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	s.From = append(s.From, first)
	for {
		switch {
		case p.accept(tokSymbol, ","):
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, ref)
		case p.accept(tokKeyword, "JOIN"):
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, ref)
			if p.accept(tokKeyword, "ON") {
				preds, err := p.parsePredicates()
				if err != nil {
					return nil, err
				}
				s.Where = append(s.Where, preds...)
			}
		default:
			goto fromDone
		}
	}
fromDone:
	if p.accept(tokKeyword, "WHERE") {
		preds, err := p.parsePredicates()
		if err != nil {
			return nil, err
		}
		s.Where = append(s.Where, preds...)
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, col)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.parseColumnRef()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Col: col}
			if p.accept(tokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.parsePositiveInt("LIMIT")
		if err != nil {
			return nil, err
		}
		s.Limit = n
	}
	if p.accept(tokKeyword, "PAGINATE") {
		n, err := p.parsePositiveInt("PAGINATE")
		if err != nil {
			return nil, err
		}
		s.Paginate = n
	}
	if s.Limit > 0 && s.Paginate > 0 {
		return nil, p.errorf("LIMIT and PAGINATE are mutually exclusive")
	}
	return s, nil
}

func (p *parser) parsePositiveInt(clause string) (int, error) {
	t, err := p.expect(tokNumber, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.text)
	if err != nil || n <= 0 {
		return 0, p.errorf("%s requires a positive integer literal, got %q", clause, t.text)
	}
	return n, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	// Aggregates.
	for kw, agg := range map[string]AggKind{
		"COUNT": AggCount, "SUM": AggSum, "AVG": AggAvg, "MIN": AggMin, "MAX": AggMax,
	} {
		if p.at(tokKeyword, kw) {
			p.next()
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return SelectItem{}, err
			}
			item := SelectItem{Agg: agg}
			if p.accept(tokSymbol, "*") {
				if agg != AggCount {
					return SelectItem{}, p.errorf("%s(*) is not valid", kw)
				}
				item.AggStar = true
			} else {
				col, err := p.parseColumnRef()
				if err != nil {
					return SelectItem{}, err
				}
				item.Col = col
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return SelectItem{}, err
			}
			item.Alias = p.parseOptionalAlias()
			return item, nil
		}
	}
	col, err := p.parseColumnRef()
	if err != nil {
		return SelectItem{}, err
	}
	// table.* form.
	if col.Column == "*" {
		return SelectItem{Star: true, StarOf: col.Table}, nil
	}
	return SelectItem{Col: col, Alias: p.parseOptionalAlias()}, nil
}

func (p *parser) parseOptionalAlias() string {
	if p.accept(tokKeyword, "AS") {
		if t, err := p.expectIdent(); err == nil {
			return t.text
		}
		return ""
	}
	if p.at(tokIdent, "") {
		return p.next().text
	}
	return ""
}

func (p *parser) parseTableRef() (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name.text}
	if p.accept(tokKeyword, "AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias.text
	} else if p.at(tokIdent, "") {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// parseColumnRef parses ident[.ident] or ident.* (Column == "*").
func (p *parser) parseColumnRef() (ColumnRef, error) {
	first, err := p.expectIdent()
	if err != nil {
		return ColumnRef{}, err
	}
	if p.accept(tokSymbol, ".") {
		if p.accept(tokSymbol, "*") {
			return ColumnRef{Table: first.text, Column: "*"}, nil
		}
		second, err := p.expectIdent()
		if err != nil {
			return ColumnRef{}, err
		}
		return ColumnRef{Table: first.text, Column: second.text}, nil
	}
	return ColumnRef{Column: first.text}, nil
}

// parsePredicates parses a conjunction of comparisons joined with AND.
// OR is rejected: PIQL restricts queries to conjunctive predicates so
// bounds remain statically computable.
func (p *parser) parsePredicates() ([]Predicate, error) {
	var preds []Predicate
	for {
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pred)
		if p.accept(tokKeyword, "AND") {
			continue
		}
		if p.at(tokKeyword, "OR") {
			return nil, p.errorf("OR is not supported in PIQL; rewrite as separate queries or an IN list")
		}
		return preds, nil
	}
}

func (p *parser) parsePredicate() (Predicate, error) {
	left, err := p.parseColumnRef()
	if err != nil {
		return Predicate{}, err
	}
	var op CompareOp
	switch {
	case p.accept(tokSymbol, "="):
		op = OpEq
	case p.accept(tokSymbol, "!="), p.accept(tokSymbol, "<>"):
		op = OpNe
	case p.accept(tokSymbol, "<="):
		op = OpLe
	case p.accept(tokSymbol, "<"):
		op = OpLt
	case p.accept(tokSymbol, ">="):
		op = OpGe
	case p.accept(tokSymbol, ">"):
		op = OpGt
	case p.accept(tokKeyword, "LIKE"):
		op = OpLike
	case p.accept(tokKeyword, "CONTAINS"):
		op = OpContains
	case p.accept(tokKeyword, "IN"):
		return p.parseInList(left)
	default:
		return Predicate{}, p.errorf("expected comparison operator, found %q", p.peek().text)
	}
	right, err := p.parseExpr()
	if err != nil {
		return Predicate{}, err
	}
	return Predicate{Left: left, Op: op, Right: right}, nil
}

func (p *parser) parseInList(left ColumnRef) (Predicate, error) {
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return Predicate{}, err
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return Predicate{}, err
		}
		list = append(list, e)
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return Predicate{}, err
	}
	return Predicate{Left: left, Op: OpEq, InList: list}, nil
}

// parseExpr parses a literal, parameter, or column reference.
func (p *parser) parseExpr() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		neg := false
		return numberLiteral(t.text, neg)
	case t.kind == tokSymbol && t.text == "-":
		p.next()
		num, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		return numberLiteral(num.text, true)
	case t.kind == tokString:
		p.next()
		return Literal{Val: value.Str(t.text)}, nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.next()
		return Literal{Val: value.Bool(true)}, nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.next()
		return Literal{Val: value.Bool(false)}, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.next()
		return Literal{Val: value.Null()}, nil
	case t.kind == tokParam:
		p.next()
		return Param{}, nil // positional; indexes assigned by the binder
	case t.kind == tokSymbol && t.text == "[":
		return p.parseBracketParam()
	case t.kind == tokIdent:
		return p.parseColumnRef()
	default:
		return nil, p.errorf("expected an expression, found %q", t.text)
	}
}

func numberLiteral(text string, neg bool) (Expr, error) {
	if strings.Contains(text, ".") {
		f, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("malformed number %q", text)
		}
		if neg {
			f = -f
		}
		return Literal{Val: value.Float(f)}, nil
	}
	i, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("malformed number %q", text)
	}
	if neg {
		i = -i
	}
	return Literal{Val: value.Int(i)}, nil
}

// parseBracketParam parses the paper's parameter syntax: [1: titleWord]
// or [1].
func (p *parser) parseBracketParam() (Expr, error) {
	p.next() // [
	num, err := p.expect(tokNumber, "")
	if err != nil {
		return nil, err
	}
	idx, err := strconv.Atoi(num.text)
	if err != nil || idx <= 0 {
		return nil, p.errorf("parameter index must be a positive integer")
	}
	param := Param{Index: idx}
	if p.accept(tokSymbol, ":") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		param.Name = name.text
	}
	if _, err := p.expect(tokSymbol, "]"); err != nil {
		return nil, err
	}
	return param, nil
}

// --- INSERT / UPDATE / DELETE ---

func (p *parser) parseInsert() (*Insert, error) {
	p.next() // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table.text}
	if p.accept(tokSymbol, "(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col.text)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "("); err != nil {
		return nil, err
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ins.Values = append(ins.Values, e)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	if len(ins.Columns) > 0 && len(ins.Columns) != len(ins.Values) {
		return nil, p.errorf("INSERT has %d columns but %d values", len(ins.Columns), len(ins.Values))
	}
	return ins, nil
}

func (p *parser) parseUpdate() (*Update, error) {
	p.next() // UPDATE
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	upd := &Update{Table: table.text}
	if _, err := p.expect(tokKeyword, "SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		upd.Set = append(upd.Set, Assignment{Column: col.text, Value: e})
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		preds, err := p.parsePredicates()
		if err != nil {
			return nil, err
		}
		upd.Where = preds
	}
	return upd, nil
}

func (p *parser) parseDelete() (*Delete, error) {
	p.next() // DELETE
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table.text}
	if p.accept(tokKeyword, "WHERE") {
		preds, err := p.parsePredicates()
		if err != nil {
			return nil, err
		}
		del.Where = preds
	}
	return del, nil
}
