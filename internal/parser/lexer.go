package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // ( ) , . ; * = < > <= >= != [ ] :
	tokParam  // ? (positional parameter)
)

// token is one lexical token with its position for error messages.
type token struct {
	kind tokenKind
	text string // keywords are upper-cased; identifiers keep original case
	pos  int    // byte offset in the input
}

// keywords recognized by the lexer (PIQL = SQL subset + extensions).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"JOIN": true, "ON": true, "ORDER": true, "BY": true, "ASC": true,
	"DESC": true, "LIMIT": true, "PAGINATE": true, "INSERT": true,
	"INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "TABLE": true, "INDEX": true,
	"PRIMARY": true, "KEY": true, "FOREIGN": true, "REFERENCES": true,
	"CARDINALITY": true, "NOT": true, "NULL": true, "TRUE": true,
	"FALSE": true, "LIKE": true, "CONTAINS": true, "IN": true,
	"AS": true, "GROUP": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "INT": true, "BIGINT": true,
	"VARCHAR": true, "TEXT": true, "BOOLEAN": true, "DOUBLE": true,
	"FLOAT": true, "BLOB": true, "TIMESTAMP": true, "UNIQUE": true,
	"FIXED": true, "TOKEN": true,
}

// lexer splits a PIQL statement into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src, returning a syntax error with position on failure.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "", l.pos)
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent(start)
		case c >= '0' && c <= '9':
			if err := l.lexNumber(start); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(start); err != nil {
				return nil, err
			}
		case c == '?':
			l.pos++
			l.emit(tokParam, "?", start)
		case c == '<' || c == '>' || c == '!':
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				l.pos++
			} else if c == '<' && l.pos < len(l.src) && l.src[l.pos] == '>' {
				l.pos++
			}
			l.emit(tokSymbol, l.src[start:l.pos], start)
		case strings.ContainsRune("(),.;*=[]:+-", rune(c)):
			l.pos++
			l.emit(tokSymbol, string(c), start)
		default:
			return nil, fmt.Errorf("syntax error at offset %d: unexpected character %q", start, c)
		}
	}
}

func (l *lexer) emit(kind tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: pos})
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) lexIdent(start int) {
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	text := l.src[start:l.pos]
	upper := strings.ToUpper(text)
	if keywords[upper] {
		l.emit(tokKeyword, upper, start)
	} else {
		l.emit(tokIdent, text, start)
	}
}

func (l *lexer) lexNumber(start int) error {
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' {
			if seenDot {
				return fmt.Errorf("syntax error at offset %d: malformed number", start)
			}
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	l.emit(tokNumber, l.src[start:l.pos], start)
	return nil
}

func (l *lexer) lexString(start int) error {
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'') // doubled quote escape
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(tokString, sb.String(), start)
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("syntax error at offset %d: unterminated string literal", start)
}
