// Package analyze is the static plan boundedness analyzer: the
// compile-time half of PIQL's scale-independence contract (Sections 4
// and 6 of the paper). It walks a compiled physical plan, derives a
// symbolic worst-case operation bound for every remote operator — point
// gets, MultiGet batch sizes, range-scan limits, join fan-out — from
// the schema's declared cardinality constraints and the plan's pinned
// limits, and classifies the plan bounded or unbounded.
//
// The bound doubles as the input to the SLO prediction model
// (internal/predict): each operator contributes its Θ(α, β) parameters,
// so a Bound can be turned into a predicted p99 without re-walking the
// plan. An admission Policy combines both: unbounded plans are rejected
// outright, bounded plans optionally against an operation budget or a
// predicted-latency SLO.
package analyze

import (
	"fmt"
	"strings"
	"time"

	"piql/internal/core"
	"piql/internal/predict"
	"piql/internal/schema"
)

// OpBound is one remote operator's contribution to the plan bound.
type OpBound struct {
	// Operator is the operator's EXPLAIN label.
	Operator string
	// Kind names the key/value access pattern ("point gets",
	// "range scan", "deref gets", "per-key ranges").
	Kind string
	// Ops is the worst-case number of key/value store operations the
	// operator issues per execution (core.Unbounded if no bound exists).
	Ops int
	// Tuples is the worst-case number of tuples the operator emits.
	Tuples int
	// Derivation explains the bound symbolically: which pinned limit or
	// declared cardinality constraint it came from.
	Derivation string
	// PredictOps are the operator's Θ(α, β) parameters for the SLO
	// prediction model (empty when the operator is unbounded).
	PredictOps []predict.Op
}

// Bound is the static analysis result for one plan.
type Bound struct {
	// Bounded reports whether every operator has a closed-form bound.
	Bounded bool
	// Ops is the worst-case total key/value operations per execution
	// (one page, for paginated queries); core.Unbounded if !Bounded.
	Ops int
	// Tuples is the worst-case tuples emitted by the plan root.
	Tuples int
	// Chain lists the remote operators leaf-first with their bounds.
	Chain []OpBound
	// Offender, Reason, and Suggestions describe the first unbounded
	// operator when !Bounded.
	Offender    string
	Reason      string
	Suggestions []string
}

// Plan statically analyzes a compiled plan. Every plan the PIQL
// compiler emits analyzes as bounded (the compiler rejects the rest);
// plans from the cost-based baseline optimizer (Section 8.3) may carry
// unbounded scans and analyze accordingly.
func Plan(p *core.Plan) *Bound {
	b := &Bound{Bounded: true}
	for _, n := range p.RemoteOps() {
		switch n := n.(type) {
		case *core.PKLookup:
			b.addLookup(n)
		case *core.IndexScan:
			b.addScan(n)
		case *core.IndexFKJoin:
			b.addFKJoin(n)
		case *core.SortedIndexJoin:
			b.addSortedJoin(n)
		}
		if !b.Bounded {
			break
		}
	}
	if b.Bounded {
		b.Ops = 0
		for _, ob := range b.Chain {
			b.Ops += ob.Ops
		}
		b.Tuples = p.TupleBound()
	} else {
		b.Ops = core.Unbounded
		b.Tuples = core.Unbounded
	}
	return b
}

func (b *Bound) addLookup(n *core.PKLookup) {
	d := fmt.Sprintf("%d batched random get(s), one per bound primary key of %s", len(n.Keys), n.Table.Name)
	if len(n.Keys) > 1 {
		d += fmt.Sprintf(" (IN list expands to %d keys)", len(n.Keys))
	}
	b.Chain = append(b.Chain, OpBound{
		Operator:   n.Label(),
		Kind:       "point gets",
		Ops:        len(n.Keys),
		Tuples:     len(n.Keys),
		Derivation: d,
		PredictOps: []predict.Op{{Kind: predict.KindLookup, Alpha: len(n.Keys), Beta: n.Table.RowSizeEstimate()}},
	})
}

func (b *Bound) addScan(n *core.IndexScan) {
	if n.Unbounded {
		cols := prefixCols(n.Index, len(n.Eq))
		b.markUnbounded(n.Label(),
			fmt.Sprintf("index scan on %s has no pinned limit and no cardinality constraint covering (%s)",
				n.Index.String(), strings.Join(cols, ", ")),
			fmt.Sprintf("declare CARDINALITY LIMIT n (%s) on %s", strings.Join(cols, ", "), n.Table.Name),
			"add LIMIT or PAGINATE with ORDER BY on an indexed column to pin the fetch size",
		)
		return
	}
	t := n.Bounds().Tuples // min(LimitHint, DataStopCard) per fetchBound
	beta := n.Table.RowSizeEstimate()
	b.Chain = append(b.Chain, OpBound{
		Operator:   n.Label(),
		Kind:       "range scan",
		Ops:        1,
		Tuples:     t,
		Derivation: fmt.Sprintf("1 range read of at most %d entries (%s)", t, scanLimitSource(n)),
		PredictOps: []predict.Op{{Kind: predict.KindScan, Alpha: t, Beta: beta}},
	})
	if n.NeedDeref {
		b.Chain = append(b.Chain, OpBound{
			Operator:   "└ deref " + n.Table.Name,
			Kind:       "deref gets",
			Ops:        t,
			Tuples:     t,
			Derivation: fmt.Sprintf("%d batched get(s): one primary-key dereference per secondary-index entry", t),
			PredictOps: []predict.Op{{Kind: predict.KindLookup, Alpha: t, Beta: beta}},
		})
	}
}

func (b *Bound) addFKJoin(n *core.IndexFKJoin) {
	ct := n.ChildPlan.Bounds().Tuples
	b.Chain = append(b.Chain, OpBound{
		Operator: n.Label(),
		Kind:     "point gets",
		Ops:      ct,
		Tuples:   ct,
		Derivation: fmt.Sprintf("%d batched get(s), one per child tuple; the foreign key targets the full primary key of %s, so each joins to at most 1 row",
			ct, n.Table.Name),
		PredictOps: []predict.Op{{Kind: predict.KindLookup, Alpha: ct, Beta: n.Table.RowSizeEstimate()}},
	})
}

func (b *Bound) addSortedJoin(n *core.SortedIndexJoin) {
	ct := n.ChildPlan.Bounds().Tuples
	if n.PerKeyLimit <= 0 {
		cols := prefixCols(n.Index, len(n.JoinKey))
		b.markUnbounded(n.Label(),
			fmt.Sprintf("join fan-out on %s has no per-key bound: no cardinality constraint covers (%s)",
				n.Index.String(), strings.Join(cols, ", ")),
			fmt.Sprintf("declare CARDINALITY LIMIT n (%s) on %s", strings.Join(cols, ", "), n.Table.Name),
		)
		return
	}
	t := ct * n.PerKeyLimit
	beta := n.Table.RowSizeEstimate()
	b.Chain = append(b.Chain, OpBound{
		Operator: n.Label(),
		Kind:     "per-key ranges",
		Ops:      ct,
		Tuples:   t,
		Derivation: fmt.Sprintf("%d parallel range read(s), one per child tuple, at most %d entries each (%s): ≤ %d tuples",
			ct, n.PerKeyLimit, joinLimitSource(n), t),
		PredictOps: []predict.Op{{Kind: predict.KindSortedJoin, Alpha: ct, AlphaJ: n.PerKeyLimit, Beta: beta}},
	})
	if n.NeedDeref {
		b.Chain = append(b.Chain, OpBound{
			Operator:   "└ deref " + n.Table.Name,
			Kind:       "deref gets",
			Ops:        t,
			Tuples:     t,
			Derivation: fmt.Sprintf("%d batched get(s): one primary-key dereference per matching index entry", t),
			PredictOps: []predict.Op{{Kind: predict.KindLookup, Alpha: t, Beta: beta}},
		})
	}
}

func (b *Bound) markUnbounded(operator, reason string, suggestions ...string) {
	b.Bounded = false
	b.Offender = operator
	b.Reason = reason
	b.Suggestions = suggestions
	b.Chain = append(b.Chain, OpBound{
		Operator:   operator,
		Kind:       "unbounded",
		Ops:        core.Unbounded,
		Tuples:     core.Unbounded,
		Derivation: reason,
	})
}

// scanLimitSource names where an IndexScan's fetch bound came from:
// a pinned LIMIT/PAGINATE hint, a declared cardinality constraint, or
// the tighter of the two.
func scanLimitSource(n *core.IndexScan) string {
	card := func() string {
		cols := prefixCols(n.Index, len(n.Eq))
		if c := n.Table.CardinalityConstraint(cols); c != nil && c.Limit == n.DataStopCard {
			return "declared " + c.String()
		}
		if n.Table.IsPrimaryKey(cols) {
			return "primary-key equality: at most 1 row"
		}
		// IN-list expansion or tokenized prefixes multiply the declared
		// limit; report the derived figure.
		return fmt.Sprintf("derived cardinality ≤ %d", n.DataStopCard)
	}
	switch {
	case n.LimitHint > 0 && n.DataStopCard > 0 && n.DataStopCard < n.LimitHint:
		return card()
	case n.LimitHint > 0:
		return fmt.Sprintf("pinned LIMIT %d", n.LimitHint)
	default:
		return card()
	}
}

// joinLimitSource names where a SortedIndexJoin's per-key bound came
// from: the thoughtstream optimization pins it at the query's stop
// cardinality, otherwise a declared cardinality constraint caps it.
func joinLimitSource(n *core.SortedIndexJoin) string {
	cols := prefixCols(n.Index, len(n.JoinKey))
	if c := n.Table.CardinalityConstraint(cols); c != nil && c.Limit == n.PerKeyLimit {
		return "declared " + c.String()
	}
	return fmt.Sprintf("LIMIT/PAGINATE pins the per-key fetch at %d (sort+stop pushdown)", n.PerKeyLimit)
}

// prefixCols returns the first k column names of an index key.
func prefixCols(ix *schema.Index, k int) []string {
	cols := ix.KeyColumns()
	if k < len(cols) {
		cols = cols[:k]
	}
	return cols
}

// PredictOps returns the plan's Θ(α, β) operator parameters leaf-first — the
// input to predict.Model.PredictOps. Nil when the plan is unbounded (no
// finite α exists).
func (b *Bound) PredictOps() []predict.Op {
	if !b.Bounded {
		return nil
	}
	var ops []predict.Op
	for _, ob := range b.Chain {
		ops = append(ops, ob.PredictOps...)
	}
	return ops
}

// Predict evaluates the bound against a trained SLO model.
func (b *Bound) Predict(m *predict.Model) (*predict.Prediction, error) {
	if !b.Bounded {
		return nil, fmt.Errorf("analyze: cannot predict latency of an unbounded plan")
	}
	return m.PredictOps(b.PredictOps())
}

// String renders the bound as an EXPLAIN-style table: one line per
// remote operator with its operation bound and symbolic derivation.
func (b *Bound) String() string {
	var sb strings.Builder
	for _, ob := range b.Chain {
		sb.WriteString(fmt.Sprintf("  %-14s %8s  %s\n", ob.Kind, opsStr(ob.Ops), ob.Derivation))
	}
	if b.Bounded {
		fmt.Fprintf(&sb, "  total: ≤ %d key/value operation(s), ≤ %d tuple(s) — bounded\n", b.Ops, b.Tuples)
	} else {
		fmt.Fprintf(&sb, "  total: UNBOUNDED — %s\n", b.Reason)
	}
	return sb.String()
}

func opsStr(n int) string {
	if n == core.Unbounded {
		return "∞"
	}
	return fmt.Sprintf("%d ops", n)
}

// ErrUnbounded reports a plan refused by admission control because no
// static operation bound exists: some operator's fan-out has no
// declared cardinality cap and no pinned limit.
type ErrUnbounded struct {
	// SQL is the offending query text.
	SQL string
	// Operator labels the first unbounded operator.
	Operator string
	// Reason explains why no bound exists.
	Reason string
	// Chain lists the plan's remote operators leaf-first, ending at the
	// offender.
	Chain []string
	// Suggestions are concrete fixes (cardinality limits, pagination).
	Suggestions []string
}

func (e *ErrUnbounded) Error() string {
	msg := fmt.Sprintf("analyze: query refused: no static operation bound: %s", e.Reason)
	if len(e.Chain) > 0 {
		msg += "\n  operator chain: " + strings.Join(e.Chain, " → ")
	}
	for _, s := range e.Suggestions {
		msg += "\n  suggestion: " + s
	}
	return msg
}

// ErrOverSLO reports a bounded plan refused by admission control: its
// static bound exceeds the configured operation budget, or its
// predicted 99th-percentile latency exceeds the SLO.
type ErrOverSLO struct {
	// SQL is the offending query text.
	SQL string
	// Ops is the plan's static operation bound.
	Ops int
	// MaxOps is the configured budget (0 if the refusal was
	// latency-based).
	MaxOps int
	// SLO and Predicted are set for latency-based refusals: the plan's
	// predicted 99th-percentile latency (at the policy quantile) exceeds
	// the objective.
	SLO       time.Duration
	Predicted time.Duration
	// Quantile is the fraction of intervals the SLO must hold in.
	Quantile float64
	// Chain lists the plan's remote operators leaf-first.
	Chain []string
}

func (e *ErrOverSLO) Error() string {
	var msg string
	if e.MaxOps > 0 {
		msg = fmt.Sprintf("analyze: query refused: static bound of %d key/value operations exceeds the budget of %d", e.Ops, e.MaxOps)
	} else {
		msg = fmt.Sprintf("analyze: query refused: predicted p99 of %v (in %.0f%% of intervals) exceeds the %v SLO",
			e.Predicted, e.Quantile*100, e.SLO)
	}
	if len(e.Chain) > 0 {
		msg += "\n  operator chain: " + strings.Join(e.Chain, " → ")
	}
	return msg
}

// Policy is the engine's admission-control configuration: what Prepare
// refuses. The zero policy admits everything (analysis still runs and
// the bound is attached to the prepared plan).
type Policy struct {
	// Enforce turns refusal on. With Enforce false the policy is
	// advisory: bounds and predictions are computed but nothing is
	// rejected.
	Enforce bool
	// MaxOps refuses bounded plans whose static operation bound exceeds
	// this budget (0 = no budget).
	MaxOps int
	// SLO refuses plans whose predicted 99th-percentile latency exceeds
	// this objective (0 = no latency check; requires Model).
	SLO time.Duration
	// Quantile is the fraction of training intervals the prediction
	// must meet the SLO in (default 0.9, per Section 6.3).
	Quantile float64
	// Model is the trained per-operator latency model the SLO check
	// evaluates against.
	Model *predict.Model
}

// OperatorChain renders the bound's operators leaf-first for error
// reporting.
func (b *Bound) OperatorChain() []string {
	out := make([]string, len(b.Chain))
	for i, ob := range b.Chain {
		out[i] = ob.Operator
	}
	return out
}

// Admit decides whether a plan with the given bound may be prepared.
// It returns nil, a *ErrUnbounded, or a *ErrOverSLO.
func (p *Policy) Admit(sql string, b *Bound) error {
	if p == nil || !p.Enforce {
		return nil
	}
	if !b.Bounded {
		return &ErrUnbounded{
			SQL:         sql,
			Operator:    b.Offender,
			Reason:      b.Reason,
			Chain:       b.OperatorChain(),
			Suggestions: b.Suggestions,
		}
	}
	if p.MaxOps > 0 && b.Ops > p.MaxOps {
		return &ErrOverSLO{SQL: sql, Ops: b.Ops, MaxOps: p.MaxOps, Chain: b.OperatorChain()}
	}
	if p.SLO > 0 && p.Model != nil {
		q := p.Quantile
		if q <= 0 {
			q = 0.9
		}
		pred, err := b.Predict(p.Model)
		if err != nil {
			// Enforcement is strict: a plan whose latency cannot be
			// evaluated is refused rather than waved through.
			return fmt.Errorf("analyze: admission cannot evaluate plan against SLO: %w", err)
		}
		if got := pred.Quantile99(q); got > p.SLO {
			return &ErrOverSLO{
				SQL:       sql,
				Ops:       b.Ops,
				SLO:       p.SLO,
				Predicted: got,
				Quantile:  q,
				Chain:     b.OperatorChain(),
			}
		}
	}
	return nil
}
